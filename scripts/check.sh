#!/usr/bin/env sh
# Tier-1 verification for frost: configure, build, run the full test
# suite, re-run the golden IR suite with its per-test report
# (see docs/testing.md), then a ~2-second smoke campaign that must
# still catch the legacy select miscompiles (see docs/tv-campaigns.md).
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "== golden IR suite (frost-lit, per-test report) =="
./build/tools/frost-lit tests/ir

echo "== smoke campaign: proposed pipeline must validate clean =="
./build/tools/frost-tv --insts 2 --width 2 --max-functions 4000 \
    --jobs 2 --quiet

echo "== smoke campaign: legacy pipeline must be caught =="
if ./build/tools/frost-tv --insts 2 --width 1 --args 3 --opcodes none \
    --pipeline legacy --jobs 2 --quiet; then
  echo "check.sh: FAIL: legacy campaign found no miscompilation" >&2
  exit 1
fi

echo "== smoke campaign: bitsliced engine, proposed must validate clean =="
./build/tools/frost-tv --insts 2 --width 2 --max-functions 4000 \
    --engine bitsliced --jobs 2 --quiet

echo "== smoke campaign: bitsliced engine must catch the legacy bugs =="
if ./build/tools/frost-tv --insts 2 --width 1 --args 3 --opcodes none \
    --pipeline legacy --engine bitsliced --jobs 2 --quiet; then
  echo "check.sh: FAIL: bitsliced legacy campaign found no miscompilation" >&2
  exit 1
fi

echo "== memory smoke: proposed pipeline over memory programs must be clean =="
./build/tools/frost-tv --opcodes none --mem-bytes 1 --with-undef \
    --passes dse,gvn,licm --jobs 2 --quiet --stats | grep -E "memory:|aa\.|tv\.mem_" || true
./build/tools/frost-tv --opcodes none --mem-bytes 1 --with-undef \
    --passes dse,gvn,licm --jobs 2 --quiet >/dev/null

echo "== memory smoke: legacy DSE must be caught by the initial-memory sweep =="
if ./build/tools/frost-tv --opcodes none --mem-bytes 1 --with-undef \
    --pipeline legacy --sem legacy-gvn --passes dse --jobs 2 --quiet; then
  echo "check.sh: FAIL: legacy memory campaign found no miscompilation" >&2
  exit 1
fi

echo "== memory smoke: the three legacy memory bugs must each be blamed =="
if ./build/tools/frost-tv --file tests/ir/mem/campaign-legacy-memory.fr \
    --compare-memory --sem legacy-gvn --jobs 1 --quiet \
    --passes 'gvn<legacy>,instcombine<legacy>,dse<legacy>,licm<legacy>'; then
  echo "check.sh: FAIL: legacy memory triple campaign came back clean" >&2
  exit 1
fi

echo "== cache smoke: warm rerun must hit and replay byte-identically =="
CACHE=$(mktemp)
rm -f "$CACHE"
./build/tools/frost-tv --insts 2 --width 2 --args 2 --max-functions 4000 \
    --cache-file "$CACHE" --quiet --stats > /tmp/frost-cache-cold.txt
./build/tools/frost-tv --insts 2 --width 2 --args 2 --max-functions 4000 \
    --cache-file "$CACHE" --quiet --stats > /tmp/frost-cache-warm.txt
rm -f "$CACHE"
grep -q "tv.cache_hits = [1-9]" /tmp/frost-cache-warm.txt || {
  echo "check.sh: FAIL: warm cache rerun recorded no hits" >&2; exit 1; }
COLD_HASH=$(grep "^report-hash=" /tmp/frost-cache-cold.txt)
WARM_HASH=$(grep "^report-hash=" /tmp/frost-cache-warm.txt)
[ -n "$COLD_HASH" ] && [ "$COLD_HASH" = "$WARM_HASH" ] || {
  echo "check.sh: FAIL: cold and warm report hashes differ" >&2; exit 1; }

echo "== service smoke: warm daemon batch must hit the cache, reports identical =="
SVC_PORTF=$(mktemp) && rm -f "$SVC_PORTF"
SVC_CACHE=$(mktemp) && rm -f "$SVC_CACHE"
./build/tools/frost-tvd --port-file "$SVC_PORTF" --cache-file "$SVC_CACHE" \
    --quiet &
SVC_PID=$!
i=0
while [ ! -f "$SVC_PORTF" ] && [ "$i" -lt 100 ]; do i=$((i+1)); sleep 0.1; done
[ -f "$SVC_PORTF" ] || {
  echo "check.sh: FAIL: frost-tvd never published its port" >&2; exit 1; }
./build/tools/frost-tvc --port-file "$SVC_PORTF" \
    --file tests/service/batch.fr --quiet > /tmp/frost-svc-cold.txt
./build/tools/frost-tvc --port-file "$SVC_PORTF" \
    --file tests/service/batch.fr --quiet > /tmp/frost-svc-warm.txt
./build/tools/frost-tvc --port-file "$SVC_PORTF" --stats \
    > /tmp/frost-svc-stats.txt
grep -q "svc.cache_hits = [1-9]" /tmp/frost-svc-stats.txt || {
  echo "check.sh: FAIL: warm daemon batch recorded no cache hits" >&2
  exit 1; }
SVC_COLD=$(grep "^report-hash=" /tmp/frost-svc-cold.txt)
SVC_WARM=$(grep "^report-hash=" /tmp/frost-svc-warm.txt)
[ -n "$SVC_COLD" ] && [ "$SVC_COLD" = "$SVC_WARM" ] || {
  echo "check.sh: FAIL: cold and warm daemon report hashes differ" >&2
  exit 1; }
./build/tools/frost-tvc --port-file "$SVC_PORTF" --shutdown >/dev/null
wait "$SVC_PID" || {
  echo "check.sh: FAIL: frost-tvd did not shut down cleanly" >&2; exit 1; }
rm -f "$SVC_PORTF" "$SVC_CACHE"

echo "== sanitizer smoke: sanitize<proposed> must be flawless (0 FN / 0 FP) =="
./build/tools/frost-tv --sanitize --insts 2 --width 2 --opcodes add,shl \
    --max-functions 4000 --jobs 2 --quiet

echo "== sanitizer smoke: the seeded-naive sanitize<legacy> must be flagged =="
if ./build/tools/frost-tv --sanitize --pipeline legacy --opcodes none \
    --mem-bytes 1 --with-undef --max-functions 2000 --jobs 2 --quiet; then
  echo "check.sh: FAIL: sanitizer campaign missed the legacy blind spots" >&2
  exit 1
fi

echo "== smoke campaign: backend must refine proposed semantics =="
./build/tools/frost-tv --end-to-end --insts 2 --width 2 \
    --max-functions 4000 --jobs 2 --quiet

echo "== smoke campaign: legacy select lowering must be caught =="
if ./build/tools/frost-tv --end-to-end --poison-cond \
    --sem legacy-unswitch --insts 2 --width 2 --opcodes none \
    --max-functions 4000 --jobs 2 --quiet; then
  echo "check.sh: FAIL: end-to-end campaign missed the legacy select bug" >&2
  exit 1
fi

echo "check.sh: all checks passed"
