//===- RuntimeSpec.cpp - Figure 6: run-time change on the SPEC suite -----------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 6: per-benchmark run-time change between the legacy
/// pipeline (pre-paper LLVM: no freeze) and the proposed pipeline
/// (freeze-based fixes). The paper measures wall time on two Intel machines;
/// we measure deterministic cycles on the frost-risc simulator, so the
/// reported deltas are exact. The expected shape: small changes (the paper
/// saw +/-1.6%), with "queens" as the known outlier driven by register
/// allocation changes around the inserted freeze.
///
//===----------------------------------------------------------------------===//

#include "Kernels.h"

#include "codegen/Codegen.h"
#include "codegen/MachineSim.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "support/ErrorHandling.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

using namespace frost;
using namespace frost::bench;

namespace {

struct KernelRun {
  KernelSpec Spec;
  uint64_t LegacyCycles = 0;
  uint64_t ProposedCycles = 0;
  uint32_t Result = 0;
  codegen::CompiledFunction LegacyCF, ProposedCF;
};

std::vector<KernelRun> runSuite() {
  static IRContext Ctx;
  static Module M(Ctx, "spec");
  std::vector<KernelRun> Runs;

  for (const KernelSpec &Spec : kernelSuite()) {
    KernelRun Run;
    Run.Spec = Spec;

    for (PipelineMode Mode : {PipelineMode::Legacy, PipelineMode::Proposed}) {
      const char *Suffix = Mode == PipelineMode::Legacy ? "legacy" : "frost";
      Function *F = buildKernel(M, Spec.Name, Suffix, Mode);
      PassManager PM(/*VerifyAfterEachPass=*/false);
      buildStandardPipeline(PM, Mode);
      PM.run(*F);
      codegen::CompiledFunction CF = codegen::compileFunction(*F);
      codegen::SimResult S = codegen::simulate(CF, Spec.Args);
      if (!S.Ok) {
        std::fprintf(stderr, "%s/%s failed: %s\n", Spec.Name.c_str(), Suffix,
                     S.Error.c_str());
        frost_unreachable("benchmark kernel failed to simulate");
      }
      if (Mode == PipelineMode::Legacy) {
        Run.LegacyCycles = S.Cycles;
        Run.Result = S.ReturnValue;
        Run.LegacyCF = std::move(CF);
      } else {
        Run.ProposedCycles = S.Cycles;
        Run.ProposedCF = std::move(CF);
        if (S.ReturnValue != Run.Result && Spec.Name != "gcc") {
          // ("gcc" reads previously-uninitialized bit-field neighbours; the
          // legacy lowering leaves those words frozen differently.)
          std::fprintf(stderr, "%s: result mismatch %u vs %u\n",
                       Spec.Name.c_str(), Run.Result, S.ReturnValue);
          frost_unreachable("pipelines disagree on a deterministic kernel");
        }
      }
    }
    // Sanity anchor: 8-queens has 92 solutions.
    if (Spec.Name == "queens" && Run.Result != 92)
      frost_unreachable("queens kernel must count 92 solutions");
    Runs.push_back(std::move(Run));
  }
  return Runs;
}

void printFigure6(const std::vector<KernelRun> &Runs) {
  std::printf("\n=== Figure 6: SPEC CPU 2006 run-time change "
              "(positive = improved) ===\n");
  std::printf("%-12s %-5s %14s %14s %9s\n", "benchmark", "suite",
              "legacy cycles", "frost cycles", "change%");
  double MinD = 1e9, MaxD = -1e9;
  for (const KernelRun &R : Runs) {
    double Delta = 100.0 *
                   (static_cast<double>(R.LegacyCycles) -
                    static_cast<double>(R.ProposedCycles)) /
                   static_cast<double>(R.LegacyCycles);
    std::printf("%-12s %-5s %14llu %14llu %+8.2f%%\n", R.Spec.Name.c_str(),
                R.Spec.Name == "queens" ? "LNT"
                                        : (R.Spec.IsCFP ? "CFP" : "CINT"),
                static_cast<unsigned long long>(R.LegacyCycles),
                static_cast<unsigned long long>(R.ProposedCycles), Delta);
    if (R.Spec.Name != "queens") {
      MinD = std::min(MinD, Delta);
      MaxD = std::max(MaxD, Delta);
    }
  }
  std::printf("range (excl. queens): %+.2f%% .. %+.2f%%  "
              "(paper: -1.6%% .. +1.6%%; queens +6..8%%)\n",
              MinD, MaxD);

  unsigned FreezeCopies = 0;
  for (const KernelRun &R : Runs)
    FreezeCopies += R.ProposedCF.Stats.FreezeCopies;
  std::printf("freeze register copies across the suite: %u\n", FreezeCopies);
}

} // namespace

int main(int argc, char **argv) {
  std::vector<KernelRun> Runs = runSuite();
  printFigure6(Runs);

  // google-benchmark timings: simulation throughput per kernel and mode.
  for (KernelRun &R : Runs) {
    for (bool Proposed : {false, true}) {
      std::string BName = std::string("BM_simulate/") + R.Spec.Name +
                          (Proposed ? "/frost" : "/legacy");
      const codegen::CompiledFunction *CF =
          Proposed ? &R.ProposedCF : &R.LegacyCF;
      uint64_t Cycles = Proposed ? R.ProposedCycles : R.LegacyCycles;
      std::vector<uint32_t> Args = R.Spec.Args;
      benchmark::RegisterBenchmark(
          BName.c_str(), [CF, Args, Cycles](benchmark::State &State) {
            for (auto _ : State) {
              codegen::SimResult S = codegen::simulate(*CF, Args);
              benchmark::DoNotOptimize(S.ReturnValue);
            }
            State.counters["cycles"] =
                static_cast<double>(Cycles);
          });
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
