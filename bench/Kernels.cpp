//===- Kernels.cpp - SPEC CPU 2006 substitute kernels ---------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "Kernels.h"

#include "frontend/BitFields.h"
#include "fuzz/RandomProgram.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/ErrorHandling.h"

using namespace frost;
using namespace frost::bench;

namespace {

/// Textual kernels; FNAME is substituted with the instantiated name.
/// Each is UB-free for the suite's fixed inputs.

// Stanford Queens (LNT): iterative 8-queens with an explicit stack. The
// loop-invariant %trace branch is unswitchable, which under the proposed
// pipeline inserts a freeze — the mechanism behind the paper's "Stanford
// Queens" register-allocation anecdote.
const char *QueensSrc = R"(
@q.cols = global i32, 64
@q.ld = global i32, 64
@q.rd = global i32, 64
@q.avail = global i32, 64
@q.dbg = global i32, 4

define i32 @FNAME(i32 %n, i32 %trace) {
entry:
  %one = shl i32 1, %n
  %full = sub i32 %one, 1
  %p0 = gep i32* @q.cols, i32 0
  store i32 0, i32* %p0
  %p1 = gep i32* @q.ld, i32 0
  store i32 0, i32* %p1
  %p2 = gep i32* @q.rd, i32 0
  store i32 0, i32* %p2
  %p3 = gep i32* @q.avail, i32 0
  store i32 %full, i32* %p3
  br label %loop

loop:
  %sp = phi i32 [ 0, %entry ], [ %sp.next, %cont ]
  %count = phi i32 [ 0, %entry ], [ %count.next, %cont ]
  %done = icmp slt i32 %sp, 0
  br i1 %done, label %exit, label %body

body:
  %pa = gep i32* @q.avail, i32 %sp
  %a = load i32, i32* %pa
  %empty = icmp eq i32 %a, 0
  br i1 %empty, label %pop, label %place

pop:
  %sp.dec = sub i32 %sp, 1
  br label %cont.pop

cont.pop:
  br label %cont

place:
  %nega = sub i32 0, %a
  %bit = and i32 %a, %nega
  %nbit = xor i32 %bit, -1
  %a.rest = and i32 %a, %nbit
  store i32 %a.rest, i32* %pa
  %pc = gep i32* @q.cols, i32 %sp
  %cols = load i32, i32* %pc
  %ncols = or i32 %cols, %bit
  %solved = icmp eq i32 %ncols, %full
  br i1 %solved, label %found, label %push

found:
  br label %cont

push:
  %pl = gep i32* @q.ld, i32 %sp
  %ld = load i32, i32* %pl
  %pr = gep i32* @q.rd, i32 %sp
  %rd = load i32, i32* %pr
  %ld1 = or i32 %ld, %bit
  %ld2 = shl i32 %ld1, 1
  %ld3 = and i32 %ld2, %full
  %rd1 = or i32 %rd, %bit
  %rd2 = lshr i32 %rd1, 1
  %sp1 = add nsw i32 %sp, 1
  %qc = gep i32* @q.cols, i32 %sp1
  store i32 %ncols, i32* %qc
  %ql = gep i32* @q.ld, i32 %sp1
  store i32 %ld3, i32* %ql
  %qr = gep i32* @q.rd, i32 %sp1
  store i32 %rd2, i32* %qr
  %blocked1 = or i32 %ncols, %ld3
  %blocked = or i32 %blocked1, %rd2
  %free = xor i32 %blocked, -1
  %av = and i32 %free, %full
  %qa = gep i32* @q.avail, i32 %sp1
  store i32 %av, i32* %qa
  %tr = icmp ne i32 %trace, 0
  br i1 %tr, label %dbg, label %cont.push

dbg:
  store i32 %sp1, i32* @q.dbg
  br label %cont.push

cont.push:
  br label %cont

cont:
  %sp.next = phi i32 [ %sp.dec, %cont.pop ], [ %sp, %found ], [ %sp1, %cont.push ]
  %inc = phi i32 [ 0, %cont.pop ], [ 1, %found ], [ 0, %cont.push ]
  %count.next = add nsw i32 %count, %inc
  br label %loop

exit:
  %count.lcssa = phi i32 [ %count, %loop ]
  ret i32 %count.lcssa
}
)";

// hmmer: Viterbi-flavoured DP inner loop with max-selects.
const char *HmmerSrc = R"(
@h.score = global i32, 256
@h.trans = global i32, 256

define i32 @FNAME(i32 %rows, i32 %seed) {
entry:
  br label %init

init:
  %i0 = phi i32 [ 0, %entry ], [ %i0n, %init ]
  %v = mul i32 %i0, 2654435761
  %v2 = lshr i32 %v, 24
  %ps = gep i32* @h.score, i32 %i0
  store i32 %v2, i32* %ps
  %vt = add i32 %v2, %seed
  %vt2 = and i32 %vt, 255
  %pt = gep i32* @h.trans, i32 %i0
  store i32 %vt2, i32* %pt
  %i0n = add nsw i32 %i0, 1
  %c0 = icmp ult i32 %i0n, 64
  br i1 %c0, label %init, label %outer.pre

outer.pre:
  br label %outer

outer:
  %r = phi i32 [ 0, %outer.pre ], [ %rn, %outer.latch ]
  %best.o = phi i32 [ 0, %outer.pre ], [ %best.f, %outer.latch ]
  br label %inner

inner:
  %j = phi i32 [ 1, %outer ], [ %jn, %inner ]
  %best = phi i32 [ %best.o, %outer ], [ %best.n, %inner ]
  %jm1 = sub i32 %j, 1
  %pp = gep i32* @h.score, i32 %jm1
  %prev = load i32, i32* %pp
  %pc = gep i32* @h.trans, i32 %j
  %tr = load i32, i32* %pc
  %cand = add nsw i32 %prev, %tr
  %pq = gep i32* @h.score, i32 %j
  %cur = load i32, i32* %pq
  %gt = icmp sgt i32 %cand, %cur
  %nv = select i1 %gt, i32 %cand, i32 %cur
  store i32 %nv, i32* %pq
  %bgt = icmp sgt i32 %nv, %best
  %best.n = select i1 %bgt, i32 %nv, i32 %best
  %jn = add nsw i32 %j, 1
  %ci = icmp ult i32 %jn, 64
  br i1 %ci, label %inner, label %outer.latch

outer.latch:
  %best.f = and i32 %best.n, 65535
  %rn = add nsw i32 %r, 1
  %co = icmp ult i32 %rn, %rows
  br i1 %co, label %outer, label %exit

exit:
  ret i32 %best.f
}
)";

// h264ref: sum of absolute differences over two blocks.
const char *H264Src = R"(
@s.a = global i32, 256
@s.b = global i32, 256

define i32 @FNAME(i32 %rounds, i32 %seed) {
entry:
  br label %init

init:
  %i = phi i32 [ 0, %entry ], [ %in, %init ]
  %x = mul i32 %i, 1103515245
  %x2 = add i32 %x, %seed
  %x3 = and i32 %x2, 255
  %pa = gep i32* @s.a, i32 %i
  store i32 %x3, i32* %pa
  %y = mul i32 %i, 69069
  %y2 = and i32 %y, 255
  %pb = gep i32* @s.b, i32 %i
  store i32 %y2, i32* %pb
  %in = add nsw i32 %i, 1
  %c = icmp ult i32 %in, 64
  br i1 %c, label %init, label %outer.pre

outer.pre:
  br label %outer

outer:
  %r = phi i32 [ 0, %outer.pre ], [ %rn, %outer.latch ]
  %sad.o = phi i32 [ 0, %outer.pre ], [ %sad.f, %outer.latch ]
  br label %inner

inner:
  %j = phi i32 [ 0, %outer ], [ %jn, %inner ]
  %sad = phi i32 [ %sad.o, %outer ], [ %sad.n, %inner ]
  %qa = gep i32* @s.a, i32 %j
  %va = load i32, i32* %qa
  %qb = gep i32* @s.b, i32 %j
  %vb = load i32, i32* %qb
  %d = sub nsw i32 %va, %vb
  %neg = icmp slt i32 %d, 0
  %dn = sub nsw i32 0, %d
  %ad = select i1 %neg, i32 %dn, i32 %d
  %sad.n = add nsw i32 %sad, %ad
  %jn = add nsw i32 %j, 1
  %ci = icmp ult i32 %jn, 64
  br i1 %ci, label %inner, label %outer.latch

outer.latch:
  %sad.f = and i32 %sad.n, 1048575
  %rn = add nsw i32 %r, 1
  %co = icmp ult i32 %rn, %rounds
  br i1 %co, label %outer, label %exit

exit:
  ret i32 %sad.f
}
)";

// libquantum: xor/shift sweeps over a register file.
const char *LibquantumSrc = R"(
@lq.reg = global i32, 512

define i32 @FNAME(i32 %rounds, i32 %gate) {
entry:
  br label %init

init:
  %i = phi i32 [ 0, %entry ], [ %in, %init ]
  %v = mul i32 %i, 2246822519
  %p = gep i32* @lq.reg, i32 %i
  store i32 %v, i32* %p
  %in = add nsw i32 %i, 1
  %c = icmp ult i32 %in, 128
  br i1 %c, label %init, label %sweep.pre

sweep.pre:
  %g = and i32 %gate, 15
  br label %sweep

sweep:
  %r = phi i32 [ 0, %sweep.pre ], [ %rn, %sweep.latch ]
  %acc.o = phi i32 [ 0, %sweep.pre ], [ %acc.f, %sweep.latch ]
  br label %qloop

qloop:
  %j = phi i32 [ 0, %sweep ], [ %jn, %qcont ]
  %acc = phi i32 [ %acc.o, %sweep ], [ %acc.n, %qcont ]
  %p2 = gep i32* @lq.reg, i32 %j
  %q = load i32, i32* %p2
  %sh = shl i32 %q, %g
  %fx = xor i32 %q, %sh
  store i32 %fx, i32* %p2
  %acc.n = add i32 %acc, %fx
  %tr = icmp ugt i32 %gate, 255
  br i1 %tr, label %qdbg, label %qcont

qdbg:
  %p3 = gep i32* @lq.reg, i32 0
  store i32 %acc.n, i32* %p3
  br label %qcont

qcont:
  %jn = add nsw i32 %j, 1
  %ci = icmp ult i32 %jn, 128
  br i1 %ci, label %qloop, label %sweep.latch

sweep.latch:
  %acc.out = phi i32 [ %acc.n, %qcont ]
  %acc.f = lshr i32 %acc.out, 1
  %rn = add nsw i32 %r, 1
  %co = icmp ult i32 %rn, %rounds
  br i1 %co, label %sweep, label %exit

exit:
  ret i32 %acc.f
}
)";

// mcf: index chasing through a successor table.
const char *McfSrc = R"(
@m.next = global i32, 512

define i32 @FNAME(i32 %hops, i32 %seed) {
entry:
  br label %init

init:
  %i = phi i32 [ 0, %entry ], [ %in, %init ]
  %t = mul i32 %i, 7
  %t2 = add i32 %t, %seed
  %t3 = and i32 %t2, 127
  %p = gep i32* @m.next, i32 %i
  store i32 %t3, i32* %p
  %in = add nsw i32 %i, 1
  %c = icmp ult i32 %in, 128
  br i1 %c, label %init, label %chase.pre

chase.pre:
  br label %chase

chase:
  %h = phi i32 [ 0, %chase.pre ], [ %hn, %chase ]
  %cur = phi i32 [ 0, %chase.pre ], [ %nxt, %chase ]
  %sum = phi i32 [ 0, %chase.pre ], [ %sum.n, %chase ]
  %p2 = gep i32* @m.next, i32 %cur
  %nxt = load i32, i32* %p2
  %sum.n = add i32 %sum, %nxt
  %hn = add nsw i32 %h, 1
  %c2 = icmp ult i32 %hn, %hops
  br i1 %c2, label %chase, label %exit

exit:
  ret i32 %sum.n
}
)";

// dealII: 1-D stencil with a narrow induction variable that is
// sign-extended for addressing — the Figure 3 widening shape.
const char *DealIISrc = R"(
@d.a = global i32, 520
@d.b = global i32, 520

define i32 @FNAME(i32 %rounds, i32 %seed) {
entry:
  br label %init

init:
  %i = phi i32 [ 0, %entry ], [ %in, %init ]
  %v = mul i32 %i, 40503
  %v2 = add i32 %v, %seed
  %v3 = and i32 %v2, 1023
  %p = gep i32* @d.a, i32 %i
  store i32 %v3, i32* %p
  %in = add nsw i32 %i, 1
  %c = icmp ult i32 %in, 128
  br i1 %c, label %init, label %outer.pre

outer.pre:
  br label %outer

outer:
  %r = phi i32 [ 0, %outer.pre ], [ %rn, %outer.latch ]
  %acc.o = phi i32 [ 0, %outer.pre ], [ %acc.f, %outer.latch ]
  br label %stencil

stencil:
  %j = phi i16 [ 1, %outer ], [ %jn, %stencil ]
  %acc = phi i32 [ %acc.o, %outer ], [ %acc.n, %stencil ]
  %jw = sext i16 %j to i32
  %jm = sub nsw i32 %jw, 1
  %jp = add nsw i32 %jw, 1
  %pm = gep i32* @d.a, i32 %jm
  %vm = load i32, i32* %pm
  %pc = gep i32* @d.a, i32 %jw
  %vc = load i32, i32* %pc
  %pp = gep i32* @d.a, i32 %jp
  %vp = load i32, i32* %pp
  %c2 = shl i32 %vc, 1
  %s1 = add nsw i32 %vm, %c2
  %s2 = add nsw i32 %s1, %vp
  %avg = lshr i32 %s2, 2
  %pb = gep i32* @d.b, i32 %jw
  store i32 %avg, i32* %pb
  %acc.n = add i32 %acc, %avg
  %jn = add nsw i16 %j, 1
  %ci = icmp slt i16 %jn, 127
  br i1 %ci, label %stencil, label %outer.latch

outer.latch:
  %acc.f = and i32 %acc.n, 16777215
  %rn = add nsw i32 %r, 1
  %co = icmp ult i32 %rn, %rounds
  br i1 %co, label %outer, label %exit

exit:
  ret i32 %acc.f
}
)";

// sphinx3: dot products over i16 tables (sext in the hot loop).
const char *SphinxSrc = R"(
@x.f = global i16, 256
@x.w = global i16, 256

define i32 @FNAME(i32 %rounds, i32 %seed) {
entry:
  br label %init

init:
  %i = phi i32 [ 0, %entry ], [ %in, %init ]
  %v = mul i32 %i, 31
  %v2 = add i32 %v, %seed
  %vt = trunc i32 %v2 to i16
  %p = gep i16* @x.f, i32 %i
  store i16 %vt, i16* %p
  %w = mul i32 %i, 17
  %wt = trunc i32 %w to i16
  %pw0 = gep i16* @x.w, i32 %i
  store i16 %wt, i16* %pw0
  %in = add nsw i32 %i, 1
  %c = icmp ult i32 %in, 128
  br i1 %c, label %init, label %outer.pre

outer.pre:
  br label %outer

outer:
  %r = phi i32 [ 0, %outer.pre ], [ %rn, %outer.latch ]
  %dot.o = phi i32 [ 0, %outer.pre ], [ %dot.f, %outer.latch ]
  br label %dot

dot:
  %j = phi i16 [ 0, %outer ], [ %jn, %dot ]
  %acc = phi i32 [ %dot.o, %outer ], [ %acc.n, %dot ]
  %jw = sext i16 %j to i32
  %pf = gep i16* @x.f, i32 %jw
  %vf = load i16, i16* %pf
  %pw = gep i16* @x.w, i32 %jw
  %vw = load i16, i16* %pw
  %wf = sext i16 %vf to i32
  %ww = sext i16 %vw to i32
  %prod = mul nsw i32 %wf, %ww
  %acc.n = add i32 %acc, %prod
  %jn = add nsw i16 %j, 1
  %ci = icmp slt i16 %jn, 128
  br i1 %ci, label %dot, label %outer.latch

outer.latch:
  %dot.f = lshr i32 %acc.n, 3
  %rn = add nsw i32 %r, 1
  %co = icmp ult i32 %rn, %rounds
  br i1 %co, label %outer, label %exit

exit:
  ret i32 %dot.f
}
)";

// milc: small integer matrix-vector products.
const char *MilcSrc = R"(
@mm.m = global i32, 64
@mm.v = global i32, 16

define i32 @FNAME(i32 %rounds, i32 %seed) {
entry:
  br label %initm

initm:
  %i = phi i32 [ 0, %entry ], [ %in, %initm ]
  %e = mul i32 %i, 2654435761
  %e2 = lshr i32 %e, 28
  %p = gep i32* @mm.m, i32 %i
  store i32 %e2, i32* %p
  %in = add nsw i32 %i, 1
  %c = icmp ult i32 %in, 16
  br i1 %c, label %initm, label %initv.pre

initv.pre:
  br label %initv

initv:
  %k = phi i32 [ 0, %initv.pre ], [ %kn, %initv ]
  %ev = add i32 %k, %seed
  %ev2 = and i32 %ev, 15
  %pv = gep i32* @mm.v, i32 %k
  store i32 %ev2, i32* %pv
  %kn = add nsw i32 %k, 1
  %cv = icmp ult i32 %kn, 4
  br i1 %cv, label %initv, label %outer.pre

outer.pre:
  br label %outer

outer:
  %r = phi i32 [ 0, %outer.pre ], [ %rn, %outer.latch ]
  %acc.o = phi i32 [ 0, %outer.pre ], [ %acc.f, %outer.latch ]
  br label %row

row:
  %ri = phi i32 [ 0, %outer ], [ %rin, %row.latch ]
  %acc.r = phi i32 [ %acc.o, %outer ], [ %acc.rn, %row.latch ]
  %base = shl i32 %ri, 2
  br label %col

col:
  %cj = phi i32 [ 0, %row ], [ %cjn, %col ]
  %dotp = phi i32 [ 0, %row ], [ %dot.n, %col ]
  %idx = add i32 %base, %cj
  %pm = gep i32* @mm.m, i32 %idx
  %mv = load i32, i32* %pm
  %pv2 = gep i32* @mm.v, i32 %cj
  %vv = load i32, i32* %pv2
  %pr = mul nsw i32 %mv, %vv
  %dot.n = add nsw i32 %dotp, %pr
  %cjn = add nsw i32 %cj, 1
  %cc = icmp ult i32 %cjn, 4
  br i1 %cc, label %col, label %row.latch

row.latch:
  %acc.rn = add i32 %acc.r, %dot.n
  %rin = add nsw i32 %ri, 1
  %cr = icmp ult i32 %rin, 4
  br i1 %cr, label %row, label %outer.latch

outer.latch:
  %acc.f = and i32 %acc.rn, 1048575
  %rn = add nsw i32 %r, 1
  %co = icmp ult i32 %rn, %rounds
  br i1 %co, label %outer, label %exit

exit:
  ret i32 %acc.f
}
)";

Function *parseKernel(Module &M, const char *Src, const std::string &Name) {
  std::string Text(Src);
  const std::string Tag = "FNAME";
  size_t Pos = Text.find(Tag);
  assert(Pos != std::string::npos && "kernel text lacks FNAME");
  Text.replace(Pos, Tag.size(), Name);
  ParseResult R = parseModule(Text, M);
  if (!R.Ok) {
    std::fprintf(stderr, "kernel parse error: %s\n", R.Error.c_str());
    frost_unreachable("benchmark kernel failed to parse");
  }
  Function *F = M.getFunction(Name);
  assert(F && verifyFunction(*F) && "kernel is malformed");
  return F;
}

/// The bit-field-heavy "gcc" kernel is built programmatically so the
/// front-end lowering (legacy vs freeze) is mode-dependent, as in the paper
/// ("the gcc benchmark had 3,993 freeze instructions ... since it contains a
/// large number of bit-field operations").
Function *buildGccKernel(Module &M, const std::string &Name,
                         PipelineMode Mode) {
  IRContext &Ctx = M.context();
  auto *I32 = Ctx.intTy(32);
  frontend::RecordType Insn;
  Insn.add("opcode", 6).add("dst", 5).add("src1", 5).add("src2", 5)
      .add("flags", 4).add("imm", 7);
  frontend::BitFieldLowering Lowering =
      Mode == PipelineMode::Proposed ? frontend::BitFieldLowering::Proposed
                                     : frontend::BitFieldLowering::Legacy;

  GlobalVariable *Pool = Ctx.getGlobal("g.insns", I32, 256);
  Function *F = M.createFunction(Name, Ctx.types().fnTy(I32, {I32, I32}));
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Head = F->addBlock("head");
  BasicBlock *Body = F->addBlock("body");
  BasicBlock *Exit = F->addBlock("exit");
  IRBuilder B(Ctx, Entry);
  B.br(Head);

  B.setInsertPoint(Head);
  PhiNode *I = B.phi(I32, "i");
  PhiNode *Acc = B.phi(I32, "acc");
  Value *C = B.icmp(ICmpPred::ULT, I, F->arg(0), "c");
  B.condBr(C, Body, Exit);

  B.setInsertPoint(Body);
  Value *Slot = B.and_(I, Ctx.getInt(32, 63), "slot");
  Value *P = B.gep(Pool, Slot, true, "p");
  // Rewrite several fields of the instruction word, then read two back.
  Value *Op = B.and_(B.add(I, F->arg(1)), Ctx.getInt(32, 63), "op");
  frontend::emitFieldStore(B, P, Insn, "opcode", Op, Lowering);
  frontend::emitFieldStore(B, P, Insn, "dst", B.and_(I, Ctx.getInt(32, 31)),
                           Lowering);
  frontend::emitFieldStore(B, P, Insn, "flags",
                           B.and_(B.lshr(I, Ctx.getInt(32, 2)),
                                  Ctx.getInt(32, 15)),
                           Lowering);
  frontend::emitFieldStore(B, P, Insn, "imm",
                           B.and_(B.xor_(I, F->arg(1)), Ctx.getInt(32, 127)),
                           Lowering);
  Value *ROp = frontend::emitFieldLoad(B, P, Insn, "opcode", Lowering);
  Value *RImm = frontend::emitFieldLoad(B, P, Insn, "imm", Lowering);
  // Dilute the bit-field traffic with ordinary compiler-ish hashing work so
  // the freeze density lands near the paper's 0.29% of instructions.
  Value *H = B.xor_(ROp, RImm, "h0");
  for (unsigned Round = 0; Round != 24; ++Round) {
    H = B.mul(H, Ctx.getInt(32, 2654435761u), {}, "hm");
    H = B.xor_(H, B.lshr(H, Ctx.getInt(32, 13 + (Round % 5))), "hx");
    H = B.add(H, I, {}, "ha");
  }
  Value *Acc1 = B.add(Acc, H, {}, "acc1");
  Value *I1 = B.add(I, Ctx.getInt(32, 1), {true, false, false}, "i1");
  B.br(Head);

  I->addIncoming(Ctx.getInt(32, 0), Entry);
  I->addIncoming(I1, Body);
  Acc->addIncoming(Ctx.getInt(32, 0), Entry);
  Acc->addIncoming(Acc1, Body);

  B.setInsertPoint(Exit);
  B.ret(Acc);
  assert(verifyFunction(*F) && "gcc kernel is malformed");
  return F;
}

Function *buildSeededKernel(Module &M, const std::string &Name,
                            uint64_t Seed, bool BitFields) {
  fuzz::RandomProgramOptions Opts;
  Opts.Seed = Seed;
  Opts.Statements = 28;
  Opts.Loops = 3;
  Opts.WithBitFieldOps = BitFields;
  return fuzz::generateRandomFunction(M, Name, Opts);
}

} // namespace

const std::vector<KernelSpec> &bench::kernelSuite() {
  static const std::vector<KernelSpec> Suite = {
      // CINT (paper order).
      {"perlbench", false, {160, 7}},
      {"bzip2", false, {160, 11}},
      {"gcc", false, {300, 5}},
      {"mcf", false, {4000, 3}},
      {"gobmk", false, {160, 17}},
      {"hmmer", false, {60, 9}},
      {"sjeng", false, {160, 23}},
      {"libquantum", false, {30, 6}},
      {"h264ref", false, {60, 4}},
      {"omnetpp", false, {160, 29}},
      {"astar", false, {160, 31}},
      {"xalancbmk", false, {160, 37}},
      // CFP (integer analogues).
      {"milc", true, {200, 2}},
      {"namd", true, {160, 41}},
      {"dealII", true, {30, 8}},
      {"soplex", true, {160, 43}},
      {"povray", true, {160, 47}},
      {"lbm", true, {160, 53}},
      {"sphinx3", true, {30, 12}},
      // LNT outlier kernel.
      {"queens", false, {8, 0}},
  };
  return Suite;
}

Function *bench::buildKernel(Module &M, const std::string &Name,
                             const std::string &Suffix, PipelineMode Mode) {
  std::string FnName = Name + "." + Suffix;
  if (Name == "queens")
    return parseKernel(M, QueensSrc, FnName);
  if (Name == "hmmer")
    return parseKernel(M, HmmerSrc, FnName);
  if (Name == "h264ref")
    return parseKernel(M, H264Src, FnName);
  if (Name == "libquantum")
    return parseKernel(M, LibquantumSrc, FnName);
  if (Name == "mcf")
    return parseKernel(M, McfSrc, FnName);
  if (Name == "dealII")
    return parseKernel(M, DealIISrc, FnName);
  if (Name == "sphinx3")
    return parseKernel(M, SphinxSrc, FnName);
  if (Name == "milc")
    return parseKernel(M, MilcSrc, FnName);
  if (Name == "gcc")
    return buildGccKernel(M, FnName, Mode);

  // Seeded synthetic kernels for the remaining SPEC names.
  uint64_t Seed = 0xC0FFEE;
  for (char C : Name)
    Seed = Seed * 131 + static_cast<unsigned char>(C);
  bool BitFields = Name == "omnetpp" || Name == "xalancbmk";
  return buildSeededKernel(M, FnName, Seed, BitFields);
}
