//===- Kernels.h - SPEC CPU 2006 substitute kernels -------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite standing in for the paper's SPEC CPU 2006 C/C++
/// subset (12 CINT + 7 CFP, Section 7.1) plus the LNT "Stanford Queens"
/// kernel the paper singles out. Each kernel keeps the *name* of the SPEC
/// benchmark it substitutes for and exercises a workload shape reminiscent
/// of it (hashing, DP inner loops, SAD, pointer chasing, stencils, ...);
/// several are seeded synthetic kernels from the random program generator.
/// All kernels are integer-only (the simulator has no FPU) — the CFP names
/// run integer analogues, which preserves the experiment's point: measuring
/// the *delta* between the legacy and freeze pipelines on identical
/// workloads.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_BENCH_KERNELS_H
#define FROST_BENCH_KERNELS_H

#include "opt/Pass.h"

#include <cstdint>
#include <string>
#include <vector>

namespace frost {

class Function;
class Module;

namespace bench {

/// One benchmark kernel.
struct KernelSpec {
  std::string Name;
  bool IsCFP = false;       ///< Reported in the CFP column of Figure 6.
  std::vector<uint32_t> Args; ///< Fixed inputs for the simulator runs.
};

/// The full suite, in the paper's Figure 6 order (CINT then CFP), plus
/// "queens" last.
const std::vector<KernelSpec> &kernelSuite();

/// Builds kernel \p Name into \p M (function name "<name>.<suffix>").
/// \p Mode selects the front-end bit-field lowering where relevant (the
/// "gcc" kernel is bit-field heavy, as in the paper).
Function *buildKernel(Module &M, const std::string &Name,
                      const std::string &Suffix, PipelineMode Mode);

} // namespace bench
} // namespace frost

#endif // FROST_BENCH_KERNELS_H
