//===- CodeSize.cpp - Section 7.2 object size / freeze count experiment --------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 7.2 code-size results: object size changes of
/// roughly +/-0.5%; freeze instructions around 0.04-0.06% of all IR
/// instructions across the suite; and a bit-field-heavy "gcc" with an order
/// of magnitude more (the paper: 0.29%).
///
//===----------------------------------------------------------------------===//

#include "Kernels.h"

#include "codegen/Codegen.h"
#include "ir/Context.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "opt/Pass.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace frost;
using namespace frost::bench;

namespace {

unsigned freezeCount(Function &F) {
  unsigned N = 0;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      N += I->getOpcode() == Opcode::Freeze;
  return N;
}

} // namespace

int main(int argc, char **argv) {
  static IRContext Ctx;
  static Module M(Ctx, "size");

  std::printf("\n=== Section 7.2: object size and freeze fraction ===\n");
  std::printf("%-12s %10s %10s %8s %8s %8s %10s\n", "benchmark", "legacyMI",
              "frostMI", "size%", "IRinsts", "freezes", "freeze%%IR");
  uint64_t TotalIR = 0, TotalFreeze = 0;
  double GccFraction = 0;
  for (const KernelSpec &Spec : kernelSuite()) {
    Function *FL = buildKernel(M, Spec.Name, "szl", PipelineMode::Legacy);
    Function *FP = buildKernel(M, Spec.Name, "szp", PipelineMode::Proposed);
    for (auto [F, Mode] :
         {std::pair{FL, PipelineMode::Legacy},
          std::pair{FP, PipelineMode::Proposed}}) {
      PassManager PM(false);
      buildStandardPipeline(PM, Mode);
      PM.run(*F);
    }
    codegen::CompiledFunction CL = codegen::compileFunction(*FL);
    codegen::CompiledFunction CP = codegen::compileFunction(*FP);

    unsigned IR = FP->instructionCount();
    unsigned Fr = freezeCount(*FP);
    TotalIR += IR;
    TotalFreeze += Fr;
    double SizeDelta = 100.0 *
                       (static_cast<double>(CP.Stats.MIInstructions) -
                        CL.Stats.MIInstructions) /
                       CL.Stats.MIInstructions;
    double FrFrac = 100.0 * Fr / IR;
    if (Spec.Name == "gcc")
      GccFraction = FrFrac;
    std::printf("%-12s %10u %10u %+7.2f%% %8u %8u %9.3f%%\n",
                Spec.Name.c_str(), CL.Stats.MIInstructions,
                CP.Stats.MIInstructions, SizeDelta, IR, Fr, FrFrac);
  }
  std::printf("suite freeze fraction: %.3f%% of IR instructions "
              "(paper: 0.04-0.06%%)\n",
              100.0 * static_cast<double>(TotalFreeze) /
                  static_cast<double>(TotalIR));
  std::printf("bit-field-heavy gcc:   %.3f%% (paper: 0.29%%)\n", GccFraction);

  benchmark::RegisterBenchmark(
      "BM_codegen_suite", [](benchmark::State &State) {
        IRContext LocalCtx;
        Module LocalM(LocalCtx, "bm");
        std::vector<Function *> Fns;
        for (const KernelSpec &Spec : kernelSuite())
          Fns.push_back(
              buildKernel(LocalM, Spec.Name, "bm", PipelineMode::Proposed));
        for (auto _ : State)
          for (Function *F : Fns) {
            codegen::CompiledFunction CF = codegen::compileFunction(*F);
            benchmark::DoNotOptimize(CF.Stats.MIInstructions);
          }
      });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
