//===- ServiceBench.cpp - frost-tvd vs one-shot CLI load bench ------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment behind the verification service: take the verdict-cache
/// register sweep's function shape (2 insts, 3 args, i3, add/and — dense in
/// isomorphs) and verify N functions three ways:
///
///   cli          one `frost-tv --file` process per function — the
///                pre-daemon workflow every editor integration and CI
///                script would run: spawn, parse, verify cold, exit.
///   daemon_cold  one in-process frost-tvd server, every function as one
///                pipelined batch over loopback TCP, empty cache.
///   daemon_warm  the same batch again: every verdict now comes from the
///                shared in-memory cache.
///
/// Recorded per leg: wall seconds and requests/s, plus cache hit/miss
/// counts for the daemon legs. The acceptance gate this bench enforces
/// (exit 1 on violation):
///   - per-request report bytes from the daemon are byte-identical to the
///     CLI's report lines for the same function, and
///   - warm daemon throughput >= 5x the one-shot CLI.
///
/// The speedup is architectural, not parallelism (CI runs this on one
/// core): the CLI pays process spawn + module parse + full verification
/// per function, the warm daemon one socket round-trip + one cache lookup.
///
/// Output: merges a "service" section into an existing BENCH_TV.json
/// (written by bench_tv, schema v4) right before its "total" key and bumps
/// the schema to frost-bench-tv/v5 — every v1-v4 key is unchanged. If the
/// file does not exist, a minimal v5 document is written instead.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Enumerate.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/Stats.h"
#include "tv/Campaign.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

using namespace frost;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The verdict-cache register sweep shape (bench_tv's "register" cache
/// campaign), capped to a per-process-spawn-affordable population.
std::vector<std::string> enumerateSweep(uint64_t MaxFunctions) {
  fuzz::EnumOptions Enum;
  Enum.NumInsts = 2;
  Enum.NumArgs = 3;
  Enum.Width = 3;
  Enum.WithPoison = true;
  Enum.WithFlags = true;
  Enum.Opcodes = {Opcode::Add, Opcode::And};

  std::vector<std::string> Fns;
  Fns.reserve(MaxFunctions);
  IRContext Ctx;
  Module M(Ctx, "service-bench");
  fuzz::enumerateFunctions(M, Enum, [&](Function &F) {
    Fns.push_back(printFunction(F));
    return Fns.size() < MaxFunctions;
  });
  return Fns;
}

/// The report lines a `frost-tv --file` run prints for its campaign: the
/// lines strictly after the `engine=...` banner and strictly before the
/// `report-hash=` line — exactly CampaignResult::report().
std::string extractReport(const std::string &CliOutput) {
  std::istringstream In(CliOutput);
  std::string Line, Report;
  bool InReport = false;
  while (std::getline(In, Line)) {
    if (Line.rfind("report-hash=", 0) == 0)
      break;
    if (InReport)
      Report += Line + "\n";
    if (Line.rfind("engine=", 0) == 0)
      InReport = true;
  }
  return Report;
}

struct Leg {
  double WallSeconds = 0;
  uint64_t Hits = 0, Misses = 0;
  std::vector<std::string> Reports;
};

/// One `frost-tv --file <fn>` process per function — spawn, parse, verify,
/// exit. Returns false if any invocation fails outright.
bool runCLILeg(const std::string &FrostTV, const std::vector<std::string> &Fns,
               Leg &Out) {
  std::string Dir = "/tmp/frost-service-bench." + std::to_string(::getpid());
  ::mkdir(Dir.c_str(), 0755);
  std::string Path = Dir + "/fn.fr";

  double Start = now();
  for (const std::string &Fn : Fns) {
    {
      std::ofstream F(Path, std::ios::trunc);
      F << Fn;
    }
    std::string Cmd = FrostTV + " --file " + Path + " 2>/dev/null";
    FILE *P = ::popen(Cmd.c_str(), "r");
    if (!P) {
      std::fprintf(stderr, "bench_service: cannot run '%s'\n", Cmd.c_str());
      return false;
    }
    std::string Output;
    char Buf[4096];
    size_t N;
    while ((N = ::fread(Buf, 1, sizeof(Buf), P)) > 0)
      Output.append(Buf, N);
    int Status = ::pclose(P);
    if (Status != 0) {
      std::fprintf(stderr,
                   "bench_service: '%s' exited with status %d:\n%s\n",
                   Cmd.c_str(), Status, Output.c_str());
      return false;
    }
    Out.Reports.push_back(extractReport(Output));
  }
  Out.WallSeconds = now() - Start;

  std::remove(Path.c_str());
  ::rmdir(Dir.c_str());
  return true;
}

/// One pipelined batch of every function against \p Port. Cache deltas are
/// read from the process-global tv.* counters (the server is in-process).
bool runDaemonLeg(unsigned Port, const std::vector<std::string> &Fns,
                  Leg &Out) {
  svc::Client Client;
  std::string Error;
  if (!Client.connect(Port, &Error)) {
    std::fprintf(stderr, "bench_service: %s\n", Error.c_str());
    return false;
  }
  uint64_t Hits0 = stats::get("tv.cache_hits");
  uint64_t Misses0 = stats::get("tv.cache_misses");

  double Start = now();
  for (uint64_t I = 0; I != Fns.size(); ++I) {
    svc::Request Req;
    Req.Id = I;
    Req.Function = Fns[I];
    if (!Client.send(Req, &Error)) {
      std::fprintf(stderr, "bench_service: %s\n", Error.c_str());
      return false;
    }
  }
  for (uint64_t I = 0; I != Fns.size(); ++I) {
    svc::Response Resp;
    if (!Client.receive(Resp, &Error)) {
      std::fprintf(stderr, "bench_service: %s\n", Error.c_str());
      return false;
    }
    if (Resp.V == svc::Response::Verdict::Error) {
      std::fprintf(stderr, "bench_service: request %llu rejected: %s\n",
                   (unsigned long long)Resp.Id, Resp.Report.c_str());
      return false;
    }
    Out.Reports.push_back(Resp.Report);
  }
  Out.WallSeconds = now() - Start;
  Out.Hits = stats::get("tv.cache_hits") - Hits0;
  Out.Misses = stats::get("tv.cache_misses") - Misses0;
  return true;
}

double reqPerSec(uint64_t N, double Wall) {
  return Wall > 0 ? double(N) / Wall : 0;
}

/// Merges \p ServiceJson into the BENCH_TV.json at \p Path: inserted
/// before the "total" key, schema bumped v4 -> v5. Writes a minimal v5
/// document when the file is absent or has no "total" anchor.
bool writeJson(const std::string &Path, const std::string &ServiceJson) {
  std::string Doc;
  {
    std::ifstream In(Path);
    if (In) {
      std::stringstream Buf;
      Buf << In.rdbuf();
      Doc = Buf.str();
    }
  }
  const std::string Anchor = "\n  \"total\":";
  size_t At = Doc.find(Anchor);
  if (!Doc.empty() && At != std::string::npos) {
    Doc.insert(At + 1, ServiceJson);
    size_t Schema = Doc.find("frost-bench-tv/v4");
    if (Schema != std::string::npos)
      Doc.replace(Schema, strlen("frost-bench-tv/v4"), "frost-bench-tv/v5");
  } else {
    Doc = "{\n  \"schema\": \"frost-bench-tv/v5\",\n" + ServiceJson;
    // Close the object: drop the section's trailing ",\n".
    Doc.erase(Doc.size() - 2);
    Doc += "\n}\n";
  }
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out) {
    std::fprintf(stderr, "bench_service: cannot write %s\n", Path.c_str());
    return false;
  }
  Out << Doc;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath = "BENCH_TV.json";
  std::string FrostTV = "tools/frost-tv";
  uint64_t Scale = 1;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--frost-tv") && I + 1 < argc)
      FrostTV = argv[++I];
    else if (!std::strcmp(argv[I], "--scale") && I + 1 < argc)
      Scale = std::max(1l, std::atol(argv[++I]));
    else {
      std::fprintf(stderr,
                   "usage: bench_service [--json PATH] [--frost-tv PATH] "
                   "[--scale N]\n");
      return 2;
    }
  }
  {
    std::ifstream Probe(FrostTV);
    if (!Probe) {
      std::fprintf(stderr,
                   "bench_service: frost-tv not found at '%s' (pass "
                   "--frost-tv)\n",
                   FrostTV.c_str());
      return 2;
    }
  }

  const uint64_t N = std::max<uint64_t>(4, 192 / Scale);
  std::printf("=== Verification service: daemon vs one-shot CLI ===\n");
  std::vector<std::string> Fns = enumerateSweep(N);
  std::printf("register sweep shape (2 insts, 3 args, i3, add/and): %llu "
              "functions\n",
              (unsigned long long)Fns.size());

  Leg CLI;
  if (!runCLILeg(FrostTV, Fns, CLI))
    return 1;
  std::printf("cli        : %llu runs in %.3fs (%.0f req/s) — spawn + parse "
              "+ cold verify each\n",
              (unsigned long long)Fns.size(), CLI.WallSeconds,
              reqPerSec(Fns.size(), CLI.WallSeconds));

  svc::ServerOptions Opts;
  Opts.Jobs = 1; // Single-core CI: the win must be architectural.
  svc::Server Server(Opts);
  std::string Error;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "bench_service: %s\n", Error.c_str());
    return 1;
  }

  Leg Cold, Warm;
  bool DaemonOk = runDaemonLeg(Server.port(), Fns, Cold) &&
                  runDaemonLeg(Server.port(), Fns, Warm);
  Server.requestShutdown();
  Server.wait();
  if (!DaemonOk)
    return 1;

  std::printf("daemon_cold: %llu reqs in %.3fs (%.0f req/s) — %llu hits "
              "(isomorphs), %llu misses\n",
              (unsigned long long)Fns.size(), Cold.WallSeconds,
              reqPerSec(Fns.size(), Cold.WallSeconds),
              (unsigned long long)Cold.Hits, (unsigned long long)Cold.Misses);
  std::printf("daemon_warm: %llu reqs in %.3fs (%.0f req/s) — %llu hits, "
              "%llu misses\n",
              (unsigned long long)Fns.size(), Warm.WallSeconds,
              reqPerSec(Fns.size(), Warm.WallSeconds),
              (unsigned long long)Warm.Hits, (unsigned long long)Warm.Misses);

  // Parity: every daemon report (cold and warm) byte-identical to the CLI's.
  bool Parity = true;
  std::string AllReports;
  for (size_t I = 0; I != Fns.size(); ++I) {
    if (Cold.Reports[I] != CLI.Reports[I] ||
        Warm.Reports[I] != CLI.Reports[I]) {
      Parity = false;
      std::fprintf(stderr,
                   "bench_service: report divergence on function %zu\n"
                   "--- cli ---\n%s--- daemon(cold) ---\n%s"
                   "--- daemon(warm) ---\n%s",
                   I, CLI.Reports[I].c_str(), Cold.Reports[I].c_str(),
                   Warm.Reports[I].c_str());
    }
    AllReports += CLI.Reports[I];
  }
  uint64_t ReportHash = tv::fingerprintFailure(AllReports);
  double ColdSpeedup = Cold.WallSeconds > 0
                           ? CLI.WallSeconds / Cold.WallSeconds
                           : 0;
  double WarmSpeedup = Warm.WallSeconds > 0
                           ? CLI.WallSeconds / Warm.WallSeconds
                           : 0;
  std::printf("speedup    : cold %.1fx, warm %.1fx | report parity %s | "
              "report hash %016llx\n",
              ColdSpeedup, WarmSpeedup, Parity ? "byte-identical" : "NO",
              (unsigned long long)ReportHash);

  char Buf[512];
  std::string Json;
  Json += "  \"service\": {\n";
  std::snprintf(Buf, sizeof(Buf),
                "    \"campaign\": {\"source\": \"exhaustive\", \"insts\": 2, "
                "\"args\": 3, \"width\": 3, \"opcodes\": \"add,and\", "
                "\"functions\": %llu, \"scale\": %llu, \"jobs\": 1},\n",
                (unsigned long long)Fns.size(), (unsigned long long)Scale);
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "    \"cli\": {\"wall_s\": %.4f, \"requests_per_s\": %.0f},\n",
                CLI.WallSeconds, reqPerSec(Fns.size(), CLI.WallSeconds));
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "    \"daemon_cold\": {\"wall_s\": %.4f, \"requests_per_s\": "
                "%.0f, \"cache_hits\": %llu, \"cache_misses\": %llu},\n",
                Cold.WallSeconds, reqPerSec(Fns.size(), Cold.WallSeconds),
                (unsigned long long)Cold.Hits,
                (unsigned long long)Cold.Misses);
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "    \"daemon_warm\": {\"wall_s\": %.4f, \"requests_per_s\": "
                "%.0f, \"cache_hits\": %llu, \"cache_misses\": %llu},\n",
                Warm.WallSeconds, reqPerSec(Fns.size(), Warm.WallSeconds),
                (unsigned long long)Warm.Hits,
                (unsigned long long)Warm.Misses);
  Json += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "    \"cold_speedup\": %.2f, \"warm_speedup\": %.2f, "
                "\"report_parity\": %s, \"report_hash\": \"%016llx\"\n  },\n",
                ColdSpeedup, WarmSpeedup, Parity ? "true" : "false",
                (unsigned long long)ReportHash);
  Json += Buf;

  if (!writeJson(JsonPath, Json))
    return 1;
  std::printf("wrote %s (schema frost-bench-tv/v5)\n", JsonPath.c_str());

  if (!Parity) {
    std::fprintf(stderr, "bench_service: FAIL — daemon reports diverge from "
                         "the CLI\n");
    return 1;
  }
  if (WarmSpeedup < 5.0) {
    std::fprintf(stderr,
                 "bench_service: FAIL — warm daemon %.1fx < 5x one-shot "
                 "CLI\n",
                 WarmSpeedup);
    return 1;
  }
  return 0;
}
