//===- MemoryBench.cpp - Section 7.2 peak memory experiment --------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 7.2 memory result: peak compiler memory is
/// essentially unchanged by the freeze pipeline (the paper saw at most a 2%
/// increase on a few benchmarks). The paper sampled rss/vsz with ps; we
/// account IR allocations directly through the MemStats hooks.
///
//===----------------------------------------------------------------------===//

#include "Kernels.h"

#include "ir/Cloning.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "support/MemStats.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace frost;
using namespace frost::bench;

namespace {

/// Peak live IR bytes while optimizing a fresh clone of \p F.
size_t peakBytes(Module &M, Function &F, PipelineMode Mode) {
  memstats::resetPeak();
  size_t Before = memstats::peakBytes();
  Function *Clone = cloneFunction(
      F, M, F.getName() + (Mode == PipelineMode::Legacy ? ".ml" : ".mp"));
  PassManager PM(false);
  buildStandardPipeline(PM, Mode);
  PM.run(*Clone);
  size_t Peak = memstats::peakBytes();
  M.eraseFunction(Clone);
  return Peak - Before;
}

} // namespace

int main(int argc, char **argv) {
  static IRContext Ctx;
  static Module M(Ctx, "mem");

  std::printf("\n=== Section 7.2: peak compiler memory, legacy vs freeze "
              "pipeline ===\n");
  std::printf("%-12s %12s %12s %9s\n", "benchmark", "legacy(B)", "frost(B)",
              "change%");
  double MaxDelta = 0;
  for (const KernelSpec &Spec : kernelSuite()) {
    Function *FL = buildKernel(M, Spec.Name, "ml0", PipelineMode::Legacy);
    Function *FP = buildKernel(M, Spec.Name, "mp0", PipelineMode::Proposed);
    size_t L = peakBytes(M, *FL, PipelineMode::Legacy);
    size_t P = peakBytes(M, *FP, PipelineMode::Proposed);
    double Delta =
        100.0 * (static_cast<double>(P) - static_cast<double>(L)) /
        static_cast<double>(L);
    MaxDelta = std::max(MaxDelta, Delta);
    std::printf("%-12s %12zu %12zu %+8.2f%%\n", Spec.Name.c_str(), L, P,
                Delta);
  }
  std::printf("max increase: %+.2f%%  (paper: unchanged for most, <= 2%% "
              "worst case)\n",
              MaxDelta);

  // google-benchmark hook: allocation churn of one optimize cycle.
  benchmark::RegisterBenchmark(
      "BM_peak_memory_probe", [](benchmark::State &State) {
        IRContext LocalCtx;
        Module LocalM(LocalCtx, "bm");
        Function *F =
            buildKernel(LocalM, "gcc", "bm", PipelineMode::Proposed);
        unsigned N = 0;
        for (auto _ : State) {
          Function *C =
              cloneFunction(*F, LocalM, "c" + std::to_string(N++));
          PassManager PM(false);
          buildStandardPipeline(PM, PipelineMode::Proposed);
          PM.run(*C);
          LocalM.eraseFunction(C);
        }
        State.counters["live_bytes"] =
            static_cast<double>(memstats::liveBytes());
      });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
