//===- LNTBench.cpp - Section 7.2 LNT binary-diff experiment -------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 7.2 LNT statistics: across 281 benchmarks, "only
/// 26% had different IR after optimization, and only 82% of those produced
/// different assembly (21% overall resulted in a different binary)". We run
/// the legacy and freeze pipelines over 281 generated programs and compare
/// the printed IR and the emitted frost-risc assembly.
///
//===----------------------------------------------------------------------===//

#include "Kernels.h"

#include "codegen/Codegen.h"
#include "fuzz/RandomProgram.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "opt/Pass.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace frost;
using namespace frost::bench;

namespace {

unsigned CorpusSize = 281; // As in the paper's LNT runs.

struct Stats {
  unsigned Total = 0;
  unsigned DiffIR = 0;
  unsigned DiffAsm = 0;
};

Stats runCorpus(unsigned N = CorpusSize) {
  Stats S;
  for (unsigned Seed = 1; Seed <= N; ++Seed) {
    fuzz::RandomProgramOptions Opts;
    Opts.Seed = Seed * 7919;
    Opts.Statements = 20 + Seed % 17;
    Opts.Loops = 1 + Seed % 3;
    Opts.WithBitFieldOps = (Seed % 4) == 0; // A quarter touch bit-fields.

    // Identical program in two fresh contexts, so names and global layout
    // agree exactly and the only difference is the pipeline mode.
    IRContext CtxL, CtxP;
    Module ML(CtxL, "lnt.l"), MP(CtxP, "lnt.p");
    Function *FL = fuzz::generateRandomFunction(ML, "f", Opts);
    Function *FP = fuzz::generateRandomFunction(MP, "f", Opts);

    PassManager PML(false), PMP(false);
    buildStandardPipeline(PML, PipelineMode::Legacy);
    buildStandardPipeline(PMP, PipelineMode::Proposed);
    PML.run(*FL);
    PMP.run(*FP);

    bool IRDiff = FL->str() != FP->str();
    codegen::CompiledFunction CL = codegen::compileFunction(*FL);
    codegen::CompiledFunction CP = codegen::compileFunction(*FP);
    bool AsmDiff = CL.MF.str() != CP.MF.str();

    ++S.Total;
    S.DiffIR += IRDiff;
    S.DiffAsm += AsmDiff;
  }
  return S;
}

} // namespace

int main(int argc, char **argv) {
  Stats S = runCorpus();
  std::printf("\n=== Section 7.2: LNT corpus, legacy vs freeze pipeline "
              "===\n");
  std::printf("programs:             %u\n", S.Total);
  std::printf("different IR:         %u (%.0f%%)   [paper: 26%%]\n", S.DiffIR,
              100.0 * S.DiffIR / S.Total);
  double OfThose = S.DiffIR ? 100.0 * S.DiffAsm / S.DiffIR : 0.0;
  std::printf("different asm:        %u (%.0f%% of changed-IR) "
              "[paper: 82%%]\n",
              S.DiffAsm, OfThose);
  std::printf("different binary:     %.0f%% overall   [paper: 21%%]\n",
              100.0 * S.DiffAsm / S.Total);

  benchmark::RegisterBenchmark("BM_lnt_corpus",
                               [](benchmark::State &State) {
                                 for (auto _ : State) {
                                   Stats R = runCorpus(20);
                                   benchmark::DoNotOptimize(R.DiffAsm);
                                 }
                               });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
