//===- TVBench.cpp - Section 6 opt-fuzz + Alive validation experiment ----------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 6 testing methodology: "we used opt-fuzz to
/// exhaustively generate all LLVM functions with three instructions (over
/// 2-bit integer arithmetic) and then we used Alive to validate both
/// individual passes and the collection of passes implied by -O2". Here the
/// enumerator plays opt-fuzz, the exhaustive refinement checker plays Alive,
/// and the pipeline in Proposed mode must validate on every function, while
/// the Legacy select transformations are caught red-handed.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Enumerate.h"

#include "ir/Cloning.h"
#include "ir/IRBuilder.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "opt/Passes.h"
#include "support/ThreadPool.h"
#include "tv/Campaign.h"
#include "tv/Refinement.h"
#include "tv/VerdictCache.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace frost;
using frost::sem::SemanticsConfig;

namespace {

struct SweepResult {
  uint64_t Functions = 0;
  uint64_t Changed = 0;
  uint64_t Valid = 0;
  uint64_t Invalid = 0;
  uint64_t Inconclusive = 0;
  double Seconds = 0;
};

/// Validates the Proposed pipeline over the first \p MaxFunctions of the
/// NumInsts-instruction space (2-bit arithmetic, poison operands included).
/// The paper ran the full 3-instruction space over days of CPU; the bench
/// default covers an exhaustive prefix sized for minutes.
SweepResult sweepPipeline(unsigned NumInsts, bool WithSelect,
                          uint64_t MaxFunctions) {
  IRContext Ctx;
  Module M(Ctx, "tvbench");
  fuzz::EnumOptions Opts;
  Opts.NumInsts = NumInsts;
  Opts.NumArgs = 1;
  Opts.WithPoison = true;
  Opts.WithFlags = true;
  Opts.WithSelect = WithSelect;
  Opts.Opcodes = {Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::And,
                  Opcode::Xor, Opcode::Shl};

  SemanticsConfig Config = SemanticsConfig::proposed();
  tv::TVOptions TVOpts;
  TVOpts.CompareMemory = false;

  SweepResult R;
  auto T0 = std::chrono::steady_clock::now();
  fuzz::enumerateFunctions(M, Opts, [&](Function &F) {
    if (R.Functions >= MaxFunctions)
      return false;
    Function *Orig = cloneFunction(F, M, "orig");
    PassManager PM(false);
    buildStandardPipeline(PM, PipelineMode::Proposed);
    R.Changed += PM.run(F);
    tv::TVResult TR = tv::checkRefinement(*Orig, F, Config, TVOpts);
    M.eraseFunction(Orig);
    ++R.Functions;
    if (TR.valid())
      ++R.Valid;
    else if (TR.invalid())
      ++R.Invalid;
    else
      ++R.Inconclusive;
    return true;
  });
  R.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  return R;
}

/// The i2 2-instruction and i2 3-instruction enumeration campaigns, run
/// through the parallel engine. Returns the campaign options so the same
/// space is measured at every jobs count.
tv::CampaignOptions campaignShape(unsigned NumInsts, uint64_t MaxFunctions) {
  tv::CampaignOptions Opts;
  Opts.Enum.NumInsts = NumInsts;
  Opts.Enum.NumArgs = 1;
  Opts.Enum.WithPoison = true;
  Opts.Enum.WithFlags = true;
  Opts.Enum.WithSelect = NumInsts >= 3;
  Opts.Enum.Opcodes = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                       Opcode::And, Opcode::Xor, Opcode::Shl};
  Opts.MaxFunctions = MaxFunctions;
  Opts.TV.CompareMemory = false;
  return Opts;
}

/// Measures the same campaign serially and at --jobs N; verifies the two
/// reports are byte-identical (the determinism contract) and reports the
/// throughput ratio. Returns false if determinism is violated.
bool measureCampaignScaling(unsigned NumInsts, uint64_t MaxFunctions,
                            unsigned Jobs) {
  tv::CampaignOptions Opts = campaignShape(NumInsts, MaxFunctions);

  Opts.Jobs = 1;
  tv::CampaignResult Serial = tv::runCampaign(Opts);
  Opts.Jobs = Jobs;
  tv::CampaignResult Parallel = tv::runCampaign(Opts);

  bool Deterministic = Serial.report() == Parallel.report();
  double Speedup = Parallel.WallSeconds > 0
                       ? Serial.WallSeconds / Parallel.WallSeconds
                       : 0;
  std::printf("%u-instruction campaign (%llu functions): "
              "--jobs 1: %.2fs (%.0f checks/s), --jobs %u: %.2fs "
              "(%.0f checks/s), speedup %.2fx, reports %s\n",
              NumInsts, (unsigned long long)Serial.Functions,
              Serial.WallSeconds, Serial.checksPerSecond(), Jobs,
              Parallel.WallSeconds, Parallel.checksPerSecond(), Speedup,
              Deterministic ? "byte-identical" : "DIVERGED");
  unsigned HW = ThreadPool::defaultThreadCount();
  if (HW < Jobs)
    std::printf("  (note: only %u hardware thread(s); wall-clock speedup is "
                "bounded by the hardware, not the engine)\n", HW);
  return Deterministic;
}

//===----------------------------------------------------------------------===//
// Bit-sliced engine sweep -> BENCH_TV.json
//===----------------------------------------------------------------------===//

/// One engine's measurement of one campaign shape.
struct EngineRun {
  double WallSeconds = 0;
  uint64_t Functions = 0;
  uint64_t Inputs = 0;
  uint64_t Batches = 0;
  uint64_t Fallbacks = 0;
  std::string Report; // Canonical report (timing-free, jobs-independent).
};

/// One width of the i1-i4 sweep, both engines.
struct WidthRun {
  unsigned Width = 0;
  EngineRun Scalar, Sliced;
  bool Parity = false; // Byte-identical reports (incl. a --jobs 2 rerun).
};

/// The campaign shape of the perf sweep: every 2-instruction, 3-argument
/// function over width-W arithmetic (plus icmp/select/freeze), with poison
/// inputs. Three arguments make the input product large enough that
/// refinement checking — not enumeration/printing/pipeline overhead —
/// dominates the wall time, which is the regime the bit-sliced engine
/// targets (see docs/performance.md).
tv::CampaignOptions sweepShape(unsigned Width, uint64_t MaxFunctions) {
  tv::CampaignOptions Opts;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.NumArgs = 3;
  Opts.Enum.Width = Width;
  Opts.Enum.WithPoison = true;
  Opts.Enum.WithFlags = true;
  Opts.Enum.WithSelect = true;
  Opts.Enum.Opcodes = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                       Opcode::And, Opcode::Xor, Opcode::Shl};
  Opts.MaxFunctions = MaxFunctions;
  Opts.TV.CompareMemory = false;
  return Opts;
}

EngineRun runEngine(tv::CampaignOptions Opts, tv::TVEngine Engine,
                    unsigned Jobs) {
  Opts.TV.Engine = Engine;
  Opts.Jobs = Jobs;
  tv::CampaignResult R = tv::runCampaign(Opts);
  EngineRun E;
  E.WallSeconds = R.WallSeconds;
  E.Functions = R.Functions;
  E.Inputs = R.InputsChecked;
  E.Batches = R.BitslicedBatches;
  E.Fallbacks = R.ScalarFallbacks;
  E.Report = R.report();
  return E;
}

double tuplesPerSec(const EngineRun &E) {
  return E.WallSeconds > 0 ? double(E.Inputs) / E.WallSeconds : 0;
}

/// Runs the i1-i4 dual-engine sweep and writes the BENCH_TV.json perf
/// record to \p JsonPath. Returns false when any width's reports diverge
/// between engines (verdict parity is part of the record, but a divergence
/// is also a hard failure).
bool runEngineSweep(const std::string &JsonPath, uint64_t Scale,
                    const std::string &MemoryJson) {
  // Function counts per width, sized so the scalar side of the full sweep
  // runs in ~10s; --scale N divides them for smoke runs.
  const uint64_t Counts[4] = {3000, 2000, 1000, 500};
  std::vector<WidthRun> Runs;
  bool AllParity = true;

  std::printf("\n=== Bit-sliced engine: i1-i4 dual-engine sweep ===\n");
  for (unsigned W = 1; W <= 4; ++W) {
    tv::CampaignOptions Opts =
        sweepShape(W, std::max<uint64_t>(1, Counts[W - 1] / Scale));
    WidthRun R;
    R.Width = W;
    R.Scalar = runEngine(Opts, tv::TVEngine::Scalar, 1);
    R.Sliced = runEngine(Opts, tv::TVEngine::BitSliced, 1);
    // The parity contract covers any --jobs; spot-check a parallel rerun of
    // the cheap engine.
    EngineRun SlicedJ2 = runEngine(Opts, tv::TVEngine::BitSliced, 2);
    R.Parity = R.Scalar.Report == R.Sliced.Report &&
               R.Scalar.Report == SlicedJ2.Report;
    AllParity &= R.Parity;
    double Speedup = R.Sliced.WallSeconds > 0
                         ? R.Scalar.WallSeconds / R.Sliced.WallSeconds
                         : 0;
    std::printf("i%u: %llu fns, %llu inputs | scalar %.2fs (%.0f tuples/s) | "
                "bitsliced %.3fs (%.0f tuples/s, %llu batches, %llu "
                "fallbacks) | speedup %.1fx, reports %s\n",
                W, (unsigned long long)R.Scalar.Functions,
                (unsigned long long)R.Scalar.Inputs, R.Scalar.WallSeconds,
                tuplesPerSec(R.Scalar), R.Sliced.WallSeconds,
                tuplesPerSec(R.Sliced), (unsigned long long)R.Sliced.Batches,
                (unsigned long long)R.Sliced.Fallbacks, Speedup,
                R.Parity ? "byte-identical" : "DIVERGED");
    Runs.push_back(std::move(R));
  }

  double ScalarWall = 0, SlicedWall = 0;
  uint64_t Inputs = 0;
  std::string AllReports;
  for (const WidthRun &R : Runs) {
    ScalarWall += R.Scalar.WallSeconds;
    SlicedWall += R.Sliced.WallSeconds;
    Inputs += R.Scalar.Inputs;
    AllReports += R.Scalar.Report;
  }
  double Speedup = SlicedWall > 0 ? ScalarWall / SlicedWall : 0;
  // Fingerprint of the concatenated canonical reports: equal-verdict runs
  // (any engine, any jobs, any machine) produce the same hash.
  uint64_t ReportHash = tv::fingerprintFailure(AllReports);
  std::printf("sweep total: %llu inputs | scalar %.2fs | bitsliced %.2fs | "
              "speedup %.1fx | verdict parity %s | report hash %016llx\n",
              (unsigned long long)Inputs, ScalarWall, SlicedWall, Speedup,
              AllParity ? "yes" : "NO",
              (unsigned long long)ReportHash);

  std::ofstream Out(JsonPath);
  if (!Out) {
    std::printf("cannot write %s\n", JsonPath.c_str());
    return false;
  }
  char Buf[512];
  // v2 added the "memory" section, v3 added "verdict_cache", v4 adds
  // "sanitizer"; every v1-v3 key is unchanged, so older consumers keep
  // working.
  Out << "{\n  \"schema\": \"frost-bench-tv/v4\",\n";
  std::snprintf(Buf, sizeof(Buf),
                "  \"campaign\": {\"source\": \"exhaustive\", \"insts\": 2, "
                "\"args\": 3, \"widths\": [1, 2, 3, 4], \"opcodes\": "
                "\"add,sub,mul,and,xor,shl\", \"select\": true, \"flags\": "
                "true, \"poison_inputs\": true, \"pipeline\": \"proposed\", "
                "\"scale\": %llu},\n",
                (unsigned long long)Scale);
  Out << Buf << "  \"per_width\": [\n";
  for (unsigned I = 0; I != Runs.size(); ++I) {
    const WidthRun &R = Runs[I];
    double S = R.Sliced.WallSeconds > 0
                   ? R.Scalar.WallSeconds / R.Sliced.WallSeconds
                   : 0;
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"width\": %u, \"functions\": %llu, \"inputs\": "
                  "%llu,\n     \"scalar\": {\"wall_s\": %.4f, "
                  "\"tuples_per_s\": %.0f},\n     \"bitsliced\": {\"wall_s\": "
                  "%.4f, \"tuples_per_s\": %.0f, \"batches\": %llu, "
                  "\"scalar_fallbacks\": %llu},\n     \"speedup\": %.2f, "
                  "\"verdict_parity\": %s}%s\n",
                  R.Width, (unsigned long long)R.Scalar.Functions,
                  (unsigned long long)R.Scalar.Inputs, R.Scalar.WallSeconds,
                  tuplesPerSec(R.Scalar), R.Sliced.WallSeconds,
                  tuplesPerSec(R.Sliced), (unsigned long long)R.Sliced.Batches,
                  (unsigned long long)R.Sliced.Fallbacks, S,
                  R.Parity ? "true" : "false",
                  I + 1 != Runs.size() ? "," : "");
    Out << Buf;
  }
  Out << "  ],\n" << MemoryJson;
  std::snprintf(Buf, sizeof(Buf),
                "  \"total\": {\"inputs\": %llu, \"scalar_wall_s\": "
                "%.4f, \"bitsliced_wall_s\": %.4f, \"speedup\": %.2f, "
                "\"scalar_tuples_per_s\": %.0f, \"bitsliced_tuples_per_s\": "
                "%.0f, \"verdict_parity\": %s, \"report_hash\": "
                "\"%016llx\"}\n}\n",
                (unsigned long long)Inputs, ScalarWall, SlicedWall, Speedup,
                ScalarWall > 0 ? double(Inputs) / ScalarWall : 0,
                SlicedWall > 0 ? double(Inputs) / SlicedWall : 0,
                AllParity ? "true" : "false",
                (unsigned long long)ReportHash);
  Out << Buf;
  std::printf("wrote %s\n", JsonPath.c_str());
  return AllParity;
}

//===----------------------------------------------------------------------===//
// Memory-campaign sweep -> the "memory" section of BENCH_TV.json
//===----------------------------------------------------------------------===//

/// Outcome of the memory sweep: the proposed memory pipeline over the
/// exhaustive 1-byte space (must be clean), the legacy DSE campaign over
/// the identical space (must find the folklore store-undef bug and blame
/// dse<legacy>), and the determinism spot-check.
struct MemorySweep {
  tv::CampaignResult Proposed, Legacy;
  bool Deterministic = false;
  bool LegacyBlamesDSE = false;
  std::string Json; // The "memory" object for BENCH_TV.json.
};

/// The exhaustive memory space matching the docs/memory.md smoke command:
/// every 2-instruction function over i2 with loads/stores over one byte of
/// global memory (plus the alloca cell), undef and poison operands
/// included, validated with final-memory comparison over the
/// initial-memory sweep.
tv::CampaignOptions memoryShape(uint64_t MaxFunctions) {
  tv::CampaignOptions Opts;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.NumArgs = 1;
  Opts.Enum.WithPoison = true;
  Opts.Enum.WithUndef = true;
  Opts.Enum.WithMemory = true;
  Opts.Enum.MemBytes = 1;
  Opts.Enum.Opcodes = {}; // icmp/select/freeze + load/store only.
  Opts.MaxFunctions = MaxFunctions;
  Opts.TV.CompareMemory = true;
  Opts.TV.EnumerateMemory = true;
  return Opts;
}

MemorySweep runMemorySweep(uint64_t Scale) {
  const uint64_t MaxFunctions = std::max<uint64_t>(1, 4000 / Scale);
  MemorySweep S;

  std::printf("\n=== Memory campaigns: final-memory TV over initial-memory "
              "sweeps ===\n");
  tv::CampaignOptions Prop = memoryShape(MaxFunctions);
  Prop.Passes = "dse,gvn,licm";
  Prop.Jobs = 1;
  S.Proposed = tv::runCampaign(Prop);
  std::printf("proposed dse,gvn,licm: %llu fns in %.2fs | %llu swept over "
              "%llu initial memories, %llu alias queries | %llu INVALID\n",
              (unsigned long long)S.Proposed.Functions,
              S.Proposed.WallSeconds,
              (unsigned long long)S.Proposed.MemFunctions,
              (unsigned long long)S.Proposed.MemConfigs,
              (unsigned long long)S.Proposed.AliasQueries,
              (unsigned long long)S.Proposed.Invalid);

  tv::CampaignOptions Leg = memoryShape(MaxFunctions);
  Leg.Passes = "dse";
  Leg.Pipeline = PipelineMode::Legacy;
  Leg.Semantics = SemanticsConfig::legacyGVN();
  Leg.Jobs = 1;
  S.Legacy = tv::runCampaign(Leg);
  S.LegacyBlamesDSE = S.Legacy.Invalid > 0;
  for (const tv::Counterexample &CE : S.Legacy.Counterexamples)
    S.LegacyBlamesDSE &= CE.BlamedPass == "dse<legacy>";
  Leg.Jobs = 2;
  tv::CampaignResult LegacyJ2 = tv::runCampaign(Leg);
  S.Deterministic = S.Legacy.report() == LegacyJ2.report();
  std::printf("legacy dse: %llu fns in %.2fs | %llu INVALID (%llu distinct "
              "classes), blame %s | --jobs 2 report %s\n",
              (unsigned long long)S.Legacy.Functions, S.Legacy.WallSeconds,
              (unsigned long long)S.Legacy.Invalid,
              (unsigned long long)S.Legacy.DistinctFailures,
              S.LegacyBlamesDSE ? "dse<legacy> (all)" : "WRONG",
              S.Deterministic ? "byte-identical" : "DIVERGED");

  char Buf[512];
  std::string J;
  J += "  \"memory\": {\n";
  std::snprintf(Buf, sizeof(Buf),
                "    \"campaign\": {\"source\": \"exhaustive\", \"insts\": 2, "
                "\"args\": 1, \"width\": 2, \"mem_bytes\": 1, \"undef\": "
                "true, \"mem_configs\": 8, \"max_functions\": %llu},\n",
                (unsigned long long)MaxFunctions);
  J += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "    \"proposed\": {\"passes\": \"dse,gvn,licm\", "
                "\"functions\": %llu, \"invalid\": %llu, \"mem_functions\": "
                "%llu, \"mem_configs\": %llu, \"alias_queries\": %llu, "
                "\"wall_s\": %.4f},\n",
                (unsigned long long)S.Proposed.Functions,
                (unsigned long long)S.Proposed.Invalid,
                (unsigned long long)S.Proposed.MemFunctions,
                (unsigned long long)S.Proposed.MemConfigs,
                (unsigned long long)S.Proposed.AliasQueries, S.Proposed.WallSeconds);
  J += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "    \"legacy_dse\": {\"passes\": \"dse\", \"functions\": "
                "%llu, \"invalid\": %llu, \"distinct_failures\": %llu, "
                "\"blames_dse\": %s, \"wall_s\": %.4f},\n",
                (unsigned long long)S.Legacy.Functions,
                (unsigned long long)S.Legacy.Invalid,
                (unsigned long long)S.Legacy.DistinctFailures,
                S.LegacyBlamesDSE ? "true" : "false", S.Legacy.WallSeconds);
  J += Buf;
  std::snprintf(Buf, sizeof(Buf), "    \"deterministic\": %s\n  },\n",
                S.Deterministic ? "true" : "false");
  J += Buf;
  S.Json = J;
  return S;
}

//===----------------------------------------------------------------------===//
// Sanitizer sweep -> the "sanitizer" section of BENCH_TV.json
//===----------------------------------------------------------------------===//

/// Outcome of the sanitizer sweep (CampaignKind::Sanitizer, tv/Sanitizer.h):
/// the proposed instrumentation over an exhaustive undef+memory space must
/// be flawless (zero false negatives / false positives against the
/// SanOracle ground truth), the naive legacy variant must be flagged for
/// its seeded blind spots (undef uses and uninitialized loads go
/// unchecked), and reports must be jobs-independent.
struct SanitizerSweep {
  tv::CampaignResult Proposed, Legacy;
  bool Deterministic = false;
  std::string Json; // The "sanitizer" object for BENCH_TV.json.
};

/// The sanitizer space: arithmetic with flags and shifts (nsw/nuw/exact and
/// overshift trips), poison and undef literals (taint trips), and one byte
/// of global memory plus the alloca cell (bounds and uninit trips).
tv::CampaignOptions sanitizerShape(uint64_t MaxFunctions) {
  tv::CampaignOptions Opts;
  Opts.Kind = tv::CampaignKind::Sanitizer;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.NumArgs = 1;
  Opts.Enum.WithPoison = true;
  Opts.Enum.WithUndef = true;
  Opts.Enum.WithFlags = true;
  Opts.Enum.WithMemory = true;
  Opts.Enum.MemBytes = 1;
  Opts.Enum.Opcodes = {Opcode::Add, Opcode::Mul, Opcode::Shl};
  Opts.MaxFunctions = MaxFunctions;
  Opts.TV.CompareMemory = true;
  return Opts;
}

SanitizerSweep runSanitizerSweep(uint64_t Scale) {
  SanitizerSweep S;
  std::printf("\n=== Sanitizer campaigns: differential validation of the "
              "sanitize pass ===\n");

  tv::CampaignOptions Prop = sanitizerShape(std::max<uint64_t>(1, 8000 / Scale));
  Prop.Jobs = 1;
  S.Proposed = tv::runCampaign(Prop);
  std::printf("proposed sanitize: %llu fns in %.2fs | %llu checks inserted, "
              "%llu true trips | %llu false negatives, %llu false positives, "
              "%llu INVALID\n",
              (unsigned long long)S.Proposed.Functions,
              S.Proposed.WallSeconds,
              (unsigned long long)S.Proposed.SanChecksInserted,
              (unsigned long long)S.Proposed.SanTrueTrips,
              (unsigned long long)S.Proposed.SanFalseNegatives,
              (unsigned long long)S.Proposed.SanFalsePositives,
              (unsigned long long)S.Proposed.Invalid);

  tv::CampaignOptions Leg = sanitizerShape(std::max<uint64_t>(1, 4000 / Scale));
  Leg.Pipeline = PipelineMode::Legacy;
  Leg.Jobs = 1;
  S.Legacy = tv::runCampaign(Leg);
  Leg.Jobs = 2;
  tv::CampaignResult LegacyJ2 = tv::runCampaign(Leg);
  S.Deterministic = S.Legacy.report() == LegacyJ2.report();
  std::printf("legacy sanitize: %llu fns in %.2fs | %llu INVALID (%llu "
              "distinct classes), %llu false negatives | --jobs 2 report "
              "%s\n",
              (unsigned long long)S.Legacy.Functions, S.Legacy.WallSeconds,
              (unsigned long long)S.Legacy.Invalid,
              (unsigned long long)S.Legacy.DistinctFailures,
              (unsigned long long)S.Legacy.SanFalseNegatives,
              S.Deterministic ? "byte-identical" : "DIVERGED");

  char Buf[512];
  std::string J;
  J += "  \"sanitizer\": {\n";
  std::snprintf(Buf, sizeof(Buf),
                "    \"campaign\": {\"source\": \"exhaustive\", \"insts\": 2, "
                "\"args\": 1, \"width\": 2, \"mem_bytes\": 1, \"undef\": "
                "true, \"opcodes\": \"add,mul,shl\"},\n");
  J += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "    \"proposed\": {\"functions\": %llu, \"invalid\": %llu, "
                "\"checks_inserted\": %llu, \"true_trips\": %llu, "
                "\"false_negatives\": %llu, \"false_positives\": %llu, "
                "\"wall_s\": %.4f},\n",
                (unsigned long long)S.Proposed.Functions,
                (unsigned long long)S.Proposed.Invalid,
                (unsigned long long)S.Proposed.SanChecksInserted,
                (unsigned long long)S.Proposed.SanTrueTrips,
                (unsigned long long)S.Proposed.SanFalseNegatives,
                (unsigned long long)S.Proposed.SanFalsePositives,
                S.Proposed.WallSeconds);
  J += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "    \"legacy\": {\"functions\": %llu, \"invalid\": %llu, "
                "\"distinct_failures\": %llu, \"false_negatives\": %llu, "
                "\"wall_s\": %.4f},\n",
                (unsigned long long)S.Legacy.Functions,
                (unsigned long long)S.Legacy.Invalid,
                (unsigned long long)S.Legacy.DistinctFailures,
                (unsigned long long)S.Legacy.SanFalseNegatives,
                S.Legacy.WallSeconds);
  J += Buf;
  std::snprintf(Buf, sizeof(Buf), "    \"deterministic\": %s\n  },\n",
                S.Deterministic ? "true" : "false");
  J += Buf;
  S.Json = J;
  return S;
}

//===----------------------------------------------------------------------===//
// Verdict-cache sweep -> the "verdict_cache" section of BENCH_TV.json
//===----------------------------------------------------------------------===//

/// One leg of a cache measurement: the campaign's wall time plus the
/// verdict-cache counter deltas it produced.
struct CacheLeg {
  double WallSeconds = 0;
  uint64_t Hits = 0, Misses = 0, Skips = 0, Collisions = 0;
};

/// One campaign measured three ways: with verdict reuse disabled entirely,
/// cold against an empty cache (so every saving comes from intra-campaign
/// isomorphism dedup alone), and warm from a cache file saved by the cold
/// run (every class replays from disk — what a CI rerun of an unchanged
/// configuration sees). The warm leg round-trips through the on-disk
/// format, and a --jobs 2 cached rerun guards the any-jobs report
/// contract.
struct CacheCampaign {
  uint64_t Functions = 0;
  CacheLeg NoCache, Cold, Warm;
  bool Parity = false; ///< nocache/cold/warm/jobs-2 reports byte-identical.
  bool DiskOK = false; ///< save() then load() of the cold cache succeeded.
};

CacheLeg legOf(const tv::CampaignResult &R) {
  CacheLeg L;
  L.WallSeconds = R.WallSeconds;
  L.Hits = R.CacheHits;
  L.Misses = R.CacheMisses;
  L.Skips = R.IsomorphicSkips;
  L.Collisions = R.CacheCollisions;
  return L;
}

CacheCampaign runCacheCampaign(tv::CampaignOptions Opts,
                               const std::string &CachePath) {
  CacheCampaign C;
  Opts.Jobs = 1;

  Opts.UseVerdictCache = false;
  tv::CampaignResult NoCache = tv::runCampaign(Opts);
  C.Functions = NoCache.Functions;
  C.NoCache = legOf(NoCache);

  Opts.UseVerdictCache = true;
  tv::VerdictCache ColdCache;
  Opts.Cache = &ColdCache;
  tv::CampaignResult Cold = tv::runCampaign(Opts);
  C.Cold = legOf(Cold);

  tv::VerdictCache WarmCache;
  std::string Error;
  C.DiskOK = ColdCache.save(CachePath, &Error) &&
             WarmCache.load(CachePath, &Error);
  if (!C.DiskOK)
    std::printf("verdict-cache round trip FAILED: %s\n", Error.c_str());
  Opts.Cache = &WarmCache;
  tv::CampaignResult Warm = tv::runCampaign(Opts);
  C.Warm = legOf(Warm);

  Opts.Jobs = 2;
  tv::CampaignResult WarmJ2 = tv::runCampaign(Opts);
  std::remove(CachePath.c_str());

  C.Parity = NoCache.report() == Cold.report() &&
             NoCache.report() == Warm.report() &&
             NoCache.report() == WarmJ2.report();
  return C;
}

double speedupOf(const CacheLeg &Base, const CacheLeg &Fast) {
  return Fast.WallSeconds > 0 ? Base.WallSeconds / Fast.WallSeconds : 0;
}

/// Outcome of the three-campaign cache sweep.
struct CacheSweep {
  bool Parity = false;    ///< Every campaign's four reports agreed.
  bool WarmClean = false; ///< Every warm leg replayed with zero misses.
  std::string Json;       ///< The "verdict_cache" object for BENCH_TV.json.
};

void printCacheCampaign(const char *Name, const CacheCampaign &C) {
  std::printf("%s: %llu fns | nocache %.2fs | cold %.2fs (%llu skips, "
              "%.0f%% hit rate, %.2fx) | warm %.2fs (%llu hits, %llu "
              "misses, %.1fx) | reports %s\n",
              Name, (unsigned long long)C.Functions, C.NoCache.WallSeconds,
              C.Cold.WallSeconds, (unsigned long long)C.Cold.Skips,
              C.Functions ? 100.0 * C.Cold.Hits / C.Functions : 0,
              speedupOf(C.NoCache, C.Cold), C.Warm.WallSeconds,
              (unsigned long long)C.Warm.Hits,
              (unsigned long long)C.Warm.Misses, speedupOf(C.NoCache, C.Warm),
              C.Parity ? "byte-identical" : "DIVERGED");
}

std::string cacheCampaignJson(const char *Name, const char *Shape,
                              const CacheCampaign &C, bool Last) {
  char Buf[768];
  std::string J;
  std::snprintf(Buf, sizeof(Buf), "    \"%s\": {\n      \"campaign\": %s,\n",
                Name, Shape);
  J += Buf;
  std::snprintf(
      Buf, sizeof(Buf),
      "      \"functions\": %llu, \"nocache\": {\"wall_s\": %.4f},\n"
      "      \"cold\": {\"wall_s\": %.4f, \"hits\": %llu, "
      "\"isomorphic_skips\": %llu, \"misses\": %llu, \"collisions\": %llu, "
      "\"hit_rate\": %.4f},\n"
      "      \"warm\": {\"wall_s\": %.4f, \"hits\": %llu, \"misses\": "
      "%llu},\n",
      (unsigned long long)C.Functions, C.NoCache.WallSeconds,
      C.Cold.WallSeconds, (unsigned long long)C.Cold.Hits,
      (unsigned long long)C.Cold.Skips, (unsigned long long)C.Cold.Misses,
      (unsigned long long)C.Cold.Collisions,
      C.Functions ? double(C.Cold.Hits) / C.Functions : 0,
      C.Warm.WallSeconds, (unsigned long long)C.Warm.Hits,
      (unsigned long long)C.Warm.Misses);
  J += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "      \"cold_speedup\": %.2f, \"warm_speedup\": %.2f, "
                "\"verdict_parity\": %s}%s\n",
                speedupOf(C.NoCache, C.Cold), speedupOf(C.NoCache, C.Warm),
                C.Parity ? "true" : "false", Last ? "" : ",");
  J += Buf;
  return J;
}

/// Runs the register, memory, and end-to-end cache campaigns. Shapes are
/// sized so per-function verification (not enumeration/printing/pipeline)
/// dominates and the spaces are dense in commutative-operand isomorphs:
/// that is the regime the cache targets, and the regime where the ≥2x-cold
/// / ≥10x-warm acceptance numbers are measured.
CacheSweep runCacheSweep(const std::string &JsonPath, uint64_t Scale) {
  std::printf("\n=== Verdict cache: nocache/cold/warm sweep ===\n");
  CacheSweep S;

  // Register: the full 2-instruction add/and space over i3 with three
  // arguments (12544 functions) — exhaustive, so both instructions'
  // commutative operand orders appear and dedupe.
  tv::CampaignOptions Reg;
  Reg.Enum.NumInsts = 2;
  Reg.Enum.NumArgs = 3;
  Reg.Enum.Width = 3;
  Reg.Enum.WithPoison = true;
  Reg.Enum.WithFlags = true;
  Reg.Enum.Opcodes = {Opcode::Add, Opcode::And};
  Reg.MaxFunctions = std::max<uint64_t>(1, 13000 / Scale);
  Reg.TV.CompareMemory = false;
  CacheCampaign Register =
      runCacheCampaign(Reg, JsonPath + ".register.cache.tmp");
  printCacheCampaign("register i3", Register);

  // Memory: i4 arithmetic feeding loads/stores over one global byte plus
  // the alloca cell, with undef operands and final-memory comparison over
  // the initial-memory sweep.
  tv::CampaignOptions MemC;
  MemC.Enum.NumInsts = 2;
  MemC.Enum.NumArgs = 2;
  MemC.Enum.Width = 4;
  MemC.Enum.WithPoison = true;
  MemC.Enum.WithFlags = true;
  MemC.Enum.WithUndef = true;
  MemC.Enum.WithMemory = true;
  MemC.Enum.MemBytes = 1;
  MemC.Enum.Opcodes = {Opcode::Add, Opcode::And, Opcode::Or, Opcode::Xor};
  MemC.MaxFunctions = std::max<uint64_t>(1, 20000 / Scale);
  MemC.TV.CompareMemory = true;
  MemC.TV.EnumerateMemory = true;
  CacheCampaign Memory = runCacheCampaign(MemC, JsonPath + ".memory.cache.tmp");
  printCacheCampaign("memory i4", Memory);

  // End-to-end: the same arithmetic shapes through codegen + regalloc +
  // machine simulation; a cache hit skips the whole backend run.
  tv::CampaignOptions E2E;
  E2E.Kind = tv::CampaignKind::EndToEnd;
  E2E.Enum.NumInsts = 2;
  E2E.Enum.NumArgs = 2;
  E2E.Enum.Width = 3;
  E2E.Enum.WithPoison = true;
  E2E.Enum.WithFlags = true;
  E2E.Enum.Opcodes = {Opcode::Add, Opcode::And, Opcode::Or, Opcode::Xor};
  E2E.MaxFunctions = std::max<uint64_t>(1, 6000 / Scale);
  E2E.TV.CompareMemory = false;
  CacheCampaign EndToEnd =
      runCacheCampaign(E2E, JsonPath + ".e2e.cache.tmp");
  printCacheCampaign("end-to-end i3", EndToEnd);

  S.Parity = Register.Parity && Memory.Parity && EndToEnd.Parity &&
             Register.DiskOK && Memory.DiskOK && EndToEnd.DiskOK;
  S.WarmClean = Register.Warm.Misses == 0 && Memory.Warm.Misses == 0 &&
                EndToEnd.Warm.Misses == 0 && Register.Cold.Skips > 0 &&
                Memory.Cold.Skips > 0 && EndToEnd.Cold.Skips > 0;

  S.Json = "  \"verdict_cache\": {\n";
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "{\"source\": \"exhaustive\", \"insts\": 2, \"args\": 3, "
                "\"width\": 3, \"opcodes\": \"add,and\", \"max_functions\": "
                "%llu}",
                (unsigned long long)Reg.MaxFunctions);
  S.Json += cacheCampaignJson("register", Buf, Register, false);
  std::snprintf(Buf, sizeof(Buf),
                "{\"source\": \"exhaustive\", \"insts\": 2, \"args\": 2, "
                "\"width\": 4, \"mem_bytes\": 1, \"undef\": true, "
                "\"opcodes\": \"add,and,or,xor\", \"max_functions\": %llu}",
                (unsigned long long)MemC.MaxFunctions);
  S.Json += cacheCampaignJson("memory", Buf, Memory, false);
  std::snprintf(Buf, sizeof(Buf),
                "{\"source\": \"exhaustive\", \"kind\": \"end-to-end\", "
                "\"insts\": 2, \"args\": 2, \"width\": 3, \"opcodes\": "
                "\"add,and,or,xor\", \"max_functions\": %llu}",
                (unsigned long long)E2E.MaxFunctions);
  S.Json += cacheCampaignJson("end_to_end", Buf, EndToEnd, true);
  S.Json += "  },\n";
  return S;
}

} // namespace

int main(int argc, char **argv) {
  // Sweep flags (consumed here, invisible to google-benchmark):
  //   --json PATH    where to write BENCH_TV.json (default ./BENCH_TV.json)
  //   --scale N      divide sweep function counts by N (CI smoke runs)
  //   --sweep-only   run only the dual-engine sweep, skip everything else
  std::string JsonPath = "BENCH_TV.json";
  uint64_t Scale = 1;
  bool SweepOnly = false;
  {
    int W = 1;
    for (int I = 1; I < argc; ++I) {
      if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
        JsonPath = argv[++I];
      else if (!std::strcmp(argv[I], "--scale") && I + 1 < argc)
        Scale = std::max(1l, std::atol(argv[++I]));
      else if (!std::strcmp(argv[I], "--sweep-only"))
        SweepOnly = true;
      else
        argv[W++] = argv[I];
    }
    argc = W;
  }

  MemorySweep Mem = runMemorySweep(Scale);
  if (Mem.Proposed.Invalid || Mem.Proposed.Inconclusive) {
    std::printf("MEMORY FAILURE: the proposed memory pipeline did not "
                "validate clean\n");
    return 1;
  }
  if (!Mem.LegacyBlamesDSE) {
    std::printf("MEMORY FAILURE: legacy dse campaign found nothing (or "
                "misattributed blame)\n");
    return 1;
  }
  if (!Mem.Deterministic) {
    std::printf("MEMORY FAILURE: --jobs 1 and --jobs 2 memory reports "
                "diverged\n");
    return 1;
  }

  CacheSweep Cache = runCacheSweep(JsonPath, Scale);
  if (!Cache.Parity) {
    std::printf("CACHE FAILURE: cached and uncached reports diverged (or "
                "the on-disk round trip failed)\n");
    return 1;
  }
  if (!Cache.WarmClean) {
    std::printf("CACHE FAILURE: a cold run found no isomorphs or a warm "
                "run missed\n");
    return 1;
  }

  SanitizerSweep San = runSanitizerSweep(Scale);
  if (San.Proposed.Invalid || San.Proposed.Inconclusive ||
      San.Proposed.SanFalseNegatives || San.Proposed.SanFalsePositives) {
    std::printf("SANITIZER FAILURE: the proposed sanitizer did not validate "
                "clean\n");
    return 1;
  }
  if (!San.Legacy.Invalid) {
    std::printf("SANITIZER FAILURE: the seeded-naive legacy sanitizer was "
                "not flagged\n");
    return 1;
  }
  if (!San.Deterministic) {
    std::printf("SANITIZER FAILURE: --jobs 1 and --jobs 2 sanitizer reports "
                "diverged\n");
    return 1;
  }

  bool SweepParity =
      runEngineSweep(JsonPath, Scale, Mem.Json + Cache.Json + San.Json);
  if (!SweepParity) {
    std::printf("SWEEP FAILURE: scalar and bitsliced reports diverged\n");
    return 1;
  }
  if (SweepOnly)
    return 0;

  std::printf("\n=== Parallel campaign engine: scaling & determinism ===\n");
  bool CampaignsDeterministic =
      measureCampaignScaling(2, 20000, 4) && measureCampaignScaling(3, 6000, 4);
  if (!CampaignsDeterministic) {
    std::printf("CAMPAIGN FAILURE: --jobs 1 and --jobs 4 reports diverged\n");
    return 1;
  }
  std::printf("\n=== Section 6: exhaustive validation "
              "(opt-fuzz + Alive substitute) ===\n");

  SweepResult Two = sweepPipeline(2, /*WithSelect=*/false, 400000);
  std::printf("2-instruction space: %llu functions, %llu changed by -O2, "
              "%llu valid, %llu INVALID, %llu inconclusive (%.1f fn/s)\n",
              (unsigned long long)Two.Functions,
              (unsigned long long)Two.Changed, (unsigned long long)Two.Valid,
              (unsigned long long)Two.Invalid,
              (unsigned long long)Two.Inconclusive,
              Two.Functions / Two.Seconds);

  SweepResult Three = sweepPipeline(3, /*WithSelect=*/true, 120000);
  std::printf("3-instruction space: %llu functions, %llu changed by -O2, "
              "%llu valid, %llu INVALID, %llu inconclusive (%.1f fn/s)\n",
              (unsigned long long)Three.Functions,
              (unsigned long long)Three.Changed,
              (unsigned long long)Three.Valid,
              (unsigned long long)Three.Invalid,
              (unsigned long long)Three.Inconclusive,
              Three.Functions / Three.Seconds);

  if (Two.Invalid || Three.Invalid) {
    std::printf("VALIDATION FAILURE: the proposed pipeline miscompiled an "
                "enumerated function\n");
    return 1;
  }
  std::printf("proposed pipeline: every enumerated function validates "
              "(paper: no end-to-end miscompilations found)\n");

  // The counterpoint: the legacy "select c, true, x -> or c, x" combine is
  // unsound; the same harness catches it.
  {
    IRContext Ctx;
    Module M(Ctx, "legacy");
    auto *I1 = Ctx.boolTy();
    Function *F = M.createFunction("sel", Ctx.types().fnTy(I1, {I1, I1}));
    IRBuilder B(Ctx, F->addBlock("entry"));
    B.ret(B.select(F->arg(0), Ctx.getTrue(), F->arg(1)));
    Function *Orig = cloneFunction(*F, M, "sel.orig");
    createInstCombinePass(PipelineMode::Legacy)->runOnFunction(*F);
    tv::TVOptions TVOpts;
    TVOpts.CompareMemory = false;
    tv::TVResult TR = tv::checkRefinement(*Orig, *F,
                                          SemanticsConfig::proposed(),
                                          TVOpts);
    std::printf("legacy select->or combine: %s\n",
                TR.invalid() ? "MISCOMPILATION DETECTED (as expected)"
                             : "unexpectedly validated");
    if (!TR.invalid())
      return 1;
  }

  benchmark::RegisterBenchmark(
      "BM_validate_2inst", [](benchmark::State &State) {
        for (auto _ : State) {
          SweepResult R = sweepPipeline(2, false, 2000);
          benchmark::DoNotOptimize(R.Valid);
        }
      });
  for (unsigned Jobs : {1u, 2u, 4u})
    benchmark::RegisterBenchmark(
        ("BM_campaign_2inst/jobs:" + std::to_string(Jobs)).c_str(),
        [Jobs](benchmark::State &State) {
          tv::CampaignOptions Opts = campaignShape(2, 2000);
          Opts.Jobs = Jobs;
          for (auto _ : State) {
            tv::CampaignResult R = tv::runCampaign(Opts);
            benchmark::DoNotOptimize(R.Valid);
          }
        });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
