//===- TVBench.cpp - Section 6 opt-fuzz + Alive validation experiment ----------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 6 testing methodology: "we used opt-fuzz to
/// exhaustively generate all LLVM functions with three instructions (over
/// 2-bit integer arithmetic) and then we used Alive to validate both
/// individual passes and the collection of passes implied by -O2". Here the
/// enumerator plays opt-fuzz, the exhaustive refinement checker plays Alive,
/// and the pipeline in Proposed mode must validate on every function, while
/// the Legacy select transformations are caught red-handed.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Enumerate.h"

#include "ir/Cloning.h"
#include "ir/IRBuilder.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "opt/Passes.h"
#include "tv/Refinement.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

using namespace frost;
using frost::sem::SemanticsConfig;

namespace {

struct SweepResult {
  uint64_t Functions = 0;
  uint64_t Changed = 0;
  uint64_t Valid = 0;
  uint64_t Invalid = 0;
  uint64_t Inconclusive = 0;
  double Seconds = 0;
};

/// Validates the Proposed pipeline over the first \p MaxFunctions of the
/// NumInsts-instruction space (2-bit arithmetic, poison operands included).
/// The paper ran the full 3-instruction space over days of CPU; the bench
/// default covers an exhaustive prefix sized for minutes.
SweepResult sweepPipeline(unsigned NumInsts, bool WithSelect,
                          uint64_t MaxFunctions) {
  IRContext Ctx;
  Module M(Ctx, "tvbench");
  fuzz::EnumOptions Opts;
  Opts.NumInsts = NumInsts;
  Opts.NumArgs = 1;
  Opts.WithPoison = true;
  Opts.WithFlags = true;
  Opts.WithSelect = WithSelect;
  Opts.Opcodes = {Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::And,
                  Opcode::Xor, Opcode::Shl};

  SemanticsConfig Config = SemanticsConfig::proposed();
  tv::TVOptions TVOpts;
  TVOpts.CompareMemory = false;

  SweepResult R;
  auto T0 = std::chrono::steady_clock::now();
  fuzz::enumerateFunctions(M, Opts, [&](Function &F) {
    if (R.Functions >= MaxFunctions)
      return false;
    Function *Orig = cloneFunction(F, M, "orig");
    PassManager PM(false);
    buildStandardPipeline(PM, PipelineMode::Proposed);
    R.Changed += PM.run(F);
    tv::TVResult TR = tv::checkRefinement(*Orig, F, Config, TVOpts);
    M.eraseFunction(Orig);
    ++R.Functions;
    if (TR.valid())
      ++R.Valid;
    else if (TR.invalid())
      ++R.Invalid;
    else
      ++R.Inconclusive;
    return true;
  });
  R.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  return R;
}

} // namespace

int main(int argc, char **argv) {
  std::printf("\n=== Section 6: exhaustive validation "
              "(opt-fuzz + Alive substitute) ===\n");

  SweepResult Two = sweepPipeline(2, /*WithSelect=*/false, 400000);
  std::printf("2-instruction space: %llu functions, %llu changed by -O2, "
              "%llu valid, %llu INVALID, %llu inconclusive (%.1f fn/s)\n",
              (unsigned long long)Two.Functions,
              (unsigned long long)Two.Changed, (unsigned long long)Two.Valid,
              (unsigned long long)Two.Invalid,
              (unsigned long long)Two.Inconclusive,
              Two.Functions / Two.Seconds);

  SweepResult Three = sweepPipeline(3, /*WithSelect=*/true, 120000);
  std::printf("3-instruction space: %llu functions, %llu changed by -O2, "
              "%llu valid, %llu INVALID, %llu inconclusive (%.1f fn/s)\n",
              (unsigned long long)Three.Functions,
              (unsigned long long)Three.Changed,
              (unsigned long long)Three.Valid,
              (unsigned long long)Three.Invalid,
              (unsigned long long)Three.Inconclusive,
              Three.Functions / Three.Seconds);

  if (Two.Invalid || Three.Invalid) {
    std::printf("VALIDATION FAILURE: the proposed pipeline miscompiled an "
                "enumerated function\n");
    return 1;
  }
  std::printf("proposed pipeline: every enumerated function validates "
              "(paper: no end-to-end miscompilations found)\n");

  // The counterpoint: the legacy "select c, true, x -> or c, x" combine is
  // unsound; the same harness catches it.
  {
    IRContext Ctx;
    Module M(Ctx, "legacy");
    auto *I1 = Ctx.boolTy();
    Function *F = M.createFunction("sel", Ctx.types().fnTy(I1, {I1, I1}));
    IRBuilder B(Ctx, F->addBlock("entry"));
    B.ret(B.select(F->arg(0), Ctx.getTrue(), F->arg(1)));
    Function *Orig = cloneFunction(*F, M, "sel.orig");
    createInstCombinePass(PipelineMode::Legacy)->runOnFunction(*F);
    tv::TVOptions TVOpts;
    TVOpts.CompareMemory = false;
    tv::TVResult TR = tv::checkRefinement(*Orig, *F,
                                          SemanticsConfig::proposed(),
                                          TVOpts);
    std::printf("legacy select->or combine: %s\n",
                TR.invalid() ? "MISCOMPILATION DETECTED (as expected)"
                             : "unexpectedly validated");
    if (!TR.invalid())
      return 1;
  }

  benchmark::RegisterBenchmark(
      "BM_validate_2inst", [](benchmark::State &State) {
        for (auto _ : State) {
          SweepResult R = sweepPipeline(2, false, 2000);
          benchmark::DoNotOptimize(R.Valid);
        }
      });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
