//===- TVBench.cpp - Section 6 opt-fuzz + Alive validation experiment ----------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 6 testing methodology: "we used opt-fuzz to
/// exhaustively generate all LLVM functions with three instructions (over
/// 2-bit integer arithmetic) and then we used Alive to validate both
/// individual passes and the collection of passes implied by -O2". Here the
/// enumerator plays opt-fuzz, the exhaustive refinement checker plays Alive,
/// and the pipeline in Proposed mode must validate on every function, while
/// the Legacy select transformations are caught red-handed.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Enumerate.h"

#include "ir/Cloning.h"
#include "ir/IRBuilder.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "opt/Pass.h"
#include "opt/Passes.h"
#include "support/ThreadPool.h"
#include "tv/Campaign.h"
#include "tv/Refinement.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

using namespace frost;
using frost::sem::SemanticsConfig;

namespace {

struct SweepResult {
  uint64_t Functions = 0;
  uint64_t Changed = 0;
  uint64_t Valid = 0;
  uint64_t Invalid = 0;
  uint64_t Inconclusive = 0;
  double Seconds = 0;
};

/// Validates the Proposed pipeline over the first \p MaxFunctions of the
/// NumInsts-instruction space (2-bit arithmetic, poison operands included).
/// The paper ran the full 3-instruction space over days of CPU; the bench
/// default covers an exhaustive prefix sized for minutes.
SweepResult sweepPipeline(unsigned NumInsts, bool WithSelect,
                          uint64_t MaxFunctions) {
  IRContext Ctx;
  Module M(Ctx, "tvbench");
  fuzz::EnumOptions Opts;
  Opts.NumInsts = NumInsts;
  Opts.NumArgs = 1;
  Opts.WithPoison = true;
  Opts.WithFlags = true;
  Opts.WithSelect = WithSelect;
  Opts.Opcodes = {Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::And,
                  Opcode::Xor, Opcode::Shl};

  SemanticsConfig Config = SemanticsConfig::proposed();
  tv::TVOptions TVOpts;
  TVOpts.CompareMemory = false;

  SweepResult R;
  auto T0 = std::chrono::steady_clock::now();
  fuzz::enumerateFunctions(M, Opts, [&](Function &F) {
    if (R.Functions >= MaxFunctions)
      return false;
    Function *Orig = cloneFunction(F, M, "orig");
    PassManager PM(false);
    buildStandardPipeline(PM, PipelineMode::Proposed);
    R.Changed += PM.run(F);
    tv::TVResult TR = tv::checkRefinement(*Orig, F, Config, TVOpts);
    M.eraseFunction(Orig);
    ++R.Functions;
    if (TR.valid())
      ++R.Valid;
    else if (TR.invalid())
      ++R.Invalid;
    else
      ++R.Inconclusive;
    return true;
  });
  R.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  return R;
}

/// The i2 2-instruction and i2 3-instruction enumeration campaigns, run
/// through the parallel engine. Returns the campaign options so the same
/// space is measured at every jobs count.
tv::CampaignOptions campaignShape(unsigned NumInsts, uint64_t MaxFunctions) {
  tv::CampaignOptions Opts;
  Opts.Enum.NumInsts = NumInsts;
  Opts.Enum.NumArgs = 1;
  Opts.Enum.WithPoison = true;
  Opts.Enum.WithFlags = true;
  Opts.Enum.WithSelect = NumInsts >= 3;
  Opts.Enum.Opcodes = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                       Opcode::And, Opcode::Xor, Opcode::Shl};
  Opts.MaxFunctions = MaxFunctions;
  Opts.TV.CompareMemory = false;
  return Opts;
}

/// Measures the same campaign serially and at --jobs N; verifies the two
/// reports are byte-identical (the determinism contract) and reports the
/// throughput ratio. Returns false if determinism is violated.
bool measureCampaignScaling(unsigned NumInsts, uint64_t MaxFunctions,
                            unsigned Jobs) {
  tv::CampaignOptions Opts = campaignShape(NumInsts, MaxFunctions);

  Opts.Jobs = 1;
  tv::CampaignResult Serial = tv::runCampaign(Opts);
  Opts.Jobs = Jobs;
  tv::CampaignResult Parallel = tv::runCampaign(Opts);

  bool Deterministic = Serial.report() == Parallel.report();
  double Speedup = Parallel.WallSeconds > 0
                       ? Serial.WallSeconds / Parallel.WallSeconds
                       : 0;
  std::printf("%u-instruction campaign (%llu functions): "
              "--jobs 1: %.2fs (%.0f checks/s), --jobs %u: %.2fs "
              "(%.0f checks/s), speedup %.2fx, reports %s\n",
              NumInsts, (unsigned long long)Serial.Functions,
              Serial.WallSeconds, Serial.checksPerSecond(), Jobs,
              Parallel.WallSeconds, Parallel.checksPerSecond(), Speedup,
              Deterministic ? "byte-identical" : "DIVERGED");
  unsigned HW = ThreadPool::defaultThreadCount();
  if (HW < Jobs)
    std::printf("  (note: only %u hardware thread(s); wall-clock speedup is "
                "bounded by the hardware, not the engine)\n", HW);
  return Deterministic;
}

} // namespace

int main(int argc, char **argv) {
  std::printf("\n=== Parallel campaign engine: scaling & determinism ===\n");
  bool CampaignsDeterministic =
      measureCampaignScaling(2, 20000, 4) && measureCampaignScaling(3, 6000, 4);
  if (!CampaignsDeterministic) {
    std::printf("CAMPAIGN FAILURE: --jobs 1 and --jobs 4 reports diverged\n");
    return 1;
  }
  std::printf("\n=== Section 6: exhaustive validation "
              "(opt-fuzz + Alive substitute) ===\n");

  SweepResult Two = sweepPipeline(2, /*WithSelect=*/false, 400000);
  std::printf("2-instruction space: %llu functions, %llu changed by -O2, "
              "%llu valid, %llu INVALID, %llu inconclusive (%.1f fn/s)\n",
              (unsigned long long)Two.Functions,
              (unsigned long long)Two.Changed, (unsigned long long)Two.Valid,
              (unsigned long long)Two.Invalid,
              (unsigned long long)Two.Inconclusive,
              Two.Functions / Two.Seconds);

  SweepResult Three = sweepPipeline(3, /*WithSelect=*/true, 120000);
  std::printf("3-instruction space: %llu functions, %llu changed by -O2, "
              "%llu valid, %llu INVALID, %llu inconclusive (%.1f fn/s)\n",
              (unsigned long long)Three.Functions,
              (unsigned long long)Three.Changed,
              (unsigned long long)Three.Valid,
              (unsigned long long)Three.Invalid,
              (unsigned long long)Three.Inconclusive,
              Three.Functions / Three.Seconds);

  if (Two.Invalid || Three.Invalid) {
    std::printf("VALIDATION FAILURE: the proposed pipeline miscompiled an "
                "enumerated function\n");
    return 1;
  }
  std::printf("proposed pipeline: every enumerated function validates "
              "(paper: no end-to-end miscompilations found)\n");

  // The counterpoint: the legacy "select c, true, x -> or c, x" combine is
  // unsound; the same harness catches it.
  {
    IRContext Ctx;
    Module M(Ctx, "legacy");
    auto *I1 = Ctx.boolTy();
    Function *F = M.createFunction("sel", Ctx.types().fnTy(I1, {I1, I1}));
    IRBuilder B(Ctx, F->addBlock("entry"));
    B.ret(B.select(F->arg(0), Ctx.getTrue(), F->arg(1)));
    Function *Orig = cloneFunction(*F, M, "sel.orig");
    createInstCombinePass(PipelineMode::Legacy)->runOnFunction(*F);
    tv::TVOptions TVOpts;
    TVOpts.CompareMemory = false;
    tv::TVResult TR = tv::checkRefinement(*Orig, *F,
                                          SemanticsConfig::proposed(),
                                          TVOpts);
    std::printf("legacy select->or combine: %s\n",
                TR.invalid() ? "MISCOMPILATION DETECTED (as expected)"
                             : "unexpectedly validated");
    if (!TR.invalid())
      return 1;
  }

  benchmark::RegisterBenchmark(
      "BM_validate_2inst", [](benchmark::State &State) {
        for (auto _ : State) {
          SweepResult R = sweepPipeline(2, false, 2000);
          benchmark::DoNotOptimize(R.Valid);
        }
      });
  for (unsigned Jobs : {1u, 2u, 4u})
    benchmark::RegisterBenchmark(
        ("BM_campaign_2inst/jobs:" + std::to_string(Jobs)).c_str(),
        [Jobs](benchmark::State &State) {
          tv::CampaignOptions Opts = campaignShape(2, 2000);
          Opts.Jobs = Jobs;
          for (auto _ : State) {
            tv::CampaignResult R = tv::runCampaign(Opts);
            benchmark::DoNotOptimize(R.Valid);
          }
        });
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
