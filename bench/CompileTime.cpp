//===- CompileTime.cpp - Section 7.2 compile-time experiment -------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 7.2 compile-time result: running the optimizer
/// with the freeze-based pipeline changes compile time by roughly +/-1% on
/// most inputs, with occasional outliers where the pipeline does more (or
/// less) work because a pass reacts to the new instruction — the paper's
/// "Shootout nestedloop" +19% anecdote.
///
//===----------------------------------------------------------------------===//

#include "Kernels.h"

#include "fuzz/RandomProgram.h"
#include "ir/Cloning.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "opt/Pass.h"
#include "support/Stats.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>

using namespace frost;
using namespace frost::bench;

namespace {

/// Median-of-N wall time of one full pipeline run over a fresh clone.
double compileSeconds(Module &M, Function &F, PipelineMode Mode,
                      unsigned Reps = 15) {
  std::vector<double> Times;
  for (unsigned R = 0; R != Reps; ++R) {
    Function *Clone =
        cloneFunction(F, M, F.getName() + ".ct" + std::to_string(R) +
                               (Mode == PipelineMode::Legacy ? "l" : "p"));
    PassManager PM(/*VerifyAfterEachPass=*/false);
    buildStandardPipeline(PM, Mode);
    auto T0 = std::chrono::steady_clock::now();
    PM.run(*Clone);
    auto T1 = std::chrono::steady_clock::now();
    Times.push_back(std::chrono::duration<double>(T1 - T0).count());
    M.eraseFunction(Clone);
  }
  // Minimum over repetitions: the most noise-robust statistic for
  // micro-scale compile times.
  std::sort(Times.begin(), Times.end());
  return Times.front();
}

} // namespace

int main(int argc, char **argv) {
  static IRContext Ctx;
  static Module M(Ctx, "ct");

  struct Row {
    std::string Name;
    double Legacy, Proposed;
  };
  std::vector<Row> Rows;

  // The kernel suite...
  for (const KernelSpec &Spec : kernelSuite()) {
    Function *FL = buildKernel(M, Spec.Name, "ctl", PipelineMode::Legacy);
    Function *FP = buildKernel(M, Spec.Name, "ctp", PipelineMode::Proposed);
    Rows.push_back({Spec.Name, compileSeconds(M, *FL, PipelineMode::Legacy),
                    compileSeconds(M, *FP, PipelineMode::Proposed)});
  }
  // ...plus a slice of the LNT-substitute corpus.
  for (uint64_t Seed = 100; Seed != 116; ++Seed) {
    fuzz::RandomProgramOptions Opts;
    Opts.Seed = Seed;
    Opts.WithBitFieldOps = (Seed % 3) == 0;
    Function *F = fuzz::generateRandomFunction(
        M, "lnt" + std::to_string(Seed), Opts);
    Rows.push_back({"lnt/" + std::to_string(Seed),
                    compileSeconds(M, *F, PipelineMode::Legacy),
                    compileSeconds(M, *F, PipelineMode::Proposed)});
  }

  std::printf("\n=== Section 7.2: compile time, legacy vs freeze pipeline "
              "===\n");
  std::printf("%-14s %12s %12s %9s\n", "input", "legacy(us)", "frost(us)",
              "change%");
  double Sum = 0;
  unsigned Outliers = 0;
  for (const Row &R : Rows) {
    double Delta = 100.0 * (R.Proposed - R.Legacy) / R.Legacy;
    Sum += Delta;
    if (Delta > 5.0)
      ++Outliers;
    std::printf("%-14s %12.1f %12.1f %+8.2f%%\n", R.Name.c_str(),
                R.Legacy * 1e6, R.Proposed * 1e6, Delta);
  }
  std::printf("mean change: %+.2f%%  outliers(>+5%%): %u  "
              "(paper: mostly within +/-1%%, one small-file outlier +19%%)\n",
              Sum / Rows.size(), Outliers);

  // === Analysis caching: cached vs uncached pass manager ===
  // Runs the full standard pipeline over the kernel suite twice — once with
  // the analysis cache on, once clearing it after every pass (the
  // pre-caching behaviour) — and compares DominatorTree constructions via
  // the analysis.domtree.constructed counter. The cache must do strictly
  // less work while producing byte-identical output IR.
  {
    struct CacheRun {
      uint64_t DomTrees = 0, LoopInfos = 0;
      double Seconds = 0;
      std::vector<std::string> IR;
    };
    auto RunSuite = [&](bool UseCache) {
      CacheRun Out;
      uint64_t DT0 = stats::get("analysis.domtree.constructed");
      uint64_t LI0 = stats::get("analysis.loopinfo.constructed");
      auto T0 = std::chrono::steady_clock::now();
      for (const KernelSpec &Spec : kernelSuite()) {
        // Same suffix for both runs (each kernel is erased after printing):
        // the printed IR must be byte-identical, names included.
        Function *F = buildKernel(M, Spec.Name, "ac", PipelineMode::Proposed);
        PassManager PM(/*VerifyAfterEachPass=*/false);
        PM.setUseAnalysisCache(UseCache);
        buildStandardPipeline(PM, PipelineMode::Proposed);
        PM.run(*F);
        Out.IR.push_back(printFunction(*F));
        M.eraseFunction(F);
      }
      auto T1 = std::chrono::steady_clock::now();
      Out.Seconds = std::chrono::duration<double>(T1 - T0).count();
      Out.DomTrees = stats::get("analysis.domtree.constructed") - DT0;
      Out.LoopInfos = stats::get("analysis.loopinfo.constructed") - LI0;
      return Out;
    };
    CacheRun Uncached = RunSuite(false);
    CacheRun Cached = RunSuite(true);

    std::printf("\n=== analysis cache: standard pipeline over %zu kernels "
                "===\n",
                kernelSuite().size());
    std::printf("%-10s %14s %14s %12s\n", "", "domtrees", "loopinfos",
                "time(us)");
    std::printf("%-10s %14llu %14llu %12.1f\n", "uncached",
                (unsigned long long)Uncached.DomTrees,
                (unsigned long long)Uncached.LoopInfos,
                Uncached.Seconds * 1e6);
    std::printf("%-10s %14llu %14llu %12.1f\n", "cached",
                (unsigned long long)Cached.DomTrees,
                (unsigned long long)Cached.LoopInfos, Cached.Seconds * 1e6);
    for (size_t I = 0; I != Cached.IR.size(); ++I)
      if (Cached.IR[I] != Uncached.IR[I]) {
        std::fprintf(stderr, "kernel %s differs:\n--- uncached ---\n%s\n"
                             "--- cached ---\n%s\n",
                     kernelSuite()[I].Name.c_str(), Uncached.IR[I].c_str(),
                     Cached.IR[I].c_str());
        break;
      }
    // The acceptance bar: strictly fewer analysis constructions, same IR.
    assert(Cached.DomTrees < Uncached.DomTrees &&
           "analysis cache must save DominatorTree constructions");
    assert(Cached.IR == Uncached.IR &&
           "cached and uncached pipelines must agree on the output IR");
    if (Cached.DomTrees >= Uncached.DomTrees || Cached.IR != Uncached.IR) {
      std::fprintf(stderr, "FAIL: analysis cache regressed\n");
      return 1;
    }
    std::printf("cache saved %llu of %llu DominatorTree builds; output IR "
                "byte-identical\n",
                (unsigned long long)(Uncached.DomTrees - Cached.DomTrees),
                (unsigned long long)Uncached.DomTrees);
    std::printf("%s", stats::report("am.").c_str());
  }

  // google-benchmark: whole-suite compile throughput per mode.
  for (PipelineMode Mode : {PipelineMode::Legacy, PipelineMode::Proposed}) {
    std::string Name = std::string("BM_compile_suite/") +
                       (Mode == PipelineMode::Legacy ? "legacy" : "frost");
    benchmark::RegisterBenchmark(
        Name.c_str(), [Mode](benchmark::State &State) {
          IRContext LocalCtx;
          Module LocalM(LocalCtx, "bm");
          std::vector<Function *> Fns;
          for (const KernelSpec &Spec : kernelSuite())
            Fns.push_back(buildKernel(LocalM, Spec.Name, "bm", Mode));
          unsigned N = 0;
          for (auto _ : State) {
            for (Function *F : Fns) {
              Function *C = cloneFunction(*F, LocalM,
                                          F->getName() + ".x" +
                                              std::to_string(N++));
              PassManager PM(false);
              buildStandardPipeline(PM, Mode);
              PM.run(*C);
              LocalM.eraseFunction(C);
            }
          }
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
