//===- CompileTime.cpp - Section 7.2 compile-time experiment -------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the Section 7.2 compile-time result: running the optimizer
/// with the freeze-based pipeline changes compile time by roughly +/-1% on
/// most inputs, with occasional outliers where the pipeline does more (or
/// less) work because a pass reacts to the new instruction — the paper's
/// "Shootout nestedloop" +19% anecdote.
///
//===----------------------------------------------------------------------===//

#include "Kernels.h"

#include "fuzz/RandomProgram.h"
#include "ir/Cloning.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "opt/Pass.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace frost;
using namespace frost::bench;

namespace {

/// Median-of-N wall time of one full pipeline run over a fresh clone.
double compileSeconds(Module &M, Function &F, PipelineMode Mode,
                      unsigned Reps = 15) {
  std::vector<double> Times;
  for (unsigned R = 0; R != Reps; ++R) {
    Function *Clone =
        cloneFunction(F, M, F.getName() + ".ct" + std::to_string(R) +
                               (Mode == PipelineMode::Legacy ? "l" : "p"));
    PassManager PM(/*VerifyAfterEachPass=*/false);
    buildStandardPipeline(PM, Mode);
    auto T0 = std::chrono::steady_clock::now();
    PM.run(*Clone);
    auto T1 = std::chrono::steady_clock::now();
    Times.push_back(std::chrono::duration<double>(T1 - T0).count());
    M.eraseFunction(Clone);
  }
  // Minimum over repetitions: the most noise-robust statistic for
  // micro-scale compile times.
  std::sort(Times.begin(), Times.end());
  return Times.front();
}

} // namespace

int main(int argc, char **argv) {
  static IRContext Ctx;
  static Module M(Ctx, "ct");

  struct Row {
    std::string Name;
    double Legacy, Proposed;
  };
  std::vector<Row> Rows;

  // The kernel suite...
  for (const KernelSpec &Spec : kernelSuite()) {
    Function *FL = buildKernel(M, Spec.Name, "ctl", PipelineMode::Legacy);
    Function *FP = buildKernel(M, Spec.Name, "ctp", PipelineMode::Proposed);
    Rows.push_back({Spec.Name, compileSeconds(M, *FL, PipelineMode::Legacy),
                    compileSeconds(M, *FP, PipelineMode::Proposed)});
  }
  // ...plus a slice of the LNT-substitute corpus.
  for (uint64_t Seed = 100; Seed != 116; ++Seed) {
    fuzz::RandomProgramOptions Opts;
    Opts.Seed = Seed;
    Opts.WithBitFieldOps = (Seed % 3) == 0;
    Function *F = fuzz::generateRandomFunction(
        M, "lnt" + std::to_string(Seed), Opts);
    Rows.push_back({"lnt/" + std::to_string(Seed),
                    compileSeconds(M, *F, PipelineMode::Legacy),
                    compileSeconds(M, *F, PipelineMode::Proposed)});
  }

  std::printf("\n=== Section 7.2: compile time, legacy vs freeze pipeline "
              "===\n");
  std::printf("%-14s %12s %12s %9s\n", "input", "legacy(us)", "frost(us)",
              "change%");
  double Sum = 0;
  unsigned Outliers = 0;
  for (const Row &R : Rows) {
    double Delta = 100.0 * (R.Proposed - R.Legacy) / R.Legacy;
    Sum += Delta;
    if (Delta > 5.0)
      ++Outliers;
    std::printf("%-14s %12.1f %12.1f %+8.2f%%\n", R.Name.c_str(),
                R.Legacy * 1e6, R.Proposed * 1e6, Delta);
  }
  std::printf("mean change: %+.2f%%  outliers(>+5%%): %u  "
              "(paper: mostly within +/-1%%, one small-file outlier +19%%)\n",
              Sum / Rows.size(), Outliers);

  // google-benchmark: whole-suite compile throughput per mode.
  for (PipelineMode Mode : {PipelineMode::Legacy, PipelineMode::Proposed}) {
    std::string Name = std::string("BM_compile_suite/") +
                       (Mode == PipelineMode::Legacy ? "legacy" : "frost");
    benchmark::RegisterBenchmark(
        Name.c_str(), [Mode](benchmark::State &State) {
          IRContext LocalCtx;
          Module LocalM(LocalCtx, "bm");
          std::vector<Function *> Fns;
          for (const KernelSpec &Spec : kernelSuite())
            Fns.push_back(buildKernel(LocalM, Spec.Name, "bm", Mode));
          unsigned N = 0;
          for (auto _ : State) {
            for (Function *F : Fns) {
              Function *C = cloneFunction(*F, LocalM,
                                          F->getName() + ".x" +
                                              std::to_string(N++));
              PassManager PM(false);
              buildStandardPipeline(PM, Mode);
              PM.run(*C);
              LocalM.eraseFunction(C);
            }
          }
        });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
