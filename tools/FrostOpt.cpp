//===- FrostOpt.cpp - frost-opt IR-to-IR pipeline driver -----------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The golden-test workhorse, shaped like LLVM's `opt`: parse textual IR
/// from a file or stdin, run a `--passes` pipeline over it, and print the
/// resulting module to stdout. Every test under tests/ir/ drives its RUN
/// lines through this tool (see docs/testing.md).
///
/// Exit status: 0 success, 1 parse/pipeline/verifier error, 2 usage error
/// (unknown flag, bad flag value, missing input).
///
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/Pipeline.h"
#include "parser/Parser.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace frost;

namespace {

const char *Usage =
    "usage: frost-opt [options] [input.fr]\n"
    "\n"
    "Parses textual frost IR (from the input file, or stdin when the file\n"
    "is omitted or '-'), optionally runs a pass pipeline, and prints the\n"
    "resulting module to stdout.\n"
    "\n"
    "Options:\n"
    "  --passes=<pipeline>          textual pipeline, e.g. instcombine,gvn\n"
    "                               or default<legacy>; see --print-passes\n"
    "  --semantics=legacy|proposed  default variant for mode-dependent\n"
    "                               passes without an explicit <...> suffix\n"
    "                               (default proposed)\n"
    "  --verify                     verify every function after parsing and\n"
    "                               after every pass\n"
    "  --print-passes               list the valid pass names and exit\n"
    "  -h, --help                   show this message\n"
    "\n"
    "Exit status: 0 success, 1 parse/pipeline/verifier error, 2 usage\n"
    "error.\n";

[[noreturn]] void usageError(const std::string &Msg) {
  std::fprintf(stderr, "frost-opt: %s\n%s", Msg.c_str(), Usage);
  std::exit(2);
}

} // namespace

int main(int argc, char **argv) {
  std::string InputFile;
  std::string Passes;
  PipelineMode Mode = PipelineMode::Proposed;
  bool Verify = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Value = [&](const std::string &Flag) -> std::string {
      // Accept both --flag=value and --flag value.
      if (A.size() > Flag.size() && A[Flag.size()] == '=')
        return A.substr(Flag.size() + 1);
      if (I + 1 >= argc)
        usageError(Flag + " needs a value");
      return argv[++I];
    };
    if (A == "--help" || A == "-h") {
      std::fputs(Usage, stdout);
      return 0;
    } else if (A == "--print-passes") {
      std::printf("%s\n", availablePassNames().c_str());
      return 0;
    } else if (A == "--verify") {
      Verify = true;
    } else if (A.rfind("--passes", 0) == 0 &&
               (A.size() == 8 || A[8] == '=')) {
      Passes = Value("--passes");
    } else if (A.rfind("--semantics", 0) == 0 &&
               (A.size() == 11 || A[11] == '=')) {
      std::string V = Value("--semantics");
      if (V == "legacy")
        Mode = PipelineMode::Legacy;
      else if (V == "proposed")
        Mode = PipelineMode::Proposed;
      else
        usageError("unknown --semantics value '" + V +
                   "' (expected legacy or proposed)");
    } else if (A == "-") {
      InputFile = "-";
    } else if (!A.empty() && A[0] == '-') {
      usageError("unknown option '" + A + "'");
    } else if (InputFile.empty()) {
      InputFile = A;
    } else {
      usageError("more than one input file ('" + InputFile + "' and '" + A +
                 "')");
    }
  }

  // Read the whole input up front; the parser wants one buffer.
  std::string Text;
  std::string InputName = InputFile.empty() ? "-" : InputFile;
  if (InputName == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Text = SS.str();
    InputName = "<stdin>";
  } else {
    std::ifstream In(InputFile);
    if (!In) {
      std::fprintf(stderr, "frost-opt: cannot open '%s'\n",
                   InputFile.c_str());
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Text = SS.str();
  }

  IRContext Ctx;
  Module M(Ctx, InputName);
  if (ParseResult R = parseModule(Text, M); !R) {
    std::fprintf(stderr, "frost-opt: %s: %s\n", InputName.c_str(),
                 R.Error.c_str());
    return 1;
  }

  if (Verify) {
    bool Bad = false;
    for (Function *F : M.functions()) {
      if (F->isDeclaration())
        continue;
      std::vector<std::string> Errors;
      if (!verifyFunction(*F, &Errors)) {
        Bad = true;
        std::fprintf(stderr, "frost-opt: verifier failed on @%s:\n",
                     F->getName().c_str());
        for (const std::string &E : Errors)
          std::fprintf(stderr, "  %s\n", E.c_str());
      }
    }
    if (Bad)
      return 1;
  }

  if (!Passes.empty()) {
    PassManager PM(/*VerifyAfterEachPass=*/Verify);
    std::string Error;
    if (!parsePassPipeline(PM, Passes, Mode, &Error)) {
      std::fprintf(stderr, "frost-opt: bad --passes pipeline: %s\n",
                   Error.c_str());
      return 2;
    }
    PM.run(M);
  }

  std::fputs(printModule(M).c_str(), stdout);
  return 0;
}
