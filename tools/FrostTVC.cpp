//===- FrostTVC.cpp - frost-tvd batch client -------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of the verification service: submit every defined
/// function of a .fr module to a running frost-tvd as one pipelined batch,
/// print the per-request reports (byte-identical to frost-tv --file for the
/// same configuration) plus an aggregate report-hash line, query the svc.*
/// stats, or shut the daemon down.
///
/// Exit status mirrors frost-tv: 0 every verdict valid, 1 at least one
/// invalid, 2 inconclusive / error responses or an unknown flag, 3 usage
/// errors (bad values, no daemon, unreadable module).
///
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "parser/Parser.h"
#include "service/Client.h"
#include "tv/Campaign.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace frost;

namespace {

const char *Usage =
    "usage: frost-tvc [options]\n"
    "\n"
    "Daemon address:\n"
    "  --port N                     daemon port on 127.0.0.1\n"
    "  --port-file PATH             read the port from PATH (as written by\n"
    "                               frost-tvd --port-file)\n"
    "\n"
    "Actions (any combination; batch runs first, then --stats, then\n"
    "--shutdown):\n"
    "  --file PATH                  submit every defined function of the .fr\n"
    "                               module as one pipelined batch and print\n"
    "                               each response's report\n"
    "  --stats                      print the daemon's svc.* counters\n"
    "  --shutdown                   ask the daemon to persist and exit\n"
    "\n"
    "Batch configuration (mirrors frost-tv):\n"
    "  --lane interactive|bulk      queue priority (default bulk)\n"
    "  --end-to-end                 validate the backend (kind e2e)\n"
    "  --sanitize                   validate the sanitizer (kind sanitizer)\n"
    "  --pipeline proposed|legacy   pipeline under test (default proposed)\n"
    "  --passes p1,p2,...           textual pass pipeline (default preset)\n"
    "  --sem proposed|legacy-unswitch|legacy-gvn|legacy-langref\n"
    "                               checking semantics (default proposed)\n"
    "  --compare-memory             include final memory + initial-memory\n"
    "                               sweeps in the observable behaviour\n"
    "  --quiet                      per-response verdict lines only, no\n"
    "                               report bodies\n";

uint64_t parseNum(const char *Flag, const char *S) {
  char *End = nullptr;
  uint64_t V = std::strtoull(S, &End, 10);
  if (!End || *End) {
    std::fprintf(stderr, "frost-tvc: bad value for %s: '%s'\n%s", Flag, S,
                 Usage);
    std::exit(3);
  }
  return V;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Port = 0;
  std::string PortFile, FilePath;
  bool DoStats = false, DoShutdown = false, Quiet = false;
  svc::Request Proto; // Shared configuration for every batch request.

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "frost-tvc: %s needs a value\n%s", A.c_str(),
                     Usage);
        std::exit(3);
      }
      return argv[++I];
    };
    if (A == "--port")
      Port = unsigned(parseNum("--port", Next()));
    else if (A == "--port-file")
      PortFile = Next();
    else if (A == "--file")
      FilePath = Next();
    else if (A == "--stats")
      DoStats = true;
    else if (A == "--shutdown")
      DoShutdown = true;
    else if (A == "--lane") {
      std::string V = Next();
      if (!svc::laneFromName(V, Proto.L)) {
        std::fprintf(stderr, "frost-tvc: unknown lane '%s'\n%s", V.c_str(),
                     Usage);
        return 3;
      }
    } else if (A == "--end-to-end")
      Proto.Kind = tv::CampaignKind::EndToEnd;
    else if (A == "--sanitize")
      Proto.Kind = tv::CampaignKind::Sanitizer;
    else if (A == "--pipeline") {
      std::string V = Next();
      if (!svc::pipelineFromName(V, Proto.Pipeline)) {
        std::fprintf(stderr, "frost-tvc: unknown pipeline '%s'\n%s",
                     V.c_str(), Usage);
        return 3;
      }
    } else if (A == "--passes")
      Proto.Passes = Next();
    else if (A == "--sem") {
      std::string V = Next();
      sem::SemanticsConfig Probe;
      if (!svc::semanticsFromName(V, Probe)) {
        std::fprintf(stderr, "frost-tvc: unknown semantics '%s'\n%s",
                     V.c_str(), Usage);
        return 3;
      }
      Proto.Semantics = V;
    } else if (A == "--compare-memory")
      Proto.CompareMemory = true;
    else if (A == "--quiet")
      Quiet = true;
    else if (A == "--help" || A == "-h") {
      std::fputs(Usage, stdout);
      return 0;
    } else {
      std::fprintf(stderr, "frost-tvc: unknown option '%s'\n%s", A.c_str(),
                   Usage);
      return 2;
    }
  }

  if (!PortFile.empty()) {
    std::ifstream In(PortFile);
    uint64_t P = 0;
    if (!(In >> P) || P == 0 || P > 65535) {
      std::fprintf(stderr, "frost-tvc: cannot read a port from '%s'\n",
                   PortFile.c_str());
      return 3;
    }
    Port = unsigned(P);
  }
  if (Port == 0) {
    std::fprintf(stderr, "frost-tvc: need --port or --port-file\n%s", Usage);
    return 3;
  }
  if (FilePath.empty() && !DoStats && !DoShutdown) {
    std::fprintf(stderr, "frost-tvc: nothing to do (need --file, --stats, "
                         "or --shutdown)\n%s",
                 Usage);
    return 3;
  }

  svc::Client Client;
  std::string Error;
  if (!Client.connect(Port, &Error)) {
    std::fprintf(stderr, "frost-tvc: %s\n", Error.c_str());
    return 3;
  }

  uint64_t Valid = 0, Invalid = 0, Inconclusive = 0, Errors = 0;

  if (!FilePath.empty()) {
    std::ifstream In(FilePath);
    if (!In) {
      std::fprintf(stderr, "frost-tvc: cannot read '%s'\n", FilePath.c_str());
      return 3;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    IRContext Ctx;
    Module M(Ctx, "batch");
    ParseResult P = parseModule(Buf.str(), M);
    if (!P) {
      std::fprintf(stderr, "frost-tvc: %s: %s\n", FilePath.c_str(),
                   P.Error.c_str());
      return 3;
    }
    // Pipeline the whole batch before reading responses: the daemon's
    // per-connection ordering returns them in submission order, and its
    // lanes + backpressure govern memory, not this client.
    std::vector<std::string> Names;
    uint64_t Id = 0;
    for (Function *F : M.functions()) {
      if (F->isDeclaration())
        continue;
      svc::Request Req = Proto;
      Req.Id = Id++;
      Req.Function = printFunction(*F);
      Names.push_back(F->getName());
      if (!Client.send(Req, &Error)) {
        std::fprintf(stderr, "frost-tvc: %s\n", Error.c_str());
        return 3;
      }
    }
    if (Id == 0) {
      std::fprintf(stderr, "frost-tvc: %s: no functions to submit\n",
                   FilePath.c_str());
      return 2;
    }

    std::string AllReports;
    for (uint64_t I = 0; I != Id; ++I) {
      svc::Response Resp;
      if (!Client.receive(Resp, &Error)) {
        std::fprintf(stderr, "frost-tvc: %s\n", Error.c_str());
        return 3;
      }
      switch (Resp.V) {
      case svc::Response::Verdict::Valid:
        ++Valid;
        break;
      case svc::Response::Verdict::Invalid:
        ++Invalid;
        break;
      case svc::Response::Verdict::Inconclusive:
        ++Inconclusive;
        break;
      case svc::Response::Verdict::Error:
        ++Errors;
        break;
      }
      std::string Label = Resp.Id < Names.size() ? Names[Resp.Id]
                                                 : std::to_string(Resp.Id);
      std::printf("== @%s: %s\n", Label.c_str(), svc::verdictName(Resp.V));
      if (!Quiet) {
        std::fputs(Resp.Report.c_str(), stdout);
        if (!Resp.Report.empty() && Resp.Report.back() != '\n')
          std::fputs("\n", stdout);
      }
      AllReports += Resp.Report;
    }
    // Aggregate fingerprint over the concatenated report bytes: comparable
    // across cold/warm daemon runs (and against a frost-tv --file run's
    // per-function reports) the same way frost-tv's report-hash is.
    std::printf("report-hash=%016llx\n",
                (unsigned long long)tv::fingerprintFailure(AllReports));
    std::printf("batch: %llu requests: %llu valid, %llu invalid, %llu "
                "inconclusive, %llu errors\n",
                (unsigned long long)Id, (unsigned long long)Valid,
                (unsigned long long)Invalid, (unsigned long long)Inconclusive,
                (unsigned long long)Errors);
  }

  if (DoStats) {
    std::string Payload;
    if (!Client.stats(Payload, &Error)) {
      std::fprintf(stderr, "frost-tvc: %s\n", Error.c_str());
      return 3;
    }
    std::fputs(Payload.c_str(), stdout);
  }

  if (DoShutdown) {
    if (!Client.shutdownServer(&Error)) {
      std::fprintf(stderr, "frost-tvc: %s\n", Error.c_str());
      return 3;
    }
    std::printf("frost-tvc: daemon acknowledged shutdown\n");
  }

  if (Invalid)
    return 1;
  if (Inconclusive || Errors)
    return 2;
  return 0;
}
