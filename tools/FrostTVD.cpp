//===- FrostTVD.cpp - frost-tvd verification daemon ------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line entry point for the long-running verification service: bind
/// a loopback port, keep the verdict cache hot in memory, answer batched
/// verification requests (see docs/service.md for the protocol), feed every
/// invalid verdict into the persistent counterexample corpus, and persist
/// both periodically and at shutdown. frost-tvc is the matching client.
///
/// Exit status: 0 clean shutdown (via the shutdown frame or SIGINT/SIGTERM),
/// 2 unknown flag or unusable persistent state (corrupt cache/corpus file),
/// 3 bad flag values or an unbindable port.
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"
#include "support/AtomicFile.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace frost;

namespace {

const char *Usage =
    "usage: frost-tvd [options]\n"
    "\n"
    "  --port N             loopback TCP port (default 0 = pick an\n"
    "                       ephemeral port; see --port-file)\n"
    "  --port-file PATH     write the bound port number to PATH once\n"
    "                       listening (for scripts wrapping the daemon)\n"
    "  --jobs N             verification worker threads (default: hardware)\n"
    "  --cache-file PATH    persistent verdict cache: loaded on start (a\n"
    "                       corrupt or version-mismatched file is a hard\n"
    "                       error), kept hot in memory, persisted every\n"
    "                       --persist-every completed requests and at\n"
    "                       shutdown\n"
    "  --corpus PATH        persistent counterexample corpus (.fr module,\n"
    "                       structurally deduplicated across campaigns,\n"
    "                       replayable via frost-tv --file); same load and\n"
    "                       persist schedule as --cache-file\n"
    "  --persist-every N    persist window in completed requests\n"
    "                       (default 256; 0 = only at shutdown)\n"
    "  --lane-capacity N    queued requests per priority lane before the\n"
    "                       connection reader blocks (default 128)\n"
    "  --quiet              no startup banner or final stats\n";

uint64_t parseNum(const char *Flag, const char *S) {
  char *End = nullptr;
  uint64_t V = std::strtoull(S, &End, 10);
  if (!End || *End) {
    std::fprintf(stderr, "frost-tvd: bad value for %s: '%s'\n%s", Flag, S,
                 Usage);
    std::exit(3);
  }
  return V;
}

svc::Server *ActiveServer = nullptr;

/// SIGINT/SIGTERM: only async-signal-safe work here — requestShutdown sets
/// an atomic flag and shuts down the listen fd; the accept thread runs the
/// ordered teardown (drain, persist) on its own stack.
void onSignal(int) {
  if (ActiveServer)
    ActiveServer->requestShutdown();
}

} // namespace

int main(int argc, char **argv) {
  svc::ServerOptions Opts;
  std::string PortFile;
  bool Quiet = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "frost-tvd: %s needs a value\n%s", A.c_str(),
                     Usage);
        std::exit(3);
      }
      return argv[++I];
    };
    if (A == "--port")
      Opts.Port = unsigned(parseNum("--port", Next()));
    else if (A == "--port-file")
      PortFile = Next();
    else if (A == "--jobs")
      Opts.Jobs = unsigned(parseNum("--jobs", Next()));
    else if (A == "--cache-file")
      Opts.CacheFile = Next();
    else if (A == "--corpus")
      Opts.CorpusFile = Next();
    else if (A == "--persist-every")
      Opts.PersistEvery = parseNum("--persist-every", Next());
    else if (A == "--lane-capacity")
      Opts.LaneCapacity = parseNum("--lane-capacity", Next());
    else if (A == "--quiet")
      Quiet = true;
    else if (A == "--help" || A == "-h") {
      std::fputs(Usage, stdout);
      return 0;
    } else {
      std::fprintf(stderr, "frost-tvd: unknown option '%s'\n%s", A.c_str(),
                   Usage);
      return 2;
    }
  }
  if (Opts.Port > 65535) {
    std::fprintf(stderr, "frost-tvd: --port must be <= 65535\n");
    return 3;
  }
  if (Opts.LaneCapacity == 0) {
    std::fprintf(stderr, "frost-tvd: --lane-capacity must be positive\n");
    return 3;
  }

  svc::Server Server(Opts);

  // Preload persistent state before accepting traffic. A missing file is a
  // cold start; a file that exists but cannot be parsed is a hard error —
  // the same contract as frost-tv --cache-file.
  if (!Opts.CacheFile.empty()) {
    std::ifstream Probe(Opts.CacheFile);
    if (Probe) {
      Probe.close();
      std::string Error;
      if (!Server.cache().load(Opts.CacheFile, &Error)) {
        std::fprintf(stderr, "frost-tvd: %s\n", Error.c_str());
        return 2;
      }
    }
  }
  if (!Opts.CorpusFile.empty()) {
    std::ifstream Probe(Opts.CorpusFile);
    if (Probe) {
      Probe.close();
      std::string Error;
      if (!Server.corpus().load(Opts.CorpusFile, &Error)) {
        std::fprintf(stderr, "frost-tvd: %s\n", Error.c_str());
        return 2;
      }
    }
  }

  std::string Error;
  if (!Server.start(&Error)) {
    std::fprintf(stderr, "frost-tvd: %s\n", Error.c_str());
    return 3;
  }

  ActiveServer = &Server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  if (!Quiet) {
    std::printf("frost-tvd: listening on 127.0.0.1:%u (jobs=%u, "
                "lane-capacity=%llu, cache entries=%llu, corpus=%llu)\n",
                Server.port(),
                Opts.Jobs ? Opts.Jobs : ThreadPool::defaultThreadCount(),
                (unsigned long long)Opts.LaneCapacity,
                (unsigned long long)Server.cache().size(),
                (unsigned long long)Server.corpus().size());
    std::fflush(stdout);
  }
  if (!PortFile.empty()) {
    std::string PortError;
    if (!writeFileAtomic(PortFile, std::to_string(Server.port()) + "\n",
                         &PortError)) {
      std::fprintf(stderr, "frost-tvd: %s\n", PortError.c_str());
      Server.requestShutdown();
      Server.wait();
      return 3;
    }
  }

  Server.wait();
  ActiveServer = nullptr;

  if (!Quiet) {
    std::printf("frost-tvd: shut down after %llu requests\n",
                (unsigned long long)Server.completedRequests());
    std::fputs(Server.statsReport().c_str(), stdout);
  }
  return 0;
}
