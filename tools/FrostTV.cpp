//===- FrostTV.cpp - frost-tv campaign driver ----------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line entry point for translation-validation campaigns: the
/// Section 6 methodology (enumerate every small function, optimize it,
/// check refinement) as a tool, with parallel sharded execution. See
/// docs/tv-campaigns.md for the reproducibility contract and examples.
///
/// Exit status: 0 clean, 1 a miscompilation (invalid result) was found,
/// 2 only inconclusive results, an unknown flag (with a usage message), or
/// a --file module that parses but is not a valid campaign space (empty /
/// declarations-only / a function that cannot re-parse standalone),
/// 3 other usage errors (bad flag values, unreadable or unparseable files).
///
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/Module.h"
#include "opt/Pipeline.h"
#include "parser/Parser.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "tv/Campaign.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace frost;
using frost::sem::SemanticsConfig;

namespace {

const char *Usage =
    "usage: frost-tv [options]\n"
    "\n"
    "Campaign shape:\n"
    "  --source exhaustive|random|file\n"
    "                               program source (default exhaustive)\n"
    "  --file PATH                  .fr module for the file source (implies\n"
    "                               --source file); each function is one\n"
    "                               campaign entry, in module order\n"
    "  --end-to-end                 validate the backend instead of an IR\n"
    "                               pipeline: compile each function through\n"
    "                               codegen + regalloc and check the machine\n"
    "                               refines the IR semantics; failures blame\n"
    "                               the stage (isel/regalloc/sim)\n"
    "  --sanitize                   validate the sanitize instrumentation pass\n"
    "                               instead of an IR pipeline: instrument each\n"
    "                               function with sanitize<--pipeline mode> and\n"
    "                               run the differential oracles of\n"
    "                               docs/sanitizer.md (false-negative hunt,\n"
    "                               false-positive hunt, and a DESIL-style\n"
    "                               check that --passes still refines the\n"
    "                               instrumented program)\n"
    "  --poison-cond                also enumerate `i1 poison` as a select\n"
    "                               condition (exhaustive source)\n"
    "  --with-undef                 also enumerate a literal undef operand\n"
    "                               (exhaustive source); with --mem-bytes this\n"
    "                               includes `store undef`, the shape whose\n"
    "                               deletion/forwarding splits the semantics\n"
    "  --insts N                    instructions per enumerated fn (default 2)\n"
    "  --width N                    integer width of the space (default 2)\n"
    "  --args N                     formal parameters (default 1)\n"
    "  --max-functions N            cap on enumerated functions (default 100000)\n"
    "  --opcodes a,b,...            binary opcodes to enumerate (add,sub,mul,\n"
    "                               and,or,xor,shl,lshr,ashr; 'none' for only\n"
    "                               icmp/select/freeze)\n"
    "  --mem-bytes N                enumerate load/store/gep programs over a\n"
    "                               global of N bytes plus one alloca cell\n"
    "                               (exhaustive source); implies\n"
    "                               --compare-memory\n"
    "  --seed N                     base seed, random source (default 1)\n"
    "  --count N                    functions, random source (default 128)\n"
    "  --statements N               statements per random fn (default 24)\n"
    "  --random-width N             scalar width of random fns (default 8)\n"
    "\n"
    "Pipeline & semantics:\n"
    "  --pipeline proposed|legacy   pipeline under test (default proposed)\n"
    "  --passes p1,p2,...           textual pass pipeline to run instead of\n"
    "                               the standard preset, e.g. gvn,licm or\n"
    "                               instcombine<legacy>,dce ('default' expands\n"
    "                               to the preset; variants follow --pipeline\n"
    "                               when omitted)\n"
    "  --sem proposed|legacy-unswitch|legacy-gvn|legacy-langref\n"
    "                               checking semantics (default proposed)\n"
    "  --compare-memory             include final global memory in the\n"
    "                               observable behaviour and sweep initial\n"
    "                               memory contents (all-zeros, all-poison,\n"
    "                               per-byte poison bits, ...) for every\n"
    "                               function that touches globals\n"
    "  --mem-configs N              cap on initial-memory configurations per\n"
    "                               function (default 8)\n"
    "\n"
    "Execution:\n"
    "  --engine scalar|bitsliced    evaluation engine (default scalar);\n"
    "                               bitsliced batches 64 input tuples per\n"
    "                               instruction step and falls back to the\n"
    "                               scalar path for nondeterministic lanes —\n"
    "                               verdicts and reports are byte-identical\n"
    "                               either way (see docs/performance.md)\n"
    "  --jobs N                     worker threads; 1 = serial (default 1)\n"
    "  --shard-size N               functions per shard (default 64)\n"
    "  --keep-duplicates            report every witness, no dedup\n"
    "  --cache-file PATH            persistent verdict cache: load on start\n"
    "                               (a corrupt or version-mismatched file is\n"
    "                               a hard error), save atomically on exit;\n"
    "                               warm reruns of unchanged configurations\n"
    "                               replay verdicts instead of re-verifying\n"
    "  --no-verdict-cache           disable verdict reuse entirely, including\n"
    "                               intra-campaign isomorphism dedup\n"
    "  --stats                      print tv.* counters\n"
    "  --time-passes                print per-pass wall time / change table\n"
    "  --quiet                      summary only, no counterexample report\n";

uint64_t parseNum(const char *Flag, const char *S) {
  char *End = nullptr;
  uint64_t V = std::strtoull(S, &End, 10);
  if (!End || *End) {
    std::fprintf(stderr, "frost-tv: bad value for %s: '%s'\n%s", Flag, S,
                 Usage);
    std::exit(3);
  }
  return V;
}

} // namespace

int main(int argc, char **argv) {
  tv::CampaignOptions Opts;
  Opts.Enum.NumInsts = 2;
  Opts.Enum.NumArgs = 1;
  Opts.Enum.WithPoison = true;
  Opts.Enum.WithFlags = true;
  Opts.MaxFunctions = 100000;
  Opts.Random.Width = 8;
  Opts.TV.CompareMemory = false;
  bool ShowStats = false, Quiet = false;
  std::string CacheFile;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "frost-tv: %s needs a value\n%s", A.c_str(),
                     Usage);
        std::exit(3);
      }
      return argv[++I];
    };
    if (A == "--source") {
      std::string V = Next();
      if (V == "exhaustive")
        Opts.Source = tv::CampaignSource::Exhaustive;
      else if (V == "random")
        Opts.Source = tv::CampaignSource::Random;
      else if (V == "file")
        Opts.Source = tv::CampaignSource::File;
      else {
        std::fprintf(stderr, "frost-tv: unknown source '%s'\n%s", V.c_str(),
                     Usage);
        return 3;
      }
    } else if (A == "--file") {
      Opts.FilePath = Next();
      Opts.Source = tv::CampaignSource::File;
    } else if (A == "--end-to-end")
      Opts.Kind = tv::CampaignKind::EndToEnd;
    else if (A == "--sanitize")
      Opts.Kind = tv::CampaignKind::Sanitizer;
    else if (A == "--poison-cond")
      Opts.Enum.WithPoisonCond = true;
    else if (A == "--with-undef")
      Opts.Enum.WithUndef = true;
    else if (A == "--insts")
      Opts.Enum.NumInsts = unsigned(parseNum("--insts", Next()));
    else if (A == "--width")
      Opts.Enum.Width = unsigned(parseNum("--width", Next()));
    else if (A == "--args")
      Opts.Enum.NumArgs = unsigned(parseNum("--args", Next()));
    else if (A == "--max-functions")
      Opts.MaxFunctions = parseNum("--max-functions", Next());
    else if (A == "--opcodes") {
      std::string V = Next();
      Opts.Enum.Opcodes.clear();
      size_t Pos = 0;
      while (Pos < V.size() && V != "none") {
        size_t Comma = V.find(',', Pos);
        std::string Name = V.substr(Pos, Comma == std::string::npos
                                             ? std::string::npos
                                             : Comma - Pos);
        Pos = Comma == std::string::npos ? V.size() : Comma + 1;
        if (Name == "add")
          Opts.Enum.Opcodes.push_back(Opcode::Add);
        else if (Name == "sub")
          Opts.Enum.Opcodes.push_back(Opcode::Sub);
        else if (Name == "mul")
          Opts.Enum.Opcodes.push_back(Opcode::Mul);
        else if (Name == "and")
          Opts.Enum.Opcodes.push_back(Opcode::And);
        else if (Name == "or")
          Opts.Enum.Opcodes.push_back(Opcode::Or);
        else if (Name == "xor")
          Opts.Enum.Opcodes.push_back(Opcode::Xor);
        else if (Name == "shl")
          Opts.Enum.Opcodes.push_back(Opcode::Shl);
        else if (Name == "lshr")
          Opts.Enum.Opcodes.push_back(Opcode::LShr);
        else if (Name == "ashr")
          Opts.Enum.Opcodes.push_back(Opcode::AShr);
        else {
          std::fprintf(stderr, "frost-tv: unknown opcode '%s'\n%s",
                       Name.c_str(), Usage);
          return 3;
        }
      }
    }
    else if (A == "--mem-bytes") {
      Opts.Enum.WithMemory = true;
      Opts.Enum.MemBytes = unsigned(parseNum("--mem-bytes", Next()));
      Opts.TV.CompareMemory = true;
      Opts.TV.EnumerateMemory = true;
    } else if (A == "--compare-memory") {
      Opts.TV.CompareMemory = true;
      Opts.TV.EnumerateMemory = true;
    } else if (A == "--mem-configs")
      Opts.TV.MaxMemConfigs = parseNum("--mem-configs", Next());
    else if (A == "--seed")
      Opts.Random.Seed = parseNum("--seed", Next());
    else if (A == "--count")
      Opts.RandomFunctions = parseNum("--count", Next());
    else if (A == "--statements")
      Opts.Random.Statements = unsigned(parseNum("--statements", Next()));
    else if (A == "--random-width")
      Opts.Random.Width = unsigned(parseNum("--random-width", Next()));
    else if (A == "--pipeline") {
      std::string V = Next();
      if (V == "proposed")
        Opts.Pipeline = PipelineMode::Proposed;
      else if (V == "legacy")
        Opts.Pipeline = PipelineMode::Legacy;
      else {
        std::fprintf(stderr, "frost-tv: unknown pipeline '%s'\n%s", V.c_str(),
                     Usage);
        return 3;
      }
    } else if (A == "--sem") {
      std::string V = Next();
      if (V == "proposed")
        Opts.Semantics = SemanticsConfig::proposed();
      else if (V == "legacy-unswitch")
        Opts.Semantics = SemanticsConfig::legacyUnswitch();
      else if (V == "legacy-gvn")
        Opts.Semantics = SemanticsConfig::legacyGVN();
      else if (V == "legacy-langref")
        Opts.Semantics = SemanticsConfig::legacyLangRefSelect();
      else {
        std::fprintf(stderr, "frost-tv: unknown semantics '%s'\n%s",
                     V.c_str(), Usage);
        return 3;
      }
    } else if (A == "--engine") {
      std::string V = Next();
      if (V == "scalar")
        Opts.TV.Engine = tv::TVEngine::Scalar;
      else if (V == "bitsliced")
        Opts.TV.Engine = tv::TVEngine::BitSliced;
      else {
        std::fprintf(stderr, "frost-tv: unknown engine '%s'\n%s", V.c_str(),
                     Usage);
        return 3;
      }
    } else if (A == "--passes")
      Opts.Passes = Next();
    else if (A == "--jobs")
      Opts.Jobs = unsigned(parseNum("--jobs", Next()));
    else if (A == "--shard-size")
      Opts.ShardSize = parseNum("--shard-size", Next());
    else if (A == "--keep-duplicates")
      Opts.KeepAllCounterexamples = true;
    else if (A == "--cache-file")
      CacheFile = Next();
    else if (A == "--no-verdict-cache")
      Opts.UseVerdictCache = false;
    else if (A == "--stats")
      ShowStats = true;
    else if (A == "--time-passes")
      Opts.TimePasses = true;
    else if (A == "--quiet")
      Quiet = true;
    else if (A == "--help" || A == "-h") {
      std::fputs(Usage, stdout);
      return 0;
    } else {
      // Unknown flags are a hard error (exit 2), never silently ignored:
      // a typo like --pipeline must not validate the wrong pipeline.
      std::fprintf(stderr, "frost-tv: unknown option '%s'\n%s", A.c_str(),
                   Usage);
      return 2;
    }
  }
  if (Opts.ShardSize == 0) {
    std::fprintf(stderr, "frost-tv: --shard-size must be positive\n");
    return 3;
  }
  if (!CacheFile.empty() && !Opts.UseVerdictCache) {
    std::fprintf(stderr,
                 "frost-tv: --cache-file conflicts with --no-verdict-cache\n");
    return 3;
  }
  if (Opts.Enum.WithMemory &&
      (Opts.Enum.MemBytes == 0 || Opts.Enum.MemBytes > 8)) {
    std::fprintf(stderr, "frost-tv: --mem-bytes must be in 1..8\n");
    return 3;
  }
  if (!Opts.Passes.empty()) {
    // Validate up front so workers can assume the pipeline parses. The
    // parser's diagnostic lists the valid pass names.
    PassManager Probe(/*VerifyAfterEachPass=*/false);
    std::string Error;
    if (!parsePassPipeline(Probe, Opts.Passes, Opts.Pipeline, &Error)) {
      std::fprintf(stderr, "frost-tv: bad --passes pipeline: %s\n",
                   Error.c_str());
      return 3;
    }
  }
  if (Opts.Source == tv::CampaignSource::File) {
    // Validate the module up front so the campaign can assume it parses.
    if (Opts.FilePath.empty()) {
      std::fprintf(stderr, "frost-tv: --source file needs --file PATH\n");
      return 3;
    }
    std::ifstream In(Opts.FilePath);
    if (!In) {
      std::fprintf(stderr, "frost-tv: cannot read '%s'\n",
                   Opts.FilePath.c_str());
      return 3;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    IRContext Ctx;
    Module M(Ctx, "probe");
    ParseResult P = parseModule(Buf.str(), M);
    if (!P) {
      std::fprintf(stderr, "frost-tv: %s: %s\n", Opts.FilePath.c_str(),
                   P.Error.c_str());
      return 3;
    }
    // The module parses; now enforce the campaign-space contract. An empty
    // or declarations-only file, or a function that cannot re-parse
    // standalone (e.g. it calls a defined sibling), must be a diagnosed
    // failure (exit 2) — never a silently clean functions=0 report.
    std::string SpaceError;
    if (!tv::validateFileCampaign(Buf.str(), Opts.FilePath, &SpaceError)) {
      std::fprintf(stderr, "frost-tv: %s\n", SpaceError.c_str());
      return 2;
    }
  }

  // A persistent cache loads before the campaign and saves (atomically)
  // after. A missing file is a cold start; a file that exists but cannot be
  // parsed — wrong magic, wrong version, corrupt entries — is a hard usage
  // error (exit 2): silently verifying without the requested cache would
  // hide the misconfiguration.
  tv::VerdictCache PersistentCache;
  if (!CacheFile.empty()) {
    std::ifstream Probe(CacheFile);
    if (Probe) {
      Probe.close();
      std::string Error;
      if (!PersistentCache.load(CacheFile, &Error)) {
        std::fprintf(stderr, "frost-tv: %s\n", Error.c_str());
        return 2;
      }
    }
    Opts.Cache = &PersistentCache;
    std::printf("verdict-cache: %llu entr%s loaded from %s\n",
                (unsigned long long)PersistentCache.size(),
                PersistentCache.size() == 1 ? "y" : "ies", CacheFile.c_str());
  }

  std::printf("%s\n", tv::describeCampaign(Opts).c_str());
  std::printf("engine=%s jobs=%u (hardware threads: %u)\n",
              Opts.TV.Engine == tv::TVEngine::BitSliced ? "bitsliced"
                                                        : "scalar",
              Opts.Jobs ? Opts.Jobs : ThreadPool::defaultThreadCount(),
              ThreadPool::defaultThreadCount());

  tv::CampaignResult R = tv::runCampaign(Opts);

  if (!Quiet)
    std::fputs(R.report().c_str(), stdout);
  // Stable fingerprint of the full (byte-identical at any --jobs) report,
  // so cold-vs-warm and cached-vs-uncached parity is a one-line diff.
  std::printf("report-hash=%016llx\n",
              (unsigned long long)tv::fingerprintFailure(R.report()));
  std::printf("%s\n", R.summary().c_str());

  if (!CacheFile.empty()) {
    std::string Error;
    if (!PersistentCache.save(CacheFile, &Error)) {
      std::fprintf(stderr, "frost-tv: %s\n", Error.c_str());
      if (!R.Invalid && !R.Inconclusive)
        return 3;
    } else {
      std::printf("verdict-cache: %llu entr%s saved to %s\n",
                  (unsigned long long)PersistentCache.size(),
                  PersistentCache.size() == 1 ? "y" : "ies",
                  CacheFile.c_str());
    }
  }
  if (Opts.TimePasses)
    std::fputs(renderTimePassesReport().c_str(), stdout);
  if (ShowStats) {
    // "tv." covers the campaign counters plus the engine counters
    // (tv.bitsliced_batches, tv.scalar_fallbacks).
    std::fputs(stats::report("tv.").c_str(), stdout);
    if (Opts.Kind == tv::CampaignKind::EndToEnd) {
      std::fputs(stats::report("e2e.").c_str(), stdout);
      std::fputs(stats::report("cg.").c_str(), stdout);
    }
    if (Opts.Kind == tv::CampaignKind::Sanitizer)
      std::fputs(stats::report("san.").c_str(), stdout);
  }

  if (R.Invalid)
    return 1;
  if (R.Inconclusive)
    return 2;
  return 0;
}
