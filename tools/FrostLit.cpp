//===- FrostLit.cpp - frost-lit golden test runner -----------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lit-style runner for the golden IR suite: discovers `*.fr` files under
/// the given paths, executes each file's `; RUN:` lines through the shell
/// (so pipes work), and reports PASS/FAIL/XFAIL/XPASS per test plus one
/// summary line. Tests run in parallel on the work-stealing ThreadPool;
/// the report is printed in discovery order, so it is byte-identical at
/// any --jobs value.
///
/// RUN lines support the substitutions %s (the test file), %t (a per-test
/// temporary path, shared by all RUN lines of one test and deleted before
/// they start), %frost-opt, %frost-tv, %filecheck (sibling tool binaries
/// by default), and %% (a literal %). A test passes when every RUN line
/// exits 0; a `; XFAIL` annotation inverts that. See docs/testing.md.
///
/// Exit status: 0 all green, 1 failures (or XPASS), 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

namespace fs = std::filesystem;

namespace {

const char *Usage =
    "usage: frost-lit [options] <file-or-dir>...\n"
    "\n"
    "Runs every *.fr golden test found under the given paths.\n"
    "\n"
    "Options:\n"
    "  --filter=<regex>     run only tests whose path matches <regex>\n"
    "  --jobs=N             worker threads (default: hardware threads)\n"
    "  --frost-opt=<path>   frost-opt binary (default: next to frost-lit)\n"
    "  --frost-tv=<path>    frost-tv binary (default: next to frost-lit)\n"
    "  --filecheck=<path>   frost-filecheck binary (default: next to\n"
    "                       frost-lit)\n"
    "  -v, --verbose        print every RUN line as it executes\n"
    "  -h, --help           show this message\n"
    "\n"
    "Exit status: 0 all tests passed (xfails count as passing), 1 any\n"
    "FAIL or XPASS, 2 usage error.\n";

[[noreturn]] void usageError(const std::string &Msg) {
  std::fprintf(stderr, "frost-lit: %s\n%s", Msg.c_str(), Usage);
  std::exit(2);
}

struct TestFile {
  fs::path Path;
  std::string Display; ///< Path relative to the root it was found under.
};

enum class Outcome { Pass, Fail, XFail, XPass, Broken };

struct TestResult {
  Outcome O = Outcome::Broken;
  std::string Detail; ///< Failing RUN line + captured output.
};

struct Substitutions {
  std::string TestPath, TempPath, FrostOpt, FrostTV, FileCheck;
};

std::string substitute(const std::string &Line, const Substitutions &S) {
  std::string Out;
  size_t I = 0;
  auto Starts = [&](const char *Tok) {
    return Line.compare(I, std::strlen(Tok), Tok) == 0;
  };
  while (I < Line.size()) {
    if (Line[I] != '%') {
      Out += Line[I++];
      continue;
    }
    if (Starts("%%")) {
      Out += '%';
      I += 2;
    } else if (Starts("%frost-opt")) {
      Out += S.FrostOpt;
      I += 10;
    } else if (Starts("%frost-tv")) {
      Out += S.FrostTV;
      I += 9;
    } else if (Starts("%filecheck")) {
      Out += S.FileCheck;
      I += 10;
    } else if (Starts("%s")) {
      Out += S.TestPath;
      I += 2;
    } else if (Starts("%t")) {
      Out += S.TempPath;
      I += 2;
    } else {
      Out += Line[I++];
    }
  }
  return Out;
}

/// Runs one shell command, capturing combined stdout+stderr.
/// Returns the exit status (or -1 if the command could not run).
int runCommand(const std::string &Cmd, std::string &Output) {
  std::string Wrapped = "( " + Cmd + " ) 2>&1";
  FILE *P = popen(Wrapped.c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Output.append(Buf, N);
  int St = pclose(P);
  if (St == -1)
    return -1;
  if (WIFEXITED(St))
    return WEXITSTATUS(St);
  return 128; // Killed by a signal.
}

std::string indent(const std::string &Text, const char *Prefix) {
  std::istringstream In(Text);
  std::ostringstream Out;
  std::string Line;
  while (std::getline(In, Line))
    Out << Prefix << Line << "\n";
  return Out.str();
}

TestResult runTest(const TestFile &T, const Substitutions &Tools,
                   bool Verbose) {
  std::ifstream In(T.Path);
  if (!In)
    return {Outcome::Broken, "  cannot open test file\n"};
  std::vector<std::string> RunLines;
  bool XFail = false;
  std::string Line;
  while (std::getline(In, Line)) {
    size_t C = Line.find_first_not_of(" \t");
    if (C == std::string::npos || Line[C] != ';')
      continue;
    size_t After = Line.find_first_not_of(" \t", C + 1);
    if (After == std::string::npos)
      continue;
    if (Line.compare(After, 4, "RUN:") == 0) {
      std::string Cmd = Line.substr(After + 4);
      size_t S = Cmd.find_first_not_of(" \t");
      RunLines.push_back(S == std::string::npos ? "" : Cmd.substr(S));
    } else if (Line.compare(After, 5, "XFAIL") == 0) {
      XFail = true;
    }
  }
  if (RunLines.empty())
    return {Outcome::Broken, "  no RUN lines in test file\n"};

  Substitutions Subs = Tools;
  Subs.TestPath = T.Path.string();
  // One temp path per test, stable across its RUN lines (so a later RUN
  // can consume what an earlier one produced) and distinct across tests
  // running in parallel. Any stale file from a previous run is removed.
  std::string TempName = T.Display;
  for (char &C : TempName)
    if (C == '/' || C == '\\')
      C = '_';
  Subs.TempPath =
      (fs::temp_directory_path() / ("frost-lit-" + TempName + ".tmp"))
          .string();
  std::error_code TmpEC;
  fs::remove(Subs.TempPath, TmpEC);
  for (const std::string &Raw : RunLines) {
    std::string Cmd = substitute(Raw, Subs);
    if (Verbose)
      std::fprintf(stderr, "frost-lit: RUN[%s]: %s\n", T.Display.c_str(),
                   Cmd.c_str());
    std::string Output;
    int St = runCommand(Cmd, Output);
    if (St != 0) {
      if (XFail)
        return {Outcome::XFail, ""};
      std::ostringstream D;
      D << "  RUN: " << Cmd << "\n  exit status " << St << "; output:\n"
        << indent(Output, "    ");
      return {Outcome::Fail, D.str()};
    }
  }
  return XFail ? TestResult{Outcome::XPass,
                            "  every RUN line passed but the test is "
                            "marked XFAIL\n"}
               : TestResult{Outcome::Pass, ""};
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Roots;
  std::string Filter;
  unsigned Jobs = 0;
  bool Verbose = false;
  Substitutions Tools;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--help" || A == "-h") {
      std::fputs(Usage, stdout);
      return 0;
    } else if (A == "--verbose" || A == "-v") {
      Verbose = true;
    } else if (A.rfind("--filter=", 0) == 0) {
      Filter = A.substr(9);
    } else if (A.rfind("--jobs=", 0) == 0) {
      char *End = nullptr;
      Jobs = unsigned(std::strtoul(A.c_str() + 7, &End, 10));
      if (!End || *End)
        usageError("bad value for --jobs");
    } else if (A.rfind("--frost-opt=", 0) == 0) {
      Tools.FrostOpt = A.substr(12);
    } else if (A.rfind("--frost-tv=", 0) == 0) {
      Tools.FrostTV = A.substr(11);
    } else if (A.rfind("--filecheck=", 0) == 0) {
      Tools.FileCheck = A.substr(12);
    } else if (!A.empty() && A[0] == '-') {
      usageError("unknown option '" + A + "'");
    } else {
      Roots.push_back(A);
    }
  }
  if (Roots.empty())
    usageError("no test files or directories given");

  // Sibling binaries are the default tool set, so `frost-lit tests/ir`
  // works from a build tree without flags.
  fs::path SelfDir = fs::path(argv[0]).parent_path();
  auto Sibling = [&](const char *Name) {
    return SelfDir.empty() ? std::string(Name)
                           : (SelfDir / Name).string();
  };
  if (Tools.FrostOpt.empty())
    Tools.FrostOpt = Sibling("frost-opt");
  if (Tools.FrostTV.empty())
    Tools.FrostTV = Sibling("frost-tv");
  if (Tools.FileCheck.empty())
    Tools.FileCheck = Sibling("frost-filecheck");

  std::regex FilterRe;
  if (!Filter.empty()) {
    try {
      FilterRe = std::regex(Filter);
    } catch (const std::regex_error &E) {
      usageError(std::string("bad --filter regex: ") + E.what());
    }
  }

  // Discovery: every *.fr under each root, sorted per root so the report
  // order is stable across filesystems and --jobs values.
  std::vector<TestFile> Tests;
  for (const std::string &Root : Roots) {
    fs::path R(Root);
    std::error_code EC;
    if (fs::is_directory(R, EC)) {
      std::vector<fs::path> Found;
      for (auto It = fs::recursive_directory_iterator(R, EC);
           It != fs::recursive_directory_iterator(); It.increment(EC)) {
        if (EC)
          break;
        if (It->is_regular_file() && It->path().extension() == ".fr")
          Found.push_back(It->path());
      }
      std::sort(Found.begin(), Found.end());
      for (const fs::path &P : Found)
        Tests.push_back({P, fs::relative(P, R, EC).string()});
    } else if (fs::is_regular_file(R, EC)) {
      Tests.push_back({R, R.filename().string()});
    } else {
      std::fprintf(stderr, "frost-lit: no such file or directory: '%s'\n",
                   Root.c_str());
      return 2;
    }
  }
  if (!Filter.empty()) {
    Tests.erase(std::remove_if(Tests.begin(), Tests.end(),
                               [&](const TestFile &T) {
                                 return !std::regex_search(T.Display,
                                                           FilterRe);
                               }),
                Tests.end());
  }
  if (Tests.empty()) {
    std::fprintf(stderr, "frost-lit: no tests found\n");
    return 2;
  }

  // Parallel execution, deterministic report: every worker writes only its
  // own slot, and the report is emitted afterwards in discovery order.
  std::vector<TestResult> Results(Tests.size());
  {
    frost::ThreadPool Pool(Jobs);
    for (size_t I = 0; I < Tests.size(); ++I)
      Pool.submit([&, I] { Results[I] = runTest(Tests[I], Tools, Verbose); });
    Pool.wait();
  }

  unsigned NPass = 0, NFail = 0, NXFail = 0, NXPass = 0;
  for (size_t I = 0; I < Tests.size(); ++I) {
    const TestResult &R = Results[I];
    const char *Tag = nullptr;
    switch (R.O) {
    case Outcome::Pass:
      Tag = "PASS";
      ++NPass;
      break;
    case Outcome::XFail:
      Tag = "XFAIL";
      ++NXFail;
      break;
    case Outcome::Fail:
      Tag = "FAIL";
      ++NFail;
      break;
    case Outcome::XPass:
      Tag = "XPASS";
      ++NXPass;
      break;
    case Outcome::Broken:
      Tag = "FAIL";
      ++NFail;
      break;
    }
    std::printf("%s: %s\n", Tag, Tests[I].Display.c_str());
    if (R.O == Outcome::Fail || R.O == Outcome::XPass ||
        R.O == Outcome::Broken)
      std::fputs(R.Detail.c_str(), stdout);
  }
  std::printf(
      "frost-lit: %zu tests: %u passed, %u failed, %u xfail, %u xpass\n",
      Tests.size(), NPass, NFail, NXFail, NXPass);
  return (NFail || NXPass) ? 1 : 0;
}
