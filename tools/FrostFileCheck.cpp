//===- FrostFileCheck.cpp - frost-filecheck directive matcher CLI --------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin CLI over support/FileCheck.h, used at the end of RUN-line pipes:
///
///   frost-opt test.fr --passes=gvn | frost-filecheck test.fr
///
/// Reads the candidate input from stdin and the CHECK directives from the
/// named check file. Exit status: 0 all directives satisfied, 1 a
/// directive failed (the caret diagnostic goes to stderr), 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "support/FileCheck.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace {

const char *Usage =
    "usage: frost-filecheck [options] <check-file>\n"
    "\n"
    "Matches stdin against the CHECK directives in <check-file>.\n"
    "\n"
    "Options:\n"
    "  --check-prefix=<prefix>  directive prefix (default CHECK)\n"
    "  -h, --help               show this message\n"
    "\n"
    "Exit status: 0 matched, 1 a directive failed, 2 usage error.\n";

[[noreturn]] void usageError(const std::string &Msg) {
  std::fprintf(stderr, "frost-filecheck: %s\n%s", Msg.c_str(), Usage);
  std::exit(2);
}

} // namespace

int main(int argc, char **argv) {
  std::string CheckFile;
  frost::filecheck::FileCheckOptions Opts;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--help" || A == "-h") {
      std::fputs(Usage, stdout);
      return 0;
    } else if (A.rfind("--check-prefix=", 0) == 0) {
      Opts.Prefix = A.substr(15);
      if (Opts.Prefix.empty())
        usageError("--check-prefix needs a non-empty value");
    } else if (!A.empty() && A[0] == '-' && A != "-") {
      usageError("unknown option '" + A + "'");
    } else if (CheckFile.empty()) {
      CheckFile = A;
    } else {
      usageError("more than one check file");
    }
  }
  if (CheckFile.empty())
    usageError("missing check file");

  std::ifstream In(CheckFile);
  if (!In) {
    std::fprintf(stderr, "frost-filecheck: cannot open '%s'\n",
                 CheckFile.c_str());
    return 2;
  }
  std::ostringstream CheckSS;
  CheckSS << In.rdbuf();

  std::ostringstream InputSS;
  InputSS << std::cin.rdbuf();

  Opts.CheckFileName = CheckFile;
  Opts.InputFileName = "<stdin>";
  frost::filecheck::FileCheckResult R =
      frost::filecheck::checkInput(CheckSS.str(), InputSS.str(), Opts);
  if (!R) {
    std::fputs(R.Message.c_str(), stderr);
    return 1;
  }
  return 0;
}
