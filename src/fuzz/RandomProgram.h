//===- RandomProgram.h - Random terminating program generator ---*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generator of UB-free, terminating frost functions: counted loops,
/// guarded divisions, masked shifts and in-bounds global array traffic. Used
/// as the LNT-substitute corpus (281 benchmarks in the paper) for the
/// compile-time, code-size, and binary-diff experiments of Section 7.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_FUZZ_RANDOMPROGRAM_H
#define FROST_FUZZ_RANDOMPROGRAM_H

#include <cstdint>
#include <string>

namespace frost {

class Function;
class Module;

namespace fuzz {

/// Generation knobs.
struct RandomProgramOptions {
  uint64_t Seed = 1;
  unsigned Statements = 24;  ///< Roughly, arithmetic statements emitted.
  unsigned Loops = 2;        ///< Counted loops (non-nested), each 4-16 trips.
  unsigned Width = 32;       ///< Scalar width.
  unsigned GlobalWords = 16; ///< Size of the scratch global array.
  bool WithBitFieldOps = false; ///< Emit load/mask/merge/store sequences
                                ///< (the Section 5.3 pattern; legacy form).
};

/// Builds one function "Name(iW a, iW b) -> iW" into \p M.
Function *generateRandomFunction(Module &M, const std::string &Name,
                                 const RandomProgramOptions &Opts);

} // namespace fuzz
} // namespace frost

#endif // FROST_FUZZ_RANDOMPROGRAM_H
