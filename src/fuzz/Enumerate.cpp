//===- Enumerate.cpp - Exhaustive IR function enumeration ----------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Enumerate.h"

#include "ir/Constants.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

using namespace frost;
using namespace frost::fuzz;

namespace {

/// Recursive generator: at each step, tries every (opcode, operands) choice
/// for the next instruction, then recurses. The function is materialised
/// once per complete choice sequence.
class Enumerator {
public:
  Enumerator(Module &M, const EnumOptions &Opts,
             const std::function<bool(Function &)> &Visit)
      : M(M), Ctx(M.context()), Opts(Opts), Visit(Visit) {}

  uint64_t run() {
    Count = 0;
    Stop = false;
    generate({});
    return Count;
  }

private:
  Module &M;
  IRContext &Ctx;
  const EnumOptions &Opts;
  const std::function<bool(Function &)> &Visit;
  uint64_t Count = 0;
  bool Stop = false;

  /// One planned instruction: opcode, operand indices into the value pool,
  /// and a flag variant.
  struct Plan {
    Opcode Op;
    unsigned A, B, C; // C used by select only.
    bool NSW;
  };

  /// Values available as operands of instruction \p Slot, split by type:
  /// first the iW pool (args, constants, prior iW results), then the i1
  /// pool (prior icmp results), identified by indices.
  void generate(std::vector<Plan> Planned);
  void materialize(const std::vector<Plan> &Planned);

  /// iW operand pool size before instruction \p Slot given how many of the
  /// earlier instructions produce iW. ICmp produces i1 and Store produces
  /// nothing; everything else (including Load) feeds the wide pool.
  std::vector<unsigned> wideProducers(const std::vector<Plan> &Planned) const {
    std::vector<unsigned> Out;
    for (unsigned I = 0; I != Planned.size(); ++I)
      if (Planned[I].Op != Opcode::ICmp && Planned[I].Op != Opcode::Store)
        Out.push_back(I);
    return Out;
  }
  std::vector<unsigned> boolProducers(const std::vector<Plan> &Planned) const {
    std::vector<unsigned> Out;
    for (unsigned I = 0; I != Planned.size(); ++I)
      if (Planned[I].Op == Opcode::ICmp)
        Out.push_back(I);
    return Out;
  }

  /// Addressable cells inside the `@m` global: MemBytes split into wide
  /// cells (at least one, even when MemBytes is smaller than a cell).
  unsigned numGlobalCells() const {
    unsigned CellBytes = (Opts.Width + 7) / 8;
    return Opts.MemBytes >= CellBytes ? Opts.MemBytes / CellBytes : 1;
  }
  /// Global cells plus the function-local alloca cell (the last index).
  unsigned numCells() const { return numGlobalCells() + 1; }

  unsigned numBaseOperands() const {
    unsigned N = Opts.NumArgs;
    if (Opts.WithConstants)
      N += 3; // 0, 1, -1.
    if (Opts.WithPoison)
      ++N;
    if (Opts.WithUndef)
      ++N;
    return N;
  }
};

void Enumerator::generate(std::vector<Plan> Planned) {
  if (Stop)
    return;
  if (Planned.size() == Opts.NumInsts) {
    materialize(Planned);
    return;
  }

  unsigned WidePool = numBaseOperands() + wideProducers(Planned).size();
  // Bool operand 0 is the literal `i1 poison` when enabled; icmp results
  // follow (matching the BoolVals layout in materialize()).
  unsigned BoolPool =
      (Opts.WithPoisonCond ? 1 : 0) + boolProducers(Planned).size();

  auto TryBinary = [&](Opcode Op, bool NSW) {
    for (unsigned A = 0; A != WidePool && !Stop; ++A)
      for (unsigned B = 0; B != WidePool && !Stop; ++B) {
        Planned.push_back({Op, A, B, 0, NSW});
        generate(Planned);
        Planned.pop_back();
      }
  };

  for (Opcode Op : Opts.Opcodes) {
    TryBinary(Op, false);
    if (Opts.WithFlags &&
        (Op == Opcode::Add || Op == Opcode::Sub || Op == Opcode::Mul))
      TryBinary(Op, true);
  }
  if (Opts.WithSelect) {
    // icmp slt over the wide pool.
    TryBinary(Opcode::ICmp, false);
    // select over (bool, wide, wide).
    for (unsigned CIdx = 0; CIdx != BoolPool && !Stop; ++CIdx)
      for (unsigned A = 0; A != WidePool && !Stop; ++A)
        for (unsigned B = 0; B != WidePool && !Stop; ++B) {
          Planned.push_back({Opcode::Select, A, B, CIdx, false});
          generate(Planned);
          Planned.pop_back();
        }
  }
  if (Opts.WithFreeze) {
    for (unsigned A = 0; A != WidePool && !Stop; ++A) {
      Planned.push_back({Opcode::Freeze, A, 0, 0, false});
      generate(Planned);
      Planned.pop_back();
    }
  }
  if (Opts.WithMemory) {
    // Load: A = cell index. Store: A = wide value, B = cell index.
    for (unsigned A = 0; A != numCells() && !Stop; ++A) {
      Planned.push_back({Opcode::Load, A, 0, 0, false});
      generate(Planned);
      Planned.pop_back();
    }
    for (unsigned A = 0; A != WidePool && !Stop; ++A)
      for (unsigned Cell = 0; Cell != numCells() && !Stop; ++Cell) {
        Planned.push_back({Opcode::Store, A, Cell, 0, false});
        generate(Planned);
        Planned.pop_back();
      }
  }
}

void Enumerator::materialize(const std::vector<Plan> &Planned) {
  // Last instruction must produce the returned iW value.
  if (Planned.back().Op == Opcode::ICmp)
    return;

  IntegerType *WideTy = Ctx.intTy(Opts.Width);
  std::vector<Type *> Params(Opts.NumArgs, WideTy);
  Function *F = M.createFunction("fz", Ctx.types().fnTy(WideTy, Params));
  IRBuilder B(Ctx, F->addBlock("entry"));

  std::vector<Value *> WideVals;
  for (unsigned I = 0; I != Opts.NumArgs; ++I)
    WideVals.push_back(F->arg(I));
  if (Opts.WithConstants) {
    WideVals.push_back(Ctx.getInt(Opts.Width, 0));
    WideVals.push_back(Ctx.getInt(Opts.Width, 1));
    WideVals.push_back(Ctx.getInt(BitVec::allOnes(Opts.Width)));
  }
  if (Opts.WithPoison)
    WideVals.push_back(Ctx.getPoison(WideTy));
  if (Opts.WithUndef)
    WideVals.push_back(Ctx.getUndef(WideTy));

  std::vector<Value *> BoolVals;
  if (Opts.WithPoisonCond)
    BoolVals.push_back(Ctx.getPoison(Ctx.intTy(1)));

  // Memory cells, materialised at the point of first use: cell 0 is the
  // shared `@m` global itself, later global cells are constant inbounds
  // geps off it, and the final index is a fresh alloca of the wide type.
  GlobalVariable *MemG = nullptr;
  std::vector<Value *> CellPtrs(Opts.WithMemory ? numCells() : 0, nullptr);
  auto cellPtr = [&](unsigned Cell) -> Value * {
    if (CellPtrs[Cell])
      return CellPtrs[Cell];
    Value *P;
    if (Cell == numGlobalCells()) {
      P = B.alloca_(WideTy, "sl");
    } else {
      if (!MemG) {
        MemG = Ctx.findGlobal("m");
        if (!MemG)
          MemG = Ctx.getGlobal("m", WideTy, Opts.MemBytes);
      }
      P = Cell == 0 ? static_cast<Value *>(MemG)
                    : B.gep(MemG, Ctx.getInt(32, Cell), /*InBounds=*/true,
                            "p" + std::to_string(Cell));
    }
    return CellPtrs[Cell] = P;
  };

  Value *Last = nullptr;
  for (const Plan &P : Planned) {
    switch (P.Op) {
    case Opcode::ICmp:
      Last = B.icmp(ICmpPred::SLT, WideVals[P.A], WideVals[P.B]);
      BoolVals.push_back(Last);
      break;
    case Opcode::Select:
      Last = B.select(BoolVals[P.C], WideVals[P.A], WideVals[P.B]);
      WideVals.push_back(Last);
      break;
    case Opcode::Freeze:
      Last = B.freeze(WideVals[P.A]);
      WideVals.push_back(Last);
      break;
    case Opcode::Load:
      Last = B.load(cellPtr(P.A), "ld");
      WideVals.push_back(Last);
      break;
    case Opcode::Store:
      B.store(WideVals[P.A], cellPtr(P.B));
      break;
    default:
      Last = B.binOp(P.Op, WideVals[P.A], WideVals[P.B],
                     {P.NSW, false, false});
      WideVals.push_back(Last);
      break;
    }
  }
  // A trailing store is observable through final memory but produces no
  // value; return the newest wide value instead (Last may even be an i1
  // icmp feeding nothing when stores follow it).
  if (!Planned.empty() && Planned.back().Op == Opcode::Store)
    Last = WideVals.empty()
               ? static_cast<Value *>(Ctx.getInt(Opts.Width, 0))
               : WideVals.back();
  B.ret(Last);

  ++Count;
  if (!Visit(*F))
    Stop = true;
  M.eraseFunction(F);
}

} // namespace

uint64_t fuzz::enumerateFunctions(Module &M, const EnumOptions &Opts,
                                  const std::function<bool(Function &)> &Visit) {
  Enumerator E(M, Opts, Visit);
  return E.run();
}

uint64_t fuzz::countFunctions(Module &M, const EnumOptions &Opts) {
  return enumerateFunctions(M, Opts, [](Function &) { return true; });
}
