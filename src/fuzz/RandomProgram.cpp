//===- RandomProgram.cpp - Random terminating program generator ----------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "fuzz/RandomProgram.h"

#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"

using namespace frost;
using namespace frost::fuzz;

namespace {

/// xorshift64* generator, deterministic per seed.
class Rng {
  uint64_t State;

public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9E3779B9) {}

  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }
  unsigned below(unsigned N) { return static_cast<unsigned>(next() % N); }
  bool flip() { return next() & 1; }
};

class ProgramBuilder {
public:
  ProgramBuilder(Module &M, const std::string &Name,
                 const RandomProgramOptions &Opts)
      : Ctx(M.context()), Opts(Opts), R(Opts.Seed), B(Ctx) {
    assert((Opts.GlobalWords & (Opts.GlobalWords - 1)) == 0 &&
           "GlobalWords must be a power of two (indices are masked)");
    IntegerType *W = Ctx.intTy(Opts.Width);
    F = M.createFunction(Name, Ctx.types().fnTy(W, {W, W}));
    F->arg(0)->setName("a");
    F->arg(1)->setName("b");
    Arr = Ctx.getGlobal(Name + ".scratch", W, Opts.GlobalWords * wordBytes());
  }

  Function *build();

private:
  IRContext &Ctx;
  const RandomProgramOptions &Opts;
  Rng R;
  IRBuilder B;
  Function *F = nullptr;
  GlobalVariable *Arr = nullptr;
  Value *Slot = nullptr; ///< Function-local alloca scratch cell.
  std::vector<Value *> Pool;

  unsigned wordBytes() const { return (Opts.Width + 7) / 8; }
  IntegerType *wordTy() { return Ctx.intTy(Opts.Width); }

  Value *pick() { return Pool[R.below(Pool.size())]; }
  Value *constant(uint64_t V) { return Ctx.getInt(Opts.Width, V); }

  /// A safe in-bounds element pointer: index is masked to the array size.
  Value *arrayLocation(Value *Index) {
    Value *Masked = B.and_(Index, constant(Opts.GlobalWords - 1), "idx");
    return B.gep(Arr, Masked, /*InBounds=*/true, "ptr");
  }

  void emitArithmetic();
  void emitMemoryOp();
  void emitBitFieldStore();
  void emitLoop();
  void emitSelect();
  void emitBoolSelect();
  void emitInvariantBranchLoop();
};

void ProgramBuilder::emitArithmetic() {
  Value *X = pick(), *Y = pick();
  switch (R.below(9)) {
  case 0:
    Pool.push_back(B.add(X, Y, {/*NSW=*/R.flip(), false, false}));
    break;
  case 1:
    Pool.push_back(B.sub(X, Y));
    break;
  case 2:
    Pool.push_back(B.mul(X, Y, {R.flip(), false, false}));
    break;
  case 3: {
    // Guarded division: divisor forced odd, hence non-zero.
    Value *D = B.or_(Y, constant(1), "dv");
    Pool.push_back(B.udiv(X, D));
    break;
  }
  case 4: {
    Value *Amt = B.and_(Y, constant(Opts.Width - 1), "sh");
    Pool.push_back(B.shl(X, Amt));
    break;
  }
  case 5: {
    Value *Amt = B.and_(Y, constant(Opts.Width - 1), "sh");
    Pool.push_back(B.lshr(X, Amt));
    break;
  }
  case 6:
    Pool.push_back(B.and_(X, Y));
    break;
  case 7:
    Pool.push_back(B.or_(X, Y));
    break;
  default:
    Pool.push_back(B.xor_(X, Y));
    break;
  }
}

void ProgramBuilder::emitMemoryOp() {
  // A quarter of memory traffic goes through the alloca scratch cell, so
  // stack promotion (SROA-style load/store forwarding, LICM promotion over
  // an identified local object) gets exercised alongside the global array.
  Value *Ptr = R.below(4) == 0 ? Slot : arrayLocation(pick());
  if (R.flip()) {
    B.store(pick(), Ptr);
  } else {
    Pool.push_back(B.load(Ptr, "ld"));
  }
}

/// The Section 5.3 bit-field pattern in its legacy form (no freeze): read
/// the word, mask out a field, merge new bits, write back. The Proposed
/// frontend inserts a freeze after the load; pipelines see both shapes via
/// frontend options — here we emit the raw legacy shape.
void ProgramBuilder::emitBitFieldStore() {
  Value *Ptr = arrayLocation(pick());
  Value *Word = B.load(Ptr, "bf.load");
  unsigned Shift = R.below(Opts.Width - 4);
  uint64_t Mask = 0xFull << Shift;
  Value *Cleared = B.and_(Word, constant(~Mask), "bf.clear");
  Value *FieldVal = B.and_(pick(), constant(0xF), "bf.val");
  Value *Shifted = B.shl(FieldVal, constant(Shift), {}, "bf.shift");
  Value *Merged = B.or_(Cleared, Shifted, "bf.merge");
  B.store(Merged, Ptr);
}

void ProgramBuilder::emitSelect() {
  Value *C = B.icmp(static_cast<ICmpPred>(R.below(10)), pick(), pick(), "c");
  Pool.push_back(B.select(C, pick(), pick(), "sel"));
}

/// An i1-typed "select c, true, x" — the Section 3.4 pattern whose
/// InstCombine lowering differs between the legacy and proposed pipelines
/// (or without vs with freeze).
void ProgramBuilder::emitBoolSelect() {
  Value *C1 = B.icmp(ICmpPred::ULT, pick(), pick(), "bc1");
  Value *C2 = B.icmp(ICmpPred::NE, pick(), constant(0), "bc2");
  Value *Sel = R.flip() ? B.select(C1, Ctx.getTrue(), C2, "bsel")
                        : B.select(C1, C2, Ctx.getFalse(), "bsel");
  Pool.push_back(B.zext(Sel, wordTy(), "bw"));
}

/// A counted loop containing a loop-invariant branch: loop unswitching
/// fires on it, and in the proposed pipeline freezes the hoisted condition.
void ProgramBuilder::emitInvariantBranchLoop() {
  unsigned Trips = 4 + R.below(9);
  Value *Flag = pick();

  BasicBlock *Pre = B.insertBlock();
  BasicBlock *Head = F->addBlock("inv.head");
  BasicBlock *Body = F->addBlock("inv.body");
  BasicBlock *Then = F->addBlock("inv.then");
  BasicBlock *Latch = F->addBlock("inv.latch");
  BasicBlock *Exit = F->addBlock("inv.exit");

  B.br(Head);
  B.setInsertPoint(Head);
  PhiNode *I = B.phi(wordTy(), "ii");
  PhiNode *Acc = B.phi(wordTy(), "iacc");
  Value *C = B.icmp(ICmpPred::ULT, I, constant(Trips), "ic");
  B.condBr(C, Body, Exit);

  B.setInsertPoint(Body);
  Value *Ptr = arrayLocation(I);
  Value *Ld = B.load(Ptr, "ild");
  Value *Inv = B.icmp(ICmpPred::UGT, Flag, constant(0x7FFFFFFF), "inv");
  B.condBr(Inv, Then, Latch);

  B.setInsertPoint(Then);
  B.store(B.xor_(Ld, I, "ix"), Ptr);
  B.br(Latch);

  B.setInsertPoint(Latch);
  Value *Acc1 = B.add(Acc, Ld, {}, "iacc1");
  Value *I1 = B.add(I, constant(1), {/*NSW=*/true, false, false}, "ii1");
  B.br(Head);

  I->addIncoming(constant(0), Pre);
  I->addIncoming(I1, Latch);
  Acc->addIncoming(pick(), Pre);
  Acc->addIncoming(Acc1, Latch);

  B.setInsertPoint(Exit);
  PhiNode *Out = B.phi(wordTy(), "iout");
  Out->addIncoming(Acc, Head);
  Pool.push_back(Out);
}

void ProgramBuilder::emitLoop() {
  unsigned Trips = 4 + R.below(13);
  Value *Init = pick();

  BasicBlock *Pre = B.insertBlock();
  BasicBlock *Head = F->addBlock("loop.head");
  BasicBlock *Body = F->addBlock("loop.body");
  BasicBlock *Exit = F->addBlock("loop.exit");

  B.br(Head);
  B.setInsertPoint(Head);
  PhiNode *I = B.phi(wordTy(), "i");
  PhiNode *Acc = B.phi(wordTy(), "acc");
  Value *C = B.icmp(ICmpPred::ULT, I, constant(Trips), "lc");
  B.condBr(C, Body, Exit);

  B.setInsertPoint(Body);
  // Small loop body: accumulate over the scratch array.
  Value *Ptr = arrayLocation(I);
  Value *Ld = B.load(Ptr, "lv");
  Value *Acc1 = B.add(Acc, Ld, {}, "acc1");
  Value *Mix = B.xor_(Acc1, I, "mix");
  B.store(Mix, Ptr);
  Value *I1 = B.add(I, constant(1), {/*NSW=*/true, false, false}, "i1");
  B.br(Head);

  I->addIncoming(constant(0), Pre);
  I->addIncoming(I1, Body);
  Acc->addIncoming(Init, Pre);
  Acc->addIncoming(Mix, Body);

  B.setInsertPoint(Exit);
  Pool.push_back(Acc);
}

Function *ProgramBuilder::build() {
  B.setInsertPoint(F->addBlock("entry"));
  Pool = {F->arg(0), F->arg(1), constant(1), constant(0x2B)};

  // Initialise the scratch array and the local cell so loads are never
  // uninitialized.
  for (unsigned I = 0; I != Opts.GlobalWords; ++I)
    B.store(constant(R.next() & 0xFF), B.gep(Arr, constant(I), true));
  Slot = B.alloca_(wordTy(), "slot");
  B.store(constant(R.next() & 0xFF), Slot);

  unsigned LoopsLeft = Opts.Loops;
  // Roughly a quarter of generated programs contain a construct whose
  // optimization is UB-semantics-sensitive (boolean selects or an
  // invariant branch in a loop), mirroring the paper's LNT observation
  // that 26% of benchmarks changed IR under the new pipeline.
  bool Sensitive = R.below(3) == 0;
  for (unsigned S = 0; S != Opts.Statements; ++S) {
    unsigned Kind = R.below(13);
    if (Kind < 6) {
      emitArithmetic();
    } else if (Kind < 8) {
      emitMemoryOp();
    } else if (Kind == 8 && Opts.WithBitFieldOps) {
      emitBitFieldStore();
    } else if (Kind == 9) {
      emitSelect();
    } else if ((Kind == 10 || Kind == 11) && Sensitive) {
      if (R.flip())
        emitBoolSelect();
      else if (LoopsLeft) {
        --LoopsLeft;
        emitInvariantBranchLoop();
      } else {
        emitBoolSelect();
      }
    } else if (LoopsLeft) {
      --LoopsLeft;
      emitLoop();
    } else {
      emitArithmetic();
    }
  }

  // Fold the pool tail into a result.
  Value *Ret = Pool.back();
  Ret = B.xor_(Ret, Pool[Pool.size() / 2], "fold");
  B.ret(Ret);
  return F;
}

} // namespace

Function *fuzz::generateRandomFunction(Module &M, const std::string &Name,
                                       const RandomProgramOptions &Opts) {
  ProgramBuilder PB(M, Name, Opts);
  return PB.build();
}
