//===- Enumerate.h - Exhaustive IR function enumeration ---------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The opt-fuzz substitute (Section 6): exhaustively generates every
/// straight-line frost function with a bounded number of instructions over
/// narrow integer arithmetic, so that passes can be validated against the
/// semantics on ALL small programs — "we used opt-fuzz to exhaustively
/// generate all LLVM functions with three instructions over 2-bit integer
/// arithmetic and then used Alive to validate passes".
///
//===----------------------------------------------------------------------===//

#ifndef FROST_FUZZ_ENUMERATE_H
#define FROST_FUZZ_ENUMERATE_H

#include "ir/Instruction.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace frost {

class Function;
class Module;

namespace fuzz {

/// Shape of the enumerated function space.
struct EnumOptions {
  unsigned NumInsts = 3;  ///< Instructions per function (plus the ret).
  unsigned Width = 2;     ///< Integer width (the paper used i2).
  unsigned NumArgs = 2;   ///< Formal parameters of that width.
  bool WithConstants = true;  ///< Allow operands 0, 1, -1.
  bool WithPoison = false;    ///< Allow a literal poison operand.
  bool WithUndef = false;     ///< Allow a literal undef operand.
  bool WithFlags = false;     ///< Also enumerate the nsw variant of add/sub/mul.
  bool WithFreeze = true;     ///< Include the new freeze instruction.
  bool WithSelect = true;     ///< Include select fed by enumerated icmps.
  /// Also offer the literal `i1 poison` as a select condition (in addition
  /// to enumerated icmp results). Off by default: it grows the select space
  /// and is mainly interesting for backend (end-to-end) validation, where a
  /// poison condition reaching a branchless select lowering is the classic
  /// divergence between the legacy select readings and the machine.
  bool WithPoisonCond = false;
  /// Also enumerate memory traffic: loads and stores over a small
  /// addressable space — a module global `@m` of MemBytes bytes, split
  /// into cells of the wide type (cell 0 is `@m` itself, later cells are
  /// constant inbounds geps), plus one function-local alloca cell of the
  /// same type. Stores draw their value from the full wide pool, so
  /// WithUndef / WithPoison also yield stores of literal undef / poison —
  /// the shapes whose forwarding and deletion differ between the legacy
  /// and proposed semantics. A function may end in a store (its effect is
  /// observable through final memory); the return value then falls back to
  /// the newest wide value. Memory-sweeping TV campaigns pair this with
  /// TVOptions::EnumerateMemory.
  bool WithMemory = false;
  /// Bytes of global memory when WithMemory is set. 1-4 keeps the
  /// initial-memory sweep tractable; values below one wide cell still get
  /// a single cell.
  unsigned MemBytes = 2;
  /// Opcodes to draw from (subset of binary arithmetic); icmp is always
  /// included when WithSelect is set.
  std::vector<Opcode> Opcodes = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                 Opcode::And, Opcode::Or,  Opcode::Xor,
                                 Opcode::Shl, Opcode::LShr};
};

/// Invokes \p Visit on every function in the space, building each into \p M
/// (and erasing it afterwards). \p Visit returns false to stop early.
/// Returns the number of functions visited.
uint64_t enumerateFunctions(Module &M, const EnumOptions &Opts,
                            const std::function<bool(Function &)> &Visit);

/// Number of functions the enumeration would visit (same traversal without
/// building IR callbacks — still builds the functions, so prefer small
/// spaces).
uint64_t countFunctions(Module &M, const EnumOptions &Opts);

} // namespace fuzz
} // namespace frost

#endif // FROST_FUZZ_ENUMERATE_H
