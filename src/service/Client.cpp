//===- Client.cpp - frost-tvd protocol client ------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

using namespace frost;
using namespace frost::svc;

namespace {

void setError(std::string *Error, std::string Msg) {
  if (Error)
    *Error = std::move(Msg);
}

} // namespace

bool Client::connect(unsigned Port, std::string *Error) {
  int Fd = connectLoopback(Port, Error);
  if (Fd < 0)
    return false;
  Stream = SocketStream(Fd);
  return true;
}

bool Client::send(const Request &Req, std::string *Error) {
  if (!Stream.writeAll(serializeRequest(Req))) {
    setError(Error, "send failed: connection to daemon lost");
    return false;
  }
  return true;
}

bool Client::receive(Response &Resp, std::string *Error) {
  std::string Line;
  if (!Stream.readLine(Line)) {
    setError(Error, "connection to daemon lost while awaiting a response");
    return false;
  }
  if (Line.rfind("resp ", 0) == 0) {
    uint64_t ReportLen = 0;
    if (!parseResponseHeader(Line, Resp, ReportLen, Error))
      return false;
    if (!Stream.readBlob(ReportLen, Resp.Report)) {
      setError(Error, "truncated response payload");
      return false;
    }
    return true;
  }
  if (Line.rfind("err ", 0) == 0) {
    uint64_t Len = 0;
    std::string Word = Line.substr(4);
    try {
      Len = std::stoull(Word);
    } catch (...) {
      setError(Error, "malformed err frame header");
      return false;
    }
    Resp.Id = ~uint64_t(0);
    Resp.V = Response::Verdict::Error;
    if (!Stream.readBlob(Len, Resp.Report)) {
      setError(Error, "truncated err payload");
      return false;
    }
    return true;
  }
  setError(Error, "unexpected frame from daemon: '" + Line + "'");
  return false;
}

bool Client::stats(std::string &Payload, std::string *Error) {
  if (!Stream.writeAll("stats\n")) {
    setError(Error, "send failed: connection to daemon lost");
    return false;
  }
  std::string Line;
  if (!Stream.readLine(Line) || Line.rfind("stats ", 0) != 0) {
    setError(Error, "daemon did not answer the stats query");
    return false;
  }
  uint64_t Len = 0;
  try {
    Len = std::stoull(Line.substr(6));
  } catch (...) {
    setError(Error, "malformed stats frame header");
    return false;
  }
  if (!Stream.readBlob(Len, Payload)) {
    setError(Error, "truncated stats payload");
    return false;
  }
  return true;
}

bool Client::shutdownServer(std::string *Error) {
  if (!Stream.writeAll("shutdown\n")) {
    setError(Error, "send failed: connection to daemon lost");
    return false;
  }
  std::string Line;
  if (!Stream.readLine(Line) || Line != "bye") {
    setError(Error, "daemon did not acknowledge shutdown");
    return false;
  }
  return true;
}
