//===- Server.h - The frost-tvd verification daemon -------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-running verification service the ROADMAP's "millions of users"
/// architecture calls for: a loopback TCP daemon that accepts batched
/// verification requests (one standalone function + campaign config per
/// frame, see service/Protocol.h), routes each through tv::runCampaign with
/// one shared VerdictCache kept hot in memory, and answers with the exact
/// report bytes `frost-tv --file` would print — so CI fleets re-checking a
/// pass change pay a cache lookup per already-seen function and burn CPU
/// only on novel ones.
///
/// Concurrency shape: an accept thread spawns one reader thread per
/// connection; readers admit jobs through the two-lane LaneScheduler
/// (interactive overtakes bulk; full lanes block the reader — backpressure
/// via TCP) onto one shared work-stealing ThreadPool. Each job runs a
/// single-function file-source campaign with Jobs=1 — parallelism lives in
/// the service, not nested pools. Responses are written strictly in each
/// connection's request order (out-of-order completions are buffered), so
/// `stats` sampled after a batch observes every prior response on that
/// connection.
///
/// Persistence: the verdict cache and the deduplicated counterexample
/// corpus (service/Corpus.h) are written atomically every PersistEvery
/// completed requests and again at shutdown, so a crash loses at most one
/// window of verdicts — and concurrent CLI runs sharing the --cache-file
/// are safe against the daemon's persist (unique temp names, see
/// support/AtomicFile.h).
///
/// Observability: svc.* counters (requests, per-lane admissions and depths,
/// verdict tallies, cache hit/miss, corpus size, persists, backpressure
/// waits) via the `stats` frame.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SERVICE_SERVER_H
#define FROST_SERVICE_SERVER_H

#include "service/Corpus.h"
#include "service/Lanes.h"
#include "service/Protocol.h"
#include "service/Socket.h"
#include "support/ThreadPool.h"
#include "tv/VerdictCache.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace frost {
namespace svc {

struct ServerOptions {
  unsigned Port = 0;           ///< 0 = ephemeral; read back via port().
  unsigned Jobs = 0;           ///< Verification workers; 0 = hardware.
  std::string CacheFile;       ///< Verdict-cache persistence (empty = off).
  std::string CorpusFile;      ///< Corpus persistence (empty = off).
  uint64_t PersistEvery = 256; ///< Completed requests per persist window.
  uint64_t LaneCapacity = 128; ///< Queued jobs per lane before backpressure.
  /// Upper bound on any single frame blob; larger lengths are a framing
  /// error (connection closed) before any allocation.
  uint64_t MaxBlobBytes = 1 << 20;
};

class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds, listens, and starts the accept thread. False with \p Error if
  /// the port cannot be bound.
  bool start(std::string *Error);

  /// The bound port (valid after start()).
  unsigned port() const { return BoundPort; }

  /// Initiates shutdown: stops accepting, unblocks connection readers,
  /// drains admitted jobs, persists. Idempotent; safe from any thread and
  /// from a signal handler's perspective only via the listen-fd shutdown
  /// (no locks are taken before the flag is set).
  void requestShutdown();

  /// Blocks until the daemon has fully shut down (accept thread joined,
  /// jobs drained, state persisted).
  void wait();

  /// The shared in-memory verdict cache (e.g. to preload before start()).
  tv::VerdictCache &cache() { return Cache; }

  /// The counterexample corpus (e.g. to preload before start()).
  Corpus &corpus() { return Cex; }

  /// The `stats` frame payload: svc.* counters plus live gauges (lane
  /// depths, cache entries, corpus size), one "name = value" per line,
  /// sorted by name.
  std::string statsReport() const;

  /// Completed requests since start (all verdicts, including errors).
  uint64_t completedRequests() const { return Completed.load(); }

private:
  struct Connection;

  void acceptLoop();
  void readerLoop(std::shared_ptr<Connection> Conn);
  Response handleRequest(const Request &Req);
  void finishRequest();
  void persist(bool Force);
  void drainPool();

  ServerOptions Opts;
  ThreadPool Pool;
  LaneScheduler Lanes;
  tv::VerdictCache Cache;
  Corpus Cex;

  int ListenFd = -1;
  unsigned BoundPort = 0;
  std::thread AcceptThread;
  std::atomic<bool> ShuttingDown{false};
  std::atomic<bool> Started{false};

  std::mutex ConnMutex;
  std::vector<std::shared_ptr<Connection>> Conns; ///< Live connections.
  std::vector<std::thread> Readers;

  std::atomic<uint64_t> Completed{0};
  std::mutex PersistMutex;
};

} // namespace svc
} // namespace frost

#endif // FROST_SERVICE_SERVER_H
