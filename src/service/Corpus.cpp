//===- Corpus.cpp - Persistent counterexample corpus -----------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "service/Corpus.h"

#include "ir/Constants.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/StructuralHash.h"
#include "parser/Parser.h"
#include "support/AtomicFile.h"
#include "support/Casting.h"

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace frost;
using namespace frost::svc;

namespace {

/// The globals \p F's body references, in first-use order.
std::vector<GlobalVariable *> referencedGlobals(Function &F) {
  std::vector<GlobalVariable *> Globals;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op)
        if (auto *G = dyn_cast<GlobalVariable>(I->getOperand(Op)))
          if (std::find(Globals.begin(), Globals.end(), G) == Globals.end())
            Globals.push_back(G);
  return Globals;
}

std::string shapeOf(const GlobalVariable &G) {
  return G.valueType()->str() + ", " + std::to_string(G.sizeBytes());
}

} // namespace

bool Corpus::add(const std::string &FunctionText) {
  // Parse in a private context so renaming below cannot disturb the caller.
  IRContext Ctx;
  Module EntryM(Ctx, "corpus.entry");
  ParseResult P = parseModule(FunctionText, EntryM);
  if (!P)
    return false;
  Function *F = nullptr;
  for (Function *Cand : EntryM.functions())
    if (!Cand->isDeclaration()) {
      F = Cand;
      break;
    }
  if (!F)
    return false;

  // Dedup on the canonical form *before* renaming: two campaigns hitting
  // isomorphic counterexamples (same shape, different register or function
  // names) store one corpus entry.
  std::string HashStr = structuralHash(*F).str();

  std::lock_guard<std::mutex> Lock(M);
  if (!Hashes.insert(HashStr).second)
    return false;

  F->setName("cex" + std::to_string(NextId++));
  for (GlobalVariable *G : referencedGlobals(*F)) {
    std::string Shape = shapeOf(*G);
    auto It = GlobalShapes.find(G->getName());
    if (It == GlobalShapes.end()) {
      GlobalShapes.emplace(G->getName(), std::move(Shape));
    } else if (It->second != Shape) {
      // Same name, different shape than an earlier campaign's global: the
      // merged module would silently unify them, so rename ours.
      std::string Fresh;
      do {
        Fresh = G->getName() + ".g" + std::to_string(NextGlobalRename++);
      } while (GlobalShapes.count(Fresh));
      G->setName(Fresh);
      GlobalShapes.emplace(std::move(Fresh), std::move(Shape));
    }
  }
  Entries.push_back(printFunction(*F));
  return true;
}

uint64_t Corpus::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Entries.size();
}

std::string Corpus::renderModule() const {
  std::lock_guard<std::mutex> Lock(M);
  std::ostringstream OS;
  OS << "; frost-tvd counterexample corpus\n"
     << "; " << Entries.size()
     << " structurally distinct counterexamples (canonical-form dedup)\n"
     << "; replay: frost-tv --file <this file> [--pipeline ...]\n\n";
  for (const std::string &E : Entries) {
    OS << E;
    if (!E.empty() && E.back() != '\n')
      OS << "\n";
    OS << "\n";
  }
  return OS.str();
}

bool Corpus::load(const std::string &Path, std::string *Error) {
  std::ifstream In(Path);
  if (!In) {
    if (Error)
      *Error = "cannot read corpus file '" + Path + "'";
    return false;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  IRContext Ctx;
  Module M(Ctx, "corpus.load");
  ParseResult P = parseModule(Buf.str(), M);
  if (!P) {
    if (Error)
      *Error = "corpus file '" + Path + "': " + P.Error;
    return false;
  }
  for (Function *F : M.functions())
    if (!F->isDeclaration())
      add(printFunction(*F));
  return true;
}

bool Corpus::save(const std::string &Path, std::string *Error) const {
  std::string AtomicError;
  if (!writeFileAtomic(Path, renderModule(), &AtomicError)) {
    if (Error)
      *Error = "corpus file '" + Path + "': " + AtomicError;
    return false;
  }
  return true;
}
