//===- Lanes.cpp - Priority lanes with backpressure ------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "service/Lanes.h"

#include "support/Stats.h"

using namespace frost;
using namespace frost::svc;

LaneScheduler::LaneScheduler(ThreadPool &Pool, uint64_t LaneCapacity)
    : Pool(Pool), Capacity(LaneCapacity ? LaneCapacity : 1) {}

void LaneScheduler::enqueue(Lane L, std::function<void()> Job) {
  unsigned I = unsigned(L);
  {
    std::unique_lock<std::mutex> Lock(M);
    if (Q[I].size() >= Capacity) {
      stats::add("svc.backpressure_waits");
      SpaceCV.wait(Lock, [&] { return Q[I].size() < Capacity; });
    }
    Q[I].push_back(std::move(Job));
    ++Admitted[I];
  }
  // One generic drain task per admitted job: the pool decides *when* work
  // runs, the lanes decide *which* job runs next.
  Pool.submit([this] { runOne(); });
}

void LaneScheduler::runOne() {
  std::function<void()> Job;
  {
    std::lock_guard<std::mutex> Lock(M);
    // Priority is realized at pop time: any queued interactive job beats
    // every queued bulk job, regardless of arrival order.
    if (!Q[unsigned(Lane::Interactive)].empty()) {
      Job = std::move(Q[unsigned(Lane::Interactive)].front());
      Q[unsigned(Lane::Interactive)].pop_front();
    } else if (!Q[unsigned(Lane::Bulk)].empty()) {
      Job = std::move(Q[unsigned(Lane::Bulk)].front());
      Q[unsigned(Lane::Bulk)].pop_front();
    } else {
      return; // Every admitted job was claimed by a sibling drain task.
    }
  }
  SpaceCV.notify_all();
  Job();
}

uint64_t LaneScheduler::depth(Lane L) const {
  std::lock_guard<std::mutex> Lock(M);
  return Q[unsigned(L)].size();
}

uint64_t LaneScheduler::enqueued(Lane L) const {
  std::lock_guard<std::mutex> Lock(M);
  return Admitted[unsigned(L)];
}

void LaneScheduler::drain() { Pool.wait(); }
