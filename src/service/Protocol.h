//===- Protocol.h - frost-tvd wire protocol ---------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The newline-delimited framed protocol between frost-tvc (and any other
/// batch producer) and the frost-tvd verification daemon. Every frame is a
/// space-separated ASCII header line; variable-length payloads follow as
/// length-prefixed blobs, each terminated by a '\n' separator, so a reader
/// never scans payload bytes for framing.
///
/// Client -> server:
///
///   req <id> <lane> <kind> <pipeline> <sem> <mem> <passes-len> <fn-len>\n
///   <passes bytes>\n
///   <fn bytes>\n
///       One verification request: validate one standalone function text
///       (printFunction output) under one campaign configuration.
///       <id>       caller-chosen u64, echoed in the response
///       <lane>     interactive | bulk     (queue priority, see Lanes.h)
///       <kind>     ir | e2e | sanitizer   (CampaignKind)
///       <pipeline> proposed | legacy      (PipelineMode)
///       <sem>      proposed | legacy-unswitch | legacy-gvn | legacy-langref
///       <mem>      compare-memory | -     (TVOptions memory comparison)
///       <passes>   textual pass pipeline; empty means the default preset
///
///   stats\n      Sample the svc.* observability counters.
///   shutdown\n   Persist state and stop the daemon (answered with bye).
///
/// Server -> client (per connection, in request order — responses to
/// pipelined requests never reorder, so batch clients match by position as
/// well as by id):
///
///   resp <id> <verdict> <report-len>\n<report bytes>\n
///       <verdict>  valid | invalid | inconclusive | error
///       <report>   the single-function CampaignResult::report() bytes —
///                  byte-identical to what `frost-tv --file` prints for the
///                  same function and configuration — or the error message.
///
///   stats <len>\n<payload bytes>\n
///   bye\n
///   err <len>\n<message bytes>\n
///       A malformed frame. A syntactically bad header whose line was still
///       consumed keeps the connection; a framing-level break (bad blob
///       length, oversized frame) closes it. The daemon itself never goes
///       down on client garbage.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SERVICE_PROTOCOL_H
#define FROST_SERVICE_PROTOCOL_H

#include "opt/Pipeline.h"
#include "sem/Config.h"
#include "tv/Campaign.h"

#include <cstdint>
#include <string>

namespace frost {
namespace svc {

/// Queue priority. Interactive requests (a developer's editor probing one
/// function) overtake bulk ones (a CI fleet re-checking a corpus) at every
/// dispatch point; see service/Lanes.h.
enum class Lane : uint8_t { Interactive = 0, Bulk = 1 };

struct Request {
  uint64_t Id = 0;
  Lane L = Lane::Bulk;
  tv::CampaignKind Kind = tv::CampaignKind::IRPipeline;
  PipelineMode Pipeline = PipelineMode::Proposed;
  std::string Semantics = "proposed"; ///< One of the <sem> tokens above.
  bool CompareMemory = false;
  std::string Passes;   ///< Empty = the default preset.
  std::string Function; ///< Standalone .fr text of one defined function.
};

struct Response {
  enum class Verdict : uint8_t { Valid, Invalid, Inconclusive, Error };

  uint64_t Id = 0;
  Verdict V = Verdict::Valid;
  std::string Report;
};

const char *laneName(Lane L);
bool laneFromName(const std::string &Name, Lane &Out);

const char *kindName(tv::CampaignKind K);
bool kindFromName(const std::string &Name, tv::CampaignKind &Out);

const char *pipelineName(PipelineMode M);
bool pipelineFromName(const std::string &Name, PipelineMode &Out);

const char *verdictName(Response::Verdict V);
bool verdictFromName(const std::string &Name, Response::Verdict &Out);

/// Resolves a <sem> token to its SemanticsConfig; false on unknown token.
bool semanticsFromName(const std::string &Name, sem::SemanticsConfig &Out);

/// Renders the full frame (header + blobs) for a request / response.
std::string serializeRequest(const Request &R);
std::string serializeResponse(const Response &R);

/// Parses a `req ...` header line (already stripped of its newline) into
/// \p R and the two blob lengths that follow on the wire. False with
/// \p Error on any malformed field.
bool parseRequestHeader(const std::string &Line, Request &R,
                        uint64_t &PassesLen, uint64_t &FnLen,
                        std::string *Error);

/// Parses a `resp ...` header line into \p R (Report excluded) and the
/// report blob length.
bool parseResponseHeader(const std::string &Line, Response &R,
                         uint64_t &ReportLen, std::string *Error);

} // namespace svc
} // namespace frost

#endif // FROST_SERVICE_PROTOCOL_H
