//===- Lanes.h - Priority lanes with backpressure ---------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission layer between frost-tvd's connection readers and the shared
/// work-stealing ThreadPool: two bounded FIFO lanes — interactive and bulk —
/// drained in strict priority order. Every enqueue pairs one queued job with
/// one generic drain task on the pool; a drain task pops the interactive
/// lane first, so an interactive request submitted while a bulk backlog is
/// queued overtakes every not-yet-started bulk job (it cannot preempt jobs
/// already running — the pool is non-preemptive by design).
///
/// Backpressure: enqueue() blocks while the target lane is at capacity.
/// The caller is a per-connection reader thread, so a saturated lane stops
/// that connection's reads, TCP flow control pushes back to the client, and
/// memory stays bounded no matter how fast a bulk producer pipelines —
/// without ever slowing the interactive lane's admissions.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SERVICE_LANES_H
#define FROST_SERVICE_LANES_H

#include "service/Protocol.h"
#include "support/ThreadPool.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

namespace frost {
namespace svc {

class LaneScheduler {
public:
  /// Jobs run on \p Pool; each lane admits at most \p LaneCapacity queued
  /// (not yet started) jobs before enqueue() blocks.
  LaneScheduler(ThreadPool &Pool, uint64_t LaneCapacity);

  /// Queues \p Job on lane \p L, blocking while the lane is full (each
  /// block bumps svc.backpressure_waits). Safe from any thread.
  void enqueue(Lane L, std::function<void()> Job);

  /// Jobs queued (admitted, not yet started) on lane \p L.
  uint64_t depth(Lane L) const;

  /// Total jobs ever admitted to lane \p L.
  uint64_t enqueued(Lane L) const;

  /// Blocks until every admitted job has finished. Forwards ThreadPool's
  /// error contract: rethrows one captured job exception per call — the
  /// server wraps jobs so they never throw, but a bare scheduler user must
  /// loop until drain() returns cleanly.
  void drain();

private:
  void runOne();

  ThreadPool &Pool;
  const uint64_t Capacity;

  mutable std::mutex M;
  std::condition_variable SpaceCV; ///< Signalled when a lane shrinks.
  std::deque<std::function<void()>> Q[2]; ///< Indexed by Lane.
  uint64_t Admitted[2] = {0, 0};
};

} // namespace svc
} // namespace frost

#endif // FROST_SERVICE_LANES_H
