//===- Server.cpp - The frost-tvd verification daemon ----------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "opt/Pipeline.h"
#include "support/Stats.h"

#include <map>

#include <sys/socket.h>
#include <unistd.h>

using namespace frost;
using namespace frost::svc;

/// Per-connection state. Responses are computed by pool workers in any
/// order but written in request order: deliver() parks early completions in
/// Ready until every lower sequence number has gone out. Writing happens
/// under WriteM, so frames never interleave.
struct Server::Connection {
  explicit Connection(int Fd) : Stream(Fd) {}

  SocketStream Stream;
  std::mutex WriteM;
  std::condition_variable WriteCV;
  uint64_t NextWrite = 0;                ///< Next sequence number to write.
  std::map<uint64_t, std::string> Ready; ///< Out-of-order completed frames.

  void deliver(uint64_t Seq, std::string Frame) {
    std::unique_lock<std::mutex> Lock(WriteM);
    Ready.emplace(Seq, std::move(Frame));
    while (!Ready.empty() && Ready.begin()->first == NextWrite) {
      std::string Out = std::move(Ready.begin()->second);
      Ready.erase(Ready.begin());
      // A failed write (peer vanished) is deliberately ignored: the
      // verdict was still computed, cached, and corpus-fed.
      Stream.writeAll(Out);
      ++NextWrite;
      WriteCV.notify_all();
    }
  }

  /// Blocks until every sequence number below \p Seq has been written —
  /// the ordering point that makes `stats` after a batch observe all of
  /// the batch's responses (and their counter updates).
  void waitWritten(uint64_t Seq) {
    std::unique_lock<std::mutex> Lock(WriteM);
    WriteCV.wait(Lock, [&] { return NextWrite >= Seq; });
  }
};

Server::Server(ServerOptions O)
    : Opts(O), Pool(O.Jobs), Lanes(Pool, O.LaneCapacity) {}

Server::~Server() {
  if (Started.load()) {
    requestShutdown();
    wait();
  }
}

bool Server::start(std::string *Error) {
  ListenFd = listenLoopback(Opts.Port, &BoundPort, Error);
  if (ListenFd < 0)
    return false;
  Started.store(true);
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::requestShutdown() {
  if (ShuttingDown.exchange(true))
    return;
  // Only flag + fd shutdown here: accept() wakes with an error, and the
  // accept thread runs the ordered teardown. No locks on this path.
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
}

void Server::wait() {
  if (AcceptThread.joinable())
    AcceptThread.join();
}

void Server::acceptLoop() {
  while (!ShuttingDown.load()) {
    int Fd = acceptConnection(ListenFd);
    if (Fd < 0)
      break; // Listener shut down (or a hard accept error).
    stats::add("svc.connections");
    auto Conn = std::make_shared<Connection>(Fd);
    std::lock_guard<std::mutex> Lock(ConnMutex);
    Conns.push_back(Conn);
    Readers.emplace_back([this, Conn] { readerLoop(Conn); });
  }

  // Ordered teardown. Unblock every reader stuck in readLine...
  ShuttingDown.store(true);
  {
    std::lock_guard<std::mutex> Lock(ConnMutex);
    for (auto &Conn : Conns)
      Conn->Stream.shutdownRead();
  }
  for (std::thread &R : Readers)
    R.join();
  // ...then drain every admitted job (their responses still go out to
  // connections that are alive), and persist one final time.
  drainPool();
  persist(/*Force=*/true);
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
}

void Server::drainPool() {
  // The pool's post-fix error contract: wait() rethrows captured task
  // exceptions one per call until clean. Jobs are wrapped so this should
  // never fire, but a daemon must outlive surprises — count, don't crash.
  while (true) {
    try {
      Lanes.drain();
      return;
    } catch (...) {
      stats::add("svc.task_errors");
    }
  }
}

void Server::readerLoop(std::shared_ptr<Connection> Conn) {
  uint64_t Seq = 0;
  std::string Line;
  while (!ShuttingDown.load() && Conn->Stream.readLine(Line)) {
    if (Line == "stats") {
      uint64_t S = Seq++;
      Conn->waitWritten(S); // Sample after every prior response landed.
      std::string Payload = statsReport();
      Conn->deliver(S, "stats " + std::to_string(Payload.size()) + "\n" +
                           Payload + "\n");
      continue;
    }
    if (Line == "shutdown") {
      uint64_t S = Seq++;
      Conn->waitWritten(S);
      Conn->deliver(S, "bye\n");
      requestShutdown();
      break;
    }
    if (Line.rfind("req ", 0) == 0) {
      Request Req;
      uint64_t PassesLen = 0, FnLen = 0;
      std::string ParseError;
      if (!parseRequestHeader(Line, Req, PassesLen, FnLen, &ParseError)) {
        // Header line consumed whole; the stream is still framed. Reject
        // the frame, keep the connection.
        stats::add("svc.malformed_frames");
        uint64_t S = Seq++;
        Conn->deliver(S, "err " + std::to_string(ParseError.size()) + "\n" +
                             ParseError + "\n");
        continue;
      }
      if (PassesLen > Opts.MaxBlobBytes || FnLen > Opts.MaxBlobBytes) {
        // The blobs are on the wire and unskippable within budget: framing
        // is lost, drop the connection (but never the daemon).
        stats::add("svc.malformed_frames");
        std::string Msg = "frame blob exceeds limit of " +
                          std::to_string(Opts.MaxBlobBytes) + " bytes";
        Conn->deliver(Seq++, "err " + std::to_string(Msg.size()) + "\n" +
                                 Msg + "\n");
        break;
      }
      if (!Conn->Stream.readBlob(PassesLen, Req.Passes) ||
          !Conn->Stream.readBlob(FnLen, Req.Function)) {
        stats::add("svc.malformed_frames");
        break; // Torn frame: stream unframed, connection over.
      }
      stats::add("svc.requests");
      stats::add(Req.L == Lane::Interactive ? "svc.lane_interactive_admitted"
                                            : "svc.lane_bulk_admitted");
      uint64_t S = Seq++;
      // enqueue() blocks while the lane is saturated — this reader thread
      // is the backpressure valve for its connection.
      Lanes.enqueue(Req.L, [this, Conn, S, Req = std::move(Req)] {
        Response Resp = handleRequest(Req);
        Conn->deliver(S, serializeResponse(Resp));
        finishRequest();
      });
      continue;
    }
    // Unknown single-line verb: reject, keep the connection.
    stats::add("svc.malformed_frames");
    std::string Msg = "unknown frame verb in '" + Line + "'";
    Conn->deliver(Seq++,
                  "err " + std::to_string(Msg.size()) + "\n" + Msg + "\n");
  }
  // Remove this connection from the live set (shutdown teardown tolerates
  // either outcome; jobs still in flight hold their own shared_ptr).
  std::lock_guard<std::mutex> Lock(ConnMutex);
  for (size_t I = 0; I != Conns.size(); ++I)
    if (Conns[I] == Conn) {
      Conns.erase(Conns.begin() + I);
      break;
    }
}

Response Server::handleRequest(const Request &Req) {
  Response Resp;
  Resp.Id = Req.Id;
  try {
    // The same admission contract frost-tv --file enforces with exit 2:
    // the text must be a valid one-function campaign space.
    std::string SpaceError;
    if (!tv::validateFileCampaign(Req.Function,
                                  "request " + std::to_string(Req.Id),
                                  &SpaceError)) {
      stats::add("svc.rejected_requests");
      Resp.V = Response::Verdict::Error;
      Resp.Report = SpaceError;
      return Resp;
    }
    if (!Req.Passes.empty()) {
      PassManager Probe(/*VerifyAfterEachPass=*/false);
      std::string PassError;
      if (!parsePassPipeline(Probe, Req.Passes, Req.Pipeline, &PassError)) {
        stats::add("svc.rejected_requests");
        Resp.V = Response::Verdict::Error;
        Resp.Report = "bad passes pipeline: " + PassError;
        return Resp;
      }
    }

    tv::CampaignOptions O;
    O.Source = tv::CampaignSource::File;
    O.FileText = Req.Function;
    O.FilePath = "<request " + std::to_string(Req.Id) + ">";
    O.Kind = Req.Kind;
    O.Pipeline = Req.Pipeline;
    O.Passes = Req.Passes;
    semanticsFromName(Req.Semantics, O.Semantics); // Validated at parse.
    O.TV.CompareMemory = Req.CompareMemory;
    O.TV.EnumerateMemory = Req.CompareMemory;
    // One function per request and all parallelism in the service layer:
    // the campaign runs inline on this worker, no nested pool.
    O.Jobs = 1;
    O.UseVerdictCache = true;
    O.Cache = &Cache;

    tv::CampaignResult R = tv::runCampaign(O);
    Resp.Report = R.report();
    if (R.Invalid) {
      Resp.V = Response::Verdict::Invalid;
      stats::add("svc.invalid_verdicts");
      for (const tv::Counterexample &CE : R.Counterexamples)
        if (!CE.Inconclusive && Cex.add(CE.Function))
          stats::add("svc.corpus_inserts");
    } else if (R.Inconclusive) {
      Resp.V = Response::Verdict::Inconclusive;
      stats::add("svc.inconclusive_verdicts");
    } else {
      Resp.V = Response::Verdict::Valid;
      stats::add("svc.valid_verdicts");
    }
  } catch (const std::exception &E) {
    stats::add("svc.internal_errors");
    Resp.V = Response::Verdict::Error;
    Resp.Report = std::string("internal error: ") + E.what();
  } catch (...) {
    stats::add("svc.internal_errors");
    Resp.V = Response::Verdict::Error;
    Resp.Report = "internal error";
  }
  return Resp;
}

void Server::finishRequest() {
  stats::add("svc.responses");
  uint64_t Done = Completed.fetch_add(1) + 1;
  if (Opts.PersistEvery && Done % Opts.PersistEvery == 0)
    persist(/*Force=*/false);
}

void Server::persist(bool Force) {
  if (Opts.CacheFile.empty() && Opts.CorpusFile.empty())
    return;
  // One persist at a time; the atomic writer makes each file replacement
  // safe even against external writers (CLI runs sharing the cache file).
  std::lock_guard<std::mutex> Lock(PersistMutex);
  (void)Force;
  if (!Opts.CacheFile.empty() && Cache.save(Opts.CacheFile))
    stats::add("svc.cache_persists");
  if (!Opts.CorpusFile.empty() && Cex.save(Opts.CorpusFile))
    stats::add("svc.corpus_persists");
}

std::string Server::statsReport() const {
  // Event counters are process-global stats::* (exact: sampled only after
  // the connection's prior responses have been written); gauges are read
  // live from the owning structures.
  std::map<std::string, uint64_t> Rows;
  for (const char *Name :
       {"svc.connections", "svc.requests", "svc.responses",
        "svc.valid_verdicts", "svc.invalid_verdicts",
        "svc.inconclusive_verdicts", "svc.rejected_requests",
        "svc.internal_errors", "svc.malformed_frames",
        "svc.lane_interactive_admitted", "svc.lane_bulk_admitted",
        "svc.backpressure_waits", "svc.corpus_inserts", "svc.cache_persists",
        "svc.corpus_persists", "svc.task_errors"})
    Rows[Name] = stats::get(Name);
  // The daemon-wide cache economics: hits/misses accumulated by every
  // campaign this process ran (tv/VerdictCache counters).
  Rows["svc.cache_hits"] = stats::get("tv.cache_hits");
  Rows["svc.cache_misses"] = stats::get("tv.cache_misses");
  Rows["svc.cache_entries"] = Cache.size();
  Rows["svc.corpus_size"] = Cex.size();
  Rows["svc.lane_interactive_depth"] = Lanes.depth(Lane::Interactive);
  Rows["svc.lane_bulk_depth"] = Lanes.depth(Lane::Bulk);
  std::string Out;
  for (const auto &[Name, Value] : Rows)
    Out += Name + " = " + std::to_string(Value) + "\n";
  return Out;
}
