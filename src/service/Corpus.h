//===- Corpus.h - Persistent counterexample corpus --------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's memory of every miscompilation it has ever witnessed: each
/// invalid verdict's counterexample function is parsed, deduplicated across
/// campaigns by the structural hash of its canonical form (the same
/// equivalence the verdict cache keys on — renamed registers or reordered
/// blocks do not create "new" counterexamples), renamed to a stable cex<N>
/// slot, and stored as standalone .fr text. The whole corpus renders as one
/// parseable module, so a regression sweep is simply
///
///   frost-tv --file corpus.fr --pipeline <candidate> ...
///
/// — the UBfuzz workload shape: long-lived differential campaigns feeding a
/// deduplicated corpus that future pipelines are re-validated against.
///
/// Entries may reference globals. Identical redefinitions across entries
/// are harmless (the parser unifies them), but a later entry whose global
/// shares a name with an earlier one at a different type/size gets its
/// global renamed before storage — the merged module must stay parseable
/// and mean what each counterexample meant in isolation.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SERVICE_CORPUS_H
#define FROST_SERVICE_CORPUS_H

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace frost {
namespace svc {

class Corpus {
public:
  /// Adds one standalone counterexample (printFunction text, as carried by
  /// tv::Counterexample::Function). Returns true when it was structurally
  /// novel and stored; false for duplicates of any earlier entry or text
  /// that does not parse. Thread-safe.
  bool add(const std::string &FunctionText);

  uint64_t size() const;

  /// The corpus as one standalone .fr module (header comment + entries).
  std::string renderModule() const;

  /// Merges the module at \p Path (a previous save, or any .fr file) into
  /// the corpus through add(), so loading also dedups. False with \p Error
  /// on an unreadable or unparseable file; a missing file is the caller's
  /// cold-start case to check.
  bool load(const std::string &Path, std::string *Error = nullptr);

  /// Writes renderModule() to \p Path atomically (support/AtomicFile.h).
  bool save(const std::string &Path, std::string *Error = nullptr) const;

private:
  mutable std::mutex M;
  std::vector<std::string> Entries; ///< Standalone texts, renamed cex<N>.
  std::set<std::string> Hashes;     ///< Canonical-form structural hashes.
  /// Global name -> "<type>, <size>" shape, to detect cross-campaign name
  /// collisions that must rename.
  std::map<std::string, std::string> GlobalShapes;
  uint64_t NextId = 0;
  uint64_t NextGlobalRename = 0;
};

} // namespace svc
} // namespace frost

#endif // FROST_SERVICE_CORPUS_H
