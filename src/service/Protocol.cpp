//===- Protocol.cpp - frost-tvd wire protocol ------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include <sstream>
#include <vector>

using namespace frost;
using namespace frost::svc;

namespace {

void setError(std::string *Error, std::string Msg) {
  if (Error)
    *Error = std::move(Msg);
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    if (V > (~uint64_t(0) - uint64_t(C - '0')) / 10)
      return false; // Overflow.
    V = V * 10 + uint64_t(C - '0');
  }
  Out = V;
  return true;
}

std::vector<std::string> splitWords(const std::string &Line) {
  std::vector<std::string> Words;
  std::istringstream In(Line);
  std::string W;
  while (In >> W)
    Words.push_back(std::move(W));
  return Words;
}

} // namespace

const char *svc::laneName(Lane L) {
  return L == Lane::Interactive ? "interactive" : "bulk";
}

bool svc::laneFromName(const std::string &Name, Lane &Out) {
  if (Name == "interactive")
    Out = Lane::Interactive;
  else if (Name == "bulk")
    Out = Lane::Bulk;
  else
    return false;
  return true;
}

const char *svc::kindName(tv::CampaignKind K) {
  switch (K) {
  case tv::CampaignKind::IRPipeline:
    return "ir";
  case tv::CampaignKind::EndToEnd:
    return "e2e";
  case tv::CampaignKind::Sanitizer:
    return "sanitizer";
  }
  return "ir";
}

bool svc::kindFromName(const std::string &Name, tv::CampaignKind &Out) {
  if (Name == "ir")
    Out = tv::CampaignKind::IRPipeline;
  else if (Name == "e2e")
    Out = tv::CampaignKind::EndToEnd;
  else if (Name == "sanitizer")
    Out = tv::CampaignKind::Sanitizer;
  else
    return false;
  return true;
}

const char *svc::pipelineName(PipelineMode M) {
  return M == PipelineMode::Legacy ? "legacy" : "proposed";
}

bool svc::pipelineFromName(const std::string &Name, PipelineMode &Out) {
  if (Name == "proposed")
    Out = PipelineMode::Proposed;
  else if (Name == "legacy")
    Out = PipelineMode::Legacy;
  else
    return false;
  return true;
}

const char *svc::verdictName(Response::Verdict V) {
  switch (V) {
  case Response::Verdict::Valid:
    return "valid";
  case Response::Verdict::Invalid:
    return "invalid";
  case Response::Verdict::Inconclusive:
    return "inconclusive";
  case Response::Verdict::Error:
    return "error";
  }
  return "error";
}

bool svc::verdictFromName(const std::string &Name, Response::Verdict &Out) {
  if (Name == "valid")
    Out = Response::Verdict::Valid;
  else if (Name == "invalid")
    Out = Response::Verdict::Invalid;
  else if (Name == "inconclusive")
    Out = Response::Verdict::Inconclusive;
  else if (Name == "error")
    Out = Response::Verdict::Error;
  else
    return false;
  return true;
}

bool svc::semanticsFromName(const std::string &Name,
                            sem::SemanticsConfig &Out) {
  if (Name == "proposed")
    Out = sem::SemanticsConfig::proposed();
  else if (Name == "legacy-unswitch")
    Out = sem::SemanticsConfig::legacyUnswitch();
  else if (Name == "legacy-gvn")
    Out = sem::SemanticsConfig::legacyGVN();
  else if (Name == "legacy-langref")
    Out = sem::SemanticsConfig::legacyLangRefSelect();
  else
    return false;
  return true;
}

std::string svc::serializeRequest(const Request &R) {
  std::string S = "req " + std::to_string(R.Id) + " " +
                  laneName(R.L) + " " + kindName(R.Kind) + " " +
                  pipelineName(R.Pipeline) + " " + R.Semantics + " " +
                  (R.CompareMemory ? "compare-memory" : "-") + " " +
                  std::to_string(R.Passes.size()) + " " +
                  std::to_string(R.Function.size()) + "\n";
  S += R.Passes;
  S += '\n';
  S += R.Function;
  S += '\n';
  return S;
}

std::string svc::serializeResponse(const Response &R) {
  std::string S = "resp " + std::to_string(R.Id) + " " +
                  verdictName(R.V) + " " + std::to_string(R.Report.size()) +
                  "\n";
  S += R.Report;
  S += '\n';
  return S;
}

bool svc::parseRequestHeader(const std::string &Line, Request &R,
                             uint64_t &PassesLen, uint64_t &FnLen,
                             std::string *Error) {
  std::vector<std::string> W = splitWords(Line);
  if (W.size() != 9 || W[0] != "req") {
    setError(Error, "malformed req header: expected 'req <id> <lane> <kind> "
                    "<pipeline> <sem> <mem> <passes-len> <fn-len>'");
    return false;
  }
  if (!parseU64(W[1], R.Id)) {
    setError(Error, "malformed req header: bad id '" + W[1] + "'");
    return false;
  }
  if (!laneFromName(W[2], R.L)) {
    setError(Error, "malformed req header: unknown lane '" + W[2] + "'");
    return false;
  }
  if (!kindFromName(W[3], R.Kind)) {
    setError(Error, "malformed req header: unknown kind '" + W[3] + "'");
    return false;
  }
  if (!pipelineFromName(W[4], R.Pipeline)) {
    setError(Error, "malformed req header: unknown pipeline '" + W[4] + "'");
    return false;
  }
  sem::SemanticsConfig Probe;
  if (!semanticsFromName(W[5], Probe)) {
    setError(Error, "malformed req header: unknown semantics '" + W[5] + "'");
    return false;
  }
  R.Semantics = W[5];
  if (W[6] == "compare-memory")
    R.CompareMemory = true;
  else if (W[6] == "-")
    R.CompareMemory = false;
  else {
    setError(Error, "malformed req header: unknown memory mode '" + W[6] +
                        "'");
    return false;
  }
  if (!parseU64(W[7], PassesLen) || !parseU64(W[8], FnLen)) {
    setError(Error, "malformed req header: bad blob length");
    return false;
  }
  return true;
}

bool svc::parseResponseHeader(const std::string &Line, Response &R,
                              uint64_t &ReportLen, std::string *Error) {
  std::vector<std::string> W = splitWords(Line);
  if (W.size() != 4 || W[0] != "resp") {
    setError(Error, "malformed resp header: expected 'resp <id> <verdict> "
                    "<report-len>'");
    return false;
  }
  if (!parseU64(W[1], R.Id)) {
    setError(Error, "malformed resp header: bad id '" + W[1] + "'");
    return false;
  }
  if (!verdictFromName(W[2], R.V)) {
    setError(Error, "malformed resp header: unknown verdict '" + W[2] + "'");
    return false;
  }
  if (!parseU64(W[3], ReportLen)) {
    setError(Error, "malformed resp header: bad report length");
    return false;
  }
  return true;
}
