//===- Socket.h - Loopback TCP plumbing for frost-tvd -----------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin POSIX layer under the verification service: bind/listen on a
/// loopback port (0 picks an ephemeral one), connect to it, and a buffered
/// SocketStream that reads the protocol's two primitives — a newline-
/// terminated header line and a length-prefixed blob — and writes frames
/// whole. Deliberately loopback-only: frost-tvd is a local daemon fronting
/// a machine-wide verdict cache, not a network server, so it never binds a
/// routable address.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SERVICE_SOCKET_H
#define FROST_SERVICE_SOCKET_H

#include <cstdint>
#include <string>

namespace frost {
namespace svc {

/// Binds and listens on 127.0.0.1:\p Port (0 = ephemeral). Returns the
/// listening fd, or -1 with \p Error set. \p BoundPort receives the actual
/// port (interesting when Port was 0).
int listenLoopback(unsigned Port, unsigned *BoundPort, std::string *Error);

/// Accepts one connection; returns the fd or -1 (listener closed / error).
int acceptConnection(int ListenFd);

/// Connects to 127.0.0.1:\p Port; returns the fd or -1 with \p Error set.
int connectLoopback(unsigned Port, std::string *Error);

/// Buffered reader/writer over a connected socket. Owns the fd. Reading is
/// single-consumer, writing is single-writer; the server serializes writers
/// externally (service/Server.cpp's ordered-response lock).
class SocketStream {
public:
  SocketStream() = default;
  explicit SocketStream(int Fd) : Fd(Fd) {}
  ~SocketStream() { close(); }

  SocketStream(const SocketStream &) = delete;
  SocketStream &operator=(const SocketStream &) = delete;
  SocketStream(SocketStream &&O) noexcept { *this = std::move(O); }
  SocketStream &operator=(SocketStream &&O) noexcept;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Reads up to (and consuming) the next '\n'; the newline is not part of
  /// \p Out. False on EOF / error with no complete line.
  bool readLine(std::string &Out);

  /// Reads exactly \p Len bytes followed by a '\n' separator.
  bool readBlob(uint64_t Len, std::string &Out);

  /// Writes all of \p Bytes. False on error (e.g. peer gone).
  bool writeAll(const std::string &Bytes);

  /// Shuts down the read side (unblocks a reader stuck in readLine).
  void shutdownRead();

  void close();

private:
  bool fill(); ///< Pulls more bytes into Buf; false on EOF/error.

  int Fd = -1;
  std::string Buf;  ///< Bytes received but not yet consumed.
  size_t Pos = 0;   ///< Consumption cursor into Buf.
};

} // namespace svc
} // namespace frost

#endif // FROST_SERVICE_SOCKET_H
