//===- Client.h - frost-tvd protocol client ---------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the frost-tvd protocol, shared by the frost-tvc tool,
/// the service tests, and the load-generator bench: connect to a daemon,
/// pipeline request frames, and read the in-order response stream. send()
/// never waits for responses, so a batch producer keeps the daemon's lanes
/// full; receive() blocks for the next frame on the wire.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SERVICE_CLIENT_H
#define FROST_SERVICE_CLIENT_H

#include "service/Protocol.h"
#include "service/Socket.h"

#include <cstdint>
#include <string>

namespace frost {
namespace svc {

class Client {
public:
  /// Connects to the daemon on 127.0.0.1:\p Port.
  bool connect(unsigned Port, std::string *Error = nullptr);

  bool connected() const { return Stream.valid(); }

  /// Writes one request frame; does not wait for the response.
  bool send(const Request &Req, std::string *Error = nullptr);

  /// Blocks for the next server frame. A `resp` frame fills \p Resp. An
  /// `err` frame (the daemon rejecting a malformed frame) is surfaced as a
  /// Response with Verdict::Error and Id = UINT64_MAX, so batch loops can
  /// account for it without a second channel.
  bool receive(Response &Resp, std::string *Error = nullptr);

  /// Sends `stats` and blocks for the payload. Response-order guarantee:
  /// the daemon samples after writing every response to requests sent
  /// earlier on this connection — but the caller must have receive()d them
  /// first, or the stats frame sits behind them in the stream.
  bool stats(std::string &Payload, std::string *Error = nullptr);

  /// Sends `shutdown` and blocks for `bye`. The daemon persists and exits.
  bool shutdownServer(std::string *Error = nullptr);

  void close() { Stream.close(); }

private:
  SocketStream Stream;
};

} // namespace svc
} // namespace frost

#endif // FROST_SERVICE_CLIENT_H
