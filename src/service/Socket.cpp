//===- Socket.cpp - Loopback TCP plumbing for frost-tvd --------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "service/Socket.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace frost;
using namespace frost::svc;

namespace {

void setError(std::string *Error, std::string Msg) {
  if (Error)
    *Error = std::move(Msg);
}

std::string errnoText() { return std::strerror(errno); }

/// A peer closing its socket mid-write must surface as a write error, not
/// kill the daemon with SIGPIPE. Installed once, before the first socket.
void ignoreSigpipe() {
  static const bool Done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)Done;
}

sockaddr_in loopbackAddr(unsigned Port) {
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(uint16_t(Port));
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return Addr;
}

} // namespace

int svc::listenLoopback(unsigned Port, unsigned *BoundPort,
                        std::string *Error) {
  ignoreSigpipe();
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Error, "socket: " + errnoText());
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr = loopbackAddr(Port);
  if (::bind(Fd, (sockaddr *)&Addr, sizeof(Addr)) != 0) {
    setError(Error, "bind 127.0.0.1:" + std::to_string(Port) + ": " +
                        errnoText());
    ::close(Fd);
    return -1;
  }
  if (::listen(Fd, 64) != 0) {
    setError(Error, "listen: " + errnoText());
    ::close(Fd);
    return -1;
  }
  if (BoundPort) {
    sockaddr_in Actual{};
    socklen_t Len = sizeof(Actual);
    if (::getsockname(Fd, (sockaddr *)&Actual, &Len) != 0) {
      setError(Error, "getsockname: " + errnoText());
      ::close(Fd);
      return -1;
    }
    *BoundPort = ntohs(Actual.sin_port);
  }
  return Fd;
}

int svc::acceptConnection(int ListenFd) {
  while (true) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd >= 0)
      return Fd;
    if (errno == EINTR)
      continue;
    return -1;
  }
}

int svc::connectLoopback(unsigned Port, std::string *Error) {
  ignoreSigpipe();
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(Error, "socket: " + errnoText());
    return -1;
  }
  sockaddr_in Addr = loopbackAddr(Port);
  if (::connect(Fd, (sockaddr *)&Addr, sizeof(Addr)) != 0) {
    setError(Error, "connect 127.0.0.1:" + std::to_string(Port) + ": " +
                        errnoText());
    ::close(Fd);
    return -1;
  }
  // The protocol is request/response with small frames; latency beats
  // batching.
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Fd;
}

SocketStream &SocketStream::operator=(SocketStream &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    Buf = std::move(O.Buf);
    Pos = O.Pos;
    O.Fd = -1;
    O.Buf.clear();
    O.Pos = 0;
  }
  return *this;
}

bool SocketStream::fill() {
  if (Pos == Buf.size()) {
    Buf.clear();
    Pos = 0;
  }
  char Chunk[4096];
  while (true) {
    ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
    if (N > 0) {
      Buf.append(Chunk, size_t(N));
      return true;
    }
    if (N == 0)
      return false; // EOF.
    if (errno != EINTR)
      return false;
  }
}

bool SocketStream::readLine(std::string &Out) {
  Out.clear();
  while (true) {
    size_t Nl = Buf.find('\n', Pos);
    if (Nl != std::string::npos) {
      Out.append(Buf, Pos, Nl - Pos);
      Pos = Nl + 1;
      return true;
    }
    Out.append(Buf, Pos, Buf.size() - Pos);
    Pos = Buf.size();
    if (!fill())
      return false;
  }
}

bool SocketStream::readBlob(uint64_t Len, std::string &Out) {
  Out.clear();
  while (Out.size() < Len) {
    uint64_t Avail = Buf.size() - Pos;
    if (Avail == 0) {
      if (!fill())
        return false;
      continue;
    }
    uint64_t Take = std::min<uint64_t>(Avail, Len - Out.size());
    Out.append(Buf, Pos, size_t(Take));
    Pos += size_t(Take);
  }
  // Trailing separator.
  while (Pos == Buf.size())
    if (!fill())
      return false;
  return Buf[Pos++] == '\n';
}

bool SocketStream::writeAll(const std::string &Bytes) {
  const char *P = Bytes.data();
  size_t Left = Bytes.size();
  while (Left) {
    ssize_t N = ::write(Fd, P, Left);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Left -= size_t(N);
  }
  return true;
}

void SocketStream::shutdownRead() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RD);
}

void SocketStream::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}
