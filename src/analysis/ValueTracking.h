//===- ValueTracking.h - Poison-aware value analyses ------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dataflow facts about SSA values, with the poison caveat of Section 5.6:
/// most analysis results hold only "up to poison" — they are valid for
/// expression rewriting (poison in, poison out on both sides) but NOT for
/// hoisting UB-capable instructions past control flow unless the inputs are
/// additionally proven non-poison. The two query families are therefore kept
/// separate here.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_ANALYSIS_VALUETRACKING_H
#define FROST_ANALYSIS_VALUETRACKING_H

#include "ir/Value.h"
#include "support/BitVec.h"

namespace frost {

class Instruction;

/// Bits proven zero / one in every *non-poison* execution. An "up to
/// poison" result in the Section 5.6 sense.
struct KnownBits {
  BitVec Zeros; ///< Bit set => value bit is 0.
  BitVec Ones;  ///< Bit set => value bit is 1.

  explicit KnownBits(unsigned Width)
      : Zeros(Width, 0), Ones(Width, 0) {}

  unsigned width() const { return Zeros.width(); }
  bool isNonZero() const { return !Ones.isZero(); }
  /// True if every bit is known.
  bool isConstant() const {
    return Zeros.or_(Ones).isAllOnes();
  }
};

/// Computes known-zero/one bits of \p V (up to poison). \p Depth limits
/// recursion.
KnownBits computeKnownBits(const Value *V, unsigned Depth = 0);

/// True if \p V is a power of two in every non-poison execution — the
/// paper's isKnownToBeAPowerOfTwo example: "shl 1, %y" is a power of two
/// *unless %y is poison*, in which case it can be anything. Clients that
/// hoist UB-capable code must also check isGuaranteedNotToBePoison.
bool isKnownToBeAPowerOfTwo(const Value *V, unsigned Depth = 0);

/// True if \p V can be proven to never be poison (nor undef): constants
/// other than poison/undef, freezes, and operations whose operands are all
/// non-poison and which cannot generate poison themselves. Function
/// arguments are NOT assumed non-poison (see Section 6, "opportunities for
/// improvement").
bool isGuaranteedNotToBePoison(const Value *V, unsigned Depth = 0);

/// True if the instruction itself can introduce poison even when all its
/// operands are non-poison (nsw/nuw/exact arithmetic, shifts, inbounds gep).
bool canCreatePoison(const Instruction *I);

} // namespace frost

#endif // FROST_ANALYSIS_VALUETRACKING_H
