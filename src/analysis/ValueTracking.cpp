//===- ValueTracking.cpp - Poison-aware value analyses ------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/ValueTracking.h"

#include "ir/Constants.h"
#include "ir/Function.h"
#include "ir/Instructions.h"

using namespace frost;

static constexpr unsigned MaxDepth = 6;

KnownBits frost::computeKnownBits(const Value *V, unsigned Depth) {
  unsigned W = V->getType()->isInteger() ? V->getType()->bitWidth() : 0;
  if (W == 0)
    return KnownBits(1);
  KnownBits Known(W);

  if (const auto *C = dyn_cast<ConstantInt>(V)) {
    Known.Ones = C->value();
    Known.Zeros = C->value().not_();
    return Known;
  }
  if (Depth >= MaxDepth)
    return Known;

  const auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return Known;

  switch (I->getOpcode()) {
  case Opcode::And: {
    KnownBits L = computeKnownBits(I->getOperand(0), Depth + 1);
    KnownBits R = computeKnownBits(I->getOperand(1), Depth + 1);
    Known.Ones = L.Ones.and_(R.Ones);
    Known.Zeros = L.Zeros.or_(R.Zeros);
    return Known;
  }
  case Opcode::Or: {
    KnownBits L = computeKnownBits(I->getOperand(0), Depth + 1);
    KnownBits R = computeKnownBits(I->getOperand(1), Depth + 1);
    Known.Ones = L.Ones.or_(R.Ones);
    Known.Zeros = L.Zeros.and_(R.Zeros);
    return Known;
  }
  case Opcode::Xor: {
    KnownBits L = computeKnownBits(I->getOperand(0), Depth + 1);
    KnownBits R = computeKnownBits(I->getOperand(1), Depth + 1);
    Known.Ones = L.Ones.and_(R.Zeros).or_(L.Zeros.and_(R.Ones));
    Known.Zeros = L.Zeros.and_(R.Zeros).or_(L.Ones.and_(R.Ones));
    return Known;
  }
  case Opcode::Shl: {
    if (const auto *Amt = dyn_cast<ConstantInt>(I->getOperand(1))) {
      if (Amt->value().shiftTooBig())
        return Known;
      KnownBits L = computeKnownBits(I->getOperand(0), Depth + 1);
      Known.Ones = L.Ones.shl(Amt->value());
      // Shifted-in low bits are zero.
      BitVec LowMask(W, (uint64_t(1) << Amt->value().zext()) - 1);
      Known.Zeros = L.Zeros.shl(Amt->value()).or_(LowMask);
      return Known;
    }
    return Known;
  }
  case Opcode::LShr: {
    if (const auto *Amt = dyn_cast<ConstantInt>(I->getOperand(1))) {
      if (Amt->value().shiftTooBig())
        return Known;
      KnownBits L = computeKnownBits(I->getOperand(0), Depth + 1);
      Known.Ones = L.Ones.lshr(Amt->value());
      Known.Zeros = L.Zeros.lshr(Amt->value());
      // Shifted-in high bits are zero.
      for (unsigned BitIdx = W - Amt->value().zext(); BitIdx < W; ++BitIdx)
        Known.Zeros.setBit(BitIdx, true);
      return Known;
    }
    return Known;
  }
  case Opcode::ZExt: {
    const Value *Src = I->getOperand(0);
    unsigned SrcW = Src->getType()->bitWidth();
    KnownBits L = computeKnownBits(Src, Depth + 1);
    Known.Ones = L.Ones.zextTo(W);
    Known.Zeros = L.Zeros.zextTo(W);
    for (unsigned BitIdx = SrcW; BitIdx < W; ++BitIdx)
      Known.Zeros.setBit(BitIdx, true);
    return Known;
  }
  case Opcode::Trunc: {
    KnownBits L = computeKnownBits(I->getOperand(0), Depth + 1);
    Known.Ones = L.Ones.truncTo(W);
    Known.Zeros = L.Zeros.truncTo(W);
    return Known;
  }
  case Opcode::Select: {
    KnownBits L = computeKnownBits(I->getOperand(1), Depth + 1);
    KnownBits R = computeKnownBits(I->getOperand(2), Depth + 1);
    Known.Ones = L.Ones.and_(R.Ones);
    Known.Zeros = L.Zeros.and_(R.Zeros);
    return Known;
  }
  case Opcode::Freeze:
    return computeKnownBits(I->getOperand(0), Depth + 1);
  default:
    return Known;
  }
}

bool frost::isKnownToBeAPowerOfTwo(const Value *V, unsigned Depth) {
  if (const auto *C = dyn_cast<ConstantInt>(V))
    return C->value().isPowerOf2();
  if (Depth >= MaxDepth)
    return false;
  const auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return false;

  switch (I->getOpcode()) {
  case Opcode::Shl:
    // The paper's Section 5.6 example: shl 1, %y is a power of two in every
    // non-poison execution (over-shift yields poison, not a stray value).
    if (const auto *C = dyn_cast<ConstantInt>(I->getOperand(0)))
      return C->value().isOne();
    return isKnownToBeAPowerOfTwo(I->getOperand(0), Depth + 1);
  case Opcode::Freeze:
    // NOT a power of two: freezing poison materialises an arbitrary value,
    // so the "up to poison" fact does not survive a freeze.
    return false;
  case Opcode::ZExt:
    return isKnownToBeAPowerOfTwo(I->getOperand(0), Depth + 1);
  case Opcode::Select:
    return isKnownToBeAPowerOfTwo(I->getOperand(1), Depth + 1) &&
           isKnownToBeAPowerOfTwo(I->getOperand(2), Depth + 1);
  default:
    return false;
  }
}

bool frost::canCreatePoison(const Instruction *I) {
  if (I->flags().any())
    return true;
  switch (I->getOpcode()) {
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
    // Over-wide shift amounts yield deferred UB.
    if (const auto *C = dyn_cast<ConstantInt>(I->getOperand(1)))
      return C->value().shiftTooBig();
    return true;
  case Opcode::GEP:
    return cast<GEPInst>(I)->isInBounds();
  case Opcode::Load:
    // May read poison bits from memory.
    return true;
  case Opcode::Call:
    return true;
  default:
    return false;
  }
}

bool frost::isGuaranteedNotToBePoison(const Value *V, unsigned Depth) {
  if (isa<PoisonValue>(V) || isa<UndefValue>(V))
    return false;
  if (isa<ConstantInt>(V) || isa<GlobalVariable>(V))
    return true;
  if (const auto *CV = dyn_cast<ConstantVector>(V)) {
    for (unsigned I = 0, E = CV->size(); I != E; ++I)
      if (!isGuaranteedNotToBePoison(CV->element(I), Depth + 1))
        return false;
    return true;
  }
  const auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return false; // Arguments may be poison.
  if (I->getOpcode() == Opcode::Freeze || I->getOpcode() == Opcode::Alloca)
    return true;
  if (Depth >= MaxDepth)
    return false;
  if (canCreatePoison(I))
    return false;
  if (isa<PhiNode>(I))
    return false; // Would need per-edge reasoning; stay conservative.
  for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op) {
    const Value *OpV = I->getOperand(Op);
    if (isa<BasicBlock>(OpV) || isa<Function>(OpV))
      continue;
    if (!isGuaranteedNotToBePoison(OpV, Depth + 1))
      return false;
  }
  return true;
}
