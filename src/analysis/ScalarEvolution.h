//===- ScalarEvolution.h - Affine recurrence analysis -----------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature scalar evolution: classifies loop values as affine add
/// recurrences {start, +, step} and computes trip counts of canonical
/// counted loops. Reproduces the Section 10.1 integration pain point —
/// "scalar evolution ... currently fails to analyze expressions involving
/// freeze" — as an explicit, testable behaviour: by default a freeze is not
/// looked through (the analysis returns unknown), and a FreezeAware flag
/// models the future work of teaching it otherwise (sound for add-recs whose
/// operands are known non-poison).
///
//===----------------------------------------------------------------------===//

#ifndef FROST_ANALYSIS_SCALAREVOLUTION_H
#define FROST_ANALYSIS_SCALAREVOLUTION_H

#include "analysis/LoopInfo.h"
#include "support/BitVec.h"

#include <optional>

namespace frost {

/// An affine recurrence {Start, +, Step} over a loop, or a loop-invariant
/// value (Step == 0 with Invariant set).
struct AddRec {
  Value *Start = nullptr; ///< Value on loop entry.
  BitVec Step;            ///< Constant per-iteration increment.
  bool NSW = false;       ///< The recurrence cannot signed-wrap (its step
                          ///< add carries nsw), so narrow overflow is
                          ///< poison — the fact IndVarWiden needs.
};

/// Scalar evolution over one function's loops.
class ScalarEvolution {
public:
  ScalarEvolution(Function &F, const DominatorTree &DT, const LoopInfo &LI,
                  bool FreezeAware = false)
      : LI(LI), FreezeAware(FreezeAware) {
    (void)F;
    (void)DT;
  }

  /// Classifies \p V as an affine add recurrence of loop \p L.
  /// Returns nullopt for anything it cannot prove — including, by default,
  /// any expression involving freeze (Section 10.1).
  std::optional<AddRec> asAddRec(Value *V, Loop &L) const;

  /// Trip count of a canonical counted loop
  ///   header: %i = phi [C0, pre], [%i + C1, latch]; br (icmp %i, C2) ...
  /// when it is a compile-time constant. Freeze in the exit condition makes
  /// the loop unanalyzable unless FreezeAware is set.
  std::optional<uint64_t> constantTripCount(Loop &L) const;

private:
  const LoopInfo &LI;
  bool FreezeAware;

  Value *stripFreeze(Value *V) const;
};

} // namespace frost

#endif // FROST_ANALYSIS_SCALAREVOLUTION_H
