//===- MemorySSA.h - Per-block memory def/use chains ------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A MemorySSA-lite: the whole memory state is one SSA-like value, each
/// store (or call) produces a fresh *version* of it, and each load (or
/// call) records the version it observes. Versions merge at control-flow
/// joins into a fresh phi version. There is no per-location precision —
/// that is AliasAnalysis's job; together they give passes
/// "same version + must-alias pointer => same bytes".
///
/// Version 0 is live-on-entry memory. The structure is a snapshot: any pass
/// that adds, removes, or moves a load/store/call must invalidate it
/// (removing pure *uses* keeps the remaining numbering valid, which is why
/// GVN can keep one instance across its forwarding and numbering rounds).
///
//===----------------------------------------------------------------------===//

#ifndef FROST_ANALYSIS_MEMORYSSA_H
#define FROST_ANALYSIS_MEMORYSSA_H

#include "analysis/Dominators.h"

#include <cstdint>
#include <map>
#include <vector>

namespace frost {

class AnalysisKey;
class AnalysisManager;

/// One memory-touching instruction in program order within its block.
struct MemoryAccess {
  Instruction *I = nullptr;
  bool IsDef = false; // store/call: produces a new memory version
  bool IsUse = false; // load/call: observes a memory version
  uint64_t VersionBefore = 0;
  uint64_t VersionAfter = 0; // == VersionBefore for pure uses
};

class MemorySSA {
public:
  MemorySSA(Function &F, const DominatorTree &DT);

  Function &function() const { return *F; }

  /// Memory version on entry to / exit from \p BB. Entry of the function's
  /// entry block is version 0 (live-on-entry); joins with disagreeing
  /// predecessors (or back edges) get a fresh phi version.
  uint64_t entryVersion(const BasicBlock *BB) const;
  uint64_t exitVersion(const BasicBlock *BB) const;

  /// The block's memory accesses in program order (empty for blocks with no
  /// loads/stores/calls, and for unreachable blocks).
  const std::vector<MemoryAccess> &accesses(const BasicBlock *BB) const;

  /// The version observed by (use) or live before (def) instruction \p I,
  /// which must read or write memory.
  uint64_t versionBefore(const Instruction *I) const;

  /// Total number of versions created (including live-on-entry and phis).
  uint64_t numVersions() const { return NextVersion; }

private:
  Function *F;
  uint64_t NextVersion = 1; // 0 is live-on-entry
  std::map<const BasicBlock *, uint64_t> EntryVersion;
  std::map<const BasicBlock *, uint64_t> ExitVersion;
  std::map<const BasicBlock *, std::vector<MemoryAccess>> Accesses;
  std::map<const Instruction *, uint64_t> VersionBeforeInst;
};

/// AnalysisManager registration for MemorySSA.
class MemorySSAAnalysis {
public:
  using Result = MemorySSA;
  static AnalysisKey *key();
  static const char *name() { return "memssa"; }
  static std::vector<AnalysisKey *> dependencies();
  static Result run(Function &F, AnalysisManager &AM);
};

} // namespace frost

#endif // FROST_ANALYSIS_MEMORYSSA_H
