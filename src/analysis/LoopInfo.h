//===- LoopInfo.h - Natural loop detection ----------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection over the dominator tree. LICM, LoopUnswitch, and
/// induction-variable widening all operate on these Loop objects.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_ANALYSIS_LOOPINFO_H
#define FROST_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"

#include <memory>
#include <set>

namespace frost {

/// A single natural loop: a header dominating a set of blocks with at least
/// one back edge to the header.
class Loop {
public:
  BasicBlock *header() const { return Header; }

  /// The loop's blocks in reverse post-order (header first). Deterministic
  /// — iteration must not depend on BasicBlock addresses, or every loop
  /// transform that clones or renumbers in blocks() order becomes
  /// allocation-dependent.
  const std::vector<BasicBlock *> &blocks() const { return BlockList; }
  bool contains(const BasicBlock *BB) const {
    return Blocks.count(const_cast<BasicBlock *>(BB)) != 0;
  }
  bool contains(const Instruction *I) const {
    return contains(I->getParent());
  }

  Loop *parent() const { return Parent; }
  const std::vector<Loop *> &subLoops() const { return SubLoops; }
  unsigned depth() const {
    unsigned D = 1;
    for (Loop *P = Parent; P; P = P->Parent)
      ++D;
    return D;
  }

  /// The unique out-of-loop predecessor of the header whose only successor
  /// is the header, or null.
  BasicBlock *preheader() const;
  /// All out-of-loop predecessors of the header (preheader candidates).
  std::vector<BasicBlock *> entryPredecessors() const;
  /// Blocks inside the loop that branch back to the header.
  std::vector<BasicBlock *> latches() const;
  /// Blocks outside the loop that are targeted from inside.
  std::vector<BasicBlock *> exitBlocks() const;

  /// True if \p V is defined outside the loop (constants and arguments
  /// included).
  bool isLoopInvariant(const Value *V) const;

private:
  friend class LoopInfo;
  BasicBlock *Header = nullptr;
  std::set<BasicBlock *> Blocks;            // Membership queries.
  std::vector<BasicBlock *> BlockList;      // RPO, for iteration.
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;
};

/// All natural loops of one function.
class LoopInfo {
public:
  LoopInfo(Function &F, const DominatorTree &DT);

  /// Innermost loop containing \p BB, or null.
  Loop *loopFor(const BasicBlock *BB) const;
  /// Outermost loops.
  const std::vector<Loop *> &topLevel() const { return TopLevel; }
  /// All loops, innermost first (safe order for loop transforms).
  std::vector<Loop *> loopsInnermostFirst() const;

private:
  std::vector<std::unique_ptr<Loop>> AllLoops;
  std::vector<Loop *> TopLevel;
  std::map<const BasicBlock *, Loop *> InnermostMap;
};

} // namespace frost

#endif // FROST_ANALYSIS_LOOPINFO_H
