//===- Analyses.h - AnalysisManager registrations ---------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis layer's AnalysisManager registrations: DominatorTree,
/// LoopInfo, and ScalarEvolution behind the uniform AnalysisKey trait.
/// Passes request results with AM.get<DominatorTreeAnalysis>(F) instead of
/// constructing them, so a pipeline of CFG-preserving passes computes each
/// analysis once.
///
/// The dependency edges matter for object lifetime, not just precision:
/// ScalarEvolution holds a reference to the cached LoopInfo, and LoopInfo
/// is built from (but does not retain) the DominatorTree. Invalidation of
/// the dominator tree therefore cascades to both.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_ANALYSIS_ANALYSES_H
#define FROST_ANALYSIS_ANALYSES_H

#include "analysis/AliasAnalysis.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemorySSA.h"
#include "analysis/ScalarEvolution.h"
#include "opt/AnalysisManager.h"

namespace frost {

class DominatorTreeAnalysis {
public:
  using Result = DominatorTree;
  static AnalysisKey *key();
  static const char *name() { return "domtree"; }
  static std::vector<AnalysisKey *> dependencies() { return {}; }
  static Result run(Function &F, AnalysisManager &AM);
};

class LoopInfoAnalysis {
public:
  using Result = LoopInfo;
  static AnalysisKey *key();
  static const char *name() { return "loopinfo"; }
  static std::vector<AnalysisKey *> dependencies();
  static Result run(Function &F, AnalysisManager &AM);
};

class ScalarEvolutionAnalysis {
public:
  using Result = ScalarEvolution;
  static AnalysisKey *key();
  static const char *name() { return "scev"; }
  static std::vector<AnalysisKey *> dependencies();
  static Result run(Function &F, AnalysisManager &AM);
};

/// The preservation set of a pass that edited instructions but left the CFG
/// (blocks and edges) intact: the dominator tree, loop structure, and
/// scalar evolution all remain valid. AliasAnalysis is preserved too (it is
/// a stateless oracle over the live IR), but MemorySSA deliberately is not:
/// instruction edits may have added or removed memory defs.
PreservedAnalyses preservedCFGAnalyses();

} // namespace frost

#endif // FROST_ANALYSIS_ANALYSES_H
