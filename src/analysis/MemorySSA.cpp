//===- MemorySSA.cpp - Per-block memory def/use chains ------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/MemorySSA.h"

#include "analysis/Analyses.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"

#include <cassert>

using namespace frost;

MemorySSA::MemorySSA(Function &F, const DominatorTree &DT) : F(&F) {
  // A function with no memory defs has version-0 memory everywhere, even
  // around loops; only when defs exist do joins need phi versions.
  bool HasDefs = false;
  for (BasicBlock *BB : DT.rpo())
    for (Instruction *I : *BB)
      if (I->mayWriteMemory())
        HasDefs = true;

  std::map<const BasicBlock *, bool> Processed;
  for (BasicBlock *BB : DT.rpo()) {
    uint64_t In = 0;
    if (BB != DT.rpo().front() && HasDefs) {
      bool AllKnown = true, First = true, Agree = true;
      uint64_t Seen = 0;
      for (BasicBlock *Pred : BB->uniquePredecessors()) {
        if (!Processed.count(Pred)) {
          AllKnown = false; // back edge (or unreachable pred)
          continue;
        }
        uint64_t V = ExitVersion.at(Pred);
        if (First) {
          Seen = V;
          First = false;
        } else if (V != Seen) {
          Agree = false;
        }
      }
      if (AllKnown && !First && Agree)
        In = Seen;
      else
        In = NextVersion++; // phi version
    }
    EntryVersion[BB] = In;

    uint64_t Cur = In;
    std::vector<MemoryAccess> &List = Accesses[BB];
    for (Instruction *I : *BB) {
      bool Def = I->mayWriteMemory();
      bool Use = I->mayReadMemory();
      if (!Def && !Use)
        continue;
      MemoryAccess A;
      A.I = I;
      A.IsDef = Def;
      A.IsUse = Use;
      A.VersionBefore = Cur;
      if (Def)
        Cur = NextVersion++;
      A.VersionAfter = Cur;
      VersionBeforeInst[I] = A.VersionBefore;
      List.push_back(A);
    }
    ExitVersion[BB] = Cur;
    Processed[BB] = true;
  }
}

uint64_t MemorySSA::entryVersion(const BasicBlock *BB) const {
  auto It = EntryVersion.find(BB);
  return It == EntryVersion.end() ? 0 : It->second;
}

uint64_t MemorySSA::exitVersion(const BasicBlock *BB) const {
  auto It = ExitVersion.find(BB);
  return It == ExitVersion.end() ? 0 : It->second;
}

const std::vector<MemoryAccess> &
MemorySSA::accesses(const BasicBlock *BB) const {
  static const std::vector<MemoryAccess> Empty;
  auto It = Accesses.find(BB);
  return It == Accesses.end() ? Empty : It->second;
}

uint64_t MemorySSA::versionBefore(const Instruction *I) const {
  auto It = VersionBeforeInst.find(I);
  assert(It != VersionBeforeInst.end() &&
         "instruction does not touch memory (or is unreachable)");
  return It->second;
}

AnalysisKey *MemorySSAAnalysis::key() {
  static AnalysisKey K;
  return &K;
}

std::vector<AnalysisKey *> MemorySSAAnalysis::dependencies() {
  return {DominatorTreeAnalysis::key()};
}

MemorySSA MemorySSAAnalysis::run(Function &F, AnalysisManager &AM) {
  return MemorySSA(F, AM.get<DominatorTreeAnalysis>(F));
}
