//===- AliasAnalysis.cpp - Must/may/no-alias queries --------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasAnalysis.h"

#include "ir/Constants.h"
#include "ir/Instructions.h"
#include "opt/AnalysisManager.h"
#include "support/Stats.h"

using namespace frost;

const char *frost::aliasResultName(AliasResult R) {
  switch (R) {
  case AliasResult::NoAlias:
    return "noalias";
  case AliasResult::MayAlias:
    return "mayalias";
  case AliasResult::MustAlias:
    return "mustalias";
  }
  return "mayalias";
}

PointerOffset AliasAnalysis::decompose(const Value *Ptr) {
  PointerOffset R;
  const Value *V = Ptr;
  for (;;) {
    if (const auto *G = dyn_cast<GEPInst>(V)) {
      if (const auto *Idx = dyn_cast<ConstantInt>(G->index())) {
        uint64_t ElemBytes = (G->pointeeType()->bitWidth() + 7) / 8;
        R.OffsetBytes +=
            Idx->value().sext() * static_cast<int64_t>(ElemBytes);
      } else {
        R.HasConstOffset = false;
      }
      V = G->base();
      continue;
    }
    // An access through freeze(p) is an access through p: freeze of a
    // non-poison pointer is a nop, and a poison pointer makes the access UB.
    if (const auto *Fr = dyn_cast<FreezeInst>(V)) {
      V = Fr->src();
      continue;
    }
    break;
  }
  R.Base = V;
  return R;
}

bool AliasAnalysis::isIdentifiedObject(const Value *V) {
  return isa<GlobalVariable>(V) || isa<AllocaInst>(V);
}

std::optional<uint64_t> AliasAnalysis::objectSizeBytes(const Value *Base) {
  if (const auto *G = dyn_cast<GlobalVariable>(Base))
    return G->sizeBytes();
  if (const auto *A = dyn_cast<AllocaInst>(Base))
    return (A->allocatedType()->bitWidth() + 7) / 8;
  return std::nullopt;
}

/// True when a constant-offset access provably stays inside its base object,
/// so its concrete address range cannot reach any other allocation.
static bool accessInObject(const PointerOffset &P, uint64_t AccessBytes) {
  if (!P.HasConstOffset || P.OffsetBytes < 0)
    return false;
  std::optional<uint64_t> Size = AliasAnalysis::objectSizeBytes(P.Base);
  if (!Size)
    return false;
  return static_cast<uint64_t>(P.OffsetBytes) + AccessBytes <= *Size;
}

AliasResult AliasAnalysis::alias(const Value *P1, unsigned Bits1,
                                 const Value *P2, unsigned Bits2) const {
  stats::add("aa.queries");
  uint64_t Bytes1 = (Bits1 + 7) / 8;
  uint64_t Bytes2 = (Bits2 + 7) / 8;

  AliasResult R = AliasResult::MayAlias;
  if (P1 == P2) {
    R = Bytes1 == Bytes2 ? AliasResult::MustAlias : AliasResult::MayAlias;
  } else {
    PointerOffset D1 = decompose(P1);
    PointerOffset D2 = decompose(P2);
    if (D1.Base == D2.Base) {
      if (D1.HasConstOffset && D2.HasConstOffset) {
        if (D1.OffsetBytes == D2.OffsetBytes && Bytes1 == Bytes2)
          R = AliasResult::MustAlias;
        else if (D1.OffsetBytes + static_cast<int64_t>(Bytes1) <=
                     D2.OffsetBytes ||
                 D2.OffsetBytes + static_cast<int64_t>(Bytes2) <=
                     D1.OffsetBytes)
          R = AliasResult::NoAlias;
      }
    } else if (isIdentifiedObject(D1.Base) && isIdentifiedObject(D2.Base)) {
      // Distinct objects are disjoint, but the interpreter's address
      // arithmetic is raw: only accesses pinned inside their own object by a
      // constant offset are guaranteed not to land in the neighbour.
      if (accessInObject(D1, Bytes1) && accessInObject(D2, Bytes2))
        R = AliasResult::NoAlias;
    }
  }

  switch (R) {
  case AliasResult::NoAlias:
    stats::add("aa.no_alias");
    break;
  case AliasResult::MayAlias:
    stats::add("aa.may_alias");
    break;
  case AliasResult::MustAlias:
    stats::add("aa.must_alias");
    break;
  }
  return R;
}

AnalysisKey *AAAnalysis::key() {
  static AnalysisKey K;
  return &K;
}

AliasAnalysis AAAnalysis::run(Function &F, AnalysisManager &) {
  return AliasAnalysis(F);
}
