//===- Dominators.cpp - Dominator tree -------------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include "ir/Instructions.h"
#include "support/Stats.h"

#include <algorithm>
#include <set>

using namespace frost;

DominatorTree::DominatorTree(Function &F) : F(F) {
  assert(!F.isDeclaration() && "cannot analyze a declaration");
  // Every construction is counted, cached or not: bench/CompileTime uses
  // this to prove the analysis cache does strictly less work.
  stats::add("analysis.domtree.constructed");

  // Depth-first post-order from the entry.
  std::vector<BasicBlock *> PostOrder;
  std::set<BasicBlock *> Visited;
  std::vector<std::pair<BasicBlock *, unsigned>> Stack;
  Stack.push_back({F.entry(), 0});
  Visited.insert(F.entry());
  while (!Stack.empty()) {
    auto &[BB, NextSucc] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (NextSucc < Succs.size()) {
      BasicBlock *S = Succs[NextSucc++];
      if (Visited.insert(S).second)
        Stack.push_back({S, 0});
      continue;
    }
    PostOrder.push_back(BB);
    Stack.pop_back();
  }
  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned I = 0; I != RPO.size(); ++I)
    RPOIndex[RPO[I]] = I;

  // Cooper–Harvey–Kennedy iteration to a fixed point.
  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (RPOIndex[A] > RPOIndex[B])
        A = IDom[A];
      while (RPOIndex[B] > RPOIndex[A])
        B = IDom[B];
    }
    return A;
  };

  IDom[F.entry()] = F.entry();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (BB == F.entry())
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *Pred : BB->uniquePredecessors()) {
        if (!IDom.count(Pred))
          continue; // Unreachable or not yet processed.
        NewIDom = NewIDom ? Intersect(NewIDom, Pred) : Pred;
      }
      if (!NewIDom)
        continue;
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }
}

BasicBlock *DominatorTree::idom(const BasicBlock *BB) const {
  auto It = IDom.find(const_cast<BasicBlock *>(BB));
  if (It == IDom.end() || It->second == BB)
    return nullptr;
  return It->second;
}

bool DominatorTree::dominates(const BasicBlock *A, const BasicBlock *B) const {
  if (!isReachable(B))
    return true;
  if (!isReachable(A))
    return false;
  const BasicBlock *Cur = B;
  while (true) {
    if (Cur == A)
      return true;
    const BasicBlock *Up = idom(Cur);
    if (!Up)
      return false;
    Cur = Up;
  }
}

bool DominatorTree::dominates(const Instruction *Def, const Instruction *User,
                              unsigned OpNo) const {
  const BasicBlock *DefBB = Def->getParent();
  const BasicBlock *UseBB = User->getParent();

  // A use in a phi node occurs on the edge from the incoming block, so the
  // def needs to dominate the *end of the incoming block*.
  if (const auto *P = dyn_cast<PhiNode>(User)) {
    const BasicBlock *Incoming = P->getIncomingBlock(OpNo / 2);
    if (DefBB == Incoming)
      return true; // Def is in the incoming block; end-of-block use.
    return dominates(DefBB, Incoming);
  }

  if (DefBB != UseBB)
    return dominates(DefBB, UseBB);

  // Same block: Def must come strictly before User.
  for (const Instruction *I : *DefBB) {
    if (I == Def)
      return true;
    if (I == User)
      return false;
  }
  return false;
}
