//===- AliasAnalysis.h - Must/may/no-alias queries --------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic alias analysis over the frost memory model: pointers are
/// decomposed into (underlying object, byte offset) by walking GEP chains,
/// and two accesses are compared by interval reasoning over their offsets.
///
/// Soundness is calibrated to the Figure 5 interpreter, which is *looser*
/// than LLVM's based-on rules: a non-inbounds GEP can carry an address from
/// one global into a neighbouring allocation, and even an inbounds GEP only
/// guarantees the address lands in *some* valid block (otherwise it is
/// poison and the access is UB). Distinct underlying objects therefore
/// justify NoAlias only when both offsets are compile-time constants that
/// provably stay inside their own objects.
///
/// Query volume and verdicts are observable through the stats:: registry:
/// "aa.queries", "aa.no_alias", "aa.may_alias", "aa.must_alias".
///
//===----------------------------------------------------------------------===//

#ifndef FROST_ANALYSIS_ALIASANALYSIS_H
#define FROST_ANALYSIS_ALIASANALYSIS_H

#include "ir/Function.h"

#include <cstdint>
#include <optional>

namespace frost {

class AnalysisKey;
class AnalysisManager;

enum class AliasResult { NoAlias, MayAlias, MustAlias };

const char *aliasResultName(AliasResult R);

/// A pointer decomposed into its underlying object plus a byte offset.
/// Offset tracking stops (HasConstOffset goes false) at the first
/// variable-index GEP; the base keeps accumulating through the whole chain.
struct PointerOffset {
  const Value *Base = nullptr;
  bool HasConstOffset = true;
  int64_t OffsetBytes = 0;
};

/// Stateless per-function alias oracle. Queries walk the IR as it stands at
/// call time, so the result object survives instruction edits (only CFG
/// surgery that deletes pointer values would leave dangling queries, and
/// those invalidate the whole cache anyway).
class AliasAnalysis {
public:
  explicit AliasAnalysis(Function &F) : F(&F) {}

  Function &function() const { return *F; }

  /// Strips GEPs (and freezes) off \p Ptr, accumulating constant offsets.
  static PointerOffset decompose(const Value *Ptr);

  /// True for values whose address is distinct from every other identified
  /// object: named globals and allocas.
  static bool isIdentifiedObject(const Value *V);

  /// Allocation size of an identified object, if known.
  static std::optional<uint64_t> objectSizeBytes(const Value *Base);

  /// Relation between an access of \p Bits1 bits at \p P1 and one of
  /// \p Bits2 bits at \p P2. MustAlias means identical address *and*
  /// identical extent.
  AliasResult alias(const Value *P1, unsigned Bits1, const Value *P2,
                    unsigned Bits2) const;

private:
  Function *F;
};

/// AnalysisManager registration for AliasAnalysis.
class AAAnalysis {
public:
  using Result = AliasAnalysis;
  static AnalysisKey *key();
  static const char *name() { return "aa"; }
  static std::vector<AnalysisKey *> dependencies() { return {}; }
  static Result run(Function &F, AnalysisManager &AM);
};

} // namespace frost

#endif // FROST_ANALYSIS_ALIASANALYSIS_H
