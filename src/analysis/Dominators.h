//===- Dominators.h - Dominator tree ----------------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree over a function's CFG, built with the Cooper–Harvey–
/// Kennedy iterative algorithm. Used by the verifier (SSA dominance), GVN,
/// LICM, and loop detection.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_ANALYSIS_DOMINATORS_H
#define FROST_ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <map>
#include <vector>

namespace frost {

/// Immediate-dominator tree for one function. Invalidated by any CFG edit.
class DominatorTree {
public:
  explicit DominatorTree(Function &F);

  Function &function() const { return F; }

  /// Blocks in reverse post-order (entry first); unreachable blocks are
  /// excluded.
  const std::vector<BasicBlock *> &rpo() const { return RPO; }

  bool isReachable(const BasicBlock *BB) const {
    return IDom.count(const_cast<BasicBlock *>(BB)) != 0;
  }

  /// The immediate dominator of \p BB (null for the entry block).
  BasicBlock *idom(const BasicBlock *BB) const;

  /// True iff \p A dominates \p B (reflexive). Unreachable blocks are
  /// dominated by everything, matching LLVM's convention.
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// True iff the definition \p Def dominates the use of it in \p User at
  /// operand \p OpNo. Handles same-block ordering and the phi rule (a phi
  /// use is anchored at the end of its incoming block).
  bool dominates(const Instruction *Def, const Instruction *User,
                 unsigned OpNo) const;

private:
  Function &F;
  std::vector<BasicBlock *> RPO;
  std::map<BasicBlock *, unsigned> RPOIndex;
  std::map<BasicBlock *, BasicBlock *> IDom;
};

} // namespace frost

#endif // FROST_ANALYSIS_DOMINATORS_H
