//===- LoopInfo.cpp - Natural loop detection --------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

#include "ir/Constants.h"
#include "support/Stats.h"

#include <algorithm>

using namespace frost;

BasicBlock *Loop::preheader() const {
  std::vector<BasicBlock *> Entries = entryPredecessors();
  if (Entries.size() != 1)
    return nullptr;
  BasicBlock *Cand = Entries.front();
  if (Cand->successors().size() != 1)
    return nullptr;
  return Cand;
}

std::vector<BasicBlock *> Loop::entryPredecessors() const {
  std::vector<BasicBlock *> Result;
  for (BasicBlock *Pred : Header->uniquePredecessors())
    if (!contains(Pred))
      Result.push_back(Pred);
  return Result;
}

std::vector<BasicBlock *> Loop::latches() const {
  std::vector<BasicBlock *> Result;
  for (BasicBlock *Pred : Header->uniquePredecessors())
    if (contains(Pred))
      Result.push_back(Pred);
  return Result;
}

std::vector<BasicBlock *> Loop::exitBlocks() const {
  std::vector<BasicBlock *> Result;
  for (BasicBlock *BB : BlockList) // RPO: exit order is deterministic too.
    for (BasicBlock *Succ : BB->successors())
      if (!contains(Succ) &&
          std::find(Result.begin(), Result.end(), Succ) == Result.end())
        Result.push_back(Succ);
  return Result;
}

bool Loop::isLoopInvariant(const Value *V) const {
  const auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return true; // Constants, arguments, globals.
  return !contains(I);
}

LoopInfo::LoopInfo([[maybe_unused]] Function &F, const DominatorTree &DT) {
  assert(&DT.function() == &F && "dominator tree is for another function");
  stats::add("analysis.loopinfo.constructed");
  // Find back edges: Latch -> Header where Header dominates Latch.
  // Process headers in reverse RPO so inner loops are discovered after the
  // outer ones that contain them (we fix nesting afterwards regardless).
  for (BasicBlock *Header : DT.rpo()) {
    std::vector<BasicBlock *> BackPreds;
    for (BasicBlock *Pred : Header->uniquePredecessors())
      if (DT.isReachable(Pred) && DT.dominates(Header, Pred))
        BackPreds.push_back(Pred);
    if (BackPreds.empty())
      continue;

    auto L = std::make_unique<Loop>();
    L->Header = Header;
    L->Blocks.insert(Header);
    // Walk predecessors backwards from each latch until the header.
    std::vector<BasicBlock *> Work = BackPreds;
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!L->Blocks.insert(BB).second)
        continue;
      for (BasicBlock *Pred : BB->uniquePredecessors())
        if (DT.isReachable(Pred) && Pred != Header)
          Work.push_back(Pred);
    }
    // Deterministic iteration order: RPO, never pointer order (see
    // Loop::blocks()).
    for (BasicBlock *BB : DT.rpo())
      if (L->Blocks.count(BB))
        L->BlockList.push_back(BB);
    AllLoops.push_back(std::move(L));
  }

  // Establish nesting: loop A is a child of the smallest loop B != A whose
  // block set strictly contains A's header.
  for (auto &L : AllLoops) {
    Loop *Best = nullptr;
    for (auto &Other : AllLoops) {
      if (Other.get() == L.get())
        continue;
      if (!Other->contains(L->Header))
        continue;
      if (!Best || Other->Blocks.size() < Best->Blocks.size())
        Best = Other.get();
    }
    L->Parent = Best;
    if (Best)
      Best->SubLoops.push_back(L.get());
    else
      TopLevel.push_back(L.get());
  }

  // Innermost loop per block.
  for (auto &L : AllLoops)
    for (BasicBlock *BB : L->Blocks) {
      auto It = InnermostMap.find(BB);
      if (It == InnermostMap.end() ||
          It->second->Blocks.size() > L->Blocks.size())
        InnermostMap[BB] = L.get();
    }
}

Loop *LoopInfo::loopFor(const BasicBlock *BB) const {
  auto It = InnermostMap.find(BB);
  return It == InnermostMap.end() ? nullptr : It->second;
}

std::vector<Loop *> LoopInfo::loopsInnermostFirst() const {
  std::vector<Loop *> Result;
  for (auto &L : AllLoops)
    Result.push_back(L.get());
  std::sort(Result.begin(), Result.end(), [](Loop *A, Loop *B) {
    if (A->depth() != B->depth())
      return A->depth() > B->depth();
    return A->blocks().size() < B->blocks().size();
  });
  return Result;
}
