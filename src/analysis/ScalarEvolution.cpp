//===- ScalarEvolution.cpp - Affine recurrence analysis -------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/ScalarEvolution.h"

#include "analysis/ValueTracking.h"
#include "ir/Constants.h"
#include "ir/Instructions.h"
#include "sem/Eval.h"

using namespace frost;

Value *ScalarEvolution::stripFreeze(Value *V) const {
  // Section 10.1: scalar evolution "currently fails to analyze expressions
  // involving freeze". The FreezeAware mode may only look through a freeze
  // when the operand is provably non-poison (then freeze is the identity);
  // looking through an arbitrary freeze would be unsound, since the frozen
  // value of a poison recurrence follows no recurrence at all.
  while (auto *Fr = dyn_cast<FreezeInst>(V)) {
    if (!FreezeAware || !isGuaranteedNotToBePoison(Fr->src()))
      return V;
    V = Fr->src();
  }
  return V;
}

std::optional<AddRec> ScalarEvolution::asAddRec(Value *V, Loop &L) const {
  V = stripFreeze(V);

  // Loop-invariant values are {V, +, 0}.
  if (L.isLoopInvariant(V)) {
    AddRec R;
    R.Start = V;
    unsigned W = V->getType()->isInteger() ? V->getType()->bitWidth() : 32;
    R.Step = BitVec(W, 0);
    return R;
  }

  auto *P = dyn_cast<PhiNode>(V);
  if (!P || P->getParent() != L.header() || P->getNumIncoming() != 2 ||
      !P->getType()->isInteger())
    return std::nullopt;
  BasicBlock *Pre = L.preheader();
  if (!Pre)
    return std::nullopt;
  int PreIdx = P->getBlockIndex(Pre);
  if (PreIdx < 0)
    return std::nullopt;
  unsigned LatchIdx = 1 - static_cast<unsigned>(PreIdx);

  Value *Next = stripFreeze(P->getIncomingValue(LatchIdx));
  auto *Step = dyn_cast<BinaryOperator>(Next);
  if (!Step || Step->getOpcode() != Opcode::Add || !L.contains(Step))
    return std::nullopt;
  Value *Other = nullptr;
  if (stripFreeze(Step->lhs()) == P)
    Other = Step->rhs();
  else if (stripFreeze(Step->rhs()) == P)
    Other = Step->lhs();
  else
    return std::nullopt;
  if (isa<FreezeInst>(Step->lhs()) || isa<FreezeInst>(Step->rhs())) {
    // A frozen back-edge breaks the recurrence unless FreezeAware proved it
    // transparent above.
    if (!FreezeAware)
      return std::nullopt;
  }
  const auto *C = dyn_cast<ConstantInt>(Other);
  if (!C)
    return std::nullopt;

  AddRec R;
  R.Start = P->getIncomingValue(static_cast<unsigned>(PreIdx));
  R.Step = C->value();
  R.NSW = Step->hasNSW();
  return R;
}

std::optional<uint64_t> ScalarEvolution::constantTripCount(Loop &L) const {
  BasicBlock *Header = L.header();
  auto *Br = dyn_cast_or_null<BranchInst>(Header->terminator());
  if (!Br || !Br->isConditional())
    return std::nullopt;
  bool ExitOnFalse = L.contains(Br->trueDest()) && !L.contains(Br->falseDest());
  bool ExitOnTrue = !L.contains(Br->trueDest()) && L.contains(Br->falseDest());
  if (!ExitOnFalse && !ExitOnTrue)
    return std::nullopt;

  Value *CondV = Br->condition();
  if (isa<FreezeInst>(CondV)) {
    CondV = stripFreeze(CondV);
    if (isa<FreezeInst>(CondV))
      return std::nullopt; // Unanalyzable freeze (the Section 10.1 gap).
  }
  auto *Cmp = dyn_cast<ICmpInst>(CondV);
  if (!Cmp)
    return std::nullopt;

  auto IV = asAddRec(Cmp->lhs(), L);
  const auto *Bound = dyn_cast<ConstantInt>(Cmp->rhs());
  if (!IV || !Bound || IV->Step.isZero())
    return std::nullopt;
  const auto *Start = dyn_cast<ConstantInt>(IV->Start);
  if (!Start)
    return std::nullopt;

  // Brute-force the recurrence; fine for the widths and trip counts the
  // clients use, and exact by construction.
  ICmpPred P = Cmp->pred();
  BitVec I = Start->value();
  uint64_t Trips = 0;
  constexpr uint64_t Limit = 1u << 20;
  while (Trips < Limit) {
    bool InLoop = sem::foldPred(P, I, Bound->value());
    if (ExitOnTrue)
      InLoop = !InLoop;
    if (!InLoop)
      return Trips;
    ++Trips;
    I = I.add(IV->Step);
    if (I == Start->value())
      return std::nullopt; // Wrapped a full cycle: no static trip count.
  }
  return std::nullopt;
}
