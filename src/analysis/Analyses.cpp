//===- Analyses.cpp - AnalysisManager registrations --------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"

using namespace frost;

AnalysisKey *DominatorTreeAnalysis::key() {
  static AnalysisKey K;
  return &K;
}

DominatorTree DominatorTreeAnalysis::run(Function &F, AnalysisManager &) {
  return DominatorTree(F);
}

AnalysisKey *LoopInfoAnalysis::key() {
  static AnalysisKey K;
  return &K;
}

std::vector<AnalysisKey *> LoopInfoAnalysis::dependencies() {
  return {DominatorTreeAnalysis::key()};
}

LoopInfo LoopInfoAnalysis::run(Function &F, AnalysisManager &AM) {
  return LoopInfo(F, AM.get<DominatorTreeAnalysis>(F));
}

AnalysisKey *ScalarEvolutionAnalysis::key() {
  static AnalysisKey K;
  return &K;
}

std::vector<AnalysisKey *> ScalarEvolutionAnalysis::dependencies() {
  return {DominatorTreeAnalysis::key(), LoopInfoAnalysis::key()};
}

ScalarEvolution ScalarEvolutionAnalysis::run(Function &F,
                                             AnalysisManager &AM) {
  // The result keeps a reference to the cached LoopInfo; the dependency
  // edge above guarantees it is evicted before (or with) the LoopInfo.
  return ScalarEvolution(F, AM.get<DominatorTreeAnalysis>(F),
                         AM.get<LoopInfoAnalysis>(F));
}

PreservedAnalyses frost::preservedCFGAnalyses() {
  PreservedAnalyses PA;
  PA.preserve<DominatorTreeAnalysis>();
  PA.preserve<LoopInfoAnalysis>();
  PA.preserve<ScalarEvolutionAnalysis>();
  PA.preserve<AAAnalysis>();
  return PA;
}
