//===- Oracle.h - Nondeterminism oracles ------------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter consumes non-deterministic choices (undef materialisation,
/// freeze of poison, nondet branch on poison in legacy configurations) from a
/// ChoiceOracle. The PathEnumerator drives repeated executions through an
/// EnumeratingOracle to explore *every* choice path, which is what makes the
/// translation validator exhaustive over small bit widths.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SEM_ORACLE_H
#define FROST_SEM_ORACLE_H

#include "support/BitVec.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace frost {
namespace sem {

/// Source of nondeterministic choices for one execution.
class ChoiceOracle {
public:
  virtual ~ChoiceOracle() = default;

  /// Picks one of \p NumAlternatives (>= 1) alternatives.
  virtual uint64_t choose(uint64_t NumAlternatives) = 0;

  /// Picks an arbitrary value of the given width. For widths up to
  /// ExhaustiveWidthLimit every value is reachable; for wider types a small
  /// representative set is used (0, 1, all-ones, min-signed, max-signed),
  /// since full enumeration of 2^64 alternatives is impossible. The
  /// translation validator therefore only claims exhaustiveness for narrow
  /// types, exactly like the paper's opt-fuzz experiments over i2.
  BitVec chooseBits(unsigned Width);

  /// Widths up to this limit are enumerated exhaustively by chooseBits.
  static constexpr unsigned ExhaustiveWidthLimit = 6;
};

/// Always picks alternative 0 (and value 0). Gives one deterministic
/// execution; used by example programs and the benchmark runner.
class DeterministicOracle : public ChoiceOracle {
public:
  uint64_t choose(uint64_t NumAlternatives) override;
};

/// Pseudo-random choices from a seeded generator; used for sampled
/// (non-exhaustive) validation of wide-typed programs.
class RandomOracle : public ChoiceOracle {
  uint64_t State;

public:
  explicit RandomOracle(uint64_t Seed) : State(Seed ? Seed : 1) {}
  uint64_t choose(uint64_t NumAlternatives) override;
};

/// Replays a recorded choice path, defaulting to 0 past its end and
/// recording the limit of every choice point. Driven by PathEnumerator.
class EnumeratingOracle : public ChoiceOracle {
public:
  uint64_t choose(uint64_t NumAlternatives) override;

private:
  friend class PathEnumerator;
  std::vector<uint64_t> Path;   // Choice taken at each choice point.
  std::vector<uint64_t> Limits; // Number of alternatives at each point.
  unsigned Cursor = 0;
};

/// Runs a callback once per distinct choice path, depth-first.
class PathEnumerator {
public:
  /// \p Body executes one run against the oracle and returns true to keep
  /// enumerating (false aborts early, e.g. once a counterexample is found).
  /// Returns false if the path budget was exhausted before covering all
  /// paths (results are then incomplete).
  bool enumerate(const std::function<bool(ChoiceOracle &)> &Body,
                 uint64_t MaxPaths = 1u << 20);

  uint64_t pathsExplored() const { return Paths; }

private:
  uint64_t Paths = 0;
};

} // namespace sem
} // namespace frost

#endif // FROST_SEM_ORACLE_H
