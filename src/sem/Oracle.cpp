//===- Oracle.cpp - Nondeterminism oracles -----------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "sem/Oracle.h"

using namespace frost;
using namespace frost::sem;

BitVec ChoiceOracle::chooseBits(unsigned Width) {
  if (Width <= ExhaustiveWidthLimit)
    return BitVec(Width, choose(uint64_t(1) << Width));

  // Representative values for wide types; exhaustive enumeration is not
  // claimed here (see the class comment).
  static constexpr int NumReps = 6;
  uint64_t Pick = choose(NumReps);
  switch (Pick) {
  case 0:
    return BitVec(Width, 0);
  case 1:
    return BitVec(Width, 1);
  case 2:
    return BitVec::allOnes(Width);
  case 3:
    return BitVec::minSigned(Width);
  case 4:
    return BitVec::maxSigned(Width);
  default:
    return BitVec(Width, 0x5aa5f00du);
  }
}

uint64_t DeterministicOracle::choose(uint64_t NumAlternatives) {
  (void)NumAlternatives;
  assert(NumAlternatives >= 1 && "no alternatives to choose from");
  return 0;
}

uint64_t RandomOracle::choose(uint64_t NumAlternatives) {
  assert(NumAlternatives >= 1 && "no alternatives to choose from");
  // xorshift64*.
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return (State * 0x2545F4914F6CDD1Dull) % NumAlternatives;
}

uint64_t EnumeratingOracle::choose(uint64_t NumAlternatives) {
  assert(NumAlternatives >= 1 && "no alternatives to choose from");
  if (Cursor == Path.size()) {
    Path.push_back(0);
    Limits.push_back(NumAlternatives);
  } else {
    // A re-executed prefix must present the same choice structure.
    assert(Limits[Cursor] == NumAlternatives &&
           "nondeterministic choice structure changed between replays");
  }
  return Path[Cursor++];
}

bool PathEnumerator::enumerate(
    const std::function<bool(ChoiceOracle &)> &Body, uint64_t MaxPaths) {
  EnumeratingOracle Oracle;
  Paths = 0;
  while (true) {
    Oracle.Cursor = 0;
    // Forget structure past the replayed prefix: the program may branch
    // differently after an incremented choice.
    ++Paths;
    if (!Body(Oracle))
      return true; // Early abort requested; not a budget failure.
    if (Paths >= MaxPaths)
      return false;

    // Advance to the next path: increment the last choice, with carry.
    // Choice points visited this run: Oracle.Cursor of them.
    Oracle.Path.resize(Oracle.Cursor);
    Oracle.Limits.resize(Oracle.Cursor);
    while (!Oracle.Path.empty() &&
           Oracle.Path.back() + 1 == Oracle.Limits.back()) {
      Oracle.Path.pop_back();
      Oracle.Limits.pop_back();
    }
    if (Oracle.Path.empty())
      return true; // All paths explored.
    ++Oracle.Path.back();
  }
}
