//===- Interp.h - Operational interpreter for frost IR ----------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable rendering of the paper's Figure 5 operational semantics,
/// parameterised by SemanticsConfig so the legacy rules of Section 3 are
/// also runnable.
///
/// Undef ("each use may yield a different value", Section 3.1) is modelled
/// operationally: registers and memory may hold symbolic undef lanes, and a
/// lane is *materialised* into an arbitrary concrete value — one fresh
/// oracle choice per use — whenever it flows into an instruction that
/// computes with it (arithmetic, comparisons, casts, geps, branches).
/// Value-moving operations (phi, select arms, return, store, call arguments)
/// preserve the symbolic lane, so distinct later uses can still disagree.
/// Freeze materialises and thereby pins the value, which is exactly its
/// specified behaviour.
///
/// Observable behaviour of an execution = termination status + returned
/// value + the sequence of values passed to `observe*` declarations + the
/// final memory contents. The translation validator compares these.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SEM_INTERP_H
#define FROST_SEM_INTERP_H

#include "sem/Config.h"
#include "sem/Domain.h"
#include "sem/Memory.h"
#include "sem/Oracle.h"

#include <map>
#include <optional>
#include <string>

namespace frost {

class Function;
class GlobalVariable;
class Value;

namespace sem {

/// Outcome of one (fully deterministic, given the oracle) execution.
struct ExecResult {
  enum class Status {
    Ok,    ///< Returned normally.
    UB,    ///< Executed immediate undefined behaviour.
    Fuel,  ///< Step budget exhausted (result unknown).
    Error, ///< Malformed program (interpreter limitation, not UB).
  };

  Status St = Status::Error;
  std::optional<Value> Ret;      ///< Set for non-void returns when Ok.
  std::vector<Value> Trace;      ///< Values passed to observe*().
  std::vector<MemBit> FinalMem;  ///< Memory snapshot when Ok.
  std::string Reason;            ///< Explanation for UB / Error.

  bool ok() const { return St == Status::Ok; }
  bool ub() const { return St == Status::UB; }

  /// Renders status/value/trace for diagnostics.
  std::string str() const;
};

/// Execution limits.
struct InterpOptions {
  uint64_t Fuel = 200000;     ///< Maximum instructions executed.
  unsigned MaxCallDepth = 64; ///< Maximum nested calls.
};

/// Interprets frost IR functions under a chosen UB semantics.
class Interpreter {
public:
  Interpreter(const SemanticsConfig &Config, ChoiceOracle &Oracle,
              InterpOptions Opts = InterpOptions())
      : Config(Config), Oracle(Oracle), Opts(Opts) {}

  /// Runs \p F on \p Args (one sem::Value per formal argument). Globals
  /// transitively referenced by \p F are allocated (uninitialized) before
  /// the run, in name order.
  ExecResult run(Function &F, const std::vector<Value> &Args);

  Memory &memory() { return Mem; }

  /// Address bound to \p G during the last run (0 if untouched).
  uint32_t globalAddress(const GlobalVariable *G) const;

private:
  struct Frame;

  ExecResult callFunction(Function &F, const std::vector<Value> &Args,
                          unsigned Depth, std::vector<Value> &Trace);

  Value evalRaw(Frame &Fr, frost::Value *Op);
  Value evalForCompute(Frame &Fr, frost::Value *Op);
  Lane materialize(const Lane &L, unsigned Width);

  const SemanticsConfig &Config;
  ChoiceOracle &Oracle;
  InterpOptions Opts;
  Memory Mem;
  std::map<const GlobalVariable *, uint32_t> GlobalAddrs;
  uint64_t FuelLeft = 0;
};

/// Convenience driver for examples and benchmarks: runs \p F on concrete
/// integer arguments with a deterministic oracle under the proposed
/// semantics, returning the concrete scalar result. Aborts on UB.
uint64_t runConcrete(Function &F, const std::vector<uint64_t> &Args);

} // namespace sem
} // namespace frost

#endif // FROST_SEM_INTERP_H
