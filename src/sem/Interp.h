//===- Interp.h - Operational interpreter for frost IR ----------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable rendering of the paper's Figure 5 operational semantics,
/// parameterised by SemanticsConfig so the legacy rules of Section 3 are
/// also runnable.
///
/// Undef ("each use may yield a different value", Section 3.1) is modelled
/// operationally: registers and memory may hold symbolic undef lanes, and a
/// lane is *materialised* into an arbitrary concrete value — one fresh
/// oracle choice per use — whenever it flows into an instruction that
/// computes with it (arithmetic, comparisons, casts, geps, branches).
/// Value-moving operations (phi, select arms, return, store, call arguments)
/// preserve the symbolic lane, so distinct later uses can still disagree.
/// Freeze materialises and thereby pins the value, which is exactly its
/// specified behaviour.
///
/// Observable behaviour of an execution = termination status + returned
/// value + the sequence of values passed to `observe*` declarations + the
/// final memory contents. The translation validator compares these.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SEM_INTERP_H
#define FROST_SEM_INTERP_H

#include "sem/Config.h"
#include "sem/Domain.h"
#include "sem/Memory.h"
#include "sem/Oracle.h"

#include <map>
#include <optional>
#include <string>

namespace frost {

class Function;
class GlobalVariable;
class Value;

namespace sem {

/// Outcome of one (fully deterministic, given the oracle) execution.
struct ExecResult {
  enum class Status {
    Ok,    ///< Returned normally.
    UB,    ///< Executed immediate undefined behaviour.
    Trap,  ///< Executed a `trap <id>` terminator (defined behaviour) or,
           ///< in SanOracle mode, hit a dynamic-UB event.
    Fuel,  ///< Step budget exhausted (result unknown).
    Error, ///< Malformed program (interpreter limitation, not UB).
  };

  Status St = Status::Error;
  std::optional<Value> Ret;      ///< Set for non-void returns when Ok.
  std::vector<Value> Trace;      ///< Values passed to observe*().
  std::vector<MemBit> FinalMem;  ///< Global memory (name order) when Ok.
  std::string Reason;            ///< Explanation for UB / Error / Trap.
  int TrapId = -1;               ///< Check kind for Trap, else -1.

  bool ok() const { return St == Status::Ok; }
  bool ub() const { return St == Status::UB; }
  bool trapped() const { return St == Status::Trap; }

  /// Renders status/value/trace for diagnostics.
  std::string str() const;
};

/// Execution limits and initial state.
struct InterpOptions {
  uint64_t Fuel = 200000;     ///< Maximum instructions executed.
  unsigned MaxCallDepth = 64; ///< Maximum nested calls.

  /// Initial contents of global memory: bits for all transitively
  /// referenced globals, concatenated in name order (8 bits per byte,
  /// LSB first — the lowerValue layout). Shorter vectors leave the tail
  /// uninitialized; null means all memory starts Uninit. The vector must
  /// outlive the run. TV campaigns enumerate initial memories through
  /// this knob to catch passes that are only sound for *some* prior
  /// contents (e.g. legacy DSE's "storing undef is a no-op").
  const std::vector<MemBit> *InitialMem = nullptr;

  /// When set, pins the observable-memory window: InitialMem installs
  /// into and FinalMem snapshots exactly these globals, in this order,
  /// whether or not the executed function references them (unreferenced
  /// ones are still allocated so their initial bits survive into the
  /// snapshot). Null: the globals the function references, in name order.
  /// The TV checker pins the SOURCE function's window for both runs, so a
  /// pass that deletes the last reference to a global can neither shift
  /// the InitialMem layout nor shrink the snapshot it is judged on.
  const std::vector<const GlobalVariable *> *MemLayout = nullptr;

  /// Sanitizer-oracle event mode: every dynamic-UB event the sanitize pass
  /// instruments for (docs/sanitizer.md) stops execution with Status::Trap
  /// and the event's check kind, *before* the offending instruction's
  /// normal semantics (poison result / UB / nondet choice) apply. This is
  /// the ground truth the CampaignKind::Sanitizer differential oracles
  /// compare instrumented programs against.
  bool SanOracle = false;
};

/// Interprets frost IR functions under a chosen UB semantics.
class Interpreter {
public:
  Interpreter(const SemanticsConfig &Config, ChoiceOracle &Oracle,
              InterpOptions Opts = InterpOptions())
      : Config(Config), Oracle(Oracle), Opts(Opts) {}

  /// Runs \p F on \p Args (one sem::Value per formal argument). Globals
  /// transitively referenced by \p F are allocated (uninitialized) before
  /// the run, in name order.
  ExecResult run(Function &F, const std::vector<Value> &Args);

  Memory &memory() { return Mem; }

  /// Address bound to \p G during the last run (0 if untouched).
  uint32_t globalAddress(const GlobalVariable *G) const;

private:
  struct Frame;

  ExecResult callFunction(Function &F, const std::vector<Value> &Args,
                          unsigned Depth, std::vector<Value> &Trace);

  Value evalRaw(Frame &Fr, frost::Value *Op);
  Value evalForCompute(Frame &Fr, frost::Value *Op);
  Lane materialize(const Lane &L, unsigned Width);

  const SemanticsConfig &Config;
  ChoiceOracle &Oracle;
  InterpOptions Opts;
  Memory Mem;
  std::map<const GlobalVariable *, uint32_t> GlobalAddrs;
  uint64_t FuelLeft = 0;
};

/// Convenience driver for examples and benchmarks: runs \p F on concrete
/// integer arguments with a deterministic oracle under the proposed
/// semantics, returning the concrete scalar result. Aborts on UB.
uint64_t runConcrete(Function &F, const std::vector<uint64_t> &Args);

/// Total bits of global memory transitively referenced by \p F — the length
/// of an InterpOptions::InitialMem vector that covers it fully (and of the
/// FinalMem snapshot of a run that allocates nothing else). Zero for
/// functions that touch no globals.
uint64_t globalMemoryBits(Function &F);

/// The globals \p F transitively references, in name order — the default
/// memory window of a run, suitable as an InterpOptions::MemLayout pin.
std::vector<const GlobalVariable *> referencedGlobals(Function &F);

} // namespace sem
} // namespace frost

#endif // FROST_SEM_INTERP_H
