//===- Memory.cpp - Bitwise poison-aware memory ------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "sem/Memory.h"

#include "ir/Type.h"
#include "support/Casting.h"
#include "support/ErrorHandling.h"

using namespace frost;
using namespace frost::sem;

uint32_t Memory::allocate(uint32_t SizeBytes) {
  Block B;
  B.Base = NextAddr;
  B.Size = SizeBytes;
  B.Bits.assign(static_cast<size_t>(SizeBytes) * 8, MemBit::Uninit);
  // Pad between blocks so out-of-bounds accesses never alias a neighbour.
  NextAddr += SizeBytes + 16;
  Blocks.push_back(std::move(B));
  return Blocks.back().Base;
}

const Memory::Block *Memory::findBlock(uint32_t Addr,
                                       unsigned SizeBits) const {
  uint32_t SizeBytes = (SizeBits + 7) / 8;
  for (const Block &B : Blocks) {
    if (Addr < B.Base)
      continue;
    uint64_t Off = Addr - B.Base;
    if (Off + SizeBytes <= B.Size)
      return &B;
  }
  return nullptr;
}

bool Memory::validRange(uint32_t Addr, unsigned SizeBits) const {
  return findBlock(Addr, SizeBits) != nullptr;
}

bool Memory::load(uint32_t Addr, unsigned SizeBits,
                  std::vector<MemBit> &Out) const {
  Out.clear();
  const Block *B = findBlock(Addr, SizeBits);
  if (!B)
    return false;
  size_t BitOff = static_cast<size_t>(Addr - B->Base) * 8;
  Out.assign(B->Bits.begin() + BitOff, B->Bits.begin() + BitOff + SizeBits);
  return true;
}

bool Memory::store(uint32_t Addr, const std::vector<MemBit> &Bits) {
  const Block *BC = findBlock(Addr, Bits.size());
  if (!BC)
    return false;
  Block *B = const_cast<Block *>(BC);
  size_t BitOff = static_cast<size_t>(Addr - B->Base) * 8;
  for (size_t I = 0; I != Bits.size(); ++I)
    B->Bits[BitOff + I] = Bits[I];
  return true;
}

std::vector<MemBit> Memory::snapshot() const {
  std::vector<MemBit> Out;
  for (const Block &B : Blocks)
    Out.insert(Out.end(), B.Bits.begin(), B.Bits.end());
  return Out;
}

namespace {

void lowerLane(const Lane &L, unsigned Width, std::vector<MemBit> &Out) {
  for (unsigned I = 0; I != Width; ++I) {
    switch (L.K) {
    case Lane::Kind::Concrete:
      Out.push_back(L.Bits.getBit(I) ? MemBit::One : MemBit::Zero);
      break;
    case Lane::Kind::Poison:
      Out.push_back(MemBit::Poison);
      break;
    case Lane::Kind::Undef:
      Out.push_back(MemBit::Undef);
      break;
    }
  }
}

Lane liftLane(const std::vector<MemBit> &Bits, size_t Off, unsigned Width,
              const SemanticsConfig &Config) {
  bool AnyPoison = false, AnyUndef = false;
  BitVec V(Width, 0);
  for (unsigned I = 0; I != Width; ++I) {
    switch (Bits[Off + I]) {
    case MemBit::Zero:
      break;
    case MemBit::One:
      V.setBit(I, true);
      break;
    case MemBit::Poison:
      AnyPoison = true;
      break;
    case MemBit::Undef:
      AnyUndef = true;
      break;
    case MemBit::Uninit:
      if (Config.LoadUninitYieldsUndef)
        AnyUndef = true;
      else
        AnyPoison = true;
      break;
    }
  }
  // Figure 5: a base-type value with any poison bit lifts to poison.
  if (AnyPoison)
    return Lane::poison();
  if (AnyUndef)
    return Lane::undef();
  return Lane::concrete(V);
}

unsigned scalarWidth(const Type *Ty) {
  assert((Ty->isInteger() || Ty->isPointer()) && "expected a scalar type");
  return Ty->bitWidth();
}

} // namespace

std::vector<MemBit> sem::lowerValue(const Value &V, const Type *Ty) {
  std::vector<MemBit> Out;
  if (const auto *VT = dyn_cast<VectorType>(Ty)) {
    assert(V.Lanes.size() == VT->count() && "lane count mismatch");
    unsigned W = scalarWidth(VT->element());
    for (const Lane &L : V.Lanes)
      lowerLane(L, W, Out);
    return Out;
  }
  assert(V.isScalar() && "scalar type with multiple lanes");
  lowerLane(V.scalar(), scalarWidth(Ty), Out);
  return Out;
}

sem::Value sem::liftValue(const std::vector<MemBit> &Bits, const Type *Ty,
                          const SemanticsConfig &Config) {
  if (const auto *VT = dyn_cast<VectorType>(Ty)) {
    unsigned W = scalarWidth(VT->element());
    assert(Bits.size() == static_cast<size_t>(W) * VT->count() &&
           "bit count mismatch");
    std::vector<Lane> Lanes;
    for (unsigned I = 0; I != VT->count(); ++I)
      Lanes.push_back(liftLane(Bits, static_cast<size_t>(I) * W, W, Config));
    return Value(std::move(Lanes));
  }
  unsigned W = scalarWidth(Ty);
  assert(Bits.size() == W && "bit count mismatch");
  return Value(liftLane(Bits, 0, W, Config));
}

bool sem::memBitRefines(MemBit Tgt, MemBit Src) {
  if (Src == MemBit::Poison)
    return true;
  if (Src == MemBit::Undef || Src == MemBit::Uninit)
    return Tgt != MemBit::Poison;
  return Tgt == Src;
}
