//===- Eval.cpp - Shared per-lane evaluation ----------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "sem/Eval.h"

#include "support/ErrorHandling.h"

using namespace frost;
using namespace frost::sem;

/// Figure 5 rules for binary arithmetic, one lane at a time. Undef lanes
/// must have been materialised by the caller.
FoldResult sem::foldBinLane(Opcode Op, ArithFlags F, const Lane &A, const Lane &B,
                       const SemanticsConfig &Config) {
  assert(!A.isUndef() && !B.isUndef() && "undef must be materialised first");

  // Division: a poison or zero divisor is immediate UB (the operation could
  // trap); a poison dividend defers.
  if (Op == Opcode::UDiv || Op == Opcode::SDiv || Op == Opcode::URem ||
      Op == Opcode::SRem) {
    if (B.isPoison())
      return FoldResult::ub("division by poison divisor");
    if (B.Bits.isZero())
      return FoldResult::ub("division by zero");
    bool Signed = Op == Opcode::SDiv || Op == Opcode::SRem;
    if (A.isPoison())
      return FoldResult::val(Lane::poison());
    if (Signed && A.Bits.sdivOverflows(B.Bits))
      return FoldResult::ub("signed division overflow");
    BitVec Quot = Signed ? A.Bits.sdiv(B.Bits) : A.Bits.udiv(B.Bits);
    BitVec Rem = Signed ? A.Bits.srem(B.Bits) : A.Bits.urem(B.Bits);
    if (Op == Opcode::URem || Op == Opcode::SRem)
      return FoldResult::val(Lane::concrete(Rem));
    if (F.Exact && !Rem.isZero())
      return FoldResult::val(Lane::poison());
    return FoldResult::val(Lane::concrete(Quot));
  }

  // Everything else defers poison.
  if (A.isPoison() || B.isPoison())
    return FoldResult::val(Lane::poison());

  switch (Op) {
  case Opcode::Add:
    if ((F.NSW && A.Bits.saddOverflows(B.Bits)) ||
        (F.NUW && A.Bits.uaddOverflows(B.Bits)))
      return FoldResult::val(Lane::poison());
    return FoldResult::val(Lane::concrete(A.Bits.add(B.Bits)));
  case Opcode::Sub:
    if ((F.NSW && A.Bits.ssubOverflows(B.Bits)) ||
        (F.NUW && A.Bits.usubOverflows(B.Bits)))
      return FoldResult::val(Lane::poison());
    return FoldResult::val(Lane::concrete(A.Bits.sub(B.Bits)));
  case Opcode::Mul:
    if ((F.NSW && A.Bits.smulOverflows(B.Bits)) ||
        (F.NUW && A.Bits.umulOverflows(B.Bits)))
      return FoldResult::val(Lane::poison());
    return FoldResult::val(Lane::concrete(A.Bits.mul(B.Bits)));
  case Opcode::Shl:
    if (B.Bits.shiftTooBig())
      return FoldResult::val(Config.OverShiftYieldsUndef ? Lane::undef()
                                                         : Lane::poison());
    if ((F.NSW && A.Bits.shlSignedOverflows(B.Bits)) ||
        (F.NUW && A.Bits.shlUnsignedOverflows(B.Bits)))
      return FoldResult::val(Lane::poison());
    return FoldResult::val(Lane::concrete(A.Bits.shl(B.Bits)));
  case Opcode::LShr:
  case Opcode::AShr: {
    if (B.Bits.shiftTooBig())
      return FoldResult::val(Config.OverShiftYieldsUndef ? Lane::undef()
                                                         : Lane::poison());
    BitVec R = Op == Opcode::LShr ? A.Bits.lshr(B.Bits) : A.Bits.ashr(B.Bits);
    if (F.Exact) {
      BitVec Back = R.shl(B.Bits);
      if (Back != A.Bits)
        return FoldResult::val(Lane::poison());
    }
    return FoldResult::val(Lane::concrete(R));
  }
  case Opcode::And:
    return FoldResult::val(Lane::concrete(A.Bits.and_(B.Bits)));
  case Opcode::Or:
    return FoldResult::val(Lane::concrete(A.Bits.or_(B.Bits)));
  case Opcode::Xor:
    return FoldResult::val(Lane::concrete(A.Bits.xor_(B.Bits)));
  default:
    frost_unreachable("not a binary opcode");
  }
}

bool sem::foldPred(ICmpPred P, const BitVec &A, const BitVec &B) {
  switch (P) {
  case ICmpPred::EQ:
    return A.eq(B);
  case ICmpPred::NE:
    return !A.eq(B);
  case ICmpPred::UGT:
    return B.ult(A);
  case ICmpPred::UGE:
    return B.ule(A);
  case ICmpPred::ULT:
    return A.ult(B);
  case ICmpPred::ULE:
    return A.ule(B);
  case ICmpPred::SGT:
    return B.slt(A);
  case ICmpPred::SGE:
    return B.sle(A);
  case ICmpPred::SLT:
    return A.slt(B);
  case ICmpPred::SLE:
    return A.sle(B);
  }
  frost_unreachable("unknown icmp predicate");
}

