//===- BitSliced.cpp - Bit-parallel batch evaluation --------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Plane algebra: every helper below operates on arrays of 64-bit words where
// word i holds bit i of all 64 lanes ("planes"). A ripple-carry adder over W
// planes performs 64 W-bit additions in ~5*W word operations; the same
// transposition turns nsw/nuw overflow, comparisons, shifts, and select
// muxing into a handful of ANDs and XORs per batch. Rare/awkward operations
// (division, flagged multiplies and shifts) gather each lane back to a
// BitVec and reuse sem::foldBinLane, so the sliced engine can never diverge
// from the Figure 5 rules the scalar interpreter implements.
//
//===----------------------------------------------------------------------===//

#include "sem/BitSliced.h"

#include "ir/Constants.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "sem/Eval.h"
#include "support/ErrorHandling.h"

using namespace frost;
using namespace frost::sem;

//===----------------------------------------------------------------------===//
// SlicedValue lane packing
//===----------------------------------------------------------------------===//

void SlicedValue::setLane(unsigned J, const Lane &L) {
  uint64_t Bit = uint64_t(1) << J;
  if (L.isPoison()) {
    Poison |= Bit;
    return;
  }
  if (L.isUndef()) {
    Undef |= Bit;
    return;
  }
  uint64_t V = L.Bits.zext();
  for (unsigned I = 0; I != Width; ++I)
    if ((V >> I) & 1)
      Planes[I] |= Bit;
}

Lane SlicedValue::getLane(unsigned J) const {
  if ((Poison >> J) & 1)
    return Lane::poison();
  if ((Undef >> J) & 1)
    return Lane::undef();
  uint64_t V = 0;
  for (unsigned I = 0; I != Width; ++I)
    V |= ((Planes[I] >> J) & 1) << I;
  return Lane::concrete(BitVec(Width, V));
}

//===----------------------------------------------------------------------===//
// Plane algebra
//===----------------------------------------------------------------------===//

namespace {

constexpr unsigned MaxW = SlicedValue::MaxWidth;

/// O = the constant \p V broadcast to every lane.
void constPlanes(uint64_t V, unsigned W, uint64_t *O) {
  for (unsigned I = 0; I != W; ++I)
    O[I] = ((V >> I) & 1) ? ~uint64_t(0) : 0;
}

/// O = A + B (ripple carry); returns the carry-out plane. In-place safe
/// (O may alias A or B): operands are read before the plane is written.
uint64_t addPlanes(const uint64_t *A, const uint64_t *B, unsigned W,
                   uint64_t *O) {
  uint64_t C = 0;
  for (unsigned I = 0; I != W; ++I) {
    uint64_t AI = A[I], BI = B[I];
    uint64_t X = AI ^ BI;
    O[I] = X ^ C;
    C = (AI & BI) | (C & X);
  }
  return C;
}

/// O = A - B (ripple borrow); returns the borrow-out plane (lanes A < B).
/// In-place safe like addPlanes.
uint64_t subPlanes(const uint64_t *A, const uint64_t *B, unsigned W,
                   uint64_t *O) {
  uint64_t Bor = 0;
  for (unsigned I = 0; I != W; ++I) {
    uint64_t AI = A[I], BI = B[I];
    uint64_t X = AI ^ BI;
    O[I] = X ^ Bor;
    Bor = (~AI & BI) | (~X & Bor);
  }
  return Bor;
}

/// Lanes where A != B.
uint64_t nePlanes(const uint64_t *A, const uint64_t *B, unsigned W) {
  uint64_t NE = 0;
  for (unsigned I = 0; I != W; ++I)
    NE |= A[I] ^ B[I];
  return NE;
}

/// Lanes where A < B, unsigned: the borrow of A - B.
uint64_t ultPlanes(const uint64_t *A, const uint64_t *B, unsigned W) {
  uint64_t Bor = 0;
  for (unsigned I = 0; I != W; ++I) {
    uint64_t X = A[I] ^ B[I];
    Bor = (~A[I] & B[I]) | (~X & Bor);
  }
  return Bor;
}

/// Lanes where A < B, signed: unsigned compare with the sign planes flipped.
uint64_t sltPlanes(const uint64_t *A, const uint64_t *B, unsigned W) {
  uint64_t Bor = 0;
  for (unsigned I = 0; I != W; ++I) {
    uint64_t AI = I + 1 == W ? ~A[I] : A[I];
    uint64_t BI = I + 1 == W ? ~B[I] : B[I];
    uint64_t X = AI ^ BI;
    Bor = (~AI & BI) | (~X & Bor);
  }
  return Bor;
}

/// O = A << K (planes move up, zero fill). In-place safe when O == A.
void shiftUpConst(const uint64_t *A, unsigned W, unsigned K, uint64_t *O) {
  for (unsigned I = W; I-- > 0;)
    O[I] = I >= K ? A[I - K] : 0;
}

/// O = A >> K with \p Fill shifted into the top planes (0 for lshr, the
/// sign plane for ashr). In-place safe when O == A.
void shiftDownConst(const uint64_t *A, unsigned W, unsigned K, uint64_t Fill,
                    uint64_t *O) {
  for (unsigned I = 0; I != W; ++I)
    O[I] = I + K < W ? A[I + K] : Fill;
}

/// Barrel shifter: O = A shifted by the per-lane amount in Amt. Lanes whose
/// amount is >= W produce garbage; callers mask them via the over-shift
/// plane. \p Dir: 0 shl, 1 lshr, 2 ashr.
void barrelShift(const uint64_t *A, const uint64_t *Amt, unsigned W, int Dir,
                 uint64_t *O) {
  for (unsigned I = 0; I != W; ++I)
    O[I] = A[I];
  uint64_t T[MaxW];
  for (unsigned S = 0; (1u << S) < W; ++S) {
    uint64_t Sel = Amt[S];
    if (Dir == 0)
      shiftUpConst(O, W, 1u << S, T);
    else
      shiftDownConst(O, W, 1u << S, Dir == 2 ? O[W - 1] : 0, T);
    for (unsigned I = 0; I != W; ++I)
      O[I] = (Sel & T[I]) | (~Sel & O[I]);
  }
}

/// O = A * B modulo 2^W (shift-and-add over planes).
void mulPlanes(const uint64_t *A, const uint64_t *B, unsigned W, uint64_t *O) {
  uint64_t Acc[MaxW] = {};
  uint64_t Part[MaxW];
  for (unsigned I = 0; I != W; ++I) {
    uint64_t Sel = B[I];
    if (!Sel)
      continue;
    for (unsigned K = 0; K != W; ++K)
      Part[K] = K >= I ? A[K - I] & Sel : 0;
    addPlanes(Acc, Part, W, Acc);
  }
  for (unsigned I = 0; I != W; ++I)
    O[I] = Acc[I];
}

} // namespace

//===----------------------------------------------------------------------===//
// Compilation
//===----------------------------------------------------------------------===//

std::optional<SlicedFunction>
SlicedFunction::compile(Function &F, const SemanticsConfig &Cfg,
                        std::string *Why) {
  auto Reject = [&](const char *Reason) -> std::optional<SlicedFunction> {
    if (Why)
      *Why = Reason;
    return std::nullopt;
  };

  if (F.isDeclaration())
    return Reject("function has no body");
  unsigned NumBlocks = 0;
  for (BasicBlock *BB : F) {
    (void)BB;
    ++NumBlocks;
  }
  if (NumBlocks != 1)
    return Reject("control flow (multiple blocks)");

  SlicedFunction SF;
  SF.Config = Cfg;

  auto ScalarWidth = [](const Type *Ty, unsigned &W) {
    if (!Ty->isInteger())
      return false;
    W = Ty->bitWidth();
    return W <= SlicedValue::MaxWidth;
  };

  std::vector<std::pair<const frost::Value *, uint16_t>> Slots;
  auto SlotOf = [&](const frost::Value *V) -> int {
    for (const auto &[Val, S] : Slots)
      if (Val == V)
        return S;
    return -1;
  };

  SF.NumArgs = F.getNumArgs();
  for (unsigned A = 0; A != F.getNumArgs(); ++A) {
    unsigned W;
    if (!ScalarWidth(F.arg(A)->getType(), W))
      return Reject("non-scalar or wide parameter");
    SF.ArgWidths.push_back(W);
    Slots.push_back({F.arg(A), uint16_t(Slots.size())});
  }

  // Converts an operand; returns false for anything outside the subset.
  auto Operand = [&](frost::Value *V, SOperand &O) {
    switch (V->getKind()) {
    case frost::Value::Kind::ConstantInt:
      O.K = SOperand::Kind::Const;
      O.Const = cast<ConstantInt>(V)->value().zext();
      return true;
    case frost::Value::Kind::Poison:
      O.K = SOperand::Kind::Poison;
      return true;
    case frost::Value::Kind::Undef:
      O.K = Cfg.UndefIsPoison ? SOperand::Kind::Poison : SOperand::Kind::Undef;
      return true;
    case frost::Value::Kind::Argument:
    case frost::Value::Kind::Instruction: {
      int S = SlotOf(V);
      if (S < 0)
        return false;
      O.K = SOperand::Kind::Slot;
      O.Slot = uint16_t(S);
      return true;
    }
    default:
      return false;
    }
  };

  for (Instruction *I : *F.entry()) {
    SInst SI;
    SI.Op = I->getOpcode();
    SI.Flags = I->flags();

    if (SI.Op == Opcode::Ret) {
      const auto *Rt = cast<ReturnInst>(I);
      if (Rt->hasValue()) {
        unsigned W;
        if (!ScalarWidth(Rt->value()->getType(), W))
          return Reject("non-scalar or wide return");
        if (!Operand(Rt->value(), SF.RetOp))
          return Reject("unsupported return operand");
        SF.HasRet = true;
        SF.RetWidth = W;
      }
      continue; // Single block: nothing executes after ret.
    }

    unsigned W;
    switch (SI.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::UDiv:
    case Opcode::SDiv:
    case Opcode::URem:
    case Opcode::SRem:
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
      if (!ScalarWidth(I->getType(), W))
        return Reject("non-scalar or wide instruction");
      SI.Width = SI.SrcWidth = W;
      if (!Operand(I->getOperand(0), SI.A) || !Operand(I->getOperand(1), SI.B))
        return Reject("unsupported operand");
      break;
    case Opcode::ICmp: {
      const auto *C = cast<ICmpInst>(I);
      if (!ScalarWidth(C->lhs()->getType(), W))
        return Reject("non-scalar or wide icmp operand");
      SI.Width = 1;
      SI.SrcWidth = W;
      SI.Pred = C->pred();
      if (!Operand(C->lhs(), SI.A) || !Operand(C->rhs(), SI.B))
        return Reject("unsupported operand");
      break;
    }
    case Opcode::Trunc:
    case Opcode::ZExt:
    case Opcode::SExt: {
      unsigned SrcW;
      if (!ScalarWidth(I->getType(), W) ||
          !ScalarWidth(I->getOperand(0)->getType(), SrcW))
        return Reject("non-scalar or wide cast");
      SI.Width = W;
      SI.SrcWidth = SrcW;
      if (!Operand(I->getOperand(0), SI.A))
        return Reject("unsupported operand");
      break;
    }
    case Opcode::Select: {
      const auto *S = cast<SelectInst>(I);
      if (!ScalarWidth(I->getType(), W))
        return Reject("non-scalar or wide select");
      SI.Width = W;
      SI.SrcWidth = 1;
      if (!Operand(S->condition(), SI.A) || !Operand(S->trueValue(), SI.B) ||
          !Operand(S->falseValue(), SI.C))
        return Reject("unsupported operand");
      break;
    }
    case Opcode::Freeze:
      if (!ScalarWidth(I->getType(), W))
        return Reject("non-scalar or wide freeze");
      SI.Width = SI.SrcWidth = W;
      if (!Operand(I->getOperand(0), SI.A))
        return Reject("unsupported operand");
      break;
    default:
      return Reject("instruction outside the sliced subset");
    }

    SI.Dest = uint16_t(Slots.size());
    Slots.push_back({I, SI.Dest});
    SF.Insts.push_back(SI);
  }

  SF.NumSlots = unsigned(Slots.size());
  return SF;
}

//===----------------------------------------------------------------------===//
// Batch execution
//===----------------------------------------------------------------------===//

SlicedResult SlicedFunction::run(const SlicedValue *Args,
                                 uint64_t ActiveMask) const {
  SlicedValue Stack[64];
  std::vector<SlicedValue> Heap;
  SlicedValue *Slots = Stack;
  if (NumSlots > 64) {
    Heap.resize(NumSlots);
    Slots = Heap.data();
  }
  for (unsigned A = 0; A != NumArgs; ++A)
    Slots[A] = Args[A];

  SlicedResult R;

  auto Fetch = [&](const SOperand &O, unsigned W,
                   SlicedValue &Tmp) -> const SlicedValue * {
    switch (O.K) {
    case SOperand::Kind::Slot:
      return &Slots[O.Slot];
    case SOperand::Kind::Const:
      Tmp = SlicedValue();
      Tmp.Width = W;
      constPlanes(O.Const, W, Tmp.Planes);
      return &Tmp;
    case SOperand::Kind::Poison:
      Tmp = SlicedValue();
      Tmp.Width = W;
      Tmp.Poison = ~uint64_t(0);
      return &Tmp;
    case SOperand::Kind::Undef:
      Tmp = SlicedValue();
      Tmp.Width = W;
      Tmp.Undef = ~uint64_t(0);
      return &Tmp;
    }
    return &Tmp;
  };

  /// Per-lane gather/fold/scatter path for operations whose plane form is
  /// not worth the complexity (division, flagged mul/shift). Semantics come
  /// from sem::foldBinLane, so this path cannot drift from the interpreter.
  auto PerLaneFold = [&](const SInst &I, const SlicedValue &A,
                         const SlicedValue &B, uint64_t Act, SlicedValue &O) {
    for (uint64_t M = Act; M;) {
      unsigned J = unsigned(__builtin_ctzll(M));
      M &= M - 1;
      FoldResult FR = foldBinLane(I.Op, I.Flags, A.getLane(J), B.getLane(J),
                                  Config);
      if (FR.UB)
        R.UB |= uint64_t(1) << J;
      else
        O.setLane(J, FR.L);
    }
  };

  for (const SInst &I : Insts) {
    uint64_t Act = ActiveMask & ~R.UB & ~R.NeedScalar;
    if (!Act)
      break;

    SlicedValue TmpA, TmpB, TmpC;
    SlicedValue Out;
    Out.Width = I.Width;

    switch (I.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::LShr:
    case Opcode::AShr:
    case Opcode::UDiv:
    case Opcode::SDiv:
    case Opcode::URem:
    case Opcode::SRem: {
      const SlicedValue &A = *Fetch(I.A, I.SrcWidth, TmpA);
      const SlicedValue &B = *Fetch(I.B, I.SrcWidth, TmpB);
      // Compute uses materialise undef (one oracle choice per use): those
      // lanes leave the batch.
      uint64_t NS = (A.Undef | B.Undef) & Act;
      R.NeedScalar |= NS;
      Act &= ~NS;
      unsigned W = I.Width;

      bool IsDiv = I.Op == Opcode::UDiv || I.Op == Opcode::SDiv ||
                   I.Op == Opcode::URem || I.Op == Opcode::SRem;
      if (IsDiv || (I.Op == Opcode::Mul && I.Flags.any()) ||
          ((I.Op == Opcode::Shl || I.Op == Opcode::LShr ||
            I.Op == Opcode::AShr) &&
           I.Flags.any())) {
        PerLaneFold(I, A, B, Act, Out);
        break;
      }

      // Deferred poison propagates plane-parallel.
      uint64_t PoisonIn = (A.Poison | B.Poison) & Act;
      Out.Poison = PoisonIn;
      uint64_t Conc = Act & ~PoisonIn;

      switch (I.Op) {
      case Opcode::And:
        for (unsigned K = 0; K != W; ++K)
          Out.Planes[K] = A.Planes[K] & B.Planes[K];
        break;
      case Opcode::Or:
        for (unsigned K = 0; K != W; ++K)
          Out.Planes[K] = A.Planes[K] | B.Planes[K];
        break;
      case Opcode::Xor:
        for (unsigned K = 0; K != W; ++K)
          Out.Planes[K] = A.Planes[K] ^ B.Planes[K];
        break;
      case Opcode::Add: {
        uint64_t Carry = addPlanes(A.Planes, B.Planes, W, Out.Planes);
        uint64_t Ovf = 0;
        if (I.Flags.NSW) {
          uint64_t AS = A.Planes[W - 1], BS = B.Planes[W - 1],
                   OS = Out.Planes[W - 1];
          Ovf |= ~(AS ^ BS) & (OS ^ AS);
        }
        if (I.Flags.NUW)
          Ovf |= Carry;
        Out.Poison |= Ovf & Conc;
        break;
      }
      case Opcode::Sub: {
        uint64_t Borrow = subPlanes(A.Planes, B.Planes, W, Out.Planes);
        uint64_t Ovf = 0;
        if (I.Flags.NSW) {
          uint64_t AS = A.Planes[W - 1], BS = B.Planes[W - 1],
                   OS = Out.Planes[W - 1];
          Ovf |= (AS ^ BS) & (OS ^ AS);
        }
        if (I.Flags.NUW)
          Ovf |= Borrow;
        Out.Poison |= Ovf & Conc;
        break;
      }
      case Opcode::Mul:
        mulPlanes(A.Planes, B.Planes, W, Out.Planes);
        break;
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr: {
        // Over-shift first: amount >= W yields undef (legacy) or poison.
        uint64_t WConst[MaxW];
        constPlanes(W, W, WConst);
        uint64_t Over = ~ultPlanes(B.Planes, WConst, W) & Conc;
        if (Config.OverShiftYieldsUndef)
          Out.Undef |= Over;
        else
          Out.Poison |= Over;
        int Dir = I.Op == Opcode::Shl ? 0 : (I.Op == Opcode::LShr ? 1 : 2);
        barrelShift(A.Planes, B.Planes, W, Dir, Out.Planes);
        break;
      }
      default:
        break;
      }
      break;
    }

    case Opcode::ICmp: {
      const SlicedValue &A = *Fetch(I.A, I.SrcWidth, TmpA);
      const SlicedValue &B = *Fetch(I.B, I.SrcWidth, TmpB);
      uint64_t NS = (A.Undef | B.Undef) & Act;
      R.NeedScalar |= NS;
      Act &= ~NS;
      Out.Poison = (A.Poison | B.Poison) & Act;
      unsigned W = I.SrcWidth;
      uint64_t P = 0;
      switch (I.Pred) {
      case ICmpPred::EQ:
        P = ~nePlanes(A.Planes, B.Planes, W);
        break;
      case ICmpPred::NE:
        P = nePlanes(A.Planes, B.Planes, W);
        break;
      case ICmpPred::ULT:
        P = ultPlanes(A.Planes, B.Planes, W);
        break;
      case ICmpPred::ULE:
        P = ~ultPlanes(B.Planes, A.Planes, W);
        break;
      case ICmpPred::UGT:
        P = ultPlanes(B.Planes, A.Planes, W);
        break;
      case ICmpPred::UGE:
        P = ~ultPlanes(A.Planes, B.Planes, W);
        break;
      case ICmpPred::SLT:
        P = sltPlanes(A.Planes, B.Planes, W);
        break;
      case ICmpPred::SLE:
        P = ~sltPlanes(B.Planes, A.Planes, W);
        break;
      case ICmpPred::SGT:
        P = sltPlanes(B.Planes, A.Planes, W);
        break;
      case ICmpPred::SGE:
        P = ~sltPlanes(A.Planes, B.Planes, W);
        break;
      }
      Out.Planes[0] = P;
      break;
    }

    case Opcode::Trunc:
    case Opcode::ZExt:
    case Opcode::SExt: {
      const SlicedValue &A = *Fetch(I.A, I.SrcWidth, TmpA);
      uint64_t NS = A.Undef & Act;
      R.NeedScalar |= NS;
      Act &= ~NS;
      Out.Poison = A.Poison & Act;
      unsigned Low = I.Op == Opcode::Trunc ? I.Width : I.SrcWidth;
      for (unsigned K = 0; K != Low; ++K)
        Out.Planes[K] = A.Planes[K];
      if (I.Op == Opcode::SExt)
        for (unsigned K = Low; K != I.Width; ++K)
          Out.Planes[K] = A.Planes[Low - 1];
      break;
    }

    case Opcode::Select: {
      const SlicedValue &C = *Fetch(I.A, 1, TmpA);
      const SlicedValue &T = *Fetch(I.B, I.Width, TmpB);
      const SlicedValue &F = *Fetch(I.C, I.Width, TmpC);
      // The condition is a compute use; the arms are not.
      uint64_t NS = C.Undef & Act;
      R.NeedScalar |= NS;
      Act &= ~NS;
      uint64_t CondPoison = C.Poison & Act;
      switch (Config.SelectOnPoisonCond) {
      case SelectPoisonCondRule::UB:
        R.UB |= CondPoison;
        Act &= ~CondPoison;
        CondPoison = 0;
        break;
      case SelectPoisonCondRule::Nondet:
        R.NeedScalar |= CondPoison;
        Act &= ~CondPoison;
        CondPoison = 0;
        break;
      case SelectPoisonCondRule::Poison:
        break; // Result is poison on those lanes.
      }
      uint64_t Take = C.Planes[0];
      for (unsigned K = 0; K != I.Width; ++K)
        Out.Planes[K] = (Take & T.Planes[K]) | (~Take & F.Planes[K]);
      Out.Poison = ((Take & T.Poison) | (~Take & F.Poison)) & Act;
      Out.Undef = ((Take & T.Undef) | (~Take & F.Undef)) & Act;
      if (!Config.SelectChosenArmOnly)
        Out.Poison |= ((Take & F.Poison) | (~Take & T.Poison)) & Act;
      Out.Poison |= CondPoison;
      Out.Undef &= ~Out.Poison;
      break;
    }

    case Opcode::Freeze: {
      const SlicedValue &A = *Fetch(I.A, I.Width, TmpA);
      // Freezing poison/undef picks an arbitrary value: an oracle choice.
      uint64_t NS = (A.Poison | A.Undef) & Act;
      R.NeedScalar |= NS;
      Act &= ~NS;
      for (unsigned K = 0; K != I.Width; ++K)
        Out.Planes[K] = A.Planes[K];
      break;
    }

    default:
      frost_unreachable("opcode outside the compiled subset");
    }

    // Keep masks clean outside live lanes: dead-lane planes are garbage and
    // must not read as poison/undef when a later batch consumer inspects
    // them.
    Out.Poison &= Act;
    Out.Undef &= Act;
    Slots[I.Dest] = Out;
  }

  if (HasRet) {
    SlicedValue Tmp;
    R.Ret = *Fetch(RetOp, RetWidth, Tmp);
    R.HasRet = true;
    uint64_t Live = ActiveMask & ~R.UB & ~R.NeedScalar;
    R.Ret.Poison &= Live;
    R.Ret.Undef &= Live;
  }
  R.UB &= ActiveMask;
  R.NeedScalar &= ActiveMask;
  return R;
}
