//===- Eval.h - Shared per-lane evaluation ----------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-lane arithmetic rules of Figure 5, shared between the interpreter
/// and the optimizer's constant folder so they can never diverge.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SEM_EVAL_H
#define FROST_SEM_EVAL_H

#include "ir/Instruction.h"
#include "sem/Config.h"
#include "sem/Domain.h"

namespace frost {
namespace sem {

/// Result of a per-lane computation that can also signal immediate UB.
struct FoldResult {
  bool UB = false;
  const char *Reason = nullptr;
  Lane L;

  static FoldResult ub(const char *Why) { return {true, Why, Lane()}; }
  static FoldResult val(Lane L) { return {false, nullptr, L}; }
};

/// Evaluates one lane of a binary operation under \p Config. Undef lanes
/// must have been materialised by the caller (the constant folder simply
/// refuses to fold undef operands of arithmetic).
FoldResult foldBinLane(Opcode Op, ArithFlags F, const Lane &A, const Lane &B,
                       const SemanticsConfig &Config);

/// Evaluates an icmp predicate on concrete bits.
bool foldPred(ICmpPred P, const BitVec &A, const BitVec &B);

} // namespace sem
} // namespace frost

#endif // FROST_SEM_EVAL_H
