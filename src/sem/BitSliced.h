//===- BitSliced.h - Bit-parallel batch evaluation --------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bit-sliced (bit-parallel) evaluation of straight-line integer functions:
/// up to 64 input tuples are packed into lane-transposed registers and every
/// instruction is stepped once per batch instead of once per tuple. Over the
/// i1-i4 domains the exhaustive checker sweeps, this turns the inner loop of
/// a translation-validation campaign from "64 interpreter runs" into "one
/// pass over the instruction list using word-wide ANDs/XORs/adders".
///
/// Representation ("lane-transposed"): a batch value of width W is W 64-bit
/// planes; bit j of plane i is bit i of lane j's value. Deferred UB travels
/// as two lane masks per value — a poison mask and (legacy configs only) an
/// undef mask — mirroring the Figure 5 semantics exactly: arithmetic
/// propagates the poison mask plane-parallel, nsw/nuw/over-shift conditions
/// are computed as planes, and immediate UB (division corner cases) sets a
/// per-lane UB mask instead of aborting the batch.
///
/// Nondeterminism cannot be batched: a lane whose execution would consume a
/// ChoiceOracle decision in the scalar interpreter (materialising an undef
/// operand at a compute use, freezing a poison/undef lane, a nondet select
/// on a poison condition) is flagged in `NeedScalar` and the caller re-runs
/// just that tuple through the scalar path enumerator. Deterministic lanes
/// have exactly one behaviour, which is what makes the batch verdict exact.
///
/// The sliced subset is a single basic block of scalar-integer instructions
/// (binary arithmetic, icmp, trunc/zext/sext, select, freeze, ret) with all
/// widths <= MaxWidth. `compile` rejects anything else, and the caller falls
/// back to the scalar engine for the whole function — the fallback is a
/// performance event, never a semantic one. See docs/performance.md for the
/// cost model and the measured speedups.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SEM_BITSLICED_H
#define FROST_SEM_BITSLICED_H

#include "ir/Instruction.h"
#include "sem/Config.h"
#include "sem/Domain.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace frost {

class Function;

namespace sem {

/// A batch of up to 64 scalar values of one width, lane-transposed: bit j of
/// Planes[i] is bit i of lane j. Poison/Undef are per-lane masks; a lane
/// flagged there carries no meaningful bits in the planes.
struct SlicedValue {
  /// Widest type the sliced engine evaluates. The checker's exhaustive
  /// domains live at i1-i4; 8 leaves room for zext/sext chains above them.
  static constexpr unsigned MaxWidth = 8;

  unsigned Width = 1;
  uint64_t Planes[MaxWidth] = {};
  uint64_t Poison = 0;
  uint64_t Undef = 0;

  /// Packs one scalar lane (concrete/poison/undef) into bit position \p J.
  void setLane(unsigned J, const Lane &L);

  /// Reads lane \p J back out as a scalar Lane.
  Lane getLane(unsigned J) const;
};

/// Outcome of one batch execution.
struct SlicedResult {
  uint64_t UB = 0;         ///< Lanes whose execution is immediate UB.
  uint64_t NeedScalar = 0; ///< Lanes that hit a nondeterministic choice.
  bool HasRet = false;     ///< False for void returns.
  SlicedValue Ret;         ///< Meaningful only for lanes clear in UB and
                           ///< NeedScalar.
};

/// A function compiled to a slot-indexed instruction list the bit-sliced
/// evaluator can step. Compile once per (function, config), run once per
/// 64-tuple batch.
class SlicedFunction {
public:
  static constexpr unsigned MaxLanes = 64;

  /// Compiles \p F for batch evaluation under \p Config. Returns nullopt —
  /// with \p Why naming the construct — when F is outside the sliced subset
  /// (multiple blocks, memory/calls/vectors/pointers, widths > MaxWidth).
  static std::optional<SlicedFunction> compile(Function &F,
                                               const SemanticsConfig &Config,
                                               std::string *Why = nullptr);

  unsigned numArgs() const { return NumArgs; }
  unsigned argWidth(unsigned A) const { return ArgWidths[A]; }
  /// Instructions executed per lane (the scalar interpreter's fuel cost).
  uint64_t instructionCount() const { return Insts.size() + 1; }

  /// Evaluates the batch: Args[a] holds the packed tuples for argument a,
  /// \p ActiveMask selects the populated lanes (bit j = tuple j present).
  SlicedResult run(const SlicedValue *Args, uint64_t ActiveMask) const;

private:
  /// One evaluated operand: a register slot, or an immediate constant /
  /// poison / undef of the instruction's operand width.
  struct SOperand {
    enum class Kind : uint8_t { Slot, Const, Poison, Undef };
    Kind K = Kind::Poison;
    uint16_t Slot = 0;
    uint64_t Const = 0;
  };

  struct SInst {
    Opcode Op;
    ArithFlags Flags;
    ICmpPred Pred = ICmpPred::EQ;
    uint16_t Dest = 0;
    unsigned Width = 1;    ///< Result width.
    unsigned SrcWidth = 1; ///< Operand width (casts, icmp).
    SOperand A, B, C;      ///< C: select false arm.
  };

  SOperand RetOp;      ///< Valid when HasRet.
  bool HasRet = false;
  unsigned RetWidth = 1;
  unsigned NumArgs = 0;
  std::vector<unsigned> ArgWidths;
  std::vector<SInst> Insts;
  unsigned NumSlots = 0;
  SemanticsConfig Config;
};

} // namespace sem
} // namespace frost

#endif // FROST_SEM_BITSLICED_H
