//===- Domain.cpp - Semantic value domains ----------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "sem/Domain.h"

#include "ir/Type.h"
#include "support/Casting.h"

using namespace frost;
using namespace frost::sem;

std::string Lane::str() const {
  switch (K) {
  case Kind::Concrete:
    return Bits.toSignedString();
  case Kind::Undef:
    return "undef";
  case Kind::Poison:
    return "poison";
  }
  return "?";
}

sem::Value sem::Value::poisonFor(const Type *Ty) {
  unsigned N = 1;
  if (const auto *VT = dyn_cast<VectorType>(Ty))
    N = VT->count();
  return Value(std::vector<Lane>(N, Lane::poison()));
}

sem::Value sem::Value::undefFor(const Type *Ty) {
  unsigned N = 1;
  if (const auto *VT = dyn_cast<VectorType>(Ty))
    N = VT->count();
  return Value(std::vector<Lane>(N, Lane::undef()));
}

std::string sem::Value::str() const {
  if (isScalar())
    return Lanes.front().str();
  std::string S = "<";
  for (unsigned I = 0; I != Lanes.size(); ++I) {
    if (I)
      S += ", ";
    S += Lanes[I].str();
  }
  return S + ">";
}
