//===- Domain.h - Semantic value domains ------------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime value domains for the paper's Figure 5 semantics. A scalar lane
/// is either a concrete bit vector, the poison value, or (in the legacy
/// semantics only) the undef value. Vector values are per-lane, which is the
/// property that makes the Section 5.4 vector-load widening sound.
///
/// The refinement order used by translation validation is:
///
///     concrete c  ⊑  undef  ⊑  poison        (and c ⊑ c)
///
/// i.e. a transformation may replace poison with anything, undef with any
/// concrete value (or undef), and a concrete value only with itself.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SEM_DOMAIN_H
#define FROST_SEM_DOMAIN_H

#include "support/BitVec.h"

#include <string>
#include <vector>

namespace frost {

class Type;

namespace sem {

/// One scalar slot of a runtime value.
struct Lane {
  enum class Kind { Concrete, Undef, Poison };

  Kind K = Kind::Poison;
  BitVec Bits; // Valid only when K == Concrete.

  static Lane concrete(BitVec B) { return {Kind::Concrete, B}; }
  static Lane poison() { return {Kind::Poison, BitVec()}; }
  static Lane undef() { return {Kind::Undef, BitVec()}; }

  bool isConcrete() const { return K == Kind::Concrete; }
  bool isPoison() const { return K == Kind::Poison; }
  bool isUndef() const { return K == Kind::Undef; }

  bool operator==(const Lane &O) const {
    return K == O.K && (!isConcrete() || Bits == O.Bits);
  }

  /// True iff this lane refines \p Src in the deferred-UB order.
  bool refines(const Lane &Src) const {
    if (Src.isPoison())
      return true;
    if (Src.isUndef())
      return !isPoison();
    return isConcrete() && Bits == Src.Bits;
  }

  std::string str() const;
};

/// A runtime value: one lane per vector element, a single lane for scalars.
struct Value {
  std::vector<Lane> Lanes;

  Value() = default;
  explicit Value(Lane L) : Lanes{L} {}
  explicit Value(std::vector<Lane> Ls) : Lanes(std::move(Ls)) {}

  static Value concrete(BitVec B) { return Value(Lane::concrete(B)); }
  static Value poison() { return Value(Lane::poison()); }
  static Value undef() { return Value(Lane::undef()); }
  /// A poison/undef value shaped like \p Ty (per-lane for vectors).
  static Value poisonFor(const Type *Ty);
  static Value undefFor(const Type *Ty);

  bool isScalar() const { return Lanes.size() == 1; }
  const Lane &scalar() const {
    assert(Lanes.size() == 1 && "not a scalar value");
    return Lanes.front();
  }
  Lane &scalar() {
    assert(Lanes.size() == 1 && "not a scalar value");
    return Lanes.front();
  }

  bool anyPoison() const {
    for (const Lane &L : Lanes)
      if (L.isPoison())
        return true;
    return false;
  }
  bool anyUndef() const {
    for (const Lane &L : Lanes)
      if (L.isUndef())
        return true;
    return false;
  }
  bool allConcrete() const { return !anyPoison() && !anyUndef(); }

  bool operator==(const Value &O) const { return Lanes == O.Lanes; }

  /// Lane-wise refinement; requires equal lane counts.
  bool refines(const Value &Src) const {
    if (Lanes.size() != Src.Lanes.size())
      return false;
    for (unsigned I = 0; I != Lanes.size(); ++I)
      if (!Lanes[I].refines(Src.Lanes[I]))
        return false;
    return true;
  }

  std::string str() const;
};

} // namespace sem
} // namespace frost

#endif // FROST_SEM_DOMAIN_H
