//===- Memory.h - Bitwise poison-aware memory -------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 5 memory: a partial map from 32-bit addresses to
/// *bitwise-defined* bytes, where each bit may individually be poison. This
/// per-bit representation is what makes vector-based load widening sound
/// (Section 5.4): a poison bit-field cannot contaminate adjacent fields.
///
/// The ty-down / ty-up meta operations of Figure 5 are implemented by
/// lowerValue / liftValue: lowering poison produces all-poison bits, and
/// lifting a base type with at least one poison bit produces poison, while
/// vectors convert element-wise.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SEM_MEMORY_H
#define FROST_SEM_MEMORY_H

#include "sem/Config.h"
#include "sem/Domain.h"

#include <cstdint>
#include <vector>

namespace frost {

class Type;

namespace sem {

/// State of one bit of memory.
enum class MemBit : uint8_t {
  Zero,
  One,
  Poison,
  Undef,  ///< A deferred-undef bit (legacy semantics only).
  Uninit, ///< Never written; reads as undef (legacy) or poison (proposed).
};

/// A block-structured 32-bit address space with per-bit deferred UB.
class Memory {
public:
  /// Allocates \p SizeBytes of uninitialized memory; returns the base
  /// address (never 0).
  uint32_t allocate(uint32_t SizeBytes);

  /// True iff [Addr, Addr + ceil(SizeBits/8)) lies within one live block.
  bool validRange(uint32_t Addr, unsigned SizeBits) const;

  /// Reads \p SizeBits bits at \p Addr. Returns false (and leaves \p Out
  /// empty) when the range is invalid — immediate UB at the caller.
  bool load(uint32_t Addr, unsigned SizeBits, std::vector<MemBit> &Out) const;

  /// Writes \p Bits at \p Addr; false when the range is invalid.
  bool store(uint32_t Addr, const std::vector<MemBit> &Bits);

  /// All block contents in allocation order, for observational comparison
  /// between executions.
  std::vector<MemBit> snapshot() const;

private:
  struct Block {
    uint32_t Base;
    uint32_t Size; // Bytes.
    std::vector<MemBit> Bits;
  };

  const Block *findBlock(uint32_t Addr, unsigned SizeBits) const;

  std::vector<Block> Blocks;
  uint32_t NextAddr = 0x1000;
};

/// Figure 5's ty-down: value to bit representation. \p Ty gives the shape
/// (element widths for vectors).
std::vector<MemBit> lowerValue(const Value &V, const Type *Ty);

/// Figure 5's ty-up: bit representation to value. Uninit bits read as undef
/// or poison depending on \p Config (Section 5.3).
Value liftValue(const std::vector<MemBit> &Bits, const Type *Ty,
                const SemanticsConfig &Config);

/// Refinement on memory bits: poison refines to anything, undef to any
/// defined bit, concrete only to itself. Uninit is treated like undef
/// (legacy) — both sides of a validation run under one config, so the rule
/// only needs to be consistent.
bool memBitRefines(MemBit Tgt, MemBit Src);

} // namespace sem
} // namespace frost

#endif // FROST_SEM_MEMORY_H
