//===- Config.h - Selectable UB semantics -----------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 3 shows that different parts of LLVM assumed
/// *different* semantics for deferred UB, and Section 4 proposes one fixed
/// choice. SemanticsConfig makes each contested rule selectable so that every
/// inconsistency can be demonstrated by executing the relevant pair of rules,
/// and the proposed semantics is just one configuration point.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SEM_CONFIG_H
#define FROST_SEM_CONFIG_H

namespace frost {
namespace sem {

/// How an instruction reacts to a poison condition / input.
enum class PoisonBranchRule {
  UB,     ///< Branching on poison is immediate UB (proposed semantics; the
          ///< rule GVN needs, Section 3.3).
  Nondet, ///< Branching on poison picks a successor nondeterministically
          ///< (the rule legacy loop unswitching assumed, Section 3.3).
};

enum class SelectPoisonCondRule {
  Poison, ///< Poison condition makes the select result poison (proposed,
          ///< Figure 5).
  UB,     ///< Select on poison is UB (the "select is a branch" reading).
  Nondet, ///< Poison condition picks an arm nondeterministically.
};

/// One complete choice of deferred-UB semantics.
struct SemanticsConfig {
  /// Proposed semantics: treat the undef constant as poison ("remove undef
  /// and use poison instead", Section 4). When false, undef exists and every
  /// *use* may observe a different value (Section 3.1).
  bool UndefIsPoison = true;

  PoisonBranchRule BranchOnPoison = PoisonBranchRule::UB;
  SelectPoisonCondRule SelectOnPoisonCond = SelectPoisonCondRule::Poison;

  /// Proposed: select propagates poison only from the *chosen* arm
  /// (matching phi, Figure 5). When false, poison in either arm poisons the
  /// result (the LangRef reading of Section 3.4 that makes select algebraic).
  bool SelectChosenArmOnly = true;

  /// Legacy: a shift of >= bitwidth places evaluates to undef (Section 2.3);
  /// proposed: poison.
  bool OverShiftYieldsUndef = false;

  /// Legacy: loading uninitialized memory yields undef; proposed: poison
  /// (which is why bit-field stores need a freeze, Section 5.3).
  bool LoadUninitYieldsUndef = false;

  /// The paper's proposed semantics (Section 4).
  static SemanticsConfig proposed() { return SemanticsConfig(); }

  /// The legacy semantics as loop unswitching assumed it: undef exists,
  /// branch on poison is a nondeterministic choice.
  static SemanticsConfig legacyUnswitch() {
    SemanticsConfig C;
    C.UndefIsPoison = false;
    C.BranchOnPoison = PoisonBranchRule::Nondet;
    C.SelectOnPoisonCond = SelectPoisonCondRule::Nondet;
    C.SelectChosenArmOnly = true;
    C.OverShiftYieldsUndef = true;
    C.LoadUninitYieldsUndef = true;
    return C;
  }

  /// The legacy semantics as GVN assumed it: branch on poison is UB (so
  /// observing a poison-feeding branch justifies replacing equals by
  /// equals), but undef still exists.
  static SemanticsConfig legacyGVN() {
    SemanticsConfig C;
    C.UndefIsPoison = false;
    C.BranchOnPoison = PoisonBranchRule::UB;
    C.SelectOnPoisonCond = SelectPoisonCondRule::UB;
    C.OverShiftYieldsUndef = true;
    C.LoadUninitYieldsUndef = true;
    return C;
  }

  /// The LangRef reading of select (either-arm poison propagates), with the
  /// rest as legacyUnswitch. Used to demonstrate the Section 3.4 tension.
  static SemanticsConfig legacyLangRefSelect() {
    SemanticsConfig C = legacyUnswitch();
    C.SelectChosenArmOnly = false;
    return C;
  }
};

} // namespace sem
} // namespace frost

#endif // FROST_SEM_CONFIG_H
