//===- Interp.cpp - Operational interpreter for frost IR ---------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "sem/Interp.h"

#include "sem/Eval.h"

#include "ir/Context.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <set>

using namespace frost;
using namespace frost::sem;

namespace {

/// Lane width of a first-class type (element width for vectors).
unsigned laneWidth(const Type *Ty) {
  if (const auto *VT = dyn_cast<VectorType>(Ty))
    return VT->element()->bitWidth();
  return Ty->bitWidth();
}

/// Collects globals and callees reachable from \p F, depth-first.
void collectGlobals(Function &F, std::set<Function *> &SeenFns,
                    std::vector<const GlobalVariable *> &Globals) {
  if (!SeenFns.insert(&F).second || F.isDeclaration())
    return;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op) {
        frost::Value *V = I->getOperand(Op);
        if (auto *G = dyn_cast<GlobalVariable>(V)) {
          if (std::find(Globals.begin(), Globals.end(), G) == Globals.end())
            Globals.push_back(G);
        } else if (auto *Callee = dyn_cast<Function>(V)) {
          collectGlobals(*Callee, SeenFns, Globals);
        }
      }
}

} // namespace

struct Interpreter::Frame {
  std::map<frost::Value *, sem::Value> Regs;
};

Lane Interpreter::materialize(const Lane &L, unsigned Width) {
  if (!L.isUndef())
    return L;
  return Lane::concrete(Oracle.chooseBits(Width));
}

sem::Value Interpreter::evalRaw(Frame &Fr, frost::Value *Op) {
  switch (Op->getKind()) {
  case frost::Value::Kind::ConstantInt:
    return Value::concrete(cast<ConstantInt>(Op)->value());
  case frost::Value::Kind::Poison:
    return Value::poisonFor(Op->getType());
  case frost::Value::Kind::Undef:
    return Config.UndefIsPoison ? Value::poisonFor(Op->getType())
                                : Value::undefFor(Op->getType());
  case frost::Value::Kind::ConstantVector: {
    const auto *CV = cast<ConstantVector>(Op);
    std::vector<Lane> Lanes;
    for (unsigned I = 0, E = CV->size(); I != E; ++I)
      Lanes.push_back(evalRaw(Fr, CV->element(I)).scalar());
    return Value(std::move(Lanes));
  }
  case frost::Value::Kind::GlobalVariable: {
    const auto *G = cast<GlobalVariable>(Op);
    auto It = GlobalAddrs.find(G);
    assert(It != GlobalAddrs.end() && "global was not pre-allocated");
    return Value::concrete(BitVec(PointerType::AddressBits, It->second));
  }
  case frost::Value::Kind::Argument:
  case frost::Value::Kind::Instruction: {
    auto It = Fr.Regs.find(Op);
    assert(It != Fr.Regs.end() && "read of an unassigned register");
    return It->second;
  }
  case frost::Value::Kind::BasicBlock:
  case frost::Value::Kind::Function:
  case frost::Value::Kind::Placeholder:
    break;
  }
  frost_unreachable("operand kind cannot be evaluated");
}

sem::Value Interpreter::evalForCompute(Frame &Fr, frost::Value *Op) {
  Value V = evalRaw(Fr, Op);
  unsigned W = laneWidth(Op->getType());
  for (Lane &L : V.Lanes)
    L = materialize(L, W);
  return V;
}

uint32_t Interpreter::globalAddress(const GlobalVariable *G) const {
  auto It = GlobalAddrs.find(G);
  return It == GlobalAddrs.end() ? 0 : It->second;
}

ExecResult Interpreter::run(Function &F, const std::vector<Value> &Args) {
  GlobalAddrs.clear();
  Mem = Memory();
  std::set<Function *> SeenFns;
  std::vector<const GlobalVariable *> Globals;
  collectGlobals(F, SeenFns, Globals);
  // A pinned MemLayout may list globals F no longer references; allocate
  // the union (in name order, so addresses stay deterministic) but run the
  // memory window — InitialMem install and FinalMem snapshot — over the
  // pinned list alone.
  if (Opts.MemLayout)
    for (const GlobalVariable *G : *Opts.MemLayout)
      if (std::find(Globals.begin(), Globals.end(), G) == Globals.end())
        Globals.push_back(G);
  std::sort(Globals.begin(), Globals.end(),
            [](const GlobalVariable *A, const GlobalVariable *B) {
              return A->getName() < B->getName();
            });
  for (const GlobalVariable *G : Globals)
    GlobalAddrs[G] = Mem.allocate(G->sizeBytes());
  const std::vector<const GlobalVariable *> &Window =
      Opts.MemLayout ? *Opts.MemLayout : Globals;

  if (Opts.InitialMem) {
    // The window is in name order (callers pin name-ordered lists), so the
    // flat bit vector maps onto it in the same order.
    size_t Pos = 0;
    for (const GlobalVariable *G : Window) {
      size_t Bits = size_t(G->sizeBytes()) * 8;
      std::vector<MemBit> Slice;
      Slice.reserve(Bits);
      for (size_t I = 0; I != Bits; ++I)
        Slice.push_back(Pos < Opts.InitialMem->size()
                            ? (*Opts.InitialMem)[Pos++]
                            : MemBit::Uninit);
      Mem.store(GlobalAddrs[G], Slice);
    }
  }

  FuelLeft = Opts.Fuel;
  std::vector<Value> Trace;
  ExecResult R = callFunction(F, Args, 0, Trace);
  R.Trace = std::move(Trace);
  if (R.ok()) {
    // Observable memory is *global* memory, concatenated in window order —
    // the same layout InitialMem uses. Alloca blocks die at return and are
    // excluded: a pass that deletes a dead alloca (or promotes one to a
    // register) must not perturb the observable snapshot.
    R.FinalMem.clear();
    for (const GlobalVariable *G : Window) {
      std::vector<MemBit> Bits;
      bool OK = Mem.load(GlobalAddrs[G], G->sizeBytes() * 8, Bits);
      assert(OK && "global block vanished during the run");
      (void)OK;
      R.FinalMem.insert(R.FinalMem.end(), Bits.begin(), Bits.end());
    }
  }
  return R;
}

ExecResult Interpreter::callFunction(Function &F,
                                     const std::vector<Value> &Args,
                                     unsigned Depth,
                                     std::vector<Value> &Trace) {
  ExecResult R;
  if (Depth > Opts.MaxCallDepth) {
    R.St = ExecResult::Status::Fuel;
    R.Reason = "call depth limit";
    return R;
  }
  if (F.isDeclaration()) {
    R.St = ExecResult::Status::Error;
    R.Reason = "call to external function @" + F.getName();
    return R;
  }
  assert(Args.size() == F.getNumArgs() && "argument count mismatch");

  Frame Fr;
  for (unsigned I = 0; I != Args.size(); ++I)
    Fr.Regs[F.arg(I)] = Args[I];

  BasicBlock *Cur = F.entry();
  BasicBlock *Prev = nullptr;

  auto UB = [&R](const std::string &Why) {
    R.St = ExecResult::Status::UB;
    R.Reason = Why;
    return R;
  };
  auto Err = [&R](const std::string &Why) {
    R.St = ExecResult::Status::Error;
    R.Reason = Why;
    return R;
  };
  auto Trap = [&R](unsigned Id, const std::string &Why) {
    R.St = ExecResult::Status::Trap;
    R.TrapId = int(Id);
    R.Reason = Why;
    return R;
  };
  auto hasTaint = [](const Value &V) {
    for (const Lane &L : V.Lanes)
      if (!L.isConcrete())
        return true;
    return false;
  };

  while (true) {
    // Phi nodes execute simultaneously on block entry.
    if (Prev) {
      std::vector<std::pair<PhiNode *, Value>> PhiVals;
      for (PhiNode *P : Cur->phis())
        PhiVals.push_back({P, evalRaw(Fr, P->getIncomingValueForBlock(Prev))});
      // Event mode: a poison/undef value flowing across a phi edge is a
      // kind-1 event (the sanitizer instruments it by splitting the edge),
      // checked before any phi assignment takes effect.
      if (Opts.SanOracle)
        for (auto &[P, V] : PhiVals)
          if (hasTaint(V))
            return Trap(1, "tainted phi edge");
      for (auto &[P, V] : PhiVals)
        Fr.Regs[P] = std::move(V);
    }

    BasicBlock *Next = nullptr;
    for (Instruction *I : *Cur) {
      if (isa<PhiNode>(I))
        continue;
      if (FuelLeft == 0) {
        R.St = ExecResult::Status::Fuel;
        R.Reason = "out of fuel";
        return R;
      }
      --FuelLeft;

      // Event mode, check kind 1: any non-freeze instruction executing with
      // a poison/undef operand (raw, pre-materialisation) is an event. This
      // covers select arms, store values, return values, branch and switch
      // conditions, and call arguments uniformly, and consumes no oracle
      // choices — instrumented and oracle runs stay choice-aligned.
      if (Opts.SanOracle && I->getOpcode() != Opcode::Freeze)
        for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op) {
          frost::Value *V = I->getOperand(Op);
          if (isa<BasicBlock>(V) || isa<Function>(V))
            continue;
          if (hasTaint(evalRaw(Fr, V)))
            return Trap(1, std::string("tainted operand of ") +
                               I->getOpcodeName());
        }

      switch (I->getOpcode()) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::UDiv:
      case Opcode::SDiv:
      case Opcode::URem:
      case Opcode::SRem:
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor: {
        Value A = evalForCompute(Fr, I->getOperand(0));
        Value B = evalForCompute(Fr, I->getOperand(1));
        // Event mode: operands are concrete here (kind 1 fired otherwise).
        // Overshift (kind 3) is checked before flag violations (kind 2),
        // matching the instrumented check order; division events are kind 4.
        if (Opts.SanOracle) {
          unsigned W = laneWidth(I->getType());
          for (unsigned L = 0; L != A.Lanes.size(); ++L) {
            if (I->isShift() && B.Lanes[L].Bits.zext() >= W)
              return Trap(3, "overshift");
            FoldResult LR = foldBinLane(I->getOpcode(), I->flags(),
                                        A.Lanes[L], B.Lanes[L], Config);
            if (LR.UB)
              return Trap(4, LR.Reason);
            if (LR.L.isPoison() || LR.L.isUndef())
              return Trap(2, std::string("flag violation on ") +
                                 I->getOpcodeName());
          }
        }
        std::vector<Lane> Lanes;
        for (unsigned L = 0; L != A.Lanes.size(); ++L) {
          FoldResult LR = foldBinLane(I->getOpcode(), I->flags(), A.Lanes[L],
                                      B.Lanes[L], Config);
          if (LR.UB)
            return UB(LR.Reason);
          Lanes.push_back(LR.L);
        }
        Fr.Regs[I] = Value(std::move(Lanes));
        break;
      }
      case Opcode::ICmp: {
        const auto *C = cast<ICmpInst>(I);
        Value A = evalForCompute(Fr, C->lhs());
        Value B = evalForCompute(Fr, C->rhs());
        std::vector<Lane> Lanes;
        for (unsigned L = 0; L != A.Lanes.size(); ++L) {
          if (A.Lanes[L].isPoison() || B.Lanes[L].isPoison())
            Lanes.push_back(Lane::poison());
          else
            Lanes.push_back(Lane::concrete(BitVec(
                1, foldPred(C->pred(), A.Lanes[L].Bits, B.Lanes[L].Bits))));
        }
        Fr.Regs[I] = Value(std::move(Lanes));
        break;
      }
      case Opcode::Trunc:
      case Opcode::ZExt:
      case Opcode::SExt: {
        Value V = evalForCompute(Fr, I->getOperand(0));
        unsigned DstW = laneWidth(I->getType());
        std::vector<Lane> Lanes;
        for (Lane &L : V.Lanes) {
          if (L.isPoison()) {
            Lanes.push_back(Lane::poison());
            continue;
          }
          BitVec B = L.Bits;
          switch (I->getOpcode()) {
          case Opcode::Trunc:
            B = B.truncTo(DstW);
            break;
          case Opcode::ZExt:
            B = B.zextTo(DstW);
            break;
          case Opcode::SExt:
            B = B.sextTo(DstW);
            break;
          default:
            frost_unreachable("not a cast");
          }
          Lanes.push_back(Lane::concrete(B));
        }
        Fr.Regs[I] = Value(std::move(Lanes));
        break;
      }
      case Opcode::BitCast: {
        // Figure 5: reinterpret through the bit representation.
        Value V = evalRaw(Fr, I->getOperand(0));
        std::vector<MemBit> Bits = lowerValue(V, I->getOperand(0)->getType());
        Fr.Regs[I] = liftValue(Bits, I->getType(), Config);
        break;
      }
      case Opcode::Select: {
        const auto *S = cast<SelectInst>(I);
        Value Cond = evalForCompute(Fr, S->condition());
        const Lane &CL = Cond.scalar();
        std::optional<bool> TakeTrue;
        if (CL.isPoison()) {
          switch (Config.SelectOnPoisonCond) {
          case SelectPoisonCondRule::UB:
            return UB("select on poison condition");
          case SelectPoisonCondRule::Poison:
            break; // Result is poison; leave TakeTrue unset.
          case SelectPoisonCondRule::Nondet:
            TakeTrue = Oracle.choose(2) == 0;
            break;
          }
        } else {
          TakeTrue = CL.Bits.isOne();
        }
        if (!TakeTrue) {
          Fr.Regs[I] = Value::poisonFor(I->getType());
          break;
        }
        Value Chosen =
            evalRaw(Fr, *TakeTrue ? S->trueValue() : S->falseValue());
        if (!Config.SelectChosenArmOnly) {
          Value Other =
              evalRaw(Fr, *TakeTrue ? S->falseValue() : S->trueValue());
          for (unsigned L = 0; L != Chosen.Lanes.size(); ++L)
            if (Other.Lanes[L].isPoison())
              Chosen.Lanes[L] = Lane::poison();
        }
        Fr.Regs[I] = std::move(Chosen);
        break;
      }
      case Opcode::Freeze: {
        Value V = evalRaw(Fr, I->getOperand(0));
        unsigned W = laneWidth(I->getType());
        for (Lane &L : V.Lanes)
          if (L.isPoison() || L.isUndef())
            L = Lane::concrete(Oracle.chooseBits(W));
        Fr.Regs[I] = std::move(V);
        break;
      }
      case Opcode::ExtractElement: {
        const auto *E = cast<ExtractElementInst>(I);
        Value V = evalRaw(Fr, E->vector());
        Fr.Regs[I] = Value(V.Lanes[E->index()]);
        break;
      }
      case Opcode::InsertElement: {
        const auto *Ins = cast<InsertElementInst>(I);
        Value V = evalRaw(Fr, Ins->vector());
        Value E = evalRaw(Fr, Ins->element());
        V.Lanes[Ins->index()] = E.scalar();
        Fr.Regs[I] = std::move(V);
        break;
      }
      case Opcode::Alloca: {
        const auto *A = cast<AllocaInst>(I);
        unsigned Bytes = (A->allocatedType()->bitWidth() + 7) / 8;
        uint32_t Addr = Mem.allocate(Bytes);
        Fr.Regs[I] = Value::concrete(BitVec(PointerType::AddressBits, Addr));
        break;
      }
      case Opcode::GEP: {
        const auto *G = cast<GEPInst>(I);
        Value Base = evalForCompute(Fr, G->base());
        Value Idx = evalForCompute(Fr, G->index());
        if (Base.scalar().isPoison() || Idx.scalar().isPoison()) {
          Fr.Regs[I] = Value::poison();
          break;
        }
        unsigned ElemBits = G->pointeeType()->bitWidth();
        uint64_t ElemBytes = (ElemBits + 7) / 8;
        int64_t Offset = Idx.scalar().Bits.sext() *
                         static_cast<int64_t>(ElemBytes);
        BitVec Addr = Base.scalar().Bits.add(
            BitVec(PointerType::AddressBits, static_cast<uint64_t>(Offset)));
        if (G->isInBounds() &&
            !Mem.validRange(static_cast<uint32_t>(Addr.zext()), ElemBits)) {
          // Event mode, kind 5: an out-of-bounds inbounds gep is an event at
          // gep *creation* (matching the poison-at-gep semantics), even if
          // the address is never dereferenced.
          if (Opts.SanOracle)
            return Trap(5, "out-of-bounds inbounds gep");
          Fr.Regs[I] = Value::poison();
          break;
        }
        Fr.Regs[I] = Value::concrete(Addr);
        break;
      }
      case Opcode::Load: {
        Value P = evalForCompute(Fr, I->getOperand(0));
        if (P.scalar().isPoison())
          return UB("load from poison address");
        uint32_t Addr = static_cast<uint32_t>(P.scalar().Bits.zext());
        std::vector<MemBit> Bits;
        if (!Mem.load(Addr, I->getType()->bitWidth(), Bits)) {
          // Event mode, kind 5: out-of-bounds access (checked before the
          // kind-6 uninit check, matching the instrumented check order).
          if (Opts.SanOracle)
            return Trap(5, "out-of-bounds load");
          return UB("load from invalid address");
        }
        if (Opts.SanOracle)
          for (MemBit Bit : Bits)
            if (Bit == MemBit::Uninit)
              return Trap(6, "load of uninitialized memory");
        Fr.Regs[I] = liftValue(Bits, I->getType(), Config);
        break;
      }
      case Opcode::Store: {
        const auto *S = cast<StoreInst>(I);
        Value V = evalRaw(Fr, S->value());
        Value P = evalForCompute(Fr, S->pointer());
        if (P.scalar().isPoison())
          return UB("store to poison address");
        uint32_t Addr = static_cast<uint32_t>(P.scalar().Bits.zext());
        std::vector<MemBit> Bits = lowerValue(V, S->value()->getType());
        if (!Mem.store(Addr, Bits)) {
          if (Opts.SanOracle)
            return Trap(5, "out-of-bounds store");
          return UB("store to invalid address");
        }
        break;
      }
      case Opcode::Call: {
        const auto *C = cast<CallInst>(I);
        Function *Callee = C->callee();
        std::vector<Value> CallArgs;
        for (unsigned A = 0, E = C->getNumArgs(); A != E; ++A)
          CallArgs.push_back(evalRaw(Fr, C->getArg(A)));
        if (Callee->isDeclaration() &&
            Callee->getName().rfind("observe", 0) == 0) {
          for (Value &V : CallArgs)
            Trace.push_back(std::move(V));
          if (!Callee->returnType()->isVoid())
            Fr.Regs[I] = Value::poisonFor(Callee->returnType());
          break;
        }
        ExecResult Sub = callFunction(*Callee, CallArgs, Depth + 1, Trace);
        if (!Sub.ok()) {
          R = std::move(Sub);
          return R;
        }
        if (!Callee->returnType()->isVoid())
          Fr.Regs[I] = *Sub.Ret;
        break;
      }
      case Opcode::Br: {
        const auto *B = cast<BranchInst>(I);
        if (!B->isConditional()) {
          Next = B->dest();
          break;
        }
        Value Cond = evalForCompute(Fr, B->condition());
        const Lane &CL = Cond.scalar();
        if (CL.isPoison()) {
          if (Config.BranchOnPoison == PoisonBranchRule::UB)
            return UB("branch on poison");
          Next = Oracle.choose(2) == 0 ? B->trueDest() : B->falseDest();
        } else {
          Next = CL.Bits.isOne() ? B->trueDest() : B->falseDest();
        }
        break;
      }
      case Opcode::Switch: {
        const auto *S = cast<SwitchInst>(I);
        Value Cond = evalForCompute(Fr, S->condition());
        const Lane &CL = Cond.scalar();
        if (CL.isPoison()) {
          if (Config.BranchOnPoison == PoisonBranchRule::UB)
            return UB("switch on poison");
          uint64_t Pick = Oracle.choose(S->getNumCases() + 1);
          Next = Pick == 0 ? S->defaultDest() : S->caseDest(Pick - 1);
          break;
        }
        Next = S->defaultDest();
        for (unsigned Cs = 0, E = S->getNumCases(); Cs != E; ++Cs)
          if (S->caseValue(Cs)->value() == CL.Bits) {
            Next = S->caseDest(Cs);
            break;
          }
        break;
      }
      case Opcode::Ret: {
        const auto *Rt = cast<ReturnInst>(I);
        R.St = ExecResult::Status::Ok;
        if (Rt->hasValue())
          R.Ret = evalRaw(Fr, Rt->value());
        return R;
      }
      case Opcode::Unreachable:
        if (Opts.SanOracle)
          return Trap(7, "reached unreachable");
        return UB("reached unreachable");
      case Opcode::Trap:
        // Defined behaviour in every mode: execution stops, the trap id is
        // the observable outcome.
        return Trap(cast<TrapInst>(I)->id(), "trap");
      case Opcode::Phi:
        frost_unreachable("phi handled at block entry");
      }

      if (Next)
        break;
    }

    if (!Next)
      return Err("block fell through without a terminator");
    Prev = Cur;
    Cur = Next;
  }
}

std::string ExecResult::str() const {
  std::string S;
  switch (St) {
  case Status::Ok:
    S = "ok";
    if (Ret)
      S += " ret=" + Ret->str();
    break;
  case Status::UB:
    S = "UB(" + Reason + ")";
    break;
  case Status::Trap:
    // Only the id is observable (the reason strings differ between the
    // oracle's event mode and an instrumented `trap` execution).
    S = "trap(" + std::to_string(TrapId) + ")";
    break;
  case Status::Fuel:
    S = "fuel(" + Reason + ")";
    break;
  case Status::Error:
    S = "error(" + Reason + ")";
    break;
  }
  if (!Trace.empty()) {
    S += " trace=[";
    for (unsigned I = 0; I != Trace.size(); ++I)
      S += (I ? ", " : "") + Trace[I].str();
    S += "]";
  }
  return S;
}

uint64_t sem::globalMemoryBits(Function &F) {
  uint64_t Bits = 0;
  for (const GlobalVariable *G : referencedGlobals(F))
    Bits += uint64_t(G->sizeBytes()) * 8;
  return Bits;
}

std::vector<const GlobalVariable *> sem::referencedGlobals(Function &F) {
  std::set<Function *> SeenFns;
  std::vector<const GlobalVariable *> Globals;
  collectGlobals(F, SeenFns, Globals);
  std::sort(Globals.begin(), Globals.end(),
            [](const GlobalVariable *A, const GlobalVariable *B) {
              return A->getName() < B->getName();
            });
  return Globals;
}

uint64_t sem::runConcrete(Function &F, const std::vector<uint64_t> &Args) {
  SemanticsConfig Config = SemanticsConfig::proposed();
  DeterministicOracle Oracle;
  InterpOptions Opts;
  Opts.Fuel = 500u * 1000u * 1000u;
  Interpreter I(Config, Oracle, Opts);
  std::vector<Value> SemArgs;
  for (unsigned A = 0; A != Args.size(); ++A)
    SemArgs.push_back(Value::concrete(
        BitVec(F.arg(A)->getType()->bitWidth(), Args[A])));
  ExecResult R = I.run(F, SemArgs);
  if (!R.ok()) {
    std::fprintf(stderr, "runConcrete(@%s): %s\n", F.getName().c_str(),
                 R.str().c_str());
    frost_unreachable("runConcrete requires a normal termination");
  }
  if (!R.Ret)
    return 0;
  return R.Ret->scalar().isConcrete() ? R.Ret->scalar().Bits.zext() : 0;
}
