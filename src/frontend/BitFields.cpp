//===- BitFields.cpp - Bit-field record lowering --------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "frontend/BitFields.h"

#include "ir/IRBuilder.h"
#include "support/ErrorHandling.h"

using namespace frost;
using namespace frost::frontend;

const BitField &RecordType::field(const std::string &Name) const {
  for (const BitField &F : Fields)
    if (F.Name == Name)
      return F;
  frost_unreachable("no such bit-field");
}

RecordType &RecordType::add(const std::string &Name, unsigned Width) {
  assert(NextOffset + Width <= WordBits && "record word overflow");
  Fields.push_back({Name, NextOffset, Width});
  NextOffset += Width;
  return *this;
}

Value *frontend::emitFieldLoad(IRBuilder &B, Value *WordPtr,
                               const RecordType &Rec, const std::string &Name,
                               BitFieldLowering Lowering) {
  IRContext &Ctx = B.context();
  const BitField &F = Rec.field(Name);

  if (Lowering == BitFieldLowering::Vector) {
    // Lane-wise read: only the field's own bits decide the result.
    Type *VecTy = Ctx.vecTy(Ctx.boolTy(), Rec.WordBits);
    Value *VecPtr = B.bitcast(WordPtr, Ctx.ptrTy(VecTy), Name + ".vp");
    Value *Vec = B.load(VecPtr, Name + ".vec");
    Value *Result = Ctx.getInt(Rec.WordBits, 0);
    for (unsigned I = 0; I != F.Width; ++I) {
      Value *Bit = B.extractElement(Vec, F.Offset + I,
                                    Name + ".x" + std::to_string(I));
      Value *Wide = B.zext(Bit, Ctx.intTy(Rec.WordBits));
      Value *Placed =
          I == 0 ? Wide
                 : B.shl(Wide, Ctx.getInt(Rec.WordBits, I), {},
                         Name + ".p" + std::to_string(I));
      Result = B.or_(Result, Placed);
    }
    return Result;
  }

  Value *Word = B.load(WordPtr, Name + ".word");
  Value *Shifted =
      F.Offset == 0
          ? Word
          : B.lshr(Word, Ctx.getInt(Rec.WordBits, F.Offset), Name + ".sh");
  uint64_t Mask = F.Width >= 64 ? ~0ull : ((1ull << F.Width) - 1);
  return B.and_(Shifted, Ctx.getInt(Rec.WordBits, Mask), Name);
}

void frontend::emitFieldStore(IRBuilder &B, Value *WordPtr,
                              const RecordType &Rec, const std::string &Name,
                              Value *V, BitFieldLowering Lowering) {
  IRContext &Ctx = B.context();
  const BitField &F = Rec.field(Name);
  uint64_t FieldMask = (F.Width >= 64 ? ~0ull : ((1ull << F.Width) - 1))
                       << F.Offset;

  if (Lowering == BitFieldLowering::Vector) {
    // Section 5.3's vector alternative: load the word as <N x i1>, insert
    // the field's bits lane by lane, store it back. Poison stays confined
    // to the lanes actually written.
    Type *VecTy = Ctx.vecTy(Ctx.boolTy(), Rec.WordBits);
    Value *VecPtr = B.bitcast(WordPtr, Ctx.ptrTy(VecTy), Name + ".vp");
    Value *Vec = B.load(VecPtr, Name + ".vec");
    for (unsigned I = 0; I != F.Width; ++I) {
      Value *Bit = B.trunc(
          B.lshr(V, Ctx.getInt(Rec.WordBits, I)), Ctx.boolTy(),
          Name + ".b" + std::to_string(I));
      Vec = B.insertElement(Vec, Bit, F.Offset + I);
    }
    B.store(Vec, VecPtr);
    return;
  }

  // Scalar load/mask/merge/store.
  Value *Word = B.load(WordPtr, Name + ".old");
  if (Lowering == BitFieldLowering::Proposed) {
    // The paper's one-line front-end change: the loaded word may be
    // uninitialized (poison) on the record's first store; freeze it so the
    // merge cannot poison the neighbouring fields.
    Word = B.freeze(Word, Name + ".fr");
  }
  Value *Cleared =
      B.and_(Word, Ctx.getInt(Rec.WordBits, ~FieldMask), Name + ".clear");
  Value *FieldVal = B.and_(
      V, Ctx.getInt(Rec.WordBits, FieldMask >> F.Offset), Name + ".val");
  Value *Placed =
      F.Offset == 0
          ? FieldVal
          : B.shl(FieldVal, Ctx.getInt(Rec.WordBits, F.Offset), {},
                  Name + ".pl");
  Value *Merged = B.or_(Cleared, Placed, Name + ".merge");
  B.store(Merged, WordPtr);
}
