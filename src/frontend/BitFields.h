//===- BitFields.h - Bit-field record lowering ------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front-end substrate for Section 5.3: C-style records whose bit-fields
/// are packed into machine words, with the two lowering strategies the paper
/// contrasts for `mystruct.myfield = foo`:
///
///  - Legacy: load word; mask; merge; store. Under the proposed semantics
///    the *first* store to a record reads uninitialized (poison) memory and
///    the merge poisons every neighbouring field.
///  - Proposed: the same sequence with a single freeze of the loaded word —
///    the paper's one-line Clang change.
///
/// A vector-based lowering is also provided (the paper's "superior
/// alternative"): per-bit lanes cannot contaminate neighbours, so no freeze
/// is needed.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_FRONTEND_BITFIELDS_H
#define FROST_FRONTEND_BITFIELDS_H

#include <string>
#include <vector>

namespace frost {

class IRBuilder;
class Value;

namespace frontend {

/// One field: \p Offset bits from the LSB, \p Width bits wide.
struct BitField {
  std::string Name;
  unsigned Offset;
  unsigned Width;
};

/// A record packed into a single word of \p WordBits (8, 16, or 32).
struct RecordType {
  unsigned WordBits = 32;
  std::vector<BitField> Fields;

  const BitField &field(const std::string &Name) const;
  /// Declares the next field at the current end of the word.
  RecordType &add(const std::string &Name, unsigned Width);

private:
  unsigned NextOffset = 0;
};

/// Which lowering the "compiler" emits for bit-field stores.
enum class BitFieldLowering {
  Legacy,   ///< load/mask/merge/store, no freeze (pre-paper Clang).
  Proposed, ///< Same with freeze of the loaded word (the paper's fix).
  Vector,   ///< <WordBits x i1> load/insert/store (Section 5.3's superior
            ///< alternative: per-element poison, no freeze).
};

/// Emits a read of record field \p Name through \p WordPtr (a pointer to
/// the record's word). Returns the field value as an iWordBits value,
/// zero-extended. The Vector lowering reads lane-wise (Section 5.4's load
/// widening insight): a scalar whole-word load would lift *any* poison bit
/// in the word to poison for the whole value (Figure 5), clobbering reads
/// of initialized fields next to uninitialized ones.
Value *emitFieldLoad(IRBuilder &B, Value *WordPtr, const RecordType &Rec,
                     const std::string &Name,
                     BitFieldLowering Lowering = BitFieldLowering::Proposed);

/// Emits `rec.Name = V` through \p WordPtr using the chosen lowering.
/// \p V must be an iWordBits value; only the low field bits are stored.
void emitFieldStore(IRBuilder &B, Value *WordPtr, const RecordType &Rec,
                    const std::string &Name, Value *V,
                    BitFieldLowering Lowering);

} // namespace frontend
} // namespace frost

#endif // FROST_FRONTEND_BITFIELDS_H
