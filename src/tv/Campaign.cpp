//===- Campaign.cpp - Parallel TV / fuzz campaign engine ---------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "tv/Campaign.h"

#include "ir/Cloning.h"
#include "ir/Context.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/StructuralHash.h"
#include "opt/Passes.h"
#include "opt/Pipeline.h"
#include "parser/Parser.h"
#include "tv/Sanitizer.h"
#include "support/Casting.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "tv/EndToEnd.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <mutex>
#include <sstream>

using namespace frost;
using namespace frost::tv;

uint64_t tv::fingerprintFailure(const std::string &Message) {
  uint64_t H = 1469598103934665603ull; // FNV-1a offset basis.
  for (unsigned char C : Message) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H ? H : 1; // 0 marks an empty cache slot.
}

bool tv::validateFileCampaign(const std::string &Text, const std::string &Path,
                              std::string *Error) {
  auto Fail = [&](std::string Msg) {
    if (Error)
      *Error = Path + ": " + std::move(Msg);
    return false;
  };
  IRContext Ctx;
  Module M(Ctx, "probe");
  ParseResult P = parseModule(Text, M);
  if (!P)
    return Fail(P.Error);
  // Check every defined function against the contract the sharder relies
  // on: its printFunction() text (globals re-emitted, callee bodies not)
  // must parse on its own, because that text is exactly what each worker
  // re-parses inside its private context.
  uint64_t Index = 0;
  for (Function *F : M.functions()) {
    if (F->isDeclaration())
      continue;
    std::string Standalone = printFunction(*F);
    IRContext FnCtx;
    Module FnM(FnCtx, "probe.fn");
    ParseResult FnP = parseModule(Standalone, FnM);
    if (!FnP)
      return Fail("function #" + std::to_string(Index) + " (@" +
                  F->getName() + ") does not re-parse standalone: " +
                  FnP.Error);
    ++Index;
  }
  if (Index == 0)
    return Fail("no functions to verify (the module defines none, so the "
                "campaign would be an empty no-op)");
  return true;
}

//===----------------------------------------------------------------------===//
// CounterexampleCache
//===----------------------------------------------------------------------===//

CounterexampleCache::CounterexampleCache(uint64_t Capacity) {
  uint64_t N = 16;
  while (N < Capacity)
    N <<= 1;
  Slots = std::vector<Slot>(N);
  Mask = N - 1;
}

bool CounterexampleCache::record(uint64_t Fingerprint, uint64_t Index) {
  assert(Fingerprint != 0 && "fingerprint 0 is reserved for empty slots");
  for (uint64_t Probe = 0; Probe <= Mask; ++Probe) {
    Slot &S = Slots[(Fingerprint + Probe) & Mask];
    uint64_t Key = S.Key.load(std::memory_order_acquire);
    if (Key == 0) {
      uint64_t Expected = 0;
      if (S.Key.compare_exchange_strong(Expected, Fingerprint,
                                        std::memory_order_acq_rel)) {
        Key = Fingerprint;
        Distinct.fetch_add(1, std::memory_order_relaxed);
        // CAS-min below publishes the witness; fall through as the inserter.
        uint64_t Cur = S.MinIndex.load(std::memory_order_relaxed);
        while (Index < Cur &&
               !S.MinIndex.compare_exchange_weak(Cur, Index,
                                                 std::memory_order_acq_rel)) {
        }
        return true;
      }
      Key = Expected; // Lost the race; Expected holds the winner's key.
    }
    if (Key == Fingerprint) {
      uint64_t Cur = S.MinIndex.load(std::memory_order_relaxed);
      while (Index < Cur &&
             !S.MinIndex.compare_exchange_weak(Cur, Index,
                                               std::memory_order_acq_rel)) {
      }
      return false;
    }
    // Different key: keep probing.
  }
  // Table full: treat as new so the failure is reported rather than lost.
  // The campaign surfaces the eviction count and warns in its summary.
  stats::add("tv.dedup_evictions");
  return true;
}

const CounterexampleCache::Slot *
CounterexampleCache::find(uint64_t Fingerprint) const {
  for (uint64_t Probe = 0; Probe <= Mask; ++Probe) {
    const Slot &S = Slots[(Fingerprint + Probe) & Mask];
    uint64_t Key = S.Key.load(std::memory_order_acquire);
    if (Key == 0)
      return nullptr;
    if (Key == Fingerprint)
      return &S;
  }
  return nullptr;
}

uint64_t CounterexampleCache::minIndex(uint64_t Fingerprint) const {
  const Slot *S = find(Fingerprint);
  return S ? S->MinIndex.load(std::memory_order_acquire) : ~uint64_t(0);
}

//===----------------------------------------------------------------------===//
// Campaign driver
//===----------------------------------------------------------------------===//

namespace {

/// One work unit: a contiguous slice of the campaign's function space.
/// Exhaustive shards carry the functions as printed IR (produced by the
/// enumerating thread, re-parsed by the checking worker into its own
/// context); random shards carry only seed indices and regenerate.
struct Shard {
  uint64_t Id = 0;
  uint64_t FirstIndex = 0;
  std::vector<std::string> Texts; // Exhaustive source only.
  uint64_t NumFunctions = 0;      // == Texts.size() for exhaustive.
};

/// Everything a shard reports back. Written by exactly one task.
struct ShardResult {
  uint64_t Id = 0;
  uint64_t Functions = 0, Changed = 0;
  uint64_t Valid = 0, Invalid = 0, Inconclusive = 0;
  uint64_t InputsChecked = 0, PathsExplored = 0;
  uint64_t Failures = 0;
  uint64_t SanTrueTrips = 0, SanFalseNegatives = 0, SanFalsePositives = 0;
  std::vector<Counterexample> Counterexamples;
};

/// Appends the campaign's pipeline to \p PM: the textual Opts.Passes when
/// set (validated by the driver), otherwise the standard preset.
void buildCampaignPipeline(PassManager &PM, const CampaignOptions &Opts) {
  if (Opts.Passes.empty()) {
    buildStandardPipeline(PM, Opts.Pipeline);
    return;
  }
  std::string Error;
  bool OK = parsePassPipeline(PM, Opts.Passes, Opts.Pipeline, &Error);
  assert(OK && "campaign pipeline must be validated before launching");
  (void)OK;
}

/// Replays the pipeline pass by pass on a fresh clone of \p Orig and
/// returns the pipelineText() of the first pass whose output no longer
/// refines \p Orig — the pass that introduced the failure. Runs the
/// refinement checker after every IR-changing pass via the after-pass
/// instrumentation hook. Deterministic per function, so blame attribution
/// is identical at any parallelism.
std::string blameFirstFailingPass(Module &M, Function &Orig,
                                  const CampaignOptions &Opts) {
  Function *Replay = cloneFunction(Orig, M, Orig.getName() + ".blame");
  PassManager PM(/*VerifyAfterEachPass=*/false);
  buildCampaignPipeline(PM, Opts);
  std::string Blamed;
  PM.instrumentation().onAfterPass(
      [&](const Pass &P, const Function &,
          const PassInstrumentation::AfterPassInfo &Info) {
        if (!Blamed.empty() || !Info.Changed)
          return;
        TVResult TR = checkRefinement(Orig, *Replay, Opts.Semantics, Opts.TV);
        if (!TR.valid())
          Blamed = P.pipelineText();
      });
  PM.run(*Replay);
  M.eraseFunction(Replay);
  return Blamed;
}

/// Books a finished validation of function \p Index into \p Out, recording
/// a counterexample (with \p Blamed as the culprit line) when it failed.
void bookResult(const TVResult &TR, std::string SrcText, std::string Blamed,
                uint64_t Index, const CampaignOptions &Opts,
                CounterexampleCache &Cache, ShardResult &Out) {
  ++Out.Functions;
  Out.InputsChecked += TR.InputsChecked;
  Out.PathsExplored += TR.PathsExplored;
  if (TR.valid()) {
    ++Out.Valid;
    return;
  }
  bool Inconclusive = !TR.invalid();
  if (Inconclusive)
    ++Out.Inconclusive;
  else
    ++Out.Invalid;
  ++Out.Failures;

  Counterexample CE;
  CE.Index = Index;
  CE.Inconclusive = Inconclusive;
  CE.Function = std::move(SrcText);
  CE.Message = TR.Message;
  CE.BlamedPass = std::move(Blamed);
  CE.Fingerprint = fingerprintFailure(
      (Inconclusive ? std::string("inconclusive: ") : std::string("invalid: ")) +
      TR.Message);
  bool New = Cache.record(CE.Fingerprint, CE.Index);
  // Keep any witness that may still be the canonical (lowest-index) one for
  // its class; the merge step filters the losers deterministically.
  if (Opts.KeepAllCounterexamples || New ||
      Cache.minIndex(CE.Fingerprint) >= CE.Index)
    Out.Counterexamples.push_back(std::move(CE));
}

/// The verdict-reuse hookup for one campaign: the shared cache (campaign-
/// local or the driver's persistent one) plus the precomputed half of every
/// key that does not depend on the function.
struct CacheContext {
  VerdictCache *VC = nullptr; ///< Null disables verdict reuse.
  uint64_t ConfigFP = 0;
};

/// Whether a cached verdict for \p F would be safe to replay anywhere the
/// same canonical form appears. Calls into *defined* functions are the one
/// escape hatch: the canonical form names the callee but not its body, so
/// two modules could bind the same name to different code. Campaign spaces
/// only call observe-style declarations, so in practice everything caches.
bool cacheableFunction(const Function &F) {
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB)
      if (const auto *Call = dyn_cast<CallInst>(I))
        if (Function *Callee = Call->callee())
          if (!Callee->isDeclaration())
            return false;
  return true;
}

/// Rebuilds the TVResult a verification of this member would have produced
/// from its class's cached verdict.
TVResult rehydrate(const CachedVerdict &CV) {
  TVResult TR;
  TR.St = CV.St == CachedVerdict::Valid     ? TVResult::Status::Valid
          : CV.St == CachedVerdict::Invalid ? TVResult::Status::Invalid
                                            : TVResult::Status::Inconclusive;
  TR.Message = CV.Message;
  TR.InputsChecked = CV.InputsChecked;
  TR.PathsExplored = CV.PathsExplored;
  return TR;
}

/// Publishes a freshly verified function's verdict to the campaign cache.
void publishVerdict(const CacheContext &CC, const VerdictKey &Key,
                    std::string Canon, const TVResult &TR, bool Changed,
                    const std::string &Blamed) {
  CachedVerdict CV;
  CV.St = TR.valid()     ? CachedVerdict::Valid
          : TR.invalid() ? CachedVerdict::Invalid
                         : CachedVerdict::Inconclusive;
  CV.Changed = Changed;
  CV.InputsChecked = TR.InputsChecked;
  CV.PathsExplored = TR.PathsExplored;
  CV.Message = TR.Message;
  CV.BlamedPass = Blamed;
  CV.CanonText = std::move(Canon);
  CC.VC->insert(Key, std::move(CV));
}

/// Runs the pipeline over \p F (defined in \p M) and validates the result
/// against its original body (IRPipeline campaigns) or compiles \p F and
/// validates the machine code against the IR semantics (EndToEnd
/// campaigns). The IR path is exactly the per-function work the serial
/// checker in bench/TVBench.cpp performs. With a CacheContext attached,
/// the function is hashed first and a confirmed hit replays the cached
/// verdict under this Index. For IR campaigns a hit still runs the (cheap)
/// pipeline: the Changed flag in report() is per-*member* — a pass may
/// canonicalize one commutative operand order and leave the other alone —
/// so replaying an isomorph's flag would make the changed count depend on
/// which member won the verification race. Only the expensive work
/// (exhaustive refinement + pass blame) is skipped.
void checkOne(Module &M, Function &F, uint64_t Index,
              const CampaignOptions &Opts, const CacheContext &CC,
              CounterexampleCache &Cache, ShardResult &Out) {
  std::string SrcText = printFunction(F);

  std::string Canon;
  VerdictKey Key;
  bool Cacheable = CC.VC && cacheableFunction(F);
  CachedVerdict CV;
  bool Hit = false;
  if (Cacheable) {
    Canon = canonicalForm(F);
    Key.Hash = hashCanonicalText(Canon);
    Key.ConfigFP = CC.ConfigFP;
    Hit = CC.VC->lookup(Key, Canon, CV);
  }

  if (Opts.Kind == CampaignKind::EndToEnd) {
    if (Hit) {
      bookResult(rehydrate(CV), std::move(SrcText), std::move(CV.BlamedPass),
                 Index, Opts, Cache, Out);
      return;
    }
    E2EResult ER = checkEndToEnd(F, Opts.Semantics, Opts.TV);
    if (Cacheable)
      publishVerdict(CC, Key, std::move(Canon), ER.TV, /*Changed=*/false,
                     ER.BlamedStage);
    bookResult(ER.TV, std::move(SrcText), std::move(ER.BlamedStage), Index,
               Opts, Cache, Out);
    return;
  }

  if (Opts.Kind == CampaignKind::Sanitizer) {
    // Instrument a clone on every member — hit or miss — so the changed
    // count and the san.checks_inserted counter stay per-member (and thus
    // byte-identical between cold and warm runs). Only the differential
    // oracles are skipped on a hit.
    Function *San = cloneFunction(F, M, F.getName() + ".san");
    {
      PassManager SanPM(/*VerifyAfterEachPass=*/false);
      SanPM.add(createSanitizePass(Opts.Pipeline));
      AnalysisManager SanAM;
      if (SanPM.run(*San, SanAM))
        ++Out.Changed;
    }
    if (Hit) {
      M.eraseFunction(San);
      bookResult(rehydrate(CV), std::move(SrcText), std::move(CV.BlamedPass),
                 Index, Opts, Cache, Out);
      return;
    }
    SanCheckResult SR = checkSanitizedFunction(M, F, *San, Opts);
    M.eraseFunction(San);
    Out.SanTrueTrips += SR.TrueTrips;
    Out.SanFalseNegatives += SR.FalseNegatives;
    Out.SanFalsePositives += SR.FalsePositives;
    if (Cacheable)
      publishVerdict(CC, Key, std::move(Canon), SR.TV, /*Changed=*/false,
                     SR.BlamedPass);
    bookResult(SR.TV, std::move(SrcText), std::move(SR.BlamedPass), Index,
               Opts, Cache, Out);
    return;
  }

  Function *Orig = cloneFunction(F, M, F.getName() + ".orig");
  PassManager PM(/*VerifyAfterEachPass=*/false);
  buildCampaignPipeline(PM, Opts);
  if (Opts.TimePasses)
    attachTimePassesInstrumentation(PM.instrumentation());
  AnalysisManager AM;
  bool PipelineChanged = PM.run(F, AM);
  if (PipelineChanged)
    ++Out.Changed;
  if (Hit) {
    M.eraseFunction(Orig);
    bookResult(rehydrate(CV), std::move(SrcText), std::move(CV.BlamedPass),
               Index, Opts, Cache, Out);
    return;
  }

  TVResult TR = checkRefinement(*Orig, F, Opts.Semantics, Opts.TV);
  std::string Blamed;
  if (!TR.valid())
    Blamed = blameFirstFailingPass(M, *Orig, Opts);
  M.eraseFunction(Orig);
  if (Cacheable)
    publishVerdict(CC, Key, std::move(Canon), TR, PipelineChanged, Blamed);
  bookResult(TR, std::move(SrcText), std::move(Blamed), Index, Opts, Cache,
             Out);
}

void bumpStats(const ShardResult &R) {
  stats::add("tv.campaign.functions", R.Functions);
  stats::add("tv.campaign.changed", R.Changed);
  stats::add("tv.campaign.valid", R.Valid);
  stats::add("tv.campaign.invalid", R.Invalid);
  stats::add("tv.campaign.inconclusive", R.Inconclusive);
  stats::add("tv.campaign.inputs", R.InputsChecked);
  stats::add("tv.campaign.paths", R.PathsExplored);
  stats::add("tv.campaign.shards_done", 1);
  stats::add("san.true_trips", R.SanTrueTrips);
  stats::add("san.false_negatives", R.SanFalseNegatives);
  stats::add("san.false_positives", R.SanFalsePositives);
  uint64_t Poison = 0, Undef = 0;
  for (const Counterexample &CE : R.Counterexamples) {
    if (CE.Message.find("poison") != std::string::npos)
      ++Poison;
    if (CE.Message.find("undef") != std::string::npos)
      ++Undef;
  }
  stats::add("tv.campaign.poison_hits", Poison);
  stats::add("tv.campaign.undef_hits", Undef);
}

/// Checks every function of one shard inside a private context.
ShardResult processShard(const Shard &S, const CampaignOptions &Opts,
                         const CacheContext &CC, CounterexampleCache &Cache) {
  ShardResult R;
  R.Id = S.Id;
  if (Opts.Source != CampaignSource::Random) {
    // Exhaustive and File shards both carry per-function printed IR.
    for (uint64_t I = 0; I != S.Texts.size(); ++I) {
      IRContext Ctx;
      Module M(Ctx, "shard");
      ParseResult P = parseModule(S.Texts[I], M);
      assert(P && "shard function failed to re-parse");
      (void)P;
      std::vector<Function *> Fns = M.functions();
      assert(Fns.size() == 1 && "shard entry must hold exactly one function");
      checkOne(M, *Fns.front(), S.FirstIndex + I, Opts, CC, Cache, R);
    }
  } else {
    for (uint64_t I = 0; I != S.NumFunctions; ++I) {
      uint64_t Index = S.FirstIndex + I;
      IRContext Ctx;
      Module M(Ctx, "shard");
      fuzz::RandomProgramOptions RP = Opts.Random;
      RP.Seed = Opts.Random.Seed + Index;
      Function *F = fuzz::generateRandomFunction(
          M, "rp" + std::to_string(Index), RP);
      checkOne(M, *F, Index, Opts, CC, Cache, R);
    }
  }
  bumpStats(R);
  return R;
}

std::string semanticsTag(const sem::SemanticsConfig &C) {
  std::string S;
  S += "undef_is_poison=";
  S += C.UndefIsPoison ? '1' : '0';
  S += " branch_on_poison=";
  S += C.BranchOnPoison == sem::PoisonBranchRule::UB ? "ub" : "nondet";
  S += " select_cond=";
  switch (C.SelectOnPoisonCond) {
  case sem::SelectPoisonCondRule::Poison:
    S += "poison";
    break;
  case sem::SelectPoisonCondRule::UB:
    S += "ub";
    break;
  case sem::SelectPoisonCondRule::Nondet:
    S += "nondet";
    break;
  }
  S += " chosen_arm_only=";
  S += C.SelectChosenArmOnly ? '1' : '0';
  S += " overshift_undef=";
  S += C.OverShiftYieldsUndef ? '1' : '0';
  S += " load_uninit_undef=";
  S += C.LoadUninitYieldsUndef ? '1' : '0';
  return S;
}

} // namespace

std::string tv::describeCampaign(const CampaignOptions &Opts) {
  std::string S;
  if (Opts.Source == CampaignSource::Exhaustive) {
    S += "source=exhaustive insts=" + std::to_string(Opts.Enum.NumInsts);
    S += " width=" + std::to_string(Opts.Enum.Width);
    S += " args=" + std::to_string(Opts.Enum.NumArgs);
    if (Opts.Enum.WithMemory)
      S += " mem_bytes=" + std::to_string(Opts.Enum.MemBytes);
    S += " max_functions=" + std::to_string(Opts.MaxFunctions);
  } else if (Opts.Source == CampaignSource::File) {
    S += "source=file path=" + Opts.FilePath;
    S += " max_functions=" + std::to_string(Opts.MaxFunctions);
  } else {
    S += "source=random seed=" + std::to_string(Opts.Random.Seed);
    S += " count=" + std::to_string(Opts.RandomFunctions);
    S += " width=" + std::to_string(Opts.Random.Width);
    S += " statements=" + std::to_string(Opts.Random.Statements);
  }
  S += " shard_size=" + std::to_string(Opts.ShardSize);
  if (Opts.Kind == CampaignKind::EndToEnd) {
    S += " target=end-to-end (codegen+regalloc+machine)";
  } else {
    if (Opts.Kind == CampaignKind::Sanitizer)
      S += " target=sanitizer (instrument+differential)";
    S += std::string(" pipeline=") +
         (Opts.Pipeline == PipelineMode::Proposed ? "proposed" : "legacy");
    if (!Opts.Passes.empty())
      S += " passes=" + Opts.Passes;
  }
  if (Opts.TV.EnumerateMemory)
    S += " mem_configs=" + std::to_string(Opts.TV.MaxMemConfigs);
  S += "\nsemantics: " + semanticsTag(Opts.Semantics);
  return S;
}

uint64_t tv::campaignConfigFingerprint(const CampaignOptions &Opts) {
  // Everything verdict-affecting, rendered as text and FNV-hashed. Jobs,
  // ShardSize, and Engine are deliberately absent (see the declaration);
  // so are the space options (the function itself is the other key half).
  std::string S;
  S += Opts.Kind == CampaignKind::EndToEnd    ? "kind=e2e"
       : Opts.Kind == CampaignKind::Sanitizer ? "kind=sanitizer"
                                              : "kind=ir";
  // The sanitize pass variant follows Pipeline, so the pipeline line keeps
  // sanitizer verdicts from leaking between legacy and proposed modes.
  if (Opts.Kind != CampaignKind::EndToEnd) {
    S += std::string(" pipeline=") +
         (Opts.Pipeline == PipelineMode::Proposed ? "proposed" : "legacy");
    S += " passes=" + (Opts.Passes.empty() ? "default" : Opts.Passes);
  }
  S += "\nsemantics: " + semanticsTag(Opts.Semantics);
  const TVOptions &TV = Opts.TV;
  S += "\ntv: max_paths=" + std::to_string(TV.MaxPathsPerRun);
  S += " max_inputs=" + std::to_string(TV.MaxInputs);
  S += " fuel=" + std::to_string(TV.Fuel);
  S += " poison_inputs=" + std::to_string(TV.IncludePoisonInputs);
  S += " undef_inputs=" + std::to_string(TV.IncludeUndefInputs);
  S += " compare_memory=" + std::to_string(TV.CompareMemory);
  S += " enum_memory=" + std::to_string(TV.EnumerateMemory);
  S += " max_mem_configs=" + std::to_string(TV.MaxMemConfigs);
  if (TV.InitialMem) {
    S += " initmem=";
    for (sem::MemBit B : *TV.InitialMem)
      S += std::to_string((int)B) + ",";
  }
  return fingerprintFailure(S);
}

//===----------------------------------------------------------------------===//
// Result rendering
//===----------------------------------------------------------------------===//

std::string CampaignResult::report() const {
  std::string S;
  S += "functions=" + std::to_string(Functions);
  S += " changed=" + std::to_string(Changed);
  S += " valid=" + std::to_string(Valid);
  S += " invalid=" + std::to_string(Invalid);
  S += " inconclusive=" + std::to_string(Inconclusive);
  S += "\ninputs=" + std::to_string(InputsChecked);
  S += " paths=" + std::to_string(PathsExplored);
  S += " distinct_failures=" + std::to_string(DistinctFailures);
  S += " duplicate_failures=" + std::to_string(DuplicateFailures);
  if (Sanitizer)
    S += " san_checks=" + std::to_string(SanChecksInserted);
  S += "\n";
  for (const Counterexample &CE : Counterexamples) {
    S += "== counterexample #" + std::to_string(CE.Index) +
         (CE.Inconclusive ? " (inconclusive)\n" : " (invalid)\n");
    S += CE.Function;
    if (!S.empty() && S.back() != '\n')
      S += '\n';
    S += "! " + CE.Message + "\n";
    if (!CE.BlamedPass.empty())
      S += "! introduced by: " + CE.BlamedPass + "\n";
  }
  return S;
}

std::string CampaignResult::summary() const {
  char Buf[384];
  std::snprintf(Buf, sizeof(Buf),
                "%llu functions in %.2fs wall / %.2fs cpu (%.1f checks/s, "
                "%llu shards): %llu valid, %llu invalid, %llu inconclusive, "
                "%llu distinct failure(s)",
                (unsigned long long)Functions, WallSeconds, CpuSeconds,
                checksPerSecond(), (unsigned long long)Shards,
                (unsigned long long)Valid, (unsigned long long)Invalid,
                (unsigned long long)Inconclusive,
                (unsigned long long)DistinctFailures);
  std::string S = Buf;
  if (BitslicedBatches || ScalarFallbacks) {
    std::snprintf(Buf, sizeof(Buf),
                  "\nbitsliced: %llu batch(es), %llu scalar fallback(s)",
                  (unsigned long long)BitslicedBatches,
                  (unsigned long long)ScalarFallbacks);
    S += Buf;
  }
  if (MemFunctions || MemConfigs || AliasQueries) {
    std::snprintf(Buf, sizeof(Buf),
                  "\nmemory: %llu function(s) swept over %llu initial-memory "
                  "config(s), %llu alias quer%s",
                  (unsigned long long)MemFunctions,
                  (unsigned long long)MemConfigs,
                  (unsigned long long)AliasQueries,
                  AliasQueries == 1 ? "y" : "ies");
    S += Buf;
  }
  if (Sanitizer) {
    std::snprintf(Buf, sizeof(Buf),
                  "\nsanitizer: %llu check(s) inserted, %llu true trip(s), "
                  "%llu false negative(s), %llu false positive(s)",
                  (unsigned long long)SanChecksInserted,
                  (unsigned long long)SanTrueTrips,
                  (unsigned long long)SanFalseNegatives,
                  (unsigned long long)SanFalsePositives);
    S += Buf;
  }
  if (CacheHits || CacheMisses) {
    std::snprintf(Buf, sizeof(Buf),
                  "\nverdict cache: %llu hit(s) (%llu isomorphic skip(s)), "
                  "%llu miss(es), %llu collision(s)",
                  (unsigned long long)CacheHits,
                  (unsigned long long)IsomorphicSkips,
                  (unsigned long long)CacheMisses,
                  (unsigned long long)CacheCollisions);
    S += Buf;
  }
  if (DedupEvictions) {
    std::snprintf(Buf, sizeof(Buf),
                  "\nwarning: counterexample dedup table saturated (%llu "
                  "eviction(s)); duplicate failures may be over-reported — "
                  "raise DedupCapacity",
                  (unsigned long long)DedupEvictions);
    S += Buf;
  }
  return S;
}

//===----------------------------------------------------------------------===//
// runCampaign
//===----------------------------------------------------------------------===//

CampaignResult tv::runCampaign(const CampaignOptions &Opts) {
  assert(Opts.ShardSize > 0 && "shard size must be positive");
  auto WallStart = std::chrono::steady_clock::now();
  std::clock_t CpuStart = std::clock();

  // Engine counters are process-global; delta them across the campaign so
  // the result reflects this run only.
  uint64_t BatchesBefore = stats::get("tv.bitsliced_batches");
  uint64_t FallbacksBefore = stats::get("tv.scalar_fallbacks");
  uint64_t MemFnsBefore = stats::get("tv.mem_functions");
  uint64_t MemCfgsBefore = stats::get("tv.mem_configs");
  uint64_t AABefore = stats::get("aa.queries");
  uint64_t HitsBefore = stats::get("tv.cache_hits");
  uint64_t MissesBefore = stats::get("tv.cache_misses");
  uint64_t SkipsBefore = stats::get("tv.isomorphic_skips");
  uint64_t CollisionsBefore = stats::get("tv.cache_collisions");
  uint64_t EvictionsBefore = stats::get("tv.dedup_evictions");
  uint64_t SanChecksBefore = stats::get("san.checks_inserted");
  uint64_t SanTripsBefore = stats::get("san.true_trips");
  uint64_t SanFNBefore = stats::get("san.false_negatives");
  uint64_t SanFPBefore = stats::get("san.false_positives");

  // Verdict reuse: an external cache when the driver passed one (warm
  // cross-run reuse), otherwise a campaign-private cache so isomorphs are
  // still deduplicated within the run. A hand-pinned memory layout is not
  // part of the cache key, so it disables reuse entirely.
  std::unique_ptr<VerdictCache> LocalCache;
  CacheContext CC;
  if (Opts.UseVerdictCache && !Opts.TV.MemLayout) {
    if (Opts.Cache) {
      CC.VC = Opts.Cache;
    } else {
      LocalCache = std::make_unique<VerdictCache>();
      CC.VC = LocalCache.get();
    }
    CC.ConfigFP = campaignConfigFingerprint(Opts);
  }

  CounterexampleCache Cache(Opts.DedupCapacity);
  std::vector<ShardResult> Results;
  std::mutex ResultsMutex;
  auto Commit = [&](ShardResult R) {
    std::lock_guard<std::mutex> Lock(ResultsMutex);
    Results.push_back(std::move(R));
  };

  unsigned Jobs = Opts.Jobs ? Opts.Jobs : ThreadPool::defaultThreadCount();
  std::unique_ptr<ThreadPool> Pool;
  if (Jobs > 1)
    Pool = std::make_unique<ThreadPool>(Jobs);

  uint64_t NumShards = 0;
  auto Dispatch = [&](Shard S) {
    S.Id = NumShards++;
    stats::add("tv.campaign.shards_total", 1);
    if (Pool) {
      auto Work = std::make_shared<Shard>(std::move(S));
      Pool->submit(
          [&, Work] { Commit(processShard(*Work, Opts, CC, Cache)); });
    } else {
      Commit(processShard(S, Opts, CC, Cache));
    }
  };

  if (Opts.Source == CampaignSource::Exhaustive) {
    // The enumerating thread prints each function and batches shards; the
    // expensive validation runs in the workers' own contexts.
    IRContext Ctx;
    Module M(Ctx, "campaign");
    Shard Cur;
    uint64_t Index = 0;
    fuzz::enumerateFunctions(M, Opts.Enum, [&](Function &F) {
      if (Index >= Opts.MaxFunctions)
        return false;
      if (Cur.Texts.empty())
        Cur.FirstIndex = Index;
      Cur.Texts.push_back(printFunction(F));
      ++Index;
      if (Cur.Texts.size() == Opts.ShardSize) {
        Cur.NumFunctions = Cur.Texts.size();
        Dispatch(std::move(Cur));
        Cur = Shard();
      }
      return true;
    });
    if (!Cur.Texts.empty()) {
      Cur.NumFunctions = Cur.Texts.size();
      Dispatch(std::move(Cur));
    }
  } else if (Opts.Source == CampaignSource::File) {
    // Each function of the module is one entry, in module order. Functions
    // are re-printed standalone (printFunction re-emits any globals they
    // reference), so global memory is fine but cross-function calls are
    // not; drivers validate with validateFileCampaign before launching.
    std::string Text = Opts.FileText;
    if (Text.empty()) {
      std::ifstream In(Opts.FilePath);
      std::stringstream Buf;
      Buf << In.rdbuf();
      Text = Buf.str();
    }
    IRContext Ctx;
    Module M(Ctx, "campaign");
    ParseResult P = parseModule(Text, M);
    assert(P && "campaign file must be validated before launching");
    (void)P;
    Shard Cur;
    uint64_t Index = 0;
    for (Function *F : M.functions()) {
      if (F->isDeclaration() || Index >= Opts.MaxFunctions)
        continue;
      if (Cur.Texts.empty())
        Cur.FirstIndex = Index;
      Cur.Texts.push_back(printFunction(*F));
      ++Index;
      if (Cur.Texts.size() == Opts.ShardSize) {
        Cur.NumFunctions = Cur.Texts.size();
        Dispatch(std::move(Cur));
        Cur = Shard();
      }
    }
    if (!Cur.Texts.empty()) {
      Cur.NumFunctions = Cur.Texts.size();
      Dispatch(std::move(Cur));
    }
  } else {
    for (uint64_t First = 0; First < Opts.RandomFunctions;
         First += Opts.ShardSize) {
      Shard S;
      S.FirstIndex = First;
      S.NumFunctions =
          std::min<uint64_t>(Opts.ShardSize, Opts.RandomFunctions - First);
      Dispatch(std::move(S));
    }
  }

  if (Pool) {
    Pool->wait();
    Pool.reset();
  }

  CampaignResult R;
  R.Shards = NumShards;
  uint64_t TotalFailures = 0;
  for (const ShardResult &S : Results) {
    R.Functions += S.Functions;
    R.Changed += S.Changed;
    R.Valid += S.Valid;
    R.Invalid += S.Invalid;
    R.Inconclusive += S.Inconclusive;
    R.InputsChecked += S.InputsChecked;
    R.PathsExplored += S.PathsExplored;
    TotalFailures += S.Failures;
    for (const Counterexample &CE : S.Counterexamples) {
      uint64_t Min = Cache.minIndex(CE.Fingerprint);
      // Min == UINT64_MAX: the saturated dedup table never tracked this
      // class — keep the witness (over-report, never drop).
      if (Opts.KeepAllCounterexamples || Min == CE.Index ||
          Min == ~uint64_t(0))
        R.Counterexamples.push_back(CE);
    }
  }
  std::sort(R.Counterexamples.begin(), R.Counterexamples.end(),
            [](const Counterexample &A, const Counterexample &B) {
              return A.Index < B.Index;
            });
  R.BitslicedBatches = stats::get("tv.bitsliced_batches") - BatchesBefore;
  R.ScalarFallbacks = stats::get("tv.scalar_fallbacks") - FallbacksBefore;
  R.MemFunctions = stats::get("tv.mem_functions") - MemFnsBefore;
  R.MemConfigs = stats::get("tv.mem_configs") - MemCfgsBefore;
  R.AliasQueries = stats::get("aa.queries") - AABefore;
  R.CacheHits = stats::get("tv.cache_hits") - HitsBefore;
  R.CacheMisses = stats::get("tv.cache_misses") - MissesBefore;
  R.IsomorphicSkips = stats::get("tv.isomorphic_skips") - SkipsBefore;
  R.CacheCollisions = stats::get("tv.cache_collisions") - CollisionsBefore;
  R.DedupEvictions = stats::get("tv.dedup_evictions") - EvictionsBefore;
  R.Sanitizer = Opts.Kind == CampaignKind::Sanitizer;
  R.SanChecksInserted = stats::get("san.checks_inserted") - SanChecksBefore;
  R.SanTrueTrips = stats::get("san.true_trips") - SanTripsBefore;
  R.SanFalseNegatives = stats::get("san.false_negatives") - SanFNBefore;
  R.SanFalsePositives = stats::get("san.false_positives") - SanFPBefore;
  R.DistinctFailures = Cache.distinct();
  R.DuplicateFailures = TotalFailures - std::min(TotalFailures, R.DistinctFailures);
  stats::add("tv.campaign.dup_failures", R.DuplicateFailures);

  R.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    WallStart)
          .count();
  R.CpuSeconds = double(std::clock() - CpuStart) / CLOCKS_PER_SEC;
  return R;
}
