//===- VerdictCache.h - Incremental TV verdict cache ------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verdict-reuse layer behind `frost-tv --cache-file` and the campaign
/// engine's intra-campaign isomorphism dedup: a sharded, striped-lock
/// in-memory map from (structural hash of the canonical function form,
/// fingerprint of the campaign configuration) to a cached verdict — status,
/// changed flag, the refinement counters, the counterexample message, and
/// the blamed pass/stage. Because every cached field is derived from the
/// *canonical* form (value names never appear in checker messages), a
/// verdict computed for one member of an isomorphism class replays
/// byte-identically for every other member, which is what preserves the
/// campaign engine's byte-identical-report-at-any---jobs contract.
///
/// A hash hit is never trusted blindly: each entry carries its canonical
/// text and lookup() confirms it against the probe's before returning
/// (mismatches count as tv.cache_collisions and fall through to a miss).
///
/// The cache round-trips through a versioned on-disk format (load() /
/// save()); save() writes atomically (temp file + rename) with entries in
/// deterministic order. Corrupt or version-mismatched files fail load()
/// with a diagnostic — drivers treat that as a hard usage error rather
/// than silently ignoring the cache.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_TV_VERDICTCACHE_H
#define FROST_TV_VERDICTCACHE_H

#include "ir/StructuralHash.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace frost {

class Function;

namespace tv {

/// Cache key: what function (canonical form) was validated under which
/// campaign configuration (pipeline text, semantics, TV options — see
/// campaignConfigFingerprint in Campaign.h).
struct VerdictKey {
  StructuralHash Hash;
  uint64_t ConfigFP = 0;

  bool operator==(const VerdictKey &) const = default;
};

/// Everything the campaign engine books per function, in member-independent
/// form: replaying a CachedVerdict for an isomorph produces the same report
/// bytes as verifying it would have.
struct CachedVerdict {
  enum Status : uint8_t { Valid = 0, Invalid = 1, Inconclusive = 2 };

  Status St = Valid;
  /// Pipeline modified the verified member. Informational: the campaign
  /// never replays it (Changed is per-member — passes can canonicalize one
  /// commutative operand order and not another — so each member reruns the
  /// cheap pipeline itself).
  bool Changed = false;
  uint64_t InputsChecked = 0;
  uint64_t PathsExplored = 0;
  std::string Message;           ///< Checker diagnostic (empty when valid).
  std::string BlamedPass;        ///< Culprit pass / backend stage.
  std::string CanonText;         ///< Canonical form, for collision checks.
  bool FromDisk = false;         ///< Loaded by load(), not inserted this run.
};

/// Sharded striped-lock verdict map. Thread-safe; every operation takes
/// only its shard's lock.
class VerdictCache {
public:
  explicit VerdictCache(unsigned ShardCount = 64);

  /// Finds the entry for \p K whose canonical text equals \p CanonText.
  /// Bumps tv.cache_hits (and tv.isomorphic_skips when the entry was
  /// inserted during this process, i.e. not loaded from disk) on success,
  /// tv.cache_misses on failure, and tv.cache_collisions for every
  /// same-key entry whose canonical text differs.
  bool lookup(const VerdictKey &K, const std::string &CanonText,
              CachedVerdict &Out) const;

  /// Inserts a verdict for \p K. First writer wins: if an entry with the
  /// same key and canonical text already exists, the cache is unchanged
  /// (entries for one class are member-independent, so the values agree).
  void insert(const VerdictKey &K, CachedVerdict V);

  /// Total entries across all shards.
  uint64_t size() const;

  //===--------------------------------------------------------------------===//
  // On-disk format (version FileVersion)
  //
  //   frost-verdict-cache v<N>
  //   <entry count>
  //   entry <configfp:16hex> <hash:32hex> <status> <changed> <inputs>
  //         <paths> <canon-len> <msg-len> <blame-len>
  //   <canon bytes>\n<msg bytes>\n<blame bytes>\n
  //===--------------------------------------------------------------------===//

  static constexpr const char *FileMagic = "frost-verdict-cache";
  static constexpr unsigned FileVersion = 1;

  /// Merges the file at \p Path into the cache, marking entries FromDisk.
  /// Returns false (cache unchanged or partially merged is avoided: parsing
  /// is completed into a staging list first) with \p Error set on a
  /// missing, corrupt, or version-mismatched file.
  bool load(const std::string &Path, std::string *Error = nullptr);

  /// Writes every entry to \p Path atomically (support/AtomicFile.h: a
  /// uniquely named temp file — pid + counter, safe under concurrent savers
  /// sharing one destination — fsync'd, then renamed into place), in
  /// deterministic (key-sorted) order. Returns false with \p Error on I/O
  /// failure; no temp file is left behind.
  bool save(const std::string &Path, std::string *Error = nullptr) const;

private:
  struct Entry {
    VerdictKey Key;
    CachedVerdict V;
  };
  struct Shard {
    mutable std::mutex M;
    // Bucketed by the 64-bit mixed key; each bucket holds the (rare)
    // same-mix entries which are disambiguated by full key + canonical
    // text.
    std::unordered_map<uint64_t, std::vector<Entry>> Map;
  };

  static uint64_t mix(const VerdictKey &K) {
    uint64_t H = K.Hash.Lo ^ (K.Hash.Hi * 0x9e3779b97f4a7c15ull) ^
                 (K.ConfigFP * 0xc4ceb9fe1a85ec53ull);
    H ^= H >> 31;
    return H;
  }
  Shard &shardFor(uint64_t Mixed) const {
    return Shards[Mixed % Shards.size()];
  }

  mutable std::vector<Shard> Shards;
};

} // namespace tv
} // namespace frost

#endif // FROST_TV_VERDICTCACHE_H
