//===- Campaign.h - Parallel TV / fuzz campaign engine ----------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver behind the Section 6 methodology at scale: run an optimization
/// pipeline over an entire program space (exhaustively enumerated functions,
/// opt-fuzz style, or a seeded random corpus) and validate every single
/// transformation with the exhaustive refinement checker — in parallel.
///
/// The space is split into deterministic shards: shard k owns the functions
/// with indices [k*ShardSize, (k+1)*ShardSize) in enumeration (or seed)
/// order. Shards are independent work units executed on a work-stealing
/// ThreadPool; each worker validates inside its own IRContext/Module, so no
/// IR state is shared between threads. Counterexamples are deduplicated by a
/// lock-free fingerprint cache (equivalent failures are reported once, with
/// the lowest-index witness as the canonical one), and the final report is
/// sorted by function index — the same campaign produces a byte-identical
/// report whether it ran on 1 job or N.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_TV_CAMPAIGN_H
#define FROST_TV_CAMPAIGN_H

#include "fuzz/Enumerate.h"
#include "fuzz/RandomProgram.h"
#include "opt/Pass.h"
#include "tv/Refinement.h"
#include "tv/VerdictCache.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace frost {
namespace tv {

/// Where the campaign's programs come from.
enum class CampaignSource {
  Exhaustive, ///< fuzz::enumerateFunctions over EnumOptions (opt-fuzz).
  Random,     ///< fuzz::generateRandomFunction over consecutive seeds.
  File,       ///< Each function of a parsed .fr module, in module order.
};

/// What each function is validated against.
enum class CampaignKind {
  IRPipeline, ///< Run the pass pipeline, check output refines input.
  EndToEnd,   ///< Compile through the backend, check the machine refines
              ///< the IR semantics (tv/EndToEnd.h). Pipeline options are
              ///< ignored; counterexamples blame a backend stage instead
              ///< of a pass.
  Sanitizer,  ///< Instrument with sanitize<Pipeline-mode> and run the
              ///< differential oracles of tv/Sanitizer.h: zero false
              ///< negatives / false positives against the interpreter's
              ///< SanOracle ground truth, plus a DESIL-style check that
              ///< the pipeline still refines the instrumented program.
};

/// One full campaign configuration. The tuple (Source, Enum/Random shape,
/// Pipeline, Semantics, TV, MaxFunctions, ShardSize) fully determines the
/// work and its report; Jobs only determines how fast it runs.
struct CampaignOptions {
  CampaignSource Source = CampaignSource::Exhaustive;
  CampaignKind Kind = CampaignKind::IRPipeline;

  /// File source: path of the .fr module whose functions form the space.
  /// Functions are validated standalone (per-function text, with any
  /// globals they reference re-emitted alongside), so they may use global
  /// memory freely but must not call each other.
  std::string FilePath;

  /// File source, in-memory variant: when non-empty, the module text itself
  /// — used by the frost-tvd service, whose requests arrive over a socket
  /// and never touch disk. Takes precedence over FilePath; FilePath then
  /// only labels the campaign in describeCampaign(). Subject to the same
  /// standalone-function contract, enforced by validateFileCampaign().
  std::string FileText;

  unsigned Jobs = 1;         ///< Worker threads; 1 runs inline, serially.
  uint64_t ShardSize = 64;   ///< Functions per shard (work-unit granularity).

  PipelineMode Pipeline = PipelineMode::Proposed; ///< Pipeline under test.

  /// Textual pass pipeline (opt/Pipeline.h grammar), e.g. "gvn,licm".
  /// Empty runs the standard "default" preset. Mode-dependent passes
  /// without an explicit <variant> suffix follow Pipeline. Must parse;
  /// drivers validate with parsePassPipeline() before launching.
  std::string Passes;

  /// Publish per-pass wall time / change accounting to the pm.pass.*
  /// stats counters (rendered by renderTimePassesReport()).
  bool TimePasses = false;

  sem::SemanticsConfig Semantics = sem::SemanticsConfig::proposed();
  TVOptions TV; ///< Refinement-checker knobs (paths, inputs, fuel).

  /// Exhaustive source: the enumerated space, capped at MaxFunctions.
  fuzz::EnumOptions Enum;
  uint64_t MaxFunctions = 1u << 20;

  /// Random source: seeds [Random.Seed, Random.Seed + RandomFunctions).
  fuzz::RandomProgramOptions Random;
  uint64_t RandomFunctions = 128;

  /// Keep every failing witness instead of one per equivalence class.
  bool KeepAllCounterexamples = false;
  /// Slots in the lock-free dedup cache (rounded up to a power of two).
  uint64_t DedupCapacity = 1u << 16;

  /// Verdict reuse (ir/StructuralHash.h + tv/VerdictCache.h): hash each
  /// function's canonical form before checking it; structurally isomorphic
  /// later occurrences replay the first occurrence's verdict under their
  /// own index instead of re-running exhaustive refinement and pass blame.
  /// IR campaigns still run the (cheap) pipeline on every member — the
  /// Changed flag is per-member, not per-class. Replayed verdicts are
  /// member-independent (checker messages never mention value names), so
  /// reports stay byte-identical with the cache on or off, at any Jobs.
  /// Disabled automatically when TV.MemLayout is pinned by hand (the
  /// layout is not part of the cache key).
  bool UseVerdictCache = true;
  /// External cache to reuse verdicts across campaigns/processes (frost-tv
  /// --cache-file). Null gives the campaign a private in-memory cache, so
  /// UseVerdictCache still dedups isomorphs within the run. Must outlive
  /// runCampaign.
  VerdictCache *Cache = nullptr;
};

/// A failing (or inconclusive) validation, attributed to the function's
/// deterministic index in the campaign space.
struct Counterexample {
  uint64_t Index = 0;        ///< Enumeration / seed-order index.
  uint64_t Fingerprint = 0;  ///< Failure equivalence class.
  bool Inconclusive = false; ///< Budget exhaustion rather than refutation.
  std::string Function;      ///< Printed source function.
  std::string Message;       ///< Refinement checker diagnostic.
  /// pipelineText() of the first pass whose output failed refinement
  /// against the source, found by replaying the pipeline pass by pass
  /// (after-pass instrumentation). For end-to-end campaigns, the blamed
  /// backend stage ("isel" / "regalloc" / "sim") instead. Empty when no
  /// single culprit could be identified. Deterministic per function, so it
  /// survives the byte-identical report guarantee.
  std::string BlamedPass;
};

/// Aggregated campaign outcome.
struct CampaignResult {
  uint64_t Functions = 0;     ///< Programs checked.
  uint64_t Changed = 0;       ///< Programs the pipeline modified.
  uint64_t Valid = 0;
  uint64_t Invalid = 0;
  uint64_t Inconclusive = 0;
  uint64_t InputsChecked = 0; ///< Summed over all refinement checks.
  uint64_t PathsExplored = 0;
  uint64_t DistinctFailures = 0;  ///< Failure classes after dedup.
  uint64_t DuplicateFailures = 0; ///< Failures suppressed as duplicates.
  uint64_t Shards = 0;
  /// Engine accounting (deltas of the tv.bitsliced_batches /
  /// tv.scalar_fallbacks counters across this campaign): 64-lane batches
  /// evaluated, and lanes or whole functions that fell back to the scalar
  /// path. Both zero for Engine == TVEngine::Scalar. Timing-adjacent
  /// diagnostics: surfaced by summary(), excluded from report().
  uint64_t BitslicedBatches = 0;
  uint64_t ScalarFallbacks = 0;
  /// Memory-enumeration accounting (deltas of tv.mem_functions /
  /// tv.mem_configs and the aa.* counters across this campaign): functions
  /// validated under an initial-memory sweep, total memory configurations
  /// executed, and alias queries the pipeline issued. Zero unless
  /// TV.EnumerateMemory is on and the space contains memory programs.
  /// Surfaced by summary(), excluded from report().
  uint64_t MemFunctions = 0;
  uint64_t MemConfigs = 0;
  uint64_t AliasQueries = 0;
  /// Verdict-cache accounting (deltas of the tv.cache_* /
  /// tv.isomorphic_skips counters across this campaign). Hits split into
  /// isomorphic skips (first occurrence verified during this run) and
  /// warm hits from a preloaded --cache-file; collisions are same-key
  /// entries rejected by canonical-text confirmation. Jobs-dependent in
  /// the saturated-racy sense (two workers can both miss the same class),
  /// so surfaced by summary() and excluded from report().
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t IsomorphicSkips = 0;
  uint64_t CacheCollisions = 0;
  /// Fingerprints the saturated counterexample dedup table could not track
  /// (delta of tv.dedup_evictions). Non-zero means duplicate failures may
  /// be over-reported; summary() prints a warning. Excluded from report().
  uint64_t DedupEvictions = 0;
  /// Sanitizer campaigns only. ChecksInserted (delta of
  /// san.checks_inserted) counts guards the instrumentation emitted; the
  /// pass runs on every member — verdict-cache hit or miss — so it is
  /// deterministic and part of report(). The oracle tallies (deltas of
  /// san.true_trips / san.false_negatives / san.false_positives) are
  /// skipped for members replayed from the verdict cache, so like the
  /// cache stats they appear in summary() only.
  bool Sanitizer = false;
  uint64_t SanChecksInserted = 0;
  uint64_t SanTrueTrips = 0;
  uint64_t SanFalseNegatives = 0;
  uint64_t SanFalsePositives = 0;
  double WallSeconds = 0;
  double CpuSeconds = 0;

  /// Counterexamples, sorted by Index; deduplicated unless the campaign ran
  /// with KeepAllCounterexamples.
  std::vector<Counterexample> Counterexamples;

  double checksPerSecond() const {
    return WallSeconds > 0 ? double(Functions) / WallSeconds : 0;
  }

  /// Canonical, timing-free rendering. Independent of Jobs: the same
  /// campaign yields byte-identical reports at any parallelism.
  std::string report() const;

  /// Human-oriented one-screen summary including throughput and wall/CPU
  /// time (not byte-stable; excluded from report()).
  std::string summary() const;
};

/// Stable 64-bit fingerprint of a failure diagnostic (FNV-1a; never 0).
uint64_t fingerprintFailure(const std::string &Message);

/// Validates \p Text as a file-campaign space, attributing diagnostics to
/// \p Path: the module must parse, must define at least one function (an
/// empty or declarations-only file would otherwise "pass" as a clean
/// 0-member campaign), and every defined function must re-parse standalone
/// from its printFunction() text — the shard currency of the file source. A
/// function calling a *defined* sibling is the standing violation (shard
/// texts re-emit referenced globals, not callee bodies). Returns false with
/// \p Error naming the path, the failing function's 0-based index among
/// defined functions, and its name. Drivers treat a failure as exit code 2
/// (frost-tv --file) or an error response (frost-tvd) — never as a silently
/// clean campaign.
bool validateFileCampaign(const std::string &Text, const std::string &Path,
                          std::string *Error);

/// One-line description of the campaign's space, pipeline, and semantics
/// (Jobs-independent; suitable as a report header).
std::string describeCampaign(const CampaignOptions &Opts);

/// Stable fingerprint of everything that can change a verdict: campaign
/// kind, pipeline mode and pass text, semantics configuration, and the
/// verdict-affecting TVOptions (paths/inputs/fuel budgets, input classes,
/// memory comparison and enumeration). Excludes Jobs, ShardSize, and
/// Engine (the bit-sliced engine is verdict-identical by construction), so
/// cached verdicts survive re-runs at different parallelism or engine.
/// Half of the VerdictCache key; the structural hash is the other half.
uint64_t campaignConfigFingerprint(const CampaignOptions &Opts);

/// Lock-free fixed-capacity fingerprint -> minimum-witness-index map, used
/// to report each failure equivalence class once. Open addressing with
/// linear probing; insertion claims a slot with a key CAS and lowers the
/// witness index with a CAS-min loop. If the table fills up, further
/// fingerprints are treated as new (over-reporting, never dropping).
class CounterexampleCache {
public:
  explicit CounterexampleCache(uint64_t Capacity);

  /// Records a witness at \p Index. Returns true if the fingerprint was not
  /// seen before (by any thread).
  bool record(uint64_t Fingerprint, uint64_t Index);

  /// Lowest witness index recorded for \p Fingerprint; UINT64_MAX if the
  /// fingerprint is absent (or was dropped by a full table).
  uint64_t minIndex(uint64_t Fingerprint) const;

  uint64_t distinct() const { return Distinct.load(); }

private:
  struct Slot {
    std::atomic<uint64_t> Key{0};
    std::atomic<uint64_t> MinIndex{~uint64_t(0)};
  };

  const Slot *find(uint64_t Fingerprint) const;

  std::vector<Slot> Slots; // Power-of-two size; key 0 marks an empty slot.
  uint64_t Mask;
  std::atomic<uint64_t> Distinct{0};
};

/// Runs the campaign described by \p Opts and returns its aggregated,
/// deterministically ordered result. Also publishes progress to the
/// "tv.campaign.*" counters in support/Stats.h.
CampaignResult runCampaign(const CampaignOptions &Opts);

} // namespace tv
} // namespace frost

#endif // FROST_TV_CAMPAIGN_H
