//===- EndToEnd.h - Translation validation through the backend --*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end refinement checking: the IR interpreter (`sem::Interp`) is the
/// source and the full backend — Codegen (SelectionDAG + type legalization +
/// isel) → RegAlloc → MachineSim — is the target. The paper's §7 pushes
/// freeze through exactly these stages ("we had to teach type legalization
/// and selection-DAG building about freeze"); this mode makes that path a
/// *checked* component instead of trusted demo code.
///
/// The check mirrors `checkRefinement`: over the same exhaustive input
/// domains (including poison/undef argument lanes), every machine behaviour
/// must refine some IR behaviour. Machine nondeterminism comes from undef
/// registers (IMPLICIT_DEF): each input is re-run under several undef-fill
/// patterns, including one that varies per IMPLICIT_DEF execution so a
/// freeze COPY that fails to pin a single concrete value is caught.
/// Poison/undef argument lanes are instantiated with every small concrete
/// bit pattern on the machine side, since a compiled function physically
/// receives *some* bits for them.
///
/// Scope: the frost-risc codegen subset (scalar integers ≤ 32 bits, no
/// calls or vectors). Memory effects are executed but not compared — the
/// refinement obligation covers the returned value and UB only.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_TV_ENDTOEND_H
#define FROST_TV_ENDTOEND_H

#include "tv/Refinement.h"

namespace frost {

class Function;

namespace tv {

/// Outcome of validating one function through the backend.
struct E2EResult {
  TVResult TV;
  /// For an Invalid result, the backend stage the counterexample is blamed
  /// on — "isel" (divergence already present in virtual-register MIR),
  /// "regalloc" (virtual-register MIR is fine, allocated code diverges), or
  /// "sim" (both forms fail to execute: a machine-model gap). Empty
  /// otherwise. Campaign reports render this like a blamed pass.
  std::string BlamedStage;
};

/// True iff \p F is within the frost-risc codegen subset (scalar integer
/// arguments and return ≤ 32 bits, no calls/vectors, no 3-byte memory
/// access widths). On false, \p Why names the offending construct.
/// `compileFunction` aborts on unsupported input, so callers must screen.
bool supportedForCodegen(Function &F, std::string &Why);

/// Checks that the compiled form of \p F refines its IR semantics under
/// \p Config on every enumerated input. Unsupported functions and budget
/// exhaustion yield Inconclusive, never abort.
E2EResult checkEndToEnd(Function &F, const sem::SemanticsConfig &Config,
                        const TVOptions &Opts = TVOptions());

} // namespace tv
} // namespace frost

#endif // FROST_TV_ENDTOEND_H
