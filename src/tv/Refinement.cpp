//===- Refinement.cpp - Exhaustive translation validation --------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "tv/Refinement.h"

#include "ir/Function.h"
#include "sem/BitSliced.h"
#include "support/Casting.h"
#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <optional>

using namespace frost;
using namespace frost::tv;
using namespace frost::sem;

namespace {

/// All argument values to try for a scalar of \p Width bits.
std::vector<Lane> laneDomain(unsigned Width, const SemanticsConfig &Config,
                             const TVOptions &Opts) {
  std::vector<Lane> Dom;
  if (Width <= ChoiceOracle::ExhaustiveWidthLimit) {
    for (uint64_t V = 0; V != (uint64_t(1) << Width); ++V)
      Dom.push_back(Lane::concrete(BitVec(Width, V)));
  } else {
    for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(2)})
      Dom.push_back(Lane::concrete(BitVec(Width, V)));
    Dom.push_back(Lane::concrete(BitVec::allOnes(Width)));
    Dom.push_back(Lane::concrete(BitVec::minSigned(Width)));
    Dom.push_back(Lane::concrete(BitVec::maxSigned(Width)));
  }
  if (Opts.IncludePoisonInputs)
    Dom.push_back(Lane::poison());
  if (Opts.IncludeUndefInputs && !Config.UndefIsPoison)
    Dom.push_back(Lane::undef());
  return Dom;
}

/// Cartesian product of per-argument domains, capped at Opts.MaxInputs.
bool enumerateArgTuples(Function &F, const SemanticsConfig &Config,
                        const TVOptions &Opts,
                        std::vector<std::vector<sem::Value>> &Out) {
  std::vector<std::vector<sem::Value>> Domains;
  for (unsigned A = 0; A != F.getNumArgs(); ++A) {
    Type *Ty = F.arg(A)->getType();
    std::vector<sem::Value> D;
    if (Ty->isInteger()) {
      for (const Lane &L : laneDomain(Ty->bitWidth(), Config, Opts))
        D.push_back(sem::Value(L));
    } else if (const auto *VT = dyn_cast<VectorType>(Ty)) {
      // Per-lane product for short vectors; cap lane combinations.
      std::vector<Lane> LD =
          laneDomain(VT->element()->bitWidth(), Config, Opts);
      std::vector<std::vector<Lane>> Tuples{{}};
      for (unsigned I = 0; I != VT->count(); ++I) {
        std::vector<std::vector<Lane>> NextTuples;
        for (auto &T : Tuples)
          for (const Lane &L : LD) {
            auto NT = T;
            NT.push_back(L);
            NextTuples.push_back(std::move(NT));
            if (NextTuples.size() > Opts.MaxInputs)
              break;
          }
        Tuples = std::move(NextTuples);
      }
      for (auto &T : Tuples)
        D.push_back(sem::Value(T));
    } else {
      return false; // Pointer / unsupported parameter.
    }
    Domains.push_back(std::move(D));
  }

  Out.push_back({});
  for (auto &D : Domains) {
    std::vector<std::vector<sem::Value>> Next;
    for (auto &Tuple : Out)
      for (auto &V : D) {
        auto NT = Tuple;
        NT.push_back(V);
        Next.push_back(std::move(NT));
        if (Next.size() > Opts.MaxInputs)
          break;
      }
    Out = std::move(Next);
  }
  return true;
}

std::string encodeMem(const std::vector<MemBit> &Mem) {
  std::string S;
  S.reserve(Mem.size());
  for (MemBit B : Mem) {
    switch (B) {
    case MemBit::Zero:
      S += '0';
      break;
    case MemBit::One:
      S += '1';
      break;
    case MemBit::Poison:
      S += 'p';
      break;
    case MemBit::Undef:
      S += 'u';
      break;
    case MemBit::Uninit:
      S += '.';
      break;
    }
  }
  return S;
}

std::string encodeBehavior(const ExecResult &R, bool WithMem) {
  std::string S = R.str();
  if (WithMem && R.ok())
    S += " mem=" + encodeMem(R.FinalMem);
  return S;
}

} // namespace

/// Flat-matrix twin of enumerateArgTuples + the repair step below, for
/// all-scalar-integer signatures. Every quirk is mirrored deliberately: the
/// cap check runs after each append and breaks only the inner domain loop,
/// truncation keeps the first MaxInputs rows, and repair overwrites tail
/// rows (never row 0). Cross-engine parity tests pin this equivalence.
bool tv::enumerateInputLanes(Function &F, const SemanticsConfig &Config,
                             const TVOptions &Opts,
                             std::vector<sem::Lane> &Flat, unsigned &NumArgs) {
  Flat.clear();
  NumArgs = F.getNumArgs();
  std::vector<std::vector<Lane>> Domains;
  for (unsigned A = 0; A != NumArgs; ++A) {
    Type *Ty = F.arg(A)->getType();
    if (!Ty->isInteger())
      return false;
    Domains.push_back(laneDomain(Ty->bitWidth(), Config, Opts));
  }

  // Cartesian product, row-major, first argument varying slowest. Rows
  // counts tuples; the matrix for a prefix of A arguments has stride A.
  size_t Rows = 1;
  for (unsigned A = 0; A != NumArgs; ++A) {
    const std::vector<Lane> &D = Domains[A];
    std::vector<Lane> Next;
    Next.reserve(std::min<size_t>(Rows * D.size(), Opts.MaxInputs + 1) *
                 (A + 1));
    size_t NewRows = 0;
    for (size_t R = 0; R != Rows; ++R) {
      for (const Lane &L : D) {
        Next.insert(Next.end(), Flat.begin() + R * A, Flat.begin() + R * A + A);
        Next.push_back(L);
        if (++NewRows > Opts.MaxInputs)
          break; // Matches enumerateArgTuples: inner loop only.
      }
    }
    Flat = std::move(Next);
    Rows = NewRows;
  }

  if (Rows <= Opts.MaxInputs || NumArgs == 0)
    return true;
  Rows = Opts.MaxInputs;
  Flat.resize(Rows * NumArgs);

  // Special-lane repair, mirroring enumerateInputTuples (see comment there).
  std::vector<std::pair<unsigned, Lane>> Repair;
  for (unsigned A = 0; A != NumArgs; ++A) {
    auto Missing = [&](Lane::Kind K) {
      for (size_t R = 0; R != Rows; ++R)
        if (Flat[R * NumArgs + A].K == K)
          return false;
      return true;
    };
    if (Opts.IncludePoisonInputs && Missing(Lane::Kind::Poison))
      Repair.push_back({A, Lane::poison()});
    if (Opts.IncludeUndefInputs && !Config.UndefIsPoison &&
        Missing(Lane::Kind::Undef))
      Repair.push_back({A, Lane::undef()});
  }
  size_t Slot = Rows;
  for (auto &[A, L] : Repair) {
    size_t R;
    if (Slot > 1) {
      R = --Slot; // Keep row 0: it seeds the repairs.
    } else {
      R = Rows++;
      Flat.resize(Rows * NumArgs);
    }
    for (unsigned I = 0; I != NumArgs; ++I)
      Flat[R * NumArgs + I] = Flat[I]; // Row 0's lanes.
    Flat[R * NumArgs + A] = L;
  }
  return true;
}

/// Cartesian product with the MaxInputs cap, plus truncation-proof coverage
/// of the per-argument poison/undef lanes (see header).
bool tv::enumerateInputTuples(Function &F, const SemanticsConfig &Config,
                              const TVOptions &Opts,
                              std::vector<std::vector<sem::Value>> &Out) {
  Out.clear();

  // All-scalar signatures (the overwhelmingly common case) go through the
  // flat-lane core so both engines consume one enumeration order.
  {
    std::vector<Lane> Flat;
    unsigned NumArgs;
    if (enumerateInputLanes(F, Config, Opts, Flat, NumArgs)) {
      size_t Rows = NumArgs ? Flat.size() / NumArgs : 1;
      Out.reserve(Rows);
      for (size_t R = 0; R != Rows; ++R) {
        std::vector<sem::Value> Tuple;
        Tuple.reserve(NumArgs);
        for (unsigned A = 0; A != NumArgs; ++A)
          Tuple.push_back(sem::Value(Flat[R * NumArgs + A]));
        Out.push_back(std::move(Tuple));
      }
      return true;
    }
  }

  if (!enumerateArgTuples(F, Config, Opts, Out))
    return false;
  if (Out.size() <= Opts.MaxInputs || Out.empty())
    return true;
  Out.resize(Opts.MaxInputs);

  // The product varies the first argument slowest and laneDomain appends
  // the poison/undef lanes last, so truncation starves the *early*
  // arguments of their special lanes first. Re-inject one tuple per missing
  // (argument, special-lane) pair — the argument gets the special lane, all
  // others the first (concrete) value of their domain, i.e. the values of
  // the untruncated first tuple — overwriting tuples from the tail, the
  // most redundant region of the truncated product.
  std::vector<std::vector<sem::Value>> Repair;
  for (unsigned A = 0; A != F.getNumArgs(); ++A) {
    if (!F.arg(A)->getType()->isInteger())
      continue; // Vector lanes are covered by the per-lane product above.
    auto Missing = [&](Lane::Kind K) {
      for (const auto &Tuple : Out)
        if (Tuple[A].isScalar() && Tuple[A].scalar().K == K)
          return false;
      return true;
    };
    auto MakeTuple = [&](Lane L) {
      auto T = Out.front();
      T[A] = sem::Value(L);
      return T;
    };
    if (Opts.IncludePoisonInputs && Missing(Lane::Kind::Poison))
      Repair.push_back(MakeTuple(Lane::poison()));
    if (Opts.IncludeUndefInputs && !Config.UndefIsPoison &&
        Missing(Lane::Kind::Undef))
      Repair.push_back(MakeTuple(Lane::undef()));
  }
  size_t Slot = Out.size();
  for (auto &T : Repair) {
    if (Slot > 1)
      Out[--Slot] = std::move(T); // Keep slot 0: it seeds the repairs.
    else
      Out.push_back(std::move(T));
  }
  return true;
}

/// All behaviours of one function on one input, deduplicated. Returns false
/// if a Fuel/Error result or path-budget exhaustion makes the set
/// unreliable.
bool tv::collectBehaviors(Function &F, const std::vector<sem::Value> &Args,
                          const SemanticsConfig &Config, const TVOptions &Opts,
                          std::vector<ExecResult> &Out, uint64_t &Paths,
                          std::string &Why) {
  Out.clear();
  bool Reliable = true;
  PathEnumerator E;
  bool Complete = E.enumerate(
      [&](ChoiceOracle &Oracle) {
        InterpOptions IOpts;
        IOpts.Fuel = Opts.Fuel;
        IOpts.InitialMem = Opts.InitialMem;
        IOpts.MemLayout = Opts.MemLayout;
        Interpreter I(Config, Oracle, IOpts);
        ExecResult R = I.run(F, Args);
        if (R.St == ExecResult::Status::Fuel ||
            R.St == ExecResult::Status::Error) {
          Reliable = false;
          Why = "execution did not finish: " + R.str();
          return false;
        }
        Out.push_back(std::move(R));
        return true;
      },
      Opts.MaxPathsPerRun);
  Paths += E.pathsExplored();
  if (!Complete) {
    Why = "path budget exhausted";
    return false;
  }
  return Reliable;
}

bool tv::behaviorRefines(const ExecResult &Tgt, const ExecResult &Src,
                         bool WithMem) {
  if (Src.ub())
    return true;
  if (Tgt.ub())
    return false;
  // A trap is defined behaviour: it refines only a source trap with the
  // same id, and vice versa. Observations made before the trap must still
  // refine pointwise; final memory is never part of a trapping behaviour
  // (the interpreter only snapshots it on a normal return).
  if (Src.trapped() != Tgt.trapped())
    return false;
  if (Src.trapped()) {
    if (Src.TrapId != Tgt.TrapId)
      return false;
    if (Src.Trace.size() != Tgt.Trace.size())
      return false;
    for (unsigned I = 0; I != Src.Trace.size(); ++I)
      if (!Tgt.Trace[I].refines(Src.Trace[I]))
        return false;
    return true;
  }
  // Returned value.
  if (Src.Ret.has_value() != Tgt.Ret.has_value())
    return false;
  if (Src.Ret && !Tgt.Ret->refines(*Src.Ret))
    return false;
  // Observation trace: pointwise refinement, same length.
  if (Src.Trace.size() != Tgt.Trace.size())
    return false;
  for (unsigned I = 0; I != Src.Trace.size(); ++I)
    if (!Tgt.Trace[I].refines(Src.Trace[I]))
      return false;
  // Final memory, bitwise.
  if (WithMem) {
    if (Src.FinalMem.size() != Tgt.FinalMem.size())
      return false;
    for (unsigned I = 0; I != Src.FinalMem.size(); ++I)
      if (!memBitRefines(Tgt.FinalMem[I], Src.FinalMem[I]))
        return false;
  }
  return true;
}

std::string tv::describeInput(const std::vector<sem::Value> &Args) {
  std::string S = "(";
  for (unsigned I = 0; I != Args.size(); ++I)
    S += (I ? ", " : "") + Args[I].str();
  return S + ")";
}

namespace {

enum class OneInputStatus { Pass, Fail, Inconclusive };

/// The scalar engine's per-input loop body, shared verbatim by both engines
/// so their messages and counters cannot drift. On Pass, Result is
/// untouched except PathsExplored (the caller bumps InputsChecked); on
/// Fail/Inconclusive, Result carries the final status and message.
OneInputStatus checkOneInput(Function &Src, Function &Tgt,
                             const std::vector<sem::Value> &Args,
                             const SemanticsConfig &Config,
                             const TVOptions &Opts, TVResult &Result) {
  std::vector<ExecResult> SrcB, TgtB;
  std::string Why;
  if (!tv::collectBehaviors(Src, Args, Config, Opts, SrcB,
                            Result.PathsExplored, Why) ||
      !tv::collectBehaviors(Tgt, Args, Config, Opts, TgtB,
                            Result.PathsExplored, Why)) {
    Result.St = TVResult::Status::Inconclusive;
    Result.Message = "input " + tv::describeInput(Args) + ": " + Why;
    return OneInputStatus::Inconclusive;
  }

  // Source UB on this input permits any target behaviour.
  bool SrcHasUB = std::any_of(SrcB.begin(), SrcB.end(),
                              [](const ExecResult &R) { return R.ub(); });
  for (const ExecResult &T : TgtB) {
    if (SrcHasUB)
      break;
    bool Refined = std::any_of(SrcB.begin(), SrcB.end(),
                               [&](const ExecResult &S) {
                                 return tv::behaviorRefines(
                                     T, S, Opts.CompareMemory);
                               });
    if (!Refined) {
      Result.St = TVResult::Status::Invalid;
      Result.Message = "input " + tv::describeInput(Args) +
                       ": target behaviour " +
                       encodeBehavior(T, Opts.CompareMemory) +
                       " refines no source behaviour; source has " +
                       std::to_string(SrcB.size()) +
                       " behaviour(s), e.g. " +
                       encodeBehavior(SrcB.front(), Opts.CompareMemory);
      return OneInputStatus::Fail;
    }
  }
  return OneInputStatus::Pass;
}

/// Lanes (within \p Clean) where the target batch result fails to refine
/// the source batch result. Plane bits of poison/undef/UB lanes are garbage,
/// so every term is masked down to the lanes where it is meaningful.
uint64_t failMask(const SlicedResult &S, const SlicedResult &T,
                  uint64_t Clean) {
  // Target UB refines nothing but source UB; source UB permits anything.
  uint64_t Fail = T.UB & ~S.UB;
  uint64_t BothOk = Clean & ~S.UB & ~T.UB;
  if (S.HasRet) {
    uint64_t NE = 0;
    for (unsigned I = 0; I != S.Ret.Width; ++I)
      NE |= S.Ret.Planes[I] ^ T.Ret.Planes[I];
    uint64_t SP = S.Ret.Poison, SU = S.Ret.Undef;
    uint64_t TP = T.Ret.Poison, TU = T.Ret.Undef;
    // concrete ⊑ undef ⊑ poison: a concrete source demands equal concrete
    // bits; an undef source forbids only poison; a poison source permits
    // anything.
    uint64_t Mismatch = (~SP & ~SU & (TP | TU | NE)) | (SU & TP);
    Fail |= Mismatch & BothOk;
  }
  return Fail & Clean;
}

/// The bit-sliced engine. Returns nullopt when the function pair is outside
/// the sliced subset (the caller falls back to the scalar loop and accounts
/// the fallback). The deterministic-lane fast path asserts the scalar
/// invariant it relies on: one oracle path per run, so a clean lane
/// contributes exactly 2 to PathsExplored and 1 to InputsChecked; lanes
/// flagged NeedScalar or failing re-run through checkOneInput, which makes
/// counters and messages scalar-identical by construction.
std::optional<TVResult> checkBitSliced(Function &Src, Function &Tgt,
                                       const SemanticsConfig &Config,
                                       const TVOptions &Opts) {
  std::string Why;
  std::optional<SlicedFunction> SF = SlicedFunction::compile(Src, Config, &Why);
  if (!SF)
    return std::nullopt;
  std::optional<SlicedFunction> TF = SlicedFunction::compile(Tgt, Config, &Why);
  if (!TF)
    return std::nullopt;
  // The scalar engine would burn fuel / path budget on these; keep that
  // observable behaviour by deferring to it.
  if (SF->instructionCount() > Opts.Fuel ||
      TF->instructionCount() > Opts.Fuel || Opts.MaxPathsPerRun < 1)
    return std::nullopt;

  std::vector<Lane> Flat;
  unsigned NumArgs;
  if (!tv::enumerateInputLanes(Src, Config, Opts, Flat, NumArgs))
    return std::nullopt; // Unreachable post-compile; belt and braces.
  size_t Rows = NumArgs ? Flat.size() / NumArgs : 1;

  TVResult Result;
  std::vector<SlicedValue> Packed(NumArgs);
  auto MakeArgs = [&](size_t Row) {
    std::vector<sem::Value> Args;
    Args.reserve(NumArgs);
    for (unsigned A = 0; A != NumArgs; ++A)
      Args.push_back(sem::Value(Flat[Row * NumArgs + A]));
    return Args;
  };

  for (size_t Base = 0; Base < Rows; Base += SlicedFunction::MaxLanes) {
    unsigned N = unsigned(std::min<size_t>(SlicedFunction::MaxLanes,
                                           Rows - Base));
    uint64_t Active = N == 64 ? ~uint64_t(0) : ((uint64_t(1) << N) - 1);
    for (unsigned A = 0; A != NumArgs; ++A) {
      Packed[A] = SlicedValue();
      Packed[A].Width = SF->argWidth(A);
      for (unsigned J = 0; J != N; ++J)
        Packed[A].setLane(J, Flat[(Base + J) * NumArgs + A]);
    }
    SlicedResult SR = SF->run(Packed.data(), Active);
    SlicedResult TR = TF->run(Packed.data(), Active);
    stats::add("tv.bitsliced_batches");

    uint64_t Fallback = (SR.NeedScalar | TR.NeedScalar) & Active;
    uint64_t Fail = failMask(SR, TR, Active & ~Fallback);
    if (!(Fallback | Fail)) {
      // Whole batch clean and deterministic: 2 runs of 1 path per tuple.
      Result.InputsChecked += N;
      Result.PathsExplored += 2 * uint64_t(N);
      continue;
    }
    // Walk lanes in enumeration order so the first failing input matches
    // the scalar engine's.
    for (unsigned J = 0; J != N; ++J) {
      uint64_t Bit = uint64_t(1) << J;
      if (Fallback & Bit) {
        stats::add("tv.scalar_fallbacks");
        OneInputStatus S =
            checkOneInput(Src, Tgt, MakeArgs(Base + J), Config, Opts, Result);
        if (S != OneInputStatus::Pass)
          return Result;
        ++Result.InputsChecked;
      } else if (Fail & Bit) {
        OneInputStatus S =
            checkOneInput(Src, Tgt, MakeArgs(Base + J), Config, Opts, Result);
        // A lane the batch flags as failing must fail the scalar check too;
        // anything else is an engine bug. Degrade to the scalar verdict so
        // a hypothetical mask bug could only cost time, never correctness.
        assert(S != OneInputStatus::Pass &&
               "bit-sliced failure not reproduced by the scalar engine");
        if (S != OneInputStatus::Pass)
          return Result;
        ++Result.InputsChecked;
      } else {
        Result.InputsChecked += 1;
        Result.PathsExplored += 2;
      }
    }
  }

  Result.St = TVResult::Status::Valid;
  return Result;
}

} // namespace

namespace {

/// One validation under a single (fixed or Uninit) initial memory.
TVResult checkRefinementFixedMem(Function &Src, Function &Tgt,
                                 const SemanticsConfig &Config,
                                 const TVOptions &Opts) {
  TVResult Result;

  // Memory-carrying runs never reach the bit-sliced engine (it models
  // registers only); keep its fallback accounting identical to any other
  // out-of-subset pair.
  if (Opts.Engine == TVEngine::BitSliced) {
    if (!Opts.InitialMem) {
      if (std::optional<TVResult> R = checkBitSliced(Src, Tgt, Config, Opts))
        return *R;
    }
    // Outside the sliced subset: the whole pair runs scalar.
    stats::add("tv.scalar_fallbacks");
  }

  std::vector<std::vector<sem::Value>> Inputs;
  if (!enumerateInputTuples(Src, Config, Opts, Inputs)) {
    Result.Message = "unsupported parameter type";
    return Result;
  }

  for (const auto &Args : Inputs) {
    OneInputStatus S = checkOneInput(Src, Tgt, Args, Config, Opts, Result);
    if (S != OneInputStatus::Pass)
      return Result;
    ++Result.InputsChecked;
  }

  Result.St = TVResult::Status::Valid;
  return Result;
}

/// The initial-memory sweep: all-Uninit first (so reports with memory
/// enumeration disabled stay byte-identical to reports where the function
/// simply touches no globals), then uniform patterns, then per-byte mixed
/// poison — the configuration that distinguishes "smears poison over the
/// whole byte" bugs from benign all-poison inputs. Empty vector = Uninit.
std::vector<std::vector<MemBit>> memoryConfigs(uint64_t Bits,
                                               const SemanticsConfig &Config,
                                               uint64_t Cap) {
  std::vector<std::vector<MemBit>> Configs;
  Configs.push_back({}); // All-Uninit (the no-InitialMem run).
  Configs.push_back(std::vector<MemBit>(Bits, MemBit::Zero));
  Configs.push_back(std::vector<MemBit>(Bits, MemBit::One));
  Configs.push_back(std::vector<MemBit>(Bits, MemBit::Poison));
  if (!Config.UndefIsPoison)
    Configs.push_back(std::vector<MemBit>(Bits, MemBit::Undef));
  // One poison bit per byte, the rest concrete zero: catches rewrites that
  // round-trip bytes through a register, which poisons *every* bit of a
  // byte holding any poison (Figure 5's ty-up).
  {
    std::vector<MemBit> Mixed(Bits, MemBit::Zero);
    for (uint64_t B = 0; B < Bits; B += 8)
      Mixed[B] = MemBit::Poison;
    Configs.push_back(std::move(Mixed));
  }
  // The same pattern over undef bits, for legacy configs.
  if (!Config.UndefIsPoison) {
    std::vector<MemBit> Mixed(Bits, MemBit::Zero);
    for (uint64_t B = 0; B < Bits; B += 8)
      Mixed[B] = MemBit::Undef;
    Configs.push_back(std::move(Mixed));
  }
  if (Configs.size() > Cap)
    Configs.resize(std::max<uint64_t>(Cap, 1));
  return Configs;
}

} // namespace

TVResult tv::checkRefinement(Function &Src, Function &Tgt,
                             const SemanticsConfig &Config,
                             const TVOptions &Opts) {
  TVResult Result;
  if (Src.fnType() != Tgt.fnType()) {
    Result.Message = "signature mismatch";
    return Result;
  }

  // Pin the observable-memory window to the SOURCE's globals for both
  // runs: a pass that deletes the target's last reference to a global
  // must neither shift the InitialMem layout nor shrink the snapshot the
  // comparison is judged on (the bits would misalign and flag a sound
  // transformation — or worse, install different initial memories).
  TVOptions Pinned = Opts;
  std::vector<const GlobalVariable *> Layout;
  if (Opts.CompareMemory && !Opts.MemLayout) {
    Layout = sem::referencedGlobals(Src);
    if (!Layout.empty())
      Pinned.MemLayout = &Layout;
  }

  uint64_t MemBits =
      Opts.EnumerateMemory && !Opts.InitialMem ? globalMemoryBits(Src) : 0;
  if (MemBits == 0)
    return checkRefinementFixedMem(Src, Tgt, Config, Pinned);

  stats::add("tv.mem_functions");
  std::vector<std::vector<MemBit>> Configs =
      memoryConfigs(MemBits, Config, Opts.MaxMemConfigs);
  TVResult Agg;
  for (const std::vector<MemBit> &Mem : Configs) {
    stats::add("tv.mem_configs");
    TVOptions O = Pinned;
    O.InitialMem = Mem.empty() ? nullptr : &Mem;
    TVResult R = checkRefinementFixedMem(Src, Tgt, Config, O);
    Agg.InputsChecked += R.InputsChecked;
    Agg.PathsExplored += R.PathsExplored;
    if (!R.valid()) {
      R.InputsChecked = Agg.InputsChecked;
      R.PathsExplored = Agg.PathsExplored;
      // Tag the counterexample with the initial memory only when one was
      // installed: the Uninit config's report stays byte-identical to a
      // memoryless validation.
      if (!Mem.empty())
        R.Message = "initmem=" + encodeMem(Mem) + " " + R.Message;
      return R;
    }
  }
  Agg.St = TVResult::Status::Valid;
  return Agg;
}

std::vector<std::string>
tv::enumerateBehaviors(Function &F, const std::vector<sem::Value> &Args,
                       const SemanticsConfig &Config, const TVOptions &Opts) {
  std::vector<ExecResult> B;
  uint64_t Paths = 0;
  std::string Why;
  collectBehaviors(F, Args, Config, Opts, B, Paths, Why);
  std::vector<std::string> Out;
  for (const ExecResult &R : B) {
    std::string S = encodeBehavior(R, Opts.CompareMemory);
    if (std::find(Out.begin(), Out.end(), S) == Out.end())
      Out.push_back(S);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}
