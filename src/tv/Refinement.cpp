//===- Refinement.cpp - Exhaustive translation validation --------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "tv/Refinement.h"

#include "ir/Function.h"
#include "support/Casting.h"

#include <algorithm>

using namespace frost;
using namespace frost::tv;
using namespace frost::sem;

namespace {

/// All argument values to try for a scalar of \p Width bits.
std::vector<Lane> laneDomain(unsigned Width, const SemanticsConfig &Config,
                             const TVOptions &Opts) {
  std::vector<Lane> Dom;
  if (Width <= ChoiceOracle::ExhaustiveWidthLimit) {
    for (uint64_t V = 0; V != (uint64_t(1) << Width); ++V)
      Dom.push_back(Lane::concrete(BitVec(Width, V)));
  } else {
    for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(2)})
      Dom.push_back(Lane::concrete(BitVec(Width, V)));
    Dom.push_back(Lane::concrete(BitVec::allOnes(Width)));
    Dom.push_back(Lane::concrete(BitVec::minSigned(Width)));
    Dom.push_back(Lane::concrete(BitVec::maxSigned(Width)));
  }
  if (Opts.IncludePoisonInputs)
    Dom.push_back(Lane::poison());
  if (Opts.IncludeUndefInputs && !Config.UndefIsPoison)
    Dom.push_back(Lane::undef());
  return Dom;
}

/// Cartesian product of per-argument domains, capped at Opts.MaxInputs.
bool enumerateArgTuples(Function &F, const SemanticsConfig &Config,
                        const TVOptions &Opts,
                        std::vector<std::vector<sem::Value>> &Out) {
  std::vector<std::vector<sem::Value>> Domains;
  for (unsigned A = 0; A != F.getNumArgs(); ++A) {
    Type *Ty = F.arg(A)->getType();
    std::vector<sem::Value> D;
    if (Ty->isInteger()) {
      for (const Lane &L : laneDomain(Ty->bitWidth(), Config, Opts))
        D.push_back(sem::Value(L));
    } else if (const auto *VT = dyn_cast<VectorType>(Ty)) {
      // Per-lane product for short vectors; cap lane combinations.
      std::vector<Lane> LD =
          laneDomain(VT->element()->bitWidth(), Config, Opts);
      std::vector<std::vector<Lane>> Tuples{{}};
      for (unsigned I = 0; I != VT->count(); ++I) {
        std::vector<std::vector<Lane>> NextTuples;
        for (auto &T : Tuples)
          for (const Lane &L : LD) {
            auto NT = T;
            NT.push_back(L);
            NextTuples.push_back(std::move(NT));
            if (NextTuples.size() > Opts.MaxInputs)
              break;
          }
        Tuples = std::move(NextTuples);
      }
      for (auto &T : Tuples)
        D.push_back(sem::Value(T));
    } else {
      return false; // Pointer / unsupported parameter.
    }
    Domains.push_back(std::move(D));
  }

  Out.push_back({});
  for (auto &D : Domains) {
    std::vector<std::vector<sem::Value>> Next;
    for (auto &Tuple : Out)
      for (auto &V : D) {
        auto NT = Tuple;
        NT.push_back(V);
        Next.push_back(std::move(NT));
        if (Next.size() > Opts.MaxInputs)
          break;
      }
    Out = std::move(Next);
  }
  return true;
}

std::string encodeMem(const std::vector<MemBit> &Mem) {
  std::string S;
  S.reserve(Mem.size());
  for (MemBit B : Mem) {
    switch (B) {
    case MemBit::Zero:
      S += '0';
      break;
    case MemBit::One:
      S += '1';
      break;
    case MemBit::Poison:
      S += 'p';
      break;
    case MemBit::Undef:
      S += 'u';
      break;
    case MemBit::Uninit:
      S += '.';
      break;
    }
  }
  return S;
}

std::string encodeBehavior(const ExecResult &R, bool WithMem) {
  std::string S = R.str();
  if (WithMem && R.ok())
    S += " mem=" + encodeMem(R.FinalMem);
  return S;
}

} // namespace

/// Cartesian product with the MaxInputs cap, plus truncation-proof coverage
/// of the per-argument poison/undef lanes (see header).
bool tv::enumerateInputTuples(Function &F, const SemanticsConfig &Config,
                              const TVOptions &Opts,
                              std::vector<std::vector<sem::Value>> &Out) {
  Out.clear();
  if (!enumerateArgTuples(F, Config, Opts, Out))
    return false;
  if (Out.size() <= Opts.MaxInputs || Out.empty())
    return true;
  Out.resize(Opts.MaxInputs);

  // The product varies the first argument slowest and laneDomain appends
  // the poison/undef lanes last, so truncation starves the *early*
  // arguments of their special lanes first. Re-inject one tuple per missing
  // (argument, special-lane) pair — the argument gets the special lane, all
  // others the first (concrete) value of their domain, i.e. the values of
  // the untruncated first tuple — overwriting tuples from the tail, the
  // most redundant region of the truncated product.
  std::vector<std::vector<sem::Value>> Repair;
  for (unsigned A = 0; A != F.getNumArgs(); ++A) {
    if (!F.arg(A)->getType()->isInteger())
      continue; // Vector lanes are covered by the per-lane product above.
    auto Missing = [&](Lane::Kind K) {
      for (const auto &Tuple : Out)
        if (Tuple[A].isScalar() && Tuple[A].scalar().K == K)
          return false;
      return true;
    };
    auto MakeTuple = [&](Lane L) {
      auto T = Out.front();
      T[A] = sem::Value(L);
      return T;
    };
    if (Opts.IncludePoisonInputs && Missing(Lane::Kind::Poison))
      Repair.push_back(MakeTuple(Lane::poison()));
    if (Opts.IncludeUndefInputs && !Config.UndefIsPoison &&
        Missing(Lane::Kind::Undef))
      Repair.push_back(MakeTuple(Lane::undef()));
  }
  size_t Slot = Out.size();
  for (auto &T : Repair) {
    if (Slot > 1)
      Out[--Slot] = std::move(T); // Keep slot 0: it seeds the repairs.
    else
      Out.push_back(std::move(T));
  }
  return true;
}

/// All behaviours of one function on one input, deduplicated. Returns false
/// if a Fuel/Error result or path-budget exhaustion makes the set
/// unreliable.
bool tv::collectBehaviors(Function &F, const std::vector<sem::Value> &Args,
                          const SemanticsConfig &Config, const TVOptions &Opts,
                          std::vector<ExecResult> &Out, uint64_t &Paths,
                          std::string &Why) {
  Out.clear();
  bool Reliable = true;
  PathEnumerator E;
  bool Complete = E.enumerate(
      [&](ChoiceOracle &Oracle) {
        InterpOptions IOpts;
        IOpts.Fuel = Opts.Fuel;
        Interpreter I(Config, Oracle, IOpts);
        ExecResult R = I.run(F, Args);
        if (R.St == ExecResult::Status::Fuel ||
            R.St == ExecResult::Status::Error) {
          Reliable = false;
          Why = "execution did not finish: " + R.str();
          return false;
        }
        Out.push_back(std::move(R));
        return true;
      },
      Opts.MaxPathsPerRun);
  Paths += E.pathsExplored();
  if (!Complete) {
    Why = "path budget exhausted";
    return false;
  }
  return Reliable;
}

bool tv::behaviorRefines(const ExecResult &Tgt, const ExecResult &Src,
                         bool WithMem) {
  if (Src.ub())
    return true;
  if (Tgt.ub())
    return false;
  // Returned value.
  if (Src.Ret.has_value() != Tgt.Ret.has_value())
    return false;
  if (Src.Ret && !Tgt.Ret->refines(*Src.Ret))
    return false;
  // Observation trace: pointwise refinement, same length.
  if (Src.Trace.size() != Tgt.Trace.size())
    return false;
  for (unsigned I = 0; I != Src.Trace.size(); ++I)
    if (!Tgt.Trace[I].refines(Src.Trace[I]))
      return false;
  // Final memory, bitwise.
  if (WithMem) {
    if (Src.FinalMem.size() != Tgt.FinalMem.size())
      return false;
    for (unsigned I = 0; I != Src.FinalMem.size(); ++I)
      if (!memBitRefines(Tgt.FinalMem[I], Src.FinalMem[I]))
        return false;
  }
  return true;
}

std::string tv::describeInput(const std::vector<sem::Value> &Args) {
  std::string S = "(";
  for (unsigned I = 0; I != Args.size(); ++I)
    S += (I ? ", " : "") + Args[I].str();
  return S + ")";
}

TVResult tv::checkRefinement(Function &Src, Function &Tgt,
                             const SemanticsConfig &Config,
                             const TVOptions &Opts) {
  TVResult Result;
  if (Src.fnType() != Tgt.fnType()) {
    Result.Message = "signature mismatch";
    return Result;
  }

  std::vector<std::vector<sem::Value>> Inputs;
  if (!enumerateInputTuples(Src, Config, Opts, Inputs)) {
    Result.Message = "unsupported parameter type";
    return Result;
  }

  for (const auto &Args : Inputs) {
    std::vector<ExecResult> SrcB, TgtB;
    std::string Why;
    if (!collectBehaviors(Src, Args, Config, Opts, SrcB, Result.PathsExplored,
                          Why) ||
        !collectBehaviors(Tgt, Args, Config, Opts, TgtB, Result.PathsExplored,
                          Why)) {
      Result.St = TVResult::Status::Inconclusive;
      Result.Message = "input " + describeInput(Args) + ": " + Why;
      return Result;
    }

    // Source UB on this input permits any target behaviour.
    bool SrcHasUB = std::any_of(SrcB.begin(), SrcB.end(),
                                [](const ExecResult &R) { return R.ub(); });
    for (const ExecResult &T : TgtB) {
      if (SrcHasUB)
        break;
      bool Refined = std::any_of(SrcB.begin(), SrcB.end(),
                                 [&](const ExecResult &S) {
                                   return behaviorRefines(T, S,
                                                          Opts.CompareMemory);
                                 });
      if (!Refined) {
        Result.St = TVResult::Status::Invalid;
        Result.Message = "input " + describeInput(Args) +
                         ": target behaviour " +
                         encodeBehavior(T, Opts.CompareMemory) +
                         " refines no source behaviour; source has " +
                         std::to_string(SrcB.size()) +
                         " behaviour(s), e.g. " +
                         encodeBehavior(SrcB.front(), Opts.CompareMemory);
        return Result;
      }
    }
    ++Result.InputsChecked;
  }

  Result.St = TVResult::Status::Valid;
  return Result;
}

std::vector<std::string>
tv::enumerateBehaviors(Function &F, const std::vector<sem::Value> &Args,
                       const SemanticsConfig &Config, const TVOptions &Opts) {
  std::vector<ExecResult> B;
  uint64_t Paths = 0;
  std::string Why;
  collectBehaviors(F, Args, Config, Opts, B, Paths, Why);
  std::vector<std::string> Out;
  for (const ExecResult &R : B) {
    std::string S = encodeBehavior(R, Opts.CompareMemory);
    if (std::find(Out.begin(), Out.end(), S) == Out.end())
      Out.push_back(S);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}
