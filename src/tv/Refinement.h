//===- Refinement.h - Exhaustive translation validation ---------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project's stand-in for Alive (Section 6, "Testing the prototype"):
/// checks that a transformed function refines the original by exhaustively
/// enumerating inputs (including poison, and undef under legacy configs) and
/// all nondeterministic execution paths of both functions over small bit
/// widths.
///
/// The refinement criterion matches Alive's: for every input, every
/// behaviour of the target must refine some behaviour of the source, where
/// source UB permits anything, poison may be refined to any value, and undef
/// to any concrete value. Observations (observe* calls), the returned value,
/// and final memory are all part of a behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_TV_REFINEMENT_H
#define FROST_TV_REFINEMENT_H

#include "sem/Interp.h"

#include <cstdint>
#include <string>

namespace frost {

class Function;
class GlobalVariable;

namespace tv {

/// Which evaluation engine drives checkRefinement.
enum class TVEngine {
  Scalar,    ///< One interpreter run per (function, input, oracle path).
  BitSliced, ///< Batch 64 input tuples per instruction step
             ///< (sem/BitSliced.h). Falls back to the scalar path per lane
             ///< for nondeterministic lanes and per function for constructs
             ///< outside the sliced subset; the verdict, the counterexample
             ///< message, and the InputsChecked/PathsExplored counters are
             ///< identical to the scalar engine's by construction. See
             ///< docs/performance.md.
};

/// Knobs for the exhaustive checker.
struct TVOptions {
  uint64_t MaxPathsPerRun = 1u << 14;  ///< Oracle paths per (fn, input).
  uint64_t MaxInputs = 1u << 14;       ///< Input tuples to try.
  uint64_t Fuel = 20000;               ///< Interpreter steps per execution.
  bool IncludePoisonInputs = true;     ///< Feed poison as argument values.
  bool IncludeUndefInputs = true;      ///< Feed undef (legacy configs only).
  bool CompareMemory = true;           ///< Include final memory in behaviour.
  TVEngine Engine = TVEngine::Scalar;  ///< Evaluation engine.

  /// Fixed initial global-memory contents for every execution (see
  /// InterpOptions::InitialMem). Null means all-Uninit. Must outlive the
  /// validation.
  const std::vector<sem::MemBit> *InitialMem = nullptr;

  /// When the function references globals, validate under a sweep of
  /// initial memory contents (all-Uninit first, then all-zeros, all-ones,
  /// all-poison, all-undef under legacy configs, and per-byte mixed-poison
  /// patterns), up to MaxMemConfigs configurations. Catches passes whose
  /// rewrite is only a refinement for *some* prior memory — e.g. deleting a
  /// store of undef resurrects whatever the bytes held before, which is
  /// fine over zeros but not over poison. Ignored when InitialMem is set.
  bool EnumerateMemory = false;
  uint64_t MaxMemConfigs = 8;          ///< Cap on enumerated memories.

  /// Internal plumbing, set by checkRefinement: pins every execution's
  /// observable-memory window to the SOURCE function's globals (see
  /// InterpOptions::MemLayout), so a pass that deletes the target's last
  /// reference to a global cannot shift the InitialMem layout or shrink
  /// the FinalMem snapshot. Leave null; must outlive the validation when
  /// set by hand.
  const std::vector<const GlobalVariable *> *MemLayout = nullptr;
};

/// Outcome of a validation.
struct TVResult {
  enum class Status {
    Valid,        ///< Refinement holds on every checked input.
    Invalid,      ///< A counterexample was found.
    Inconclusive, ///< Budget exhausted or unsupported construct.
  };

  Status St = Status::Inconclusive;
  std::string Message;      ///< Counterexample / reason, human-readable.
  uint64_t InputsChecked = 0;
  uint64_t PathsExplored = 0;

  bool valid() const { return St == Status::Valid; }
  bool invalid() const { return St == Status::Invalid; }
};

/// Checks that \p Tgt refines \p Src under \p Config. The functions must
/// have identical signatures over integer (or integer-vector) parameters;
/// pointer parameters are unsupported (use globals instead).
TVResult checkRefinement(Function &Src, Function &Tgt,
                         const sem::SemanticsConfig &Config,
                         const TVOptions &Opts = TVOptions());

/// Enumerates every behaviour of \p F on \p Args (all oracle paths), encoded
/// as deduplicated strings for test assertions.
std::vector<std::string> enumerateBehaviors(Function &F,
                                            const std::vector<sem::Value> &Args,
                                            const sem::SemanticsConfig &Config,
                                            const TVOptions &Opts = TVOptions());

//===----------------------------------------------------------------------===//
// Building blocks shared with the end-to-end (backend) validator
//===----------------------------------------------------------------------===//

/// Enumerates the cartesian product of per-argument input domains for \p F
/// (exhaustive or boundary concrete values, plus poison/undef lanes per
/// \p Opts), capped at Opts.MaxInputs. When the cap truncates the product,
/// per-argument special-lane coverage is preserved: every scalar integer
/// argument still gets at least one tuple where it alone is poison (and one
/// where it is undef, when the config distinguishes undef), so truncation
/// can never starve a whole argument of its poison lane. Returns false for
/// unsupported (pointer) parameter types.
bool enumerateInputTuples(Function &F, const sem::SemanticsConfig &Config,
                          const TVOptions &Opts,
                          std::vector<std::vector<sem::Value>> &Out);

/// The scalar-argument core of enumerateInputTuples: identical tuple order,
/// cap behaviour, and special-lane repair, but emitted as one flat row-major
/// lane matrix (\p NumArgs lanes per tuple) with no per-tuple heap values —
/// the form the bit-sliced engine packs from. enumerateInputTuples delegates
/// here whenever every parameter is a scalar integer, which is what makes
/// cross-engine input-order parity hold by construction. Returns false when
/// any parameter is not a scalar integer (vector/pointer).
bool enumerateInputLanes(Function &F, const sem::SemanticsConfig &Config,
                         const TVOptions &Opts, std::vector<sem::Lane> &Flat,
                         unsigned &NumArgs);

/// Collects every behaviour of \p F on \p Args across all oracle paths into
/// \p Out (not deduplicated). Returns false — with \p Why set — when the
/// set is unreliable: an execution ran out of fuel, hit an interpreter
/// error, or the path budget was exhausted. \p Paths accumulates the number
/// of explored paths.
bool collectBehaviors(Function &F, const std::vector<sem::Value> &Args,
                      const sem::SemanticsConfig &Config, const TVOptions &Opts,
                      std::vector<sem::ExecResult> &Out, uint64_t &Paths,
                      std::string &Why);

/// True iff target behaviour \p Tgt refines source behaviour \p Src: source
/// UB permits anything; otherwise the return value, observation trace, and
/// (when \p WithMem) final memory must refine pointwise in the deferred-UB
/// order (concrete ⊑ undef ⊑ poison).
bool behaviorRefines(const sem::ExecResult &Tgt, const sem::ExecResult &Src,
                     bool WithMem);

/// Human-readable "(v0, v1, ...)" rendering of an argument tuple, used in
/// counterexample messages.
std::string describeInput(const std::vector<sem::Value> &Args);

} // namespace tv
} // namespace frost

#endif // FROST_TV_REFINEMENT_H
