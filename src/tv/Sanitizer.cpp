//===- Sanitizer.cpp - Differential sanitizer validation ---------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "tv/Sanitizer.h"

#include "ir/Cloning.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "opt/Pipeline.h"
#include "sem/Interp.h"
#include "sem/Oracle.h"

#include <cassert>

using namespace frost;
using namespace frost::tv;

namespace {

/// The campaign's pipeline (textual Opts.Passes or the standard preset),
/// appended to \p PM. Mirrors the campaign engine's builder; drivers
/// validate the text before launching.
void buildSanPipeline(PassManager &PM, const CampaignOptions &Opts) {
  if (Opts.Passes.empty()) {
    buildStandardPipeline(PM, Opts.Pipeline);
    return;
  }
  std::string Error;
  bool OK = parsePassPipeline(PM, Opts.Passes, Opts.Pipeline, &Error);
  assert(OK && "campaign pipeline must be validated before launching");
  (void)OK;
}

/// Replays the pipeline pass by pass on a fresh clone of \p San and blames
/// the first pass whose output no longer refines the instrumented program
/// under the sanitizer leg's pinned TVOptions.
std::string blameSanPass(Module &M, Function &San, const CampaignOptions &Opts,
                         const TVOptions &TVOpts) {
  Function *Replay = cloneFunction(San, M, San.getName() + ".blame");
  PassManager PM(/*VerifyAfterEachPass=*/false);
  buildSanPipeline(PM, Opts);
  std::string Blamed;
  PM.instrumentation().onAfterPass(
      [&](const Pass &P, const Function &,
          const PassInstrumentation::AfterPassInfo &Info) {
        if (!Blamed.empty() || !Info.Changed)
          return;
        TVResult TR = checkRefinement(San, *Replay, Opts.Semantics, TVOpts);
        if (!TR.valid())
          Blamed = P.pipelineText();
      });
  PM.run(*Replay);
  M.eraseFunction(Replay);
  return Blamed;
}

std::string trapName(int Id) { return "check " + std::to_string(Id); }

} // namespace

SanCheckResult tv::checkSanitizedFunction(Module &M, Function &F,
                                          Function &San,
                                          const CampaignOptions &Opts) {
  SanCheckResult R;
  TVResult &TR = R.TV;

  // The observable-memory window is the ORIGINAL function's globals: the
  // instrumentation's shadow globals must neither shift the InitialMem
  // layout nor enter the compared FinalMem snapshot. Globals are assumed
  // initialized (the pass zero-stamps their shadow cells on entry), so the
  // default initial memory is all-zeros, not the interpreter's all-Uninit.
  std::vector<const GlobalVariable *> DataGlobals = sem::referencedGlobals(F);
  std::vector<sem::MemBit> ZeroMem;
  const std::vector<sem::MemBit> *Init = Opts.TV.InitialMem;
  if (!Init) {
    ZeroMem.assign(sem::globalMemoryBits(F), sem::MemBit::Zero);
    Init = &ZeroMem;
  }

  // Instrumented executions run many more instructions (every check is a
  // compare + branch, plus the shadow-memory traffic), so they get a wider
  // fuel allowance than the ground truth.
  uint64_t SanFuel = Opts.TV.Fuel * 16 + 256;

  TVOptions TVOpts = Opts.TV;
  TVOpts.IncludePoisonInputs = false;
  TVOpts.IncludeUndefInputs = false;
  TVOpts.EnumerateMemory = false;
  TVOpts.InitialMem = Init;
  TVOpts.MemLayout = &DataGlobals;
  TVOpts.Fuel = SanFuel;

  std::vector<std::vector<sem::Value>> Inputs;
  if (!enumerateInputTuples(F, Opts.Semantics, TVOpts, Inputs)) {
    TR.St = TVResult::Status::Inconclusive;
    TR.Message = "unsupported parameter type (pointer arguments are not "
                 "enumerable; use globals instead)";
    return R;
  }

  // Oracles (a) and (b): per concrete input, ground truth (SanOracle event
  // mode over the original) versus the instrumented program, both driven by
  // the deterministic oracle so the single compared path is the same one.
  for (const std::vector<sem::Value> &Args : Inputs) {
    ++TR.InputsChecked;

    sem::InterpOptions IO;
    IO.Fuel = Opts.TV.Fuel;
    IO.InitialMem = Init;
    IO.MemLayout = &DataGlobals;
    IO.SanOracle = true;
    sem::DeterministicOracle O0;
    sem::Interpreter I0(Opts.Semantics, O0, IO);
    sem::ExecResult R0 = I0.run(F, Args);
    ++TR.PathsExplored;

    IO.Fuel = SanFuel;
    IO.SanOracle = false;
    sem::DeterministicOracle O1;
    sem::Interpreter I1(Opts.Semantics, O1, IO);
    sem::ExecResult R1 = I1.run(San, Args);
    ++TR.PathsExplored;

    if (R0.St == sem::ExecResult::Status::Fuel ||
        R1.St == sem::ExecResult::Status::Fuel) {
      TR.St = TVResult::Status::Inconclusive;
      TR.Message = "out of fuel on input " + describeInput(Args);
      return R;
    }
    if (R0.St == sem::ExecResult::Status::Error ||
        R1.St == sem::ExecResult::Status::Error) {
      TR.St = TVResult::Status::Inconclusive;
      TR.Message = "interpreter error on input " + describeInput(Args);
      return R;
    }
    if (R0.ub()) {
      // Every dynamic-UB event should have stopped the SanOracle run as a
      // trap; raw UB means the oracle met something outside the catalogue.
      TR.St = TVResult::Status::Inconclusive;
      TR.Message = "sanitizer oracle hit unintercepted UB on input " +
                   describeInput(Args);
      return R;
    }

    if (behaviorRefines(R1, R0, TVOpts.CompareMemory)) {
      if (R0.trapped())
        ++R.TrueTrips;
      continue;
    }

    TR.St = TVResult::Status::Invalid;
    if (R0.trapped() && !R1.trapped()) {
      ++R.FalseNegatives;
      TR.Message = "sanitizer false negative: ground truth trips " +
                   trapName(R0.TrapId) + " but the instrumented run " +
                   (R1.ub() ? "hits UB" : "finishes clean") + " on input " +
                   describeInput(Args);
    } else if (!R0.trapped() && R1.trapped()) {
      ++R.FalsePositives;
      TR.Message = "sanitizer false positive: instrumented run trips " +
                   trapName(R1.TrapId) + " on a UB-free execution on input " +
                   describeInput(Args);
    } else if (R0.trapped()) {
      ++R.FalsePositives;
      TR.Message = "sanitizer trap mismatch: ground truth trips " +
                   trapName(R0.TrapId) + " but the instrumented run trips " +
                   trapName(R1.TrapId) + " on input " + describeInput(Args);
    } else {
      ++R.FalsePositives;
      TR.Message = "instrumentation is not behaviour-preserving on input " +
                   describeInput(Args) + ": ground truth " + R0.str() +
                   ", instrumented " + R1.str();
    }
    return R;
  }

  // Oracle (c): the optimization pipeline over the instrumented program
  // must still refine it — a dropped or invented trap is a miscompile the
  // new trap rule in behaviorRefines rejects.
  Function *Optimized = cloneFunction(San, M, San.getName() + ".opt");
  PassManager PM(/*VerifyAfterEachPass=*/false);
  buildSanPipeline(PM, Opts);
  AnalysisManager AM;
  PM.run(*Optimized, AM);
  TVResult DR = checkRefinement(San, *Optimized, Opts.Semantics, TVOpts);
  TR.InputsChecked += DR.InputsChecked;
  TR.PathsExplored += DR.PathsExplored;
  M.eraseFunction(Optimized);
  if (!DR.valid()) {
    TR.St = DR.St;
    TR.Message = "optimized sanitized program stops refining it: " +
                 DR.Message;
    if (DR.invalid())
      R.BlamedPass = blameSanPass(M, San, Opts, TVOpts);
    return R;
  }

  TR.St = TVResult::Status::Valid;
  return R;
}
