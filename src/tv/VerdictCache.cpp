//===- VerdictCache.cpp - Incremental TV verdict cache --------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "tv/VerdictCache.h"

#include "support/AtomicFile.h"
#include "support/Stats.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace frost;
using namespace frost::tv;

VerdictCache::VerdictCache(unsigned ShardCount)
    : Shards(ShardCount ? ShardCount : 1) {}

bool VerdictCache::lookup(const VerdictKey &K, const std::string &CanonText,
                          CachedVerdict &Out) const {
  uint64_t Mixed = mix(K);
  Shard &S = shardFor(Mixed);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(Mixed);
  if (It != S.Map.end()) {
    for (const Entry &E : It->second) {
      if (!(E.Key == K))
        continue;
      if (E.V.CanonText != CanonText) {
        // Same 128-bit hash + config, different canonical text: a true
        // structural-hash collision. Never trust it.
        stats::add("tv.cache_collisions");
        continue;
      }
      Out = E.V;
      stats::add("tv.cache_hits");
      if (!E.V.FromDisk)
        stats::add("tv.isomorphic_skips");
      return true;
    }
  }
  stats::add("tv.cache_misses");
  return false;
}

void VerdictCache::insert(const VerdictKey &K, CachedVerdict V) {
  uint64_t Mixed = mix(K);
  Shard &S = shardFor(Mixed);
  std::lock_guard<std::mutex> Lock(S.M);
  std::vector<Entry> &Bucket = S.Map[Mixed];
  for (const Entry &E : Bucket)
    if (E.Key == K && E.V.CanonText == V.CanonText)
      return; // First writer wins; duplicates carry identical verdicts.
  Bucket.push_back({K, std::move(V)});
}

uint64_t VerdictCache::size() const {
  uint64_t N = 0;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    for (const auto &[Mixed, Bucket] : S.Map)
      N += Bucket.size();
  }
  return N;
}

//===----------------------------------------------------------------------===//
// On-disk format
//===----------------------------------------------------------------------===//

namespace {

void setError(std::string *Error, std::string Msg) {
  if (Error)
    *Error = std::move(Msg);
}

/// Reads exactly \p Len bytes followed by a newline separator.
bool readBlob(std::istream &In, size_t Len, std::string &Out) {
  Out.resize(Len);
  if (Len && !In.read(Out.data(), (std::streamsize)Len))
    return false;
  return In.get() == '\n';
}

} // namespace

bool VerdictCache::load(const std::string &Path, std::string *Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    setError(Error, "cannot open cache file '" + Path + "'");
    return false;
  }

  std::string Magic;
  std::string Version;
  if (!(In >> Magic >> Version) || Magic != FileMagic) {
    setError(Error, "'" + Path + "' is not a frost verdict cache");
    return false;
  }
  if (Version != "v" + std::to_string(FileVersion)) {
    setError(Error, "cache file '" + Path + "' has version " + Version +
                        ", expected v" + std::to_string(FileVersion));
    return false;
  }
  uint64_t Count = 0;
  if (!(In >> Count)) {
    setError(Error, "cache file '" + Path + "': missing entry count");
    return false;
  }

  // Parse everything into a staging list first so a corrupt tail cannot
  // leave the cache half-merged.
  std::vector<Entry> Staged;
  Staged.reserve(Count);
  for (uint64_t I = 0; I != Count; ++I) {
    std::string Tag, HashHex;
    uint64_t ConfigFP, Status, Changed, Inputs, Paths;
    uint64_t CanonLen, MsgLen, BlameLen;
    if (!(In >> Tag >> std::hex >> ConfigFP >> std::dec >> HashHex >>
          Status >> Changed >> Inputs >> Paths >> CanonLen >> MsgLen >>
          BlameLen) ||
        Tag != "entry" || Status > CachedVerdict::Inconclusive ||
        Changed > 1) {
      setError(Error, "cache file '" + Path + "': corrupt entry " +
                          std::to_string(I) + " header");
      return false;
    }
    Entry E;
    if (!StructuralHash::fromString(HashHex, E.Key.Hash)) {
      setError(Error, "cache file '" + Path + "': corrupt hash in entry " +
                          std::to_string(I));
      return false;
    }
    E.Key.ConfigFP = ConfigFP;
    E.V.St = (CachedVerdict::Status)Status;
    E.V.Changed = Changed != 0;
    E.V.InputsChecked = Inputs;
    E.V.PathsExplored = Paths;
    E.V.FromDisk = true;
    // The header line ends with a newline before the first blob.
    if (In.get() != '\n' || !readBlob(In, CanonLen, E.V.CanonText) ||
        !readBlob(In, MsgLen, E.V.Message) ||
        !readBlob(In, BlameLen, E.V.BlamedPass)) {
      setError(Error, "cache file '" + Path + "': truncated entry " +
                          std::to_string(I));
      return false;
    }
    Staged.push_back(std::move(E));
  }

  for (Entry &E : Staged)
    insert(E.Key, std::move(E.V));
  return true;
}

bool VerdictCache::save(const std::string &Path, std::string *Error) const {
  // Snapshot and sort so the file is deterministic regardless of insertion
  // order or shard layout.
  std::vector<const Entry *> All;
  std::vector<std::unique_lock<std::mutex>> Locks;
  Locks.reserve(Shards.size());
  for (Shard &S : Shards)
    Locks.emplace_back(S.M);
  for (Shard &S : Shards)
    for (const auto &[Mixed, Bucket] : S.Map)
      for (const Entry &E : Bucket)
        All.push_back(&E);
  std::sort(All.begin(), All.end(), [](const Entry *A, const Entry *B) {
    if (A->Key.ConfigFP != B->Key.ConfigFP)
      return A->Key.ConfigFP < B->Key.ConfigFP;
    if (!(A->Key.Hash == B->Key.Hash))
      return A->Key.Hash.str() < B->Key.Hash.str();
    return A->V.CanonText < B->V.CanonText;
  });

  // Render to memory, then hand off to writeFileAtomic: the staging file
  // gets a per-process/per-call unique name (so concurrent savers — the
  // daemon's periodic persist racing a CLI run on the same --cache-file —
  // never clobber each other's temp), is fsync'd before the rename, and is
  // unlinked on every error path.
  std::ostringstream Out;
  Out << FileMagic << " v" << FileVersion << "\n" << All.size() << "\n";
  char FP[17];
  for (const Entry *E : All) {
    std::snprintf(FP, sizeof(FP), "%016llx",
                  (unsigned long long)E->Key.ConfigFP);
    Out << "entry " << FP << " " << E->Key.Hash.str() << " "
        << (unsigned)E->V.St << " " << (E->V.Changed ? 1 : 0) << " "
        << E->V.InputsChecked << " " << E->V.PathsExplored << " "
        << E->V.CanonText.size() << " " << E->V.Message.size() << " "
        << E->V.BlamedPass.size() << "\n"
        << E->V.CanonText << "\n"
        << E->V.Message << "\n"
        << E->V.BlamedPass << "\n";
  }
  std::string AtomicError;
  if (!writeFileAtomic(Path, Out.str(), &AtomicError)) {
    setError(Error, "cache file '" + Path + "': " + AtomicError);
    return false;
  }
  return true;
}
