//===- EndToEnd.cpp - Translation validation through the backend --------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "tv/EndToEnd.h"

#include "codegen/Codegen.h"
#include "codegen/MachineSim.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Type.h"
#include "support/Casting.h"
#include "support/Stats.h"

#include <algorithm>
#include <cstdio>

using namespace frost;
using namespace frost::tv;
using namespace frost::sem;

namespace {

bool scalarIntOk(const Type *Ty) {
  return Ty->isInteger() && Ty->bitWidth() <= 32;
}

/// Memory accesses of 17–24 bit types need 3-byte transfers, which
/// frost-risc does not have.
bool accessWidthOk(const Type *Ty) {
  return (Ty->bitWidth() + 7) / 8 != 3;
}

std::string hex32(uint32_t V) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "0x%08x", V);
  return Buf;
}

/// Concrete machine bit patterns standing in for a poison/undef argument
/// lane of \p Width bits: exhaustive when small, boundary values otherwise
/// (mirroring laneDomain's concrete part).
std::vector<uint32_t> concreteCandidates(unsigned Width) {
  std::vector<uint32_t> Out;
  if (Width <= 3) {
    for (uint32_t V = 0; V != (1u << Width); ++V)
      Out.push_back(V);
    return Out;
  }
  uint32_t Mask = Width >= 32 ? 0xFFFFFFFFu : ((1u << Width) - 1);
  Out = {0, 1, Mask, 1u << (Width - 1), Mask >> 1};
  return Out;
}

/// Cartesian product of machine instantiations of one IR input tuple:
/// concrete lanes map to their bits, poison/undef lanes to every candidate
/// pattern. Capped (deterministically, by truncation) at 256 tuples.
std::vector<std::vector<uint32_t>>
machineInstantiations(Function &F, const std::vector<sem::Value> &Args) {
  std::vector<std::vector<uint32_t>> Out{{}};
  for (unsigned A = 0; A != Args.size(); ++A) {
    std::vector<uint32_t> Cands;
    const Lane &L = Args[A].scalar();
    if (L.isConcrete())
      Cands.push_back(static_cast<uint32_t>(L.Bits.zext()));
    else
      Cands = concreteCandidates(F.arg(A)->getType()->bitWidth());
    std::vector<std::vector<uint32_t>> Next;
    for (const auto &T : Out)
      for (uint32_t C : Cands) {
        if (Next.size() >= 256)
          break;
        auto NT = T;
        NT.push_back(C);
        Next.push_back(std::move(NT));
      }
    Out = std::move(Next);
  }
  return Out;
}

std::string describeMachineArgs(const std::vector<uint32_t> &MA) {
  std::string S = "(";
  for (unsigned I = 0; I != MA.size(); ++I)
    S += (I ? ", " : "") + std::to_string(MA[I]);
  return S + ")";
}

/// Undef-register fills swept per run. The first is the classic marker; the
/// last *varies per IMPLICIT_DEF execution*, so a freeze result that is
/// re-materialised instead of pinned reads differently at each use. Small
/// values (1, 3) matter for sub-word blends where huge garbage happens to
/// cancel modulo 2^W.
struct UndefFill {
  uint32_t Value;
  uint32_t Step;
};
const UndefFill Fills[] = {
    {0xBAADF00Du, 0}, {0u, 0},          {0xFFFFFFFFu, 0},
    {1u, 0},          {3u, 0},          {0xDEADBEEFu, 0x9E3779B9u},
};

} // namespace

bool tv::supportedForCodegen(Function &F, std::string &Why) {
  if (F.isDeclaration()) {
    Why = "declaration";
    return false;
  }
  if (!scalarIntOk(F.returnType())) {
    Why = "return type outside the frost-risc subset";
    return false;
  }
  for (unsigned A = 0; A != F.getNumArgs(); ++A)
    if (!scalarIntOk(F.arg(A)->getType())) {
      Why = "argument type outside the frost-risc subset";
      return false;
    }
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB) {
      switch (I->getOpcode()) {
      case Opcode::Call:
        Why = "calls are not supported by frost-risc";
        return false;
      case Opcode::ExtractElement:
      case Opcode::InsertElement:
        Why = "vector operations are not supported by frost-risc";
        return false;
      case Opcode::Load:
        if (!accessWidthOk(I->getType())) {
          Why = "3-byte load width";
          return false;
        }
        break;
      case Opcode::Store:
        if (!accessWidthOk(I->getOperand(0)->getType())) {
          Why = "3-byte store width";
          return false;
        }
        break;
      default:
        break;
      }
      if (I->getType()->isVector() ||
          (I->getType()->isInteger() && I->getType()->bitWidth() > 32)) {
        Why = "value type outside the frost-risc subset";
        return false;
      }
      for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op) {
        const Type *OTy = I->getOperand(Op)->getType();
        if (OTy->isVector() || (OTy->isInteger() && OTy->bitWidth() > 32)) {
          Why = "operand type outside the frost-risc subset";
          return false;
        }
      }
    }
  return true;
}

E2EResult tv::checkEndToEnd(Function &F, const SemanticsConfig &Config,
                            const TVOptions &Opts) {
  E2EResult R;
  // End-to-end checking always runs the scalar path: the machine side needs
  // per-execution undef register fills the batch representation cannot
  // express. Account the fallback so bitsliced campaigns stay honest.
  if (Opts.Engine == TVEngine::BitSliced)
    stats::add("tv.scalar_fallbacks");
  std::string Why;
  if (!supportedForCodegen(F, Why)) {
    R.TV.Message = "unsupported for codegen: " + Why;
    return R; // Inconclusive.
  }

  // Compile once with and once without register allocation: the second
  // (virtual-register) form is replayed on failures to decide whether the
  // divergence was introduced by isel or by the allocator.
  codegen::CodegenOptions WithRA;
  codegen::CodegenOptions NoRA;
  NoRA.RunRegAlloc = false;
  codegen::CompiledFunction RA = codegen::compileFunction(F, WithRA);
  codegen::CompiledFunction VReg = codegen::compileFunction(F, NoRA);

  stats::add("e2e.checked");
  stats::add("cg.freeze_copies", RA.Stats.FreezeCopies);
  stats::add("cg.spills", RA.Stats.Spills);

  std::vector<std::vector<sem::Value>> Inputs;
  if (!enumerateInputTuples(F, Config, Opts, Inputs)) {
    R.TV.Message = "unsupported parameter type";
    return R;
  }

  const unsigned RetW = F.returnType()->bitWidth();
  const uint32_t RetMask = RetW >= 32 ? 0xFFFFFFFFu : ((1u << RetW) - 1);

  for (const auto &Args : Inputs) {
    std::vector<ExecResult> SrcB;
    std::string CWhy;
    if (!collectBehaviors(F, Args, Config, Opts, SrcB, R.TV.PathsExplored,
                          CWhy)) {
      R.TV.St = TVResult::Status::Inconclusive;
      R.TV.Message = "input " + describeInput(Args) + ": " + CWhy;
      return R;
    }
    // Source UB on this input permits any machine behaviour.
    if (std::any_of(SrcB.begin(), SrcB.end(),
                    [](const ExecResult &B) { return B.ub(); })) {
      ++R.TV.InputsChecked;
      continue;
    }

    // Verdict for one machine run: 0 = refines, 1 = counterexample,
    // 2 = budget (step limit).
    auto Verdict = [&](const codegen::SimResult &S, std::string &Detail) {
      if (!S.Ok) {
        if (S.Error == "step limit exceeded")
          return 2;
        Detail = "machine error: " + S.Error;
        return 1;
      }
      sem::Value MV(Lane::concrete(BitVec(RetW, S.ReturnValue & RetMask)));
      for (const ExecResult &Src : SrcB)
        if (Src.ok() && Src.Ret && MV.refines(*Src.Ret))
          return 0;
      Detail = "machine returned " +
               std::to_string(S.ReturnValue & RetMask);
      return 1;
    };

    codegen::SimOptions SO;
    SO.MaxSteps = Opts.Fuel * 16;

    for (const auto &MA : machineInstantiations(F, Args)) {
      for (const UndefFill &Fill : Fills) {
        SO.UndefFill = Fill.Value;
        SO.UndefStep = Fill.Step;
        codegen::SimResult S = codegen::simulate(RA, MA, SO);
        std::string Detail;
        int V = Verdict(S, Detail);
        if (V == 2) {
          R.TV.St = TVResult::Status::Inconclusive;
          R.TV.Message =
              "input " + describeInput(Args) + ": machine step limit";
          return R;
        }
        if (V == 1) {
          // Replay on virtual-register MIR to blame the stage.
          codegen::SimResult SV = codegen::simulate(VReg, MA, SO);
          std::string VDetail;
          int VV = Verdict(SV, VDetail);
          if (VV == 1)
            R.BlamedStage = (!S.Ok && !SV.Ok) ? "sim" : "isel";
          else
            R.BlamedStage = "regalloc";
          stats::add("e2e.failed");
          R.TV.St = TVResult::Status::Invalid;
          R.TV.Message =
              "input " + describeInput(Args) + " as machine args " +
              describeMachineArgs(MA) + ", undef fill " + hex32(Fill.Value) +
              (Fill.Step ? "+k*" + hex32(Fill.Step) : std::string()) + ": " +
              Detail + " refines no source behaviour; source has " +
              std::to_string(SrcB.size()) + " behaviour(s), e.g. " +
              SrcB.front().str();
          return R;
        }
        // Deterministic code: one fill decides them all.
        if (S.ImplicitDefsExecuted == 0)
          break;
      }
    }
    ++R.TV.InputsChecked;
  }

  R.TV.St = TVResult::Status::Valid;
  return R;
}
