//===- Sanitizer.h - Differential sanitizer validation ----------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The UBfuzz-style differential oracles behind CampaignKind::Sanitizer
/// (docs/sanitizer.md): given a program and its sanitize-instrumented twin,
/// decide whether the instrumentation is *correct* — it must trap exactly
/// when the interpreter's sanitizer-oracle mode (InterpOptions::SanOracle)
/// says a dynamic-UB event fires, with the matching check id, and must be
/// invisible otherwise.
///
/// Three oracles run per function:
///
///  (a) False-negative hunt: for every concrete input tuple, the ground
///      truth (SanOracle run of the original) traps but the instrumented
///      program finishes clean — a check the pass failed to insert.
///  (b) False-positive hunt: the instrumented program traps on an input the
///      ground truth executes cleanly — an over-eager or wrong guard. The
///      same leg also rejects id mismatches and any divergence of the
///      result / observation trace / final memory on clean runs (the
///      instrumentation must be behaviour-preserving off the trap paths).
///  (c) DESIL-style silent-miscompile check: the campaign's optimization
///      pipeline over the *instrumented* program must still refine it, so
///      optimizing sanitized code can neither drop a trap nor invent one.
///      Failures are blamed on the first pass whose output stops refining.
///
/// All legs run over concrete inputs only (poison/undef argument lanes are
/// the oracle's job to *detect*, not the harness's job to inject: a guard
/// computing on a poison argument would itself be poisoned) and pin the
/// observable-memory window to the ORIGINAL function's globals, so the
/// instrumentation's shadow globals never shift the initial-memory layout
/// or leak into the compared final-memory snapshot. Initial memory defaults
/// to all-zeros (globals are assumed initialized; uninitialized-load
/// coverage comes from allocas and from the SanOracle ground truth).
///
//===----------------------------------------------------------------------===//

#ifndef FROST_TV_SANITIZER_H
#define FROST_TV_SANITIZER_H

#include "tv/Campaign.h"

#include <cstdint>
#include <string>

namespace frost {

class Function;
class Module;

namespace tv {

/// Outcome of the three differential oracles over one function.
struct SanCheckResult {
  TVResult TV; ///< Valid = sanitizer correct on every checked input.
  /// DESIL leg only: pipelineText() of the first pass whose output no
  /// longer refines the instrumented program. Empty otherwise.
  std::string BlamedPass;
  /// Input tuples where ground truth and instrumented run agreed on a trap
  /// (same check id, same observation prefix).
  uint64_t TrueTrips = 0;
  /// Tuples where the ground truth traps but the instrumented run does not
  /// (counted at most once: the check stops at the first failure).
  uint64_t FalseNegatives = 0;
  /// Tuples where the instrumented run traps spuriously, traps with the
  /// wrong id, or diverges on a clean execution.
  uint64_t FalsePositives = 0;
};

/// Runs oracles (a)-(c) for \p San, the sanitize-instrumented clone of
/// \p F. Both live in \p M (the DESIL leg clones \p San again to optimize
/// it). Opts.Semantics selects the UB semantics of both executions;
/// Opts.Pipeline/Passes describe the DESIL pipeline; Opts.TV supplies the
/// budgets (instrumented runs get a widened fuel allowance, since guards
/// multiply the instruction count). Deterministic: messages never mention
/// value or function names, so verdicts replay across structural isomorphs.
SanCheckResult checkSanitizedFunction(Module &M, Function &F, Function &San,
                                      const CampaignOptions &Opts);

} // namespace tv
} // namespace frost

#endif // FROST_TV_SANITIZER_H
