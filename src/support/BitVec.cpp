//===- BitVec.cpp - Fixed-width two's-complement integers -----------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/BitVec.h"

using namespace frost;

unsigned BitVec::countTrailingZeros() const {
  if (Bits == 0)
    return Width;
  unsigned N = 0;
  uint64_t V = Bits;
  while ((V & 1) == 0) {
    V >>= 1;
    ++N;
  }
  return N;
}

unsigned BitVec::countLeadingZeros() const {
  unsigned N = 0;
  for (unsigned I = Width; I-- > 0;) {
    if ((Bits >> I) & 1)
      break;
    ++N;
  }
  return N;
}

unsigned BitVec::popCount() const {
  unsigned N = 0;
  for (uint64_t V = Bits; V; V &= V - 1)
    ++N;
  return N;
}

BitVec BitVec::udiv(const BitVec &RHS) const {
  assert(!RHS.isZero() && "udiv by zero is immediate UB, caller must check");
  return bin(RHS, Bits / RHS.Bits);
}

BitVec BitVec::sdiv(const BitVec &RHS) const {
  assert(!RHS.isZero() && "sdiv by zero is immediate UB, caller must check");
  assert(!sdivOverflows(RHS) && "sdiv overflow is immediate UB");
  return bin(RHS, static_cast<uint64_t>(sext() / RHS.sext()));
}

BitVec BitVec::urem(const BitVec &RHS) const {
  assert(!RHS.isZero() && "urem by zero is immediate UB, caller must check");
  return bin(RHS, Bits % RHS.Bits);
}

BitVec BitVec::srem(const BitVec &RHS) const {
  assert(!RHS.isZero() && "srem by zero is immediate UB, caller must check");
  assert(!sdivOverflows(RHS) && "srem overflow is immediate UB");
  return bin(RHS, static_cast<uint64_t>(sext() % RHS.sext()));
}

BitVec BitVec::shl(const BitVec &RHS) const {
  assert(!RHS.shiftTooBig() && "over-wide shift yields poison, caller checks");
  return bin(RHS, Bits << RHS.Bits);
}

BitVec BitVec::lshr(const BitVec &RHS) const {
  assert(!RHS.shiftTooBig() && "over-wide shift yields poison, caller checks");
  return bin(RHS, Bits >> RHS.Bits);
}

BitVec BitVec::ashr(const BitVec &RHS) const {
  assert(!RHS.shiftTooBig() && "over-wide shift yields poison, caller checks");
  if (RHS.Bits == 0)
    return *this;
  int64_t S = sext() >> RHS.Bits;
  return bin(RHS, static_cast<uint64_t>(S));
}

bool BitVec::uaddOverflows(const BitVec &RHS) const {
  (void)same(RHS);
  return add(RHS).Bits < Bits;
}

bool BitVec::saddOverflows(const BitVec &RHS) const {
  (void)same(RHS);
  int64_t R = sext() + RHS.sext();
  return R != add(RHS).sext();
}

bool BitVec::usubOverflows(const BitVec &RHS) const {
  (void)same(RHS);
  return RHS.Bits > Bits;
}

bool BitVec::ssubOverflows(const BitVec &RHS) const {
  (void)same(RHS);
  int64_t R = sext() - RHS.sext();
  return R != sub(RHS).sext();
}

bool BitVec::umulOverflows(const BitVec &RHS) const {
  (void)same(RHS);
  if (Width > 32) {
    if (Bits == 0 || RHS.Bits == 0)
      return false;
    return mul(RHS).Bits / Bits != RHS.Bits;
  }
  uint64_t R = Bits * RHS.Bits;
  return R != mul(RHS).Bits;
}

bool BitVec::smulOverflows(const BitVec &RHS) const {
  (void)same(RHS);
  if (Width > 32) {
    // Use __int128 to detect 64-bit signed overflow exactly.
    __int128 R = static_cast<__int128>(sext()) * RHS.sext();
    return R != static_cast<__int128>(mul(RHS).sext());
  }
  int64_t R = sext() * RHS.sext();
  return R != mul(RHS).sext();
}

bool BitVec::shlSignedOverflows(const BitVec &ShAmt) const {
  if (ShAmt.shiftTooBig())
    return true;
  BitVec Shifted = shl(ShAmt);
  return Shifted.ashr(ShAmt) != *this;
}

bool BitVec::shlUnsignedOverflows(const BitVec &ShAmt) const {
  if (ShAmt.shiftTooBig())
    return true;
  BitVec Shifted = shl(ShAmt);
  return Shifted.lshr(ShAmt) != *this;
}

std::string BitVec::toString() const { return std::to_string(Bits); }

std::string BitVec::toSignedString() const { return std::to_string(sext()); }
