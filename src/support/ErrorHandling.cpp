//===- ErrorHandling.cpp - Fatal error utilities --------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

void frost::reportUnreachable(const char *Msg, const char *File,
                              unsigned Line) {
  std::fprintf(stderr, "frost fatal error at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}
