//===- Stats.h - Named atomic statistics counters ---------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MemStats-style global accounting, generalised to named counters. The
/// campaign engine (tv/Campaign) publishes its progress here — functions
/// checked, shard completions, poison/undef counterexample hits — so tools
/// and benchmarks can report throughput without threading a stats object
/// through every layer. Counters are process-global atomics: cheap enough
/// to bump from every worker thread, and stable references so hot paths can
/// look a counter up once.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SUPPORT_STATS_H
#define FROST_SUPPORT_STATS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace frost {
namespace stats {

/// Returns the counter registered under \p Name, creating it (at zero) on
/// first use. The returned reference stays valid for the process lifetime.
std::atomic<uint64_t> &counter(const std::string &Name);

/// Convenience: counter(Name) += Delta.
void add(const std::string &Name, uint64_t Delta = 1);

/// Current value, 0 if the counter was never touched.
uint64_t get(const std::string &Name);

/// All registered counters, sorted by name.
std::vector<std::pair<std::string, uint64_t>> snapshot();

/// Zeroes every registered counter (the registry itself persists).
void reset();

/// Renders "name = value" lines for counters whose name starts with
/// \p Prefix (empty prefix: all), sorted by name.
std::string report(const std::string &Prefix = "");

} // namespace stats
} // namespace frost

#endif // FROST_SUPPORT_STATS_H
