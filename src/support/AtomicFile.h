//===- AtomicFile.h - Atomic whole-file replacement -------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// writeFileAtomic: replace the file at a path with new contents such that
/// any concurrent reader (or a crash at any instant) observes either the old
/// complete file or the new complete file, never a torn mix — the durability
/// primitive behind every artifact the long-running pieces of frost persist:
/// the verdict cache (tv/VerdictCache), the frost-tvd counterexample corpus
/// (service/Corpus), and the daemon's port file.
///
/// The temp name is unique per call (pid + a process-wide counter), so any
/// number of processes — and any number of threads within one daemon — can
/// persist to the same destination concurrently without clobbering each
/// other's staging file; last rename wins with a complete file either way.
/// The data is fsync'd before the rename so a crash cannot publish a name
/// pointing at unwritten blocks, and the temp file is unlinked on every
/// error path.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SUPPORT_ATOMICFILE_H
#define FROST_SUPPORT_ATOMICFILE_H

#include <string>

namespace frost {

/// Atomically replaces the file at \p Path with \p Contents via a uniquely
/// named sibling temp file + fsync + rename. Returns false with \p Error set
/// (and no temp file left behind) on any failure.
bool writeFileAtomic(const std::string &Path, const std::string &Contents,
                     std::string *Error = nullptr);

} // namespace frost

#endif // FROST_SUPPORT_ATOMICFILE_H
