//===- ErrorHandling.h - Fatal error utilities ------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Provides frost_unreachable, the project's analogue of llvm_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SUPPORT_ERRORHANDLING_H
#define FROST_SUPPORT_ERRORHANDLING_H

namespace frost {

/// Reports a fatal internal error and aborts. Used to document control flow
/// that must be impossible if the program's invariants hold.
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    unsigned Line);

} // namespace frost

#define frost_unreachable(msg)                                                \
  ::frost::reportUnreachable(msg, __FILE__, __LINE__)

#endif // FROST_SUPPORT_ERRORHANDLING_H
