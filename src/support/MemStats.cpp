//===- MemStats.cpp - Compiler memory accounting --------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/MemStats.h"

#include <atomic>

namespace {
std::atomic<std::size_t> Live{0};
std::atomic<std::size_t> Peak{0};
} // namespace

void frost::memstats::recordAlloc(std::size_t Bytes) {
  std::size_t Now = Live.fetch_add(Bytes) + Bytes;
  std::size_t Prev = Peak.load();
  while (Now > Prev && !Peak.compare_exchange_weak(Prev, Now)) {
  }
}

void frost::memstats::recordFree(std::size_t Bytes) { Live.fetch_sub(Bytes); }

std::size_t frost::memstats::liveBytes() { return Live.load(); }

std::size_t frost::memstats::peakBytes() { return Peak.load(); }

void frost::memstats::resetPeak() { Peak.store(Live.load()); }
