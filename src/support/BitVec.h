//===- BitVec.h - Fixed-width two's-complement integers ---------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines BitVec, an arbitrary-bit-width (1..64) two's-complement integer in
/// the spirit of llvm::APInt. All arithmetic wraps modulo 2^width; the
/// overflow predicates report when wrapping occurred, which is what the nsw /
/// nuw poison rules of the paper's Figure 5 are defined in terms of.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SUPPORT_BITVEC_H
#define FROST_SUPPORT_BITVEC_H

#include <cassert>
#include <cstdint>
#include <string>

namespace frost {

/// A fixed-width integer value of 1 to 64 bits with wrapping arithmetic.
class BitVec {
  uint32_t Width = 1;
  uint64_t Bits = 0; // Invariant: masked to the low Width bits.

  uint64_t mask() const {
    return Width == 64 ? ~uint64_t(0) : ((uint64_t(1) << Width) - 1);
  }

public:
  BitVec() = default;
  BitVec(unsigned Width, uint64_t Value) : Width(Width), Bits(Value & mask()) {
    assert(Width >= 1 && Width <= 64 && "unsupported bit width");
  }

  static BitVec allOnes(unsigned Width) { return BitVec(Width, ~uint64_t(0)); }
  static BitVec minSigned(unsigned Width) {
    return BitVec(Width, uint64_t(1) << (Width - 1));
  }
  static BitVec maxSigned(unsigned Width) {
    return BitVec(Width, (uint64_t(1) << (Width - 1)) - 1);
  }

  unsigned width() const { return Width; }

  /// The value zero-extended to 64 bits.
  uint64_t zext() const { return Bits; }

  /// The value sign-extended to 64 bits.
  int64_t sext() const {
    if (Width == 64)
      return static_cast<int64_t>(Bits);
    uint64_t SignBit = uint64_t(1) << (Width - 1);
    return static_cast<int64_t>((Bits ^ SignBit)) -
           static_cast<int64_t>(SignBit);
  }

  bool isZero() const { return Bits == 0; }
  bool isOne() const { return Bits == 1; }
  bool isAllOnes() const { return Bits == mask(); }
  bool isNegative() const { return (Bits >> (Width - 1)) & 1; }
  bool isMinSigned() const { return Bits == (uint64_t(1) << (Width - 1)); }
  bool isPowerOf2() const { return Bits != 0 && (Bits & (Bits - 1)) == 0; }

  bool getBit(unsigned I) const {
    assert(I < Width && "bit index out of range");
    return (Bits >> I) & 1;
  }
  void setBit(unsigned I, bool V) {
    assert(I < Width && "bit index out of range");
    if (V)
      Bits |= uint64_t(1) << I;
    else
      Bits &= ~(uint64_t(1) << I);
  }

  unsigned countTrailingZeros() const;
  unsigned countLeadingZeros() const;
  unsigned popCount() const;

  // Wrapping arithmetic.
  BitVec add(const BitVec &RHS) const { return bin(RHS, Bits + RHS.Bits); }
  BitVec sub(const BitVec &RHS) const { return bin(RHS, Bits - RHS.Bits); }
  BitVec mul(const BitVec &RHS) const { return bin(RHS, Bits * RHS.Bits); }
  BitVec udiv(const BitVec &RHS) const; // Asserts RHS != 0.
  BitVec sdiv(const BitVec &RHS) const; // Asserts RHS != 0, no overflow.
  BitVec urem(const BitVec &RHS) const;
  BitVec srem(const BitVec &RHS) const;
  BitVec shl(const BitVec &RHS) const;  // Asserts in-range shift amount.
  BitVec lshr(const BitVec &RHS) const; // Asserts in-range shift amount.
  BitVec ashr(const BitVec &RHS) const; // Asserts in-range shift amount.
  BitVec and_(const BitVec &RHS) const { return bin(RHS, Bits & RHS.Bits); }
  BitVec or_(const BitVec &RHS) const { return bin(RHS, Bits | RHS.Bits); }
  BitVec xor_(const BitVec &RHS) const { return bin(RHS, Bits ^ RHS.Bits); }
  BitVec not_() const { return BitVec(Width, ~Bits); }
  BitVec neg() const { return BitVec(Width, 0).sub(*this); }

  // Overflow / exactness predicates for the nsw/nuw/exact poison rules.
  bool uaddOverflows(const BitVec &RHS) const;
  bool saddOverflows(const BitVec &RHS) const;
  bool usubOverflows(const BitVec &RHS) const;
  bool ssubOverflows(const BitVec &RHS) const;
  bool umulOverflows(const BitVec &RHS) const;
  bool smulOverflows(const BitVec &RHS) const;
  /// True iff sdiv would overflow (INT_MIN / -1).
  bool sdivOverflows(const BitVec &RHS) const {
    return isMinSigned() && RHS.isAllOnes();
  }
  /// True iff a shift amount is >= the bit width (deferred UB in the IR).
  bool shiftTooBig() const { return Bits >= Width; }
  /// True iff shl discards bits that differ from the resulting sign bit.
  bool shlSignedOverflows(const BitVec &ShAmt) const;
  /// True iff shl discards non-zero bits.
  bool shlUnsignedOverflows(const BitVec &ShAmt) const;

  // Comparisons.
  bool eq(const BitVec &RHS) const { return same(RHS) && Bits == RHS.Bits; }
  bool ult(const BitVec &RHS) const { return same(RHS) && Bits < RHS.Bits; }
  bool ule(const BitVec &RHS) const { return same(RHS) && Bits <= RHS.Bits; }
  bool slt(const BitVec &RHS) const { return same(RHS) && sext() < RHS.sext(); }
  bool sle(const BitVec &RHS) const {
    return same(RHS) && sext() <= RHS.sext();
  }

  bool operator==(const BitVec &RHS) const {
    return Width == RHS.Width && Bits == RHS.Bits;
  }
  bool operator!=(const BitVec &RHS) const { return !(*this == RHS); }

  // Width changes.
  BitVec truncTo(unsigned NewWidth) const {
    assert(NewWidth <= Width && "trunc must narrow");
    return BitVec(NewWidth, Bits);
  }
  BitVec zextTo(unsigned NewWidth) const {
    assert(NewWidth >= Width && "zext must widen");
    return BitVec(NewWidth, Bits);
  }
  BitVec sextTo(unsigned NewWidth) const {
    assert(NewWidth >= Width && "sext must widen");
    return BitVec(NewWidth, static_cast<uint64_t>(sext()));
  }

  /// Renders the value as an unsigned decimal string.
  std::string toString() const;
  /// Renders the value as a signed decimal string.
  std::string toSignedString() const;

private:
  bool same(const BitVec &RHS) const {
    assert(Width == RHS.Width && "width mismatch");
    return true;
  }
  BitVec bin(const BitVec &RHS, uint64_t Raw) const {
    (void)same(RHS);
    return BitVec(Width, Raw);
  }
};

} // namespace frost

#endif // FROST_SUPPORT_BITVEC_H
