//===- AtomicFile.cpp - Atomic whole-file replacement ----------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

using namespace frost;

namespace {

void setError(std::string *Error, std::string Msg) {
  if (Error)
    *Error = std::move(Msg);
}

std::string errnoText() { return std::strerror(errno); }

} // namespace

bool frost::writeFileAtomic(const std::string &Path,
                            const std::string &Contents, std::string *Error) {
  // Unique staging name: pid distinguishes processes, the counter
  // distinguishes threads (and successive calls) within one process. The
  // temp must live in the destination's directory for rename() to be atomic.
  static std::atomic<uint64_t> Counter{0};
  std::string Tmp = Path + ".tmp." + std::to_string((long long)::getpid()) +
                    "." + std::to_string(Counter.fetch_add(1));

  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (Fd < 0) {
    setError(Error, "cannot create temp file '" + Tmp + "': " + errnoText());
    return false;
  }

  const char *P = Contents.data();
  size_t Left = Contents.size();
  while (Left) {
    ssize_t N = ::write(Fd, P, Left);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      setError(Error, "write to '" + Tmp + "' failed: " + errnoText());
      ::close(Fd);
      ::unlink(Tmp.c_str());
      return false;
    }
    P += N;
    Left -= size_t(N);
  }

  // Flush file contents to stable storage before publishing the name:
  // rename-after-fsync guarantees the destination never points at a file
  // whose blocks were still in flight when the machine died.
  if (::fsync(Fd) != 0) {
    setError(Error, "fsync of '" + Tmp + "' failed: " + errnoText());
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return false;
  }
  if (::close(Fd) != 0) {
    setError(Error, "close of '" + Tmp + "' failed: " + errnoText());
    ::unlink(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    setError(Error,
             "cannot rename '" + Tmp + "' to '" + Path + "': " + errnoText());
    ::unlink(Tmp.c_str());
    return false;
  }
  return true;
}
