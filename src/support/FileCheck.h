//===- FileCheck.h - Golden-output directive matcher ------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FileCheck-style matcher: a check file annotates expected output with
/// directives, and checkInput() verifies a candidate input against them.
/// This is what every golden IR test under tests/ir/ runs through (via the
/// frost-filecheck tool and the frost-lit runner); see docs/testing.md for
/// the directive dialect and examples.
///
/// Supported directives (with the default CHECK prefix):
///
///   CHECK:       match a line at or after the current position
///   CHECK-NEXT:  match exactly the next line
///   CHECK-NOT:   pattern must NOT occur before the next positive match
///   CHECK-LABEL: partition the input; later directives cannot match
///                across the next label's line
///   CHECK-DAG:   a run of consecutive DAG directives may match their
///                lines in any order
///
/// Patterns are literal text, with two escapes:
///
///   {{regex}}       an ECMAScript regular-expression fragment
///   [[VAR:regex]]   match the fragment and bind it to VAR
///   [[VAR]]         match the current binding of VAR (rebindable)
///
/// Failures render a two-location caret diagnostic: the first failing
/// directive in the check file, and the input position where the search
/// gave up (the "scanning from here" window).
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SUPPORT_FILECHECK_H
#define FROST_SUPPORT_FILECHECK_H

#include <string>

namespace frost {
namespace filecheck {

struct FileCheckOptions {
  /// Directive prefix; "CHECK" unless a test wants a private dialect.
  std::string Prefix = "CHECK";
  /// Names used in diagnostics.
  std::string CheckFileName = "<check>";
  std::string InputFileName = "<input>";
};

/// Outcome of one check-file / input pair.
struct FileCheckResult {
  bool Ok = true;
  /// On failure: a multi-line caret diagnostic naming the first failing
  /// directive and the search window. Empty on success.
  std::string Message;

  explicit operator bool() const { return Ok; }
};

/// Verifies \p Input against the directives embedded in \p CheckText.
/// A check file with no directives at all is an error (it would
/// vacuously pass otherwise).
FileCheckResult checkInput(const std::string &CheckText,
                           const std::string &Input,
                           const FileCheckOptions &Opts = FileCheckOptions());

} // namespace filecheck
} // namespace frost

#endif // FROST_SUPPORT_FILECHECK_H
