//===- Casting.h - isa/cast/dyn_cast templates ------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal re-implementation of LLVM's hand-rolled RTTI: isa<>, cast<> and
/// dyn_cast<>, dispatching on a static classof(From*) predicate declared by
/// each class in the hierarchy.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SUPPORT_CASTING_H
#define FROST_SUPPORT_CASTING_H

#include <cassert>

namespace frost {

/// True iff \p V points to an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> used on a null pointer");
  return To::classof(V);
}

/// Checked downcast: asserts that \p V really is a \p To.
template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<To *>(V);
}

template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> argument of incompatible type");
  return static_cast<const To *>(V);
}

/// Reference forms of cast<>.
template <typename To, typename From> To &cast(From &V) {
  assert(isa<To>(&V) && "cast<> argument of incompatible type");
  return static_cast<To &>(V);
}

template <typename To, typename From> const To &cast(const From &V) {
  assert(isa<To>(&V) && "cast<> argument of incompatible type");
  return static_cast<const To &>(V);
}

/// Checking downcast: returns null when \p V is not a \p To.
template <typename To, typename From> To *dyn_cast(From *V) {
  return isa<To>(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

/// Like dyn_cast, but tolerates a null argument.
template <typename To, typename From> To *dyn_cast_or_null(From *V) {
  return V ? dyn_cast<To>(V) : nullptr;
}

} // namespace frost

#endif // FROST_SUPPORT_CASTING_H
