//===- TaskQueue.h - Work-stealing task deque -------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-worker deque underlying support/ThreadPool. The owning worker
/// pushes and pops at the back (LIFO, keeping its cache warm on recursively
/// submitted work); idle workers steal from the front (FIFO, taking the
/// oldest — typically largest — task). Each queue is guarded by its own
/// mutex, so contention is limited to steal attempts against one victim.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SUPPORT_TASKQUEUE_H
#define FROST_SUPPORT_TASKQUEUE_H

#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>

namespace frost {

class TaskQueue {
public:
  using Task = std::function<void()>;

  /// Enqueues at the back (owner side).
  void push(Task T) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Tasks.push_back(std::move(T));
  }

  /// Dequeues from the back; the owning worker's fast path.
  std::optional<Task> pop() {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Tasks.empty())
      return std::nullopt;
    Task T = std::move(Tasks.back());
    Tasks.pop_back();
    return T;
  }

  /// Dequeues from the front; used by other workers when their own queue
  /// runs dry.
  std::optional<Task> steal() {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Tasks.empty())
      return std::nullopt;
    Task T = std::move(Tasks.front());
    Tasks.pop_front();
    return T;
  }

  bool empty() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Tasks.empty();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Tasks.size();
  }

private:
  mutable std::mutex Mutex;
  std::deque<Task> Tasks;
};

} // namespace frost

#endif // FROST_SUPPORT_TASKQUEUE_H
