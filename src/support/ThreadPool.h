//===- ThreadPool.h - Work-stealing thread pool -----------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing thread pool for the embarrassingly parallel workloads in
/// frost: translation-validation campaigns (tv/Campaign) and fuzzing sweeps.
/// Each worker owns a TaskQueue; submissions are distributed round-robin and
/// idle workers steal from their siblings, so one oversized shard cannot
/// leave the rest of the machine idle.
///
/// Error contract: tasks submitted via async() report exceptions through the
/// returned future; tasks submitted via submit() have EVERY exception
/// captured (in completion order) and rethrown from wait(), one per call,
/// after the pool has drained. A throwing task never cancels queued work and
/// never poisons the pool: remaining tasks still run deterministically, and
/// once wait() has surfaced the captured errors the pool accepts new work as
/// if nothing happened — the property a long-lived daemon scheduling onto
/// one shared pool depends on. The destructor drains all remaining work (it
/// never drops submitted tasks) and swallows captured exceptions — call
/// wait() until clean first if you care about them.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SUPPORT_THREADPOOL_H
#define FROST_SUPPORT_THREADPOOL_H

#include "support/TaskQueue.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace frost {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers; 0 means defaultThreadCount().
  explicit ThreadPool(unsigned NumThreads = 0);

  /// Drains every submitted task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p T for execution. Safe to call from any thread, including
  /// from inside a running task.
  void submit(TaskQueue::Task T);

  /// Enqueues a callable and returns a future for its result; exceptions
  /// thrown by \p F surface from future::get().
  template <typename Fn> auto async(Fn F) {
    using R = std::invoke_result_t<Fn>;
    auto Job = std::make_shared<std::packaged_task<R()>>(std::move(F));
    std::future<R> Result = Job->get_future();
    submit([Job] { (*Job)(); });
    return Result;
  }

  /// Blocks until every task submitted so far (including tasks they spawned)
  /// has finished — work queued behind a throwing task is never dropped —
  /// then rethrows the oldest captured submit() exception, if any, removing
  /// it from the pool's error state. When tasks threw more than once, each
  /// further wait() call (immediately re-satisfied: the pool is already
  /// idle) surfaces the next one; a wait() that returns normally means no
  /// captured errors remain and the pool is clean for reuse.
  void wait();

  /// Captured submit() exceptions not yet surfaced by wait().
  uint64_t pendingErrors() const;

  unsigned numThreads() const { return unsigned(Workers.size()); }

  /// Hardware concurrency, with a floor of 1.
  static unsigned defaultThreadCount();

private:
  void workerMain(unsigned Self);
  std::optional<TaskQueue::Task> take(unsigned Self);
  void runTask(TaskQueue::Task &T);

  std::vector<std::unique_ptr<TaskQueue>> Queues;
  std::vector<std::thread> Workers;

  mutable std::mutex Mutex;
  std::condition_variable WorkCV; ///< Signalled on submit and shutdown.
  std::condition_variable IdleCV; ///< Signalled when Pending hits zero.

  std::atomic<uint64_t> Pending{0};     ///< Submitted but not yet finished.
  std::atomic<uint64_t> SubmitSeq{0};   ///< Bumped per submit (wakeup token).
  std::atomic<unsigned> NextQueue{0};   ///< Round-robin submission cursor.
  std::atomic<bool> Stopping{false};

  /// Every exception captured from submit() tasks, in completion order,
  /// consumed one per wait(). Guarded by Mutex. (A single FirstError slot
  /// here once dropped all but the first failure on the floor.)
  std::deque<std::exception_ptr> Errors;
};

} // namespace frost

#endif // FROST_SUPPORT_THREADPOOL_H
