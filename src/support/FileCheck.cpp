//===- FileCheck.cpp - Golden-output directive matcher -------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/FileCheck.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <vector>

using namespace frost;
using namespace frost::filecheck;

namespace {

enum class DirKind { Check, Next, Not, Label, Dag };

const char *dirName(DirKind K, const std::string &Prefix, std::string &Buf) {
  switch (K) {
  case DirKind::Check:
    Buf = Prefix + ":";
    break;
  case DirKind::Next:
    Buf = Prefix + "-NEXT:";
    break;
  case DirKind::Not:
    Buf = Prefix + "-NOT:";
    break;
  case DirKind::Label:
    Buf = Prefix + "-LABEL:";
    break;
  case DirKind::Dag:
    Buf = Prefix + "-DAG:";
    break;
  }
  return Buf.c_str();
}

/// One piece of a directive pattern.
struct Segment {
  enum Kind { Lit, Re, VarDef, VarUse } K;
  std::string Text; ///< Literal text or regex fragment.
  std::string Var;  ///< Variable name for VarDef/VarUse.
};

struct Directive {
  DirKind Kind;
  std::vector<Segment> Segs;
  unsigned CheckLine = 0; ///< 1-based line in the check file.
  unsigned CheckCol = 0;  ///< 1-based column where the pattern starts.
  std::string RawLine;    ///< Full check-file line, for diagnostics.
  std::string Pattern;    ///< Raw pattern text, for diagnostics.
};

std::string escapeRegex(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (std::string("\\^$.|?*+()[]{}").find(C) != std::string::npos)
      Out += '\\';
    Out += C;
  }
  return Out;
}

/// Number of capturing groups a user regex fragment introduces (so variable
/// definitions after it index the right std::smatch slot).
unsigned countCaptureGroups(const std::string &Re) {
  unsigned N = 0;
  for (size_t I = 0; I < Re.size(); ++I) {
    if (Re[I] == '\\') {
      ++I;
      continue;
    }
    if (Re[I] == '(' && (I + 1 >= Re.size() || Re[I + 1] != '?'))
      ++N;
  }
  return N;
}

struct MatchResult {
  size_t Pos = 0, Len = 0;
  std::vector<std::pair<std::string, std::string>> NewBindings;
};

/// Why a pattern failed to even compile (bad regex, undefined variable).
struct PatternError {
  std::string Why;
};

using Bindings = std::map<std::string, std::string>;

/// Tries \p D against one input line under the current \p Binds.
/// Returns the match, std::nullopt on no-match, or a PatternError.
std::optional<MatchResult> matchLine(const Directive &D, const Bindings &Binds,
                                     const std::string &Line,
                                     std::optional<PatternError> &Err) {
  std::string Re;
  unsigned NextGroup = 1;
  // Variables defined earlier in this same pattern resolve to
  // backreferences so "[[X:%[a-z]+]] = add ... [[X]]" works in one line.
  std::map<std::string, unsigned> LocalGroups;
  std::vector<std::pair<std::string, unsigned>> Defs; // var -> group
  for (const Segment &S : D.Segs) {
    switch (S.K) {
    case Segment::Lit:
      Re += escapeRegex(S.Text);
      break;
    case Segment::Re:
      Re += "(?:" + S.Text + ")";
      NextGroup += countCaptureGroups(S.Text);
      break;
    case Segment::VarDef:
      Re += "(" + S.Text + ")";
      Defs.push_back({S.Var, NextGroup});
      LocalGroups[S.Var] = NextGroup;
      ++NextGroup;
      NextGroup += countCaptureGroups(S.Text);
      break;
    case Segment::VarUse: {
      auto Local = LocalGroups.find(S.Var);
      if (Local != LocalGroups.end()) {
        Re += "\\" + std::to_string(Local->second);
        break;
      }
      auto Bound = Binds.find(S.Var);
      if (Bound == Binds.end()) {
        Err = PatternError{"use of undefined variable '" + S.Var + "'"};
        return std::nullopt;
      }
      Re += escapeRegex(Bound->second);
      break;
    }
    }
  }
  try {
    std::regex Compiled(Re, std::regex::ECMAScript);
    std::smatch M;
    if (!std::regex_search(Line, M, Compiled))
      return std::nullopt;
    MatchResult R;
    R.Pos = size_t(M.position(0));
    R.Len = size_t(M.length(0));
    for (const auto &[Var, Group] : Defs)
      R.NewBindings.push_back({Var, M[Group].str()});
    return R;
  } catch (const std::regex_error &E) {
    Err = PatternError{std::string("invalid regular expression: ") + E.what()};
    return std::nullopt;
  }
}

/// Renders "file:line:col: error: ..." with the source line and a caret.
void renderLoc(std::ostringstream &OS, const std::string &File, unsigned Line,
               unsigned Col, const char *Severity, const std::string &Msg,
               const std::string &SrcLine) {
  OS << File << ":" << Line << ":" << Col << ": " << Severity << ": " << Msg
     << "\n";
  OS << SrcLine << "\n";
  for (unsigned I = 1; I < Col; ++I)
    OS << (I - 1 < SrcLine.size() && SrcLine[I - 1] == '\t' ? '\t' : ' ');
  OS << "^\n";
}

class Checker {
public:
  Checker(const FileCheckOptions &Opts, const std::string &CheckText,
          const std::string &Input)
      : Opts(Opts) {
    splitLines(Input, InputLines);
    parseDirectives(CheckText);
  }

  FileCheckResult run();

private:
  void splitLines(const std::string &Text, std::vector<std::string> &Out) {
    size_t Pos = 0;
    while (Pos <= Text.size()) {
      size_t NL = Text.find('\n', Pos);
      if (NL == std::string::npos) {
        if (Pos < Text.size())
          Out.push_back(Text.substr(Pos));
        break;
      }
      Out.push_back(Text.substr(Pos, NL - Pos));
      Pos = NL + 1;
    }
  }

  void parseDirectives(const std::string &CheckText);
  void parsePattern(const std::string &Text, Directive &D);

  /// Diagnostic helpers; each returns a failed FileCheckResult.
  FileCheckResult failAt(const Directive &D, const std::string &Msg,
                         std::optional<size_t> InputLine,
                         const std::string &InputNote, size_t InputCol = 0);

  FileCheckResult runBlock(size_t DirBegin, size_t DirEnd, size_t LineBegin,
                           size_t LineEnd, bool Anchored, Bindings &Binds);

  const FileCheckOptions &Opts;
  std::vector<std::string> InputLines;
  std::vector<Directive> Directives;
  std::optional<FileCheckResult> ParseError;
  std::string ScratchBuf; ///< Backing store for dirName().
};

void Checker::parsePattern(const std::string &Text, Directive &D) {
  size_t Pos = 0;
  std::string Lit;
  auto FlushLit = [&] {
    if (!Lit.empty()) {
      D.Segs.push_back({Segment::Lit, Lit, ""});
      Lit.clear();
    }
  };
  while (Pos < Text.size()) {
    if (Text.compare(Pos, 2, "{{") == 0) {
      size_t End = Text.find("}}", Pos + 2);
      if (End == std::string::npos) {
        Lit += Text.substr(Pos);
        break;
      }
      FlushLit();
      D.Segs.push_back({Segment::Re, Text.substr(Pos + 2, End - Pos - 2), ""});
      Pos = End + 2;
      continue;
    }
    if (Text.compare(Pos, 2, "[[") == 0) {
      size_t End = Text.find("]]", Pos + 2);
      if (End != std::string::npos) {
        std::string Inner = Text.substr(Pos + 2, End - Pos - 2);
        size_t Colon = Inner.find(':');
        std::string Name = Colon == std::string::npos
                               ? Inner
                               : Inner.substr(0, Colon);
        bool ValidName = !Name.empty();
        for (char C : Name)
          if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
            ValidName = false;
        if (ValidName) {
          FlushLit();
          if (Colon == std::string::npos)
            D.Segs.push_back({Segment::VarUse, "", Name});
          else
            D.Segs.push_back(
                {Segment::VarDef, Inner.substr(Colon + 1), Name});
          Pos = End + 2;
          continue;
        }
      }
      // Not a variable block: fall through as literal text.
    }
    Lit += Text[Pos++];
  }
  FlushLit();
}

void Checker::parseDirectives(const std::string &CheckText) {
  std::vector<std::string> CheckLines;
  splitLines(CheckText, CheckLines);

  const std::string &P = Opts.Prefix;
  const std::vector<std::pair<std::string, DirKind>> Suffixes = {
      {"-NEXT:", DirKind::Next},
      {"-NOT:", DirKind::Not},
      {"-LABEL:", DirKind::Label},
      {"-DAG:", DirKind::Dag},
      {":", DirKind::Check},
  };

  for (size_t LineNo = 0; LineNo < CheckLines.size(); ++LineNo) {
    const std::string &Line = CheckLines[LineNo];
    for (size_t From = 0;
         (From = Line.find(P, From)) != std::string::npos; ++From) {
      // Require a directive boundary: the prefix must not be glued to a
      // preceding identifier character ("MYCHECK:" is not a directive).
      if (From > 0 &&
          (std::isalnum(static_cast<unsigned char>(Line[From - 1])) ||
           Line[From - 1] == '_'))
        continue;
      const std::pair<std::string, DirKind> *Hit = nullptr;
      for (const auto &S : Suffixes)
        if (Line.compare(From + P.size(), S.first.size(), S.first) == 0) {
          Hit = &S;
          break;
        }
      if (!Hit)
        continue;
      Directive D;
      D.Kind = Hit->second;
      D.CheckLine = unsigned(LineNo + 1);
      D.RawLine = Line;
      size_t PatStart = From + P.size() + Hit->first.size();
      while (PatStart < Line.size() &&
             (Line[PatStart] == ' ' || Line[PatStart] == '\t'))
        ++PatStart;
      size_t PatEnd = Line.size();
      while (PatEnd > PatStart && (Line[PatEnd - 1] == ' ' ||
                                   Line[PatEnd - 1] == '\t' ||
                                   Line[PatEnd - 1] == '\r'))
        --PatEnd;
      D.Pattern = Line.substr(PatStart, PatEnd - PatStart);
      D.CheckCol = unsigned(PatStart + 1);
      if (D.Pattern.empty()) {
        std::ostringstream OS;
        renderLoc(OS, Opts.CheckFileName, D.CheckLine,
                  unsigned(From + 1), "error",
                  std::string(dirName(D.Kind, P, ScratchBuf)) +
                      " directive has an empty pattern",
                  Line);
        ParseError = FileCheckResult{false, OS.str()};
        return;
      }
      parsePattern(D.Pattern, D);
      Directives.push_back(std::move(D));
      break; // One directive per check line.
    }
  }
}

FileCheckResult Checker::failAt(const Directive &D, const std::string &Msg,
                                std::optional<size_t> InputLine,
                                const std::string &InputNote,
                                size_t InputCol) {
  std::ostringstream OS;
  renderLoc(OS, Opts.CheckFileName, D.CheckLine, D.CheckCol, "error",
            std::string(dirName(D.Kind, Opts.Prefix, ScratchBuf)) + " " + Msg,
            D.RawLine);
  if (InputLine) {
    size_t L = *InputLine;
    if (L < InputLines.size())
      renderLoc(OS, Opts.InputFileName, unsigned(L + 1),
                unsigned(InputCol + 1), "note", InputNote, InputLines[L]);
    else
      OS << Opts.InputFileName << ":" << (InputLines.size() + 1)
         << ":1: note: " << InputNote << " (at end of input)\n";
  }
  return FileCheckResult{false, OS.str()};
}

FileCheckResult Checker::runBlock(size_t DirBegin, size_t DirEnd,
                                  size_t LineBegin, size_t LineEnd,
                                  bool Anchored, Bindings &Binds) {
  size_t Pos = LineBegin;      // Next input line eligible for a match.
  size_t NotStart = LineBegin; // Window start for pending CHECK-NOTs.
  std::vector<const Directive *> PendingNots;
  std::vector<const Directive *> DagGroup;

  auto Bind = [&](const MatchResult &M) {
    for (const auto &[Var, Val] : M.NewBindings)
      Binds[Var] = Val;
  };

  // Verifies every pending CHECK-NOT is absent from [NotStart, To).
  auto CheckNots = [&](size_t To) -> std::optional<FileCheckResult> {
    for (const Directive *N : PendingNots)
      for (size_t L = NotStart; L < To && L < LineEnd; ++L) {
        std::optional<PatternError> Err;
        if (auto M = matchLine(*N, Binds, InputLines[L], Err))
          return failAt(*N, "excluded string found in input", L,
                        "found here", M->Pos);
        if (Err)
          return failAt(*N, Err->Why, std::nullopt, "");
      }
    PendingNots.clear();
    return std::nullopt;
  };

  // Matches a run of consecutive CHECK-DAG directives, order-free.
  auto FlushDags = [&]() -> std::optional<FileCheckResult> {
    if (DagGroup.empty())
      return std::nullopt;
    std::set<size_t> Claimed;
    size_t MinLine = LineEnd, MaxLine = Pos;
    for (const Directive *D : DagGroup) {
      bool Found = false;
      for (size_t L = Pos; L < LineEnd; ++L) {
        if (Claimed.count(L))
          continue;
        std::optional<PatternError> Err;
        if (auto M = matchLine(*D, Binds, InputLines[L], Err)) {
          Claimed.insert(L);
          Bind(*M);
          MinLine = std::min(MinLine, L);
          MaxLine = std::max(MaxLine, L + 1);
          Found = true;
          break;
        }
        if (Err)
          return failAt(*D, Err->Why, std::nullopt, "");
      }
      if (!Found)
        return failAt(*D, "expected string not found in input (DAG group)",
                      Pos < LineEnd ? std::optional<size_t>(Pos)
                                    : std::nullopt,
                      "scanning from here");
    }
    if (auto F = CheckNots(MinLine))
      return F;
    DagGroup.clear();
    Pos = MaxLine;
    NotStart = Pos;
    Anchored = true;
    return std::nullopt;
  };

  for (size_t I = DirBegin; I < DirEnd; ++I) {
    const Directive &D = Directives[I];
    switch (D.Kind) {
    case DirKind::Label:
      // Labels are resolved by the caller; they delimit blocks.
      break;
    case DirKind::Not:
      if (auto F = FlushDags())
        return *F;
      PendingNots.push_back(&D);
      break;
    case DirKind::Dag:
      DagGroup.push_back(&D);
      break;
    case DirKind::Check: {
      if (auto F = FlushDags())
        return *F;
      std::optional<size_t> Found;
      std::optional<MatchResult> FoundM;
      for (size_t L = Pos; L < LineEnd; ++L) {
        std::optional<PatternError> Err;
        if ((FoundM = matchLine(D, Binds, InputLines[L], Err))) {
          Found = L;
          break;
        }
        if (Err)
          return failAt(D, Err->Why, std::nullopt, "");
      }
      if (!Found)
        return failAt(D, "expected string not found in input",
                      Pos < LineEnd ? std::optional<size_t>(Pos)
                                    : std::optional<size_t>(InputLines.size()),
                      "scanning from here");
      if (auto F = CheckNots(*Found))
        return *F;
      Bind(*FoundM);
      Pos = *Found + 1;
      NotStart = Pos;
      Anchored = true;
      break;
    }
    case DirKind::Next: {
      if (auto F = FlushDags())
        return *F;
      if (!Anchored)
        return failAt(D,
                      "directive without a preceding match in this block",
                      std::nullopt, "");
      if (Pos >= LineEnd)
        return failAt(D, "expected string not found: input ended",
                      std::optional<size_t>(LineEnd), "block ends here");
      std::optional<PatternError> Err;
      auto M = matchLine(D, Binds, InputLines[Pos], Err);
      if (Err)
        return failAt(D, Err->Why, std::nullopt, "");
      if (!M)
        return failAt(D, "expected string not found on the next line", Pos,
                      "next line is here");
      if (auto F = CheckNots(Pos))
        return *F;
      Bind(*M);
      ++Pos;
      NotStart = Pos;
      break;
    }
    }
  }
  if (auto F = FlushDags())
    return *F;
  if (auto F = CheckNots(LineEnd))
    return *F;
  return FileCheckResult{};
}

FileCheckResult Checker::run() {
  if (ParseError)
    return *ParseError;
  if (Directives.empty())
    return FileCheckResult{
        false, "error: no check directives found with prefix '" +
                   Opts.Prefix + ":' in " + Opts.CheckFileName + "\n"};

  Bindings Binds;

  // Pass 1: resolve every CHECK-LABEL to an input line, in order. Labels
  // partition the input; no other directive may match across them.
  std::vector<size_t> LabelDirs, LabelLines;
  for (size_t I = 0; I < Directives.size(); ++I)
    if (Directives[I].Kind == DirKind::Label)
      LabelDirs.push_back(I);
  size_t Scan = 0;
  for (size_t LI : LabelDirs) {
    const Directive &D = Directives[LI];
    std::optional<size_t> Found;
    for (size_t L = Scan; L < InputLines.size(); ++L) {
      std::optional<PatternError> Err;
      if (matchLine(D, Binds, InputLines[L], Err)) {
        Found = L;
        break;
      }
      if (Err)
        return failAt(D, Err->Why, std::nullopt, "");
    }
    if (!Found)
      return failAt(D, "expected string not found in input",
                    Scan < InputLines.size()
                        ? std::optional<size_t>(Scan)
                        : std::optional<size_t>(InputLines.size()),
                    "scanning from here");
    LabelLines.push_back(*Found);
    Scan = *Found + 1;
  }

  // Pass 2: run each block's directives inside its input window.
  size_t DirFrom = 0, LineFrom = 0;
  bool Anchored = false;
  for (size_t K = 0; K < LabelDirs.size(); ++K) {
    if (auto R = runBlock(DirFrom, LabelDirs[K], LineFrom, LabelLines[K],
                          Anchored, Binds);
        !R.Ok)
      return R;
    DirFrom = LabelDirs[K] + 1;
    LineFrom = LabelLines[K] + 1;
    Anchored = true; // The label itself is the block's anchor.
  }
  return runBlock(DirFrom, Directives.size(), LineFrom, InputLines.size(),
                  Anchored, Binds);
}

} // namespace

FileCheckResult frost::filecheck::checkInput(const std::string &CheckText,
                                             const std::string &Input,
                                             const FileCheckOptions &Opts) {
  Checker C(Opts, CheckText, Input);
  return C.run();
}
