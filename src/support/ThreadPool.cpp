//===- ThreadPool.cpp - Work-stealing thread pool --------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace frost;

unsigned ThreadPool::defaultThreadCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = defaultThreadCount();
  Queues.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Queues.push_back(std::make_unique<TaskQueue>());
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });
}

ThreadPool::~ThreadPool() {
  // Drain: workers keep running until nothing is pending, so tasks submitted
  // from inside tasks are also completed before shutdown.
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    IdleCV.wait(Lock, [this] { return Pending.load() == 0; });
    Stopping.store(true);
  }
  WorkCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(TaskQueue::Task T) {
  Pending.fetch_add(1);
  unsigned Q = NextQueue.fetch_add(1, std::memory_order_relaxed) %
               unsigned(Queues.size());
  Queues[Q]->push(std::move(T));
  SubmitSeq.fetch_add(1);
  // Empty critical section: pairs with the predicate re-check inside
  // WorkCV.wait so a worker cannot miss the wakeup between scanning the
  // queues and blocking.
  { std::lock_guard<std::mutex> Lock(Mutex); }
  WorkCV.notify_all();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  // Drain first, rethrow second: every queued task runs to completion even
  // when an earlier one threw, so an error never silently cancels work.
  IdleCV.wait(Lock, [this] { return Pending.load() == 0; });
  if (!Errors.empty()) {
    std::exception_ptr E = std::move(Errors.front());
    Errors.pop_front();
    std::rethrow_exception(E);
  }
}

uint64_t ThreadPool::pendingErrors() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Errors.size();
}

std::optional<TaskQueue::Task> ThreadPool::take(unsigned Self) {
  if (auto T = Queues[Self]->pop())
    return T;
  // Steal round: start just past ourselves so victims are spread out.
  for (unsigned I = 1, N = unsigned(Queues.size()); I != N; ++I)
    if (auto T = Queues[(Self + I) % N]->steal())
      return T;
  return std::nullopt;
}

void ThreadPool::runTask(TaskQueue::Task &T) {
  try {
    T();
  } catch (...) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Errors.push_back(std::current_exception());
  }
  if (Pending.fetch_sub(1) == 1) {
    { std::lock_guard<std::mutex> Lock(Mutex); }
    IdleCV.notify_all();
  }
}

void ThreadPool::workerMain(unsigned Self) {
  while (true) {
    uint64_t Seen = SubmitSeq.load();
    if (auto T = take(Self)) {
      runTask(*T);
      continue;
    }
    std::unique_lock<std::mutex> Lock(Mutex);
    WorkCV.wait(Lock, [this, Seen] {
      return Stopping.load() || SubmitSeq.load() != Seen;
    });
    if (Stopping.load()) {
      // Finish any straggler work that raced with shutdown.
      Lock.unlock();
      while (auto T = take(Self))
        runTask(*T);
      return;
    }
  }
}
