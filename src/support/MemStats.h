//===- MemStats.h - Compiler memory accounting ------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight accounting of IR object allocations, used by the Section 7.2
/// "peak memory consumption" benchmark. IR constructors report their sizes
/// here; benchmarks sample the high-water mark around a compilation.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_SUPPORT_MEMSTATS_H
#define FROST_SUPPORT_MEMSTATS_H

#include <cstddef>

namespace frost {
namespace memstats {

/// Records an allocation of \p Bytes attributed to compiler data structures.
void recordAlloc(std::size_t Bytes);

/// Records that \p Bytes previously recorded were released.
void recordFree(std::size_t Bytes);

/// Currently live recorded bytes.
std::size_t liveBytes();

/// Highest value liveBytes() has reached since the last resetPeak().
std::size_t peakBytes();

/// Resets the high-water mark to the current live figure.
void resetPeak();

} // namespace memstats
} // namespace frost

#endif // FROST_SUPPORT_MEMSTATS_H
