//===- Stats.cpp - Named atomic statistics counters -------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <map>
#include <memory>
#include <mutex>

using namespace frost;

namespace {

struct Registry {
  std::mutex Mutex;
  // unique_ptr keeps the atomic's address stable across map growth.
  std::map<std::string, std::unique_ptr<std::atomic<uint64_t>>> Counters;
};

Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

std::atomic<uint64_t> &stats::counter(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto &Slot = R.Counters[Name];
  if (!Slot)
    Slot = std::make_unique<std::atomic<uint64_t>>(0);
  return *Slot;
}

void stats::add(const std::string &Name, uint64_t Delta) {
  counter(Name).fetch_add(Delta, std::memory_order_relaxed);
}

uint64_t stats::get(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Counters.find(Name);
  return It == R.Counters.end() ? 0 : It->second->load();
}

std::vector<std::pair<std::string, uint64_t>> stats::snapshot() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(R.Counters.size());
  for (const auto &[Name, Value] : R.Counters)
    Out.emplace_back(Name, Value->load());
  return Out;
}

void stats::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (auto &[Name, Value] : R.Counters)
    Value->store(0);
}

std::string stats::report(const std::string &Prefix) {
  std::string Out;
  for (const auto &[Name, Value] : snapshot()) {
    if (Name.compare(0, Prefix.size(), Prefix) != 0)
      continue;
    Out += Name + " = " + std::to_string(Value) + "\n";
  }
  return Out;
}
