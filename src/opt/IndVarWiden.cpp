//===- IndVarWiden.cpp - Induction variable widening ---------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 3 transformation: a narrow induction variable that is
/// sign-extended in the loop body is replaced by a wide induction variable,
/// eliminating the per-iteration sext ("up to 39% faster, one instruction
/// per iteration"). Section 2.4 shows this is ONLY justified when narrow
/// overflow is poison (nsw): with wrapping or undef semantics the wide
/// trip sequence diverges from the narrow one. The pass therefore insists
/// on an nsw step.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "opt/Passes.h"
#include "opt/Utils.h"

using namespace frost;
using namespace frost::opt;

namespace {

class IndVarWiden : public Pass {
public:
  explicit IndVarWiden(unsigned TargetWidth) : TargetWidth(TargetWidth) {}

  const char *name() const override { return "indvar-widen"; }

  PreservedAnalyses run(Function &F, AnalysisManager &AM) override {
    LoopInfo &LI = AM.get<LoopInfoAnalysis>(F);
    bool Changed = false;
    for (Loop *L : LI.loopsInnermostFirst())
      Changed |= widenLoop(*L);
    // Widening adds a phi + add and rewrites sexts; no CFG edits.
    return Changed ? preservedCFGAnalyses() : PreservedAnalyses::all();
  }

private:
  unsigned TargetWidth;

  bool widenLoop(Loop &L);
};

bool IndVarWiden::widenLoop(Loop &L) {
  BasicBlock *Preheader = L.preheader();
  if (!Preheader)
    return false;
  BasicBlock *Header = L.header();
  IRContext &Ctx = Header->getParent()->context();

  bool Changed = false;
  for (PhiNode *IV : Header->phis()) {
    // Canonical shape: %i = phi [start, preheader], [%i.next, latch]
    // with %i.next = add nsw %i, step.
    if (IV->getNumIncoming() != 2 || !IV->getType()->isInteger())
      continue;
    if (IV->getType()->bitWidth() >= TargetWidth)
      continue;
    int PreIdx = IV->getBlockIndex(Preheader);
    if (PreIdx < 0)
      continue;
    unsigned LatchIdx = 1 - static_cast<unsigned>(PreIdx);
    Value *Start = IV->getIncomingValue(static_cast<unsigned>(PreIdx));
    auto *Step = dyn_cast<BinaryOperator>(IV->getIncomingValue(LatchIdx));
    if (!Step || Step->getOpcode() != Opcode::Add || !Step->hasNSW())
      continue;
    if (Step->lhs() != IV && Step->rhs() != IV)
      continue;
    Value *StepAmt = Step->lhs() == IV ? Step->rhs() : Step->lhs();
    const BitVec *StepC = constantValue(StepAmt);
    if (!StepC)
      continue;
    if (!L.contains(Step))
      continue;

    // Find sexts of the IV to the target width inside the loop.
    std::vector<CastInst *> Sexts;
    for (const Use *U : IV->uses()) {
      auto *SE = dyn_cast<CastInst>(U->getUser());
      if (SE && SE->getOpcode() == Opcode::SExt &&
          SE->getType()->bitWidth() == TargetWidth && L.contains(SE))
        Sexts.push_back(SE);
    }
    // Also widen sexts of the incremented value.
    std::vector<CastInst *> StepSexts;
    for (const Use *U : Step->uses()) {
      auto *SE = dyn_cast<CastInst>(U->getUser());
      if (SE && SE->getOpcode() == Opcode::SExt &&
          SE->getType()->bitWidth() == TargetWidth && L.contains(SE))
        StepSexts.push_back(SE);
    }
    if (Sexts.empty() && StepSexts.empty())
      continue;

    IntegerType *WideTy = Ctx.intTy(TargetWidth);

    // Wide start value, in the preheader (folded if constant).
    Value *WideStart;
    if (const BitVec *StartC = constantValue(Start)) {
      WideStart = Ctx.getInt(StartC->sextTo(TargetWidth));
    } else {
      auto *SE = CastInst::create(Opcode::SExt, Start, WideTy,
                                  IV->getName() + ".start.wide");
      Preheader->insertBefore(Preheader->terminator(), SE);
      WideStart = SE;
    }

    // Wide induction: %iw = phi [wide start, preheader],
    //                          [add nsw %iw, wide step, latch].
    auto *WideIV = PhiNode::create(WideTy, IV->getName() + ".wide");
    Header->insertBefore(Header->front(), WideIV);
    auto *WideStep = BinaryOperator::create(
        Opcode::Add, WideIV, Ctx.getInt(StepC->sextTo(TargetWidth)),
        {/*NSW=*/true, /*NUW=*/false, /*Exact=*/false},
        Step->getName() + ".wide");
    Step->getParent()->insertBefore(Step, WideStep);
    WideIV->addIncoming(WideStart, Preheader);
    WideIV->addIncoming(WideStep, IV->getIncomingBlock(LatchIdx));

    // Replace the sexts. The nsw on the narrow step is what makes
    // sext(i_narrow) == i_wide in every non-poison execution; on overflow
    // the narrow value is poison and anything refines it (Section 2.4).
    for (CastInst *SE : Sexts)
      replaceAndErase(SE, WideIV);
    for (CastInst *SE : StepSexts)
      replaceAndErase(SE, WideStep);
    Changed = true;
  }
  return Changed;
}

} // namespace

std::unique_ptr<Pass> frost::createIndVarWidenPass(unsigned TargetWidth) {
  return std::make_unique<IndVarWiden>(TargetWidth);
}
