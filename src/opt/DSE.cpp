//===- DSE.cpp - Dead store elimination ----------------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-local dead store elimination over the MemorySSA access chains: a
/// store is dead when a later store in the same block fully overwrites the
/// same location (AliasAnalysis MustAlias: same address, same extent) with
/// no intervening read or call that may observe the bytes. Memory is
/// observable at every block exit (the refinement verdict compares final
/// memory), so nothing is removed across block boundaries.
///
/// Removing an overwritten store is a refinement under *both* semantics —
/// the overwriting store reproduces the final bytes exactly. The Legacy
/// variant additionally performs the historical folklore "storing undef is
/// a no-op" deletion, which is unsound in the paper's per-bit model: the
/// deleted store resurrects whatever the bytes held before, and if that was
/// poison the target's final memory is strictly more poisonous than the
/// source's undef bytes (memBitRefines(Poison, Undef) fails). The proposed
/// semantics removes the rule along with undef itself.
///
/// Counters: "dse.dead_stores", "dse.undef_stores" (legacy folklore only).
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"
#include "ir/Constants.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "opt/Passes.h"
#include "support/Stats.h"

#include <set>

using namespace frost;

namespace {

class DSE : public Pass {
public:
  explicit DSE(PipelineMode Mode) : Mode(Mode) {}

  const char *name() const override { return "dse"; }

  std::string pipelineText() const override {
    return Mode == PipelineMode::Legacy ? "dse<legacy>" : "dse<proposed>";
  }

  PreservedAnalyses run(Function &F, AnalysisManager &AM) override {
    bool Changed = false;

    // Legacy folklore first, so a store of undef never "justifies" keeping
    // an earlier store it was about to overwrite.
    if (Mode == PipelineMode::Legacy)
      Changed |= eraseUndefStores(F);
    if (Changed)
      // The sweep removed memory defs; drop the stale MemorySSA before
      // requesting a fresh one (CFG-level analyses survive).
      AM.invalidate(F, preservedCFGAnalyses());

    AliasAnalysis &AA = AM.get<AAAnalysis>(F);
    const MemorySSA &MSSA = AM.get<MemorySSAAnalysis>(F);

    for (BasicBlock *BB : F)
      Changed |= eliminateOverwritten(*BB, MSSA, AA);

    return Changed ? preservedCFGAnalyses() : PreservedAnalyses::all();
  }

private:
  PipelineMode Mode;

  bool eraseUndefStores(Function &F) {
    bool Changed = false;
    for (BasicBlock *BB : F) {
      std::vector<Instruction *> Insts(BB->begin(), BB->end());
      for (Instruction *I : Insts) {
        auto *S = dyn_cast<StoreInst>(I);
        if (!S || !isa<UndefValue>(S->value()))
          continue;
        BB->erase(S);
        stats::add("dse.undef_stores");
        Changed = true;
      }
    }
    return Changed;
  }

  bool eliminateOverwritten(BasicBlock &BB, const MemorySSA &MSSA,
                            AliasAnalysis &AA) {
    const std::vector<MemoryAccess> &List = MSSA.accesses(&BB);
    std::set<Instruction *> Dead;
    for (size_t I = 0; I != List.size(); ++I) {
      auto *S = dyn_cast<StoreInst>(List[I].I);
      if (!S)
        continue;
      unsigned Bits = S->value()->getType()->bitWidth();
      for (size_t J = I + 1; J != List.size(); ++J) {
        Instruction *A = List[J].I;
        if (Dead.count(A))
          continue;
        if (isa<CallInst>(A))
          break; // The callee may read the bytes.
        if (auto *Ld = dyn_cast<LoadInst>(A)) {
          if (AA.alias(S->pointer(), Bits, Ld->pointer(),
                       Ld->getType()->bitWidth()) != AliasResult::NoAlias)
            break; // A read of (possibly) these bytes: the store is live.
          continue;
        }
        auto *S2 = cast<StoreInst>(A);
        AliasResult R =
            AA.alias(S->pointer(), Bits, S2->pointer(),
                     S2->value()->getType()->bitWidth());
        if (R == AliasResult::MustAlias) {
          Dead.insert(S); // Fully overwritten before any read.
          break;
        }
        // NoAlias or a partial MayAlias overwrite: neither reads the bytes,
        // so keep scanning for a full overwrite.
      }
    }
    for (Instruction *S : Dead) {
      S->getParent()->erase(S);
      stats::add("dse.dead_stores");
    }
    return !Dead.empty();
  }
};

} // namespace

std::unique_ptr<Pass> frost::createDSEPass(PipelineMode Mode) {
  return std::make_unique<DSE>(Mode);
}
