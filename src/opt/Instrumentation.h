//===- Instrumentation.h - Pass instrumentation hooks -----------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Callback hooks fired by the PassManager around each pass execution:
/// before a pass runs, after it runs (with wall time, change flag, and IR
/// size delta), and after each analysis a pass invalidated is evicted from
/// the AnalysisManager. The campaign engine uses the after-pass hook to
/// attribute counterexamples to the pass that introduced them; the
/// --time-passes machinery uses it for per-pass accounting.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_OPT_INSTRUMENTATION_H
#define FROST_OPT_INSTRUMENTATION_H

#include <functional>
#include <string>
#include <vector>

namespace frost {

class Function;
class Pass;

/// A registry of instrumentation callbacks. Every registered callback of a
/// kind fires, in registration order.
class PassInstrumentation {
public:
  /// Facts about one finished pass execution.
  struct AfterPassInfo {
    bool Changed = false;      ///< The pass reported an IR modification.
    double Seconds = 0;        ///< Wall time of the run() call.
    unsigned InstsBefore = 0;  ///< Function instruction count before.
    unsigned InstsAfter = 0;   ///< ... and after.
  };

  using BeforePassFn = std::function<void(const Pass &, const Function &)>;
  using AfterPassFn =
      std::function<void(const Pass &, const Function &, const AfterPassInfo &)>;
  using AfterInvalidationFn =
      std::function<void(const Pass &, const Function &, const char *Analysis)>;

  void onBeforePass(BeforePassFn Fn) {
    BeforePass.push_back(std::move(Fn));
  }
  void onAfterPass(AfterPassFn Fn) { AfterPass.push_back(std::move(Fn)); }
  void onAfterInvalidation(AfterInvalidationFn Fn) {
    AfterInvalidation.push_back(std::move(Fn));
  }

  // Fired by the PassManager.
  void fireBeforePass(const Pass &P, const Function &F) const {
    for (const BeforePassFn &Fn : BeforePass)
      Fn(P, F);
  }
  void fireAfterPass(const Pass &P, const Function &F,
                     const AfterPassInfo &Info) const {
    for (const AfterPassFn &Fn : AfterPass)
      Fn(P, F, Info);
  }
  void fireAfterInvalidation(const Pass &P, const Function &F,
                             const char *Analysis) const {
    for (const AfterInvalidationFn &Fn : AfterInvalidation)
      Fn(P, F, Analysis);
  }

private:
  std::vector<BeforePassFn> BeforePass;
  std::vector<AfterPassFn> AfterPass;
  std::vector<AfterInvalidationFn> AfterInvalidation;
};

/// Registers callbacks that publish per-pass accounting to the process-wide
/// stats:: registry (safe to use from campaign worker threads, which each
/// run their own PassManager):
///   pm.pass.<name>.runs        executions
///   pm.pass.<name>.changed     executions that modified IR
///   pm.pass.<name>.time_ns     summed wall time, nanoseconds
///   pm.pass.<name>.insts_removed / insts_added   IR size deltas
void attachTimePassesInstrumentation(PassInstrumentation &PI);

/// Renders the --time-passes table from the pm.pass.* counters, sorted by
/// total time descending.
std::string renderTimePassesReport();

} // namespace frost

#endif // FROST_OPT_INSTRUMENTATION_H
