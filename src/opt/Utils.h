//===- Utils.h - Shared transformation utilities ----------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant folding (delegating to the Figure 5 evaluator in sem/Eval.h, so
/// the optimizer can never disagree with the interpreter) and small rewrite
/// helpers shared by the passes.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_OPT_UTILS_H
#define FROST_OPT_UTILS_H

#include "ir/Constants.h"
#include "ir/Instructions.h"

namespace frost {

class IRContext;

namespace opt {

/// Folds a scalar binary operation over constant operands. Returns null
/// when the operands are not both scalar constants, when the fold would hit
/// immediate UB (constant division by zero is left in place to trap at run
/// time), or when an operand is undef (folding undef is exactly the
/// minefield of Section 3; we refuse).
Constant *foldBinOp(IRContext &Ctx, Opcode Op, ArithFlags Flags, Value *L,
                    Value *R);

/// Folds a scalar icmp over constant operands (null when not foldable).
Constant *foldICmp(IRContext &Ctx, ICmpPred Pred, Value *L, Value *R);

/// Folds a scalar trunc/zext/sext over a constant operand.
Constant *foldCast(IRContext &Ctx, Opcode Op, Value *Src, Type *DstTy);

/// Replaces every use of \p I with \p V and erases \p I.
void replaceAndErase(Instruction *I, Value *V);

/// True when \p I has no uses, no side effects, and no immediate UB, so
/// removing it only shrinks the behaviour set.
bool isTriviallyDead(const Instruction *I);

/// Sweeps trivially dead instructions (and chains) from \p F; returns true
/// if anything was removed.
bool eraseDeadCode(Function &F);

/// True if \p V is the constant integer \p N.
bool matchConstant(const Value *V, uint64_t N);

/// Returns the constant value of \p V if it is a ConstantInt, else null.
const BitVec *constantValue(const Value *V);

} // namespace opt
} // namespace frost

#endif // FROST_OPT_UTILS_H
