//===- SCCP.cpp - Sparse conditional constant propagation ----------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic SCCP over the lattice unknown > constant > overdefined, tracking
/// block executability. Poison constants are treated as overdefined — a
/// deliberately conservative choice: SCCP that assumed "poison folds to
/// anything convenient" is exactly the kind of reasoning Section 3 shows to
/// be inconsistent, so the pass only propagates facts that hold in every
/// execution.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "opt/Passes.h"
#include "opt/Utils.h"

#include <map>
#include <set>

using namespace frost;
using namespace frost::opt;

namespace {

struct LatticeValue {
  enum class State { Unknown, Constant, Overdefined };
  State St = State::Unknown;
  ConstantInt *Const = nullptr;

  bool isUnknown() const { return St == State::Unknown; }
  bool isConstant() const { return St == State::Constant; }
  bool isOverdefined() const { return St == State::Overdefined; }
};

class SCCP : public Pass {
public:
  const char *name() const override { return "sccp"; }
  PreservedAnalyses run(Function &F, AnalysisManager &) override;

private:
  std::map<Value *, LatticeValue> Values;
  std::set<BasicBlock *> Executable;
  std::set<std::pair<BasicBlock *, BasicBlock *>> ExecutableEdges;
  std::vector<Instruction *> InstWork;
  std::vector<BasicBlock *> BlockWork;

  LatticeValue getLattice(Value *V);
  void markOverdefined(Value *V);
  void markConstant(Value *V, ConstantInt *C);
  void markEdge(BasicBlock *From, BasicBlock *To);
  void visit(Instruction *I);
};

LatticeValue SCCP::getLattice(Value *V) {
  if (auto *C = dyn_cast<ConstantInt>(V)) {
    LatticeValue LV;
    LV.St = LatticeValue::State::Constant;
    LV.Const = C;
    return LV;
  }
  if (isa<Constant>(V)) {
    // Poison/undef/globals/vectors: conservatively overdefined.
    LatticeValue LV;
    LV.St = LatticeValue::State::Overdefined;
    return LV;
  }
  if (isa<Argument>(V)) {
    LatticeValue LV;
    LV.St = LatticeValue::State::Overdefined;
    return LV;
  }
  return Values[V];
}

void SCCP::markOverdefined(Value *V) {
  LatticeValue &LV = Values[V];
  if (LV.isOverdefined())
    return;
  LV.St = LatticeValue::State::Overdefined;
  LV.Const = nullptr;
  for (const Use *U : V->uses())
    if (auto *I = dyn_cast<Instruction>(U->getUser()))
      InstWork.push_back(I);
}

void SCCP::markConstant(Value *V, ConstantInt *C) {
  LatticeValue &LV = Values[V];
  if (LV.isConstant() && LV.Const == C)
    return;
  if (LV.isOverdefined())
    return;
  if (LV.isConstant() && LV.Const != C) {
    markOverdefined(V);
    return;
  }
  LV.St = LatticeValue::State::Constant;
  LV.Const = C;
  for (const Use *U : V->uses())
    if (auto *I = dyn_cast<Instruction>(U->getUser()))
      InstWork.push_back(I);
}

void SCCP::markEdge(BasicBlock *From, BasicBlock *To) {
  if (!ExecutableEdges.insert({From, To}).second)
    return;
  // New edge: phis in To must re-meet.
  for (PhiNode *P : To->phis())
    InstWork.push_back(P);
  if (Executable.insert(To).second)
    BlockWork.push_back(To);
}

void SCCP::visit(Instruction *I) {
  if (!Executable.count(I->getParent()))
    return;

  switch (I->getOpcode()) {
  case Opcode::Phi: {
    auto *P = cast<PhiNode>(I);
    LatticeValue Result;
    for (unsigned E = 0, N = P->getNumIncoming(); E != N; ++E) {
      if (!ExecutableEdges.count({P->getIncomingBlock(E), P->getParent()}))
        continue;
      LatticeValue In = getLattice(P->getIncomingValue(E));
      if (In.isUnknown())
        continue;
      if (In.isOverdefined()) {
        markOverdefined(P);
        return;
      }
      if (Result.isUnknown()) {
        Result = In;
      } else if (Result.Const != In.Const) {
        markOverdefined(P);
        return;
      }
    }
    if (Result.isConstant())
      markConstant(P, Result.Const);
    return;
  }
  case Opcode::Br: {
    auto *Br = cast<BranchInst>(I);
    if (!Br->isConditional()) {
      markEdge(I->getParent(), Br->dest());
      return;
    }
    LatticeValue C = getLattice(Br->condition());
    if (C.isConstant()) {
      markEdge(I->getParent(),
               C.Const->isOne() ? Br->trueDest() : Br->falseDest());
    } else if (C.isOverdefined()) {
      markEdge(I->getParent(), Br->trueDest());
      markEdge(I->getParent(), Br->falseDest());
    }
    return;
  }
  case Opcode::Switch: {
    auto *SW = cast<SwitchInst>(I);
    LatticeValue C = getLattice(SW->condition());
    if (C.isConstant()) {
      BasicBlock *Dest = SW->defaultDest();
      for (unsigned Cs = 0, E = SW->getNumCases(); Cs != E; ++Cs)
        if (SW->caseValue(Cs)->value() == C.Const->value())
          Dest = SW->caseDest(Cs);
      markEdge(I->getParent(), Dest);
    } else if (C.isOverdefined()) {
      markEdge(I->getParent(), SW->defaultDest());
      for (unsigned Cs = 0, E = SW->getNumCases(); Cs != E; ++Cs)
        markEdge(I->getParent(), SW->caseDest(Cs));
    }
    return;
  }
  case Opcode::Ret:
  case Opcode::Unreachable:
  case Opcode::Trap:
  case Opcode::Store:
    return;
  default:
    break;
  }

  if (I->getType()->isVoid() || !I->getType()->isInteger()) {
    markOverdefined(I);
    return;
  }

  // Value-producing instruction: fold if all integer operands are constant.
  IRContext &Ctx = I->getFunction()->context();
  Constant *Folded = nullptr;
  if (I->isBinaryOp()) {
    LatticeValue A = getLattice(I->getOperand(0));
    LatticeValue B = getLattice(I->getOperand(1));
    if (A.isUnknown() || B.isUnknown())
      return;
    if (A.isConstant() && B.isConstant())
      Folded = foldBinOp(Ctx, I->getOpcode(), I->flags(), A.Const, B.Const);
  } else if (auto *C = dyn_cast<ICmpInst>(I)) {
    LatticeValue A = getLattice(C->lhs());
    LatticeValue B = getLattice(C->rhs());
    if (A.isUnknown() || B.isUnknown())
      return;
    if (A.isConstant() && B.isConstant())
      Folded = foldICmp(Ctx, C->pred(), A.Const, B.Const);
  } else if (I->isCast()) {
    LatticeValue A = getLattice(I->getOperand(0));
    if (A.isUnknown())
      return;
    if (A.isConstant())
      Folded = foldCast(Ctx, I->getOpcode(), A.Const, I->getType());
  } else if (auto *S = dyn_cast<SelectInst>(I)) {
    LatticeValue C = getLattice(S->condition());
    if (C.isUnknown())
      return;
    if (C.isConstant()) {
      LatticeValue Arm = getLattice(C.Const->isOne() ? S->trueValue()
                                                     : S->falseValue());
      if (Arm.isUnknown())
        return;
      if (Arm.isConstant()) {
        markConstant(I, Arm.Const);
        return;
      }
    }
  }

  if (auto *CI = dyn_cast_or_null<ConstantInt>(Folded))
    markConstant(I, CI);
  else
    markOverdefined(I);
}

PreservedAnalyses SCCP::run(Function &F, AnalysisManager &) {
  Values.clear();
  Executable.clear();
  ExecutableEdges.clear();
  InstWork.clear();
  BlockWork.clear();

  Executable.insert(F.entry());
  BlockWork.push_back(F.entry());

  while (!BlockWork.empty() || !InstWork.empty()) {
    while (!InstWork.empty()) {
      Instruction *I = InstWork.back();
      InstWork.pop_back();
      visit(I);
    }
    while (!BlockWork.empty()) {
      BasicBlock *BB = BlockWork.back();
      BlockWork.pop_back();
      for (Instruction *I : *BB)
        visit(I);
    }
  }

  // Apply the solution.
  bool Changed = false;
  for (BasicBlock *BB : F) {
    if (!Executable.count(BB))
      continue;
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (Instruction *I : Insts) {
      auto It = Values.find(I);
      if (It == Values.end() || !It->second.isConstant())
        continue;
      replaceAndErase(I, It->second.Const);
      Changed = true;
    }
  }
  // Constants are substituted for instructions; branch folding is left to
  // SimplifyCFG, so blocks and edges survive.
  return Changed ? preservedCFGAnalyses() : PreservedAnalyses::all();
}

} // namespace

std::unique_ptr<Pass> frost::createSCCPPass() {
  return std::make_unique<SCCP>();
}
