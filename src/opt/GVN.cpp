//===- GVN.cpp - Global value numbering ----------------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator-based value numbering of pure expressions. Replacing a value
/// with a syntactically equal one is refinement-safe regardless of poison
/// (equal expressions over equal operands are poison in exactly the same
/// executions). The *equality-propagation* part of GVN — replacing t by y
/// after observing "br (t == y)" — is sound only because branch-on-poison is
/// UB under the proposed semantics (Section 3.3); it is implemented here and
/// is exactly the transformation that conflicts with legacy loop
/// unswitching.
///
/// Freeze instructions are never value-numbered: two freezes of the same
/// operand may yield different values (Section 6, "opportunities for
/// improvement").
///
/// Memory awareness comes from two analyses. MemorySSA gives every load a
/// memory *version*; loads of the same pointer at the same version read the
/// same bytes and value-number together. AliasAnalysis powers block-local
/// store-to-load forwarding: a load whose nearest non-NoAlias memory def is
/// a MustAlias store of the same type takes the stored value directly.
/// Forwarding a literal undef differs between the variants (Section 3.1):
/// the Legacy variant substitutes the raw undef constant — individually a
/// refinement, but it hands downstream folds the literal the legacy
/// "shl undef, C -> undef" rule miscompiles on — while the Proposed variant
/// freezes forwarded undef/poison literals, pinning one concrete value just
/// as the loaded bytes would have.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"
#include "analysis/Dominators.h"
#include "ir/Constants.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "opt/Passes.h"
#include "opt/Utils.h"
#include "support/Stats.h"

#include <map>
#include <set>
#include <sstream>

using namespace frost;
using namespace frost::opt;

namespace {

class GVN : public Pass {
public:
  explicit GVN(PipelineMode Mode) : Mode(Mode) {}

  const char *name() const override { return "gvn"; }

  std::string pipelineText() const override {
    return Mode == PipelineMode::Legacy ? "gvn<legacy>" : "gvn<proposed>";
  }

  PreservedAnalyses run(Function &F, AnalysisManager &AM) override;

private:
  PipelineMode Mode;

  /// Structural key for a pure expression; empty when not numberable.
  std::string expressionKey(Instruction *I, const MemorySSA &MSSA);

  bool forwardStores(Function &F, const DominatorTree &DT,
                     const MemorySSA &MSSA, AliasAnalysis &AA);
  bool numberValues(Function &F, const DominatorTree &DT,
                    const MemorySSA &MSSA);
  bool propagateBranchEqualities(Function &F, const DominatorTree &DT);
};

std::string GVN::expressionKey(Instruction *I, const MemorySSA &MSSA) {
  switch (I->getOpcode()) {
  case Opcode::Store:
  case Opcode::Call:
  case Opcode::Alloca:
  case Opcode::Phi:
  case Opcode::Freeze: // Never merge freezes (see file comment).
    return "";
  default:
    break;
  }
  if (I->isTerminator())
    return "";

  std::ostringstream OS;
  OS << I->getOpcodeName();
  // Loads are numberable once tagged with the memory version they observe:
  // equal pointer + equal version means equal bytes. (Merging two loads of
  // undef bytes is sound in both variants: every *use* of the merged value
  // still materializes independently, exactly as two separate loads would.)
  if (isa<LoadInst>(I))
    OS << ".v" << MSSA.versionBefore(I);
  if (auto *C = dyn_cast<ICmpInst>(I))
    OS << "." << predName(C->pred());
  if (auto *E = dyn_cast<ExtractElementInst>(I))
    OS << "." << E->index();
  if (auto *Ins = dyn_cast<InsertElementInst>(I))
    OS << "." << Ins->index();
  if (auto *G = dyn_cast<GEPInst>(I))
    OS << (G->isInBounds() ? ".ib" : "");
  OS << ":" << I->getType()->str();
  if (I->hasNSW())
    OS << ".nsw";
  if (I->hasNUW())
    OS << ".nuw";
  if (I->isExact())
    OS << ".exact";

  // Operand identities; sorted for commutative operations.
  std::vector<const void *> Ops;
  for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op)
    Ops.push_back(I->getOperand(Op));
  if (I->isCommutative() && Ops.size() == 2 && Ops[1] < Ops[0])
    std::swap(Ops[0], Ops[1]);
  for (const void *P : Ops)
    OS << " " << P;
  return OS.str();
}

/// Block-local store-to-load forwarding: walk each block's MemorySSA access
/// chain; a load whose nearest preceding non-NoAlias def is a MustAlias
/// store of the same type takes the stored value.
bool GVN::forwardStores([[maybe_unused]] Function &F, const DominatorTree &DT,
                        const MemorySSA &MSSA, AliasAnalysis &AA) {
  bool Changed = false;
  for (BasicBlock *BB : DT.rpo()) {
    const std::vector<MemoryAccess> &List = MSSA.accesses(BB);
    std::set<Instruction *> Erased;
    for (size_t I = 0; I != List.size(); ++I) {
      auto *L = dyn_cast<LoadInst>(List[I].I);
      if (!L || Erased.count(L))
        continue;
      for (size_t J = I; J-- != 0;) {
        Instruction *A = List[J].I;
        if (Erased.count(A))
          continue;
        if (!List[J].IsDef)
          continue; // Earlier loads don't clobber.
        auto *S = dyn_cast<StoreInst>(A);
        if (!S)
          break; // Call: unknown clobber.
        AliasResult R =
            AA.alias(S->pointer(), S->value()->getType()->bitWidth(),
                     L->pointer(), L->getType()->bitWidth());
        if (R == AliasResult::NoAlias)
          continue;
        if (R != AliasResult::MustAlias ||
            S->value()->getType() != L->getType())
          break; // Possible or partial clobber: give up on this load.
        Value *V = S->value();
        if (Mode == PipelineMode::Proposed &&
            (isa<UndefValue>(V) || isa<PoisonValue>(V))) {
          // The loaded bytes would have pinned nothing; freeze the literal
          // so downstream folds see one stable value (Section 3.1).
          auto *Fr = FreezeInst::create(V, L->getName() + ".fr");
          BB->insertBefore(L, Fr);
          V = Fr;
        }
        replaceAndErase(L, V);
        Erased.insert(L);
        stats::add("gvn.s2l_forwarded");
        Changed = true;
        break;
      }
    }
  }
  return Changed;
}

bool GVN::numberValues([[maybe_unused]] Function &F, const DominatorTree &DT,
                       const MemorySSA &MSSA) {
  bool Changed = false;
  std::map<std::string, Instruction *> Leaders;
  // RPO guarantees leaders are seen before dominated duplicates in
  // straight-line and diamond code; the dominance check makes it safe in
  // general.
  for (BasicBlock *BB : DT.rpo()) {
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (Instruction *I : Insts) {
      std::string Key = expressionKey(I, MSSA);
      if (Key.empty())
        continue;
      auto It = Leaders.find(Key);
      if (It == Leaders.end()) {
        Leaders[Key] = I;
        continue;
      }
      Instruction *Leader = It->second;
      if (Leader == I)
        continue;
      // The leader must dominate every use of I after replacement, i.e.
      // dominate I itself.
      bool Dominates =
          Leader->getParent() == I->getParent()
              ? true // RPO + in-block order: leader recorded earlier.
              : DT.dominates(Leader->getParent(), I->getParent());
      if (!Dominates)
        continue;
      replaceAndErase(I, Leader);
      Changed = true;
    }
  }
  return Changed;
}

/// After "br (icmp eq a, b), T, F", a and b are interchangeable inside T
/// (when T has no other predecessors). Uses the *dominated* occurrence and
/// substitutes the other operand. This is the Section 3.3 GVN
/// transformation that requires branch-on-poison to be UB.
bool GVN::propagateBranchEqualities(Function &F, const DominatorTree &DT) {
  bool Changed = false;
  for (BasicBlock *BB : F) {
    auto *Br = dyn_cast_or_null<BranchInst>(BB->terminator());
    if (!Br || !Br->isConditional())
      continue;
    auto *Cmp = dyn_cast<ICmpInst>(Br->condition());
    if (!Cmp)
      continue;
    BasicBlock *EqSide = nullptr;
    if (Cmp->pred() == ICmpPred::EQ)
      EqSide = Br->trueDest();
    else if (Cmp->pred() == ICmpPred::NE)
      EqSide = Br->falseDest();
    if (!EqSide || EqSide == BB)
      continue;
    // Only propagate into blocks dominated by this edge: with a single
    // CFG edge in, dominance of the block is exactly edge dominance here.
    if (!EqSide->hasSinglePredecessor())
      continue;
    if (Br->trueDest() == Br->falseDest())
      continue;

    Value *A = Cmp->lhs(), *B = Cmp->rhs();
    // Prefer replacing the instruction by the "simpler" value: constants
    // first, then arguments.
    auto Rank = [](Value *V) {
      if (isa<Constant>(V))
        return 0;
      if (isa<Argument>(V))
        return 1;
      return 2;
    };
    Value *From = A, *To = B;
    if (Rank(A) < Rank(B))
      std::swap(From, To);
    if (From == To || isa<Constant>(From))
      continue;

    // Replace uses of From inside blocks dominated by EqSide.
    std::vector<Use *> Uses(From->uses().begin(), From->uses().end());
    for (Use *U : Uses) {
      auto *UserInst = dyn_cast<Instruction>(U->getUser());
      if (!UserInst)
        continue;
      BasicBlock *UseBB = UserInst->getParent();
      if (auto *P = dyn_cast<PhiNode>(UserInst))
        UseBB = P->getIncomingBlock(U->getOperandNo() / 2);
      if (!DT.dominates(EqSide, UseBB))
        continue;
      // 'To' must dominate the rewritten use.
      if (auto *ToInst = dyn_cast<Instruction>(To)) {
        if (!DT.dominates(ToInst, UserInst, U->getOperandNo()))
          continue;
      }
      U->set(To);
      Changed = true;
    }
  }
  return Changed;
}

PreservedAnalyses GVN::run(Function &F, AnalysisManager &AM) {
  // GVN rewrites values but never touches blocks or edges, so one
  // dominator tree serves every round (dominates() walks instruction
  // lists at query time and tolerates instruction-level churn). The
  // MemorySSA snapshot likewise serves the whole run: GVN only ever
  // removes pure memory *uses* (loads), which leaves the version numbering
  // of every surviving instruction intact.
  const DominatorTree &DT = AM.get<DominatorTreeAnalysis>(F);
  AliasAnalysis &AA = AM.get<AAAnalysis>(F);
  const MemorySSA &MSSA = AM.get<MemorySSAAnalysis>(F);
  bool Changed = forwardStores(F, DT, MSSA, AA);
  bool LocalChange = true;
  // Bounded iteration: equality propagation could in principle ping-pong
  // between symmetric facts.
  for (unsigned Round = 0; LocalChange && Round != 8; ++Round) {
    LocalChange = numberValues(F, DT, MSSA);
    LocalChange |= propagateBranchEqualities(F, DT);
    Changed |= LocalChange;
  }
  return Changed ? preservedCFGAnalyses() : PreservedAnalyses::all();
}

} // namespace

std::unique_ptr<Pass> frost::createGVNPass(PipelineMode Mode) {
  return std::make_unique<GVN>(Mode);
}
