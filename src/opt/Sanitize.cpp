//===- Sanitize.cpp - Dynamic UB sanitizer instrumentation ---------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inserts eager dynamic UB checks (see Sanitize.h for the catalogue). Every
/// check is the same shape: a guard chain of conditional branches placed
/// immediately before the guarded instruction, each jumping to a shared
/// per-kind `trap <id>` block. Statically decidable checks (a literal poison
/// operand, a constant out-of-bounds gep) use a literal `true` condition, so
/// static and dynamic checks share one verifier-safe form and the check
/// order always matches the interpreter's SanOracle event order:
///
///   kind 1 before everything; 3 before 2 on shifts; 4 before 2 (exact) on
///   divisions; 5 before 6 on loads; 5 at gep creation for inbounds geps.
///
/// Uninitialized-memory tracking (kind 6) is bit-exact at cell granularity:
/// every shadowed object gets a twin of the same value type (`@g.shadow`
/// globals, a twin alloca per alloca), holding zero where the data cell has
/// been stored and a nonzero marker where it has not. Because a gep never
/// changes the pointee type, every access through a resolved chain moves
/// whole cells, so mirroring stores cell-for-cell loses nothing. Globals
/// are assumed fully initialized at function entry (the campaign installs a
/// concrete initial memory); alloca shadows start at the all-ones marker.
///
//===----------------------------------------------------------------------===//

#include "ir/Constants.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/IRBuilder.h"
#include "ir/Instructions.h"
#include "opt/Passes.h"
#include "opt/Sanitize.h"
#include "sem/Eval.h"
#include "support/Stats.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace frost;

namespace {

/// One pending check for one instruction: the trap kind and a builder for
/// the "trap now?" condition. A null builder is a statically-known trip
/// (lowered to a literal `true` condition).
struct Guard {
  unsigned Kind;
  std::function<Value *(IRBuilder &)> Build;
};

/// Offset of a gep chain from its base object, split into a compile-time
/// part and the dynamic index terms. All arithmetic is modulo 2^32 (the
/// address width), matching the interpreter's wrapping address math.
struct ChainOffset {
  int64_t Const = 0;
  std::vector<std::pair<Value *, uint64_t>> Dyn; ///< (index, elem bytes)
};

unsigned bytesOf(const Type *Ty) { return (Ty->bitWidth() + 7) / 8; }

class Instrumenter {
public:
  Instrumenter(Function &F, bool Legacy)
      : F(F), Ctx(F.context()), Legacy(Legacy) {}

  bool run();

  uint64_t Inserted = 0;
  uint64_t Skipped = 0;

private:
  Function &F;
  IRContext &Ctx;
  bool Legacy;
  bool Changed = false;
  unsigned NameCounter = 0;
  BasicBlock *TrapBB[8] = {};
  std::vector<GlobalVariable *> ShadowedGlobals; // preamble order
  std::set<const GlobalVariable *> ShadowedGlobalSet;
  std::set<const AllocaInst *> ShadowedAllocas;
  std::map<const AllocaInst *, AllocaInst *> AllocaShadow;

  std::string freshName(const char *Stem) {
    return std::string(Stem) + std::to_string(NameCounter++);
  }

  BasicBlock *trapBlock(unsigned Kind);
  bool taintedValue(const Value *V) const;
  bool taintedConstant(const Constant *C) const;

  Value *resolveChain(Value *P, std::vector<GEPInst *> &Chain) const;
  int64_t objectSizeBytes(const Value *Base) const;
  ChainOffset chainOffset(const std::vector<GEPInst *> &Chain) const;
  Value *buildOffset(IRBuilder &B, const ChainOffset &CO) const;
  Value *shadowBase(Value *Base);

  void scanForShadows();
  void instrumentAlloca(AllocaInst *A);
  void emitGuards(Instruction *I, std::vector<Guard> Guards);
  void emitShadowGlobalPreamble();
  void mirrorStore(StoreInst *S, Value *Base,
                   const std::vector<GEPInst *> &Chain);

  std::vector<Guard> binOpGuards(BinaryOperator *BO);
  std::vector<Guard> gepGuards(GEPInst *G);
  std::vector<Guard> accessGuards(Value *Ptr, unsigned AccessBytes,
                                  bool *Resolved, Value **BaseOut,
                                  std::vector<GEPInst *> *ChainOut);
};

BasicBlock *Instrumenter::trapBlock(unsigned Kind) {
  assert(Kind < 8 && "unknown check kind");
  if (!TrapBB[Kind]) {
    TrapBB[Kind] = F.addBlock("san.trap" + std::to_string(Kind));
    IRBuilder B(Ctx, TrapBB[Kind]);
    B.trap(Kind);
    Changed = true;
  }
  return TrapBB[Kind];
}

bool Instrumenter::taintedConstant(const Constant *C) const {
  if (isa<PoisonValue>(C))
    return true;
  // The legacy variant encodes the pre-paper folklore "undef is harmless":
  // literal undef operands are not treated as taint.
  if (!Legacy && isa<UndefValue>(C))
    return true;
  if (const auto *CV = dyn_cast<ConstantVector>(C))
    for (unsigned I = 0, E = CV->size(); I != E; ++I)
      if (taintedConstant(CV->element(I)))
        return true;
  return false;
}

/// Is \p V statically known to carry poison/undef when read? Under the
/// eager-trap invariant these are the only taint sources an instrumented
/// function can see: literals, and observe-call results (the interpreter
/// defines a non-void observe declaration to return poison).
bool Instrumenter::taintedValue(const Value *V) const {
  if (const auto *C = dyn_cast<Constant>(V))
    return taintedConstant(C);
  if (const auto *Call = dyn_cast<CallInst>(V)) {
    const Function *Callee = Call->callee();
    if (Callee->isDeclaration() &&
        Callee->getName().rfind("observe", 0) == 0 &&
        !Callee->returnType()->isVoid())
      return true;
  }
  return false;
}

/// Walks \p P through its gep chain (outermost last in \p Chain after the
/// walk reverses it) to a base object. Returns the base when it is a
/// global or an alloca, null otherwise (argument pointers, phis, selects,
/// bitcasts — chains the static resolver cannot size).
Value *Instrumenter::resolveChain(Value *P,
                                  std::vector<GEPInst *> &Chain) const {
  while (auto *G = dyn_cast<GEPInst>(P)) {
    Chain.push_back(G);
    P = G->base();
  }
  std::reverse(Chain.begin(), Chain.end());
  if (isa<GlobalVariable>(P) || isa<AllocaInst>(P))
    return P;
  return nullptr;
}

int64_t Instrumenter::objectSizeBytes(const Value *Base) const {
  if (const auto *G = dyn_cast<GlobalVariable>(Base))
    return G->sizeBytes();
  return bytesOf(cast<AllocaInst>(Base)->allocatedType());
}

ChainOffset
Instrumenter::chainOffset(const std::vector<GEPInst *> &Chain) const {
  ChainOffset CO;
  for (GEPInst *G : Chain) {
    uint64_t ElemBytes = bytesOf(G->pointeeType());
    if (auto *CI = dyn_cast<ConstantInt>(G->index()))
      CO.Const += CI->value().sext() * static_cast<int64_t>(ElemBytes);
    else
      CO.Dyn.push_back({G->index(), ElemBytes});
  }
  return CO;
}

/// Materializes the chain offset as an i32 value (modulo-2^32 arithmetic,
/// exactly the interpreter's address math). Only called when Dyn is
/// non-empty.
Value *Instrumenter::buildOffset(IRBuilder &B, const ChainOffset &CO) const {
  Type *I32 = Ctx.intTy(32);
  Value *Acc = nullptr;
  for (const auto &[Idx, ElemBytes] : CO.Dyn) {
    Value *V = Idx;
    unsigned W = V->getType()->bitWidth();
    if (W < 32)
      V = B.sext(V, I32);
    else if (W > 32)
      V = B.trunc(V, I32);
    Value *Term = B.mul(V, B.getInt(32, ElemBytes));
    Acc = Acc ? B.add(Acc, Term) : Term;
  }
  if (CO.Const != 0)
    Acc = B.add(Acc, B.getInt(32, static_cast<uint64_t>(CO.Const)));
  return Acc;
}

Value *Instrumenter::shadowBase(Value *Base) {
  if (auto *G = dyn_cast<GlobalVariable>(Base))
    return Ctx.getGlobal(G->getName() + ".shadow", G->valueType(),
                         G->sizeBytes());
  return AllocaShadow.at(cast<AllocaInst>(Base));
}

/// Decides which objects need shadow memory: every global/alloca that is
/// the resolved base of at least one load chain and whose cell type is a
/// plain integer. Stores through chains into these objects are mirrored;
/// loads from them are guarded with kind 6.
void Instrumenter::scanForShadows() {
  if (Legacy)
    return; // The legacy variant does no uninit tracking at all.
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB) {
      if (I->getOpcode() != Opcode::Load)
        continue;
      std::vector<GEPInst *> Chain;
      Value *Base = resolveChain(I->getOperand(0), Chain);
      if (!Base)
        continue;
      Type *CellTy = isa<GlobalVariable>(Base)
                         ? cast<GlobalVariable>(Base)->valueType()
                         : cast<AllocaInst>(Base)->allocatedType();
      if (!CellTy->isInteger()) {
        ++Skipped; // Uninit tracking unsupported for this cell type.
        continue;
      }
      if (auto *G = dyn_cast<GlobalVariable>(Base)) {
        if (ShadowedGlobalSet.insert(G).second)
          ShadowedGlobals.push_back(G);
      } else {
        ShadowedAllocas.insert(cast<AllocaInst>(Base));
      }
    }
}

/// A shadowed alloca gets its twin plus an all-ones "everything uninit"
/// marker store, placed directly before it (the twin exists and is marked
/// each time the data alloca re-executes, so loop-local cells reset).
void Instrumenter::instrumentAlloca(AllocaInst *A) {
  if (!ShadowedAllocas.count(A))
    return;
  Type *Ty = A->allocatedType();
  auto *SA = cast<AllocaInst>(
      AllocaInst::create(Ctx, Ty, A->getName() + ".shadow"));
  BasicBlock *BB = A->getParent();
  BB->insertBefore(A, SA);
  BB->insertBefore(A, StoreInst::create(Ctx.getInt(Ty->bitWidth(), ~0ull),
                                        SA, Ctx));
  AllocaShadow[A] = SA;
  Changed = true;
}

/// Splits the block before \p I and threads the guard chain in front of it:
/// each guard computes its condition in its own block and branches to the
/// shared trap block or onward. A null (static) guard ends the chain — the
/// code past a literal-true trap branch is unreachable anyway.
void Instrumenter::emitGuards(Instruction *I, std::vector<Guard> Guards) {
  if (Guards.empty())
    return;
  for (unsigned N = 0; N != Guards.size(); ++N)
    if (!Guards[N].Build) {
      Guards.resize(N + 1);
      break;
    }
  BasicBlock *BB = I->getParent();
  BasicBlock *Cont = BB->splitBefore(I, freshName("san.cont"));
  BB->erase(BB->terminator());
  BasicBlock *Cur = BB;
  for (unsigned N = 0, E = Guards.size(); N != E; ++N) {
    IRBuilder B(Ctx, Cur);
    Value *Cond = Guards[N].Build ? Guards[N].Build(B) : Ctx.getTrue();
    BasicBlock *Next = Cont;
    if (N + 1 != E) {
      Next = F.addBlock(freshName("san.chk"));
      F.moveBlockAfter(Next, Cur);
    }
    B.condBr(Cond, trapBlock(Guards[N].Kind), Next);
    Cur = Next;
  }
  Inserted += Guards.size();
  Changed = true;
}

/// Entry preamble: mark every shadowed global fully initialized (the
/// sanitizer's contract is C-like — globals have initial values; the
/// campaigns install a concrete initial memory to match). Only whole cells
/// are marked: a partial tail cell cannot be reached by an in-bounds
/// access of the cell type anyway.
void Instrumenter::emitShadowGlobalPreamble() {
  if (ShadowedGlobals.empty())
    return;
  BasicBlock *Entry = F.entry();
  Instruction *Pos = Entry->front();
  for (GlobalVariable *G : ShadowedGlobals) {
    Value *SG = shadowBase(G);
    unsigned CellBytes = bytesOf(G->valueType());
    unsigned Cells = CellBytes ? G->sizeBytes() / CellBytes : 0;
    for (unsigned C = 0; C != Cells; ++C) {
      Value *Ptr = SG;
      if (C != 0) {
        auto *Gep = GEPInst::create(SG, Ctx.getInt(32, C), /*InBounds=*/false,
                                    freshName("san.sgp"));
        Entry->insertBefore(Pos, cast<Instruction>(Gep));
        Ptr = Gep;
      }
      Entry->insertBefore(
          Pos, StoreInst::create(Ctx.getInt(G->valueType()->bitWidth(), 0),
                                 Ptr, Ctx));
    }
  }
  Changed = true;
}

/// Mirrors a store: the twin chain gets a zero ("initialized") store right
/// before the data store. Placed after the store's guards, so the shadow
/// access is as in-bounds as the data access.
void Instrumenter::mirrorStore(StoreInst *S, Value *Base,
                               const std::vector<GEPInst *> &Chain) {
  BasicBlock *BB = S->getParent();
  Value *SP = shadowBase(Base);
  for (GEPInst *G : Chain) {
    auto *Gep = GEPInst::create(SP, G->index(), /*InBounds=*/false,
                                freshName("san.sp"));
    BB->insertBefore(S, cast<Instruction>(Gep));
    SP = Gep;
  }
  unsigned W = S->value()->getType()->bitWidth();
  BB->insertBefore(S, StoreInst::create(Ctx.getInt(W, 0), SP, Ctx));
  Changed = true;
}

std::vector<Guard> Instrumenter::binOpGuards(BinaryOperator *BO) {
  Opcode Op = BO->getOpcode();
  ArithFlags Fl = BO->flags();
  bool IsDiv = Op == Opcode::UDiv || Op == Opcode::SDiv ||
               Op == Opcode::URem || Op == Opcode::SRem;
  bool IsShift = BO->isShift();
  if (!IsDiv && !IsShift && !Fl.any())
    return {};
  Type *Ty = BO->getType();
  if (!Ty->isInteger()) {
    ++Skipped; // Vector flag/shift/div checks are not instrumented.
    return {};
  }
  unsigned W = Ty->bitWidth();
  Value *A = BO->lhs(), *B = BO->rhs();
  const auto *CA = dyn_cast<ConstantInt>(A);
  const auto *CB = dyn_cast<ConstantInt>(B);

  // Fully constant operands: decide the event statically with the same
  // lane folder the interpreter uses, so the static verdict and the
  // SanOracle agree bit for bit.
  if (CA && CB) {
    if (IsShift && CB->value().zext() >= W)
      return {{static_cast<unsigned>(SanCheckKind::OverShift), nullptr}};
    sem::FoldResult R =
        sem::foldBinLane(Op, Fl, sem::Lane::concrete(CA->value()),
                         sem::Lane::concrete(CB->value()),
                         sem::SemanticsConfig::proposed());
    if (R.UB)
      return {{static_cast<unsigned>(SanCheckKind::DivisionUB), nullptr}};
    if (R.L.isPoison() || R.L.isUndef())
      return {{static_cast<unsigned>(SanCheckKind::FlagViolation), nullptr}};
    return {};
  }

  std::vector<Guard> Gs;
  auto Kind = [](SanCheckKind K) { return static_cast<unsigned>(K); };

  if (IsShift) {
    // Kind 3 before kind 2, matching the oracle.
    if (CB) {
      if (CB->value().zext() >= W)
        return {{Kind(SanCheckKind::OverShift), nullptr}};
    } else {
      Gs.push_back({Kind(SanCheckKind::OverShift), [=](IRBuilder &Bld) {
                      return Bld.icmp(ICmpPred::UGE, B, Bld.getInt(W, W));
                    }});
    }
  }

  if (IsDiv) {
    // Kind 4: divisor zero, then INT_MIN / -1 for the signed forms.
    if (CB) {
      if (CB->isZero())
        return {{Kind(SanCheckKind::DivisionUB), nullptr}};
    } else {
      Gs.push_back({Kind(SanCheckKind::DivisionUB), [=](IRBuilder &Bld) {
                      return Bld.icmp(ICmpPred::EQ, B, Bld.getInt(W, 0));
                    }});
    }
    if (Op == Opcode::SDiv || Op == Opcode::SRem) {
      uint64_t SMin = 1ull << (W - 1);
      bool AMayMin = !CA || CA->value() == Ctx.getInt(W, SMin)->value();
      bool BMayM1 = !CB || CB->value() == Ctx.getInt(W, ~0ull)->value();
      if (AMayMin && BMayM1) {
        Gs.push_back({Kind(SanCheckKind::DivisionUB), [=](IRBuilder &Bld) {
                        Value *AMin = CA ? static_cast<Value *>(Bld.getBool(true))
                                         : Bld.icmp(ICmpPred::EQ, A,
                                                    Bld.getInt(W, SMin));
                        Value *BM1 = CB ? static_cast<Value *>(Bld.getBool(true))
                                        : Bld.icmp(ICmpPred::EQ, B,
                                                   Bld.getInt(W, ~0ull));
                        return Bld.and_(AMin, BM1);
                      }});
      }
    }
  }

  // Kind 2: nsw/nuw/exact. Evaluated on concrete operands only — earlier
  // guards already exclude overshift and division UB, so the recomputation
  // in the guard block is itself well-defined.
  auto FlagGuard = [&](std::function<Value *(IRBuilder &)> Build) {
    Gs.push_back({Kind(SanCheckKind::FlagViolation), std::move(Build)});
  };
  switch (Op) {
  case Opcode::Add:
    if (Fl.NSW)
      FlagGuard([=](IRBuilder &Bld) {
        Value *R = Bld.add(A, B);
        Value *X = Bld.and_(Bld.xor_(A, R), Bld.xor_(B, R));
        return Bld.icmp(ICmpPred::SLT, X, Bld.getInt(W, 0));
      });
    if (Fl.NUW)
      FlagGuard([=](IRBuilder &Bld) {
        return Bld.icmp(ICmpPred::ULT, Bld.add(A, B), A);
      });
    break;
  case Opcode::Sub:
    if (Fl.NSW)
      FlagGuard([=](IRBuilder &Bld) {
        Value *X = Bld.and_(Bld.xor_(A, B), Bld.xor_(A, Bld.sub(A, B)));
        return Bld.icmp(ICmpPred::SLT, X, Bld.getInt(W, 0));
      });
    if (Fl.NUW)
      FlagGuard(
          [=](IRBuilder &Bld) { return Bld.icmp(ICmpPred::ULT, A, B); });
    break;
  case Opcode::Mul: {
    if (!Fl.NSW && !Fl.NUW)
      break;
    if (2 * W > 64) {
      ++Skipped; // No wide type to check the product in.
      break;
    }
    Type *WideTy = Ctx.intTy(2 * W);
    if (Fl.NSW)
      FlagGuard([=](IRBuilder &Bld) {
        Value *P = Bld.mul(Bld.sext(A, WideTy), Bld.sext(B, WideTy));
        Value *Back = Bld.sext(Bld.trunc(P, Ty), WideTy);
        return Bld.icmp(ICmpPred::NE, P, Back);
      });
    if (Fl.NUW)
      FlagGuard([=](IRBuilder &Bld) {
        Value *P = Bld.mul(Bld.zext(A, WideTy), Bld.zext(B, WideTy));
        Value *Hi = Bld.lshr(P, Bld.getInt(2 * W, W));
        return Bld.icmp(ICmpPred::NE, Hi, Bld.getInt(2 * W, 0));
      });
    break;
  }
  case Opcode::Shl:
    if (Fl.NSW)
      FlagGuard([=](IRBuilder &Bld) {
        Value *Back = Bld.ashr(Bld.shl(A, B), B);
        return Bld.icmp(ICmpPred::NE, Back, A);
      });
    if (Fl.NUW)
      FlagGuard([=](IRBuilder &Bld) {
        Value *Back = Bld.lshr(Bld.shl(A, B), B);
        return Bld.icmp(ICmpPred::NE, Back, A);
      });
    break;
  case Opcode::LShr:
  case Opcode::AShr:
    if (Fl.Exact)
      FlagGuard([=](IRBuilder &Bld) {
        Value *R = Op == Opcode::LShr ? Bld.lshr(A, B) : Bld.ashr(A, B);
        return Bld.icmp(ICmpPred::NE, Bld.shl(R, B), A);
      });
    break;
  case Opcode::UDiv:
  case Opcode::SDiv:
    if (Fl.Exact)
      FlagGuard([=](IRBuilder &Bld) {
        Value *R = Bld.binOp(
            Op == Opcode::UDiv ? Opcode::URem : Opcode::SRem, A, B);
        return Bld.icmp(ICmpPred::NE, R, Bld.getInt(W, 0));
      });
    break;
  default:
    break; // urem/srem ignore exact; and/or/xor carry no flags.
  }
  return Gs;
}

/// Kind 5 at gep creation: an inbounds gep whose address leaves its object
/// is an event the moment it executes (poison-at-gep semantics), even if
/// never dereferenced.
std::vector<Guard> Instrumenter::gepGuards(GEPInst *G) {
  if (!G->isInBounds())
    return {};
  std::vector<GEPInst *> Chain;
  Value *Base = resolveChain(G, Chain);
  if (!Base) {
    ++Skipped;
    return {};
  }
  ChainOffset CO = chainOffset(Chain);
  int64_t Bound = objectSizeBytes(Base) -
                  static_cast<int64_t>(bytesOf(G->pointeeType()));
  unsigned Kind = static_cast<unsigned>(SanCheckKind::OutOfBounds);
  if (CO.Dyn.empty()) {
    uint32_t Off = static_cast<uint32_t>(CO.Const);
    bool Valid = Bound >= 0 && Off <= static_cast<uint32_t>(Bound);
    if (Valid)
      return {};
    return {{Kind, nullptr}};
  }
  if (Bound < 0)
    return {{Kind, nullptr}};
  ChainOffset COCopy = CO;
  return {{Kind, [this, COCopy, Bound](IRBuilder &Bld) {
             Value *Off = buildOffset(Bld, COCopy);
             return Bld.icmp(ICmpPred::UGT, Off,
                             Bld.getInt(32, static_cast<uint64_t>(Bound)));
           }}};
}

/// Kind 5 at an access: only needed when the pointer is not an inbounds
/// gep (those were validated at creation for exactly this address and
/// width — the pointee type never changes along a chain) and not a bare
/// base hitting offset zero of a large-enough object.
std::vector<Guard>
Instrumenter::accessGuards(Value *Ptr, unsigned AccessBytes, bool *Resolved,
                           Value **BaseOut, std::vector<GEPInst *> *ChainOut) {
  *Resolved = false;
  std::vector<GEPInst *> Chain;
  Value *Base = resolveChain(Ptr, Chain);
  if (BaseOut)
    *BaseOut = Base;
  if (ChainOut)
    *ChainOut = Chain;
  if (!Base) {
    ++Skipped;
    return {};
  }
  *Resolved = true;
  if (auto *G = dyn_cast<GEPInst>(Ptr))
    if (G->isInBounds())
      return {}; // Covered by the creation check.
  ChainOffset CO = chainOffset(Chain);
  int64_t Bound =
      objectSizeBytes(Base) - static_cast<int64_t>(AccessBytes);
  unsigned Kind = static_cast<unsigned>(SanCheckKind::OutOfBounds);
  if (CO.Dyn.empty()) {
    uint32_t Off = static_cast<uint32_t>(CO.Const);
    bool Valid = Bound >= 0 && Off <= static_cast<uint32_t>(Bound);
    if (Valid)
      return {};
    return {{Kind, nullptr}};
  }
  if (Bound < 0)
    return {{Kind, nullptr}};
  ChainOffset COCopy = CO;
  return {{Kind, [this, COCopy, Bound](IRBuilder &Bld) {
             Value *Off = buildOffset(Bld, COCopy);
             return Bld.icmp(ICmpPred::UGT, Off,
                             Bld.getInt(32, static_cast<uint64_t>(Bound)));
           }}};
}

bool Instrumenter::run() {
  if (F.isDeclaration())
    return false;

  scanForShadows();

  // Snapshot the CFG: instrumentation splits blocks and appends new ones,
  // none of which must be revisited.
  std::vector<BasicBlock *> Blocks(F.begin(), F.end());

  // Kind 1 across phi edges: a literal poison/undef flowing into a phi is
  // an event on that edge, before any phi assignment. Split by retargeting
  // the whole predecessor edge into the shared trap block.
  for (BasicBlock *BB : Blocks) {
    std::vector<PhiNode *> Phis = BB->phis();
    if (Phis.empty())
      continue;
    for (BasicBlock *Pred : BB->uniquePredecessors()) {
      bool Tainted = false;
      for (PhiNode *P : Phis)
        for (unsigned I = 0, E = P->getNumIncoming(); I != E && !Tainted; ++I)
          if (P->getIncomingBlock(I) == Pred &&
              taintedValue(P->getIncomingValue(I)))
            Tainted = true;
      if (!Tainted)
        continue;
      BasicBlock *TB =
          trapBlock(static_cast<unsigned>(SanCheckKind::TaintedOperand));
      Instruction *T = Pred->terminator();
      for (unsigned Op = 0, E = T->getNumOperands(); Op != E; ++Op)
        if (T->getOperand(Op) == BB)
          T->setOperand(Op, TB);
      BB->removePredecessor(Pred);
      ++Inserted;
      Changed = true;
    }
  }

  for (BasicBlock *BB : Blocks) {
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (Instruction *I : Insts) {
      Opcode Op = I->getOpcode();
      if (isa<PhiNode>(I) || Op == Opcode::Freeze || Op == Opcode::Trap)
        continue;
      if (Op == Opcode::Unreachable) {
        // Kind 7: reaching unreachable is itself the event.
        BasicBlock *Parent = I->getParent();
        Parent->insertBefore(I, TrapInst::create(Ctx, 7));
        Parent->erase(I);
        ++Inserted;
        Changed = true;
        continue;
      }

      // Kind 1: any non-freeze instruction with a statically tainted
      // operand trips before its own semantics apply. Eager trapping keeps
      // every register concrete, so the static sources are the only ones.
      bool Tainted = false;
      for (unsigned N = 0, E = I->getNumOperands(); N != E; ++N) {
        Value *V = I->getOperand(N);
        if (isa<BasicBlock>(V) || isa<Function>(V))
          continue;
        if (taintedValue(V)) {
          Tainted = true;
          break;
        }
      }
      if (Tainted) {
        emitGuards(
            I, {{static_cast<unsigned>(SanCheckKind::TaintedOperand),
                 nullptr}});
        continue;
      }
      if (auto *Call = dyn_cast<CallInst>(I)) {
        // Results of defined callees are not tracked (the campaigns never
        // generate cross-calls); note the blind spot.
        if (!Call->callee()->isDeclaration())
          ++Skipped;
        continue;
      }

      switch (Op) {
      case Opcode::Alloca:
        instrumentAlloca(cast<AllocaInst>(I));
        break;
      case Opcode::GEP:
        emitGuards(I, gepGuards(cast<GEPInst>(I)));
        break;
      case Opcode::Load: {
        bool Resolved = false;
        Value *Base = nullptr;
        std::vector<GEPInst *> Chain;
        std::vector<Guard> Gs =
            accessGuards(I->getOperand(0), bytesOf(I->getType()), &Resolved,
                         &Base, &Chain);
        bool Shadowed =
            Resolved && Base &&
            (ShadowedGlobalSet.count(dyn_cast<GlobalVariable>(Base)) ||
             ShadowedAllocas.count(dyn_cast<AllocaInst>(Base)));
        if (Shadowed && (Gs.empty() || Gs.back().Build)) {
          // Kind 6 after kind 5: the shadow access reuses the (now known
          // in-bounds) chain shape one-for-one.
          std::vector<GEPInst *> ChainCopy = Chain;
          Value *BaseCopy = Base;
          unsigned CellW = isa<GlobalVariable>(Base)
                               ? cast<GlobalVariable>(Base)
                                     ->valueType()
                                     ->bitWidth()
                               : cast<AllocaInst>(Base)
                                     ->allocatedType()
                                     ->bitWidth();
          Gs.push_back({static_cast<unsigned>(SanCheckKind::UninitLoad),
                        [this, BaseCopy, ChainCopy, CellW](IRBuilder &Bld) {
                          Value *SP = shadowBase(BaseCopy);
                          for (GEPInst *G : ChainCopy)
                            SP = Bld.gep(SP, G->index(), /*InBounds=*/false,
                                         freshName("san.sp"));
                          Value *SV = Bld.load(SP, freshName("san.sv"));
                          return Bld.icmp(ICmpPred::NE, SV,
                                          Bld.getInt(CellW, 0));
                        }});
        } else if (Resolved && !Shadowed && !Legacy) {
          ++Skipped; // Load with no shadow for its base object.
        }
        emitGuards(I, std::move(Gs));
        break;
      }
      case Opcode::Store: {
        auto *S = cast<StoreInst>(I);
        bool Resolved = false;
        Value *Base = nullptr;
        std::vector<GEPInst *> Chain;
        std::vector<Guard> Gs =
            accessGuards(S->pointer(), bytesOf(S->value()->getType()),
                         &Resolved, &Base, &Chain);
        bool Static = !Gs.empty() && !Gs.back().Build;
        emitGuards(I, std::move(Gs));
        bool Shadowed =
            Resolved && Base &&
            (ShadowedGlobalSet.count(dyn_cast<GlobalVariable>(Base)) ||
             ShadowedAllocas.count(dyn_cast<AllocaInst>(Base)));
        if (Shadowed && !Static)
          mirrorStore(S, Base, Chain);
        break;
      }
      default: {
        if (auto *BO = dyn_cast<BinaryOperator>(I))
          emitGuards(I, binOpGuards(BO));
        break;
      }
      }
    }
  }

  emitShadowGlobalPreamble();

  if (Changed)
    F.nameValues();
  return Changed;
}

class Sanitize : public Pass {
public:
  explicit Sanitize(PipelineMode Mode) : Mode(Mode) {}

  const char *name() const override { return "sanitize"; }

  std::string pipelineText() const override {
    return Mode == PipelineMode::Legacy ? "sanitize<legacy>"
                                        : "sanitize<proposed>";
  }

  PreservedAnalyses run(Function &F, AnalysisManager &) override {
    Instrumenter Ins(F, Mode == PipelineMode::Legacy);
    bool Changed = Ins.run();
    if (Ins.Inserted)
      stats::add("san.checks_inserted", Ins.Inserted);
    if (Ins.Skipped)
      stats::add("san.checks_skipped", Ins.Skipped);
    return Changed ? PreservedAnalyses::none() : PreservedAnalyses::all();
  }

private:
  PipelineMode Mode;
};

} // namespace

std::unique_ptr<Pass> frost::createSanitizePass(PipelineMode Mode) {
  return std::make_unique<Sanitize>(Mode);
}
