//===- LICM.cpp - Loop invariant code motion -----------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hoists loop-invariant *speculatable* instructions into the preheader.
/// Deferred-UB producers (nsw arithmetic, shifts, inbounds geps) hoist
/// freely — executing them when the loop would not have run merely computes
/// an unused poison value; this is the whole point of poison (Section 2.2).
/// Instructions with immediate UB (division, memory access) are never
/// hoisted past control flow, reproducing LLVM's post-PR21412 behaviour the
/// paper describes in Sections 3.2 and 6 ("we did not attempt to reactivate
/// this optimization"). Freeze hoists too: executing one freeze in the
/// preheader refines a per-iteration freeze of an invariant operand.
///
/// Scalar promotion rewrites every loop access to one provably-valid
/// location into a register carried by a header phi: a preheader load seeds
/// it, stores become register updates, and each exit block writes the
/// register back. Promotion is exact — and therefore sound in both
/// semantics — only when some store is executed on every path the exit
/// store can observe. The Proposed variant enforces that (a store must
/// dominate every latch, plus either every exiting block or a proven
/// constant trip count >= 1 from ScalarEvolution) and freezes the preheader
/// load so a duplicated undef/poison observation can never leak through the
/// phi (the Section 5.5 duplication pitfall). The Legacy variant performs
/// the historical unguarded promotion: when the loop exits before storing,
/// the exit store writes back the *round-tripped* preheader load, and under
/// the Figure 5 per-bit model lifting a byte with any poison bit poisons
/// the whole register — the write-back smears poison over bits that were
/// concrete, which memBitRefines rejects. TV campaigns over per-bit-poison
/// initial memories catch exactly this.
///
/// Counters: "licm.promoted" per promoted location.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "opt/Passes.h"
#include "opt/Utils.h"
#include "support/Stats.h"

#include <map>
#include <set>

using namespace frost;
using namespace frost::opt;

namespace {

class LICM : public Pass {
public:
  explicit LICM(PipelineMode Mode) : Mode(Mode) {}

  const char *name() const override { return "licm"; }

  std::string pipelineText() const override {
    return Mode == PipelineMode::Legacy ? "licm<legacy>" : "licm<proposed>";
  }

  PreservedAnalyses run(Function &F, AnalysisManager &AM) override {
    const DominatorTree &DT = AM.get<DominatorTreeAnalysis>(F);
    LoopInfo &LI = AM.get<LoopInfoAnalysis>(F);
    ScalarEvolution &SE = AM.get<ScalarEvolutionAnalysis>(F);
    AliasAnalysis &AA = AM.get<AAAnalysis>(F);
    bool Changed = false;
    for (Loop *L : LI.loopsInnermostFirst()) {
      Changed |= promoteLoop(*L, DT, SE, AA, F.context());
      Changed |= hoistLoop(*L, DT);
    }
    // Hoisting and promotion move/rewrite instructions between existing
    // blocks; the CFG and loop structure are untouched.
    return Changed ? preservedCFGAnalyses() : PreservedAnalyses::all();
  }

private:
  PipelineMode Mode;

  bool hoistLoop(Loop &L, const DominatorTree &DT) {
    BasicBlock *Preheader = L.preheader();
    if (!Preheader)
      return false;

    bool Changed = false;
    std::set<Instruction *> Hoisted;
    auto IsInvariantOperand = [&](Value *V) {
      auto *I = dyn_cast<Instruction>(V);
      if (!I)
        return true;
      return !L.contains(I) || Hoisted.count(I) != 0;
    };

    // Iterate to a fixed point so chains of invariant instructions hoist in
    // dependency order.
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      for (BasicBlock *BB : DT.rpo()) {
        if (!L.contains(BB))
          continue;
        std::vector<Instruction *> Insts(BB->begin(), BB->end());
        for (Instruction *I : Insts) {
          if (Hoisted.count(I) || !I->isSpeculatable())
            continue;
          bool AllInvariant = true;
          for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op)
            AllInvariant &= IsInvariantOperand(I->getOperand(Op));
          if (!AllInvariant)
            continue;
          I->moveBeforeTerminator(Preheader);
          Hoisted.insert(I);
          Changed = LocalChange = true;
        }
      }
    }
    return Changed;
  }

  bool promoteLoop(Loop &L, const DominatorTree &DT, ScalarEvolution &SE,
                   AliasAnalysis &AA, IRContext &Ctx) {
    BasicBlock *Preheader = L.preheader();
    if (!Preheader)
      return false;
    std::vector<BasicBlock *> Latches = L.latches();
    if (Latches.size() != 1)
      return false;
    BasicBlock *Latch = Latches.front();
    BasicBlock *Header = L.header();

    // Candidate location: the first store in loop RPO. Calls make the whole
    // loop's memory opaque.
    StoreInst *Candidate = nullptr;
    for (BasicBlock *BB : L.blocks())
      for (Instruction *I : *BB) {
        if (isa<CallInst>(I))
          return false;
        if (auto *S = dyn_cast<StoreInst>(I))
          if (!Candidate)
            Candidate = S;
      }
    if (!Candidate)
      return false;
    Value *Ptr = Candidate->pointer();
    Type *Ty = Candidate->value()->getType();
    unsigned Bits = Ty->bitWidth();

    // The address must be materializable in the preheader...
    if (auto *PI = dyn_cast<Instruction>(Ptr))
      if (L.contains(PI) || !DT.dominates(PI->getParent(), Preheader))
        return false;
    // ... and provably in bounds of one identified object, so the hoisted
    // load can never introduce UB the source lacked.
    PointerOffset PO = AliasAnalysis::decompose(Ptr);
    if (!AliasAnalysis::isIdentifiedObject(PO.Base) || !PO.HasConstOffset ||
        PO.OffsetBytes < 0)
      return false;
    std::optional<uint64_t> Size = AliasAnalysis::objectSizeBytes(PO.Base);
    uint64_t Bytes = (Bits + 7) / 8;
    if (!Size || static_cast<uint64_t>(PO.OffsetBytes) + Bytes > *Size)
      return false;
    if (auto *AI = dyn_cast<AllocaInst>(PO.Base))
      if (L.contains(AI))
        return false;

    // Every access in the loop must target exactly this location (same
    // address, same type) or provably miss it.
    std::set<Instruction *> PromLoads, PromStores;
    for (BasicBlock *BB : L.blocks())
      for (Instruction *I : *BB) {
        if (auto *Ld = dyn_cast<LoadInst>(I)) {
          AliasResult R =
              AA.alias(Ptr, Bits, Ld->pointer(), Ld->getType()->bitWidth());
          if (R == AliasResult::NoAlias)
            continue;
          if (R != AliasResult::MustAlias || Ld->getType() != Ty)
            return false;
          PromLoads.insert(Ld);
        } else if (auto *S = dyn_cast<StoreInst>(I)) {
          AliasResult R = AA.alias(Ptr, Bits, S->pointer(),
                                   S->value()->getType()->bitWidth());
          if (R == AliasResult::NoAlias)
            continue;
          if (R != AliasResult::MustAlias || S->value()->getType() != Ty)
            return false;
          PromStores.insert(S);
        }
      }

    // Exit blocks must belong to this loop alone so the write-back store
    // has an unambiguous home.
    std::vector<BasicBlock *> Exits;
    for (BasicBlock *E : L.exitBlocks()) {
      if (std::find(Exits.begin(), Exits.end(), E) != Exits.end())
        continue;
      std::vector<BasicBlock *> Preds = E->uniquePredecessors();
      if (Preds.size() != 1 || !L.contains(Preds.front()))
        return false;
      Exits.push_back(E);
    }

    // In-loop SSA reconstruction stays phi-free outside the header: every
    // non-header loop block takes its value from a single, already-visited
    // predecessor.
    std::set<BasicBlock *> Visited;
    for (BasicBlock *BB : L.blocks()) {
      if (BB != Header) {
        std::vector<BasicBlock *> Preds = BB->uniquePredecessors();
        if (Preds.size() != 1 || !Visited.count(Preds.front()))
          return false;
      }
      Visited.insert(BB);
    }

    if (Mode == PipelineMode::Proposed) {
      // Exactness guard: some store must execute on every path the exit
      // store can observe.
      std::vector<BasicBlock *> Exiting;
      for (BasicBlock *BB : L.blocks())
        for (BasicBlock *Succ : BB->successors())
          if (!L.contains(Succ)) {
            Exiting.push_back(BB);
            break;
          }
      bool Guarded = false;
      for (Instruction *SI : PromStores) {
        BasicBlock *SB = SI->getParent();
        if (!DT.dominates(SB, Latch))
          continue;
        bool DomExiting = true;
        for (BasicBlock *EB : Exiting)
          DomExiting &= DT.dominates(SB, EB);
        if (DomExiting) {
          Guarded = true;
          break;
        }
        std::optional<uint64_t> TC = SE.constantTripCount(L);
        if (TC && *TC >= 1) {
          Guarded = true;
          break;
        }
      }
      if (!Guarded)
        return false;
    }

    // All checks passed: rewrite.
    auto *PreLoad = LoadInst::create(Ptr, Ty, "promo.pre");
    Preheader->insertBefore(Preheader->terminator(), PreLoad);
    Value *Init = PreLoad;
    if (Mode == PipelineMode::Proposed) {
      auto *Fr = FreezeInst::create(PreLoad, "promo.fr");
      Preheader->insertBefore(Preheader->terminator(), Fr);
      Init = Fr;
    }
    auto *Phi = PhiNode::create(Ty, "promo");
    Header->insertBefore(Header->front(), Phi);

    std::map<BasicBlock *, Value *> OutVal;
    for (BasicBlock *BB : L.blocks()) {
      Value *Cur = BB == Header
                       ? static_cast<Value *>(Phi)
                       : OutVal.at(BB->uniquePredecessors().front());
      std::vector<Instruction *> Insts(BB->begin(), BB->end());
      for (Instruction *I : Insts) {
        if (PromLoads.count(I)) {
          replaceAndErase(I, Cur);
        } else if (PromStores.count(I)) {
          Cur = cast<StoreInst>(I)->value();
          BB->erase(I);
        }
      }
      OutVal[BB] = Cur;
    }
    Phi->addIncoming(Init, Preheader);
    Phi->addIncoming(OutVal.at(Latch), Latch);
    for (BasicBlock *E : Exits) {
      auto *WB =
          StoreInst::create(OutVal.at(E->uniquePredecessors().front()), Ptr,
                            Ctx);
      E->insertBefore(E->firstNonPhi(), WB);
    }
    stats::add("licm.promoted");
    return true;
  }
};

} // namespace

std::unique_ptr<Pass> frost::createLICMPass(PipelineMode Mode) {
  return std::make_unique<LICM>(Mode);
}
