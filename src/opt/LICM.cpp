//===- LICM.cpp - Loop invariant code motion -----------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hoists loop-invariant *speculatable* instructions into the preheader.
/// Deferred-UB producers (nsw arithmetic, shifts, inbounds geps) hoist
/// freely — executing them when the loop would not have run merely computes
/// an unused poison value; this is the whole point of poison (Section 2.2).
/// Instructions with immediate UB (division, memory access) are never
/// hoisted past control flow, reproducing LLVM's post-PR21412 behaviour the
/// paper describes in Sections 3.2 and 6 ("we did not attempt to reactivate
/// this optimization"). Freeze hoists too: executing one freeze in the
/// preheader refines a per-iteration freeze of an invariant operand.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "opt/Passes.h"

#include <set>

using namespace frost;

namespace {

class LICM : public Pass {
public:
  const char *name() const override { return "licm"; }

  PreservedAnalyses run(Function &F, AnalysisManager &AM) override {
    const DominatorTree &DT = AM.get<DominatorTreeAnalysis>(F);
    LoopInfo &LI = AM.get<LoopInfoAnalysis>(F);
    bool Changed = false;
    for (Loop *L : LI.loopsInnermostFirst())
      Changed |= hoistLoop(*L, DT);
    // Hoisting moves instructions between existing blocks; the CFG and
    // loop structure are untouched.
    return Changed ? preservedCFGAnalyses() : PreservedAnalyses::all();
  }

private:
  bool hoistLoop(Loop &L, const DominatorTree &DT) {
    BasicBlock *Preheader = L.preheader();
    if (!Preheader)
      return false;

    bool Changed = false;
    std::set<Instruction *> Hoisted;
    auto IsInvariantOperand = [&](Value *V) {
      auto *I = dyn_cast<Instruction>(V);
      if (!I)
        return true;
      return !L.contains(I) || Hoisted.count(I) != 0;
    };

    // Iterate to a fixed point so chains of invariant instructions hoist in
    // dependency order.
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      for (BasicBlock *BB : DT.rpo()) {
        if (!L.contains(BB))
          continue;
        std::vector<Instruction *> Insts(BB->begin(), BB->end());
        for (Instruction *I : Insts) {
          if (Hoisted.count(I) || !I->isSpeculatable())
            continue;
          bool AllInvariant = true;
          for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op)
            AllInvariant &= IsInvariantOperand(I->getOperand(Op));
          if (!AllInvariant)
            continue;
          I->moveBeforeTerminator(Preheader);
          Hoisted.insert(I);
          Changed = LocalChange = true;
        }
      }
    }
    return Changed;
  }
};

} // namespace

std::unique_ptr<Pass> frost::createLICMPass() {
  return std::make_unique<LICM>();
}
