//===- DCE.cpp - Dead code elimination -----------------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Removes instructions with no uses and no effects. Deferred-UB producers
/// are removable: dropping an unused poison value only shrinks the
/// behaviour set.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"
#include "ir/Function.h"
#include "opt/Passes.h"
#include "opt/Utils.h"

using namespace frost;

namespace {

class DCE : public Pass {
public:
  const char *name() const override { return "dce"; }

  PreservedAnalyses run(Function &F, AnalysisManager &) override {
    return opt::eraseDeadCode(F) ? preservedCFGAnalyses()
                                 : PreservedAnalyses::all();
  }
};

} // namespace

std::unique_ptr<Pass> frost::createDCEPass() {
  return std::make_unique<DCE>();
}
