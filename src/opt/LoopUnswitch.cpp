//===- LoopUnswitch.cpp - Loop unswitching with the freeze fix -----------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hoists a loop-invariant conditional branch out of a loop by duplicating
/// the loop body (Section 3.3). Under the proposed semantics, branching on
/// the hoisted condition where the original program might never have
/// branched can introduce UB if the condition is poison; the paper's fix
/// (Section 5.1, and the actual LLVM patch of Section 6) freezes the hoisted
/// condition. PipelineMode::Legacy performs the historical, unsound hoist —
/// kept selectable so the translation-validation benchmark can demonstrate
/// the miscompilation.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/ValueTracking.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "opt/Passes.h"

#include <algorithm>
#include <map>

using namespace frost;

namespace {

constexpr unsigned MaxLoopBlocks = 32;
constexpr unsigned MaxLoopInsts = 256;

class LoopUnswitch : public Pass {
public:
  explicit LoopUnswitch(PipelineMode Mode) : Mode(Mode) {}

  const char *name() const override { return "loop-unswitch"; }

  std::string pipelineText() const override {
    return Mode == PipelineMode::Legacy ? "loop-unswitch<legacy>"
                                        : "loop-unswitch<proposed>";
  }

  PreservedAnalyses run(Function &F, AnalysisManager &AM) override {
    LoopInfo &LI = AM.get<LoopInfoAnalysis>(F);
    bool Changed = false;
    for (Loop *L : LI.loopsInnermostFirst())
      Changed |= unswitchOnce(*L);
    // Unswitching duplicates whole loop bodies: everything is stale.
    return Changed ? PreservedAnalyses::none() : PreservedAnalyses::all();
  }

private:
  PipelineMode Mode;

  bool unswitchOnce(Loop &L);
};

/// The invariant conditional branch to unswitch on, or null.
BranchInst *findCandidate(Loop &L) {
  for (BasicBlock *BB : L.blocks()) {
    auto *Br = dyn_cast_or_null<BranchInst>(BB->terminator());
    if (!Br || !Br->isConditional())
      continue;
    if (Br->trueDest() == Br->falseDest())
      continue;
    Value *C = Br->condition();
    if (isa<Constant>(C) || !L.isLoopInvariant(C))
      continue;
    // Unswitching the loop-exiting branch of the header is just loop
    // rotation; still profitable, allowed.
    return Br;
  }
  return nullptr;
}

/// Re-forms LCSSA for the common single-exit shape: loop-defined values
/// used outside the loop are routed through a phi in the exit block (LLVM
/// keeps loops in LCSSA form for the same reason; our InstSimplify folds
/// single-entry phis away, so the pass rebuilds them on demand). Returns
/// false when the loop's exits are too complex for this simple rebuild.
bool formLCSSA(Loop &L) {
  std::vector<BasicBlock *> Exits = L.exitBlocks();
  for (BasicBlock *BB : L.blocks()) {
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (Instruction *I : Insts) {
      // Collect uses outside the loop (skipping exit-block phis, which are
      // already in LCSSA position).
      std::vector<Use *> Outside;
      for (Use *U : I->uses()) {
        auto *UserInst = dyn_cast<Instruction>(U->getUser());
        if (!UserInst)
          return false;
        if (L.contains(UserInst))
          continue;
        auto *P = dyn_cast<PhiNode>(UserInst);
        if (P && std::find(Exits.begin(), Exits.end(), P->getParent()) !=
                     Exits.end() &&
            L.contains(P->getIncomingBlock(U->getOperandNo() / 2)))
          continue;
        Outside.push_back(U);
      }
      if (Outside.empty())
        continue;
      // Only the single-exit, single-exit-predecessor shape is handled.
      if (Exits.size() != 1)
        return false;
      BasicBlock *Exit = Exits.front();
      std::vector<BasicBlock *> ExitPreds = Exit->uniquePredecessors();
      if (ExitPreds.size() != 1 || !L.contains(ExitPreds.front()))
        return false;
      auto *P = PhiNode::create(I->getType(), I->getName() + ".lcssa");
      if (Instruction *First = Exit->firstNonPhi())
        Exit->insertBefore(First, P);
      else
        Exit->push_back(P);
      P->addIncoming(I, ExitPreds.front());
      for (Use *U : Outside)
        U->set(P);
    }
  }
  return true;
}

/// True if any value defined in the loop is used outside it, other than by
/// phis in exit blocks (which the transform knows how to extend).
bool hasUnsupportedExternalUses(Loop &L) {
  for (BasicBlock *BB : L.blocks())
    for (Instruction *I : *BB)
      for (const Use *U : I->uses()) {
        auto *UserInst = dyn_cast<Instruction>(U->getUser());
        if (!UserInst)
          return true;
        if (L.contains(UserInst))
          continue;
        auto *P = dyn_cast<PhiNode>(UserInst);
        if (!P)
          return true;
        // Exit phi: the incoming edge must come from inside the loop.
        if (!L.contains(P->getIncomingBlock(U->getOperandNo() / 2)))
          return true;
      }
  return false;
}

bool LoopUnswitch::unswitchOnce(Loop &L) {
  BasicBlock *Preheader = L.preheader();
  if (!Preheader || L.blocks().size() > MaxLoopBlocks)
    return false;
  unsigned InstCount = 0;
  for (BasicBlock *BB : L.blocks())
    InstCount += BB->size();
  if (InstCount > MaxLoopInsts)
    return false;

  BranchInst *Candidate = findCandidate(L);
  if (!Candidate)
    return false;
  if (!formLCSSA(L) || hasUnsupportedExternalUses(L))
    return false;

  Function *F = Preheader->getParent();
  IRContext &Ctx = F->context();
  Value *Cond = Candidate->condition();

  // Clone every loop block.
  std::map<Value *, Value *> VMap;
  std::vector<BasicBlock *> OrigBlocks(L.blocks().begin(), L.blocks().end());
  std::vector<BasicBlock *> CloneBlocks;
  for (BasicBlock *BB : OrigBlocks) {
    BasicBlock *NewBB = BasicBlock::create(Ctx, BB->getName() + ".us", F);
    VMap[BB] = NewBB;
    CloneBlocks.push_back(NewBB);
  }
  for (BasicBlock *BB : OrigBlocks) {
    auto *NewBB = cast<BasicBlock>(VMap[BB]);
    for (Instruction *I : *BB) {
      Instruction *NewI = I->clone();
      if (I->hasName())
        NewI->setName(I->getName() + ".us");
      NewBB->push_back(NewI);
      VMap[I] = NewI;
    }
  }
  // Remap cloned operands.
  for (BasicBlock *NewBB : CloneBlocks)
    for (Instruction *I : *NewBB)
      for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op) {
        auto It = VMap.find(I->getOperand(Op));
        if (It != VMap.end())
          I->setOperand(Op, It->second);
      }

  // Build the dispatch block between the preheader and the two loops.
  BasicBlock *Header = L.header();
  auto *CloneHeader = cast<BasicBlock>(VMap[Header]);
  BasicBlock *Dispatch =
      BasicBlock::create(Ctx, Header->getName() + ".unswitch", F);

  Value *DispatchCond = Cond;
  if (Mode == PipelineMode::Proposed && !isGuaranteedNotToBePoison(Cond)) {
    auto *Fr = FreezeInst::create(Cond, Cond->getName() + ".fr");
    Dispatch->push_back(Fr);
    DispatchCond = Fr;
  }
  Dispatch->push_back(
      BranchInst::createCond(DispatchCond, Header, CloneHeader, Ctx));

  // Retarget the preheader at the dispatch block.
  Preheader->terminator()->replaceUsesOfWith(Header, Dispatch);

  // Header phis: the preheader edge now comes from the dispatch block.
  for (PhiNode *P : Header->phis()) {
    int Idx = P->getBlockIndex(Preheader);
    if (Idx >= 0)
      P->setIncomingBlock(static_cast<unsigned>(Idx), Dispatch);
  }
  for (PhiNode *P : CloneHeader->phis()) {
    int Idx = P->getBlockIndex(Preheader);
    if (Idx >= 0)
      P->setIncomingBlock(static_cast<unsigned>(Idx), Dispatch);
  }

  // Exit-block phis gain one edge per cloned predecessor.
  for (BasicBlock *Exit : L.exitBlocks()) {
    for (PhiNode *P : Exit->phis()) {
      unsigned NumIn = P->getNumIncoming();
      for (unsigned I = 0; I != NumIn; ++I) {
        BasicBlock *In = P->getIncomingBlock(I);
        auto BIt = VMap.find(In);
        if (BIt == VMap.end())
          continue;
        Value *V = P->getIncomingValue(I);
        auto VIt = VMap.find(V);
        P->addIncoming(VIt == VMap.end() ? V : VIt->second,
                       cast<BasicBlock>(BIt->second));
      }
    }
  }

  // Specialise: original loop takes the true side, clone takes the false
  // side.
  auto *CloneBr = cast<BranchInst>(VMap[Candidate]);
  BasicBlock *TrueDest = Candidate->trueDest();
  BasicBlock *FalseDestClone = CloneBr->falseDest();

  BasicBlock *CandBB = Candidate->getParent();
  Candidate->falseDest()->removePredecessor(CandBB);
  Candidate->eraseFromParent();
  CandBB->push_back(BranchInst::createUncond(TrueDest, Ctx));

  BasicBlock *CloneCandBB = CloneBr->getParent();
  CloneBr->trueDest()->removePredecessor(CloneCandBB);
  CloneBr->eraseFromParent();
  CloneCandBB->push_back(BranchInst::createUncond(FalseDestClone, Ctx));

  return true;
}

} // namespace

std::unique_ptr<Pass> frost::createLoopUnswitchPass(PipelineMode Mode) {
  return std::make_unique<LoopUnswitch>(Mode);
}
