//===- AnalysisManager.h - Lazy analysis cache with invalidation -*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LLVM-new-PM-style function analysis manager: analyses are computed
/// lazily on first request, cached per (function, analysis) pair, and
/// invalidated after each pass according to the PreservedAnalyses set the
/// pass returns. A CFG-preserving pass (Reassociate, DCE, GVN, ...) keeps
/// the dominator tree cached across the whole pipeline instead of forcing
/// every downstream pass to rebuild it.
///
/// An analysis is any type providing:
///
///   using Result = ...;                         // the cached object
///   static AnalysisKey *key();                  // address identity
///   static const char *name();                  // stats / diagnostics
///   static std::vector<AnalysisKey *> dependencies();
///   static Result run(Function &F, AnalysisManager &AM);
///
/// Dependencies are transitive invalidation edges: when an analysis is
/// invalidated, everything registered as depending on it is evicted too,
/// even if the pass claimed to preserve the dependent — a cached
/// ScalarEvolution holds a reference into the cached LoopInfo, so it can
/// never outlive it.
///
/// Cache behaviour is observable through the stats:: registry:
/// "am.<name>.hits", "am.<name>.misses", and "am.<name>.invalidated".
///
//===----------------------------------------------------------------------===//

#ifndef FROST_OPT_ANALYSISMANAGER_H
#define FROST_OPT_ANALYSISMANAGER_H

#include "support/Stats.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace frost {

class Function;

/// Opaque analysis identity: each analysis owns one static AnalysisKey and
/// is identified by its address (the LLVM new-PM trick — no central enum to
/// keep in sync).
struct AnalysisKey {};

/// The set of analyses a pass left intact. A pass returns all() exactly
/// when it did not modify the IR; otherwise it returns the (possibly empty)
/// set of analyses its edits cannot have perturbed.
class PreservedAnalyses {
public:
  /// Nothing changed: every cached result stays valid.
  static PreservedAnalyses all() {
    PreservedAnalyses PA;
    PA.All = true;
    return PA;
  }

  /// Arbitrary changes: every cached result is suspect.
  static PreservedAnalyses none() { return PreservedAnalyses(); }

  template <typename AnalysisT> PreservedAnalyses &preserve() {
    return preserve(AnalysisT::key());
  }

  PreservedAnalyses &preserve(AnalysisKey *K) {
    if (!All)
      Preserved.insert(K);
    return *this;
  }

  bool preserved(AnalysisKey *K) const {
    return All || Preserved.count(K) != 0;
  }

  bool areAllPreserved() const { return All; }

  /// Narrows this set to what both runs preserved (used when composing the
  /// results of several passes into one summary).
  void intersect(const PreservedAnalyses &Other) {
    if (Other.All)
      return;
    if (All) {
      All = false;
      Preserved = Other.Preserved;
      return;
    }
    std::set<AnalysisKey *> Common;
    for (AnalysisKey *K : Preserved)
      if (Other.Preserved.count(K))
        Common.insert(K);
    Preserved = std::move(Common);
  }

private:
  bool All = false;
  std::set<AnalysisKey *> Preserved;
};

/// Per-function analysis cache. Not thread-safe: each campaign worker (and
/// each PassManager::run without an explicit manager) uses its own.
class AnalysisManager {
public:
  AnalysisManager() = default;
  AnalysisManager(const AnalysisManager &) = delete;
  AnalysisManager &operator=(const AnalysisManager &) = delete;

  /// Returns the (computed-if-needed) result of analysis \p A on \p F.
  /// References stay valid until the entry is invalidated or cleared.
  template <typename A> typename A::Result &get(Function &F) {
    AnalysisKey *K = registerAnalysis<A>();
    auto It = Entries.find({&F, K});
    if (It != Entries.end()) {
      stats::add(std::string("am.") + A::name() + ".hits");
      return static_cast<ResultModel<typename A::Result> *>(It->second.get())
          ->Value;
    }
    stats::add(std::string("am.") + A::name() + ".misses");
    // Compute before inserting: A::run may recursively request the
    // analyses it depends on.
    auto Model = std::make_unique<ResultModel<typename A::Result>>(
        A::run(F, *this));
    auto &Ref = Model->Value;
    Entries[{&F, K}] = std::move(Model);
    return Ref;
  }

  /// The cached result of \p A on \p F, or null — never computes.
  template <typename A> typename A::Result *cached(Function &F) {
    auto It = Entries.find({&F, A::key()});
    if (It == Entries.end())
      return nullptr;
    return &static_cast<ResultModel<typename A::Result> *>(It->second.get())
                ->Value;
  }

  template <typename A> bool isCached(Function &F) const {
    return Entries.count({&F, A::key()}) != 0;
  }

  /// Evicts every result for \p F that \p PA does not preserve, plus (by
  /// transitive dependency) everything built on top of an evicted result.
  /// Appends the names of evicted analyses to \p Invalidated if non-null
  /// (the PassManager feeds these to its after-invalidation hooks).
  void invalidate(Function &F, const PreservedAnalyses &PA,
                  std::vector<const char *> *Invalidated = nullptr);

  /// Drops every cached result for \p F.
  void clear(Function &F);

  /// Drops the whole cache.
  void clear();

  size_t cachedResultCount() const { return Entries.size(); }

private:
  struct ResultConcept {
    virtual ~ResultConcept() = default;
  };
  template <typename T> struct ResultModel final : ResultConcept {
    explicit ResultModel(T &&V) : Value(std::move(V)) {}
    T Value;
  };

  struct AnalysisInfo {
    const char *Name = nullptr;
    std::vector<AnalysisKey *> Dependencies;
  };

  template <typename A> AnalysisKey *registerAnalysis() {
    AnalysisKey *K = A::key();
    if (!Registry.count(K))
      Registry[K] = {A::name(), A::dependencies()};
    return K;
  }

  /// True if \p K is invalid under \p PA, directly or through a dependency.
  bool isInvalidated(AnalysisKey *K, const PreservedAnalyses &PA,
                     std::map<AnalysisKey *, bool> &Memo) const;

  std::map<std::pair<Function *, AnalysisKey *>, std::unique_ptr<ResultConcept>>
      Entries;
  std::map<AnalysisKey *, AnalysisInfo> Registry;
};

} // namespace frost

#endif // FROST_OPT_ANALYSISMANAGER_H
