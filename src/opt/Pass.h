//===- Pass.h - Pass interface and pass manager -----------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function-pass interface and an analysis-cached sequential pass manager
/// with optional per-pass verification, mirroring the experimental
/// methodology of Section 6: every pipeline can be run in "legacy" mode
/// (the unsound transformations LLVM shipped) or "proposed" mode
/// (freeze-based fixes).
///
/// Passes run against an AnalysisManager and return a PreservedAnalyses
/// set; the manager invalidates cached analyses accordingly, so a sequence
/// of CFG-preserving passes shares one DominatorTree instead of rebuilding
/// it per pass. PassInstrumentation hooks fire around every execution for
/// timing, change accounting, and counterexample attribution.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_OPT_PASS_H
#define FROST_OPT_PASS_H

#include "opt/AnalysisManager.h"
#include "opt/Instrumentation.h"

#include <memory>
#include <string>
#include <vector>

namespace frost {

class Function;
class Module;

/// Which UB semantics the pipeline targets. The choice decides whether
/// passes insert freeze (proposed) or perform the historically unsound
/// legacy transformations (Section 3).
enum class PipelineMode {
  Legacy,   ///< Pre-paper LLVM: no freeze, unsound select/unswitch rules.
  Proposed, ///< The paper's semantics: freeze-based fixes everywhere.
};

/// A transformation over one function.
class Pass {
public:
  virtual ~Pass();

  virtual const char *name() const = 0;

  /// The canonical textual form for pipeline printing: name(), plus a
  /// `<legacy>`/`<proposed>` suffix for mode-dependent passes. The output
  /// of PassManager::pipelineText() parses back to an identical pipeline.
  virtual std::string pipelineText() const { return name(); }

  /// Transforms \p F, requesting analyses from \p AM, and reports which
  /// cached analyses survive. The contract is strict: return
  /// PreservedAnalyses::all() if and only if the IR was not modified.
  virtual PreservedAnalyses run(Function &F, AnalysisManager &AM) = 0;

  /// Standalone convenience for tests and one-off rewrites: runs against a
  /// throwaway AnalysisManager. Returns true if the function was modified.
  bool runOnFunction(Function &F);
};

/// Runs passes in sequence over every function of a module, keeping
/// analysis results cached across passes according to each pass's
/// PreservedAnalyses.
class PassManager {
public:
  explicit PassManager(bool VerifyAfterEachPass = true);

  void add(std::unique_ptr<Pass> P);

  size_t size() const { return Passes.size(); }

  /// Runs the whole pipeline once; returns true if anything changed.
  /// Aborts (via assert) if a pass breaks the verifier and verification is
  /// enabled. The overloads without an AnalysisManager use a private one
  /// whose cache lives for this run only.
  bool run(Module &M);
  bool run(Function &F);
  bool run(Module &M, AnalysisManager &AM);
  bool run(Function &F, AnalysisManager &AM);

  /// Number of times each pass reported a change, in pipeline order.
  /// Counts are per top-level run(): reused managers report each run's
  /// counts, not a running total (fed by the instrumentation hooks).
  const std::vector<std::pair<std::string, unsigned>> &changeCounts() const {
    return Changes;
  }

  /// Instrumentation hooks fired around every pass execution.
  PassInstrumentation &instrumentation() { return PI; }

  /// When disabled, the analysis cache is dropped after every pass — the
  /// pre-caching behaviour, kept as the baseline for bench/CompileTime.
  void setUseAnalysisCache(bool Use) { UseAnalysisCache = Use; }

  /// Comma-joined pipelineText() of every pass; parsePassPipeline() on the
  /// result reconstructs this pipeline.
  std::string pipelineText() const;

private:
  bool runImpl(Function &F, AnalysisManager &AM);
  void resetChangeCounts();

  bool Verify;
  bool UseAnalysisCache = true;
  std::vector<std::unique_ptr<Pass>> Passes;
  std::vector<std::pair<std::string, unsigned>> Changes;
  PassInstrumentation PI;
};

/// Appends the paper's evaluation pipeline (an -O2/-O3-shaped sequence) to
/// \p PM: the "default" preset of the textual pipeline language
/// (opt/Pipeline.h). In Proposed mode the freeze-aware pass variants are
/// used.
void buildStandardPipeline(PassManager &PM, PipelineMode Mode);

} // namespace frost

#endif // FROST_OPT_PASS_H
