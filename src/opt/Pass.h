//===- Pass.h - Pass interface and pass manager -----------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function-pass interface and a sequential pass manager with optional
/// per-pass verification, mirroring the experimental methodology of
/// Section 6: every pipeline can be run in "legacy" mode (the unsound
/// transformations LLVM shipped) or "proposed" mode (freeze-based fixes).
///
//===----------------------------------------------------------------------===//

#ifndef FROST_OPT_PASS_H
#define FROST_OPT_PASS_H

#include <memory>
#include <string>
#include <vector>

namespace frost {

class Function;
class Module;

/// Which UB semantics the pipeline targets. The choice decides whether
/// passes insert freeze (proposed) or perform the historically unsound
/// legacy transformations (Section 3).
enum class PipelineMode {
  Legacy,   ///< Pre-paper LLVM: no freeze, unsound select/unswitch rules.
  Proposed, ///< The paper's semantics: freeze-based fixes everywhere.
};

/// A transformation over one function.
class Pass {
public:
  virtual ~Pass();

  virtual const char *name() const = 0;

  /// Returns true if the function was modified.
  virtual bool runOnFunction(Function &F) = 0;
};

/// Runs passes in sequence over every function of a module.
class PassManager {
public:
  explicit PassManager(bool VerifyAfterEachPass = true)
      : Verify(VerifyAfterEachPass) {}

  void add(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  /// Runs the whole pipeline once; returns true if anything changed.
  /// Aborts (via assert) if a pass breaks the verifier and verification is
  /// enabled.
  bool run(Module &M);
  bool run(Function &F);

  /// Number of times each pass reported a change, in pipeline order.
  const std::vector<std::pair<std::string, unsigned>> &changeCounts() const {
    return Changes;
  }

private:
  bool Verify;
  std::vector<std::unique_ptr<Pass>> Passes;
  std::vector<std::pair<std::string, unsigned>> Changes;
};

/// Appends the paper's evaluation pipeline (an -O2/-O3-shaped sequence) to
/// \p PM. In Proposed mode the freeze-aware pass variants are used.
void buildStandardPipeline(PassManager &PM, PipelineMode Mode);

} // namespace frost

#endif // FROST_OPT_PASS_H
