//===- CodeGenPrepare.cpp - Late lowering preparation --------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 6 backend-preparation tweaks the prototype needed to recover
/// performance once freeze existed:
///
///  - freeze(icmp x, C) -> icmp (freeze x), C, so the compare can be placed
///    right next to its branch. (The paper notes this must run late: it is
///    a refinement, and running it early would confuse analyses like scalar
///    evolution.)
///  - freeze(and/or a, b) -> and/or (freeze a, freeze b) on i1, so a branch
///    on a frozen and/or can still be split into two jumps.
///  - Sinking a compare whose single user is a branch in another block down
///    to that branch.
///  - Splitting "br (and/or c1, c2)" into two branches.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "opt/Passes.h"
#include "opt/Utils.h"

using namespace frost;
using namespace frost::opt;

namespace {

class CodeGenPrepare : public Pass {
public:
  explicit CodeGenPrepare(PipelineMode Mode) : Mode(Mode) {}

  const char *name() const override { return "codegenprepare"; }

  std::string pipelineText() const override {
    return Mode == PipelineMode::Legacy ? "codegenprepare<legacy>"
                                        : "codegenprepare<proposed>";
  }

  PreservedAnalyses run(Function &F, AnalysisManager &) override {
    bool Changed = false;
    if (Mode == PipelineMode::Proposed) {
      Changed |= pushFreezeThroughICmp(F);
      Changed |= distributeFreezeOverLogic(F);
    }
    Changed |= sinkCmpsToBranches(F);
    Changed |= splitLogicalBranches(F);
    // splitLogicalBranches introduces new blocks, so nothing is safe.
    return Changed ? PreservedAnalyses::none() : PreservedAnalyses::all();
  }

private:
  PipelineMode Mode;

  bool pushFreezeThroughICmp(Function &F);
  bool distributeFreezeOverLogic(Function &F);
  bool sinkCmpsToBranches(Function &F);
  bool splitLogicalBranches(Function &F);
};

/// freeze(icmp pred x, C) -> icmp pred (freeze x), C.
/// Refinement: if x is poison the source is an arbitrary i1 choice; the
/// target compares an arbitrary frozen value against C, whose outcome set
/// is a subset of {true, false} reachable — still a subset of "any i1".
bool CodeGenPrepare::pushFreezeThroughICmp(Function &F) {
  bool Changed = false;
  for (BasicBlock *BB : F) {
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (Instruction *I : Insts) {
      auto *Fr = dyn_cast<FreezeInst>(I);
      if (!Fr)
        continue;
      auto *Cmp = dyn_cast<ICmpInst>(Fr->src());
      if (!Cmp || !Cmp->hasOneUse() || !isa<ConstantInt>(Cmp->rhs()))
        continue;
      IRContext &Ctx = F.context();
      auto *NewFr =
          FreezeInst::create(Cmp->lhs(), Cmp->lhs()->getName() + ".fr");
      BB->insertBefore(Fr, NewFr);
      auto *NewCmp = ICmpInst::create(Ctx, Cmp->pred(), NewFr, Cmp->rhs(),
                                      Cmp->getName() + ".fr");
      BB->insertBefore(Fr, NewCmp);
      replaceAndErase(Fr, NewCmp);
      Cmp->eraseFromParent();
      Changed = true;
    }
  }
  return Changed;
}

/// freeze(and/or a, b) on i1 -> and/or (freeze a), (freeze b).
/// Refinement: whenever either input is poison, the source may pick *any*
/// boolean, and the target's outcome is always some boolean.
bool CodeGenPrepare::distributeFreezeOverLogic(Function &F) {
  bool Changed = false;
  for (BasicBlock *BB : F) {
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (Instruction *I : Insts) {
      auto *Fr = dyn_cast<FreezeInst>(I);
      if (!Fr || !Fr->getType()->isBool())
        continue;
      auto *Logic = dyn_cast<BinaryOperator>(Fr->src());
      if (!Logic || !Logic->hasOneUse() ||
          (Logic->getOpcode() != Opcode::And &&
           Logic->getOpcode() != Opcode::Or))
        continue;
      auto *FrL =
          FreezeInst::create(Logic->lhs(), Logic->lhs()->getName() + ".fr");
      auto *FrR =
          FreezeInst::create(Logic->rhs(), Logic->rhs()->getName() + ".fr");
      BB->insertBefore(Fr, FrL);
      BB->insertBefore(Fr, FrR);
      auto *NewLogic = BinaryOperator::create(
          Logic->getOpcode(), FrL, FrR, ArithFlags{}, Logic->getName() + ".s");
      BB->insertBefore(Fr, NewLogic);
      replaceAndErase(Fr, NewLogic);
      Logic->eraseFromParent();
      Changed = true;
    }
  }
  return Changed;
}

/// Moves an icmp whose only user is a conditional branch in another block
/// to just before that branch, keeping compare+branch adjacent for the
/// backend.
bool CodeGenPrepare::sinkCmpsToBranches(Function &F) {
  bool Changed = false;
  for (BasicBlock *BB : F) {
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (Instruction *I : Insts) {
      auto *Cmp = dyn_cast<ICmpInst>(I);
      if (!Cmp || !Cmp->hasOneUse())
        continue;
      auto *Br = dyn_cast<BranchInst>(Cmp->uses().front()->getUser());
      if (!Br || Br->getParent() == BB)
        continue;
      // Only sink when the branch block is dominated trivially: a compare
      // is pure, so moving it later on the same path is always sound; we
      // conservatively require the branch block's unique predecessor chain
      // to contain BB (single-pred chains only).
      BasicBlock *Walk = Br->getParent();
      bool Reaches = false;
      for (unsigned Steps = 0; Walk && Steps != 8; ++Steps) {
        std::vector<BasicBlock *> Preds = Walk->uniquePredecessors();
        if (Preds.size() != 1)
          break;
        Walk = Preds.front();
        if (Walk == BB) {
          Reaches = true;
          break;
        }
      }
      if (!Reaches)
        continue;
      Cmp->moveBefore(Br);
      Changed = true;
    }
  }
  return Changed;
}

/// br (and c1, c2), T, F  ->  br c1, Check2, F;  Check2: br c2, T, F
/// br (or  c1, c2), T, F  ->  br c1, T, Check2;  Check2: br c2, T, F
/// Sound under the proposed semantics because a poison c1/c2 made the
/// original branch UB already (and/or propagate poison). Phi edges in T/F
/// are updated for the extra predecessor.
bool CodeGenPrepare::splitLogicalBranches(Function &F) {
  IRContext &Ctx = F.context();
  bool Changed = false;
  bool LocalChange = true;
  while (LocalChange) {
    LocalChange = false;
    for (BasicBlock *BB : F) {
      auto *Br = dyn_cast_or_null<BranchInst>(BB->terminator());
      if (!Br || !Br->isConditional())
        continue;
      auto *Logic = dyn_cast<BinaryOperator>(Br->condition());
      if (!Logic || !Logic->getType()->isBool() || !Logic->hasOneUse())
        continue;
      bool IsAnd = Logic->getOpcode() == Opcode::And;
      if (!IsAnd && Logic->getOpcode() != Opcode::Or)
        continue;
      BasicBlock *T = Br->trueDest(), *FD = Br->falseDest();
      if (T == FD)
        continue;

      BasicBlock *Check2 = BasicBlock::create(
          Ctx, BB->getName() + ".check2", BB->getParent());
      Check2->push_back(
          BranchInst::createCond(Logic->rhs(), T, FD, Ctx));
      Br->eraseFromParent();
      BB->push_back(IsAnd
                        ? BranchInst::createCond(Logic->lhs(), Check2, FD, Ctx)
                        : BranchInst::createCond(Logic->lhs(), T, Check2,
                                                 Ctx));
      // The short-circuited destination keeps BB as a predecessor and also
      // gains Check2; the other destination's edge moved from BB to Check2.
      BasicBlock *Shared = IsAnd ? FD : T;  // Reached from both blocks.
      BasicBlock *Moved = IsAnd ? T : FD;   // Now reached only from Check2.
      for (PhiNode *P : Shared->phis())
        P->addIncoming(P->getIncomingValueForBlock(BB), Check2);
      for (PhiNode *P : Moved->phis()) {
        int Idx = P->getBlockIndex(BB);
        if (Idx >= 0)
          P->setIncomingBlock(static_cast<unsigned>(Idx), Check2);
      }
      Logic->eraseFromParent();
      Changed = LocalChange = true;
      break; // Restart: block list changed.
    }
  }
  return Changed;
}

} // namespace

std::unique_ptr<Pass> frost::createCodeGenPreparePass(PipelineMode Mode) {
  return std::make_unique<CodeGenPrepare>(Mode);
}
