//===- Utils.cpp - Shared transformation utilities -----------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "opt/Utils.h"

#include "ir/Context.h"
#include "ir/Function.h"
#include "sem/Eval.h"

#include <optional>

using namespace frost;
using namespace frost::opt;

namespace {

/// Scalar constant -> semantic lane; nullopt for undef (not folded) or
/// non-constants.
std::optional<sem::Lane> laneOf(const Value *V) {
  if (const auto *C = dyn_cast<ConstantInt>(V))
    return sem::Lane::concrete(C->value());
  if (isa<PoisonValue>(V))
    return sem::Lane::poison();
  return std::nullopt;
}

Constant *laneToConstant(IRContext &Ctx, const sem::Lane &L, Type *Ty) {
  if (L.isPoison())
    return Ctx.getPoison(Ty);
  assert(L.isConcrete() && "undef lanes are never produced by folding");
  return Ctx.getInt(L.Bits);
}

} // namespace

Constant *opt::foldBinOp(IRContext &Ctx, Opcode Op, ArithFlags Flags,
                         Value *L, Value *R) {
  if (!L->getType()->isInteger())
    return nullptr;
  auto LA = laneOf(L), LB = laneOf(R);
  if (!LA || !LB)
    return nullptr;
  // The folder always evaluates under the proposed semantics; over-shift is
  // poison there, which refines the legacy undef, so the fold is sound in
  // both modes.
  sem::SemanticsConfig Config = sem::SemanticsConfig::proposed();
  sem::FoldResult FR = sem::foldBinLane(Op, Flags, *LA, *LB, Config);
  if (FR.UB)
    return nullptr; // Leave immediate UB in place (it may be unreachable).
  return laneToConstant(Ctx, FR.L, L->getType());
}

Constant *opt::foldICmp(IRContext &Ctx, ICmpPred Pred, Value *L, Value *R) {
  if (!L->getType()->isInteger())
    return nullptr;
  auto LA = laneOf(L), LB = laneOf(R);
  if (!LA || !LB)
    return nullptr;
  if (LA->isPoison() || LB->isPoison())
    return Ctx.getPoison(Ctx.boolTy());
  return Ctx.getBool(sem::foldPred(Pred, LA->Bits, LB->Bits));
}

Constant *opt::foldCast(IRContext &Ctx, Opcode Op, Value *Src, Type *DstTy) {
  if (!Src->getType()->isInteger() || !DstTy->isInteger())
    return nullptr;
  auto LA = laneOf(Src);
  if (!LA)
    return nullptr;
  if (LA->isPoison())
    return Ctx.getPoison(DstTy);
  unsigned W = DstTy->bitWidth();
  switch (Op) {
  case Opcode::Trunc:
    return Ctx.getInt(LA->Bits.truncTo(W));
  case Opcode::ZExt:
    return Ctx.getInt(LA->Bits.zextTo(W));
  case Opcode::SExt:
    return Ctx.getInt(LA->Bits.sextTo(W));
  case Opcode::BitCast:
    return W == LA->Bits.width() ? Ctx.getInt(LA->Bits) : nullptr;
  default:
    return nullptr;
  }
}

void opt::replaceAndErase(Instruction *I, Value *V) {
  I->replaceAllUsesWith(V);
  I->eraseFromParent();
}

bool opt::isTriviallyDead(const Instruction *I) {
  if (I->hasUses() || I->isTerminator())
    return false;
  return !I->mayWriteMemory() && !I->mayTriggerImmediateUB();
}

bool opt::eraseDeadCode(Function &F) {
  bool Changed = false;
  bool LocalChange = true;
  while (LocalChange) {
    LocalChange = false;
    for (BasicBlock *BB : F) {
      std::vector<Instruction *> Insts(BB->begin(), BB->end());
      for (auto It = Insts.rbegin(); It != Insts.rend(); ++It) {
        if (!isTriviallyDead(*It))
          continue;
        (*It)->eraseFromParent();
        Changed = LocalChange = true;
      }
    }
  }
  return Changed;
}

bool opt::matchConstant(const Value *V, uint64_t N) {
  const auto *C = dyn_cast<ConstantInt>(V);
  return C && C->value() == BitVec(C->value().width(), N);
}

const BitVec *opt::constantValue(const Value *V) {
  const auto *C = dyn_cast<ConstantInt>(V);
  return C ? &C->value() : nullptr;
}
