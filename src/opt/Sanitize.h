//===- Sanitize.h - Dynamic UB sanitizer instrumentation --------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `sanitize` instrumentation pass: inserts eager dynamic checks for
/// every deferred- and immediate-UB event of the frost semantics, lowering
/// each to ordinary IR guards that branch to a shared `trap <id>` block.
/// Because every check fires *before* the offending instruction executes,
/// an instrumented program whose checks all pass computes only concrete
/// values — poison and undef never reach a live register. That eager-trap
/// invariant is what makes the UBfuzz-style differential campaigns of
/// CampaignKind::Sanitizer decidable: the interpreter's SanOracle event
/// mode (sem/Interp.h) is the ground truth the instrumented program is
/// compared against, input by input. See docs/sanitizer.md for the check
/// catalogue and the oracle definitions.
///
/// Check kinds (the `trap <id>` values; SanCheckKind below):
///   1 tainted operand  - a non-freeze instruction executing with a
///                        poison/undef operand (literal, via a phi edge, or
///                        an observe-call result)
///   2 flag violation   - nsw/nuw/exact would poison the result
///   3 overshift        - shift amount >= bit width
///   4 division UB      - divisor zero, or INT_MIN / -1 signed overflow
///   5 out of bounds    - inbounds gep leaving its object (checked at gep
///                        creation) or an access outside the object
///   6 uninit load      - load of never-stored memory (bit-exact shadow
///                        memory: a twin shadow object per global/alloca)
///   7 unreachable      - control reached `unreachable`
///
/// The two variants mirror the repo-wide legacy/proposed split:
/// `sanitize<proposed>` implements the full catalogue; `sanitize<legacy>`
/// is the historically naive checker built on the pre-paper folklore that
/// "undef is harmless": it does not treat literal undef as a kind-1 taint
/// and performs no kind-6 uninit tracking at all. The sanitizer campaign's
/// must-flag smoke test pins those false negatives down.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_OPT_SANITIZE_H
#define FROST_OPT_SANITIZE_H

#include "opt/Pass.h"

#include <memory>

namespace frost {

/// The dynamic check kinds, numerically equal to the `trap <id>` the
/// instrumentation branches to (and to the SanOracle event ids).
enum class SanCheckKind : unsigned {
  TaintedOperand = 1,
  FlagViolation = 2,
  OverShift = 3,
  DivisionUB = 4,
  OutOfBounds = 5,
  UninitLoad = 6,
  Unreachable = 7,
};

/// Creates the sanitizer instrumentation pass. Increments
/// `san.checks_inserted` per emitted check and `san.checks_skipped` for
/// sites it must conservatively leave unchecked (unresolvable pointer
/// chains, vector arithmetic flags, defined-function call results).
std::unique_ptr<Pass> createSanitizePass(PipelineMode Mode);

} // namespace frost

#endif // FROST_OPT_SANITIZE_H
