//===- InstSimplify.cpp - Local folds and identities ---------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant folding plus algebraic identities. Every rewrite here is a
/// refinement under the proposed semantics; identities that *weaken*
/// deferred UB (e.g. "xor x, x -> 0", which drops a poison possibility) are
/// fine — refinement permits dropping poison — while rewrites that would
/// *strengthen* it are not performed.
///
//===----------------------------------------------------------------------===//

#include "analysis/ValueTracking.h"
#include "analysis/Analyses.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "opt/Passes.h"
#include "opt/Utils.h"

using namespace frost;
using namespace frost::opt;

namespace {

class InstSimplify : public Pass {
public:
  const char *name() const override { return "instsimplify"; }
  PreservedAnalyses run(Function &F, AnalysisManager &) override;

private:
  /// Returns the replacement for \p I, or null if no simplification.
  Value *simplify(Instruction *I, IRContext &Ctx);
  Value *simplifyBinOp(Instruction *I, IRContext &Ctx);
  Value *simplifySelect(SelectInst *S, IRContext &Ctx);
};

PreservedAnalyses InstSimplify::run(Function &F, AnalysisManager &) {
  IRContext &Ctx = F.context();
  bool Changed = false;
  bool LocalChange = true;
  while (LocalChange) {
    LocalChange = false;
    for (BasicBlock *BB : F) {
      // Snapshot: simplification erases instructions.
      std::vector<Instruction *> Insts(BB->begin(), BB->end());
      for (Instruction *I : Insts) {
        Value *V = simplify(I, Ctx);
        if (!V)
          continue;
        replaceAndErase(I, V);
        Changed = LocalChange = true;
      }
    }
  }
  // Simplification only replaces and erases instructions; blocks and edges
  // are untouched.
  return Changed ? preservedCFGAnalyses() : PreservedAnalyses::all();
}

Value *InstSimplify::simplify(Instruction *I, IRContext &Ctx) {
  if (I->isBinaryOp())
    return simplifyBinOp(I, Ctx);

  switch (I->getOpcode()) {
  case Opcode::ICmp: {
    auto *C = cast<ICmpInst>(I);
    if (Constant *Folded = foldICmp(Ctx, C->pred(), C->lhs(), C->rhs()))
      return Folded;
    // icmp pred x, x folds to a constant for any x: when x is poison the
    // source result is poison and a constant refines it.
    if (C->lhs() == C->rhs() && I->getType()->isBool()) {
      switch (C->pred()) {
      case ICmpPred::EQ:
      case ICmpPred::UGE:
      case ICmpPred::ULE:
      case ICmpPred::SGE:
      case ICmpPred::SLE:
        return Ctx.getTrue();
      default:
        return Ctx.getFalse();
      }
    }
    return nullptr;
  }
  case Opcode::Select:
    return simplifySelect(cast<SelectInst>(I), Ctx);
  case Opcode::Phi: {
    auto *P = cast<PhiNode>(I);
    // A phi whose incoming values all agree is that value — but only when
    // the value dominates the phi, which holds for non-instructions and
    // for the unique incoming instruction of a single-valued phi feeding
    // from all predecessors. We conservatively allow constants, arguments,
    // and globals, plus the single-predecessor case.
    if (Value *Common = P->hasConstantValue()) {
      if (!isa<Instruction>(Common) || P->getParent()->hasSinglePredecessor())
        return Common;
    }
    return nullptr;
  }
  case Opcode::Trunc:
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::BitCast: {
    if (Constant *Folded =
            foldCast(Ctx, I->getOpcode(), I->getOperand(0), I->getType()))
      return Folded;
    // bitcast to the same type is the identity.
    if (I->getOpcode() == Opcode::BitCast &&
        I->getOperand(0)->getType() == I->getType())
      return I->getOperand(0);
    return nullptr;
  }
  case Opcode::Freeze:
    // freeze of a provably non-poison value is the identity (the rewrite
    // direction "x -> freeze x" is always sound; this is the converse,
    // sound only with the proof).
    if (isGuaranteedNotToBePoison(I->getOperand(0)))
      return I->getOperand(0);
    return nullptr;
  case Opcode::ExtractElement: {
    auto *E = cast<ExtractElementInst>(I);
    if (auto *CV = dyn_cast<ConstantVector>(E->vector()))
      return CV->element(E->index());
    // extractelement(insertelement(v, x, i), i) -> x.
    if (auto *Ins = dyn_cast<InsertElementInst>(E->vector()))
      if (Ins->index() == E->index())
        return Ins->element();
    return nullptr;
  }
  case Opcode::GEP:
    // gep p, 0 -> p (inbounds or not: offset zero stays in bounds).
    if (matchConstant(I->getOperand(1), 0))
      return I->getOperand(0);
    return nullptr;
  default:
    return nullptr;
  }
}

Value *InstSimplify::simplifyBinOp(Instruction *I, IRContext &Ctx) {
  Opcode Op = I->getOpcode();
  Value *L = I->getOperand(0), *R = I->getOperand(1);

  if (Constant *Folded = foldBinOp(Ctx, Op, I->flags(), L, R))
    return Folded;

  // Move a constant LHS of a commutative op to the RHS to halve the number
  // of patterns (x op C canonical form). Handled by returning nothing but
  // swapping in place.
  if (I->isCommutative() && isa<ConstantInt>(L) && !isa<ConstantInt>(R)) {
    I->setOperand(0, R);
    I->setOperand(1, L);
    std::swap(L, R);
  }

  switch (Op) {
  case Opcode::Add:
    if (matchConstant(R, 0))
      return L; // x + 0 == x even for poison x.
    break;
  case Opcode::Sub:
    if (matchConstant(R, 0))
      return L;
    if (L == R && !I->getType()->isVector())
      return Ctx.getInt(I->getType()->bitWidth(), 0); // Refines poison/undef.
    break;
  case Opcode::Mul:
    if (matchConstant(R, 1))
      return L;
    if (matchConstant(R, 0) && !I->getType()->isVector())
      return Ctx.getInt(I->getType()->bitWidth(), 0);
    break;
  case Opcode::UDiv:
  case Opcode::SDiv:
    if (matchConstant(R, 1))
      return L;
    break;
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
    if (matchConstant(R, 0))
      return L;
    break;
  case Opcode::And:
    if (L == R)
      return L;
    if (matchConstant(R, 0) && !I->getType()->isVector())
      return Ctx.getInt(I->getType()->bitWidth(), 0);
    if (constantValue(R) && constantValue(R)->isAllOnes())
      return L;
    break;
  case Opcode::Or:
    if (L == R)
      return L;
    if (matchConstant(R, 0))
      return L;
    if (constantValue(R) && constantValue(R)->isAllOnes() &&
        !I->getType()->isVector())
      return Ctx.getInt(BitVec::allOnes(I->getType()->bitWidth()));
    break;
  case Opcode::Xor:
    if (matchConstant(R, 0))
      return L;
    if (L == R && !I->getType()->isVector())
      return Ctx.getInt(I->getType()->bitWidth(), 0);
    break;
  default:
    break;
  }
  return nullptr;
}

Value *InstSimplify::simplifySelect(SelectInst *S, IRContext &Ctx) {
  (void)Ctx;
  if (const auto *C = dyn_cast<ConstantInt>(S->condition()))
    return C->isOne() ? S->trueValue() : S->falseValue();
  // select c, x, x -> x: if c is poison the select is poison under the
  // proposed rule and x refines it.
  if (S->trueValue() == S->falseValue())
    return S->trueValue();
  return nullptr;
}

} // namespace

std::unique_ptr<Pass> frost::createInstSimplifyPass() {
  return std::make_unique<InstSimplify>();
}
