//===- Passes.h - Pass factory functions ------------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factories for every optimization pass discussed in the paper. Passes
/// whose soundness depends on the UB semantics take a PipelineMode selecting
/// the legacy (pre-paper, unsound) or proposed (freeze-based) variant.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_OPT_PASSES_H
#define FROST_OPT_PASSES_H

#include "opt/Pass.h"

namespace frost {

/// Local folds: constant folding, algebraic identities, trivial phis.
std::unique_ptr<Pass> createInstSimplifyPass();

/// Peepholes, including the select transformations of Section 3.4. In
/// Legacy mode this includes the *unsound* select c,true,x -> or c,x (for
/// demonstration and for the TV benchmark to catch); in Proposed mode the
/// freeze-based fixed versions plus freeze peepholes run instead.
std::unique_ptr<Pass> createInstCombinePass(PipelineMode Mode);

/// CFG cleanup: constant branch folding, block merging, unreachable-block
/// removal, and the phi->select if-conversion of Section 3.4.
std::unique_ptr<Pass> createSimplifyCFGPass();

/// Sparse conditional constant propagation.
std::unique_ptr<Pass> createSCCPPass();

/// Global value numbering, memory-aware: loads number by MemorySSA version
/// and a block-local store-to-load forwarding stage runs first. Equality
/// propagation is sound only when branch-on-poison is UB (Section 3.3).
/// Forwarding a stored undef/poison literal differs between variants
/// (Section 3.1): Legacy substitutes the raw literal, Proposed freezes it.
/// Freeze instructions are never value-numbered (Section 6).
std::unique_ptr<Pass> createGVNPass(PipelineMode Mode);

/// Dead store elimination: block-local overwrite elimination (sound in both
/// variants) plus, in Legacy mode only, the unsound folklore "storing undef
/// is a no-op" deletion the per-bit memory model refutes.
std::unique_ptr<Pass> createDSEPass(PipelineMode Mode);

/// Loop-invariant code motion of speculatable instructions plus scalar
/// promotion of provably-valid loop memory traffic. Division is never
/// hoisted past control flow (Sections 3.2 / 5.6). Proposed-mode promotion
/// requires a store on every observable path and freezes the preheader
/// load; Legacy mode promotes unguarded, which smears poison over concrete
/// bytes on zero-trip paths.
std::unique_ptr<Pass> createLICMPass(PipelineMode Mode);

/// Loop unswitching. Proposed mode freezes the hoisted condition
/// (Section 5.1); Legacy mode performs the historical, unsound hoist.
std::unique_ptr<Pass> createLoopUnswitchPass(PipelineMode Mode);

/// Induction-variable widening (the Figure 3 sext-elimination), justified
/// by nsw-poison.
std::unique_ptr<Pass> createIndVarWidenPass(unsigned TargetWidth = 32);

/// Reassociation of add/mul trees; drops nsw/nuw from rewritten
/// subexpressions (Section 10.2).
std::unique_ptr<Pass> createReassociatePass();

/// Dead code elimination.
std::unique_ptr<Pass> createDCEPass();

/// Dynamic UB sanitizer instrumentation (opt/Sanitize.h): eager checks for
/// every dynamic-UB event, lowered to guards branching to `trap <id>`
/// blocks. Proposed mode implements the full check catalogue; Legacy mode
/// is the historically naive variant that believes undef is harmless.
std::unique_ptr<Pass> createSanitizePass(PipelineMode Mode);

/// Late lowering tweaks from Section 6: sinks "freeze(icmp x, C)" to
/// "icmp (freeze x), C" so the backend can keep compare and branch
/// adjacent, and treats freeze as free when duplicating compares.
std::unique_ptr<Pass> createCodeGenPreparePass(PipelineMode Mode);

} // namespace frost

#endif // FROST_OPT_PASSES_H
