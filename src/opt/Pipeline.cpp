//===- Pipeline.cpp - Textual pass pipeline parser ----------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "opt/Pipeline.h"

#include "analysis/Analyses.h"
#include "ir/Function.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"
#include "support/ErrorHandling.h"

#include <cstdio>
#include <functional>
#include <vector>

using namespace frost;

namespace {

class VerifierPass : public Pass {
public:
  const char *name() const override { return "verify"; }

  PreservedAnalyses run(Function &F, AnalysisManager &AM) override {
    const DominatorTree *DT = AM.cached<DominatorTreeAnalysis>(F);
    std::vector<std::string> Errors;
    if (!verifyFunction(F, &Errors, DT)) {
      std::fprintf(stderr, "verify pass failed on @%s:\n",
                   F.getName().c_str());
      for (const std::string &E : Errors)
        std::fprintf(stderr, "  %s\n", E.c_str());
      frost_unreachable("verify pass found invalid IR");
    }
    return PreservedAnalyses::all();
  }
};

struct PassEntry {
  const char *Name;
  bool ModeDependent; ///< Accepts (and canonically prints) <legacy|proposed>.
  std::function<std::unique_ptr<Pass>(PipelineMode)> Create;
};

const std::vector<PassEntry> &passRegistry() {
  static const std::vector<PassEntry> Registry = {
      {"instsimplify", false, [](PipelineMode) { return createInstSimplifyPass(); }},
      {"instcombine", true, [](PipelineMode M) { return createInstCombinePass(M); }},
      {"simplifycfg", false, [](PipelineMode) { return createSimplifyCFGPass(); }},
      {"sccp", false, [](PipelineMode) { return createSCCPPass(); }},
      {"gvn", true, [](PipelineMode M) { return createGVNPass(M); }},
      {"dse", true, [](PipelineMode M) { return createDSEPass(M); }},
      {"licm", true, [](PipelineMode M) { return createLICMPass(M); }},
      {"loop-unswitch", true, [](PipelineMode M) { return createLoopUnswitchPass(M); }},
      {"indvar-widen", false, [](PipelineMode) { return createIndVarWidenPass(); }},
      {"reassociate", false, [](PipelineMode) { return createReassociatePass(); }},
      {"dce", false, [](PipelineMode) { return createDCEPass(); }},
      {"codegenprepare", true, [](PipelineMode M) { return createCodeGenPreparePass(M); }},
      {"sanitize", true, [](PipelineMode M) { return createSanitizePass(M); }},
      {"verify", false, [](PipelineMode) { return createVerifierPass(); }},
  };
  return Registry;
}

/// The Section 6 evaluation pipeline, shaped like LLVM's -O2: early
/// cleanup, scalar optimizations, loop optimizations, then late cleanup and
/// lowering preparation.
const char *DefaultPreset =
    "instsimplify,simplifycfg,instcombine,sccp,simplifycfg,gvn,licm,"
    "loop-unswitch,indvar-widen,reassociate,instcombine,gvn,dse,dce,"
    "simplifycfg,codegenprepare,dce";

bool fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message + "\nvalid pass names: " + availablePassNames();
  return false;
}

/// Parses \p Text into \p Out. Kept separate from the public entry point so
/// a failed parse never half-populates the PassManager.
bool parseInto(std::vector<std::unique_ptr<Pass>> &Out,
               const std::string &Text, PipelineMode DefaultMode,
               std::string *Error) {
  if (Text.empty())
    return fail(Error, "empty pass pipeline");

  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Comma = Text.find(',', Pos);
    std::string Element = Text.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Text.size() : Comma + 1;
    if (Element.empty())
      return fail(Error, "empty pipeline element (stray comma?)");

    // Split an optional <variant> suffix.
    std::string Name = Element;
    PipelineMode Mode = DefaultMode;
    bool HasVariant = false;
    size_t Lt = Element.find('<');
    if (Lt != std::string::npos) {
      if (Element.back() != '>')
        return fail(Error, "malformed variant suffix in '" + Element + "'");
      Name = Element.substr(0, Lt);
      std::string Variant = Element.substr(Lt + 1, Element.size() - Lt - 2);
      if (Variant == "legacy")
        Mode = PipelineMode::Legacy;
      else if (Variant == "proposed")
        Mode = PipelineMode::Proposed;
      else
        return fail(Error, "unknown variant '" + Variant + "' in '" +
                               Element + "' (expected legacy or proposed)");
      HasVariant = true;
    }

    if (Name == "default") {
      if (!parseInto(Out, DefaultPreset, Mode, Error))
        return false;
      continue;
    }

    const PassEntry *Found = nullptr;
    for (const PassEntry &E : passRegistry())
      if (Name == E.Name) {
        Found = &E;
        break;
      }
    if (!Found)
      return fail(Error, "unknown pass '" + Name + "'");
    if (HasVariant && !Found->ModeDependent)
      return fail(Error, "pass '" + Name + "' does not take a variant");
    Out.push_back(Found->Create(Mode));
  }
  return true;
}

} // namespace

std::string frost::availablePassNames() {
  std::string Names = "default";
  for (const PassEntry &E : passRegistry()) {
    Names += ", ";
    Names += E.Name;
    if (E.ModeDependent)
      Names += "[<legacy|proposed>]";
  }
  return Names;
}

std::unique_ptr<Pass> frost::createVerifierPass() {
  return std::make_unique<VerifierPass>();
}

bool frost::parsePassPipeline(PassManager &PM, const std::string &Text,
                              PipelineMode DefaultMode, std::string *Error) {
  std::vector<std::unique_ptr<Pass>> Parsed;
  if (!parseInto(Parsed, Text, DefaultMode, Error))
    return false;
  for (std::unique_ptr<Pass> &P : Parsed)
    PM.add(std::move(P));
  return true;
}
