//===- Pipeline.h - Textual pass pipeline parser ----------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A textual pipeline language in the spirit of LLVM's
/// -passes='instcombine,gvn,...':
///
///   pipeline ::= element (',' element)*
///   element  ::= passname ('<' variant '>')?  |  'default' ('<' variant '>')?
///   variant  ::= 'legacy' | 'proposed'
///
/// A variant suffix selects the UB semantics for mode-dependent passes
/// (instcombine, loop-unswitch, codegenprepare); elements without a suffix
/// use the parse's default mode. The 'default' preset expands to the
/// Section 6 evaluation pipeline (buildStandardPipeline). Pipelines print
/// canonically via PassManager::pipelineText() and round-trip through this
/// parser.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_OPT_PIPELINE_H
#define FROST_OPT_PIPELINE_H

#include "opt/Pass.h"

#include <string>

namespace frost {

/// Parses \p Text and appends the passes to \p PM. On a parse error,
/// returns false and sets \p Error (if non-null) to a diagnostic that
/// lists every valid pass name.
bool parsePassPipeline(PassManager &PM, const std::string &Text,
                       PipelineMode DefaultMode = PipelineMode::Proposed,
                       std::string *Error = nullptr);

/// All recognised pass names, comma-separated (for --help and errors).
std::string availablePassNames();

/// The IR verifier as a pipeline element ("verify"): aborts the process on
/// malformed IR, reusing the pipeline's cached dominator tree for the SSA
/// dominance check. Never modifies the function.
std::unique_ptr<Pass> createVerifierPass();

} // namespace frost

#endif // FROST_OPT_PIPELINE_H
