//===- AnalysisManager.cpp - Lazy analysis cache with invalidation -----------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "opt/AnalysisManager.h"

using namespace frost;

bool AnalysisManager::isInvalidated(AnalysisKey *K,
                                    const PreservedAnalyses &PA,
                                    std::map<AnalysisKey *, bool> &Memo) const {
  auto MemoIt = Memo.find(K);
  if (MemoIt != Memo.end())
    return MemoIt->second;
  // Break cycles defensively (the three built-in analyses form a DAG, but a
  // registration mistake should not hang the compiler).
  Memo[K] = false;

  bool Invalid = !PA.preserved(K);
  if (!Invalid) {
    auto RegIt = Registry.find(K);
    if (RegIt != Registry.end())
      for (AnalysisKey *Dep : RegIt->second.Dependencies)
        if (isInvalidated(Dep, PA, Memo)) {
          Invalid = true;
          break;
        }
  }
  Memo[K] = Invalid;
  return Invalid;
}

void AnalysisManager::invalidate(Function &F, const PreservedAnalyses &PA,
                                 std::vector<const char *> *Invalidated) {
  if (PA.areAllPreserved())
    return;

  std::map<AnalysisKey *, bool> Memo;
  auto It = Entries.lower_bound({&F, nullptr});
  while (It != Entries.end() && It->first.first == &F) {
    AnalysisKey *K = It->first.second;
    if (!isInvalidated(K, PA, Memo)) {
      ++It;
      continue;
    }
    auto RegIt = Registry.find(K);
    const char *Name = RegIt != Registry.end() ? RegIt->second.Name : "?";
    stats::add(std::string("am.") + Name + ".invalidated");
    if (Invalidated)
      Invalidated->push_back(Name);
    It = Entries.erase(It);
  }
}

void AnalysisManager::clear(Function &F) {
  auto It = Entries.lower_bound({&F, nullptr});
  while (It != Entries.end() && It->first.first == &F)
    It = Entries.erase(It);
}

void AnalysisManager::clear() { Entries.clear(); }
