//===- Reassociate.cpp - Canonical reassociation of expression trees -----------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rewrites trees of one commutative-associative opcode into a canonical
/// left-leaning chain with constants combined at the end. Reassociation may
/// change how and whether subexpressions overflow, so nsw/nuw flags are
/// dropped from every rewritten node — the Section 10.2 interaction: losing
/// the flags inhibits later poison-based optimizations such as induction
/// variable widening (the ablation benchmark measures this).
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "opt/Passes.h"
#include "opt/Utils.h"

#include <algorithm>
#include <map>

using namespace frost;
using namespace frost::opt;

namespace {

bool isAssociative(Opcode Op) {
  return Op == Opcode::Add || Op == Opcode::Mul || Op == Opcode::And ||
         Op == Opcode::Or || Op == Opcode::Xor;
}

class Reassociate : public Pass {
public:
  const char *name() const override { return "reassociate"; }
  PreservedAnalyses run(Function &F, AnalysisManager &) override;

private:
  std::map<Value *, unsigned> Ranks;

  /// Collects the leaves of a single-opcode tree rooted at \p Root,
  /// following only single-use internal nodes.
  void collectLeaves(BinaryOperator *Root, std::vector<Value *> &Leaves,
                     std::vector<BinaryOperator *> &Internal);
  bool rewriteTree(BinaryOperator *Root, IRContext &Ctx);
};

void Reassociate::collectLeaves(BinaryOperator *Root,
                                std::vector<Value *> &Leaves,
                                std::vector<BinaryOperator *> &Internal) {
  Opcode Op = Root->getOpcode();
  std::vector<Value *> Work{Root->lhs(), Root->rhs()};
  Internal.push_back(Root);
  while (!Work.empty()) {
    Value *V = Work.back();
    Work.pop_back();
    auto *B = dyn_cast<BinaryOperator>(V);
    if (B && B->getOpcode() == Op && B->hasOneUse() &&
        B->getParent() == Root->getParent()) {
      Internal.push_back(B);
      Work.push_back(B->lhs());
      Work.push_back(B->rhs());
      continue;
    }
    Leaves.push_back(V);
  }
}

bool Reassociate::rewriteTree(BinaryOperator *Root, IRContext &Ctx) {
  std::vector<Value *> Leaves;
  std::vector<BinaryOperator *> Internal;
  collectLeaves(Root, Leaves, Internal);
  if (Leaves.size() < 3)
    return false;

  Opcode Op = Root->getOpcode();

  // Combine constant leaves.
  std::vector<Value *> Vars;
  Constant *Acc = nullptr;
  for (Value *L : Leaves) {
    if (isa<ConstantInt>(L)) {
      Acc = Acc ? foldBinOp(Ctx, Op, {}, Acc, L) : cast<Constant>(L);
      assert(Acc && "constant folding of reassociated leaves cannot fail");
    } else {
      Vars.push_back(L);
    }
  }

  // Canonical order: by rank (definition order), ties by pointer for
  // determinism within a run.
  std::stable_sort(Vars.begin(), Vars.end(), [&](Value *A, Value *B) {
    return Ranks[A] < Ranks[B];
  });

  // Identity constants can be dropped entirely.
  if (Acc) {
    const BitVec &V = cast<ConstantInt>(Acc)->value();
    bool IsIdentity = (Op == Opcode::Add || Op == Opcode::Or ||
                       Op == Opcode::Xor)
                          ? V.isZero()
                          : (Op == Opcode::Mul ? V.isOne()
                                               : /*And*/ V.isAllOnes());
    if (IsIdentity)
      Acc = nullptr;
  }

  // Was the tree already canonical? Then leave it alone (and keep flags).
  std::vector<Value *> Desired = Vars;
  if (Acc)
    Desired.push_back(Acc);
  {
    std::vector<Value *> Current;
    Value *V = Root;
    while (auto *B = dyn_cast<BinaryOperator>(V)) {
      if (B->getOpcode() != Op ||
          std::find(Internal.begin(), Internal.end(), B) == Internal.end())
        break;
      Current.push_back(B->rhs());
      V = B->lhs();
    }
    Current.push_back(V);
    std::reverse(Current.begin(), Current.end());
    if (Current == Desired)
      return false;
  }

  // Build the left-leaning chain before the root; drop nsw/nuw (the
  // regrouped subexpressions may overflow differently).
  assert(!Desired.empty() && "tree with no leaves");
  Value *Chain = Desired.front();
  for (unsigned I = 1; I != Desired.size(); ++I) {
    auto *N = BinaryOperator::create(Op, Chain, Desired[I], ArithFlags{},
                                     Root->getName() + ".ra");
    Root->getParent()->insertBefore(Root, N);
    Chain = N;
  }
  if (Desired.size() == 1) {
    // Everything folded into one value.
    replaceAndErase(Root, Chain);
    return true;
  }
  replaceAndErase(Root, Chain);
  return true;
}

PreservedAnalyses Reassociate::run(Function &F, AnalysisManager &) {
  IRContext &Ctx = F.context();
  // Rank values by definition order (arguments first).
  Ranks.clear();
  unsigned NextRank = 1;
  for (unsigned I = 0; I != F.getNumArgs(); ++I)
    Ranks[F.arg(I)] = NextRank++;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      Ranks[I] = NextRank++;

  bool Changed = false;
  for (BasicBlock *BB : F) {
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (Instruction *I : Insts) {
      auto *B = dyn_cast<BinaryOperator>(I);
      if (!B || !isAssociative(B->getOpcode()))
        continue;
      // Only rewrite tree roots (nodes not feeding the same opcode).
      bool IsRoot = true;
      for (const Use *U : B->uses()) {
        auto *UB = dyn_cast<BinaryOperator>(U->getUser());
        if (UB && UB->getOpcode() == B->getOpcode() && B->hasOneUse() &&
            UB->getParent() == B->getParent())
          IsRoot = false;
      }
      if (!IsRoot)
        continue;
      if (B->getParent() != BB)
        continue; // Erased/moved by a previous rewrite.
      Changed |= rewriteTree(B, Ctx);
    }
  }
  if (Changed)
    eraseDeadCode(F);
  // Trees are rewritten in place; the CFG never changes.
  return Changed ? preservedCFGAnalyses() : PreservedAnalyses::all();
}

} // namespace

std::unique_ptr<Pass> frost::createReassociatePass() {
  return std::make_unique<Reassociate>();
}
