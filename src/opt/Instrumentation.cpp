//===- Instrumentation.cpp - Pass instrumentation hooks ----------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "opt/Instrumentation.h"

#include "opt/Pass.h"
#include "support/Stats.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace frost;

void frost::attachTimePassesInstrumentation(PassInstrumentation &PI) {
  PI.onAfterPass([](const Pass &P, const Function &,
                    const PassInstrumentation::AfterPassInfo &Info) {
    std::string Base = std::string("pm.pass.") + P.name();
    stats::add(Base + ".runs");
    if (Info.Changed)
      stats::add(Base + ".changed");
    stats::add(Base + ".time_ns", uint64_t(Info.Seconds * 1e9));
    if (Info.InstsBefore > Info.InstsAfter)
      stats::add(Base + ".insts_removed", Info.InstsBefore - Info.InstsAfter);
    else
      stats::add(Base + ".insts_added", Info.InstsAfter - Info.InstsBefore);
  });
}

std::string frost::renderTimePassesReport() {
  // Group the pm.pass.<name>.<field> counters back into rows.
  struct Row {
    uint64_t TimeNs = 0, Runs = 0, Changed = 0;
    uint64_t Removed = 0, Added = 0;
  };
  std::map<std::string, Row> Rows;
  for (const auto &[Name, Value] : stats::snapshot()) {
    if (Name.rfind("pm.pass.", 0) != 0)
      continue;
    size_t Dot = Name.rfind('.');
    std::string PassName = Name.substr(8, Dot - 8);
    std::string Field = Name.substr(Dot + 1);
    Row &R = Rows[PassName];
    if (Field == "time_ns")
      R.TimeNs = Value;
    else if (Field == "runs")
      R.Runs = Value;
    else if (Field == "changed")
      R.Changed = Value;
    else if (Field == "insts_removed")
      R.Removed = Value;
    else if (Field == "insts_added")
      R.Added = Value;
  }

  std::vector<std::pair<std::string, Row>> Sorted(Rows.begin(), Rows.end());
  std::sort(Sorted.begin(), Sorted.end(),
            [](const auto &A, const auto &B) {
              if (A.second.TimeNs != B.second.TimeNs)
                return A.second.TimeNs > B.second.TimeNs;
              return A.first < B.first;
            });

  std::string Out =
      "=== per-pass accounting (--time-passes) ===\n";
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "%-16s %12s %10s %10s %10s\n", "pass",
                "time(ms)", "runs", "changed", "insts(+/-)");
  Out += Buf;
  for (const auto &[Name, R] : Sorted) {
    std::snprintf(Buf, sizeof(Buf), "%-16s %12.3f %10llu %10llu %+5lld/%lld\n",
                  Name.c_str(), double(R.TimeNs) / 1e6,
                  (unsigned long long)R.Runs, (unsigned long long)R.Changed,
                  (long long)R.Added, (long long)R.Removed);
    Out += Buf;
  }
  return Out;
}
