//===- InstCombine.cpp - Peephole combines --------------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Peephole rewrites, including every select/arithmetic transformation the
/// paper's Section 3.4 dissects. PipelineMode selects between:
///
///  - Legacy: the historically *unsound* forms LLVM shipped, e.g.
///    "select c, true, x -> or c, x" without protection — kept so the
///    TV benchmark can demonstrate the miscompilation end to end; and
///  - Proposed: the fixed forms, which freeze the arm that may inject
///    poison into the strict arithmetic replacement, plus the freeze
///    peepholes the prototype added (Section 6): freeze(freeze x) ->
///    freeze x, freeze(const) -> const, freeze x -> x when x is provably
///    not poison.
///
/// Note on the fix: the strict `or`/`and` propagates poison from *either*
/// operand, while select only propagates the chosen arm, so it is the
/// not-always-chosen value operand that needs freezing.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"
#include "analysis/ValueTracking.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "opt/Passes.h"
#include "opt/Utils.h"

using namespace frost;
using namespace frost::opt;

namespace {

/// Minimal insertion helper: creates instructions immediately before an
/// anchor instruction.
class IRBuilderLiteImpl {
public:
  IRBuilderLiteImpl(IRContext &Ctx, Instruction *Anchor)
      : Ctx(Ctx), Anchor(Anchor) {}

  IRContext &Ctx;
  Instruction *Anchor;

  Value *insert(Instruction *I) {
    Anchor->getParent()->insertBefore(Anchor, I);
    return I;
  }
};

Value *combineBinOp(Instruction *I, PipelineMode Mode, IRBuilderLiteImpl &B) {
  IRContext &Ctx = B.Ctx;
  Opcode Op = I->getOpcode();
  Value *L = I->getOperand(0), *R = I->getOperand(1);
  const BitVec *RC = constantValue(R);

  // Shifts of a literal deferred-UB value by a constant — the fold the
  // paper's Section 3.1 opens with. Poison is strict through every binary
  // operation in Figure 5, so shl poison, C -> poison is sound under both
  // semantics. The legacy "shl undef, C -> undef" folklore is *unsound*:
  // every value "undef << 1" can take is even, while the replacement undef
  // can be observed odd. The proposed semantics erases the distinction
  // (undef is poison), making the corrected fold sound again.
  if (I->isShift() && isa<ConstantInt>(R)) {
    if (isa<PoisonValue>(L))
      return Ctx.getPoison(I->getType());
    if (isa<UndefValue>(L)) {
      if (Mode == PipelineMode::Legacy)
        return Ctx.getUndef(I->getType());
      return Ctx.getPoison(I->getType());
    }
  }

  switch (Op) {
  case Opcode::Mul:
    // mul x, 2^k -> shl x, k. nuw carries over (the unsigned overflow
    // conditions coincide), but nsw only does when 2^k is positive as a
    // signed value: when 2^k is the sign bit (e.g. "mul nsw i2 x, 2", where
    // 2 reads as -2), the overflow conditions differ — a bug our own
    // exhaustive validation found, precisely the class of mistake the
    // paper's Section 6 methodology targets. Dropping nsw is always a
    // refinement, so we drop it in the sign-bit case.
    if (RC && RC->isPowerOf2()) {
      unsigned K = RC->countTrailingZeros();
      ArithFlags Flags = I->flags();
      if (K + 1 >= RC->width())
        Flags.NSW = false;
      auto *Shl =
          BinaryOperator::create(Opcode::Shl, L, Ctx.getInt(RC->width(), K),
                                 Flags, I->getName() + ".shl");
      return B.insert(Shl);
    }
    break;
  case Opcode::UDiv:
    // udiv x, 2^k -> lshr x, k ('exact' carries over directly).
    if (RC && RC->isPowerOf2()) {
      ArithFlags Flags;
      Flags.Exact = I->isExact();
      auto *Shr = BinaryOperator::create(
          Opcode::LShr, L, Ctx.getInt(RC->width(), RC->countTrailingZeros()),
          Flags, I->getName() + ".shr");
      return B.insert(Shr);
    }
    break;
  case Opcode::Sub:
    // sub x, C -> add x, -C.
    if (RC && !RC->isZero() && !I->hasNSW() && !I->hasNUW()) {
      auto *Add = BinaryOperator::create(Opcode::Add, L,
                                         Ctx.getInt(RC->neg()), ArithFlags{},
                                         I->getName() + ".add");
      return B.insert(Add);
    }
    break;
  case Opcode::Add: {
    // add (add x, C1), C2 -> add x, C1+C2 (flags dropped: combined step
    // may overflow differently — this only *removes* poison, a refinement).
    auto *LB = dyn_cast<BinaryOperator>(L);
    if (RC && LB && LB->getOpcode() == Opcode::Add) {
      if (const BitVec *C1 = constantValue(LB->rhs())) {
        auto *Add = BinaryOperator::create(Opcode::Add, LB->lhs(),
                                           Ctx.getInt(C1->add(*RC)),
                                           ArithFlags{}, I->getName() + ".c");
        return B.insert(Add);
      }
    }
    break;
  }
  case Opcode::Xor: {
    // xor (xor x, C1), C2 -> xor x, C1^C2.
    auto *LB = dyn_cast<BinaryOperator>(L);
    if (RC && LB && LB->getOpcode() == Opcode::Xor) {
      if (const BitVec *C1 = constantValue(LB->rhs())) {
        auto *Xor = BinaryOperator::create(Opcode::Xor, LB->lhs(),
                                           Ctx.getInt(C1->xor_(*RC)),
                                           ArithFlags{}, I->getName() + ".c");
        return B.insert(Xor);
      }
    }
    break;
  }
  default:
    break;
  }
  return nullptr;
}

Value *combineICmp(ICmpInst *C, IRBuilderLiteImpl &B) {
  IRContext &Ctx = B.Ctx;

  // The flagship poison-justified fold (Sections 1/2.4):
  //   icmp sgt (add nsw a, b), a  ->  icmp sgt b, 0
  // and its symmetric/commuted forms.
  auto MatchAddNSW = [&](Value *AddSide, Value *Other) -> Value * {
    auto *Add = dyn_cast<BinaryOperator>(AddSide);
    if (!Add || Add->getOpcode() != Opcode::Add || !Add->hasNSW())
      return nullptr;
    if (Add->lhs() == Other)
      return Add->rhs();
    if (Add->rhs() == Other)
      return Add->lhs();
    return nullptr;
  };
  if (C->pred() == ICmpPred::SGT) {
    if (Value *BOp = MatchAddNSW(C->lhs(), C->rhs())) {
      auto *NewCmp = ICmpInst::create(
          Ctx, ICmpPred::SGT, BOp,
          Ctx.getInt(BOp->getType()->bitWidth(), 0), C->getName() + ".b");
      return B.insert(NewCmp);
    }
  }
  if (C->pred() == ICmpPred::SLT) {
    if (Value *BOp = MatchAddNSW(C->rhs(), C->lhs())) {
      auto *NewCmp = ICmpInst::create(
          Ctx, ICmpPred::SGT, BOp,
          Ctx.getInt(BOp->getType()->bitWidth(), 0), C->getName() + ".b");
      return B.insert(NewCmp);
    }
  }

  // icmp ult x, 1 -> icmp eq x, 0.
  if (C->pred() == ICmpPred::ULT && matchConstant(C->rhs(), 1)) {
    auto *NewCmp =
        ICmpInst::create(Ctx, ICmpPred::EQ, C->lhs(),
                         Ctx.getInt(C->lhs()->getType()->bitWidth(), 0),
                         C->getName() + ".z");
    return B.insert(NewCmp);
  }
  return nullptr;
}

Value *combineSelect(SelectInst *S, PipelineMode Mode, IRBuilderLiteImpl &B) {
  IRContext &Ctx = B.Ctx;
  if (!S->getType()->isBool())
    return nullptr;

  Value *Cond = S->condition();
  Value *T = S->trueValue(), *F = S->falseValue();

  auto Protect = [&](Value *V) -> Value * {
    if (Mode == PipelineMode::Legacy)
      return V; // The historical, unsound form (caught by the TV bench).
    if (isGuaranteedNotToBePoison(V))
      return V;
    return B.insert(FreezeInst::create(V, V->getName() + ".fr"));
  };

  // select c, true, x -> or c, freeze(x) (Section 3.4).
  if (matchConstant(T, 1))
    return B.insert(BinaryOperator::create(Opcode::Or, Cond, Protect(F),
                                           ArithFlags{},
                                           S->getName() + ".or"));
  // select c, x, false -> and c, freeze(x).
  if (matchConstant(F, 0))
    return B.insert(BinaryOperator::create(Opcode::And, Cond, Protect(T),
                                           ArithFlags{},
                                           S->getName() + ".and"));
  // select c, false, x -> and (xor c, true), freeze(x).
  if (matchConstant(T, 0)) {
    Value *Not = B.insert(BinaryOperator::create(
        Opcode::Xor, Cond, Ctx.getTrue(), ArithFlags{},
        Cond->getName() + ".not"));
    return B.insert(BinaryOperator::create(Opcode::And, Not, Protect(F),
                                           ArithFlags{},
                                           S->getName() + ".and"));
  }
  // select c, x, true -> or (xor c, true), freeze(x).
  if (matchConstant(F, 1)) {
    Value *Not = B.insert(BinaryOperator::create(
        Opcode::Xor, Cond, Ctx.getTrue(), ArithFlags{},
        Cond->getName() + ".not"));
    return B.insert(BinaryOperator::create(Opcode::Or, Not, Protect(T),
                                           ArithFlags{},
                                           S->getName() + ".or"));
  }
  return nullptr;
}

Value *combineCast(CastInst *C, IRBuilderLiteImpl &B) {
  auto *Inner = dyn_cast<CastInst>(C->src());
  if (!Inner)
    return nullptr;
  Opcode Outer = C->getOpcode(), In = Inner->getOpcode();
  // zext(zext x) -> zext x; sext(sext x) -> sext x; sext(zext x) -> zext x
  // (zext already fixed the sign bit at 0).
  if ((Outer == Opcode::ZExt && In == Opcode::ZExt) ||
      (Outer == Opcode::SExt && In == Opcode::SExt) ||
      (Outer == Opcode::SExt && In == Opcode::ZExt)) {
    Opcode NewOp = In;
    return B.insert(CastInst::create(NewOp, Inner->src(), C->getType(),
                                     C->getName() + ".c"));
  }
  // trunc(zext/sext x) back to the original width is the identity.
  if (Outer == Opcode::Trunc &&
      (In == Opcode::ZExt || In == Opcode::SExt) &&
      Inner->src()->getType() == C->getType())
    return Inner->src();
  return nullptr;
}

Value *combineFreeze(FreezeInst *Fr, IRBuilderLiteImpl &B) {
  (void)B;
  Value *Src = Fr->src();
  // freeze(freeze x) -> freeze x.
  if (isa<FreezeInst>(Src))
    return Src;
  // freeze(const) -> const; freeze of provably-non-poison -> the value.
  if (isGuaranteedNotToBePoison(Src))
    return Src;
  return nullptr;
}

class InstCombineImpl : public Pass {
public:
  explicit InstCombineImpl(PipelineMode Mode) : Mode(Mode) {}

  const char *name() const override { return "instcombine"; }

  std::string pipelineText() const override {
    return Mode == PipelineMode::Legacy ? "instcombine<legacy>"
                                        : "instcombine<proposed>";
  }

  PreservedAnalyses run(Function &F, AnalysisManager &) override {
    IRContext &Ctx = F.context();
    bool Changed = false;
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      for (BasicBlock *BB : F) {
        std::vector<Instruction *> Insts(BB->begin(), BB->end());
        for (Instruction *I : Insts) {
          IRBuilderLiteImpl B(Ctx, I);
          Value *Repl = nullptr;
          if (I->isBinaryOp())
            Repl = combineBinOp(I, Mode, B);
          else if (auto *C = dyn_cast<ICmpInst>(I))
            Repl = combineICmp(C, B);
          else if (auto *S = dyn_cast<SelectInst>(I))
            Repl = combineSelect(S, Mode, B);
          else if (auto *Cast = dyn_cast<CastInst>(I))
            Repl = combineCast(Cast, B);
          else if (auto *Fr = dyn_cast<FreezeInst>(I)) {
            if (Mode == PipelineMode::Proposed)
              Repl = combineFreeze(Fr, B);
          }
          if (!Repl)
            continue;
          replaceAndErase(I, Repl);
          Changed = LocalChange = true;
        }
      }
      // Clean up operand chains orphaned by the rewrites.
      LocalChange |= eraseDeadCode(F);
    }
    // Peepholes only: instructions are rewritten in place, the CFG is not.
    return Changed ? preservedCFGAnalyses() : PreservedAnalyses::all();
  }

private:
  PipelineMode Mode;
};

} // namespace

std::unique_ptr<Pass> frost::createInstCombinePass(PipelineMode Mode) {
  return std::make_unique<InstCombineImpl>(Mode);
}
