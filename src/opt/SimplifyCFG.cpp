//===- SimplifyCFG.cpp - CFG cleanup and if-conversion -------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CFG simplification: constant branch folding, unreachable block removal,
/// straight-line block merging, empty block forwarding, and the Section 3.4
/// phi -> select if-conversion. The if-conversion is sound under the
/// proposed semantics precisely because select with a poison condition
/// yields poison while the branch it replaces was immediate UB — the select
/// refines it.
///
//===----------------------------------------------------------------------===//

#include "analysis/Analyses.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "opt/Passes.h"
#include "opt/Utils.h"

#include <algorithm>
#include <set>

using namespace frost;
using namespace frost::opt;

namespace {

class SimplifyCFG : public Pass {
public:
  const char *name() const override { return "simplifycfg"; }
  PreservedAnalyses run(Function &F, AnalysisManager &) override;

private:
  bool removeUnreachableBlocks(Function &F);
  bool foldConstantBranches(Function &F);
  bool mergeStraightLine(Function &F);
  bool forwardEmptyBlocks(Function &F);
  bool convertPhisToSelects(Function &F);
};

PreservedAnalyses SimplifyCFG::run(Function &F, AnalysisManager &) {
  bool Changed = false;
  bool LocalChange = true;
  while (LocalChange) {
    LocalChange = false;
    LocalChange |= foldConstantBranches(F);
    LocalChange |= removeUnreachableBlocks(F);
    LocalChange |= mergeStraightLine(F);
    LocalChange |= forwardEmptyBlocks(F);
    LocalChange |= convertPhisToSelects(F);
    Changed |= LocalChange;
  }
  // Every transformation here rewires blocks and edges.
  return Changed ? PreservedAnalyses::none() : PreservedAnalyses::all();
}

/// br true/false -> unconditional; conditional branch with equal
/// destinations -> unconditional. Also folds switches on constants.
bool SimplifyCFG::foldConstantBranches(Function &F) {
  IRContext &Ctx = F.context();
  bool Changed = false;
  for (BasicBlock *BB : F) {
    Instruction *T = BB->terminator();
    if (!T)
      continue;
    if (auto *Br = dyn_cast<BranchInst>(T)) {
      if (!Br->isConditional())
        continue;
      BasicBlock *Keep = nullptr;
      if (const auto *C = dyn_cast<ConstantInt>(Br->condition()))
        Keep = C->isOne() ? Br->trueDest() : Br->falseDest();
      else if (Br->trueDest() == Br->falseDest())
        Keep = Br->trueDest();
      if (!Keep)
        continue;
      BasicBlock *Drop =
          Keep == Br->trueDest() ? Br->falseDest() : Br->trueDest();
      if (Drop != Keep)
        Drop->removePredecessor(BB);
      Br->eraseFromParent();
      BB->push_back(BranchInst::createUncond(Keep, Ctx));
      Changed = true;
    } else if (auto *SW = dyn_cast<SwitchInst>(T)) {
      const auto *C = dyn_cast<ConstantInt>(SW->condition());
      if (!C)
        continue;
      BasicBlock *Keep = SW->defaultDest();
      for (unsigned I = 0, E = SW->getNumCases(); I != E; ++I)
        if (SW->caseValue(I)->value() == C->value())
          Keep = SW->caseDest(I);
      std::set<BasicBlock *> Dests;
      Dests.insert(SW->defaultDest());
      for (unsigned I = 0, E = SW->getNumCases(); I != E; ++I)
        Dests.insert(SW->caseDest(I));
      SW->eraseFromParent();
      for (BasicBlock *D : Dests)
        if (D != Keep)
          D->removePredecessor(BB);
      BB->push_back(BranchInst::createUncond(Keep, Ctx));
      Changed = true;
    }
  }
  return Changed;
}

bool SimplifyCFG::removeUnreachableBlocks(Function &F) {
  // Flood from the entry.
  std::set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work{F.entry()};
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    if (!Reachable.insert(BB).second)
      continue;
    for (BasicBlock *S : BB->successors())
      Work.push_back(S);
  }

  std::vector<BasicBlock *> Dead;
  for (BasicBlock *BB : F)
    if (!Reachable.count(BB))
      Dead.push_back(BB);
  if (Dead.empty())
    return false;

  // First remove phi edges from dead predecessors, then drop references so
  // cross-block uses (legal only from other dead blocks) disappear.
  for (BasicBlock *BB : Dead)
    for (BasicBlock *S : BB->successors())
      if (Reachable.count(S))
        S->removePredecessor(BB);
  for (BasicBlock *BB : Dead)
    for (Instruction *I : *BB)
      I->dropAllReferences();
  for (BasicBlock *BB : Dead) {
    // Uses of this dead block's instructions can only be in dead blocks,
    // whose references were just dropped.
    std::vector<Instruction *> Insts(BB->begin(), BB->end());
    for (auto It = Insts.rbegin(); It != Insts.rend(); ++It) {
      assert(!(*It)->hasUses() && "dead instruction still used");
      BB->erase(*It);
    }
    F.eraseBlock(BB);
  }
  return true;
}

/// Merges a block into its unique predecessor when the predecessor has a
/// single successor.
bool SimplifyCFG::mergeStraightLine(Function &F) {
  bool Changed = false;
  bool LocalChange = true;
  while (LocalChange) {
    LocalChange = false;
    for (BasicBlock *BB : F) {
      if (BB == F.entry())
        continue;
      std::vector<BasicBlock *> Preds = BB->uniquePredecessors();
      if (Preds.size() != 1)
        continue;
      BasicBlock *Pred = Preds.front();
      if (Pred->successors().size() != 1 || Pred == BB)
        continue;
      // Fold single-entry phis.
      for (PhiNode *P : BB->phis())
        replaceAndErase(P, P->getIncomingValue(0));
      // Splice instructions after removing the predecessor's terminator.
      Pred->terminator()->eraseFromParent();
      std::vector<Instruction *> Insts(BB->begin(), BB->end());
      for (Instruction *I : Insts) {
        BB->remove(I);
        Pred->push_back(I);
      }
      // Successor phis must now name Pred.
      for (BasicBlock *S : Pred->successors())
        for (PhiNode *P : S->phis())
          for (unsigned I = 0, E = P->getNumIncoming(); I != E; ++I)
            if (P->getIncomingBlock(I) == BB)
              P->setIncomingBlock(I, Pred);
      BB->replaceAllUsesWith(Pred); // Remaining stray block references.
      F.eraseBlock(BB);
      LocalChange = Changed = true;
      break; // Iterator invalidated; restart.
    }
  }
  return Changed;
}

/// Redirects branches through blocks that contain only an unconditional
/// branch (and no phis).
bool SimplifyCFG::forwardEmptyBlocks(Function &F) {
  bool Changed = false;
  for (BasicBlock *BB : F) {
    if (BB == F.entry() || BB->size() != 1)
      continue;
    auto *Br = dyn_cast<BranchInst>(BB->terminator());
    if (!Br || Br->isConditional())
      continue;
    BasicBlock *Dest = Br->dest();
    if (Dest == BB)
      continue;
    // Phis in the destination make retargeting non-trivial (a predecessor
    // may already branch to Dest with a different value). Only forward when
    // the destination has no phis, or every predecessor of BB is not
    // already a predecessor of Dest and the phi values can be rerouted.
    std::vector<BasicBlock *> Preds = BB->uniquePredecessors();
    if (Preds.empty())
      continue;
    std::vector<PhiNode *> DestPhis = Dest->phis();
    bool CanForward = true;
    std::vector<BasicBlock *> DestPreds = Dest->uniquePredecessors();
    for (BasicBlock *P : Preds) {
      if (std::find(DestPreds.begin(), DestPreds.end(), P) !=
          DestPreds.end()) {
        CanForward = false; // Would create duplicate phi edges.
        break;
      }
      // A conditional branch in P with both edges through different paths
      // to Dest is fine; switches too.
    }
    if (!CanForward)
      continue;

    for (BasicBlock *P : Preds) {
      Instruction *T = P->terminator();
      if (auto *PBr = dyn_cast<BranchInst>(T)) {
        for (unsigned I = 0; I != PBr->getNumDests(); ++I)
          if (PBr->getDest(I) == BB)
            PBr->setDest(I, Dest);
      } else if (isa<SwitchInst>(T)) {
        T->replaceUsesOfWith(BB, Dest);
      }
      // The phi edge that used to come from BB now comes from P; add a new
      // edge per predecessor with BB's incoming value.
      for (PhiNode *DP : DestPhis)
        DP->addIncoming(DP->getIncomingValueForBlock(BB), P);
    }
    for (PhiNode *DP : DestPhis) {
      int Idx = DP->getBlockIndex(BB);
      if (Idx >= 0)
        DP->removeIncoming(static_cast<unsigned>(Idx));
    }
    // BB is now unreachable; the cleanup iteration removes it.
    Changed = true;
  }
  return Changed;
}

/// Diamond / triangle if-conversion:
///   entry: br c, T, F;  T: br M;  F: br M;  M: phi [a,T],[b,F]
/// becomes a select in M. Sound under the proposed semantics (Section 3.4).
bool SimplifyCFG::convertPhisToSelects(Function &F) {
  IRContext &Ctx = F.context();
  bool Changed = false;
  for (BasicBlock *Merge : F) {
    std::vector<BasicBlock *> Preds = Merge->uniquePredecessors();
    if (Preds.size() != 2)
      continue;
    std::vector<PhiNode *> Phis = Merge->phis();
    if (Phis.empty())
      continue;

    // Identify the branch block: either both preds are empty forwarders
    // from a common cond-branch block (diamond), or one pred *is* the
    // cond-branch block (triangle).
    auto IsEmptyForwarder = [&](BasicBlock *BB, BasicBlock *&From) {
      if (BB->size() != 1 || !BB->hasSinglePredecessor())
        return false;
      auto *Br = dyn_cast<BranchInst>(BB->terminator());
      if (!Br || Br->isConditional())
        return false;
      From = BB->uniquePredecessors().front();
      return true;
    };

    BasicBlock *A = Preds[0], *B = Preds[1];
    BasicBlock *Head = nullptr;
    BasicBlock *FromA = nullptr, *FromB = nullptr;
    bool AEmpty = IsEmptyForwarder(A, FromA);
    bool BEmpty = IsEmptyForwarder(B, FromB);
    if (AEmpty && BEmpty && FromA == FromB)
      Head = FromA; // Diamond.
    else if (AEmpty && FromA == B)
      Head = B; // Triangle with B as head.
    else if (BEmpty && FromB == A)
      Head = A; // Triangle with A as head.
    else
      continue;

    auto *HeadBr = dyn_cast<BranchInst>(Head->terminator());
    if (!HeadBr || !HeadBr->isConditional())
      continue;
    // The head must feed only this diamond.
    BasicBlock *TrueSide = HeadBr->trueDest();
    BasicBlock *FalseSide = HeadBr->falseDest();
    auto SideReaches = [&](BasicBlock *Side) {
      return Side == Merge || (Side->successors().size() == 1 &&
                               Side->successors().front() == Merge);
    };
    if (!SideReaches(TrueSide) || !SideReaches(FalseSide) ||
        TrueSide == FalseSide)
      continue;

    // Rewrite each phi as a select on the head's condition.
    Value *Cond = HeadBr->condition();
    for (PhiNode *P : Phis) {
      Value *TrueVal = TrueSide == Merge
                           ? P->getIncomingValueForBlock(Head)
                           : P->getIncomingValueForBlock(TrueSide);
      Value *FalseVal = FalseSide == Merge
                            ? P->getIncomingValueForBlock(Head)
                            : P->getIncomingValueForBlock(FalseSide);
      auto *Sel = SelectInst::create(Cond, TrueVal, FalseVal,
                                     P->getName() + ".sel");
      Merge->insertBefore(Merge->firstNonPhi(), Sel);
      replaceAndErase(P, Sel);
    }
    // Retarget the head directly at the merge block and drop the arms.
    HeadBr->eraseFromParent();
    Head->push_back(BranchInst::createUncond(Merge, Ctx));
    Changed = true;
    break; // CFG changed substantially; restart outer loop.
  }
  return Changed;
}

} // namespace

std::unique_ptr<Pass> frost::createSimplifyCFGPass() {
  return std::make_unique<SimplifyCFG>();
}
