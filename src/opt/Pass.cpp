//===- Pass.cpp - Pass manager -----------------------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/Passes.h"
#include "support/ErrorHandling.h"

#include <cstdio>

using namespace frost;

Pass::~Pass() = default;

bool PassManager::run(Function &F) {
  bool Changed = false;
  if (Changes.empty())
    for (const auto &P : Passes)
      Changes.push_back({P->name(), 0});

  for (unsigned I = 0; I != Passes.size(); ++I) {
    bool PassChanged = Passes[I]->runOnFunction(F);
    Changed |= PassChanged;
    if (PassChanged)
      ++Changes[I].second;
    if (Verify && PassChanged) {
      std::vector<std::string> Errors;
      if (!verifyFunction(F, &Errors)) {
        std::fprintf(stderr, "verifier failed after %s on @%s:\n",
                     Passes[I]->name(), F.getName().c_str());
        for (const std::string &E : Errors)
          std::fprintf(stderr, "  %s\n", E.c_str());
        std::fprintf(stderr, "%s", F.str().c_str());
        frost_unreachable("pass produced invalid IR");
      }
    }
  }
  return Changed;
}

bool PassManager::run(Module &M) {
  bool Changed = false;
  for (Function *F : M.functions())
    if (!F->isDeclaration())
      Changed |= run(*F);
  return Changed;
}

void frost::buildStandardPipeline(PassManager &PM, PipelineMode Mode) {
  // Shaped like LLVM's -O2: early cleanup, scalar optimizations, loop
  // optimizations, then late cleanup and lowering preparation.
  PM.add(createInstSimplifyPass());
  PM.add(createSimplifyCFGPass());
  PM.add(createInstCombinePass(Mode));
  PM.add(createSCCPPass());
  PM.add(createSimplifyCFGPass());
  PM.add(createGVNPass());
  PM.add(createLICMPass());
  PM.add(createLoopUnswitchPass(Mode));
  PM.add(createIndVarWidenPass());
  PM.add(createReassociatePass());
  PM.add(createInstCombinePass(Mode));
  PM.add(createGVNPass());
  PM.add(createDCEPass());
  PM.add(createSimplifyCFGPass());
  PM.add(createCodeGenPreparePass(Mode));
  PM.add(createDCEPass());
}
