//===- Pass.cpp - Analysis-cached pass manager -------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "analysis/Analyses.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "opt/Pipeline.h"
#include "support/ErrorHandling.h"

#include <cassert>
#include <chrono>
#include <cstdio>

using namespace frost;

Pass::~Pass() = default;

bool Pass::runOnFunction(Function &F) {
  AnalysisManager AM;
  return !run(F, AM).areAllPreserved();
}

PassManager::PassManager(bool VerifyAfterEachPass)
    : Verify(VerifyAfterEachPass) {
  // Change-count bookkeeping rides on the same hooks external
  // instrumentation uses; Changes is sized/reset by resetChangeCounts().
  PI.onAfterPass([this](const Pass &P, const Function &,
                        const PassInstrumentation::AfterPassInfo &Info) {
    if (!Info.Changed)
      return;
    for (auto &[Name, N] : Changes)
      if (Name == P.name()) {
        ++N;
        break;
      }
  });
}

void PassManager::add(std::unique_ptr<Pass> P) {
  Passes.push_back(std::move(P));
}

void PassManager::resetChangeCounts() {
  Changes.clear();
  for (const auto &P : Passes)
    Changes.push_back({P->name(), 0});
}

std::string PassManager::pipelineText() const {
  std::string Text;
  for (const auto &P : Passes) {
    if (!Text.empty())
      Text += ',';
    Text += P->pipelineText();
  }
  return Text;
}

bool PassManager::runImpl(Function &F, AnalysisManager &AM) {
  bool Changed = false;
  for (const auto &P : Passes) {
    PI.fireBeforePass(*P, F);

    PassInstrumentation::AfterPassInfo Info;
    Info.InstsBefore = F.instructionCount();
    auto T0 = std::chrono::steady_clock::now();
    PreservedAnalyses PA = P->run(F, AM);
    auto T1 = std::chrono::steady_clock::now();
    Info.Seconds = std::chrono::duration<double>(T1 - T0).count();
    Info.InstsAfter = F.instructionCount();
    Info.Changed = !PA.areAllPreserved();
    Changed |= Info.Changed;

    std::vector<const char *> Invalidated;
    if (UseAnalysisCache)
      AM.invalidate(F, PA, &Invalidated);
    else
      AM.clear(F);
    for (const char *Name : Invalidated)
      PI.fireAfterInvalidation(*P, F, Name);

    PI.fireAfterPass(*P, F, Info);

    if (Verify && Info.Changed) {
      // Reuse the pipeline's dominator tree for the SSA dominance check
      // when the pass preserved it; otherwise the verifier builds its own.
      const DominatorTree *DT = AM.cached<DominatorTreeAnalysis>(F);
      std::vector<std::string> Errors;
      if (!verifyFunction(F, &Errors, DT)) {
        std::fprintf(stderr, "verifier failed after %s on @%s:\n", P->name(),
                     F.getName().c_str());
        for (const std::string &E : Errors)
          std::fprintf(stderr, "  %s\n", E.c_str());
        std::fprintf(stderr, "%s", F.str().c_str());
        frost_unreachable("pass produced invalid IR");
      }
    }
  }
  return Changed;
}

bool PassManager::run(Function &F, AnalysisManager &AM) {
  resetChangeCounts();
  return runImpl(F, AM);
}

bool PassManager::run(Function &F) {
  AnalysisManager AM;
  return run(F, AM);
}

bool PassManager::run(Module &M, AnalysisManager &AM) {
  resetChangeCounts();
  bool Changed = false;
  for (Function *F : M.functions())
    if (!F->isDeclaration())
      Changed |= runImpl(*F, AM);
  return Changed;
}

bool PassManager::run(Module &M) {
  AnalysisManager AM;
  return run(M, AM);
}

void frost::buildStandardPipeline(PassManager &PM, PipelineMode Mode) {
  std::string Error;
  bool OK = parsePassPipeline(PM, "default", Mode, &Error);
  (void)OK;
  assert(OK && "the default preset must always parse");
}
