//===- StructuralHash.cpp - Canonical-form function hashing -------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/StructuralHash.h"

#include "ir/Constants.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "support/Casting.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

using namespace frost;

//===----------------------------------------------------------------------===//
// StructuralHash
//===----------------------------------------------------------------------===//

std::string StructuralHash::str() const {
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016llx%016llx", (unsigned long long)Hi,
                (unsigned long long)Lo);
  return Buf;
}

bool StructuralHash::fromString(const std::string &S, StructuralHash &Out) {
  if (S.size() != 32)
    return false;
  uint64_t Parts[2] = {0, 0};
  for (unsigned P = 0; P != 2; ++P) {
    for (unsigned I = 0; I != 16; ++I) {
      char C = S[P * 16 + I];
      uint64_t Digit;
      if (C >= '0' && C <= '9')
        Digit = C - '0';
      else if (C >= 'a' && C <= 'f')
        Digit = 10 + (C - 'a');
      else
        return false;
      Parts[P] = (Parts[P] << 4) | Digit;
    }
  }
  Out.Hi = Parts[0];
  Out.Lo = Parts[1];
  return true;
}

StructuralHash frost::hashCanonicalText(const std::string &Canon) {
  // Two independent mixers over the same bytes: FNV-1a for the low lane, a
  // multiply-xorshift (splitmix-style) accumulator for the high lane. The
  // length is folded into both so prefix texts cannot alias.
  uint64_t Lo = 14695981039346656037ull;
  uint64_t Hi = 0x9e3779b97f4a7c15ull;
  for (unsigned char C : Canon) {
    Lo = (Lo ^ C) * 1099511628211ull;
    Hi = (Hi + C) * 0xff51afd7ed558ccdull;
    Hi ^= Hi >> 33;
  }
  Lo ^= Canon.size();
  Hi = (Hi ^ Canon.size()) * 0xc4ceb9fe1a85ec53ull;
  Hi ^= Hi >> 29;
  return {Hi, Lo};
}

//===----------------------------------------------------------------------===//
// Canonicalizer
//===----------------------------------------------------------------------===//

namespace {

/// Canonical indices for every value a body can reference: blocks in
/// canonical (RPO-first) order, instructions in canonical block order,
/// arguments by position.
struct CanonIds {
  std::map<const BasicBlock *, unsigned> Block;
  std::map<const Instruction *, unsigned> Inst;
};

/// Canonical block order: reverse post-order from the entry with successors
/// visited in terminator operand order (so the order is a function of the
/// CFG, not of the block list), followed by any unreachable blocks in their
/// original list order (their content still participates in the form).
std::vector<const BasicBlock *> canonicalBlockOrder(const Function &F) {
  std::set<const BasicBlock *> Visited;
  std::vector<const BasicBlock *> PostOrder;
  // Iterative DFS; the frame remembers which successor to visit next.
  struct Frame {
    const BasicBlock *BB;
    std::vector<BasicBlock *> Succs;
    size_t Next = 0;
  };
  std::vector<Frame> Stack;
  const BasicBlock *Entry = F.entry();
  Visited.insert(Entry);
  Stack.push_back({Entry, Entry->successors(), 0});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.Next < Top.Succs.size()) {
      BasicBlock *S = Top.Succs[Top.Next++];
      if (Visited.insert(S).second)
        Stack.push_back({S, S->successors(), 0});
      continue;
    }
    PostOrder.push_back(Top.BB);
    Stack.pop_back();
  }
  std::vector<const BasicBlock *> Order(PostOrder.rbegin(), PostOrder.rend());
  for (const BasicBlock *BB : F)
    if (!Visited.count(BB))
      Order.push_back(BB);
  return Order;
}

/// Renders one operand as "type:ref" with canonical references.
std::string operandRef(const Value *V, const CanonIds &Ids) {
  std::string Ty = V->getType()->str();
  switch (V->getKind()) {
  case Value::Kind::Argument:
    return Ty + ":a" + std::to_string(cast<Argument>(V)->index());
  case Value::Kind::Instruction: {
    auto It = Ids.Inst.find(cast<Instruction>(V));
    // Operands always resolve: ids are assigned to every instruction (even
    // in unreachable blocks) before rendering.
    return Ty + ":v" + (It != Ids.Inst.end() ? std::to_string(It->second)
                                             : std::string("?"));
  }
  case Value::Kind::BasicBlock: {
    auto It = Ids.Block.find(cast<BasicBlock>(V));
    return "b" + (It != Ids.Block.end() ? std::to_string(It->second)
                                        : std::string("?"));
  }
  case Value::Kind::ConstantInt:
    return Ty + ":" + cast<ConstantInt>(V)->value().toSignedString();
  case Value::Kind::Poison:
    return Ty + ":poison";
  case Value::Kind::Undef:
    return Ty + ":undef";
  case Value::Kind::GlobalVariable: {
    const auto *G = cast<GlobalVariable>(V);
    return Ty + ":@" + G->getName() + "/" +
           std::to_string(G->sizeBytes());
  }
  case Value::Kind::Function:
    return Ty + ":@" + V->getName();
  case Value::Kind::ConstantVector: {
    const auto *CV = cast<ConstantVector>(V);
    std::string S = Ty + ":<";
    for (unsigned I = 0, E = CV->size(); I != E; ++I) {
      if (I)
        S += ",";
      S += operandRef(CV->element(I), Ids);
    }
    return S + ">";
  }
  case Value::Kind::Placeholder:
    break;
  }
  return Ty + ":?";
}

/// Renders one instruction in canonical form (without its "vN = " prefix).
std::string canonicalInst(const Instruction &I, const CanonIds &Ids) {
  std::string S = I.getOpcodeName();
  ArithFlags Flags = I.flags();
  if (Flags.NSW)
    S += " nsw";
  if (Flags.NUW)
    S += " nuw";
  if (Flags.Exact)
    S += " exact";

  if (const auto *Phi = dyn_cast<PhiNode>(&I)) {
    // Incoming edges sorted by canonical block index so predecessor order
    // (an artifact of block layout) cannot leak into the form.
    std::vector<std::pair<std::string, std::string>> Edges;
    for (unsigned E = 0; E != Phi->getNumIncoming(); ++E)
      Edges.emplace_back(operandRef(Phi->getIncomingBlock(E), Ids),
                         operandRef(Phi->getIncomingValue(E), Ids));
    std::sort(Edges.begin(), Edges.end());
    S += " " + I.getType()->str();
    for (const auto &[B, V] : Edges)
      S += " [" + B + "," + V + "]";
    return S;
  }

  if (const auto *Cmp = dyn_cast<ICmpInst>(&I)) {
    // Canonical orientation: put the lexicographically smaller operand
    // first and swap the predicate to compensate. icmp p a,b and
    // icmp swapped(p) b,a are the same comparison, so this dedups eq/ne
    // operand swaps and the ult/ugt-style mirror pairs in one rule.
    std::string L = operandRef(Cmp->lhs(), Ids);
    std::string R = operandRef(Cmp->rhs(), Ids);
    ICmpPred P = Cmp->pred();
    if (R < L) {
      std::swap(L, R);
      P = swappedPred(P);
    }
    return S + " " + predName(P) + " " + L + ", " + R;
  }

  if (I.isBinaryOp() && I.isCommutative()) {
    std::string L = operandRef(I.getOperand(0), Ids);
    std::string R = operandRef(I.getOperand(1), Ids);
    if (R < L)
      std::swap(L, R);
    return S + " " + L + ", " + R;
  }

  // Opcode-specific payloads that live outside the operand list.
  if (const auto *A = dyn_cast<AllocaInst>(&I))
    S += " " + A->allocatedType()->str();
  if (const auto *G = dyn_cast<GEPInst>(&I))
    if (G->isInBounds())
      S += " inbounds";
  if (const auto *EE = dyn_cast<ExtractElementInst>(&I))
    S += " #" + std::to_string(EE->index());
  if (const auto *IE = dyn_cast<InsertElementInst>(&I))
    S += " #" + std::to_string(IE->index());
  if (const auto *TR = dyn_cast<TrapInst>(&I))
    S += " #" + std::to_string(TR->id());
  if (!I.getType()->isVoid())
    S += " " + I.getType()->str();

  for (unsigned Op = 0, E = I.getNumOperands(); Op != E; ++Op)
    S += (Op ? ", " : " ") + operandRef(I.getOperand(Op), Ids);
  return S;
}

} // namespace

std::string frost::canonicalForm(const Function &F) {
  std::string S = "fn " + F.fnType()->returnType()->str() + " (";
  for (unsigned A = 0, E = F.getNumArgs(); A != E; ++A)
    S += (A ? "," : "") + F.arg(A)->getType()->str();
  S += ")\n";
  if (F.isDeclaration())
    return S + "declare\n";

  std::vector<const BasicBlock *> Order = canonicalBlockOrder(F);
  CanonIds Ids;
  unsigned NextInst = 0;
  for (unsigned B = 0; B != Order.size(); ++B) {
    Ids.Block[Order[B]] = B;
    for (const Instruction *I : *Order[B])
      Ids.Inst[I] = NextInst++;
  }

  // Referenced globals, sorted by name — the same order
  // sem::referencedGlobals uses for the memory layout, so two functions
  // with equal forms see byte-identical memory windows.
  std::map<std::string, const GlobalVariable *> Globals;
  for (const BasicBlock *BB : Order)
    for (const Instruction *I : *BB)
      for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op)
        if (const auto *G = dyn_cast<GlobalVariable>(I->getOperand(Op)))
          Globals.emplace(G->getName(), G);
  for (const auto &[Name, G] : Globals)
    S += "g @" + Name + "/" + std::to_string(G->sizeBytes()) + " " +
         G->valueType()->str() + "\n";

  for (const BasicBlock *BB : Order) {
    S += "b" + std::to_string(Ids.Block.at(BB)) + ":\n";
    for (const Instruction *I : *BB) {
      if (!I->getType()->isVoid())
        S += "v" + std::to_string(Ids.Inst.at(I)) + " = ";
      S += canonicalInst(*I, Ids) + "\n";
    }
  }
  return S;
}

StructuralHash frost::structuralHash(const Function &F) {
  return hashCanonicalText(canonicalForm(F));
}

bool frost::structurallyEqual(const Function &F, const Function &G) {
  return &F == &G || canonicalForm(F) == canonicalForm(G);
}
