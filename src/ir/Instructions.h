//===- Instructions.h - Concrete instruction classes ------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete subclasses of Instruction for every opcode in the paper's
/// Figure 4 syntax, plus alloca/call/switch needed for complete programs.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_IR_INSTRUCTIONS_H
#define FROST_IR_INSTRUCTIONS_H

#include "ir/Instruction.h"

namespace frost {

class ConstantInt;

/// A two-operand arithmetic or bitwise instruction; may carry nsw/nuw/exact
/// flags, which turn wrapping/inexact results into poison (Figure 5).
class BinaryOperator : public Instruction {
  BinaryOperator(Opcode Op, Value *LHS, Value *RHS, ArithFlags F,
                 std::string Name)
      : Instruction(Op, LHS->getType(), std::move(Name)) {
    assert(LHS->getType() == RHS->getType() && "operand type mismatch");
    setFlags(F);
    addOperand(LHS);
    addOperand(RHS);
  }

public:
  static BinaryOperator *create(Opcode Op, Value *LHS, Value *RHS,
                                ArithFlags F = {}, std::string Name = "") {
    return new BinaryOperator(Op, LHS, RHS, F, std::move(Name));
  }

  Value *lhs() const { return getOperand(0); }
  Value *rhs() const { return getOperand(1); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->isBinaryOp();
  }
};

/// trunc / zext / sext / bitcast. Bitcast reinterprets the low-level bit
/// representation via the paper's ty-down / ty-up meta operations.
class CastInst : public Instruction {
  CastInst(Opcode Op, Value *Src, Type *DstTy, std::string Name)
      : Instruction(Op, DstTy, std::move(Name)) {
    addOperand(Src);
  }

public:
  static CastInst *create(Opcode Op, Value *Src, Type *DstTy,
                          std::string Name = "") {
    return new CastInst(Op, Src, DstTy, std::move(Name));
  }

  Value *src() const { return getOperand(0); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->isCast();
  }
};

/// Integer comparison producing i1 (or a vector of i1 lane-wise).
class ICmpInst : public Instruction {
  ICmpPred Pred;

  ICmpInst(ICmpPred Pred, Value *LHS, Value *RHS, Type *ResTy,
           std::string Name)
      : Instruction(Opcode::ICmp, ResTy, std::move(Name)), Pred(Pred) {
    assert(LHS->getType() == RHS->getType() && "operand type mismatch");
    addOperand(LHS);
    addOperand(RHS);
  }

public:
  static ICmpInst *create(IRContext &Ctx, ICmpPred Pred, Value *LHS,
                          Value *RHS, std::string Name = "");
  /// Creation with a pre-computed result type (i1 or vector of i1); used by
  /// clone and the parser.
  static ICmpInst *createWithType(ICmpPred Pred, Value *LHS, Value *RHS,
                                  Type *ResTy, std::string Name = "") {
    return new ICmpInst(Pred, LHS, RHS, ResTy, std::move(Name));
  }

  ICmpPred pred() const { return Pred; }
  void setPred(ICmpPred P) { Pred = P; }
  Value *lhs() const { return getOperand(0); }
  Value *rhs() const { return getOperand(1); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::ICmp;
  }
};

/// Ternary select. Under the proposed semantics a poison condition makes the
/// result poison, and only the *chosen* arm propagates poison — matching phi
/// (Section 3.4 / Figure 5).
class SelectInst : public Instruction {
  SelectInst(Value *Cond, Value *TVal, Value *FVal, std::string Name)
      : Instruction(Opcode::Select, TVal->getType(), std::move(Name)) {
    assert(TVal->getType() == FVal->getType() && "select arm type mismatch");
    addOperand(Cond);
    addOperand(TVal);
    addOperand(FVal);
  }

public:
  static SelectInst *create(Value *Cond, Value *TVal, Value *FVal,
                            std::string Name = "") {
    return new SelectInst(Cond, TVal, FVal, std::move(Name));
  }

  Value *condition() const { return getOperand(0); }
  Value *trueValue() const { return getOperand(1); }
  Value *falseValue() const { return getOperand(2); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Select;
  }
};

/// The paper's new instruction: a nop on non-poison inputs; on poison it
/// non-deterministically picks an arbitrary value of the type, and all uses
/// of this one freeze observe that same value.
class FreezeInst : public Instruction {
  FreezeInst(Value *Src, std::string Name)
      : Instruction(Opcode::Freeze, Src->getType(), std::move(Name)) {
    addOperand(Src);
  }

public:
  static FreezeInst *create(Value *Src, std::string Name = "") {
    return new FreezeInst(Src, std::move(Name));
  }

  Value *src() const { return getOperand(0); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Freeze;
  }
};

/// SSA phi node. Operands are stored as (value, block) pairs.
class PhiNode : public Instruction {
  explicit PhiNode(Type *Ty, std::string Name)
      : Instruction(Opcode::Phi, Ty, std::move(Name)) {}

public:
  static PhiNode *create(Type *Ty, std::string Name = "") {
    return new PhiNode(Ty, std::move(Name));
  }

  unsigned getNumIncoming() const { return getNumOperands() / 2; }
  Value *getIncomingValue(unsigned I) const { return getOperand(2 * I); }
  BasicBlock *getIncomingBlock(unsigned I) const;
  void setIncomingValue(unsigned I, Value *V) { setOperand(2 * I, V); }
  void setIncomingBlock(unsigned I, BasicBlock *BB);

  void addIncoming(Value *V, BasicBlock *BB);
  /// Removes the I'th incoming edge.
  void removeIncoming(unsigned I);
  /// Index of the edge from \p BB, or -1.
  int getBlockIndex(const BasicBlock *BB) const;
  Value *getIncomingValueForBlock(const BasicBlock *BB) const;

  /// If every incoming value is the same (ignoring self-references), returns
  /// it; otherwise null.
  Value *hasConstantValue() const;

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Phi;
  }
};

/// Stack allocation of one value of the given type; yields its address.
class AllocaInst : public Instruction {
  Type *AllocTy;

  AllocaInst(IRContext &Ctx, Type *AllocTy, std::string Name);

public:
  static AllocaInst *create(IRContext &Ctx, Type *AllocTy,
                            std::string Name = "") {
    return new AllocaInst(Ctx, AllocTy, std::move(Name));
  }

  Type *allocatedType() const { return AllocTy; }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Alloca;
  }
};

/// Load of a first-class value through a pointer. Immediate UB on a poison
/// or invalid address (Figure 5).
class LoadInst : public Instruction {
  LoadInst(Value *Ptr, Type *Ty, std::string Name)
      : Instruction(Opcode::Load, Ty, std::move(Name)) {
    addOperand(Ptr);
  }

public:
  static LoadInst *create(Value *Ptr, Type *Ty, std::string Name = "") {
    return new LoadInst(Ptr, Ty, std::move(Name));
  }

  Value *pointer() const { return getOperand(0); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Load;
  }
};

/// Store through a pointer. Immediate UB on a poison or invalid address.
/// Storing a *poison value* is fine: the bits become poison bits.
class StoreInst : public Instruction {
  StoreInst(Value *Val, Value *Ptr, IRContext &Ctx);

public:
  static StoreInst *create(Value *Val, Value *Ptr, IRContext &Ctx) {
    return new StoreInst(Val, Ptr, Ctx);
  }

  Value *value() const { return getOperand(0); }
  Value *pointer() const { return getOperand(1); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Store;
  }
};

/// Pointer arithmetic: base + index * sizeof(pointee), as in the Figure 3
/// example. With the inbounds flag set, wrapping the address space or
/// leaving the underlying object yields poison — the property that justifies
/// induction variable widening (Section 2.4).
class GEPInst : public Instruction {
  bool InBounds;

  GEPInst(Value *Base, Value *Index, bool InBounds, std::string Name)
      : Instruction(Opcode::GEP, Base->getType(), std::move(Name)),
        InBounds(InBounds) {
    addOperand(Base);
    addOperand(Index);
  }

public:
  static GEPInst *create(Value *Base, Value *Index, bool InBounds = false,
                         std::string Name = "") {
    return new GEPInst(Base, Index, InBounds, std::move(Name));
  }

  Value *base() const { return getOperand(0); }
  Value *index() const { return getOperand(1); }
  bool isInBounds() const { return InBounds; }
  void setInBounds(bool B) { InBounds = B; }
  Type *pointeeType() const {
    return cast<PointerType>(getType())->pointee();
  }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::GEP;
  }
};

/// Reads one lane of a vector. The index is a constant, per Figure 4.
class ExtractElementInst : public Instruction {
  ExtractElementInst(Value *Vec, unsigned Index, std::string Name)
      : Instruction(Opcode::ExtractElement,
                    cast<VectorType>(Vec->getType())->element(),
                    std::move(Name)),
        Index(Index) {
    addOperand(Vec);
  }

  unsigned Index;

public:
  static ExtractElementInst *create(Value *Vec, unsigned Index,
                                    std::string Name = "") {
    return new ExtractElementInst(Vec, Index, std::move(Name));
  }

  Value *vector() const { return getOperand(0); }
  unsigned index() const { return Index; }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::ExtractElement;
  }
};

/// Writes one lane of a vector, yielding the updated vector.
class InsertElementInst : public Instruction {
  InsertElementInst(Value *Vec, Value *Elem, unsigned Index, std::string Name)
      : Instruction(Opcode::InsertElement, Vec->getType(), std::move(Name)),
        Index(Index) {
    addOperand(Vec);
    addOperand(Elem);
  }

  unsigned Index;

public:
  static InsertElementInst *create(Value *Vec, Value *Elem, unsigned Index,
                                   std::string Name = "") {
    return new InsertElementInst(Vec, Elem, Index, std::move(Name));
  }

  Value *vector() const { return getOperand(0); }
  Value *element() const { return getOperand(1); }
  unsigned index() const { return Index; }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::InsertElement;
  }
};

/// Direct call to a function in the same module. Passing poison as an
/// argument is *not* UB by itself, but the callee observes poison — the GVN
/// discussion of Section 3.3 hinges on this.
class CallInst : public Instruction {
  CallInst(Function *Callee, const std::vector<Value *> &Args,
           std::string Name);

public:
  static CallInst *create(Function *Callee, const std::vector<Value *> &Args,
                          std::string Name = "") {
    return new CallInst(Callee, Args, std::move(Name));
  }

  Function *callee() const;
  unsigned getNumArgs() const { return getNumOperands() - 1; }
  Value *getArg(unsigned I) const { return getOperand(1 + I); }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Call;
  }
};

/// Conditional or unconditional branch. Branching on poison is immediate UB
/// under the proposed semantics; under the legacy semantics its meaning is
/// configurable (the Section 3.3 conflict).
class BranchInst : public Instruction {
  BranchInst(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB,
             IRContext &Ctx);
  BranchInst(BasicBlock *Dest, IRContext &Ctx);

public:
  static BranchInst *createCond(Value *Cond, BasicBlock *TrueBB,
                                BasicBlock *FalseBB, IRContext &Ctx) {
    return new BranchInst(Cond, TrueBB, FalseBB, Ctx);
  }
  static BranchInst *createUncond(BasicBlock *Dest, IRContext &Ctx) {
    return new BranchInst(Dest, Ctx);
  }

  bool isConditional() const { return getNumOperands() == 3; }
  Value *condition() const {
    assert(isConditional() && "no condition on an unconditional branch");
    return getOperand(0);
  }
  void setCondition(Value *C) {
    assert(isConditional() && "no condition on an unconditional branch");
    setOperand(0, C);
  }
  BasicBlock *trueDest() const;
  BasicBlock *falseDest() const;
  BasicBlock *dest() const;
  unsigned getNumDests() const { return isConditional() ? 2 : 1; }
  BasicBlock *getDest(unsigned I) const;
  void setDest(unsigned I, BasicBlock *BB);

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Br;
  }
};

/// Multiway branch on an integer. Switching on poison follows the same rule
/// as branch.
class SwitchInst : public Instruction {
  SwitchInst(Value *Cond, BasicBlock *Default, IRContext &Ctx);

public:
  static SwitchInst *create(Value *Cond, BasicBlock *Default, IRContext &Ctx) {
    return new SwitchInst(Cond, Default, Ctx);
  }

  Value *condition() const { return getOperand(0); }
  BasicBlock *defaultDest() const;
  unsigned getNumCases() const { return (getNumOperands() - 2) / 2; }
  ConstantInt *caseValue(unsigned I) const;
  BasicBlock *caseDest(unsigned I) const;
  void addCase(ConstantInt *Val, BasicBlock *Dest);

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Switch;
  }
};

/// Function return, with an optional value. Returning poison is allowed;
/// the caller observes poison.
class ReturnInst : public Instruction {
  ReturnInst(Value *RetVal, IRContext &Ctx);

public:
  static ReturnInst *create(Value *RetVal, IRContext &Ctx) {
    return new ReturnInst(RetVal, Ctx);
  }
  static ReturnInst *createVoid(IRContext &Ctx) {
    return new ReturnInst(nullptr, Ctx);
  }

  bool hasValue() const { return getNumOperands() == 1; }
  Value *value() const {
    assert(hasValue() && "void return has no value");
    return getOperand(0);
  }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Ret;
  }
};

/// Executing unreachable is immediate UB.
class UnreachableInst : public Instruction {
  explicit UnreachableInst(IRContext &Ctx);

public:
  static UnreachableInst *create(IRContext &Ctx) {
    return new UnreachableInst(Ctx);
  }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Unreachable;
  }
};

/// Terminates execution with a sanitizer trap report. Unlike unreachable,
/// executing a trap is *defined* behaviour: the program stops and the trap
/// id (the check kind that fired, see docs/sanitizer.md) becomes the
/// observable outcome. Emitted by the sanitize pass (opt/Sanitize.*).
class TrapInst : public Instruction {
  unsigned Id;

  TrapInst(IRContext &Ctx, unsigned Id);

public:
  static TrapInst *create(IRContext &Ctx, unsigned Id) {
    return new TrapInst(Ctx, Id);
  }

  /// The check kind that fired (1 = tainted operand, 2 = nsw/nuw/exact,
  /// 3 = overshift, 4 = division, 5 = out-of-bounds, 6 = uninitialized
  /// load, 7 = reached unreachable).
  unsigned id() const { return Id; }

  static bool classof(const Value *V) {
    const auto *I = dyn_cast<Instruction>(V);
    return I && I->getOpcode() == Opcode::Trap;
  }
};

} // namespace frost

#endif // FROST_IR_INSTRUCTIONS_H
