//===- Instruction.cpp - Instruction base class ----------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

#include "ir/BasicBlock.h"
#include "ir/Constants.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "support/ErrorHandling.h"

#include <algorithm>

using namespace frost;

const char *frost::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::UDiv:
    return "udiv";
  case Opcode::SDiv:
    return "sdiv";
  case Opcode::URem:
    return "urem";
  case Opcode::SRem:
    return "srem";
  case Opcode::Shl:
    return "shl";
  case Opcode::LShr:
    return "lshr";
  case Opcode::AShr:
    return "ashr";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Trunc:
    return "trunc";
  case Opcode::ZExt:
    return "zext";
  case Opcode::SExt:
    return "sext";
  case Opcode::BitCast:
    return "bitcast";
  case Opcode::ICmp:
    return "icmp";
  case Opcode::Select:
    return "select";
  case Opcode::Freeze:
    return "freeze";
  case Opcode::Phi:
    return "phi";
  case Opcode::Alloca:
    return "alloca";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::GEP:
    return "gep";
  case Opcode::ExtractElement:
    return "extractelement";
  case Opcode::InsertElement:
    return "insertelement";
  case Opcode::Call:
    return "call";
  case Opcode::Br:
    return "br";
  case Opcode::Switch:
    return "switch";
  case Opcode::Ret:
    return "ret";
  case Opcode::Unreachable:
    return "unreachable";
  case Opcode::Trap:
    return "trap";
  }
  frost_unreachable("unknown opcode");
}

const char *frost::predName(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ:
    return "eq";
  case ICmpPred::NE:
    return "ne";
  case ICmpPred::UGT:
    return "ugt";
  case ICmpPred::UGE:
    return "uge";
  case ICmpPred::ULT:
    return "ult";
  case ICmpPred::ULE:
    return "ule";
  case ICmpPred::SGT:
    return "sgt";
  case ICmpPred::SGE:
    return "sge";
  case ICmpPred::SLT:
    return "slt";
  case ICmpPred::SLE:
    return "sle";
  }
  frost_unreachable("unknown icmp predicate");
}

ICmpPred frost::swappedPred(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ:
  case ICmpPred::NE:
    return P;
  case ICmpPred::UGT:
    return ICmpPred::ULT;
  case ICmpPred::UGE:
    return ICmpPred::ULE;
  case ICmpPred::ULT:
    return ICmpPred::UGT;
  case ICmpPred::ULE:
    return ICmpPred::UGE;
  case ICmpPred::SGT:
    return ICmpPred::SLT;
  case ICmpPred::SGE:
    return ICmpPred::SLE;
  case ICmpPred::SLT:
    return ICmpPred::SGT;
  case ICmpPred::SLE:
    return ICmpPred::SGE;
  }
  frost_unreachable("unknown icmp predicate");
}

ICmpPred frost::invertedPred(ICmpPred P) {
  switch (P) {
  case ICmpPred::EQ:
    return ICmpPred::NE;
  case ICmpPred::NE:
    return ICmpPred::EQ;
  case ICmpPred::UGT:
    return ICmpPred::ULE;
  case ICmpPred::UGE:
    return ICmpPred::ULT;
  case ICmpPred::ULT:
    return ICmpPred::UGE;
  case ICmpPred::ULE:
    return ICmpPred::UGT;
  case ICmpPred::SGT:
    return ICmpPred::SLE;
  case ICmpPred::SGE:
    return ICmpPred::SLT;
  case ICmpPred::SLT:
    return ICmpPred::SGE;
  case ICmpPred::SLE:
    return ICmpPred::SGT;
  }
  frost_unreachable("unknown icmp predicate");
}

Function *Instruction::getFunction() const {
  return Parent ? Parent->getParent() : nullptr;
}

void Instruction::removeFromParent() {
  assert(Parent && "instruction has no parent");
  Parent->remove(this);
}

void Instruction::eraseFromParent() {
  assert(Parent && "instruction has no parent");
  Parent->erase(this);
}

void Instruction::moveBefore(Instruction *Pos) {
  assert(Pos->getParent() && "destination is not in a block");
  if (Parent)
    Parent->remove(this);
  Pos->getParent()->insertBefore(Pos, this);
}

void Instruction::moveBeforeTerminator(BasicBlock *BB) {
  Instruction *Term = BB->terminator();
  assert(Term && "block has no terminator");
  moveBefore(Term);
}

Instruction *Instruction::nextInst() const {
  assert(Parent && "instruction has no parent");
  auto It = std::find(Parent->begin(), Parent->end(), this);
  assert(It != Parent->end() && "instruction not in its parent");
  ++It;
  return It == Parent->end() ? nullptr : *It;
}

Instruction *Instruction::prevInst() const {
  assert(Parent && "instruction has no parent");
  auto It = std::find(Parent->begin(), Parent->end(), this);
  assert(It != Parent->end() && "instruction not in its parent");
  return It == Parent->begin() ? nullptr : *std::prev(It);
}

Instruction *Instruction::clone() const {
  Instruction *New = nullptr;
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::UDiv:
  case Opcode::SDiv:
  case Opcode::URem:
  case Opcode::SRem:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
    New = BinaryOperator::create(Op, getOperand(0), getOperand(1), Flags);
    break;
  case Opcode::Trunc:
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::BitCast:
    New = CastInst::create(Op, getOperand(0), getType());
    break;
  case Opcode::ICmp: {
    const auto *IC = cast<ICmpInst>(this);
    New = ICmpInst::createWithType(IC->pred(), getOperand(0), getOperand(1),
                                   getType());
    break;
  }
  case Opcode::Select:
    New = SelectInst::create(getOperand(0), getOperand(1), getOperand(2));
    break;
  case Opcode::Freeze:
    New = FreezeInst::create(getOperand(0));
    break;
  case Opcode::Phi: {
    const auto *P = cast<PhiNode>(this);
    PhiNode *NP = PhiNode::create(getType());
    for (unsigned I = 0, E = P->getNumIncoming(); I != E; ++I)
      NP->addIncoming(P->getIncomingValue(I), P->getIncomingBlock(I));
    New = NP;
    break;
  }
  case Opcode::Alloca:
    New = AllocaInst::create(getFunction()->context(),
                             cast<AllocaInst>(this)->allocatedType());
    break;
  case Opcode::Load:
    New = LoadInst::create(getOperand(0), getType());
    break;
  case Opcode::Store:
    New = StoreInst::create(getOperand(0), getOperand(1),
                            getFunction()->context());
    break;
  case Opcode::GEP:
    New = GEPInst::create(getOperand(0), getOperand(1),
                          cast<GEPInst>(this)->isInBounds());
    break;
  case Opcode::ExtractElement:
    New = ExtractElementInst::create(getOperand(0),
                                     cast<ExtractElementInst>(this)->index());
    break;
  case Opcode::InsertElement:
    New = InsertElementInst::create(getOperand(0), getOperand(1),
                                    cast<InsertElementInst>(this)->index());
    break;
  case Opcode::Call: {
    const auto *C = cast<CallInst>(this);
    std::vector<Value *> Args;
    for (unsigned I = 0, E = C->getNumArgs(); I != E; ++I)
      Args.push_back(C->getArg(I));
    New = CallInst::create(C->callee(), Args);
    break;
  }
  case Opcode::Br: {
    const auto *B = cast<BranchInst>(this);
    IRContext &Ctx = getFunction()->context();
    if (B->isConditional())
      New = BranchInst::createCond(B->condition(), B->trueDest(),
                                   B->falseDest(), Ctx);
    else
      New = BranchInst::createUncond(B->dest(), Ctx);
    break;
  }
  case Opcode::Switch: {
    const auto *S = cast<SwitchInst>(this);
    IRContext &Ctx = getFunction()->context();
    SwitchInst *NS = SwitchInst::create(S->condition(), S->defaultDest(), Ctx);
    for (unsigned I = 0, E = S->getNumCases(); I != E; ++I)
      NS->addCase(S->caseValue(I), S->caseDest(I));
    New = NS;
    break;
  }
  case Opcode::Ret: {
    const auto *R = cast<ReturnInst>(this);
    IRContext &Ctx = getFunction()->context();
    New = R->hasValue() ? ReturnInst::create(R->value(), Ctx)
                        : ReturnInst::createVoid(Ctx);
    break;
  }
  case Opcode::Unreachable:
    New = UnreachableInst::create(getFunction()->context());
    break;
  case Opcode::Trap:
    New = TrapInst::create(getFunction()->context(),
                           cast<TrapInst>(this)->id());
    break;
  }
  assert(New && "clone not implemented for opcode");
  New->setFlags(Flags);
  return New;
}
