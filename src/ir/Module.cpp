//===- Module.cpp - Top-level IR container ---------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "ir/Context.h"
#include "ir/Printer.h"

using namespace frost;

Module::~Module() {
  // Break every cross-function reference (calls) before destroying any
  // function, so Value's "no remaining uses" invariant holds at deletion.
  for (auto &F : Functions)
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        I->dropAllReferences();
}

Function *Module::createFunction(std::string FnName, FunctionType *FT) {
  assert(!getFunction(FnName) && "function name already taken");
  Function *F = Function::createDetached(Ctx, std::move(FnName), FT);
  F->Parent = this;
  Functions.emplace_back(F);
  return F;
}

Function *Module::getFunction(const std::string &FnName) const {
  for (const auto &F : Functions)
    if (F->getName() == FnName)
      return F.get();
  return nullptr;
}

void Module::eraseFunction(Function *F) {
  for (BasicBlock *BB : *F)
    for (Instruction *I : *BB)
      I->dropAllReferences();
  assert(!F->hasUses() && "erasing a function that is still called");
  for (auto It = Functions.begin(); It != Functions.end(); ++It)
    if (It->get() == F) {
      Functions.erase(It);
      return;
    }
  assert(false && "function not owned by this module");
}

std::vector<Function *> Module::functions() const {
  std::vector<Function *> Result;
  for (const auto &F : Functions)
    Result.push_back(F.get());
  return Result;
}

unsigned Module::instructionCount() const {
  unsigned N = 0;
  for (const auto &F : Functions)
    N += F->instructionCount();
  return N;
}

std::string Module::str() const {
  return printModule(*const_cast<Module *>(this));
}
