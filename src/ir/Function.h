//===- Function.h - Functions and arguments ---------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function owns a list of basic blocks (the first being the entry) and its
/// formal arguments.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_IR_FUNCTION_H
#define FROST_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <memory>

namespace frost {

class Module;

/// A formal parameter of a function.
class Argument : public Value {
  friend class Function;
  Function *Parent;
  unsigned Index;

  Argument(Type *Ty, std::string Name, Function *Parent, unsigned Index)
      : Value(Kind::Argument, Ty, std::move(Name)), Parent(Parent),
        Index(Index) {}

public:
  Function *getParent() const { return Parent; }
  unsigned index() const { return Index; }

  static bool classof(const Value *V) {
    return V->getKind() == Kind::Argument;
  }
};

/// A function definition (or declaration, if it has no blocks).
class Function : public Value {
  Function(IRContext &Ctx, std::string Name, FunctionType *FT);

public:
  ~Function() override;

  /// Creates an unattached function; normally reached via
  /// Module::createFunction.
  static Function *createDetached(IRContext &Ctx, std::string Name,
                                  FunctionType *FT) {
    return new Function(Ctx, std::move(Name), FT);
  }

  IRContext &context() const { return Ctx; }
  Module *getParent() const { return Parent; }
  FunctionType *fnType() const { return FT; }
  Type *returnType() const { return FT->returnType(); }

  unsigned getNumArgs() const { return Args.size(); }
  Argument *arg(unsigned I) const {
    assert(I < Args.size() && "argument index out of range");
    return Args[I].get();
  }

  bool isDeclaration() const { return Blocks.empty(); }

  using iterator = std::list<BasicBlock *>::iterator;
  using const_iterator = std::list<BasicBlock *>::const_iterator;
  iterator begin() { return Blocks.begin(); }
  iterator end() { return Blocks.end(); }
  const_iterator begin() const { return Blocks.begin(); }
  const_iterator end() const { return Blocks.end(); }
  unsigned size() const { return Blocks.size(); }

  BasicBlock *entry() const {
    assert(!Blocks.empty() && "declaration has no entry block");
    return Blocks.front();
  }

  /// Creates and appends a new block.
  BasicBlock *addBlock(std::string Name);
  /// Appends an existing detached block, taking ownership.
  void appendBlock(BasicBlock *BB);
  /// Moves \p BB to immediately after \p After in the block order.
  void moveBlockAfter(BasicBlock *BB, BasicBlock *After);
  /// Unlinks and deletes \p BB; its instructions must be unused elsewhere.
  void eraseBlock(BasicBlock *BB);

  /// Total instruction count across all blocks.
  unsigned instructionCount() const;

  /// Gives every unnamed value (argument, block, instruction) a unique name
  /// so the function can be printed and re-parsed.
  void nameValues();

  /// Renders the whole function as textual IR.
  std::string str() const;

  static bool classof(const Value *V) {
    return V->getKind() == Kind::Function;
  }

private:
  friend class Module;
  IRContext &Ctx;
  Module *Parent = nullptr;
  FunctionType *FT;
  std::vector<std::unique_ptr<Argument>> Args;
  std::list<BasicBlock *> Blocks;
};

} // namespace frost

#endif // FROST_IR_FUNCTION_H
