//===- Context.cpp - IR context: types and uniqued constants --------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Context.h"

using namespace frost;

IRContext::~IRContext() = default;

ConstantInt *IRContext::getInt(unsigned Width, uint64_t Value) {
  return getInt(BitVec(Width, Value));
}

ConstantInt *IRContext::getInt(const BitVec &Value) {
  auto Key = std::make_pair(Value.width(), Value.zext());
  auto &Slot = IntPool[Key];
  if (!Slot)
    Slot.reset(new ConstantInt(Types.intTy(Value.width()), Value));
  return Slot.get();
}

PoisonValue *IRContext::getPoison(Type *Ty) {
  auto &Slot = PoisonPool[Ty];
  if (!Slot)
    Slot.reset(new PoisonValue(Ty));
  return Slot.get();
}

UndefValue *IRContext::getUndef(Type *Ty) {
  auto &Slot = UndefPool[Ty];
  if (!Slot)
    Slot.reset(new UndefValue(Ty));
  return Slot.get();
}

ConstantVector *IRContext::getVector(std::vector<Constant *> Elems) {
  assert(!Elems.empty() && "constant vector must have elements");
  Type *ElemTy = Elems.front()->getType();
  for (Constant *C : Elems)
    assert(C->getType() == ElemTy && "mixed element types in constant vector");
  Type *Ty = Types.vecTy(ElemTy, Elems.size());
  for (auto &CV : VecPool) {
    if (CV->getType() != Ty)
      continue;
    bool Same = true;
    for (unsigned I = 0; I != Elems.size() && Same; ++I)
      Same = CV->element(I) == Elems[I];
    if (Same)
      return CV.get();
  }
  VecPool.emplace_back(new ConstantVector(Ty, std::move(Elems)));
  return VecPool.back().get();
}

GlobalVariable *IRContext::findGlobal(const std::string &Name) const {
  auto It = Globals.find(Name);
  return It == Globals.end() ? nullptr : It->second.get();
}

GlobalVariable *IRContext::getGlobal(std::string Name, Type *ValueTy,
                                     unsigned SizeBytes) {
  auto &Slot = Globals[Name];
  if (!Slot)
    Slot.reset(new GlobalVariable(Types.ptrTy(ValueTy), Name, SizeBytes));
  return Slot.get();
}
