//===- BasicBlock.cpp - Basic blocks ---------------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"

#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instructions.h"

#include <algorithm>

using namespace frost;

BasicBlock::BasicBlock(IRContext &Ctx, std::string Name)
    : Value(Kind::BasicBlock, Ctx.types().labelTy(), std::move(Name)),
      Ctx(Ctx) {}

BasicBlock *BasicBlock::create(IRContext &Ctx, std::string Name,
                               Function *Parent) {
  auto *BB = new BasicBlock(Ctx, std::move(Name));
  if (Parent)
    Parent->appendBlock(BB);
  return BB;
}

BasicBlock::~BasicBlock() {
  // Instructions must already have been dropped (Function/Module handles
  // ordering); free any stragglers defensively after clearing references.
  for (Instruction *I : Insts)
    I->dropAllReferences();
  for (Instruction *I : Insts)
    delete I;
}

Instruction *BasicBlock::terminator() const {
  if (Insts.empty() || !Insts.back()->isTerminator())
    return nullptr;
  return Insts.back();
}

Instruction *BasicBlock::firstNonPhi() const {
  for (Instruction *I : Insts)
    if (I->getOpcode() != Opcode::Phi)
      return I;
  return nullptr;
}

std::vector<PhiNode *> BasicBlock::phis() const {
  std::vector<PhiNode *> Result;
  for (Instruction *I : Insts) {
    auto *P = dyn_cast<PhiNode>(I);
    if (!P)
      break;
    Result.push_back(P);
  }
  return Result;
}

void BasicBlock::push_back(Instruction *I) {
  assert(!I->getParent() && "instruction already has a parent");
  I->Parent = this;
  Insts.push_back(I);
}

void BasicBlock::insertBefore(Instruction *Pos, Instruction *I) {
  assert(Pos->getParent() == this && "position not in this block");
  assert(!I->getParent() && "instruction already has a parent");
  auto It = std::find(Insts.begin(), Insts.end(), Pos);
  assert(It != Insts.end() && "position not found");
  I->Parent = this;
  Insts.insert(It, I);
}

void BasicBlock::remove(Instruction *I) {
  assert(I->getParent() == this && "instruction not in this block");
  auto It = std::find(Insts.begin(), Insts.end(), I);
  assert(It != Insts.end() && "instruction not found");
  Insts.erase(It);
  I->Parent = nullptr;
}

void BasicBlock::erase(Instruction *I) {
  assert(!I->hasUses() && "erasing an instruction that still has uses");
  remove(I);
  I->dropAllReferences();
  delete I;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Result;
  Instruction *T = terminator();
  if (!T)
    return Result;
  if (auto *Br = dyn_cast<BranchInst>(T)) {
    for (unsigned I = 0, E = Br->getNumDests(); I != E; ++I)
      Result.push_back(Br->getDest(I));
  } else if (auto *Sw = dyn_cast<SwitchInst>(T)) {
    Result.push_back(Sw->defaultDest());
    for (unsigned I = 0, E = Sw->getNumCases(); I != E; ++I)
      Result.push_back(Sw->caseDest(I));
  }
  return Result;
}

std::vector<BasicBlock *> BasicBlock::predecessors() const {
  std::vector<BasicBlock *> Result;
  for (const Use *U : uses()) {
    auto *I = dyn_cast<Instruction>(U->getUser());
    if (!I || !I->isTerminator())
      continue;
    Result.push_back(I->getParent());
  }
  return Result;
}

std::vector<BasicBlock *> BasicBlock::uniquePredecessors() const {
  std::vector<BasicBlock *> Preds = predecessors();
  std::vector<BasicBlock *> Result;
  for (BasicBlock *BB : Preds)
    if (std::find(Result.begin(), Result.end(), BB) == Result.end())
      Result.push_back(BB);
  return Result;
}

bool BasicBlock::hasSinglePredecessor() const {
  return uniquePredecessors().size() == 1;
}

void BasicBlock::removePredecessor(BasicBlock *Pred) {
  for (PhiNode *P : phis()) {
    int I = P->getBlockIndex(Pred);
    if (I >= 0)
      P->removeIncoming(static_cast<unsigned>(I));
  }
}

BasicBlock *BasicBlock::splitBefore(Instruction *Pos,
                                    const std::string &NewName) {
  assert(Pos->getParent() == this && "split position not in this block");
  BasicBlock *New = BasicBlock::create(Ctx, NewName, Parent);
  if (Parent)
    Parent->moveBlockAfter(New, this);
  // Move [Pos, end) into the new block.
  std::vector<Instruction *> ToMove;
  auto It = std::find(Insts.begin(), Insts.end(), Pos);
  for (auto I = It; I != Insts.end(); ++I)
    ToMove.push_back(*I);
  for (Instruction *I : ToMove) {
    remove(I);
    New->push_back(I);
  }
  push_back(BranchInst::createUncond(New, Ctx));
  // Phi nodes in successors of the moved terminator must now name the new
  // block as their predecessor.
  for (BasicBlock *Succ : New->successors())
    for (PhiNode *P : Succ->phis())
      for (unsigned I = 0, E = P->getNumIncoming(); I != E; ++I)
        if (P->getIncomingBlock(I) == this)
          P->setIncomingBlock(I, New);
  return New;
}
