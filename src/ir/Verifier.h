//===- Verifier.h - IR well-formedness checks -------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and SSA well-formedness verification, run after every pass in
/// checked pipelines. Note this checks *form*, not semantics: refinement
/// checking is the job of frost/tv.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_IR_VERIFIER_H
#define FROST_IR_VERIFIER_H

#include <string>
#include <vector>

namespace frost {

class DominatorTree;
class Function;
class Module;

/// Appends a diagnostic per violation to \p Errors; returns true if the
/// function is well formed. If \p DT is non-null and the structural checks
/// pass, the SSA dominance check reuses it instead of building a fresh
/// dominator tree — the PassManager hands in its cached analysis here, so
/// per-pass verification rides the analysis cache.
bool verifyFunction(Function &F, std::vector<std::string> *Errors = nullptr,
                    const DominatorTree *DT = nullptr);

/// Verifies every function in \p M.
bool verifyModule(Module &M, std::vector<std::string> *Errors = nullptr);

} // namespace frost

#endif // FROST_IR_VERIFIER_H
