//===- IRBuilder.h - Convenience IR construction ----------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder inserts newly created instructions at the end of a chosen basic
/// block, mirroring llvm::IRBuilder. All example programs and benchmark
/// kernels are constructed through this interface.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_IR_IRBUILDER_H
#define FROST_IR_IRBUILDER_H

#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instructions.h"

namespace frost {

/// Builds instructions into a basic block.
class IRBuilder {
  IRContext &Ctx;
  BasicBlock *BB = nullptr;

  template <typename T> T *insert(T *I) {
    assert(BB && "no insertion point set");
    BB->push_back(I);
    return I;
  }

public:
  explicit IRBuilder(IRContext &Ctx) : Ctx(Ctx) {}
  IRBuilder(IRContext &Ctx, BasicBlock *BB) : Ctx(Ctx), BB(BB) {}

  IRContext &context() { return Ctx; }
  BasicBlock *insertBlock() const { return BB; }
  void setInsertPoint(BasicBlock *B) { BB = B; }

  // Constants.
  ConstantInt *getInt(unsigned Width, uint64_t V) { return Ctx.getInt(Width, V); }
  ConstantInt *getBool(bool B) { return Ctx.getBool(B); }
  PoisonValue *getPoison(Type *Ty) { return Ctx.getPoison(Ty); }
  UndefValue *getUndef(Type *Ty) { return Ctx.getUndef(Ty); }

  // Binary operations.
  Value *binOp(Opcode Op, Value *L, Value *R, ArithFlags F = {},
               std::string Name = "") {
    return insert(BinaryOperator::create(Op, L, R, F, std::move(Name)));
  }
  Value *add(Value *L, Value *R, ArithFlags F = {}, std::string Name = "") {
    return binOp(Opcode::Add, L, R, F, std::move(Name));
  }
  Value *addNSW(Value *L, Value *R, std::string Name = "") {
    return binOp(Opcode::Add, L, R, {/*NSW=*/true, false, false},
                 std::move(Name));
  }
  Value *sub(Value *L, Value *R, ArithFlags F = {}, std::string Name = "") {
    return binOp(Opcode::Sub, L, R, F, std::move(Name));
  }
  Value *mul(Value *L, Value *R, ArithFlags F = {}, std::string Name = "") {
    return binOp(Opcode::Mul, L, R, F, std::move(Name));
  }
  Value *udiv(Value *L, Value *R, std::string Name = "") {
    return binOp(Opcode::UDiv, L, R, {}, std::move(Name));
  }
  Value *sdiv(Value *L, Value *R, std::string Name = "") {
    return binOp(Opcode::SDiv, L, R, {}, std::move(Name));
  }
  Value *urem(Value *L, Value *R, std::string Name = "") {
    return binOp(Opcode::URem, L, R, {}, std::move(Name));
  }
  Value *shl(Value *L, Value *R, ArithFlags F = {}, std::string Name = "") {
    return binOp(Opcode::Shl, L, R, F, std::move(Name));
  }
  Value *lshr(Value *L, Value *R, std::string Name = "") {
    return binOp(Opcode::LShr, L, R, {}, std::move(Name));
  }
  Value *ashr(Value *L, Value *R, std::string Name = "") {
    return binOp(Opcode::AShr, L, R, {}, std::move(Name));
  }
  Value *and_(Value *L, Value *R, std::string Name = "") {
    return binOp(Opcode::And, L, R, {}, std::move(Name));
  }
  Value *or_(Value *L, Value *R, std::string Name = "") {
    return binOp(Opcode::Or, L, R, {}, std::move(Name));
  }
  Value *xor_(Value *L, Value *R, std::string Name = "") {
    return binOp(Opcode::Xor, L, R, {}, std::move(Name));
  }

  // Comparisons and selection.
  Value *icmp(ICmpPred P, Value *L, Value *R, std::string Name = "") {
    return insert(ICmpInst::create(Ctx, P, L, R, std::move(Name)));
  }
  Value *select(Value *C, Value *T, Value *F, std::string Name = "") {
    return insert(SelectInst::create(C, T, F, std::move(Name)));
  }
  Value *freeze(Value *V, std::string Name = "") {
    return insert(FreezeInst::create(V, std::move(Name)));
  }

  // Casts.
  Value *zext(Value *V, Type *Ty, std::string Name = "") {
    return insert(CastInst::create(Opcode::ZExt, V, Ty, std::move(Name)));
  }
  Value *sext(Value *V, Type *Ty, std::string Name = "") {
    return insert(CastInst::create(Opcode::SExt, V, Ty, std::move(Name)));
  }
  Value *trunc(Value *V, Type *Ty, std::string Name = "") {
    return insert(CastInst::create(Opcode::Trunc, V, Ty, std::move(Name)));
  }
  Value *bitcast(Value *V, Type *Ty, std::string Name = "") {
    return insert(CastInst::create(Opcode::BitCast, V, Ty, std::move(Name)));
  }

  // Phi: inserted at the block head, before any non-phi instruction.
  PhiNode *phi(Type *Ty, std::string Name = "") {
    assert(BB && "no insertion point set");
    PhiNode *P = PhiNode::create(Ty, std::move(Name));
    if (Instruction *FirstNonPhi = BB->firstNonPhi())
      BB->insertBefore(FirstNonPhi, P);
    else
      BB->push_back(P);
    return P;
  }

  // Memory.
  Value *alloca_(Type *Ty, std::string Name = "") {
    return insert(AllocaInst::create(Ctx, Ty, std::move(Name)));
  }
  Value *load(Value *Ptr, std::string Name = "") {
    Type *Ty = cast<PointerType>(Ptr->getType())->pointee();
    return insert(LoadInst::create(Ptr, Ty, std::move(Name)));
  }
  Value *store(Value *V, Value *Ptr) {
    return insert(StoreInst::create(V, Ptr, Ctx));
  }
  Value *gep(Value *Base, Value *Index, bool InBounds = false,
             std::string Name = "") {
    return insert(GEPInst::create(Base, Index, InBounds, std::move(Name)));
  }

  // Vectors.
  Value *extractElement(Value *Vec, unsigned Index, std::string Name = "") {
    return insert(ExtractElementInst::create(Vec, Index, std::move(Name)));
  }
  Value *insertElement(Value *Vec, Value *Elem, unsigned Index,
                       std::string Name = "") {
    return insert(
        InsertElementInst::create(Vec, Elem, Index, std::move(Name)));
  }

  // Calls.
  Value *call(Function *Callee, const std::vector<Value *> &Args,
              std::string Name = "") {
    return insert(CallInst::create(Callee, Args, std::move(Name)));
  }

  // Terminators.
  BranchInst *br(BasicBlock *Dest) {
    return insert(BranchInst::createUncond(Dest, Ctx));
  }
  BranchInst *condBr(Value *Cond, BasicBlock *T, BasicBlock *F) {
    return insert(BranchInst::createCond(Cond, T, F, Ctx));
  }
  SwitchInst *switch_(Value *Cond, BasicBlock *Default) {
    return insert(SwitchInst::create(Cond, Default, Ctx));
  }
  ReturnInst *ret(Value *V) { return insert(ReturnInst::create(V, Ctx)); }
  ReturnInst *retVoid() { return insert(ReturnInst::createVoid(Ctx)); }
  UnreachableInst *unreachable() {
    return insert(UnreachableInst::create(Ctx));
  }
  TrapInst *trap(unsigned Id) { return insert(TrapInst::create(Ctx, Id)); }
};

} // namespace frost

#endif // FROST_IR_IRBUILDER_H
