//===- Constants.h - Constant values ----------------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant operands of the frost IR: integer constants, the two deferred-UB
/// constants (poison, and the legacy undef the paper proposes removing),
/// constant vectors, and named global variables. All constants are uniqued
/// by the owning IRContext.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_IR_CONSTANTS_H
#define FROST_IR_CONSTANTS_H

#include "ir/Value.h"
#include "support/BitVec.h"

namespace frost {

class IRContext;

/// Base class of all constants.
class Constant : public Value {
protected:
  Constant(Kind K, Type *Ty, std::string Name = "")
      : Value(K, Ty, std::move(Name)) {}

public:
  static bool classof(const Value *V) {
    switch (V->getKind()) {
    case Kind::ConstantInt:
    case Kind::Poison:
    case Kind::Undef:
    case Kind::ConstantVector:
    case Kind::GlobalVariable:
      return true;
    default:
      return false;
    }
  }
};

/// An integer (or i1 boolean) constant.
class ConstantInt : public Constant {
  friend class IRContext;
  BitVec Val;

  ConstantInt(Type *Ty, BitVec Val)
      : Constant(Kind::ConstantInt, Ty), Val(Val) {}

public:
  const BitVec &value() const { return Val; }
  bool isZero() const { return Val.isZero(); }
  bool isOne() const { return Val.isOne(); }
  bool isAllOnes() const { return Val.isAllOnes(); }

  static bool classof(const Value *V) {
    return V->getKind() == Kind::ConstantInt;
  }
};

/// The poison value: the paper's strong deferred UB. Most operations on
/// poison yield poison; branching on poison is immediate UB under the
/// proposed semantics.
class PoisonValue : public Constant {
  friend class IRContext;
  explicit PoisonValue(Type *Ty) : Constant(Kind::Poison, Ty) {}

public:
  static bool classof(const Value *V) { return V->getKind() == Kind::Poison; }
};

/// The legacy undef value: each use may observe a different value of the
/// type. Kept so the Section 3 inconsistencies can be demonstrated; the
/// proposed semantics removes it.
class UndefValue : public Constant {
  friend class IRContext;
  explicit UndefValue(Type *Ty) : Constant(Kind::Undef, Ty) {}

public:
  static bool classof(const Value *V) { return V->getKind() == Kind::Undef; }
};

/// A constant vector; elements are scalar constants (possibly poison/undef).
class ConstantVector : public Constant {
  friend class IRContext;
  std::vector<Constant *> Elems;

  ConstantVector(Type *Ty, std::vector<Constant *> Elems)
      : Constant(Kind::ConstantVector, Ty), Elems(std::move(Elems)) {}

public:
  unsigned size() const { return Elems.size(); }
  Constant *element(unsigned I) const {
    assert(I < Elems.size() && "vector element index out of range");
    return Elems[I];
  }

  static bool classof(const Value *V) {
    return V->getKind() == Kind::ConstantVector;
  }
};

/// A named global holding \p SizeBytes bytes of memory; its value is the
/// address of that block. Used by load/store tests and benchmarks.
class GlobalVariable : public Constant {
  friend class IRContext;
  unsigned SizeBytes;

  GlobalVariable(Type *PtrTy, std::string Name, unsigned SizeBytes)
      : Constant(Kind::GlobalVariable, PtrTy, std::move(Name)),
        SizeBytes(SizeBytes) {}

public:
  unsigned sizeBytes() const { return SizeBytes; }
  Type *valueType() const {
    return cast<PointerType>(getType())->pointee();
  }

  static bool classof(const Value *V) {
    return V->getKind() == Kind::GlobalVariable;
  }
};

} // namespace frost

#endif // FROST_IR_CONSTANTS_H
