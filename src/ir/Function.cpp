//===- Function.cpp - Functions and arguments ------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "ir/Context.h"
#include "ir/Printer.h"

#include <algorithm>
#include <set>

using namespace frost;

Function::Function(IRContext &Ctx, std::string Name, FunctionType *FT)
    : Value(Kind::Function, FT, std::move(Name)), Ctx(Ctx), FT(FT) {
  for (unsigned I = 0, E = FT->params().size(); I != E; ++I)
    Args.emplace_back(new Argument(FT->params()[I], "", this, I));
}

Function::~Function() {
  // Break all cross-references before any value is destroyed.
  for (BasicBlock *BB : Blocks)
    for (Instruction *I : *BB)
      I->dropAllReferences();
  for (BasicBlock *BB : Blocks)
    delete BB;
  Blocks.clear();
}

BasicBlock *Function::addBlock(std::string Name) {
  return BasicBlock::create(Ctx, std::move(Name), this);
}

void Function::appendBlock(BasicBlock *BB) {
  assert(!BB->Parent && "block already has a parent");
  BB->Parent = this;
  Blocks.push_back(BB);
}

void Function::moveBlockAfter(BasicBlock *BB, BasicBlock *After) {
  assert(BB->Parent == this && After->Parent == this &&
         "blocks not in this function");
  auto It = std::find(Blocks.begin(), Blocks.end(), BB);
  assert(It != Blocks.end() && "block not found");
  Blocks.erase(It);
  auto AfterIt = std::find(Blocks.begin(), Blocks.end(), After);
  assert(AfterIt != Blocks.end() && "anchor block not found");
  Blocks.insert(std::next(AfterIt), BB);
}

void Function::eraseBlock(BasicBlock *BB) {
  assert(BB->Parent == this && "block not in this function");
  auto It = std::find(Blocks.begin(), Blocks.end(), BB);
  assert(It != Blocks.end() && "block not found");
  Blocks.erase(It);
  for (Instruction *I : *BB)
    I->dropAllReferences();
  assert(!BB->hasUses() && "erasing a block that is still referenced");
  delete BB;
}

unsigned Function::instructionCount() const {
  unsigned N = 0;
  for (const BasicBlock *BB : Blocks)
    N += BB->size();
  return N;
}

void Function::nameValues() {
  // Collect names already in use so we never collide with them.
  std::set<std::string> Taken;
  for (auto &A : Args)
    if (A->hasName())
      Taken.insert(A->getName());
  for (BasicBlock *BB : Blocks) {
    if (BB->hasName())
      Taken.insert(BB->getName());
    for (Instruction *I : *BB)
      if (I->hasName())
        Taken.insert(I->getName());
  }
  unsigned Next = 0;
  auto Fresh = [&] {
    std::string Name;
    do {
      Name = std::to_string(Next++);
    } while (Taken.count(Name));
    Taken.insert(Name);
    return Name;
  };
  // In-memory values are identified by pointer, so duplicate names are
  // legal here — but the printed form identifies values by name, so the
  // second and later holders of a name must be renamed or the output
  // would not parse back (print(parse(print(F))) == print(F) is pinned
  // by tests/RoundTripTest.cpp). First occurrence keeps the name.
  std::set<std::string> Seen;
  auto Unique = [&](const std::string &Name) {
    // A rename must dodge both earlier-visited values (Seen) and the
    // original names of values not visited yet (Taken).
    std::string Candidate = Name;
    for (unsigned N = 1; Seen.count(Candidate) ||
                         (Candidate != Name && Taken.count(Candidate));
         ++N)
      Candidate = Name + "." + std::to_string(N);
    Seen.insert(Candidate);
    return Candidate;
  };
  for (auto &A : Args)
    A->setName(Unique(A->hasName() ? A->getName() : Fresh()));
  for (BasicBlock *BB : Blocks) {
    BB->setName(Unique(BB->hasName() ? BB->getName() : Fresh()));
    for (Instruction *I : *BB)
      if (!I->getType()->isVoid())
        I->setName(Unique(I->hasName() ? I->getName() : Fresh()));
  }
}

std::string Function::str() const {
  return printFunction(*const_cast<Function *>(this));
}
