//===- Function.cpp - Functions and arguments ------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "ir/Context.h"
#include "ir/Printer.h"

#include <algorithm>

using namespace frost;

Function::Function(IRContext &Ctx, std::string Name, FunctionType *FT)
    : Value(Kind::Function, FT, std::move(Name)), Ctx(Ctx), FT(FT) {
  for (unsigned I = 0, E = FT->params().size(); I != E; ++I)
    Args.emplace_back(new Argument(FT->params()[I], "", this, I));
}

Function::~Function() {
  // Break all cross-references before any value is destroyed.
  for (BasicBlock *BB : Blocks)
    for (Instruction *I : *BB)
      I->dropAllReferences();
  for (BasicBlock *BB : Blocks)
    delete BB;
  Blocks.clear();
}

BasicBlock *Function::addBlock(std::string Name) {
  return BasicBlock::create(Ctx, std::move(Name), this);
}

void Function::appendBlock(BasicBlock *BB) {
  assert(!BB->Parent && "block already has a parent");
  BB->Parent = this;
  Blocks.push_back(BB);
}

void Function::moveBlockAfter(BasicBlock *BB, BasicBlock *After) {
  assert(BB->Parent == this && After->Parent == this &&
         "blocks not in this function");
  auto It = std::find(Blocks.begin(), Blocks.end(), BB);
  assert(It != Blocks.end() && "block not found");
  Blocks.erase(It);
  auto AfterIt = std::find(Blocks.begin(), Blocks.end(), After);
  assert(AfterIt != Blocks.end() && "anchor block not found");
  Blocks.insert(std::next(AfterIt), BB);
}

void Function::eraseBlock(BasicBlock *BB) {
  assert(BB->Parent == this && "block not in this function");
  auto It = std::find(Blocks.begin(), Blocks.end(), BB);
  assert(It != Blocks.end() && "block not found");
  Blocks.erase(It);
  for (Instruction *I : *BB)
    I->dropAllReferences();
  assert(!BB->hasUses() && "erasing a block that is still referenced");
  delete BB;
}

unsigned Function::instructionCount() const {
  unsigned N = 0;
  for (const BasicBlock *BB : Blocks)
    N += BB->size();
  return N;
}

void Function::nameValues() {
  // Collect names already in use so we never collide with them.
  std::vector<std::string> Taken;
  for (auto &A : Args)
    if (A->hasName())
      Taken.push_back(A->getName());
  for (BasicBlock *BB : Blocks) {
    if (BB->hasName())
      Taken.push_back(BB->getName());
    for (Instruction *I : *BB)
      if (I->hasName())
        Taken.push_back(I->getName());
  }
  unsigned Next = 0;
  auto Fresh = [&] {
    std::string Name;
    do {
      Name = std::to_string(Next++);
    } while (std::find(Taken.begin(), Taken.end(), Name) != Taken.end());
    return Name;
  };
  for (auto &A : Args)
    if (!A->hasName())
      A->setName(Fresh());
  for (BasicBlock *BB : Blocks) {
    if (!BB->hasName())
      BB->setName(Fresh());
    for (Instruction *I : *BB)
      if (!I->hasName() && !I->getType()->isVoid())
        I->setName(Fresh());
  }
}

std::string Function::str() const {
  return printFunction(*const_cast<Function *>(this));
}
