//===- StructuralHash.h - Canonical-form function hashing -------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical-form hashing for functions: a canonicalizer that renders a
/// function into a text form invariant under
///
///   - value renaming (arguments, instructions, and blocks are referred to
///     by canonical indices, never by name),
///   - basic-block reordering (blocks are visited in reverse post-order
///     from the entry, with deterministic successor order),
///   - commutative operand order (add/mul/and/or/xor operands are sorted;
///     icmp operands are sorted with the predicate swapped to compensate,
///     which covers eq/ne and the ult/ugt-style mirror pairs), and
///   - phi incoming-edge order (edges are sorted by canonical block index),
///
/// plus a 128-bit hash of that form and an exact equality check. Two
/// functions with equal canonical forms have identical behaviour on every
/// input — the canonicalizer never merges forms that could diverge (no
/// instruction reordering, no algebraic identities beyond commutativity) —
/// which is what lets the TV verdict cache (tv/VerdictCache.h) replay one
/// function's verdict for its isomorphs.
///
/// Hash collisions across *different* canonical forms are possible in
/// principle (128 bits of FNV-style mixing), so consumers must confirm a
/// hash hit with structurallyEqual / the canonical text before trusting it.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_IR_STRUCTURALHASH_H
#define FROST_IR_STRUCTURALHASH_H

#include <cstdint>
#include <string>

namespace frost {

class Function;

/// A 128-bit structural hash (two independently mixed 64-bit lanes).
struct StructuralHash {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const StructuralHash &) const = default;

  /// 32 lowercase hex characters, Hi first.
  std::string str() const;

  /// Parses the str() rendering; returns false on malformed input.
  static bool fromString(const std::string &S, StructuralHash &Out);
};

/// Renders \p F in the canonical form described above. Declarations
/// canonicalize to their signature. The function name never appears: the
/// form describes structure only.
std::string canonicalForm(const Function &F);

/// Hashes an already-computed canonical form (or any other key text).
StructuralHash hashCanonicalText(const std::string &Canon);

/// hashCanonicalText(canonicalForm(F)).
StructuralHash structuralHash(const Function &F);

/// Exact structural isomorphism: equal canonical forms. Use to confirm a
/// hash hit before trusting it.
bool structurallyEqual(const Function &F, const Function &G);

} // namespace frost

#endif // FROST_IR_STRUCTURALHASH_H
