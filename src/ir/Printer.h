//===- Printer.h - Textual IR output ----------------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders modules, functions, and instructions in an LLVM-like textual
/// syntax that round-trips through the parser.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_IR_PRINTER_H
#define FROST_IR_PRINTER_H

#include <string>

namespace frost {

class Function;
class Instruction;
class Module;

/// Renders one instruction (no trailing newline). Operands must be named;
/// call Function::nameValues() first for machine-generated IR.
std::string printInstruction(const Instruction &I);

/// Renders a full function definition (names unnamed values first),
/// preceded by declarations of any globals its body references — the text
/// is standalone: it re-parses with parseModule without further context.
std::string printFunction(Function &F);

/// Renders every function in the module.
std::string printModule(Module &M);

} // namespace frost

#endif // FROST_IR_PRINTER_H
