//===- Module.h - Top-level IR container ------------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module owns a list of functions and is tied to an IRContext (which must
/// outlive it).
///
//===----------------------------------------------------------------------===//

#ifndef FROST_IR_MODULE_H
#define FROST_IR_MODULE_H

#include "ir/Function.h"

#include <iosfwd>

namespace frost {

/// Top-level container for functions.
class Module {
public:
  Module(IRContext &Ctx, std::string Name = "module")
      : Ctx(Ctx), Name(std::move(Name)) {}
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;
  ~Module();

  IRContext &context() const { return Ctx; }
  const std::string &name() const { return Name; }

  /// Creates a function owned by this module. Empty until blocks are added,
  /// in which state it acts as a declaration.
  Function *createFunction(std::string FnName, FunctionType *FT);

  /// Looks up a function by name, or null.
  Function *getFunction(const std::string &FnName) const;

  /// Removes and destroys \p F. It must not be referenced by calls from
  /// other functions.
  void eraseFunction(Function *F);

  using iterator = std::vector<std::unique_ptr<Function>>::iterator;
  iterator begin() { return Functions.begin(); }
  iterator end() { return Functions.end(); }
  unsigned size() const { return Functions.size(); }

  /// All functions in creation order.
  std::vector<Function *> functions() const;

  /// Total instruction count across all functions.
  unsigned instructionCount() const;

  /// Renders the module as textual IR.
  std::string str() const;

private:
  IRContext &Ctx;
  std::string Name;
  std::vector<std::unique_ptr<Function>> Functions;
};

} // namespace frost

#endif // FROST_IR_MODULE_H
