//===- Value.cpp - SSA values, uses, and users -----------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"

#include "ir/Constants.h"
#include "support/MemStats.h"

#include <algorithm>

using namespace frost;

Value::Value(Kind K, Type *Ty, std::string Name)
    : TheKind(K), Ty(Ty), Name(std::move(Name)) {
  memstats::recordAlloc(sizeof(Value));
}

Value::~Value() {
  assert(Uses.empty() && "value deleted while still in use");
  memstats::recordFree(sizeof(Value));
}

void Value::removeUse(Use *U) {
  auto It = std::find(Uses.begin(), Uses.end(), U);
  assert(It != Uses.end() && "use not found in use list");
  Uses.erase(It);
}

void Value::replaceAllUsesWith(Value *New) {
  assert(New != this && "RAUW with self would create a cycle");
  assert((!New || New->getType() == getType()) && "RAUW type mismatch");
  // Copy: Use::set mutates the list we are iterating.
  std::vector<Use *> Snapshot = Uses;
  for (Use *U : Snapshot)
    U->set(New);
}

std::string Value::refString() const {
  switch (TheKind) {
  case Kind::ConstantInt:
    return cast<ConstantInt>(this)->value().toSignedString();
  case Kind::Poison:
    return "poison";
  case Kind::Undef:
    return "undef";
  case Kind::ConstantVector: {
    const auto *CV = cast<ConstantVector>(this);
    std::string S = "<";
    for (unsigned I = 0, E = CV->size(); I != E; ++I) {
      if (I)
        S += ", ";
      S += CV->element(I)->getType()->str() + " " +
           CV->element(I)->refString();
    }
    return S + ">";
  }
  case Kind::Function:
  case Kind::GlobalVariable:
    return "@" + Name;
  case Kind::BasicBlock:
  case Kind::Argument:
  case Kind::Instruction:
  case Kind::Placeholder:
    return "%" + Name;
  }
  return "<unknown>";
}

void Use::set(Value *V) {
  if (Val == V)
    return;
  if (Val)
    Val->removeUse(this);
  Val = V;
  if (Val)
    Val->addUse(this);
}

void User::replaceUsesOfWith(Value *From, Value *To) {
  for (unsigned I = 0, E = getNumOperands(); I != E; ++I)
    if (getOperand(I) == From)
      setOperand(I, To);
}

void User::dropAllReferences() {
  for (unsigned I = 0, E = getNumOperands(); I != E; ++I)
    setOperand(I, nullptr);
}
