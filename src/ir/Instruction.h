//===- Instruction.h - Instruction base class -------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Instruction base class and the opcode/flag vocabulary of the frost IR,
/// following the paper's Figure 4: binary ops with nsw/nuw/exact poison
/// attributes, icmp, select, phi, freeze, casts, memory operations,
/// getelementptr, vector element ops, call, and terminators.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_IR_INSTRUCTION_H
#define FROST_IR_INSTRUCTION_H

#include "ir/Value.h"

namespace frost {

class BasicBlock;
class Function;
class IRContext;

/// Instruction opcodes.
enum class Opcode {
  // Binary arithmetic / bitwise.
  Add,
  Sub,
  Mul,
  UDiv,
  SDiv,
  URem,
  SRem,
  Shl,
  LShr,
  AShr,
  And,
  Or,
  Xor,
  // Casts.
  Trunc,
  ZExt,
  SExt,
  BitCast,
  // Scalar ops.
  ICmp,
  Select,
  Freeze,
  Phi,
  // Memory.
  Alloca,
  Load,
  Store,
  GEP,
  // Vector element access.
  ExtractElement,
  InsertElement,
  // Calls.
  Call,
  // Terminators.
  Br,
  Switch,
  Ret,
  Unreachable,
  Trap,
};

/// Returns the mnemonic for \p Op ("add", "icmp", ...).
const char *opcodeName(Opcode Op);

/// icmp predicates (the paper's cond: eq | ne | ugt | uge | slt | sle plus
/// the remaining LLVM predicates).
enum class ICmpPred { EQ, NE, UGT, UGE, ULT, ULE, SGT, SGE, SLT, SLE };

const char *predName(ICmpPred P);
/// The predicate with operands swapped (e.g. ULT -> UGT).
ICmpPred swappedPred(ICmpPred P);
/// The logically negated predicate (e.g. EQ -> NE).
ICmpPred invertedPred(ICmpPred P);

/// Poison-generating flags on arithmetic (nsw/nuw/exact in the paper).
struct ArithFlags {
  bool NSW = false;
  bool NUW = false;
  bool Exact = false;

  bool any() const { return NSW || NUW || Exact; }
  bool operator==(const ArithFlags &) const = default;
};

/// Base class of all frost instructions.
class Instruction : public User {
public:
  Opcode getOpcode() const { return Op; }
  const char *getOpcodeName() const { return opcodeName(Op); }

  BasicBlock *getParent() const { return Parent; }
  Function *getFunction() const;

  ArithFlags flags() const { return Flags; }
  void setFlags(ArithFlags F) { Flags = F; }
  bool hasNSW() const { return Flags.NSW; }
  bool hasNUW() const { return Flags.NUW; }
  bool isExact() const { return Flags.Exact; }
  /// Clears nsw/nuw/exact; used by Reassociate, which may change how and
  /// whether subexpressions overflow (Section 10.2).
  void dropPoisonGeneratingFlags() { Flags = ArithFlags(); }

  bool isTerminator() const {
    return Op == Opcode::Br || Op == Opcode::Switch || Op == Opcode::Ret ||
           Op == Opcode::Unreachable || Op == Opcode::Trap;
  }
  bool isBinaryOp() const {
    return Op >= Opcode::Add && Op <= Opcode::Xor;
  }
  bool isCast() const { return Op >= Opcode::Trunc && Op <= Opcode::BitCast; }
  bool isShift() const {
    return Op == Opcode::Shl || Op == Opcode::LShr || Op == Opcode::AShr;
  }
  bool isDivRem() const {
    return Op == Opcode::UDiv || Op == Opcode::SDiv || Op == Opcode::URem ||
           Op == Opcode::SRem;
  }
  bool isCommutative() const {
    return Op == Opcode::Add || Op == Opcode::Mul || Op == Opcode::And ||
           Op == Opcode::Or || Op == Opcode::Xor;
  }

  /// True if the instruction writes memory or otherwise has effects beyond
  /// producing its result.
  bool mayWriteMemory() const {
    return Op == Opcode::Store || Op == Opcode::Call;
  }
  bool mayReadMemory() const {
    return Op == Opcode::Load || Op == Opcode::Call;
  }

  /// True if executing the instruction can trigger immediate UB regardless
  /// of control context (division, memory access, calls). Such instructions
  /// must not be hoisted past control flow unless proven safe — the core of
  /// the Section 3.2 discussion.
  bool mayTriggerImmediateUB() const {
    return isDivRem() || Op == Opcode::Load || Op == Opcode::Store ||
           Op == Opcode::Call;
  }

  /// True if the instruction may be freely speculated: no side effects and
  /// no immediate UB. Deferred-UB (poison) producers are speculatable — the
  /// whole point of poison per Section 2.2. Freeze is speculatable too, but
  /// never *duplicatable* (Section 5.5): each execution of a freeze of
  /// poison may pick a different value.
  bool isSpeculatable() const {
    return !isTerminator() && !mayTriggerImmediateUB() &&
           Op != Opcode::Phi && Op != Opcode::Alloca;
  }

  /// True if the instruction may be duplicated (e.g. by loop sinking or tail
  /// duplication). Freeze may not: duplicated freezes of the same poison may
  /// disagree (Section 5.5, pitfall 1).
  bool isDuplicatable() const { return Op != Opcode::Freeze; }

  /// Unlinks the instruction from its parent block without deleting it.
  void removeFromParent();
  /// Unlinks and deletes the instruction. It must have no remaining uses.
  void eraseFromParent();
  /// Moves the instruction immediately before \p Pos (possibly in another
  /// block).
  void moveBefore(Instruction *Pos);
  /// Moves the instruction to the end of \p BB, before its terminator.
  void moveBeforeTerminator(BasicBlock *BB);

  /// The next/previous instruction in the parent block, or null.
  Instruction *nextInst() const;
  Instruction *prevInst() const;

  /// Creates an unparented copy of the instruction with identical operands
  /// and flags. The caller inserts it and remaps operands as needed.
  Instruction *clone() const;

  /// Renders the instruction as one line of textual IR (without newline).
  std::string str() const;

  static bool classof(const Value *V) {
    return V->getKind() == Kind::Instruction;
  }

protected:
  Instruction(Opcode Op, Type *Ty, std::string Name = "")
      : User(Kind::Instruction, Ty, std::move(Name)), Op(Op) {}

private:
  friend class BasicBlock;
  Opcode Op;
  BasicBlock *Parent = nullptr;
  ArithFlags Flags;
};

} // namespace frost

#endif // FROST_IR_INSTRUCTION_H
