//===- Value.h - SSA values, uses, and users --------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The root of the frost IR value hierarchy. Every SSA register, constant,
/// argument, basic block and function is a Value; instructions additionally
/// derive from User and hold their operands as Use edges, giving full use-def
/// and def-use chains (needed by RAUW-style rewriting in the optimizer).
///
//===----------------------------------------------------------------------===//

#ifndef FROST_IR_VALUE_H
#define FROST_IR_VALUE_H

#include "support/Casting.h"
#include "ir/Type.h"

#include <deque>
#include <string>
#include <vector>

namespace frost {

class Use;
class User;

/// Base class of everything that can be referenced by an instruction operand.
class Value {
public:
  enum class Kind {
    Argument,
    BasicBlock,
    Function,
    GlobalVariable,
    ConstantInt,
    Poison,
    Undef,
    ConstantVector,
    Instruction,
    Placeholder, ///< Parser-internal forward reference; never escapes.
  };

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;
  virtual ~Value();

  Kind getKind() const { return TheKind; }
  Type *getType() const { return Ty; }

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }
  bool hasName() const { return !Name.empty(); }

  /// All Use edges whose value is this one.
  const std::vector<Use *> &uses() const { return Uses; }
  unsigned getNumUses() const { return Uses.size(); }
  bool hasUses() const { return !Uses.empty(); }
  bool hasOneUse() const { return Uses.size() == 1; }

  /// Rewrites every use of this value to use \p New instead.
  void replaceAllUsesWith(Value *New);

  /// Renders the value as it appears in an operand position ("%x", "42",
  /// "poison").
  std::string refString() const;

protected:
  Value(Kind K, Type *Ty, std::string Name = "");

private:
  friend class Use;
  void addUse(Use *U) { Uses.push_back(U); }
  void removeUse(Use *U);

  Kind TheKind;
  Type *Ty;
  std::string Name;
  std::vector<Use *> Uses;
};

/// A single operand edge from a User to a Value. Maintains the used value's
/// use list automatically.
class Use {
public:
  Use(User *Parent, unsigned OpNo) : Parent(Parent), OpNo(OpNo) {}
  Use(const Use &) = delete;
  Use &operator=(const Use &) = delete;
  ~Use() { set(nullptr); }

  Value *get() const { return Val; }
  void set(Value *V);

  User *getUser() const { return Parent; }
  unsigned getOperandNo() const { return OpNo; }

private:
  Value *Val = nullptr;
  User *Parent;
  unsigned OpNo;
};

/// A value that references other values through operands.
class User : public Value {
public:
  unsigned getNumOperands() const { return Operands.size(); }
  Value *getOperand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I].get();
  }
  void setOperand(unsigned I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I].set(V);
  }

  /// Replaces every operand equal to \p From with \p To.
  void replaceUsesOfWith(Value *From, Value *To);

  /// Drops all operand references (used before deletion to break cycles).
  void dropAllReferences();

protected:
  User(Kind K, Type *Ty, std::string Name = "")
      : Value(K, Ty, std::move(Name)) {}

  /// Appends a new operand slot holding \p V. Uses a deque so Use addresses
  /// stay stable as phi nodes grow.
  void addOperand(Value *V) {
    Operands.emplace_back(this, static_cast<unsigned>(Operands.size()));
    Operands.back().set(V);
  }

  /// Removes the last operand slot.
  void popOperand() {
    assert(!Operands.empty() && "no operand to pop");
    Operands.pop_back();
  }

private:
  std::deque<Use> Operands;
};

} // namespace frost

#endif // FROST_IR_VALUE_H
