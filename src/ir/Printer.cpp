//===- Printer.cpp - Textual IR output -------------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/Context.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <sstream>

using namespace frost;

namespace {

/// "i32 %a" — operand with its type.
std::string typedRef(const Value *V) {
  return V->getType()->str() + " " + V->refString();
}

std::string flagString(const Instruction &I) {
  std::string S;
  if (I.hasNSW())
    S += " nsw";
  if (I.hasNUW())
    S += " nuw";
  if (I.isExact())
    S += " exact";
  return S;
}

} // namespace

std::string frost::printInstruction(const Instruction &I) {
  std::ostringstream OS;
  if (!I.getType()->isVoid())
    OS << I.refString() << " = ";

  switch (I.getOpcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::UDiv:
  case Opcode::SDiv:
  case Opcode::URem:
  case Opcode::SRem:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
    OS << I.getOpcodeName() << flagString(I) << " "
       << I.getOperand(0)->getType()->str() << " "
       << I.getOperand(0)->refString() << ", " << I.getOperand(1)->refString();
    break;
  case Opcode::Trunc:
  case Opcode::ZExt:
  case Opcode::SExt:
  case Opcode::BitCast:
    OS << I.getOpcodeName() << " " << typedRef(I.getOperand(0)) << " to "
       << I.getType()->str();
    break;
  case Opcode::ICmp: {
    const auto &C = cast<ICmpInst>(I);
    OS << "icmp " << predName(C.pred()) << " "
       << C.lhs()->getType()->str() << " " << C.lhs()->refString() << ", "
       << C.rhs()->refString();
    break;
  }
  case Opcode::Select:
    OS << "select " << typedRef(I.getOperand(0)) << ", "
       << typedRef(I.getOperand(1)) << ", " << typedRef(I.getOperand(2));
    break;
  case Opcode::Freeze:
    OS << "freeze " << typedRef(I.getOperand(0));
    break;
  case Opcode::Phi: {
    const auto &P = cast<PhiNode>(I);
    OS << "phi " << P.getType()->str();
    for (unsigned J = 0, E = P.getNumIncoming(); J != E; ++J) {
      OS << (J ? ", [ " : " [ ") << P.getIncomingValue(J)->refString()
         << ", " << P.getIncomingBlock(J)->refString() << " ]";
    }
    break;
  }
  case Opcode::Alloca:
    OS << "alloca " << cast<AllocaInst>(I).allocatedType()->str();
    break;
  case Opcode::Load:
    OS << "load " << I.getType()->str() << ", "
       << typedRef(I.getOperand(0));
    break;
  case Opcode::Store:
    OS << "store " << typedRef(I.getOperand(0)) << ", "
       << typedRef(I.getOperand(1));
    break;
  case Opcode::GEP: {
    const auto &G = cast<GEPInst>(I);
    OS << "gep " << (G.isInBounds() ? "inbounds " : "")
       << typedRef(G.base()) << ", " << typedRef(G.index());
    break;
  }
  case Opcode::ExtractElement:
    OS << "extractelement " << typedRef(I.getOperand(0)) << ", "
       << cast<ExtractElementInst>(I).index();
    break;
  case Opcode::InsertElement:
    OS << "insertelement " << typedRef(I.getOperand(0)) << ", "
       << typedRef(I.getOperand(1)) << ", "
       << cast<InsertElementInst>(I).index();
    break;
  case Opcode::Call: {
    const auto &C = cast<CallInst>(I);
    OS << "call " << C.callee()->returnType()->str() << " "
       << C.callee()->refString() << "(";
    for (unsigned J = 0, E = C.getNumArgs(); J != E; ++J)
      OS << (J ? ", " : "") << typedRef(C.getArg(J));
    OS << ")";
    break;
  }
  case Opcode::Br: {
    const auto &B = cast<BranchInst>(I);
    if (B.isConditional())
      OS << "br i1 " << B.condition()->refString() << ", label "
         << B.trueDest()->refString() << ", label "
         << B.falseDest()->refString();
    else
      OS << "br label " << B.dest()->refString();
    break;
  }
  case Opcode::Switch: {
    const auto &S = cast<SwitchInst>(I);
    OS << "switch " << typedRef(S.condition()) << ", label "
       << S.defaultDest()->refString() << " [";
    for (unsigned J = 0, E = S.getNumCases(); J != E; ++J)
      OS << " " << typedRef(S.caseValue(J)) << ", label "
         << S.caseDest(J)->refString();
    OS << " ]";
    break;
  }
  case Opcode::Ret: {
    const auto &R = cast<ReturnInst>(I);
    if (R.hasValue())
      OS << "ret " << typedRef(R.value());
    else
      OS << "ret void";
    break;
  }
  case Opcode::Unreachable:
    OS << "unreachable";
    break;
  case Opcode::Trap:
    OS << "trap " << cast<TrapInst>(I).id();
    break;
  }
  return OS.str();
}

namespace {

/// Appends the globals referenced by \p F's body to \p Globals in first-use
/// order, skipping ones already present.
void collectReferencedGlobals(Function &F,
                              std::vector<GlobalVariable *> &Globals) {
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op)
        if (auto *G = dyn_cast<GlobalVariable>(I->getOperand(Op)))
          if (std::find(Globals.begin(), Globals.end(), G) == Globals.end())
            Globals.push_back(G);
}

void printGlobals(std::ostringstream &OS,
                  const std::vector<GlobalVariable *> &Globals) {
  for (const GlobalVariable *G : Globals)
    OS << "@" << G->getName() << " = global " << G->valueType()->str()
       << ", " << G->sizeBytes() << "\n";
  if (!Globals.empty())
    OS << "\n";
}

/// The function definition alone, without the global declarations that make
/// it standalone-parseable (printModule emits those once per module).
std::string printFunctionBody(Function &F) {
  F.nameValues();
  std::ostringstream OS;
  if (F.isDeclaration()) {
    OS << "declare " << F.returnType()->str() << " @" << F.getName() << "(";
    for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
      OS << (I ? ", " : "") << F.arg(I)->getType()->str();
    OS << ")\n";
    return OS.str();
  }
  OS << "define " << F.returnType()->str() << " @" << F.getName() << "(";
  for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
    OS << (I ? ", " : "") << typedRef(F.arg(I));
  OS << ") {\n";
  bool First = true;
  for (BasicBlock *BB : F) {
    if (!First)
      OS << "\n";
    First = false;
    OS << BB->getName() << ":\n";
    for (Instruction *I : *BB)
      OS << "  " << printInstruction(*I) << "\n";
  }
  OS << "}\n";
  return OS.str();
}

} // namespace

std::string frost::printFunction(Function &F) {
  // Lead with the globals the body references so the text is standalone:
  // campaign shards and counterexample reports re-parse single functions.
  std::vector<GlobalVariable *> Globals;
  collectReferencedGlobals(F, Globals);
  std::ostringstream OS;
  printGlobals(OS, Globals);
  OS << printFunctionBody(F);
  return OS.str();
}

std::string frost::printModule(Module &M) {
  std::ostringstream OS;
  // Emit any globals referenced by the module first, so a round-trip
  // through the parser can re-register them with the right sizes.
  std::vector<GlobalVariable *> Globals;
  for (Function *F : M.functions())
    collectReferencedGlobals(*F, Globals);
  printGlobals(OS, Globals);

  bool First = true;
  for (Function *F : M.functions()) {
    if (!First)
      OS << "\n";
    First = false;
    OS << printFunctionBody(*F);
  }
  return OS.str();
}

std::string Instruction::str() const { return printInstruction(*this); }
