//===- Context.h - IR context: types and uniqued constants -----*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRContext owns the type system and the uniqued constant pool shared by all
/// modules built against it. It must outlive those modules.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_IR_CONTEXT_H
#define FROST_IR_CONTEXT_H

#include "ir/Constants.h"
#include "ir/Type.h"

#include <map>
#include <memory>

namespace frost {

/// Owns types and uniqued constants.
class IRContext {
public:
  IRContext() = default;
  IRContext(const IRContext &) = delete;
  IRContext &operator=(const IRContext &) = delete;
  ~IRContext();

  TypeContext &types() { return Types; }

  // Type shortcuts.
  Type *voidTy() { return Types.voidTy(); }
  IntegerType *intTy(unsigned Width) { return Types.intTy(Width); }
  IntegerType *boolTy() { return Types.boolTy(); }
  PointerType *ptrTy(Type *Pointee) { return Types.ptrTy(Pointee); }
  VectorType *vecTy(Type *Elem, unsigned Count) {
    return Types.vecTy(Elem, Count);
  }

  /// Integer constant of the given width, truncated to fit.
  ConstantInt *getInt(unsigned Width, uint64_t Value);
  ConstantInt *getInt(const BitVec &Value);
  ConstantInt *getBool(bool B) { return getInt(1, B ? 1 : 0); }
  ConstantInt *getTrue() { return getBool(true); }
  ConstantInt *getFalse() { return getBool(false); }

  PoisonValue *getPoison(Type *Ty);
  UndefValue *getUndef(Type *Ty);
  ConstantVector *getVector(std::vector<Constant *> Elems);
  /// A named global of \p SizeBytes bytes whose value type is \p ValueTy.
  GlobalVariable *getGlobal(std::string Name, Type *ValueTy,
                            unsigned SizeBytes);
  /// Looks up an already-registered global, or null.
  GlobalVariable *findGlobal(const std::string &Name) const;

private:
  TypeContext Types;
  std::map<std::pair<unsigned, uint64_t>, std::unique_ptr<ConstantInt>>
      IntPool;
  std::map<Type *, std::unique_ptr<PoisonValue>> PoisonPool;
  std::map<Type *, std::unique_ptr<UndefValue>> UndefPool;
  std::vector<std::unique_ptr<ConstantVector>> VecPool;
  std::map<std::string, std::unique_ptr<GlobalVariable>> Globals;
};

} // namespace frost

#endif // FROST_IR_CONTEXT_H
