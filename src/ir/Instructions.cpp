//===- Instructions.cpp - Concrete instruction classes ---------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Instructions.h"

#include "ir/BasicBlock.h"
#include "ir/Context.h"
#include "ir/Function.h"

using namespace frost;

ICmpInst *ICmpInst::create(IRContext &Ctx, ICmpPred Pred, Value *LHS,
                           Value *RHS, std::string Name) {
  Type *ResTy = Ctx.boolTy();
  if (auto *VT = dyn_cast<VectorType>(LHS->getType()))
    ResTy = Ctx.vecTy(Ctx.boolTy(), VT->count());
  return new ICmpInst(Pred, LHS, RHS, ResTy, std::move(Name));
}

BasicBlock *PhiNode::getIncomingBlock(unsigned I) const {
  return cast<BasicBlock>(getOperand(2 * I + 1));
}

void PhiNode::setIncomingBlock(unsigned I, BasicBlock *BB) {
  setOperand(2 * I + 1, BB);
}

void PhiNode::addIncoming(Value *V, BasicBlock *BB) {
  assert(V->getType() == getType() && "phi incoming value type mismatch");
  addOperand(V);
  addOperand(BB);
}

void PhiNode::removeIncoming(unsigned I) {
  unsigned N = getNumIncoming();
  assert(I < N && "incoming index out of range");
  // Shift later edges down, then pop the last pair.
  for (unsigned J = I; J + 1 < N; ++J) {
    setOperand(2 * J, getOperand(2 * (J + 1)));
    setOperand(2 * J + 1, getOperand(2 * (J + 1) + 1));
  }
  popOperand();
  popOperand();
}

int PhiNode::getBlockIndex(const BasicBlock *BB) const {
  for (unsigned I = 0, E = getNumIncoming(); I != E; ++I)
    if (getIncomingBlock(I) == BB)
      return static_cast<int>(I);
  return -1;
}

Value *PhiNode::getIncomingValueForBlock(const BasicBlock *BB) const {
  int I = getBlockIndex(BB);
  assert(I >= 0 && "block is not a predecessor of this phi");
  return getIncomingValue(static_cast<unsigned>(I));
}

Value *PhiNode::hasConstantValue() const {
  Value *Common = nullptr;
  for (unsigned I = 0, E = getNumIncoming(); I != E; ++I) {
    Value *V = getIncomingValue(I);
    if (V == this)
      continue;
    if (Common && V != Common)
      return nullptr;
    Common = V;
  }
  return Common;
}

AllocaInst::AllocaInst(IRContext &Ctx, Type *AllocTy, std::string Name)
    : Instruction(Opcode::Alloca, Ctx.ptrTy(AllocTy), std::move(Name)),
      AllocTy(AllocTy) {}

StoreInst::StoreInst(Value *Val, Value *Ptr, IRContext &Ctx)
    : Instruction(Opcode::Store, Ctx.voidTy()) {
  addOperand(Val);
  addOperand(Ptr);
}

CallInst::CallInst(Function *Callee, const std::vector<Value *> &Args,
                   std::string Name)
    : Instruction(Opcode::Call, Callee->returnType(), std::move(Name)) {
  assert(Args.size() == Callee->fnType()->params().size() &&
         "call argument count mismatch");
  addOperand(Callee);
  for (Value *A : Args)
    addOperand(A);
}

Function *CallInst::callee() const { return cast<Function>(getOperand(0)); }

BranchInst::BranchInst(Value *Cond, BasicBlock *TrueBB, BasicBlock *FalseBB,
                       IRContext &Ctx)
    : Instruction(Opcode::Br, Ctx.voidTy()) {
  assert(Cond->getType()->isBool() && "branch condition must be i1");
  addOperand(Cond);
  addOperand(TrueBB);
  addOperand(FalseBB);
}

BranchInst::BranchInst(BasicBlock *Dest, IRContext &Ctx)
    : Instruction(Opcode::Br, Ctx.voidTy()) {
  addOperand(Dest);
}

BasicBlock *BranchInst::trueDest() const {
  assert(isConditional() && "unconditional branch has no true dest");
  return cast<BasicBlock>(getOperand(1));
}

BasicBlock *BranchInst::falseDest() const {
  assert(isConditional() && "unconditional branch has no false dest");
  return cast<BasicBlock>(getOperand(2));
}

BasicBlock *BranchInst::dest() const {
  assert(!isConditional() && "conditional branch has two dests");
  return cast<BasicBlock>(getOperand(0));
}

BasicBlock *BranchInst::getDest(unsigned I) const {
  assert(I < getNumDests() && "dest index out of range");
  return cast<BasicBlock>(getOperand(isConditional() ? 1 + I : 0));
}

void BranchInst::setDest(unsigned I, BasicBlock *BB) {
  assert(I < getNumDests() && "dest index out of range");
  setOperand(isConditional() ? 1 + I : 0, BB);
}

SwitchInst::SwitchInst(Value *Cond, BasicBlock *Default, IRContext &Ctx)
    : Instruction(Opcode::Switch, Ctx.voidTy()) {
  addOperand(Cond);
  addOperand(Default);
}

BasicBlock *SwitchInst::defaultDest() const {
  return cast<BasicBlock>(getOperand(1));
}

ConstantInt *SwitchInst::caseValue(unsigned I) const {
  assert(I < getNumCases() && "case index out of range");
  return cast<ConstantInt>(getOperand(2 + 2 * I));
}

BasicBlock *SwitchInst::caseDest(unsigned I) const {
  assert(I < getNumCases() && "case index out of range");
  return cast<BasicBlock>(getOperand(3 + 2 * I));
}

void SwitchInst::addCase(ConstantInt *Val, BasicBlock *Dest) {
  assert(Val->getType() == condition()->getType() &&
         "switch case type mismatch");
  addOperand(Val);
  addOperand(Dest);
}

ReturnInst::ReturnInst(Value *RetVal, IRContext &Ctx)
    : Instruction(Opcode::Ret, Ctx.voidTy()) {
  if (RetVal)
    addOperand(RetVal);
}

UnreachableInst::UnreachableInst(IRContext &Ctx)
    : Instruction(Opcode::Unreachable, Ctx.voidTy()) {}

TrapInst::TrapInst(IRContext &Ctx, unsigned Id)
    : Instruction(Opcode::Trap, Ctx.voidTy()), Id(Id) {}
