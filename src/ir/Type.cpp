//===- Type.cpp - frost IR type system ------------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Type.h"

#include "support/ErrorHandling.h"

using namespace frost;

namespace {
/// Concrete singleton types for void and label.
class SimpleType : public Type {
public:
  explicit SimpleType(Kind K) : Type(K) {}
};
} // namespace

bool Type::isBool() const {
  return isInteger() && static_cast<const IntegerType *>(this)->width() == 1;
}

unsigned Type::bitWidth() const {
  switch (TheKind) {
  case Kind::Integer:
    return static_cast<const IntegerType *>(this)->width();
  case Kind::Pointer:
    return PointerType::AddressBits;
  case Kind::Vector: {
    const auto *VT = static_cast<const VectorType *>(this);
    return VT->element()->bitWidth() * VT->count();
  }
  case Kind::Void:
  case Kind::Label:
  case Kind::Function:
    break;
  }
  frost_unreachable("type has no bit width");
}

std::string Type::str() const {
  switch (TheKind) {
  case Kind::Void:
    return "void";
  case Kind::Label:
    return "label";
  case Kind::Integer:
    return "i" + std::to_string(static_cast<const IntegerType *>(this)->width());
  case Kind::Pointer:
    return static_cast<const PointerType *>(this)->pointee()->str() + "*";
  case Kind::Vector: {
    const auto *VT = static_cast<const VectorType *>(this);
    return "<" + std::to_string(VT->count()) + " x " +
           VT->element()->str() + ">";
  }
  case Kind::Function: {
    const auto *FT = static_cast<const FunctionType *>(this);
    std::string S = FT->returnType()->str() + " (";
    for (unsigned I = 0, E = FT->params().size(); I != E; ++I) {
      if (I)
        S += ", ";
      S += FT->params()[I]->str();
    }
    return S + ")";
  }
  }
  frost_unreachable("unknown type kind");
}

TypeContext::TypeContext()
    : VoidTy(std::make_unique<SimpleType>(Type::Kind::Void)),
      LabelTy(std::make_unique<SimpleType>(Type::Kind::Label)) {}

IntegerType *TypeContext::intTy(unsigned Width) {
  auto &Slot = IntTypes[Width];
  if (!Slot)
    Slot.reset(new IntegerType(Width));
  return Slot.get();
}

PointerType *TypeContext::ptrTy(Type *Pointee) {
  auto &Slot = PtrTypes[Pointee];
  if (!Slot)
    Slot.reset(new PointerType(Pointee));
  return Slot.get();
}

VectorType *TypeContext::vecTy(Type *Elem, unsigned Count) {
  auto &Slot = VecTypes[{Elem, Count}];
  if (!Slot)
    Slot.reset(new VectorType(Elem, Count));
  return Slot.get();
}

FunctionType *TypeContext::fnTy(Type *Ret, std::vector<Type *> Params) {
  for (auto &FT : FnTypes)
    if (FT->returnType() == Ret && FT->params() == Params)
      return FT.get();
  FnTypes.emplace_back(new FunctionType(Ret, std::move(Params)));
  return FnTypes.back().get();
}
