//===- BasicBlock.h - Basic blocks ------------------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A BasicBlock is a label value holding a straight-line list of
/// instructions ending in a terminator. Blocks own their instructions.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_IR_BASICBLOCK_H
#define FROST_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <list>

namespace frost {

class Function;
class IRContext;
class PhiNode;

/// A single-entry straight-line sequence of instructions.
class BasicBlock : public Value {
  BasicBlock(IRContext &Ctx, std::string Name);

public:
  /// Creates a block; if \p Parent is given, appends it to that function.
  static BasicBlock *create(IRContext &Ctx, std::string Name,
                            Function *Parent = nullptr);
  ~BasicBlock() override;

  Function *getParent() const { return Parent; }

  using iterator = std::list<Instruction *>::iterator;
  using const_iterator = std::list<Instruction *>::const_iterator;
  iterator begin() { return Insts.begin(); }
  iterator end() { return Insts.end(); }
  const_iterator begin() const { return Insts.begin(); }
  const_iterator end() const { return Insts.end(); }
  bool empty() const { return Insts.empty(); }
  unsigned size() const { return Insts.size(); }

  Instruction *front() const { return Insts.front(); }
  Instruction *back() const { return Insts.back(); }

  /// The block's terminator, or null if the block is still under
  /// construction.
  Instruction *terminator() const;

  /// The first instruction that is not a phi node, or null in an empty
  /// block.
  Instruction *firstNonPhi() const;

  /// All phi nodes at the head of the block.
  std::vector<PhiNode *> phis() const;

  /// Appends \p I (taking ownership).
  void push_back(Instruction *I);
  /// Inserts \p I (taking ownership) immediately before \p Pos.
  void insertBefore(Instruction *Pos, Instruction *I);
  /// Unlinks \p I without deleting it; caller takes ownership.
  void remove(Instruction *I);
  /// Unlinks, drops references, and deletes \p I. I must have no uses.
  void erase(Instruction *I);

  /// Successor blocks, from the terminator.
  std::vector<BasicBlock *> successors() const;
  /// Predecessor blocks: every block whose terminator targets this one.
  /// Duplicates are kept (a conditional branch with both edges here lists it
  /// twice), matching phi edge counting.
  std::vector<BasicBlock *> predecessors() const;
  /// Predecessors with duplicates removed.
  std::vector<BasicBlock *> uniquePredecessors() const;
  bool hasSinglePredecessor() const;

  /// Notifies phi nodes that \p Pred no longer branches here: removes the
  /// matching incoming edges.
  void removePredecessor(BasicBlock *Pred);

  /// Splits the block before \p Pos; instructions from \p Pos onward move to
  /// a new block, and this block gets an unconditional branch to it. Phi
  /// nodes are not updated (there are none mid-block). Returns the new
  /// block.
  BasicBlock *splitBefore(Instruction *Pos, const std::string &NewName);

  static bool classof(const Value *V) {
    return V->getKind() == Kind::BasicBlock;
  }

private:
  friend class Function;
  IRContext &Ctx;
  Function *Parent = nullptr;
  std::list<Instruction *> Insts;
};

} // namespace frost

#endif // FROST_IR_BASICBLOCK_H
