//===- Type.h - frost IR type system ----------------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The frost IR type system, matching the paper's Figure 4: arbitrary
/// bit-width integers isz, typed pointers ty*, and vectors <sz x ty> with a
/// statically known element count, plus void/label/function types needed to
/// form complete modules. Types are uniqued by a TypeContext and compared by
/// pointer identity.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_IR_TYPE_H
#define FROST_IR_TYPE_H

#include <cassert>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace frost {

class TypeContext;

/// Base class of all frost IR types. Instances are uniqued: two types are
/// equal iff their pointers are equal.
class Type {
public:
  enum class Kind { Void, Integer, Pointer, Vector, Label, Function };

  Kind getKind() const { return TheKind; }

  bool isVoid() const { return TheKind == Kind::Void; }
  bool isInteger() const { return TheKind == Kind::Integer; }
  bool isPointer() const { return TheKind == Kind::Pointer; }
  bool isVector() const { return TheKind == Kind::Vector; }
  bool isLabel() const { return TheKind == Kind::Label; }
  bool isFunction() const { return TheKind == Kind::Function; }
  /// True for types that may appear as SSA register values.
  bool isFirstClass() const {
    return isInteger() || isPointer() || isVector();
  }
  /// True for i1, the branch/select condition type.
  bool isBool() const;

  /// Total number of bits in a value of this type (pointers are 32 bits, per
  /// the paper's memory model). Asserts on void/label/function.
  unsigned bitWidth() const;

  /// Renders the type in LLVM-like syntax ("i32", "i8*", "<4 x i8>").
  std::string str() const;

  virtual ~Type() = default;

protected:
  explicit Type(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
};

/// An integer type of 1 to 64 bits.
class IntegerType : public Type {
  friend class TypeContext;
  unsigned Width;

  explicit IntegerType(unsigned Width) : Type(Kind::Integer), Width(Width) {
    assert(Width >= 1 && Width <= 64 && "unsupported integer width");
  }

public:
  unsigned width() const { return Width; }

  static bool classof(const Type *T) { return T->getKind() == Kind::Integer; }
};

/// A typed pointer. All pointers are 32 bits wide in the semantics, as in the
/// paper's Figure 5 memory model.
class PointerType : public Type {
  friend class TypeContext;
  Type *Pointee;

  explicit PointerType(Type *Pointee)
      : Type(Kind::Pointer), Pointee(Pointee) {}

public:
  /// Bit width of every pointer value.
  static constexpr unsigned AddressBits = 32;

  Type *pointee() const { return Pointee; }

  static bool classof(const Type *T) { return T->getKind() == Kind::Pointer; }
};

/// A fixed-length vector of integer or pointer elements.
class VectorType : public Type {
  friend class TypeContext;
  Type *Elem;
  unsigned Count;

  VectorType(Type *Elem, unsigned Count)
      : Type(Kind::Vector), Elem(Elem), Count(Count) {
    assert(Count >= 1 && "vector must have at least one element");
    assert((Elem->isInteger() || Elem->isPointer()) &&
           "vector elements must be scalar");
  }

public:
  Type *element() const { return Elem; }
  unsigned count() const { return Count; }

  static bool classof(const Type *T) { return T->getKind() == Kind::Vector; }
};

/// The type of a function: a return type plus parameter types.
class FunctionType : public Type {
  friend class TypeContext;
  Type *Ret;
  std::vector<Type *> Params;

  FunctionType(Type *Ret, std::vector<Type *> Params)
      : Type(Kind::Function), Ret(Ret), Params(std::move(Params)) {}

public:
  Type *returnType() const { return Ret; }
  const std::vector<Type *> &params() const { return Params; }

  static bool classof(const Type *T) { return T->getKind() == Kind::Function; }
};

/// Owns and uniques all types used by a set of modules.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  Type *voidTy() { return VoidTy.get(); }
  Type *labelTy() { return LabelTy.get(); }
  IntegerType *intTy(unsigned Width);
  IntegerType *boolTy() { return intTy(1); }
  PointerType *ptrTy(Type *Pointee);
  VectorType *vecTy(Type *Elem, unsigned Count);
  FunctionType *fnTy(Type *Ret, std::vector<Type *> Params);

private:
  std::unique_ptr<Type> VoidTy;
  std::unique_ptr<Type> LabelTy;
  std::map<unsigned, std::unique_ptr<IntegerType>> IntTypes;
  std::map<Type *, std::unique_ptr<PointerType>> PtrTypes;
  std::map<std::pair<Type *, unsigned>, std::unique_ptr<VectorType>> VecTypes;
  std::vector<std::unique_ptr<FunctionType>> FnTypes;
};

} // namespace frost

#endif // FROST_IR_TYPE_H
