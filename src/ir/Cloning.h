//===- Cloning.h - Function cloning ------------------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-copies a function definition. Used by the per-pass translation
/// validation harness (keep the original, transform the clone, check
/// refinement) and by the benchmark driver.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_IR_CLONING_H
#define FROST_IR_CLONING_H

#include <string>

namespace frost {

class Function;
class Module;

/// Creates a copy of \p F named \p NewName inside \p M (which must share
/// F's context). Declarations clone to declarations.
Function *cloneFunction(Function &F, Module &M, const std::string &NewName);

} // namespace frost

#endif // FROST_IR_CLONING_H
