//===- Cloning.cpp - Function cloning -------------------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Cloning.h"

#include "ir/Context.h"
#include "ir/Instructions.h"
#include "ir/Module.h"

#include <map>

using namespace frost;

Function *frost::cloneFunction(Function &F, Module &M,
                               const std::string &NewName) {
  Function *NewF = M.createFunction(NewName, F.fnType());
  if (F.isDeclaration())
    return NewF;

  std::map<Value *, Value *> VMap;
  for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I) {
    NewF->arg(I)->setName(F.arg(I)->getName());
    VMap[F.arg(I)] = NewF->arg(I);
  }
  for (BasicBlock *BB : F)
    VMap[BB] = NewF->addBlock(BB->getName());
  for (BasicBlock *BB : F) {
    auto *NewBB = cast<BasicBlock>(VMap[BB]);
    for (Instruction *I : *BB) {
      Instruction *NewI = I->clone();
      NewI->setName(I->getName());
      NewBB->push_back(NewI);
      VMap[I] = NewI;
    }
  }
  // Remap operands (everything except globals, constants, and functions).
  for (BasicBlock *BB : *NewF)
    for (Instruction *I : *BB)
      for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op) {
        auto It = VMap.find(I->getOperand(Op));
        if (It != VMap.end())
          I->setOperand(Op, It->second);
      }
  return NewF;
}
