//===- Verifier.cpp - IR well-formedness checks -----------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "analysis/Dominators.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "ir/Printer.h"

#include <algorithm>
#include <memory>
#include <set>

using namespace frost;

namespace {

class FunctionVerifier {
  Function &F;
  std::vector<std::string> &Errors;
  const DominatorTree *CachedDT;

  void report(const std::string &Msg) { Errors.push_back(Msg); }
  void report(const Instruction *I, const std::string &Msg) {
    Errors.push_back(Msg + " in: " + printInstruction(*I));
  }

public:
  FunctionVerifier(Function &F, std::vector<std::string> &Errors,
                   const DominatorTree *CachedDT)
      : F(F), Errors(Errors), CachedDT(CachedDT) {}

  bool run();

private:
  void checkBlock(BasicBlock *BB);
  void checkInstruction(Instruction *I);
  void checkDominance();
};

bool FunctionVerifier::run() {
  if (F.isDeclaration())
    return true;
  size_t Before = Errors.size();

  if (!F.entry()->uniquePredecessors().empty())
    report("entry block has predecessors in @" + F.getName());
  if (!F.entry()->phis().empty())
    report("entry block has phi nodes in @" + F.getName());

  for (BasicBlock *BB : F)
    checkBlock(BB);

  // Dominance is only meaningful on structurally valid IR.
  if (Errors.size() == Before)
    checkDominance();
  return Errors.size() == Before;
}

void FunctionVerifier::checkBlock(BasicBlock *BB) {
  if (BB->empty() || !BB->back()->isTerminator()) {
    report("block %" + BB->getName() + " lacks a terminator");
    return;
  }
  bool SeenNonPhi = false;
  for (Instruction *I : *BB) {
    if (I->isTerminator() && I != BB->back())
      report(I, "terminator in the middle of a block");
    if (isa<PhiNode>(I)) {
      if (SeenNonPhi)
        report(I, "phi after a non-phi instruction");
    } else {
      SeenNonPhi = true;
    }
    if (I->getParent() != BB)
      report(I, "instruction parent link is wrong");
    checkInstruction(I);
  }

  // Phi incoming blocks must be exactly the unique predecessors.
  std::vector<BasicBlock *> Preds = BB->uniquePredecessors();
  for (PhiNode *P : BB->phis()) {
    std::set<BasicBlock *> Seen;
    for (unsigned I = 0, E = P->getNumIncoming(); I != E; ++I) {
      BasicBlock *In = P->getIncomingBlock(I);
      if (!Seen.insert(In).second)
        report(P, "duplicate phi edge from %" + In->getName());
      if (std::find(Preds.begin(), Preds.end(), In) == Preds.end())
        report(P, "phi edge from non-predecessor %" + In->getName());
    }
    for (BasicBlock *Pred : Preds)
      if (!Seen.count(Pred))
        report(P, "phi is missing an edge from predecessor %" +
                      Pred->getName());
  }
}

void FunctionVerifier::checkInstruction(Instruction *I) {
  for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op)
    if (!I->getOperand(Op))
      report(I, "null operand");

  switch (I->getOpcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::UDiv:
  case Opcode::SDiv:
  case Opcode::URem:
  case Opcode::SRem:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor: {
    if (I->getOperand(0)->getType() != I->getType() ||
        I->getOperand(1)->getType() != I->getType())
      report(I, "binary operand type mismatch");
    bool FlagsAllowed =
        I->getOpcode() == Opcode::Add || I->getOpcode() == Opcode::Sub ||
        I->getOpcode() == Opcode::Mul || I->getOpcode() == Opcode::Shl;
    bool ExactAllowed = I->isDivRem() || I->getOpcode() == Opcode::LShr ||
                        I->getOpcode() == Opcode::AShr;
    if ((I->hasNSW() || I->hasNUW()) && !FlagsAllowed)
      report(I, "nsw/nuw on an opcode that does not support them");
    if (I->isExact() && !ExactAllowed)
      report(I, "exact on an opcode that does not support it");
    break;
  }
  case Opcode::Trunc:
  case Opcode::ZExt:
  case Opcode::SExt: {
    Type *SrcTy = I->getOperand(0)->getType();
    if (!SrcTy->isInteger() || !I->getType()->isInteger()) {
      report(I, "int cast on non-integer type");
      break;
    }
    unsigned Src = SrcTy->bitWidth(), Dst = I->getType()->bitWidth();
    if (I->getOpcode() == Opcode::Trunc ? Src <= Dst : Src >= Dst)
      report(I, "cast does not change width in the right direction");
    break;
  }
  case Opcode::BitCast:
    if (I->getOperand(0)->getType()->bitWidth() != I->getType()->bitWidth())
      report(I, "bitcast between types of different bit width");
    break;
  case Opcode::ICmp:
    if (I->getOperand(0)->getType() != I->getOperand(1)->getType())
      report(I, "icmp operand type mismatch");
    break;
  case Opcode::Select: {
    const auto *S = cast<SelectInst>(I);
    if (!S->condition()->getType()->isBool())
      report(I, "select condition is not i1");
    if (S->trueValue()->getType() != S->falseValue()->getType() ||
        S->trueValue()->getType() != S->getType())
      report(I, "select arm type mismatch");
    break;
  }
  case Opcode::Phi:
    // A phi with no edges has no value to produce — it slips through the
    // edge/predecessor cross-check in blocks with no predecessors
    // (unreachable code), so reject it explicitly.
    if (cast<PhiNode>(I)->getNumIncoming() == 0)
      report(I, "phi has no incoming edges");
    for (unsigned J = 0, E = cast<PhiNode>(I)->getNumIncoming(); J != E; ++J)
      if (cast<PhiNode>(I)->getIncomingValue(J)->getType() != I->getType())
        report(I, "phi incoming value type mismatch");
    break;
  case Opcode::Load: {
    const auto *PT = dyn_cast<PointerType>(I->getOperand(0)->getType());
    if (!PT)
      report(I, "load from non-pointer");
    else if (PT->pointee() != I->getType())
      report(I, "load type does not match pointee type");
    break;
  }
  case Opcode::Store: {
    const auto *PT = dyn_cast<PointerType>(I->getOperand(1)->getType());
    if (!PT)
      report(I, "store to non-pointer");
    else if (PT->pointee() != I->getOperand(0)->getType())
      report(I, "stored type does not match pointee type");
    // Stores produce no value; a use of one would read garbage.
    if (I->hasUses())
      report(I, "store result has uses");
    break;
  }
  case Opcode::GEP:
    if (!isa<PointerType>(I->getOperand(0)->getType()))
      report(I, "gep base is not a pointer");
    if (!I->getOperand(1)->getType()->isInteger())
      report(I, "gep index is not an integer");
    break;
  case Opcode::ExtractElement: {
    const auto *VT = dyn_cast<VectorType>(I->getOperand(0)->getType());
    if (!VT)
      report(I, "extractelement from non-vector");
    else if (cast<ExtractElementInst>(I)->index() >= VT->count())
      report(I, "extractelement index out of range");
    break;
  }
  case Opcode::InsertElement: {
    const auto *VT = dyn_cast<VectorType>(I->getOperand(0)->getType());
    if (!VT) {
      report(I, "insertelement into non-vector");
      break;
    }
    if (cast<InsertElementInst>(I)->index() >= VT->count())
      report(I, "insertelement index out of range");
    if (I->getOperand(1)->getType() != VT->element())
      report(I, "insertelement element type mismatch");
    break;
  }
  case Opcode::Call: {
    const auto *C = cast<CallInst>(I);
    const auto &Params = C->callee()->fnType()->params();
    if (C->getNumArgs() != Params.size()) {
      report(I, "call argument count mismatch");
      break;
    }
    for (unsigned J = 0; J != Params.size(); ++J)
      if (C->getArg(J)->getType() != Params[J])
        report(I, "call argument type mismatch");
    break;
  }
  case Opcode::Br:
    if (cast<BranchInst>(I)->isConditional() &&
        !cast<BranchInst>(I)->condition()->getType()->isBool())
      report(I, "branch condition is not i1");
    break;
  case Opcode::Ret: {
    const auto *R = cast<ReturnInst>(I);
    Type *Expected = I->getFunction()->returnType();
    if (R->hasValue() ? R->value()->getType() != Expected
                      : !Expected->isVoid())
      report(I, "return type mismatch");
    break;
  }
  case Opcode::Freeze:
    if (I->getOperand(0)->getType() != I->getType())
      report(I, "freeze type mismatch");
    break;
  case Opcode::Alloca:
  case Opcode::Switch:
  case Opcode::Unreachable:
  case Opcode::Trap:
    break;
  }
}

void FunctionVerifier::checkDominance() {
  // Reuse the caller's (analysis-cache) dominator tree when provided; it is
  // only trusted here because the structural checks above already passed.
  std::unique_ptr<DominatorTree> Owned;
  if (!CachedDT)
    Owned = std::make_unique<DominatorTree>(F);
  const DominatorTree &DT = CachedDT ? *CachedDT : *Owned;
  for (BasicBlock *BB : F) {
    if (!DT.isReachable(BB))
      continue;
    for (Instruction *I : *BB) {
      for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op) {
        auto *Def = dyn_cast<Instruction>(I->getOperand(Op));
        if (!Def)
          continue;
        if (Def->getFunction() != &F) {
          report(I, "operand defined in another function");
          continue;
        }
        if (!DT.dominates(Def, I, Op))
          report(I, "operand %" + Def->getName() + " does not dominate use");
      }
    }
  }
}

} // namespace

bool frost::verifyFunction(Function &F, std::vector<std::string> *Errors,
                           const DominatorTree *DT) {
  std::vector<std::string> Local;
  FunctionVerifier V(F, Errors ? *Errors : Local, DT);
  return V.run();
}

bool frost::verifyModule(Module &M, std::vector<std::string> *Errors) {
  bool OK = true;
  for (Function *F : M.functions())
    OK &= verifyFunction(*F, Errors);
  return OK;
}
