//===- SelectionDAG.h - Per-block lowering DAG ------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SelectionDAG stage of the Section 6 lowering pipeline. Each basic
/// block is translated into a DAG whose nodes mirror the IR operations —
/// including a first-class FREEZE node, which the paper's prototype added —
/// plus target-preparation nodes introduced by *type legalization*: the
/// frost-risc target only computes on 32-bit registers, so sub-word values
/// are promoted, with explicit MaskTo (zero the high bits) and SExtFrom
/// (replicate the sign bit) nodes inserted where the operation is sensitive
/// to them. Legalization knows how to promote FREEZE ("we had to teach type
/// legalization to handle freeze instructions with operands of illegal
/// type").
///
//===----------------------------------------------------------------------===//

#ifndef FROST_CODEGEN_SELECTIONDAG_H
#define FROST_CODEGEN_SELECTIONDAG_H

#include "ir/Instruction.h"

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace frost {

class BasicBlock;

namespace codegen {

/// DAG node kinds. Value-producing kinds parallel the IR; the last group is
/// target-specific.
enum class SDKind {
  // Leaves.
  Constant,    ///< Imm holds the (zero-masked) value.
  Poison,      ///< Lowers to IMPLICIT_DEF: an undef register.
  CopyFromReg, ///< VReg holds a virtual register (argument, phi, or a value
               ///< defined in another block).
  GlobalAddr,  ///< Imm holds the global's assigned address.
  FrameAddr,   ///< Imm holds the frame slot index.
  // Mirrored IR operations.
  Add,
  Sub,
  Mul,
  UDiv,
  SDiv,
  URem,
  SRem,
  Shl,
  LShr,
  AShr,
  And,
  Or,
  Xor,
  Cmp,    ///< Pred holds the predicate.
  Select, ///< (cond, true, false); lowered branchlessly via masks.
  Freeze, ///< The new node: selected as a register COPY.
  Load,   ///< (addr); Imm holds the size in bytes.
  Store,  ///< (value, addr); Imm holds the size in bytes.
  // Legalization-inserted.
  MaskTo,   ///< (value); Imm holds the bit width to zero-mask to.
  SExtFrom, ///< (value); Imm holds the bit width to sign-extend from.
};

/// One DAG node.
struct SDNode {
  SDKind K;
  std::vector<SDNode *> Ops;
  int64_t Imm = 0;
  ICmpPred Pred = ICmpPred::EQ;
  unsigned VReg = 0;
  unsigned Width = 32; ///< Semantic width of the produced value.
  /// Virtual register this node's result must be copied into (cross-block
  /// uses / phis), 0 if none.
  unsigned OutReg = 0;
  /// Emission order hint (original IR order).
  unsigned Order = 0;
};

/// The DAG for one basic block, plus its side-effect roots in order.
class BlockDAG {
public:
  SDNode *node(SDKind K, std::vector<SDNode *> Ops = {}) {
    Nodes.emplace_back(new SDNode{K, std::move(Ops), 0, ICmpPred::EQ, 0, 32,
                                  0, NextOrder++});
    return Nodes.back().get();
  }

  /// All nodes in creation (topological) order.
  std::vector<SDNode *> nodes() const {
    std::vector<SDNode *> Out;
    for (auto &N : Nodes)
      Out.push_back(N.get());
    return Out;
  }

  /// Roots that must be emitted (stores, nodes with OutReg), in order.
  std::vector<SDNode *> Roots;

private:
  std::vector<std::unique_ptr<SDNode>> Nodes;
  unsigned NextOrder = 0;
};

/// Rewrites \p DAG so every arithmetic node is legal for the 32-bit target:
/// inserts MaskTo / SExtFrom where sub-word semantics demand it and widens
/// everything else in place. Returns the number of nodes inserted. When
/// \p Replaced is given, it receives the map from original nodes to their
/// masked replacements so callers can rebind external references.
unsigned legalizeDAG(BlockDAG &DAG,
                     std::map<SDNode *, SDNode *> *Replaced = nullptr);

} // namespace codegen
} // namespace frost

#endif // FROST_CODEGEN_SELECTIONDAG_H
