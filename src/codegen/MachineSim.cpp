//===- MachineSim.cpp - Cycle-counting machine simulator -----------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "codegen/MachineSim.h"

#include <map>

using namespace frost;
using namespace frost::codegen;

namespace {

/// Register file size for \p MF: physical registers, or one past the
/// largest virtual register mentioned when regalloc has not run yet. The
/// end-to-end validator simulates vreg MIR to tell an isel bug from a
/// regalloc bug.
unsigned regFileSize(const MachineFunction &MF) {
  unsigned Max = NumPhysRegs;
  for (const auto &BB : MF.Blocks)
    for (const MachineInst &I : BB->Insts)
      for (const MOperand &O : I.Ops)
        if (O.isReg() && O.Reg + 1 > Max)
          Max = O.Reg + 1;
  return Max;
}

struct Machine {
  const CompiledFunction &CF;
  std::vector<uint32_t> Regs;
  std::vector<uint8_t> Mem;
  uint32_t FrameBase;
  SimResult R;

  explicit Machine(const CompiledFunction &CF)
      : CF(CF), Regs(regFileSize(CF.MF), 0) {
    // Memory: [0, MemoryEnd) globals, then the frame slots.
    FrameBase = CF.MemoryEnd;
    uint32_t FrameBytes = 0;
    for (unsigned Slot : CF.MF.FrameSlots)
      FrameBytes += (Slot + 3) & ~3u;
    Mem.assign(FrameBase + FrameBytes + 64, 0);
  }

  uint32_t frameAddr(unsigned Slot) const {
    uint32_t Off = 0;
    for (unsigned I = 0; I != Slot; ++I)
      Off += (CF.MF.FrameSlots[I] + 3) & ~3u;
    return FrameBase + Off;
  }

  bool validRange(uint32_t Addr, unsigned Bytes) const {
    return Addr + Bytes <= Mem.size() && Addr + Bytes >= Addr;
  }

  uint32_t loadMem(uint32_t Addr, unsigned Bytes) const {
    uint32_t V = 0;
    for (unsigned I = 0; I != Bytes; ++I)
      V |= static_cast<uint32_t>(Mem[Addr + I]) << (8 * I);
    return V;
  }
  void storeMem(uint32_t Addr, unsigned Bytes, uint32_t V) {
    for (unsigned I = 0; I != Bytes; ++I)
      Mem[Addr + I] = static_cast<uint8_t>(V >> (8 * I));
  }
};

uint64_t opCycles(MOp Op, bool Taken) {
  switch (Op) {
  case MOp::MUL:
    return 3;
  case MOp::DIVU:
  case MOp::DIVS:
  case MOp::REMU:
  case MOp::REMS:
    return 12;
  case MOp::LOAD4:
  case MOp::STORE4:
    return 2;
  case MOp::LOAD1:
  case MOp::LOAD2:
  case MOp::STORE1:
  case MOp::STORE2:
    return 3;
  case MOp::BNZ:
    return Taken ? 2 : 1;
  default:
    return 1;
  }
}

} // namespace

SimResult codegen::simulate(const CompiledFunction &CF,
                            const std::vector<uint32_t> &Args,
                            uint64_t MaxSteps) {
  SimOptions Opts;
  Opts.MaxSteps = MaxSteps;
  return simulate(CF, Args, Opts);
}

SimResult codegen::simulate(const CompiledFunction &CF,
                            const std::vector<uint32_t> &Args,
                            const SimOptions &Opts) {
  Machine M(CF);
  SimResult &R = M.R;

  if (Args.size() != CF.ArgWidths.size()) {
    R.Error = "argument count mismatch";
    return R;
  }
  // Arguments arrive in their frame slots, masked to their widths
  // (zero-extended representation).
  for (unsigned I = 0; I != Args.size(); ++I) {
    uint32_t Mask = CF.ArgWidths[I] >= 32
                        ? 0xFFFFFFFFu
                        : ((1u << CF.ArgWidths[I]) - 1);
    M.storeMem(M.frameAddr(I), 4, Args[I] & Mask);
  }

  if (CF.MF.Blocks.empty()) {
    R.Error = "empty function";
    return R;
  }

  const MachineBasicBlock *BB = CF.MF.Blocks.front().get();
  size_t PC = 0;

  auto RegOrFrame = [&](const MOperand &O) -> uint32_t {
    if (O.isReg())
      return M.Regs[O.Reg];
    return M.frameAddr(O.Frame);
  };

  while (true) {
    if (R.Instructions++ >= Opts.MaxSteps) {
      R.Error = "step limit exceeded";
      return R;
    }
    if (PC >= BB->Insts.size()) {
      R.Error = "fell off the end of block " + BB->Name;
      return R;
    }
    const MachineInst &I = BB->Insts[PC];
    bool Taken = false;
    uint32_t A, B;

    switch (I.Op) {
    case MOp::ADD:
    case MOp::SUB:
    case MOp::MUL:
    case MOp::DIVU:
    case MOp::DIVS:
    case MOp::REMU:
    case MOp::REMS:
    case MOp::SHL:
    case MOp::SHRL:
    case MOp::SHRA:
    case MOp::AND:
    case MOp::OR:
    case MOp::XOR:
    case MOp::CMPEQ:
    case MOp::CMPNE:
    case MOp::CMPULT:
    case MOp::CMPULE:
    case MOp::CMPSLT:
    case MOp::CMPSLE: {
      A = M.Regs[I.Ops[1].Reg];
      B = M.Regs[I.Ops[2].Reg];
      uint32_t V = 0;
      int32_t SA = static_cast<int32_t>(A), SB = static_cast<int32_t>(B);
      switch (I.Op) {
      case MOp::ADD:
        V = A + B;
        break;
      case MOp::SUB:
        V = A - B;
        break;
      case MOp::MUL:
        V = A * B;
        break;
      case MOp::DIVU:
        V = B ? A / B : 0xDEADu; // Hardware-defined garbage on /0.
        break;
      case MOp::DIVS:
        V = (B && !(SA == INT32_MIN && SB == -1))
                ? static_cast<uint32_t>(SA / SB)
                : 0xDEADu;
        break;
      case MOp::REMU:
        V = B ? A % B : 0xDEADu;
        break;
      case MOp::REMS:
        V = (B && !(SA == INT32_MIN && SB == -1))
                ? static_cast<uint32_t>(SA % SB)
                : 0xDEADu;
        break;
      case MOp::SHL:
        V = A << (B & 31);
        break;
      case MOp::SHRL:
        V = A >> (B & 31);
        break;
      case MOp::SHRA:
        V = static_cast<uint32_t>(SA >> (B & 31));
        break;
      case MOp::AND:
        V = A & B;
        break;
      case MOp::OR:
        V = A | B;
        break;
      case MOp::XOR:
        V = A ^ B;
        break;
      case MOp::CMPEQ:
        V = A == B;
        break;
      case MOp::CMPNE:
        V = A != B;
        break;
      case MOp::CMPULT:
        V = A < B;
        break;
      case MOp::CMPULE:
        V = A <= B;
        break;
      case MOp::CMPSLT:
        V = SA < SB;
        break;
      case MOp::CMPSLE:
        V = SA <= SB;
        break;
      default:
        break;
      }
      M.Regs[I.Ops[0].Reg] = V;
      break;
    }
    case MOp::ADDI:
      M.Regs[I.Ops[0].Reg] =
          M.Regs[I.Ops[1].Reg] + static_cast<uint32_t>(I.Ops[2].Imm);
      break;
    case MOp::ANDI:
      M.Regs[I.Ops[0].Reg] =
          M.Regs[I.Ops[1].Reg] & static_cast<uint32_t>(I.Ops[2].Imm);
      break;
    case MOp::ORI:
      M.Regs[I.Ops[0].Reg] =
          M.Regs[I.Ops[1].Reg] | static_cast<uint32_t>(I.Ops[2].Imm);
      break;
    case MOp::XORI:
      M.Regs[I.Ops[0].Reg] =
          M.Regs[I.Ops[1].Reg] ^ static_cast<uint32_t>(I.Ops[2].Imm);
      break;
    case MOp::SHLI:
      M.Regs[I.Ops[0].Reg] = M.Regs[I.Ops[1].Reg]
                             << (I.Ops[2].Imm & 31);
      break;
    case MOp::SHRLI:
      M.Regs[I.Ops[0].Reg] = M.Regs[I.Ops[1].Reg] >> (I.Ops[2].Imm & 31);
      break;
    case MOp::SHRAI:
      M.Regs[I.Ops[0].Reg] = static_cast<uint32_t>(
          static_cast<int32_t>(M.Regs[I.Ops[1].Reg]) >> (I.Ops[2].Imm & 31));
      break;
    case MOp::LI:
      M.Regs[I.Ops[0].Reg] = static_cast<uint32_t>(I.Ops[1].Imm);
      break;
    case MOp::COPY:
      M.Regs[I.Ops[0].Reg] = M.Regs[I.Ops[1].Reg];
      break;
    case MOp::IMPLICIT_DEF:
      // An undef register: the simulator picks a recognizable garbage
      // value (configurable, optionally varying per execution so distinct
      // undef registers read differently). A correct compilation never
      // lets the choice influence defined results.
      M.Regs[I.Ops[0].Reg] =
          Opts.UndefFill +
          static_cast<uint32_t>(R.ImplicitDefsExecuted) * Opts.UndefStep;
      ++R.ImplicitDefsExecuted;
      break;
    case MOp::FRAMEADDR:
      M.Regs[I.Ops[0].Reg] = M.frameAddr(I.Ops[1].Frame);
      break;
    case MOp::LOAD1:
    case MOp::LOAD2:
    case MOp::LOAD4: {
      unsigned Bytes = I.Op == MOp::LOAD1 ? 1 : I.Op == MOp::LOAD2 ? 2 : 4;
      uint32_t Addr =
          RegOrFrame(I.Ops[1]) + static_cast<uint32_t>(I.Ops[2].Imm);
      if (!M.validRange(Addr, Bytes)) {
        R.Error = "out-of-range load at " + std::to_string(Addr);
        return R;
      }
      M.Regs[I.Ops[0].Reg] = M.loadMem(Addr, Bytes);
      break;
    }
    case MOp::STORE1:
    case MOp::STORE2:
    case MOp::STORE4: {
      unsigned Bytes = I.Op == MOp::STORE1 ? 1 : I.Op == MOp::STORE2 ? 2 : 4;
      uint32_t Addr =
          RegOrFrame(I.Ops[1]) + static_cast<uint32_t>(I.Ops[2].Imm);
      if (!M.validRange(Addr, Bytes)) {
        R.Error = "out-of-range store at " + std::to_string(Addr);
        return R;
      }
      M.storeMem(Addr, Bytes, M.Regs[I.Ops[0].Reg]);
      break;
    }
    case MOp::JMP:
      R.Cycles += opCycles(I.Op, true);
      BB = I.Ops[0].MBB;
      PC = 0;
      continue;
    case MOp::BNZ:
      Taken = M.Regs[I.Ops[0].Reg] != 0;
      R.Cycles += opCycles(I.Op, Taken);
      if (Taken) {
        BB = I.Ops[1].MBB;
        PC = 0;
        continue;
      }
      ++PC;
      continue;
    case MOp::RET:
      R.Cycles += 1;
      R.Ok = true;
      R.ReturnValue = I.Ops.empty() ? 0 : M.Regs[I.Ops[0].Reg];
      return R;
    case MOp::TRAP:
      R.Cycles += 1;
      R.Trapped = true;
      R.TrapId = int(I.Ops[0].Imm);
      return R;
    }

    R.Cycles += opCycles(I.Op, Taken);
    ++PC;
  }
}
