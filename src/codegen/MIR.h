//===- MIR.h - Machine IR for the frost-risc target -------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MachineInstruction layer of the paper's Section 6 lowering story: a
/// 32-bit RISC-like target with 12 general-purpose registers. There is no
/// poison at this level — instead there are *undef registers*
/// (IMPLICIT_DEF), which may read differently at each use, exactly like
/// LLVM's MI level; taking a COPY of one pins the value, which is why
/// freeze lowers to a register copy.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_CODEGEN_MIR_H
#define FROST_CODEGEN_MIR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace frost {
namespace codegen {

/// frost-risc machine opcodes.
enum class MOp {
  // Three-address register arithmetic: rd, ra, rb.
  ADD,
  SUB,
  MUL,
  DIVU,
  DIVS,
  REMU,
  REMS,
  SHL,
  SHRL, // Logical right shift.
  SHRA, // Arithmetic right shift.
  AND,
  OR,
  XOR,
  // Register-immediate forms: rd, ra, imm.
  ADDI,
  ANDI,
  ORI,
  XORI,
  SHLI,
  SHRLI,
  SHRAI,
  // Compares producing 0/1: rd, ra, rb (one per predicate).
  CMPEQ,
  CMPNE,
  CMPULT,
  CMPULE,
  CMPSLT,
  CMPSLE,
  // Data movement.
  LI,           // rd, imm32.
  COPY,         // rd, ra — also the lowering of freeze.
  IMPLICIT_DEF, // rd — an undef register (lowering of poison).
  // Memory: rd/rs, base reg, imm offset; size in bytes is in the opcode.
  LOAD1,
  LOAD2,
  LOAD4,
  STORE1,
  STORE2,
  STORE4,
  FRAMEADDR, // rd, frame-slot index: materialises a stack address.
  // Control flow.
  JMP,  // label.
  BNZ,  // rc, label: branch if rc != 0.
  RET,  // optional value reg.
  TRAP, // imm trap id: stops the machine with a sanitizer report.
};

const char *mopName(MOp Op);

/// Number of allocatable physical registers (r0..r11).
constexpr unsigned NumPhysRegs = 12;
/// Virtual register numbers start here; anything below is physical.
constexpr unsigned FirstVirtReg = 64;

class MachineBasicBlock;

/// One operand: register, immediate, block label, or frame slot.
struct MOperand {
  enum class Kind { Reg, Imm, Label, Frame };
  Kind K = Kind::Imm;
  unsigned Reg = 0;
  int64_t Imm = 0;
  MachineBasicBlock *MBB = nullptr;
  unsigned Frame = 0;

  static MOperand reg(unsigned R) {
    MOperand O;
    O.K = Kind::Reg;
    O.Reg = R;
    return O;
  }
  static MOperand imm(int64_t V) {
    MOperand O;
    O.K = Kind::Imm;
    O.Imm = V;
    return O;
  }
  static MOperand label(MachineBasicBlock *B) {
    MOperand O;
    O.K = Kind::Label;
    O.MBB = B;
    return O;
  }
  static MOperand frame(unsigned Slot) {
    MOperand O;
    O.K = Kind::Frame;
    O.Frame = Slot;
    return O;
  }

  bool isReg() const { return K == Kind::Reg; }
};

/// One machine instruction.
struct MachineInst {
  MOp Op;
  std::vector<MOperand> Ops;

  MachineInst(MOp Op, std::vector<MOperand> Ops)
      : Op(Op), Ops(std::move(Ops)) {}

  /// Index of the defined register operand, or -1 (stores, branches, ret).
  int defIndex() const;
  bool isTerminator() const {
    return Op == MOp::JMP || Op == MOp::BNZ || Op == MOp::RET ||
           Op == MOp::TRAP;
  }

  std::string str() const;
};

/// A machine basic block.
class MachineBasicBlock {
public:
  explicit MachineBasicBlock(std::string Name) : Name(std::move(Name)) {}

  std::string Name;
  std::vector<MachineInst> Insts;
  std::vector<MachineBasicBlock *> Succs;

  void push(MOp Op, std::vector<MOperand> Ops) {
    Insts.emplace_back(Op, std::move(Ops));
  }
};

/// A compiled function.
class MachineFunction {
public:
  explicit MachineFunction(std::string Name) : Name(std::move(Name)) {}
  MachineFunction(MachineFunction &&) = default;
  MachineFunction &operator=(MachineFunction &&) = default;

  std::string Name;
  std::vector<std::unique_ptr<MachineBasicBlock>> Blocks;
  unsigned NextVReg = FirstVirtReg;
  /// Frame slots (from allocas and spills), in bytes each.
  std::vector<unsigned> FrameSlots;
  unsigned NumArgs = 0;

  MachineBasicBlock *addBlock(const std::string &BName) {
    Blocks.emplace_back(new MachineBasicBlock(BName));
    return Blocks.back().get();
  }
  unsigned newVReg() { return NextVReg++; }
  unsigned newFrameSlot(unsigned Bytes) {
    FrameSlots.push_back(Bytes);
    return FrameSlots.size() - 1;
  }

  unsigned instructionCount() const {
    unsigned N = 0;
    for (const auto &B : Blocks)
      N += B->Insts.size();
    return N;
  }

  /// Renders the function as textual assembly.
  std::string str() const;
};

} // namespace codegen
} // namespace frost

#endif // FROST_CODEGEN_MIR_H
