//===- RegAlloc.h - Linear-scan register allocation -------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Poletto-style linear scan over live intervals computed from per-block
/// liveness. Spills go to frame slots, with two reserved scratch registers
/// for spill code. Freeze lowers to COPYs that this allocator does *not*
/// coalesce — matching the paper's note that the prototype's freeze
/// lowering "is currently suboptimal" and may cost a register; the run-time
/// benchmarks measure exactly this effect.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_CODEGEN_REGALLOC_H
#define FROST_CODEGEN_REGALLOC_H

namespace frost {
namespace codegen {

class MachineFunction;

struct RegAllocResult {
  unsigned Spills = 0;        ///< Spill stores inserted.
  unsigned Reloads = 0;       ///< Reload loads inserted.
  unsigned SpilledRegs = 0;   ///< Virtual registers assigned to stack slots.
  unsigned PeakPressure = 0;  ///< Maximum simultaneously live intervals.
};

/// Rewrites \p MF in place so only physical registers remain.
RegAllocResult runLinearScan(MachineFunction &MF);

} // namespace codegen
} // namespace frost

#endif // FROST_CODEGEN_REGALLOC_H
