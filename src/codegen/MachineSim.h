//===- MachineSim.h - Cycle-counting machine simulator ----------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes compiled frost-risc code with a deterministic cycle model. This
/// is the measurement substrate for the paper's Section 7 run-time
/// experiments: where the paper ran SPEC binaries on two Intel machines, we
/// run the benchmark kernels on this simulator, so relative cycle deltas
/// between the legacy and freeze pipelines are exact and reproducible.
///
/// Cycle model: ALU/compare/copy/li 1; mul 3; div/rem 12; load/store 2
/// (+1 for sub-word); taken branches 2, untaken 1; jmp 1.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_CODEGEN_MACHINESIM_H
#define FROST_CODEGEN_MACHINESIM_H

#include "codegen/Codegen.h"

#include <cstdint>
#include <vector>

namespace frost {
namespace codegen {

/// Result of one simulated run.
struct SimResult {
  bool Ok = false;
  uint32_t ReturnValue = 0;
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  /// Dynamic executions of IMPLICIT_DEF (undef-register definitions). The
  /// end-to-end validator uses this to decide whether a function has any
  /// machine-level nondeterminism worth re-running under other fills.
  uint64_t ImplicitDefsExecuted = 0;
  /// Set when the run executed a TRAP (a defined stop, not an error): the
  /// machine analogue of the IR `trap <id>` terminator. Ok stays false and
  /// TrapId carries the sanitizer check kind.
  bool Trapped = false;
  int TrapId = -1;
  std::string Error;
};

/// Knobs for one simulated run.
struct SimOptions {
  uint64_t MaxSteps = 50u * 1000u * 1000u; ///< Bounds runaway loops.
  /// Value the first executed IMPLICIT_DEF writes. An undef register may
  /// hold *anything*; a correct compilation never lets the choice influence
  /// defined results, so the validator sweeps several fills.
  uint32_t UndefFill = 0xBAADF00Du;
  /// Added to the fill after every executed IMPLICIT_DEF, so successive
  /// undef registers (e.g. per loop iteration) read differently. A nonzero
  /// step catches code that re-materialises an undef register where a
  /// frozen (pinned) value was required.
  uint32_t UndefStep = 0;
};

/// Runs \p CF on \p Args (masked to the declared argument widths). Globals
/// start zero-initialised. Works on both fully allocated machine code and
/// virtual-register MIR (CodegenOptions::RunRegAlloc = false), which is how
/// the end-to-end validator attributes a failure to isel vs regalloc.
SimResult simulate(const CompiledFunction &CF,
                   const std::vector<uint32_t> &Args,
                   const SimOptions &Opts);

/// Convenience overload with default fills.
SimResult simulate(const CompiledFunction &CF,
                   const std::vector<uint32_t> &Args,
                   uint64_t MaxSteps = 50u * 1000u * 1000u);

} // namespace codegen
} // namespace frost

#endif // FROST_CODEGEN_MACHINESIM_H
