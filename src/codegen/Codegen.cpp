//===- Codegen.cpp - IR to machine code pipeline -------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"

#include "codegen/RegAlloc.h"
#include "codegen/SelectionDAG.h"
#include "ir/Context.h"
#include "ir/Function.h"
#include "ir/Instructions.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <set>

using namespace frost;
using namespace frost::codegen;

//===----------------------------------------------------------------------===//
// Type legalization
//===----------------------------------------------------------------------===//

namespace {

bool producesValue(SDKind K) { return K != SDKind::Store; }

bool isSignSensitive(const SDNode *N) {
  switch (N->K) {
  case SDKind::SDiv:
  case SDKind::SRem:
    return true;
  case SDKind::Cmp:
    return N->Pred == ICmpPred::SGT || N->Pred == ICmpPred::SGE ||
           N->Pred == ICmpPred::SLT || N->Pred == ICmpPred::SLE;
  default:
    return false;
  }
}

/// Operations whose 32-bit result can have garbage above the semantic
/// width, requiring a MaskTo to restore the zero-extended representation.
/// Freeze is on this list because its operand may be a sub-word undef
/// register (IMPLICIT_DEF), whose garbage is *not* in zero-extended form;
/// the frozen result must be a value the i<W> type can actually hold, or
/// downstream ops that rely on the representation invariant (e.g. lshr)
/// compute results no IR-level choice of the frozen value can produce.
bool needsResultMask(SDKind K) {
  switch (K) {
  case SDKind::Add:
  case SDKind::Sub:
  case SDKind::Mul:
  case SDKind::Shl:
  case SDKind::SDiv:
  case SDKind::SRem:
  case SDKind::AShr:
  case SDKind::Freeze:
    return true;
  default:
    return false;
  }
}

} // namespace

unsigned codegen::legalizeDAG(BlockDAG &DAG,
                              std::map<SDNode *, SDNode *> *Replaced) {
  unsigned Inserted = 0;
  std::map<SDNode *, SDNode *> Replace;

  for (SDNode *N : DAG.nodes()) {
    if (Replace.count(N))
      continue; // A node we inserted ourselves.
    // Promote sign-sensitive operands of sub-word operations.
    if (N->Width < 32 && (isSignSensitive(N) || N->K == SDKind::AShr)) {
      unsigned LastOp = N->K == SDKind::AShr ? 1 : N->Ops.size();
      for (unsigned I = 0; I != LastOp; ++I) {
        SDNode *Ext = DAG.node(SDKind::SExtFrom, {N->Ops[I]});
        Ext->Imm = N->Width;
        Ext->Width = 32;
        Replace[Ext] = Ext; // Marker: do not process again.
        N->Ops[I] = Ext;
        ++Inserted;
      }
    }
    // Sub-word results that may violate the zero-extended representation
    // invariant get re-masked. This includes freeze — the "teach type
    // legalization about freeze" change reduced to its essence: the COPY
    // pins whatever bits the source register holds, and the mask folds
    // that pinned value into the i<W> domain.
    if (N->Width < 32 && needsResultMask(N->K) && producesValue(N->K)) {
      SDNode *Mask = DAG.node(SDKind::MaskTo, {N});
      Mask->Imm = N->Width;
      Mask->Width = N->Width;
      Mask->OutReg = N->OutReg;
      N->OutReg = 0;
      Replace[N] = Mask;
      ++Inserted;
    }
  }

  if (Replace.empty())
    return Inserted;
  for (SDNode *N : DAG.nodes()) {
    auto Self = Replace.find(N);
    for (SDNode *&Op : N->Ops) {
      auto It = Replace.find(Op);
      if (It == Replace.end() || It->second == It->first)
        continue;
      // The mask node itself keeps the raw value as its operand.
      if (Self != Replace.end() && Self->second == N && Op == N)
        continue;
      if (N->K == SDKind::MaskTo && It->second == N)
        continue;
      Op = It->second;
    }
  }
  for (SDNode *&Root : DAG.Roots) {
    auto It = Replace.find(Root);
    if (It != Replace.end() && It->second != It->first)
      Root = It->second;
  }
  if (Replaced)
    for (auto &[From, To] : Replace)
      if (From != To)
        (*Replaced)[From] = To;
  return Inserted;
}

//===----------------------------------------------------------------------===//
// Function lowering
//===----------------------------------------------------------------------===//

namespace {

class FunctionLowering {
public:
  FunctionLowering(Function &F, const CodegenOptions &Opts)
      : F(F), Opts(Opts) {}

  CompiledFunction run();

private:
  Function &F;
  const CodegenOptions &Opts;
  CompiledFunction Out;
  MachineFunction *MF = nullptr;

  std::map<const Value *, unsigned> ValueVReg;     // Cross-block values.
  std::map<const AllocaInst *, unsigned> AllocaSlot;
  std::map<const BasicBlock *, MachineBasicBlock *> BlockMap;

  // Per-block state.
  std::map<const Value *, SDNode *> NodeFor;
  std::map<const SDNode *, unsigned> NodeReg;
  MachineBasicBlock *MBB = nullptr;

  unsigned vregFor(const Value *V) {
    auto It = ValueVReg.find(V);
    if (It != ValueVReg.end())
      return It->second;
    unsigned R = MF->newVReg();
    ValueVReg[V] = R;
    return R;
  }

  static unsigned typeWidth(const Type *Ty) {
    unsigned W = Ty->bitWidth();
    if (W > 32)
      frost_unreachable("frost-risc supports at most 32-bit values");
    return W;
  }
  static unsigned sizeBytes(const Type *Ty) {
    unsigned B = (typeWidth(Ty) + 7) / 8;
    if (B == 3)
      frost_unreachable("unsupported 3-byte memory access width");
    return B;
  }

  void assignCrossBlockRegs();
  void layoutGlobals();
  void lowerBlock(BasicBlock *BB, BlockDAG &DAG);
  SDNode *buildNode(BlockDAG &DAG, Instruction *I);
  SDNode *operandNode(BlockDAG &DAG, Value *V);
  void emitDAG(BlockDAG &DAG);
  unsigned emitNode(SDNode *N);
  void emitPhiCopiesAndTerminator(BasicBlock *BB, BlockDAG &DAG);
};

void FunctionLowering::layoutGlobals() {
  std::vector<const GlobalVariable *> Globals;
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op)
        if (auto *G = dyn_cast<GlobalVariable>(I->getOperand(Op)))
          if (!Out.GlobalAddrs.count(G))
            Globals.push_back(G);
  std::sort(Globals.begin(), Globals.end(),
            [](const GlobalVariable *A, const GlobalVariable *B) {
              return A->getName() < B->getName();
            });
  uint32_t Addr = 0x100;
  for (const GlobalVariable *G : Globals) {
    Out.GlobalAddrs[G] = Addr;
    Addr += (G->sizeBytes() + 15) & ~15u;
  }
  Out.MemoryEnd = Addr;
}

void FunctionLowering::assignCrossBlockRegs() {
  for (unsigned I = 0; I != F.getNumArgs(); ++I)
    vregFor(F.arg(I));
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB) {
      if (isa<PhiNode>(I)) {
        vregFor(I);
        continue;
      }
      for (const Use *U : I->uses()) {
        auto *UserInst = cast<Instruction>(U->getUser());
        if (UserInst->getParent() != BB || isa<PhiNode>(UserInst)) {
          vregFor(I);
          break;
        }
      }
    }
}

SDNode *FunctionLowering::operandNode(BlockDAG &DAG, Value *V) {
  auto It = NodeFor.find(V);
  if (It != NodeFor.end())
    return It->second;

  SDNode *N = nullptr;
  if (const auto *C = dyn_cast<ConstantInt>(V)) {
    N = DAG.node(SDKind::Constant);
    N->Imm = static_cast<int64_t>(C->value().zext());
    N->Width = typeWidth(C->getType());
  } else if (isa<PoisonValue>(V) || isa<UndefValue>(V)) {
    // At this level both lower to an undef register.
    N = DAG.node(SDKind::Poison);
    N->Width = typeWidth(V->getType());
  } else if (const auto *G = dyn_cast<GlobalVariable>(V)) {
    N = DAG.node(SDKind::GlobalAddr);
    N->Imm = Out.GlobalAddrs.at(G);
  } else {
    // Argument, phi, or an instruction from another block: already has a
    // virtual register.
    assert(ValueVReg.count(V) && "cross-block value without a register");
    N = DAG.node(SDKind::CopyFromReg);
    N->VReg = ValueVReg[V];
    N->Width = typeWidth(V->getType());
  }
  NodeFor[V] = N;
  return N;
}

SDNode *FunctionLowering::buildNode(BlockDAG &DAG, Instruction *I) {
  switch (I->getOpcode()) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::UDiv:
  case Opcode::SDiv:
  case Opcode::URem:
  case Opcode::SRem:
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor: {
    static const std::pair<Opcode, SDKind> Map[] = {
        {Opcode::Add, SDKind::Add},   {Opcode::Sub, SDKind::Sub},
        {Opcode::Mul, SDKind::Mul},   {Opcode::UDiv, SDKind::UDiv},
        {Opcode::SDiv, SDKind::SDiv}, {Opcode::URem, SDKind::URem},
        {Opcode::SRem, SDKind::SRem}, {Opcode::Shl, SDKind::Shl},
        {Opcode::LShr, SDKind::LShr}, {Opcode::AShr, SDKind::AShr},
        {Opcode::And, SDKind::And},   {Opcode::Or, SDKind::Or},
        {Opcode::Xor, SDKind::Xor}};
    SDKind K = SDKind::Add;
    for (auto &[Op, SK] : Map)
      if (Op == I->getOpcode())
        K = SK;
    SDNode *N = DAG.node(K, {operandNode(DAG, I->getOperand(0)),
                             operandNode(DAG, I->getOperand(1))});
    N->Width = typeWidth(I->getType());
    return N;
  }
  case Opcode::ICmp: {
    auto *C = cast<ICmpInst>(I);
    SDNode *N = DAG.node(SDKind::Cmp, {operandNode(DAG, C->lhs()),
                                       operandNode(DAG, C->rhs())});
    N->Pred = C->pred();
    // Comparison operands keep the *operand* width for legalization.
    N->Width = typeWidth(C->lhs()->getType());
    SDNode *Result = N;
    Result->Width = typeWidth(C->lhs()->getType());
    return Result;
  }
  case Opcode::Select: {
    SDNode *N = DAG.node(SDKind::Select,
                         {operandNode(DAG, I->getOperand(0)),
                          operandNode(DAG, I->getOperand(1)),
                          operandNode(DAG, I->getOperand(2))});
    N->Width = typeWidth(I->getType());
    return N;
  }
  case Opcode::Freeze: {
    SDNode *N = DAG.node(SDKind::Freeze, {operandNode(DAG, I->getOperand(0))});
    N->Width = typeWidth(I->getType());
    return N;
  }
  case Opcode::ZExt:
    // The zero-extended representation is unchanged; alias the operand.
    return operandNode(DAG, I->getOperand(0));
  case Opcode::Trunc: {
    SDNode *N = DAG.node(SDKind::MaskTo, {operandNode(DAG, I->getOperand(0))});
    N->Imm = typeWidth(I->getType());
    N->Width = typeWidth(I->getType());
    return N;
  }
  case Opcode::SExt: {
    unsigned SrcW = typeWidth(I->getOperand(0)->getType());
    unsigned DstW = typeWidth(I->getType());
    SDNode *Ext =
        DAG.node(SDKind::SExtFrom, {operandNode(DAG, I->getOperand(0))});
    Ext->Imm = SrcW;
    Ext->Width = 32;
    if (DstW == 32)
      return Ext;
    SDNode *Mask = DAG.node(SDKind::MaskTo, {Ext});
    Mask->Imm = DstW;
    Mask->Width = DstW;
    return Mask;
  }
  case Opcode::BitCast:
    if (I->getType()->isVector() || I->getOperand(0)->getType()->isVector())
      frost_unreachable("vector bitcast is not supported by frost-risc");
    return operandNode(DAG, I->getOperand(0));
  case Opcode::Alloca: {
    auto *A = cast<AllocaInst>(I);
    auto It = AllocaSlot.find(A);
    unsigned Slot;
    if (It != AllocaSlot.end()) {
      Slot = It->second;
    } else {
      Slot = MF->newFrameSlot((A->allocatedType()->bitWidth() + 7) / 8);
      AllocaSlot[A] = Slot;
    }
    SDNode *N = DAG.node(SDKind::FrameAddr);
    N->Imm = Slot;
    return N;
  }
  case Opcode::GEP: {
    auto *G = cast<GEPInst>(I);
    unsigned ElemBytes = (G->pointeeType()->bitWidth() + 7) / 8;
    SDNode *Idx = operandNode(DAG, G->index());
    unsigned IdxW = typeWidth(G->index()->getType());
    if (IdxW < 32) {
      SDNode *Ext = DAG.node(SDKind::SExtFrom, {Idx});
      Ext->Imm = IdxW;
      Ext->Width = 32;
      Idx = Ext;
    }
    SDNode *ByteOff = Idx;
    if (ElemBytes != 1) {
      SDNode *Sz = DAG.node(SDKind::Constant);
      Sz->Imm = ElemBytes;
      ByteOff = DAG.node(SDKind::Mul, {Idx, Sz});
    }
    SDNode *N =
        DAG.node(SDKind::Add, {operandNode(DAG, G->base()), ByteOff});
    N->Width = 32;
    return N;
  }
  case Opcode::Load: {
    SDNode *N = DAG.node(SDKind::Load, {operandNode(DAG, I->getOperand(0))});
    N->Imm = sizeBytes(I->getType());
    N->Width = typeWidth(I->getType());
    DAG.Roots.push_back(N); // Keep program order with stores.
    return N;
  }
  case Opcode::Store: {
    auto *S = cast<StoreInst>(I);
    SDNode *N = DAG.node(SDKind::Store, {operandNode(DAG, S->value()),
                                         operandNode(DAG, S->pointer())});
    N->Imm = sizeBytes(S->value()->getType());
    DAG.Roots.push_back(N);
    return N;
  }
  case Opcode::ExtractElement:
  case Opcode::InsertElement:
    frost_unreachable("vector operations are not supported by frost-risc");
  case Opcode::Call:
    frost_unreachable("calls are not supported by frost-risc (inline first)");
  default:
    frost_unreachable("unexpected instruction in block body");
  }
}

void FunctionLowering::lowerBlock(BasicBlock *BB, BlockDAG &DAG) {
  NodeFor.clear();
  NodeReg.clear();
  MBB = BlockMap.at(BB);

  for (Instruction *I : *BB) {
    if (isa<PhiNode>(I) || I->isTerminator())
      continue;
    SDNode *N = buildNode(DAG, I);
    NodeFor[I] = N;
    if (ValueVReg.count(I)) {
      N->OutReg = ValueVReg[I];
      DAG.Roots.push_back(N);
    }
  }

  std::map<SDNode *, SDNode *> Replaced;
  Out.Stats.LegalizeNodes += legalizeDAG(DAG, &Replaced);
  // Legalization may wrap the node bound to an IR value in a MaskTo;
  // rebind so terminators and phi copies see the masked value.
  for (auto &[V, N] : NodeFor) {
    auto It = Replaced.find(N);
    if (It != Replaced.end())
      NodeFor[V] = It->second;
  }
  emitDAG(DAG);
  emitPhiCopiesAndTerminator(BB, DAG);
}

unsigned FunctionLowering::emitNode(SDNode *N) {
  auto It = NodeReg.find(N);
  if (It != NodeReg.end())
    return It->second;

  // Emit operands first (skip for leaves).
  std::vector<unsigned> OpRegs;
  for (SDNode *Op : N->Ops)
    OpRegs.push_back(emitNode(Op));

  unsigned Rd = MF->newVReg();
  switch (N->K) {
  case SDKind::Constant:
  case SDKind::GlobalAddr:
    MBB->push(MOp::LI, {MOperand::reg(Rd), MOperand::imm(N->Imm)});
    break;
  case SDKind::Poison:
    MBB->push(MOp::IMPLICIT_DEF, {MOperand::reg(Rd)});
    ++Out.Stats.ImplicitDefs;
    break;
  case SDKind::CopyFromReg:
    // Use the virtual register directly; no copy needed.
    Rd = N->VReg;
    break;
  case SDKind::FrameAddr:
    MBB->push(MOp::FRAMEADDR, {MOperand::reg(Rd), MOperand::frame(N->Imm)});
    break;
  case SDKind::Freeze:
    // freeze -> register copy: all readers of Rd observe one value even if
    // the source register was IMPLICIT_DEF.
    MBB->push(MOp::COPY, {MOperand::reg(Rd), MOperand::reg(OpRegs[0])});
    ++Out.Stats.FreezeCopies;
    break;
  case SDKind::MaskTo:
    MBB->push(MOp::ANDI,
              {MOperand::reg(Rd), MOperand::reg(OpRegs[0]),
               MOperand::imm(static_cast<int64_t>(
                   N->Imm >= 32 ? 0xFFFFFFFFll
                                : ((1ll << N->Imm) - 1)))});
    break;
  case SDKind::SExtFrom: {
    unsigned Sh = 32 - static_cast<unsigned>(N->Imm);
    unsigned Tmp = MF->newVReg();
    MBB->push(MOp::SHLI, {MOperand::reg(Tmp), MOperand::reg(OpRegs[0]),
                          MOperand::imm(Sh)});
    MBB->push(MOp::SHRAI,
              {MOperand::reg(Rd), MOperand::reg(Tmp), MOperand::imm(Sh)});
    break;
  }
  case SDKind::Add:
  case SDKind::Sub:
  case SDKind::Mul:
  case SDKind::UDiv:
  case SDKind::SDiv:
  case SDKind::URem:
  case SDKind::SRem:
  case SDKind::Shl:
  case SDKind::LShr:
  case SDKind::AShr:
  case SDKind::And:
  case SDKind::Or:
  case SDKind::Xor: {
    // Simple strength reduction pattern: mul by a power-of-two constant
    // immediate becomes a shift.
    if (N->K == SDKind::Mul && N->Ops[1]->K == SDKind::Constant) {
      uint64_t C = static_cast<uint64_t>(N->Ops[1]->Imm);
      if (C != 0 && (C & (C - 1)) == 0) {
        unsigned Sh = 0;
        while (!((C >> Sh) & 1))
          ++Sh;
        MBB->push(MOp::SHLI, {MOperand::reg(Rd), MOperand::reg(OpRegs[0]),
                              MOperand::imm(Sh)});
        break;
      }
    }
    static const std::pair<SDKind, MOp> Map[] = {
        {SDKind::Add, MOp::ADD},   {SDKind::Sub, MOp::SUB},
        {SDKind::Mul, MOp::MUL},   {SDKind::UDiv, MOp::DIVU},
        {SDKind::SDiv, MOp::DIVS}, {SDKind::URem, MOp::REMU},
        {SDKind::SRem, MOp::REMS}, {SDKind::Shl, MOp::SHL},
        {SDKind::LShr, MOp::SHRL}, {SDKind::AShr, MOp::SHRA},
        {SDKind::And, MOp::AND},   {SDKind::Or, MOp::OR},
        {SDKind::Xor, MOp::XOR}};
    MOp Op = MOp::ADD;
    for (auto &[K, M] : Map)
      if (K == N->K)
        Op = M;
    MBB->push(Op, {MOperand::reg(Rd), MOperand::reg(OpRegs[0]),
                   MOperand::reg(OpRegs[1])});
    break;
  }
  case SDKind::Cmp: {
    ICmpPred P = N->Pred;
    unsigned A = OpRegs[0], B = OpRegs[1];
    // Canonicalise GT/GE to LT/LE with swapped operands.
    if (P == ICmpPred::UGT || P == ICmpPred::SGT || P == ICmpPred::UGE ||
        P == ICmpPred::SGE) {
      std::swap(A, B);
      P = swappedPred(P);
    }
    MOp Op;
    switch (P) {
    case ICmpPred::EQ:
      Op = MOp::CMPEQ;
      break;
    case ICmpPred::NE:
      Op = MOp::CMPNE;
      break;
    case ICmpPred::ULT:
      Op = MOp::CMPULT;
      break;
    case ICmpPred::ULE:
      Op = MOp::CMPULE;
      break;
    case ICmpPred::SLT:
      Op = MOp::CMPSLT;
      break;
    case ICmpPred::SLE:
      Op = MOp::CMPSLE;
      break;
    default:
      frost_unreachable("canonicalised predicate expected");
    }
    MBB->push(Op, {MOperand::reg(Rd), MOperand::reg(A), MOperand::reg(B)});
    break;
  }
  case SDKind::Select: {
    // Branchless select: res = f ^ ((t ^ f) & (0 - cond)).
    unsigned Zero = MF->newVReg();
    unsigned NegMask = MF->newVReg();
    unsigned TxF = MF->newVReg();
    unsigned Masked = MF->newVReg();
    MBB->push(MOp::LI, {MOperand::reg(Zero), MOperand::imm(0)});
    MBB->push(MOp::SUB, {MOperand::reg(NegMask), MOperand::reg(Zero),
                         MOperand::reg(OpRegs[0])});
    MBB->push(MOp::XOR, {MOperand::reg(TxF), MOperand::reg(OpRegs[1]),
                         MOperand::reg(OpRegs[2])});
    MBB->push(MOp::AND, {MOperand::reg(Masked), MOperand::reg(TxF),
                         MOperand::reg(NegMask)});
    MBB->push(MOp::XOR, {MOperand::reg(Rd), MOperand::reg(Masked),
                         MOperand::reg(OpRegs[2])});
    break;
  }
  case SDKind::Load: {
    MOp Op = N->Imm == 1 ? MOp::LOAD1 : N->Imm == 2 ? MOp::LOAD2 : MOp::LOAD4;
    MBB->push(Op, {MOperand::reg(Rd), MOperand::reg(OpRegs[0]),
                   MOperand::imm(0)});
    break;
  }
  case SDKind::Store: {
    MOp Op = N->Imm == 1 ? MOp::STORE1
                         : N->Imm == 2 ? MOp::STORE2 : MOp::STORE4;
    MBB->push(Op, {MOperand::reg(OpRegs[0]), MOperand::reg(OpRegs[1]),
                   MOperand::imm(0)});
    break;
  }
  }

  NodeReg[N] = Rd;
  if (N->OutReg)
    MBB->push(MOp::COPY, {MOperand::reg(N->OutReg), MOperand::reg(Rd)});
  return Rd;
}

void FunctionLowering::emitDAG(BlockDAG &DAG) {
  for (SDNode *Root : DAG.Roots)
    emitNode(Root);
}

void FunctionLowering::emitPhiCopiesAndTerminator(BasicBlock *BB,
                                                  BlockDAG &DAG) {
  (void)DAG;
  Instruction *T = BB->terminator();
  assert(T && "block must be terminated");

  // Parallel phi copies via temporaries (handles phi swaps).
  std::vector<std::pair<unsigned, unsigned>> Finals; // (phivreg, tmp).
  for (BasicBlock *Succ : BB->successors()) {
    for (PhiNode *P : Succ->phis()) {
      Value *In = P->getIncomingValueForBlock(BB);
      unsigned Tmp = MF->newVReg();
      unsigned SrcReg = 0;
      // Source register: either the value already has a node in this block
      // (its register), a cross-block vreg, or a constant materialised now.
      auto NIt = NodeFor.find(In);
      if (NIt != NodeFor.end()) {
        SrcReg = emitNode(NIt->second);
      } else if (ValueVReg.count(In)) {
        SrcReg = ValueVReg[In];
      } else if (const auto *C = dyn_cast<ConstantInt>(In)) {
        SrcReg = MF->newVReg();
        MBB->push(MOp::LI, {MOperand::reg(SrcReg),
                            MOperand::imm(static_cast<int64_t>(
                                C->value().zext()))});
      } else if (isa<PoisonValue>(In) || isa<UndefValue>(In)) {
        SrcReg = MF->newVReg();
        MBB->push(MOp::IMPLICIT_DEF, {MOperand::reg(SrcReg)});
        ++Out.Stats.ImplicitDefs;
      } else if (const auto *G = dyn_cast<GlobalVariable>(In)) {
        SrcReg = MF->newVReg();
        MBB->push(MOp::LI, {MOperand::reg(SrcReg),
                            MOperand::imm(Out.GlobalAddrs.at(G))});
      } else {
        frost_unreachable("phi input without a register");
      }
      MBB->push(MOp::COPY, {MOperand::reg(Tmp), MOperand::reg(SrcReg)});
      Finals.push_back({ValueVReg.at(P), Tmp});
    }
  }
  for (auto &[PhiReg, Tmp] : Finals)
    MBB->push(MOp::COPY, {MOperand::reg(PhiReg), MOperand::reg(Tmp)});

  auto RegOfValue = [&](Value *V) -> unsigned {
    auto NIt = NodeFor.find(V);
    if (NIt != NodeFor.end())
      return emitNode(NIt->second); // Memoised; emits on first demand.
    if (ValueVReg.count(V))
      return ValueVReg[V];
    if (const auto *C = dyn_cast<ConstantInt>(V)) {
      unsigned R = MF->newVReg();
      MBB->push(MOp::LI, {MOperand::reg(R), MOperand::imm(static_cast<int64_t>(
                                                C->value().zext()))});
      return R;
    }
    unsigned R = MF->newVReg();
    MBB->push(MOp::IMPLICIT_DEF, {MOperand::reg(R)});
    ++Out.Stats.ImplicitDefs;
    return R;
  };

  switch (T->getOpcode()) {
  case Opcode::Br: {
    auto *Br = cast<BranchInst>(T);
    if (Br->isConditional()) {
      unsigned C = RegOfValue(Br->condition());
      MBB->push(MOp::BNZ, {MOperand::reg(C),
                           MOperand::label(BlockMap.at(Br->trueDest()))});
      MBB->push(MOp::JMP, {MOperand::label(BlockMap.at(Br->falseDest()))});
      MBB->Succs = {BlockMap.at(Br->trueDest()),
                    BlockMap.at(Br->falseDest())};
    } else {
      MBB->push(MOp::JMP, {MOperand::label(BlockMap.at(Br->dest()))});
      MBB->Succs = {BlockMap.at(Br->dest())};
    }
    break;
  }
  case Opcode::Switch: {
    auto *SW = cast<SwitchInst>(T);
    unsigned C = RegOfValue(SW->condition());
    for (unsigned I = 0, E = SW->getNumCases(); I != E; ++I) {
      unsigned K = MF->newVReg(), Eq = MF->newVReg();
      MBB->push(MOp::LI, {MOperand::reg(K),
                          MOperand::imm(static_cast<int64_t>(
                              SW->caseValue(I)->value().zext()))});
      MBB->push(MOp::CMPEQ,
                {MOperand::reg(Eq), MOperand::reg(C), MOperand::reg(K)});
      MBB->push(MOp::BNZ, {MOperand::reg(Eq),
                           MOperand::label(BlockMap.at(SW->caseDest(I)))});
      MBB->Succs.push_back(BlockMap.at(SW->caseDest(I)));
    }
    MBB->push(MOp::JMP, {MOperand::label(BlockMap.at(SW->defaultDest()))});
    MBB->Succs.push_back(BlockMap.at(SW->defaultDest()));
    break;
  }
  case Opcode::Ret: {
    auto *R = cast<ReturnInst>(T);
    if (R->hasValue())
      MBB->push(MOp::RET, {MOperand::reg(RegOfValue(R->value()))});
    else
      MBB->push(MOp::RET, {});
    break;
  }
  case Opcode::Unreachable: {
    // Executing this is UB; return an undef register.
    if (!F.returnType()->isVoid()) {
      unsigned R = MF->newVReg();
      MBB->push(MOp::IMPLICIT_DEF, {MOperand::reg(R)});
      MBB->push(MOp::RET, {MOperand::reg(R)});
    } else {
      MBB->push(MOp::RET, {});
    }
    break;
  }
  case Opcode::Trap: {
    // Defined behaviour: the machine stops with the trap id.
    MBB->push(MOp::TRAP,
              {MOperand::imm(int64_t(cast<TrapInst>(T)->id()))});
    break;
  }
  default:
    frost_unreachable("unknown terminator");
  }
}

CompiledFunction FunctionLowering::run() {
  assert(!F.isDeclaration() && "cannot compile a declaration");
  Out.MF = MachineFunction(F.getName());
  MF = &Out.MF;
  MF->NumArgs = F.getNumArgs();

  layoutGlobals();
  for (unsigned I = 0; I != F.getNumArgs(); ++I) {
    Out.ArgWidths.push_back(typeWidth(F.arg(I)->getType()));
    MF->newFrameSlot(4); // Incoming argument slots 0..N-1.
  }

  for (BasicBlock *BB : F)
    BlockMap[BB] = MF->addBlock(BB->getName());
  assignCrossBlockRegs();

  // Entry prologue: load the arguments from their frame slots (loads and
  // stores accept a frame slot directly as the base operand).
  MBB = BlockMap.at(F.entry());
  for (unsigned I = 0; I != F.getNumArgs(); ++I)
    MBB->push(MOp::LOAD4, {MOperand::reg(ValueVReg.at(F.arg(I))),
                           MOperand::frame(I), MOperand::imm(0)});

  for (BasicBlock *BB : F) {
    BlockDAG DAG;
    lowerBlock(BB, DAG);
  }

  if (Opts.RunRegAlloc) {
    RegAllocResult RA = runLinearScan(Out.MF);
    Out.Stats.Spills = RA.Spills;
    Out.Stats.Reloads = RA.Reloads;
  }
  Out.Stats.MIInstructions = Out.MF.instructionCount();
  return std::move(Out);
}

} // namespace

CompiledFunction codegen::compileFunction(Function &F,
                                          const CodegenOptions &Opts) {
  FunctionLowering FL(F, Opts);
  return FL.run();
}
