//===- RegAlloc.cpp - Linear-scan register allocation --------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "codegen/RegAlloc.h"

#include "codegen/MIR.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace frost;
using namespace frost::codegen;

namespace {

/// r0..r9 are allocatable; r10/r11 are reserved for spill code.
constexpr unsigned NumAllocatable = NumPhysRegs - 2;
constexpr unsigned Scratch0 = NumPhysRegs - 2;
constexpr unsigned Scratch1 = NumPhysRegs - 1;

struct Interval {
  unsigned VReg;
  unsigned Start;
  unsigned End;
};

} // namespace

RegAllocResult codegen::runLinearScan(MachineFunction &MF) {
  RegAllocResult Result;

  // Global instruction numbering and per-block ranges.
  std::map<const MachineBasicBlock *, std::pair<unsigned, unsigned>> Range;
  unsigned Idx = 0;
  for (auto &B : MF.Blocks) {
    unsigned Start = Idx;
    Idx += B->Insts.size();
    Range[B.get()] = {Start, Idx == Start ? Start : Idx - 1};
  }

  // Per-block use/def sets over virtual registers.
  std::map<const MachineBasicBlock *, std::set<unsigned>> UseB, DefB, LiveIn,
      LiveOut;
  for (auto &B : MF.Blocks) {
    std::set<unsigned> &Uses = UseB[B.get()], &Defs = DefB[B.get()];
    for (const MachineInst &I : B->Insts) {
      int DI = I.defIndex();
      for (unsigned O = 0; O != I.Ops.size(); ++O) {
        if (!I.Ops[O].isReg() || I.Ops[O].Reg < FirstVirtReg)
          continue;
        if (static_cast<int>(O) == DI)
          continue;
        if (!Defs.count(I.Ops[O].Reg))
          Uses.insert(I.Ops[O].Reg);
      }
      if (DI >= 0 && I.Ops[DI].isReg() && I.Ops[DI].Reg >= FirstVirtReg)
        Defs.insert(I.Ops[DI].Reg);
    }
  }

  // Backward liveness to a fixed point.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = MF.Blocks.rbegin(); It != MF.Blocks.rend(); ++It) {
      MachineBasicBlock *B = It->get();
      std::set<unsigned> Out;
      for (MachineBasicBlock *S : B->Succs)
        for (unsigned V : LiveIn[S])
          Out.insert(V);
      std::set<unsigned> In = UseB[B];
      for (unsigned V : Out)
        if (!DefB[B].count(V))
          In.insert(V);
      if (Out != LiveOut[B] || In != LiveIn[B]) {
        LiveOut[B] = std::move(Out);
        LiveIn[B] = std::move(In);
        Changed = true;
      }
    }
  }

  // Build intervals.
  std::map<unsigned, Interval> Intervals;
  auto Extend = [&](unsigned V, unsigned Pos) {
    auto It = Intervals.find(V);
    if (It == Intervals.end()) {
      Intervals[V] = {V, Pos, Pos};
      return;
    }
    It->second.Start = std::min(It->second.Start, Pos);
    It->second.End = std::max(It->second.End, Pos);
  };
  Idx = 0;
  for (auto &B : MF.Blocks) {
    auto [BStart, BEnd] = Range[B.get()];
    for (unsigned V : LiveIn[B.get()])
      Extend(V, BStart);
    for (unsigned V : LiveOut[B.get()])
      Extend(V, BEnd);
    for (const MachineInst &I : B->Insts) {
      for (const MOperand &O : I.Ops)
        if (O.isReg() && O.Reg >= FirstVirtReg)
          Extend(O.Reg, Idx);
      ++Idx;
    }
  }

  // Linear scan.
  std::vector<Interval> Sorted;
  for (auto &[V, I] : Intervals)
    Sorted.push_back(I);
  std::sort(Sorted.begin(), Sorted.end(), [](const Interval &A,
                                             const Interval &B) {
    return A.Start != B.Start ? A.Start < B.Start : A.VReg < B.VReg;
  });

  std::map<unsigned, unsigned> PhysOf;  // vreg -> phys reg.
  std::map<unsigned, unsigned> SlotOf;  // vreg -> frame slot.
  std::vector<Interval> Active;         // Sorted by End.
  std::set<unsigned> FreeRegs;
  for (unsigned R = 0; R != NumAllocatable; ++R)
    FreeRegs.insert(R);

  for (const Interval &Cur : Sorted) {
    // Expire finished intervals.
    for (auto It = Active.begin(); It != Active.end();) {
      if (It->End < Cur.Start) {
        FreeRegs.insert(PhysOf.at(It->VReg));
        It = Active.erase(It);
      } else {
        ++It;
      }
    }
    Result.PeakPressure = std::max(
        Result.PeakPressure, static_cast<unsigned>(Active.size() + 1));

    if (!FreeRegs.empty()) {
      unsigned R = *FreeRegs.begin();
      FreeRegs.erase(FreeRegs.begin());
      PhysOf[Cur.VReg] = R;
      Active.push_back(Cur);
      std::sort(Active.begin(), Active.end(),
                [](const Interval &A, const Interval &B) {
                  return A.End < B.End;
                });
      continue;
    }
    // Spill the interval that ends last (Poletto's heuristic).
    Interval &Last = Active.back();
    if (Last.End > Cur.End) {
      // Steal its register for the current interval.
      unsigned R = PhysOf.at(Last.VReg);
      PhysOf.erase(Last.VReg);
      SlotOf[Last.VReg] = MF.newFrameSlot(4);
      PhysOf[Cur.VReg] = R;
      Active.pop_back();
      Active.push_back(Cur);
      std::sort(Active.begin(), Active.end(),
                [](const Interval &A, const Interval &B) {
                  return A.End < B.End;
                });
    } else {
      SlotOf[Cur.VReg] = MF.newFrameSlot(4);
    }
  }
  Result.SpilledRegs = SlotOf.size();

  // Rewrite instructions.
  for (auto &B : MF.Blocks) {
    std::vector<MachineInst> NewInsts;
    for (MachineInst &I : B->Insts) {
      int DI = I.defIndex();
      unsigned NextScratch = Scratch0;
      MachineInst Rewritten = I;
      // Reload spilled uses.
      for (unsigned O = 0; O != Rewritten.Ops.size(); ++O) {
        MOperand &Op = Rewritten.Ops[O];
        if (!Op.isReg() || Op.Reg < FirstVirtReg ||
            static_cast<int>(O) == DI)
          continue;
        auto PIt = PhysOf.find(Op.Reg);
        if (PIt != PhysOf.end()) {
          Op.Reg = PIt->second;
          continue;
        }
        auto SIt = SlotOf.find(Op.Reg);
        assert(SIt != SlotOf.end() && "virtual register never allocated");
        unsigned Scratch = NextScratch;
        assert(Scratch <= Scratch1 && "too many spilled uses in one inst");
        NextScratch = Scratch1;
        NewInsts.emplace_back(
            MOp::LOAD4, std::vector<MOperand>{MOperand::reg(Scratch),
                                              MOperand::frame(SIt->second),
                                              MOperand::imm(0)});
        ++Result.Reloads;
        Op.Reg = Scratch;
      }
      // Rewrite / spill the def.
      bool StoreAfter = false;
      unsigned StoreSlot = 0;
      if (DI >= 0 && Rewritten.Ops[DI].isReg() &&
          Rewritten.Ops[DI].Reg >= FirstVirtReg) {
        unsigned V = Rewritten.Ops[DI].Reg;
        auto PIt = PhysOf.find(V);
        if (PIt != PhysOf.end()) {
          Rewritten.Ops[DI].Reg = PIt->second;
        } else {
          auto SIt = SlotOf.find(V);
          assert(SIt != SlotOf.end() && "virtual register never allocated");
          Rewritten.Ops[DI].Reg = Scratch0;
          StoreAfter = true;
          StoreSlot = SIt->second;
        }
      }
      NewInsts.push_back(std::move(Rewritten));
      if (StoreAfter) {
        NewInsts.emplace_back(
            MOp::STORE4, std::vector<MOperand>{MOperand::reg(Scratch0),
                                               MOperand::frame(StoreSlot),
                                               MOperand::imm(0)});
        ++Result.Spills;
      }
    }
    B->Insts = std::move(NewInsts);
  }
  return Result;
}
