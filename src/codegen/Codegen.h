//===- Codegen.h - IR to machine code pipeline ------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 6 backend: IR -> SelectionDAG (with FREEZE) -> type
/// legalization -> instruction selection (freeze becomes COPY, poison
/// becomes an IMPLICIT_DEF undef register) -> linear-scan register
/// allocation -> frost-risc assembly. Paired with MachineSim.h this gives
/// deterministic cycle counts for the Section 7 run-time experiments.
///
/// Restrictions (documented substitutions): scalar integer types up to 32
/// bits; no vectors, calls, or 64-bit values at this level — the evaluation
/// kernels are written within this subset.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_CODEGEN_CODEGEN_H
#define FROST_CODEGEN_CODEGEN_H

#include "codegen/MIR.h"

#include <map>

namespace frost {

class Function;
class GlobalVariable;

namespace codegen {

/// Counters the Section 7 experiments report on.
struct CodegenStats {
  unsigned MIInstructions = 0; ///< Final machine instruction count.
  unsigned FreezeCopies = 0;   ///< COPYs emitted for freeze.
  unsigned ImplicitDefs = 0;   ///< Undef registers for poison/undef.
  unsigned Spills = 0;         ///< Spill stores inserted by regalloc.
  unsigned Reloads = 0;        ///< Reload loads inserted by regalloc.
  unsigned LegalizeNodes = 0;  ///< Nodes inserted by type legalization.
};

/// Result of compiling one function.
struct CompiledFunction {
  MachineFunction MF{""};
  CodegenStats Stats;
  /// Bit width of each formal argument (the simulator masks inputs).
  std::vector<unsigned> ArgWidths;
  /// Address assigned to each referenced global.
  std::map<const GlobalVariable *, uint32_t> GlobalAddrs;
  /// First free address after the globals (the simulator's frame base).
  uint32_t MemoryEnd = 0x1000;
};

struct CodegenOptions {
  bool RunRegAlloc = true; ///< Disable to inspect virtual-register MIR.
};

/// Compiles \p F to frost-risc machine code. Aborts on unsupported
/// constructs (vectors, calls, >32-bit types).
CompiledFunction compileFunction(Function &F,
                                 const CodegenOptions &Opts = CodegenOptions());

} // namespace codegen
} // namespace frost

#endif // FROST_CODEGEN_CODEGEN_H
