//===- MIR.cpp - Machine IR for the frost-risc target -------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "codegen/MIR.h"

#include "support/ErrorHandling.h"

#include <sstream>

using namespace frost;
using namespace frost::codegen;

const char *codegen::mopName(MOp Op) {
  switch (Op) {
  case MOp::ADD:
    return "add";
  case MOp::SUB:
    return "sub";
  case MOp::MUL:
    return "mul";
  case MOp::DIVU:
    return "divu";
  case MOp::DIVS:
    return "divs";
  case MOp::REMU:
    return "remu";
  case MOp::REMS:
    return "rems";
  case MOp::SHL:
    return "shl";
  case MOp::SHRL:
    return "shrl";
  case MOp::SHRA:
    return "shra";
  case MOp::AND:
    return "and";
  case MOp::OR:
    return "or";
  case MOp::XOR:
    return "xor";
  case MOp::ADDI:
    return "addi";
  case MOp::ANDI:
    return "andi";
  case MOp::ORI:
    return "ori";
  case MOp::XORI:
    return "xori";
  case MOp::SHLI:
    return "shli";
  case MOp::SHRLI:
    return "shrli";
  case MOp::SHRAI:
    return "shrai";
  case MOp::CMPEQ:
    return "cmpeq";
  case MOp::CMPNE:
    return "cmpne";
  case MOp::CMPULT:
    return "cmpult";
  case MOp::CMPULE:
    return "cmpule";
  case MOp::CMPSLT:
    return "cmpslt";
  case MOp::CMPSLE:
    return "cmpsle";
  case MOp::LI:
    return "li";
  case MOp::COPY:
    return "copy";
  case MOp::IMPLICIT_DEF:
    return "implicit_def";
  case MOp::LOAD1:
    return "load1";
  case MOp::LOAD2:
    return "load2";
  case MOp::LOAD4:
    return "load4";
  case MOp::STORE1:
    return "store1";
  case MOp::STORE2:
    return "store2";
  case MOp::STORE4:
    return "store4";
  case MOp::FRAMEADDR:
    return "frameaddr";
  case MOp::JMP:
    return "jmp";
  case MOp::BNZ:
    return "bnz";
  case MOp::RET:
    return "ret";
  case MOp::TRAP:
    return "trap";
  }
  frost_unreachable("unknown machine opcode");
}

int MachineInst::defIndex() const {
  switch (Op) {
  case MOp::STORE1:
  case MOp::STORE2:
  case MOp::STORE4:
  case MOp::JMP:
  case MOp::BNZ:
  case MOp::RET:
  case MOp::TRAP:
    return -1;
  default:
    return 0;
  }
}

namespace {

std::string regName(unsigned R) {
  if (R < FirstVirtReg)
    return "r" + std::to_string(R);
  return "%v" + std::to_string(R - FirstVirtReg);
}

std::string operandStr(const MOperand &O) {
  switch (O.K) {
  case MOperand::Kind::Reg:
    return regName(O.Reg);
  case MOperand::Kind::Imm:
    return std::to_string(O.Imm);
  case MOperand::Kind::Label:
    return "." + O.MBB->Name;
  case MOperand::Kind::Frame:
    return "fp[" + std::to_string(O.Frame) + "]";
  }
  return "?";
}

} // namespace

std::string MachineInst::str() const {
  std::string S = mopName(Op);
  for (unsigned I = 0; I != Ops.size(); ++I)
    S += (I ? ", " : " ") + operandStr(Ops[I]);
  return S;
}

std::string MachineFunction::str() const {
  std::ostringstream OS;
  OS << Name << ":  # " << NumArgs << " args, " << FrameSlots.size()
     << " frame slots\n";
  for (const auto &B : Blocks) {
    OS << "." << B->Name << ":\n";
    for (const MachineInst &I : B->Insts)
      OS << "  " << I.str() << "\n";
  }
  return OS.str();
}
