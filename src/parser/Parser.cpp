//===- Parser.cpp - Textual IR parser ----------------------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "ir/Context.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "parser/Lexer.h"

#include <map>
#include <optional>

using namespace frost;

namespace {

/// A forward reference to a value named before its definition (only phis can
/// legally do this in SSA). Resolved by RAUW when the definition appears.
class PlaceholderValue : public Value {
public:
  PlaceholderValue(Type *Ty, std::string Name)
      : Value(Kind::Placeholder, Ty, std::move(Name)) {}

  static bool classof(const Value *V) {
    return V->getKind() == Kind::Placeholder;
  }
};

class Parser {
public:
  Parser(const std::string &Text, Module &M)
      : Lex(Text), M(M), Ctx(M.context()) {
    Cur = Lex.next();
    Ahead = Lex.next();
  }

  ParseResult run();

private:
  // Token plumbing.
  Token Cur, Ahead;
  Lexer Lex;
  Module &M;
  IRContext &Ctx;
  std::string Error;

  void advance() {
    Cur = Ahead;
    Ahead = Lex.next();
  }
  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = "line " + std::to_string(Cur.Line) + ": " + Msg;
    return false;
  }
  bool expect(Token::Kind K, const char *What) {
    if (!Cur.is(K))
      return fail(std::string("expected ") + What);
    advance();
    return true;
  }
  bool expectWord(const char *W) {
    if (!Cur.isWord(W))
      return fail(std::string("expected '") + W + "'");
    advance();
    return true;
  }

  // Per-function state.
  Function *F = nullptr;
  std::map<std::string, Value *> Values;
  std::map<std::string, PlaceholderValue *> Placeholders;
  std::map<std::string, BasicBlock *> Blocks;
  std::map<std::string, bool> BlockDefined;

  // Grammar productions.
  bool parseTopLevel();
  bool parseGlobal();
  bool parseDeclare();
  bool parseDefine();
  bool parseBlockBody(BasicBlock *BB);
  Instruction *parseInstruction();

  Type *parseType();
  Value *parseOperandOfType(Type *Ty);
  Value *parseTypedOperand(Type **TyOut = nullptr);
  BasicBlock *parseLabelOperand();
  BasicBlock *getBlock(const std::string &Name);
  Value *lookupValue(const std::string &Name, Type *Ty);
  bool defineValue(const std::string &Name, Value *V);

  std::optional<ICmpPred> parsePred();
  ArithFlags parseFlags();
};

ParseResult Parser::run() {
  while (!Cur.is(Token::Kind::Eof)) {
    if (!parseTopLevel()) {
      ParseResult R;
      R.Error = Error.empty() ? "parse error" : Error;
      return R;
    }
  }
  ParseResult R;
  R.Ok = true;
  return R;
}

bool Parser::parseTopLevel() {
  if (Cur.is(Token::Kind::GlobalName) && Ahead.is(Token::Kind::Equals))
    return parseGlobal();
  if (Cur.isWord("declare"))
    return parseDeclare();
  if (Cur.isWord("define"))
    return parseDefine();
  return fail("expected 'define', 'declare', or a global definition");
}

/// @name = global <type>, <size-bytes>
bool Parser::parseGlobal() {
  std::string Name = Cur.Text;
  advance(); // @name
  advance(); // =
  if (!expectWord("global"))
    return false;
  Type *Ty = parseType();
  if (!Ty)
    return false;
  if (!expect(Token::Kind::Comma, "','"))
    return false;
  if (!Cur.is(Token::Kind::Integer) || Cur.Int < 0)
    return fail("expected a non-negative global size in bytes");
  Ctx.getGlobal(Name, Ty, static_cast<unsigned>(Cur.Int));
  advance();
  return true;
}

/// declare <ret> @name(<paramtypes>)
bool Parser::parseDeclare() {
  advance(); // declare
  Type *Ret = parseType();
  if (!Ret)
    return false;
  if (!Cur.is(Token::Kind::GlobalName))
    return fail("expected function name");
  std::string Name = Cur.Text;
  advance();
  if (!expect(Token::Kind::LParen, "'('"))
    return false;
  std::vector<Type *> Params;
  while (!Cur.is(Token::Kind::RParen)) {
    if (!Params.empty() && !expect(Token::Kind::Comma, "','"))
      return false;
    Type *P = parseType();
    if (!P)
      return false;
    Params.push_back(P);
    // Tolerate an optional parameter name.
    if (Cur.is(Token::Kind::LocalName))
      advance();
  }
  advance(); // )
  if (!M.getFunction(Name))
    M.createFunction(Name, Ctx.types().fnTy(Ret, Params));
  return true;
}

/// define <ret> @name(<ty> %a, ...) { blocks }
bool Parser::parseDefine() {
  advance(); // define
  Type *Ret = parseType();
  if (!Ret)
    return false;
  if (!Cur.is(Token::Kind::GlobalName))
    return fail("expected function name");
  std::string Name = Cur.Text;
  advance();
  if (!expect(Token::Kind::LParen, "'('"))
    return false;

  std::vector<Type *> Params;
  std::vector<std::string> ParamNames;
  while (!Cur.is(Token::Kind::RParen)) {
    if (!Params.empty() && !expect(Token::Kind::Comma, "','"))
      return false;
    Type *P = parseType();
    if (!P)
      return false;
    if (!Cur.is(Token::Kind::LocalName))
      return fail("expected parameter name");
    Params.push_back(P);
    ParamNames.push_back(Cur.Text);
    advance();
  }
  advance(); // )
  if (!expect(Token::Kind::LBrace, "'{'"))
    return false;

  if (M.getFunction(Name))
    return fail("redefinition of @" + Name);
  F = M.createFunction(Name, Ctx.types().fnTy(Ret, Params));
  Values.clear();
  Placeholders.clear();
  Blocks.clear();
  BlockDefined.clear();
  for (unsigned I = 0; I != ParamNames.size(); ++I) {
    F->arg(I)->setName(ParamNames[I]);
    if (!defineValue(ParamNames[I], F->arg(I)))
      return false;
  }

  while (!Cur.is(Token::Kind::RBrace)) {
    // A block label: word ':'.
    if (!Cur.is(Token::Kind::Word) || !Ahead.is(Token::Kind::Colon))
      return fail("expected a block label");
    std::string Label = Cur.Text;
    advance();
    advance();
    BasicBlock *BB = getBlock(Label);
    if (BlockDefined[Label])
      return fail("redefinition of block %" + Label);
    BlockDefined[Label] = true;
    F->appendBlock(BB);
    if (!parseBlockBody(BB))
      return false;
  }
  advance(); // }

  for (auto &[BName, Defined] : BlockDefined)
    if (!Defined)
      return fail("branch to undefined block %" + BName);
  if (!Placeholders.empty())
    return fail("use of undefined value %" + Placeholders.begin()->first);
  F = nullptr;
  return true;
}

bool Parser::parseBlockBody(BasicBlock *BB) {
  while (true) {
    // Stop at the next label or the closing brace.
    if (Cur.is(Token::Kind::RBrace))
      return true;
    if (Cur.is(Token::Kind::Word) && Ahead.is(Token::Kind::Colon))
      return true;

    std::string ResultName;
    if (Cur.is(Token::Kind::LocalName)) {
      ResultName = Cur.Text;
      advance();
      if (!expect(Token::Kind::Equals, "'='"))
        return false;
    }
    Instruction *I = parseInstruction();
    if (!I)
      return false;
    BB->push_back(I);
    if (!ResultName.empty()) {
      I->setName(ResultName);
      if (!defineValue(ResultName, I))
        return false;
    }
  }
}

Type *Parser::parseType() {
  Type *Ty = nullptr;
  if (Cur.isWord("void")) {
    advance();
    Ty = Ctx.voidTy();
  } else if (Cur.is(Token::Kind::Word) && Cur.Text.size() > 1 &&
             Cur.Text[0] == 'i' &&
             Cur.Text.find_first_not_of("0123456789", 1) == std::string::npos) {
    unsigned W = static_cast<unsigned>(std::stoul(Cur.Text.substr(1)));
    if (W < 1 || W > 64) {
      fail("unsupported integer width i" + std::to_string(W));
      return nullptr;
    }
    advance();
    Ty = Ctx.intTy(W);
  } else if (Cur.is(Token::Kind::Less)) {
    advance();
    if (!Cur.is(Token::Kind::Integer) || Cur.Int < 1) {
      fail("expected vector element count");
      return nullptr;
    }
    unsigned N = static_cast<unsigned>(Cur.Int);
    advance();
    if (!expectWord("x"))
      return nullptr;
    Type *Elem = parseType();
    if (!Elem)
      return nullptr;
    if (!expect(Token::Kind::Greater, "'>'"))
      return nullptr;
    Ty = Ctx.vecTy(Elem, N);
  } else {
    fail("expected a type");
    return nullptr;
  }
  while (Cur.is(Token::Kind::Star)) {
    advance();
    Ty = Ctx.ptrTy(Ty);
  }
  return Ty;
}

BasicBlock *Parser::getBlock(const std::string &Name) {
  auto It = Blocks.find(Name);
  if (It != Blocks.end())
    return It->second;
  BasicBlock *BB = BasicBlock::create(Ctx, Name);
  Blocks[Name] = BB;
  BlockDefined.emplace(Name, false);
  return BB;
}

Value *Parser::lookupValue(const std::string &Name, Type *Ty) {
  auto It = Values.find(Name);
  if (It != Values.end()) {
    if (It->second->getType() != Ty) {
      fail("type mismatch for %" + Name);
      return nullptr;
    }
    return It->second;
  }
  auto *P = new PlaceholderValue(Ty, Name);
  Placeholders[Name] = P;
  Values[Name] = P;
  return P;
}

bool Parser::defineValue(const std::string &Name, Value *V) {
  auto P = Placeholders.find(Name);
  if (P != Placeholders.end()) {
    if (P->second->getType() != V->getType())
      return fail("type mismatch for forward-referenced %" + Name);
    P->second->replaceAllUsesWith(V);
    delete P->second;
    Placeholders.erase(P);
    Values[Name] = V;
    return true;
  }
  if (!Values.emplace(Name, V).second)
    return fail("redefinition of %" + Name);
  return true;
}

Value *Parser::parseOperandOfType(Type *Ty) {
  if (Cur.is(Token::Kind::LocalName)) {
    std::string Name = Cur.Text;
    advance();
    return lookupValue(Name, Ty);
  }
  if (Cur.is(Token::Kind::GlobalName)) {
    std::string Name = Cur.Text;
    advance();
    if (Function *Fn = M.getFunction(Name))
      return Fn;
    // A global must have been declared (with its size) earlier in the file.
    if (GlobalVariable *G = Ctx.findGlobal(Name)) {
      if (G->getType() != Ty) {
        fail("type mismatch for global @" + Name);
        return nullptr;
      }
      return G;
    }
    fail("unknown global @" + Name);
    return nullptr;
  }
  if (Cur.is(Token::Kind::Integer)) {
    if (!Ty->isInteger()) {
      fail("integer literal for a non-integer type");
      return nullptr;
    }
    int64_t V = Cur.Int;
    advance();
    return Ctx.getInt(BitVec(Ty->bitWidth(), static_cast<uint64_t>(V)));
  }
  if (Cur.isWord("true") || Cur.isWord("false")) {
    bool B = Cur.isWord("true");
    advance();
    return Ctx.getBool(B);
  }
  if (Cur.isWord("poison")) {
    advance();
    return Ctx.getPoison(Ty);
  }
  if (Cur.isWord("undef")) {
    advance();
    return Ctx.getUndef(Ty);
  }
  if (Cur.is(Token::Kind::Less)) {
    // Constant vector: < i8 1, i8 poison, ... >.
    advance();
    std::vector<Constant *> Elems;
    while (!Cur.is(Token::Kind::Greater)) {
      if (!Elems.empty() && !expect(Token::Kind::Comma, "','"))
        return nullptr;
      Type *ETy = parseType();
      if (!ETy)
        return nullptr;
      Value *E = parseOperandOfType(ETy);
      if (!E)
        return nullptr;
      auto *CE = dyn_cast<Constant>(E);
      if (!CE) {
        fail("vector constant element must be a constant");
        return nullptr;
      }
      Elems.push_back(CE);
    }
    advance(); // >
    return Ctx.getVector(std::move(Elems));
  }
  fail("expected an operand");
  return nullptr;
}

Value *Parser::parseTypedOperand(Type **TyOut) {
  Type *Ty = parseType();
  if (!Ty)
    return nullptr;
  if (TyOut)
    *TyOut = Ty;
  return parseOperandOfType(Ty);
}

BasicBlock *Parser::parseLabelOperand() {
  if (!expectWord("label"))
    return nullptr;
  if (!Cur.is(Token::Kind::LocalName)) {
    fail("expected a block name");
    return nullptr;
  }
  BasicBlock *BB = getBlock(Cur.Text);
  advance();
  return BB;
}

std::optional<ICmpPred> Parser::parsePred() {
  static const std::pair<const char *, ICmpPred> Table[] = {
      {"eq", ICmpPred::EQ},   {"ne", ICmpPred::NE},
      {"ugt", ICmpPred::UGT}, {"uge", ICmpPred::UGE},
      {"ult", ICmpPred::ULT}, {"ule", ICmpPred::ULE},
      {"sgt", ICmpPred::SGT}, {"sge", ICmpPred::SGE},
      {"slt", ICmpPred::SLT}, {"sle", ICmpPred::SLE},
  };
  for (auto &[Name, Pred] : Table)
    if (Cur.isWord(Name)) {
      advance();
      return Pred;
    }
  fail("expected an icmp predicate");
  return std::nullopt;
}

ArithFlags Parser::parseFlags() {
  ArithFlags Flags;
  while (true) {
    if (Cur.isWord("nsw"))
      Flags.NSW = true;
    else if (Cur.isWord("nuw"))
      Flags.NUW = true;
    else if (Cur.isWord("exact"))
      Flags.Exact = true;
    else
      break;
    advance();
  }
  return Flags;
}

Instruction *Parser::parseInstruction() {
  static const std::pair<const char *, Opcode> BinOps[] = {
      {"add", Opcode::Add},   {"sub", Opcode::Sub},   {"mul", Opcode::Mul},
      {"udiv", Opcode::UDiv}, {"sdiv", Opcode::SDiv}, {"urem", Opcode::URem},
      {"srem", Opcode::SRem}, {"shl", Opcode::Shl},   {"lshr", Opcode::LShr},
      {"ashr", Opcode::AShr}, {"and", Opcode::And},   {"or", Opcode::Or},
      {"xor", Opcode::Xor},
  };
  for (auto &[Name, Op] : BinOps) {
    if (!Cur.isWord(Name))
      continue;
    advance();
    ArithFlags Flags = parseFlags();
    Type *Ty = parseType();
    if (!Ty)
      return nullptr;
    Value *L = parseOperandOfType(Ty);
    if (!L || !expect(Token::Kind::Comma, "','"))
      return nullptr;
    Value *R = parseOperandOfType(Ty);
    if (!R)
      return nullptr;
    return BinaryOperator::create(Op, L, R, Flags);
  }

  static const std::pair<const char *, Opcode> Casts[] = {
      {"trunc", Opcode::Trunc},
      {"zext", Opcode::ZExt},
      {"sext", Opcode::SExt},
      {"bitcast", Opcode::BitCast},
  };
  for (auto &[Name, Op] : Casts) {
    if (!Cur.isWord(Name))
      continue;
    advance();
    Value *Src = parseTypedOperand();
    if (!Src || !expectWord("to"))
      return nullptr;
    Type *Dst = parseType();
    if (!Dst)
      return nullptr;
    return CastInst::create(Op, Src, Dst);
  }

  if (Cur.isWord("icmp")) {
    advance();
    auto Pred = parsePred();
    if (!Pred)
      return nullptr;
    Type *Ty = parseType();
    if (!Ty)
      return nullptr;
    Value *L = parseOperandOfType(Ty);
    if (!L || !expect(Token::Kind::Comma, "','"))
      return nullptr;
    Value *R = parseOperandOfType(Ty);
    if (!R)
      return nullptr;
    return ICmpInst::create(Ctx, *Pred, L, R);
  }

  if (Cur.isWord("select")) {
    advance();
    Value *C = parseTypedOperand();
    if (!C || !expect(Token::Kind::Comma, "','"))
      return nullptr;
    Value *T = parseTypedOperand();
    if (!T || !expect(Token::Kind::Comma, "','"))
      return nullptr;
    Value *E = parseTypedOperand();
    if (!E)
      return nullptr;
    return SelectInst::create(C, T, E);
  }

  if (Cur.isWord("freeze")) {
    advance();
    Value *V = parseTypedOperand();
    if (!V)
      return nullptr;
    return FreezeInst::create(V);
  }

  if (Cur.isWord("phi")) {
    advance();
    Type *Ty = parseType();
    if (!Ty)
      return nullptr;
    PhiNode *P = PhiNode::create(Ty);
    while (Cur.is(Token::Kind::LBracket)) {
      advance(); // [
      Value *V = parseOperandOfType(Ty);
      if (!V || !expect(Token::Kind::Comma, "','"))
        return nullptr;
      if (!Cur.is(Token::Kind::LocalName)) {
        fail("expected an incoming block");
        return nullptr;
      }
      BasicBlock *BB = getBlock(Cur.Text);
      advance();
      if (!expect(Token::Kind::RBracket, "']'"))
        return nullptr;
      P->addIncoming(V, BB);
      if (Cur.is(Token::Kind::Comma) && Ahead.is(Token::Kind::LBracket))
        advance();
      else
        break;
    }
    return P;
  }

  if (Cur.isWord("alloca")) {
    advance();
    Type *Ty = parseType();
    if (!Ty)
      return nullptr;
    return AllocaInst::create(Ctx, Ty);
  }

  if (Cur.isWord("load")) {
    advance();
    Type *Ty = parseType();
    if (!Ty || !expect(Token::Kind::Comma, "','"))
      return nullptr;
    Value *Ptr = parseTypedOperand();
    if (!Ptr)
      return nullptr;
    return LoadInst::create(Ptr, Ty);
  }

  if (Cur.isWord("store")) {
    advance();
    Value *V = parseTypedOperand();
    if (!V || !expect(Token::Kind::Comma, "','"))
      return nullptr;
    Value *Ptr = parseTypedOperand();
    if (!Ptr)
      return nullptr;
    return StoreInst::create(V, Ptr, Ctx);
  }

  if (Cur.isWord("gep")) {
    advance();
    bool InBounds = false;
    if (Cur.isWord("inbounds")) {
      InBounds = true;
      advance();
    }
    Value *Base = parseTypedOperand();
    if (!Base || !expect(Token::Kind::Comma, "','"))
      return nullptr;
    Value *Index = parseTypedOperand();
    if (!Index)
      return nullptr;
    return GEPInst::create(Base, Index, InBounds);
  }

  if (Cur.isWord("extractelement")) {
    advance();
    Value *Vec = parseTypedOperand();
    if (!Vec || !expect(Token::Kind::Comma, "','"))
      return nullptr;
    if (!Cur.is(Token::Kind::Integer) || Cur.Int < 0) {
      fail("expected a constant lane index");
      return nullptr;
    }
    unsigned Idx = static_cast<unsigned>(Cur.Int);
    advance();
    return ExtractElementInst::create(Vec, Idx);
  }

  if (Cur.isWord("insertelement")) {
    advance();
    Value *Vec = parseTypedOperand();
    if (!Vec || !expect(Token::Kind::Comma, "','"))
      return nullptr;
    Value *Elem = parseTypedOperand();
    if (!Elem || !expect(Token::Kind::Comma, "','"))
      return nullptr;
    if (!Cur.is(Token::Kind::Integer) || Cur.Int < 0) {
      fail("expected a constant lane index");
      return nullptr;
    }
    unsigned Idx = static_cast<unsigned>(Cur.Int);
    advance();
    return InsertElementInst::create(Vec, Elem, Idx);
  }

  if (Cur.isWord("call")) {
    advance();
    Type *Ret = parseType();
    if (!Ret)
      return nullptr;
    if (!Cur.is(Token::Kind::GlobalName)) {
      fail("expected a callee name");
      return nullptr;
    }
    Function *Callee = M.getFunction(Cur.Text);
    if (!Callee) {
      fail("call to unknown function @" + Cur.Text);
      return nullptr;
    }
    advance();
    if (!expect(Token::Kind::LParen, "'('"))
      return nullptr;
    std::vector<Value *> Args;
    while (!Cur.is(Token::Kind::RParen)) {
      if (!Args.empty() && !expect(Token::Kind::Comma, "','"))
        return nullptr;
      Value *A = parseTypedOperand();
      if (!A)
        return nullptr;
      Args.push_back(A);
    }
    advance(); // )
    return CallInst::create(Callee, Args);
  }

  if (Cur.isWord("br")) {
    advance();
    if (Cur.isWord("label")) {
      BasicBlock *D = parseLabelOperand();
      if (!D)
        return nullptr;
      return BranchInst::createUncond(D, Ctx);
    }
    Value *C = parseTypedOperand();
    if (!C || !expect(Token::Kind::Comma, "','"))
      return nullptr;
    BasicBlock *T = parseLabelOperand();
    if (!T || !expect(Token::Kind::Comma, "','"))
      return nullptr;
    BasicBlock *E = parseLabelOperand();
    if (!E)
      return nullptr;
    return BranchInst::createCond(C, T, E, Ctx);
  }

  if (Cur.isWord("switch")) {
    advance();
    Type *Ty = nullptr;
    Value *C = parseTypedOperand(&Ty);
    if (!C || !expect(Token::Kind::Comma, "','"))
      return nullptr;
    BasicBlock *Default = parseLabelOperand();
    if (!Default || !expect(Token::Kind::LBracket, "'['"))
      return nullptr;
    SwitchInst *SW = SwitchInst::create(C, Default, Ctx);
    while (!Cur.is(Token::Kind::RBracket)) {
      Value *CaseV = parseTypedOperand();
      if (!CaseV || !expect(Token::Kind::Comma, "','"))
        return nullptr;
      auto *CI = dyn_cast<ConstantInt>(CaseV);
      if (!CI) {
        fail("switch case must be a constant integer");
        return nullptr;
      }
      BasicBlock *Dest = parseLabelOperand();
      if (!Dest)
        return nullptr;
      SW->addCase(CI, Dest);
    }
    advance(); // ]
    return SW;
  }

  if (Cur.isWord("ret")) {
    advance();
    if (Cur.isWord("void")) {
      advance();
      return ReturnInst::createVoid(Ctx);
    }
    Value *V = parseTypedOperand();
    if (!V)
      return nullptr;
    return ReturnInst::create(V, Ctx);
  }

  if (Cur.isWord("unreachable")) {
    advance();
    return UnreachableInst::create(Ctx);
  }

  if (Cur.isWord("trap")) {
    advance();
    if (!Cur.is(Token::Kind::Integer) || Cur.Int < 0) {
      fail("expected non-negative trap id");
      return nullptr;
    }
    unsigned Id = unsigned(Cur.Int);
    advance();
    return TrapInst::create(Ctx, Id);
  }

  fail("unknown instruction '" + Cur.Text + "'");
  return nullptr;
}

} // namespace

ParseResult frost::parseModule(const std::string &Text, Module &M) {
  Parser P(Text, M);
  return P.run();
}
