//===- Lexer.cpp - Tokenizer for textual frost IR -----------------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>

using namespace frost;

namespace {

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
         C == '.' || C == '-';
}

} // namespace

Token Lexer::next() {
  // Skip whitespace and comments.
  while (Pos < Buf.size()) {
    char C = Buf[Pos];
    if (C == '\n') {
      ++Line;
      ++Pos;
    } else if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
    } else if (C == ';') {
      while (Pos < Buf.size() && Buf[Pos] != '\n')
        ++Pos;
    } else {
      break;
    }
  }

  Token T;
  T.Line = Line;
  if (Pos >= Buf.size()) {
    T.K = Token::Kind::Eof;
    return T;
  }

  char C = Buf[Pos];
  auto Single = [&](Token::Kind K) {
    T.K = K;
    ++Pos;
    return T;
  };

  switch (C) {
  case '(':
    return Single(Token::Kind::LParen);
  case ')':
    return Single(Token::Kind::RParen);
  case '{':
    return Single(Token::Kind::LBrace);
  case '}':
    return Single(Token::Kind::RBrace);
  case '[':
    return Single(Token::Kind::LBracket);
  case ']':
    return Single(Token::Kind::RBracket);
  case '<':
    return Single(Token::Kind::Less);
  case '>':
    return Single(Token::Kind::Greater);
  case '*':
    return Single(Token::Kind::Star);
  case ',':
    return Single(Token::Kind::Comma);
  case ':':
    return Single(Token::Kind::Colon);
  case '=':
    return Single(Token::Kind::Equals);
  default:
    break;
  }

  if (C == '%' || C == '@') {
    T.K = C == '%' ? Token::Kind::LocalName : Token::Kind::GlobalName;
    ++Pos;
    while (Pos < Buf.size() && isIdentChar(Buf[Pos]))
      T.Text += Buf[Pos++];
    return T;
  }

  if (C == '-' || std::isdigit(static_cast<unsigned char>(C))) {
    bool Neg = C == '-';
    if (Neg)
      ++Pos;
    uint64_t V = 0;
    while (Pos < Buf.size() &&
           std::isdigit(static_cast<unsigned char>(Buf[Pos])))
      V = V * 10 + static_cast<uint64_t>(Buf[Pos++] - '0');
    T.K = Token::Kind::Integer;
    T.Int = Neg ? -static_cast<int64_t>(V) : static_cast<int64_t>(V);
    return T;
  }

  if (isIdentChar(C)) {
    T.K = Token::Kind::Word;
    while (Pos < Buf.size() && isIdentChar(Buf[Pos]))
      T.Text += Buf[Pos++];
    return T;
  }

  // Unknown character: emit as a word so the parser reports it.
  T.K = Token::Kind::Word;
  T.Text = std::string(1, C);
  ++Pos;
  return T;
}
