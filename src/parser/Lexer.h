//===- Lexer.h - Tokenizer for textual frost IR -----------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizes the LLVM-like textual syntax produced by the printer. Comments
/// run from ';' to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_PARSER_LEXER_H
#define FROST_PARSER_LEXER_H

#include <cstdint>
#include <string>

namespace frost {

/// One lexical token.
struct Token {
  enum class Kind {
    Eof,
    Word,       ///< Keyword or bare identifier: define, add, i32, entry, ...
    LocalName,  ///< %name
    GlobalName, ///< @name
    Integer,    ///< Possibly negative decimal literal.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Less,
    Greater,
    Star,
    Comma,
    Colon,
    Equals,
  };

  Kind K = Kind::Eof;
  std::string Text; ///< Identifier payload (without % / @ sigils).
  int64_t Int = 0;  ///< Value for Integer tokens.
  unsigned Line = 0;

  bool is(Kind Which) const { return K == Which; }
  bool isWord(const char *W) const { return K == Kind::Word && Text == W; }
};

/// Splits an input buffer into tokens.
class Lexer {
public:
  explicit Lexer(std::string Input) : Buf(std::move(Input)) {}

  /// Lexes and returns the next token. Returns Eof forever at end of input.
  Token next();

  /// Current 1-based line number, for diagnostics.
  unsigned line() const { return Line; }

private:
  std::string Buf;
  size_t Pos = 0;
  unsigned Line = 1;
};

} // namespace frost

#endif // FROST_PARSER_LEXER_H
