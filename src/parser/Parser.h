//===- Parser.h - Textual IR parser -----------------------------*- C++ -*-===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the LLVM-like textual syntax produced by the printer (globals,
/// declarations, function definitions). Round-trips with ir/Printer.h.
///
//===----------------------------------------------------------------------===//

#ifndef FROST_PARSER_PARSER_H
#define FROST_PARSER_PARSER_H

#include <string>

namespace frost {

class Module;

/// Outcome of parsing; on failure, Error carries a line-tagged diagnostic.
struct ParseResult {
  bool Ok = false;
  std::string Error;

  explicit operator bool() const { return Ok; }
};

/// Parses \p Text into \p M (appending to its existing contents).
ParseResult parseModule(const std::string &Text, Module &M);

} // namespace frost

#endif // FROST_PARSER_PARSER_H
