//===- quickstart.cpp - Build, optimize, interpret, compile ---------------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// A first tour of the public API: construct the paper's Figure 1 loop with
// the IRBuilder, watch LICM hoist the nsw add (the transformation deferred
// UB exists to enable), run the optimized function on the reference
// interpreter, then compile it to frost-risc assembly and execute it on the
// cycle simulator.
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "codegen/MachineSim.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "opt/Pass.h"
#include "sem/Interp.h"

#include <cstdio>

using namespace frost;

int main() {
  IRContext Ctx;
  Module M(Ctx, "quickstart");
  auto *I32 = Ctx.intTy(32);

  // Figure 1: for (i = 0; i < n; ++i) a[i] = x + 1;
  GlobalVariable *A = Ctx.getGlobal("a", I32, 64);
  Function *F = M.createFunction("fig1", Ctx.types().fnTy(I32, {I32, I32}));
  F->arg(0)->setName("n");
  F->arg(1)->setName("x");

  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Head = F->addBlock("head");
  BasicBlock *Body = F->addBlock("body");
  BasicBlock *Exit = F->addBlock("exit");

  IRBuilder B(Ctx, Entry);
  B.br(Head);
  B.setInsertPoint(Head);
  PhiNode *I = B.phi(I32, "i");
  Value *C = B.icmp(ICmpPred::SLT, I, F->arg(0), "c");
  B.condBr(C, Body, Exit);
  B.setInsertPoint(Body);
  Value *X1 = B.addNSW(F->arg(1), Ctx.getInt(32, 1), "x1");
  Value *Idx = B.and_(I, Ctx.getInt(32, 15), "idx"); // Stay in bounds.
  B.store(X1, B.gep(A, Idx, true, "ptr"));
  Value *I1 = B.addNSW(I, Ctx.getInt(32, 1), "i1");
  B.br(Head);
  I->addIncoming(Ctx.getInt(32, 0), Entry);
  I->addIncoming(I1, Body);
  B.setInsertPoint(Exit);
  B.ret(B.load(B.gep(A, Ctx.getInt(32, 3), true), "r"));

  if (!verifyFunction(*F)) {
    std::printf("verification failed!\n");
    return 1;
  }
  std::printf("--- unoptimized IR (Figure 1) ---\n%s\n", F->str().c_str());

  // Run the -O2-shaped pipeline under the paper's proposed semantics.
  PassManager PM(/*VerifyAfterEachPass=*/true);
  buildStandardPipeline(PM, PipelineMode::Proposed);
  PM.run(*F);
  std::printf("--- optimized IR (x+1 hoisted to the preheader by LICM; "
              "hoisting a potentially-overflowing add is exactly what "
              "poison permits) ---\n%s\n",
              F->str().c_str());

  // Reference interpreter.
  uint64_t Ref = sem::runConcrete(*F, {10, 41});
  std::printf("interpreter: fig1(10, 41) = %llu\n",
              static_cast<unsigned long long>(Ref));

  // Backend + cycle simulator.
  codegen::CompiledFunction CF = codegen::compileFunction(*F);
  std::printf("\n--- frost-risc assembly ---\n%s\n", CF.MF.str().c_str());
  codegen::SimResult S = codegen::simulate(CF, {10, 41});
  std::printf("simulator: result=%u in %llu cycles (%llu instructions)\n",
              S.ReturnValue, static_cast<unsigned long long>(S.Cycles),
              static_cast<unsigned long long>(S.Instructions));
  return S.Ok && S.ReturnValue == Ref ? 0 : 1;
}
