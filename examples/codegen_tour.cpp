//===- codegen_tour.cpp - Section 6: lowering freeze to machine code ------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Walks the backend pipeline on a freeze-bearing function: the FREEZE
// SelectionDAG node survives type legalization (even at the illegal type
// i2), instruction selection turns freeze into a register COPY and poison
// into an IMPLICIT_DEF "undef register", and the simulator shows that the
// copy pins the undef value: x - x over a frozen poison is always 0, while
// two independent reads of an undef register need not agree.
//
//===----------------------------------------------------------------------===//

#include "codegen/Codegen.h"
#include "codegen/MachineSim.h"
#include "ir/Context.h"
#include "ir/Module.h"
#include "parser/Parser.h"

#include <cstdio>

using namespace frost;
using namespace frost::codegen;

int main() {
  IRContext Ctx;
  Module M(Ctx, "tour");
  ParseResult R = parseModule(R"(
define i32 @pinned() {
entry:
  %f = freeze i32 poison
  %r = sub i32 %f, %f
  ret i32 %r
}

define i2 @narrow(i2 %x) {
entry:
  %f = freeze i2 %x
  %r = add i2 %f, 1
  ret i2 %r
}
)",
                              M);
  if (!R.Ok) {
    std::printf("parse error: %s\n", R.Error.c_str());
    return 1;
  }

  Function *Pinned = M.getFunction("pinned");
  CompiledFunction CF = compileFunction(*Pinned);
  std::printf("--- @pinned: freeze poison; x - x ---\n%s\n",
              CF.MF.str().c_str());
  std::printf("lowering stats: %u freeze->COPY, %u poison->IMPLICIT_DEF, "
              "%u machine instructions\n",
              CF.Stats.FreezeCopies, CF.Stats.ImplicitDefs,
              CF.Stats.MIInstructions);
  SimResult S = simulate(CF, {});
  std::printf("simulated: returns %u (always 0: the COPY pins the undef "
              "register)\n\n",
              S.ReturnValue);

  Function *Narrow = M.getFunction("narrow");
  CompiledFunction CN = compileFunction(*Narrow);
  std::printf("--- @narrow: freeze at the illegal type i2 survives "
              "legalization ---\n%s\n",
              CN.MF.str().c_str());
  std::printf("legalization inserted %u mask/extend nodes\n",
              CN.Stats.LegalizeNodes);
  SimResult S2 = simulate(CN, {3});
  std::printf("simulated: narrow(3) = %u (3 + 1 wraps to 0 in i2)\n",
              S2.ReturnValue);
  return S.Ok && S.ReturnValue == 0 && S2.Ok && S2.ReturnValue == 0 ? 0 : 1;
}
