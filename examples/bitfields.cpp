//===- bitfields.cpp - Section 5.3: bit-field stores need freeze ----------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the paper's one-line Clang change. A C program like
//
//     struct { unsigned lo:4; unsigned mid:12; unsigned hi:16; } s;
//     s.lo = 5;            // First store to an uninitialized struct!
//     return s.lo;
//
// compiles bit-field stores into load/mask/merge/store. Under the proposed
// semantics the first load reads poison, and without freeze the merge
// poisons *every* field — the program above would return poison. The fix
// freezes the loaded word; the superior vector lowering needs no freeze at
// all because poison is tracked per element (Section 5.4).
//
//===----------------------------------------------------------------------===//

#include "frontend/BitFields.h"
#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "sem/Interp.h"

#include <cstdio>

using namespace frost;
using namespace frost::frontend;

namespace {

Function *buildDemo(Module &M, const char *Name, BitFieldLowering Lowering) {
  IRContext &Ctx = M.context();
  auto *I32 = Ctx.intTy(32);
  RecordType Rec;
  Rec.add("lo", 4).add("mid", 12).add("hi", 16);

  Function *F = M.createFunction(Name, Ctx.types().fnTy(I32, {I32}));
  IRBuilder B(Ctx, F->addBlock("entry"));
  Value *Struct = B.alloca_(I32, "s");
  // s.lo = arg; return s.lo;  -- with no prior initialization of s.
  emitFieldStore(B, Struct, Rec, "lo", F->arg(0), Lowering);
  B.ret(emitFieldLoad(B, Struct, Rec, "lo", Lowering));
  return F;
}

void runDemo(Module &M, const char *Name, BitFieldLowering Lowering,
             const char *Label) {
  Function *F = buildDemo(M, Name, Lowering);
  std::printf("--- %s lowering ---\n%s", Label, F->str().c_str());

  sem::DeterministicOracle Oracle;
  sem::Interpreter I(sem::SemanticsConfig::proposed(), Oracle);
  sem::ExecResult R = I.run(*F, {sem::Value::concrete(BitVec(32, 5))});
  std::printf("s.lo = 5; read back: %s\n\n", R.Ret->str().c_str());
}

} // namespace

int main() {
  IRContext Ctx;
  Module M(Ctx, "bitfields");

  runDemo(M, "legacy", BitFieldLowering::Legacy,
          "legacy (pre-paper Clang, no freeze)");
  runDemo(M, "fixed", BitFieldLowering::Proposed,
          "proposed (the paper's one-line Clang change)");
  runDemo(M, "vector", BitFieldLowering::Vector,
          "vector (Section 5.3's superior alternative)");

  std::printf("The legacy lowering returns POISON for a perfectly "
              "reasonable C program;\nthe freeze and vector lowerings "
              "return 5.\n");
  return 0;
}
