//===- inconsistencies.cpp - A guided tour of the paper's Section 3 ------------===//
//
// Part of the frost project: a reproduction of "Taming Undefined Behavior in
// LLVM" (PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Replays every Section 3 inconsistency through the exhaustive translation
// validator, printing the verdict under each candidate semantics. This is
// the executable form of the paper's core argument: no single legacy
// semantics makes all of LLVM's transformations sound, while the proposed
// poison+freeze semantics does.
//
//===----------------------------------------------------------------------===//

#include "ir/Context.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "parser/Parser.h"
#include "tv/Refinement.h"

#include <cstdio>

using namespace frost;
using frost::sem::SemanticsConfig;

namespace {

Function *get(Module &M, const char *Src, const char *Name) {
  ParseResult R = parseModule(Src, M);
  if (!R.Ok) {
    std::printf("parse error: %s\n", R.Error.c_str());
    std::exit(1);
  }
  return M.getFunction(Name);
}

int Failures = 0;

void verdict(const char *What, Function *Src, Function *Tgt,
             const SemanticsConfig &Config, const char *ConfigName,
             bool ExpectValid) {
  tv::TVResult R = tv::checkRefinement(*Src, *Tgt, Config);
  const char *V = R.valid() ? "VALID" : R.invalid() ? "INVALID" : "???";
  bool AsExpected = ExpectValid ? R.valid() : R.invalid();
  std::printf("  %-34s under %-16s : %-8s %s\n", What, ConfigName, V,
              AsExpected ? "(as the paper says)" : "(UNEXPECTED!)");
  if (!AsExpected) {
    ++Failures;
    std::printf("    %s\n", R.Message.c_str());
  }
}

} // namespace

int main() {
  IRContext Ctx;
  Module M(Ctx, "sec3");
  SemanticsConfig Proposed = SemanticsConfig::proposed();
  SemanticsConfig Unswitch = SemanticsConfig::legacyUnswitch();

  std::printf("=== Section 3.1: duplicating SSA uses (2*x -> x+x) ===\n");
  Function *MulSrc = get(M, R"(
define i2 @mul2(i2 %x) {
entry:
  %r = mul i2 %x, 2
  ret i2 %r
})",
                         "mul2");
  Function *AddTgt = get(M, R"(
define i2 @addself(i2 %x) {
entry:
  %r = add i2 %x, %x
  ret i2 %r
})",
                         "addself");
  verdict("mul x,2 -> add x,x", MulSrc, AddTgt, Unswitch,
          "legacy (undef)", false);
  verdict("mul x,2 -> add x,x", MulSrc, AddTgt, Proposed, "proposed", true);

  std::printf("\n=== Section 3.2: hoisting 1/k past the k != 0 check ===\n");
  const char *HoistCommon = R"(
declare void @observe(i2)

define void @SRCNAME(i2 %k, i1 %c) {
entry:
  %nz = icmp ne i2 %k, 0
  br i1 %nz, label %guarded, label %exit

guarded:
  BODY

use:
  call void @observe(i2 %t)
  br label %exit

exit:
  ret void
})";
  std::string SrcText(HoistCommon), TgtText(HoistCommon);
  SrcText.replace(SrcText.find("SRCNAME"), 7, "noHoist");
  SrcText.replace(SrcText.find("BODY"), 4,
                  "br i1 %c, label %div, label %exit\n\ndiv:\n  %t = udiv "
                  "i2 1, %k\n  br label %use");
  TgtText.replace(TgtText.find("SRCNAME"), 7, "hoisted");
  TgtText.replace(TgtText.find("BODY"), 4,
                  "%t = udiv i2 1, %k\n  br i1 %c, label %use, label %exit");
  ParseResult R1 = parseModule(SrcText, M), R2 = parseModule(TgtText, M);
  if (!R1.Ok || !R2.Ok) {
    std::printf("parse error\n");
    return 1;
  }
  verdict("hoist 1/k over control flow", M.getFunction("noHoist"),
          M.getFunction("hoisted"), Unswitch, "legacy (undef)", false);
  verdict("hoist 1/k over control flow", M.getFunction("noHoist"),
          M.getFunction("hoisted"), Proposed, "proposed", true);

  std::printf("\n=== Section 3.3: loop unswitching vs GVN ===\n");
  Function *GSrc = get(M, R"(
declare void @observe2(i2)

define void @gvnsrc(i2 %x, i2 %y) {
entry:
  %t = add nsw i2 %x, 1
  %c = icmp eq i2 %t, %y
  br i1 %c, label %then, label %exit

then:
  call void @observe2(i2 %t)
  br label %exit

exit:
  ret void
})",
                      "gvnsrc");
  Function *GTgt = get(M, R"(
define void @gvntgt(i2 %x, i2 %y) {
entry:
  %t = add nsw i2 %x, 1
  %c = icmp eq i2 %t, %y
  br i1 %c, label %then, label %exit

then:
  call void @observe2(i2 %y)
  br label %exit

exit:
  ret void
})",
                      "gvntgt");
  verdict("GVN: replace t by y after t==y", GSrc, GTgt, Proposed,
          "proposed", true);
  verdict("GVN: replace t by y after t==y", GSrc, GTgt, Unswitch,
          "legacy (nondet br)", false);

  std::printf("\n=== Section 3.4: select vs arithmetic ===\n");
  Function *SelSrc = get(M, R"(
define i1 @selsrc(i1 %c, i1 %x) {
entry:
  %r = select i1 %c, i1 true, i1 %x
  ret i1 %r
})",
                        "selsrc");
  Function *OrTgt = get(M, R"(
define i1 @ortgt(i1 %c, i1 %x) {
entry:
  %r = or i1 %c, %x
  ret i1 %r
})",
                       "ortgt");
  Function *OrFrTgt = get(M, R"(
define i1 @orfr(i1 %c, i1 %x) {
entry:
  %fx = freeze i1 %x
  %r = or i1 %c, %fx
  ret i1 %r
})",
                         "orfr");
  verdict("select c,true,x -> or c,x", SelSrc, OrTgt, Proposed, "proposed",
          false);
  verdict("select c,true,x -> or c,freeze x", SelSrc, OrFrTgt, Proposed,
          "proposed", true);

  std::printf("\n=== Section 5.5: freeze must not be duplicated ===\n");
  Function *FrSrc = get(M, R"(
declare void @observe3(i2)

define void @fr1(i2 %x) {
entry:
  %y = freeze i2 %x
  call void @observe3(i2 %y)
  call void @observe3(i2 %y)
  ret void
})",
                       "fr1");
  Function *FrTgt = get(M, R"(
define void @fr2(i2 %x) {
entry:
  %y1 = freeze i2 %x
  call void @observe3(i2 %y1)
  %y2 = freeze i2 %x
  call void @observe3(i2 %y2)
  ret void
})",
                       "fr2");
  verdict("duplicate a freeze", FrSrc, FrTgt, Proposed, "proposed", false);

  std::printf("\n%s\n", Failures == 0
                            ? "All verdicts match the paper's analysis."
                            : "SOME VERDICTS DIVERGED FROM THE PAPER!");
  return Failures == 0 ? 0 : 1;
}
